// Zone-map-aware batch skipping: a PageProcessor armed with a zone map
// classifies whole pages as all-pass (skip predicate evaluation),
// all-fail (skip all per-row work), or mixed (normal batch path) — and
// must charge the EXACT OpCounts the un-armed interpreter charges for
// the rows it never touched, because the counts drive the virtual-time
// cost model. Every test runs the armed vectorized kernel against the
// scalar interpreter (no zone map, no page indexes) over identical
// pages and requires byte-identical rows, aggregates, and counts, on
// both layouts.
//
// The data is a sorted ramp (col0 == row index) over small pages, so a
// range predicate cleanly partitions the pages into all-pass, mixed,
// and all-fail — each classification is genuinely exercised, not just
// formally reachable.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "exec/batch_skip.h"
#include "exec/page_processor.h"
#include "exec/query_spec.h"
#include "storage/catalog.h"
#include "storage/nsm_page.h"
#include "storage/pax_page.h"
#include "storage/tuple.h"
#include "storage/zone_map.h"

namespace smartssd::exec {
namespace {

namespace ex = ::smartssd::expr;
using storage::Column;
using storage::PageLayout;
using storage::Schema;

struct MemTable {
  storage::TableInfo info;
  std::vector<std::vector<std::byte>> pages;
  std::optional<storage::ZoneMap> zone_map;
};

Schema OuterSchema() {
  auto schema = Schema::Create({Column::Int32("k"), Column::Int32("fk"),
                                Column::Int32("v")});
  SMARTSSD_CHECK(schema.ok());
  return std::move(schema).value();
}

Schema InnerSchema() {
  auto schema =
      Schema::Create({Column::Int32("pk"), Column::Int64("payload")});
  SMARTSSD_CHECK(schema.ok());
  return std::move(schema).value();
}

// col0 is the sorted ramp the zone map prunes on; col1 is an FK for the
// join tests; col2 a value column for aggregates.
MemTable BuildOuter(PageLayout layout, int rows) {
  const Schema schema = OuterSchema();
  MemTable table;
  std::vector<std::byte> tuple(schema.tuple_size());
  storage::NsmPageBuilder nsm(&schema, 512);
  storage::PaxPageBuilder pax(&schema, 512);
  auto seal = [&]() {
    if (layout == PageLayout::kNsm) {
      table.pages.emplace_back(nsm.image().begin(), nsm.image().end());
      nsm.Reset();
    } else {
      table.pages.emplace_back(pax.image().begin(), pax.image().end());
      pax.Reset();
    }
  };
  for (int row = 0; row < rows; ++row) {
    storage::TupleWriter w(&schema, tuple);
    w.SetInt32(0, row);
    w.SetInt32(1, row % 10);
    w.SetInt32(2, row * 2);
    const bool ok = layout == PageLayout::kNsm ? nsm.Append(tuple)
                                               : pax.Append(tuple);
    if (!ok) {
      seal();
      SMARTSSD_CHECK(layout == PageLayout::kNsm ? nsm.Append(tuple)
                                                : pax.Append(tuple));
    }
  }
  if ((layout == PageLayout::kNsm && nsm.tuple_count() > 0) ||
      (layout == PageLayout::kPax && pax.tuple_count() > 0)) {
    seal();
  }
  table.info = storage::TableInfo{
      .name = "outer",
      .schema = schema,
      .layout = layout,
      .first_lpn = 0,
      .page_count = table.pages.size(),
      .tuple_count = static_cast<std::uint64_t>(rows),
      .tuples_per_page = 0};
  table.zone_map = storage::ZoneMap::Build(
                       table.info,
                       [&](std::uint64_t p)
                           -> Result<std::span<const std::byte>> {
                         return std::span<const std::byte>(table.pages[p]);
                       })
                       .value();
  return table;
}

MemTable BuildInner(PageLayout layout) {
  const Schema schema = InnerSchema();
  MemTable table;
  std::vector<std::byte> tuple(schema.tuple_size());
  storage::NsmPageBuilder nsm(&schema, 512);
  storage::PaxPageBuilder pax(&schema, 512);
  for (int row = 0; row < 10; ++row) {
    storage::TupleWriter w(&schema, tuple);
    w.SetInt32(0, row);
    w.SetInt64(1, 1000 + row);
    SMARTSSD_CHECK(layout == PageLayout::kNsm ? nsm.Append(tuple)
                                              : pax.Append(tuple));
  }
  if (layout == PageLayout::kNsm) {
    table.pages.emplace_back(nsm.image().begin(), nsm.image().end());
  } else {
    table.pages.emplace_back(pax.image().begin(), pax.image().end());
  }
  table.info = storage::TableInfo{.name = "inner",
                                  .schema = schema,
                                  .layout = layout,
                                  .first_lpn = 100,
                                  .page_count = 1,
                                  .tuple_count = 10,
                                  .tuples_per_page = 10};
  return table;
}

struct RunOutput {
  std::vector<std::byte> rows;
  OpCounts counts;
  std::vector<std::int64_t> aggs;
};

// `armed` drives the vectorized kernel with the zone map and real page
// indexes; un-armed drives the scalar interpreter with neither.
RunOutput RunKernel(const BoundQuery& bound, const MemTable& outer,
                    const MemTable* inner, bool armed) {
  RunOutput output;
  std::optional<JoinHashTable> hash_table;
  if (inner != nullptr) {
    auto table = BuildJoinHashTable(
        bound,
        [&](std::uint64_t p) -> Result<std::span<const std::byte>> {
          return std::span<const std::byte>(inner->pages[p]);
        },
        &output.counts);
    SMARTSSD_CHECK(table.ok());
    hash_table.emplace(std::move(table).value());
  }
  PageProcessor processor(
      &bound, hash_table.has_value() ? &*hash_table : nullptr,
      armed ? KernelMode::kVectorized : KernelMode::kScalar);
  if (armed) {
    SMARTSSD_CHECK(processor.kernel_mode() == KernelMode::kVectorized);
    processor.SetZoneMap(&*outer.zone_map);
  }
  for (std::size_t p = 0; p < outer.pages.size(); ++p) {
    if (armed) {
      SMARTSSD_CHECK(processor
                         .ProcessPage(outer.pages[p], p, &output.counts,
                                      &output.rows)
                         .ok());
    } else {
      SMARTSSD_CHECK(processor
                         .ProcessPage(outer.pages[p], &output.counts,
                                      &output.rows)
                         .ok());
    }
  }
  SMARTSSD_CHECK(processor.Finish(&output.counts, &output.rows).ok());
  output.aggs = processor.agg_state();
  return output;
}

// Runs `spec` on both layouts: scalar interpreter (ground truth)
// vs zone-map-armed vectorized kernel. Returns the NSM reference.
RunOutput CheckArmedKernel(const QuerySpec& spec, int rows,
                           bool with_inner = false) {
  RunOutput reference;
  for (const PageLayout layout : {PageLayout::kNsm, PageLayout::kPax}) {
    const MemTable outer = BuildOuter(layout, rows);
    const MemTable inner = BuildInner(layout);
    storage::Catalog catalog(100000);
    SMARTSSD_CHECK(catalog.AddTable(outer.info).ok());
    if (with_inner) SMARTSSD_CHECK(catalog.AddTable(inner.info).ok());
    auto bound = Bind(spec, catalog);
    SMARTSSD_CHECK(bound.ok());

    const RunOutput scalar = RunKernel(
        *bound, outer, with_inner ? &inner : nullptr, /*armed=*/false);
    const RunOutput armed = RunKernel(
        *bound, outer, with_inner ? &inner : nullptr, /*armed=*/true);

    EXPECT_EQ(scalar.rows, armed.rows);
    EXPECT_EQ(scalar.aggs, armed.aggs);
    EXPECT_EQ(scalar.counts == armed.counts, true)
        << "operation counts diverged with zone-map skipping";
    if (layout == PageLayout::kNsm) reference = scalar;
  }
  return reference;
}

// The sorted ramp classifications are real: with 200 rows over 512-byte
// pages a `col0 < 60` predicate gives leading all-pass pages, one mixed
// page, and trailing all-fail pages.
TEST(BatchSkipTest, MixedAllPassAllFailProjection) {
  QuerySpec spec;
  spec.table = "outer";
  spec.predicate = ex::Lt(ex::Col(0), ex::Lit(60));
  spec.projection = {0, 2};
  const RunOutput out = CheckArmedKernel(spec, /*rows=*/200);
  EXPECT_EQ(out.counts.output_tuples, 60u);
}

TEST(BatchSkipTest, AllFailEverywhere) {
  QuerySpec spec;
  spec.table = "outer";
  spec.predicate = ex::Lt(ex::Col(0), ex::Lit(0));
  spec.projection = {0};
  const RunOutput out = CheckArmedKernel(spec, /*rows=*/200);
  EXPECT_EQ(out.rows.size(), 0u);
  EXPECT_EQ(out.counts.output_tuples, 0u);
}

TEST(BatchSkipTest, AllPassEverywhereAggregate) {
  QuerySpec spec;
  spec.table = "outer";
  spec.predicate = ex::Ge(ex::Col(0), ex::Lit(0));
  spec.aggregates.push_back({AggSpec::Fn::kSum, ex::Col(2), "sum_v"});
  const RunOutput out = CheckArmedKernel(spec, /*rows=*/200);
  EXPECT_EQ(out.aggs[0], 199 * 200);  // sum of 2*row for row in [0,200)
}

TEST(BatchSkipTest, RangeConjunctionAggregate) {
  // col0 >= 40 AND col0 < 120: all-fail prefix pages settle at the
  // first conjunct, all-pass pages must charge the full 2-conjunct
  // chain, the suffix fails at the second conjunct.
  QuerySpec spec;
  spec.table = "outer";
  std::vector<ex::ExprPtr> conjuncts;
  conjuncts.push_back(ex::Ge(ex::Col(0), ex::Lit(40)));
  conjuncts.push_back(ex::Lt(ex::Col(0), ex::Lit(120)));
  spec.predicate = ex::And(std::move(conjuncts));
  spec.aggregates.push_back({AggSpec::Fn::kCount, nullptr, "cnt"});
  const RunOutput out = CheckArmedKernel(spec, /*rows=*/200);
  EXPECT_EQ(out.aggs[0], 80);
}

// Regression: an empty predicate interval (lo > hi) — "col0 > 120 AND
// col0 < 40" — must classify all-fail with the exact short-circuit
// cost, not underflow or charge a negative interval.
TEST(BatchSkipTest, EmptyIntervalPredicate) {
  QuerySpec spec;
  spec.table = "outer";
  std::vector<ex::ExprPtr> conjuncts;
  conjuncts.push_back(ex::Gt(ex::Col(0), ex::Lit(120)));
  conjuncts.push_back(ex::Lt(ex::Col(0), ex::Lit(40)));
  spec.predicate = ex::And(std::move(conjuncts));
  spec.projection = {0};
  const RunOutput out = CheckArmedKernel(spec, /*rows=*/200);
  EXPECT_EQ(out.rows.size(), 0u);
  EXPECT_EQ(out.counts.output_tuples, 0u);
}

TEST(BatchSkipTest, EqAndNePredicates) {
  {
    // Equality on the ramp: exactly one row, one mixed page, the rest
    // all-fail.
    QuerySpec spec;
    spec.table = "outer";
    spec.predicate = ex::Eq(ex::Col(0), ex::Lit(77));
    spec.projection = {0, 2};
    const RunOutput out = CheckArmedKernel(spec, /*rows=*/200);
    EXPECT_EQ(out.counts.output_tuples, 1u);
  }
  {
    // Ne never prunes via merged ranges but the batch classifier can
    // settle constant pages; on the ramp every page is mixed-or-pass.
    QuerySpec spec;
    spec.table = "outer";
    spec.predicate = ex::Compare(ex::CompareOp::kNe, ex::Col(0), ex::Lit(77));
    spec.aggregates.push_back({AggSpec::Fn::kCount, nullptr, "cnt"});
    const RunOutput out = CheckArmedKernel(spec, /*rows=*/200);
    EXPECT_EQ(out.aggs[0], 199);
  }
}

// Non-conforming leading conjunct (arithmetic on the column) defeats
// the classifier — every page must take the mixed path and still agree.
TEST(BatchSkipTest, NonConformingPredicateStaysMixed) {
  QuerySpec spec;
  spec.table = "outer";
  spec.predicate = ex::Lt(ex::Add(ex::Col(0), ex::Lit(1)), ex::Lit(61));
  spec.projection = {0};
  const RunOutput out = CheckArmedKernel(spec, /*rows=*/200);
  EXPECT_EQ(out.counts.output_tuples, 60u);
}

// Joins under both pipeline orders: probe-first charges probes for the
// whole page before the filter, so the all-pass/all-fail charging has
// to account for survivors, not raw rows.
TEST(BatchSkipTest, JoinBothPipelineOrders) {
  for (const PipelineOrder order :
       {PipelineOrder::kFilterFirst, PipelineOrder::kProbeFirst}) {
    QuerySpec spec;
    spec.table = "outer";
    spec.order = order;
    spec.join = JoinSpec{.inner_table = "inner",
                         .outer_key_col = 1,
                         .inner_key_col = 0,
                         .inner_payload_cols = {1}};
    spec.predicate = ex::Lt(ex::Col(0), ex::Lit(60));
    spec.aggregates.push_back({AggSpec::Fn::kSum, ex::Col(3), "sum_p"});
    const RunOutput out =
        CheckArmedKernel(spec, /*rows=*/200, /*with_inner=*/true);
    EXPECT_EQ(out.counts.output_tuples, 1u);  // one aggregate row
  }
}

// Direct unit coverage of the classifier verdicts, including the
// empty-interval short circuit.
TEST(BatchSkipTest, AnalysisClassifiesPerPage) {
  const MemTable outer = BuildOuter(PageLayout::kNsm, 200);
  storage::Catalog catalog(100000);
  SMARTSSD_CHECK(catalog.AddTable(outer.info).ok());
  QuerySpec spec;
  spec.table = "outer";
  spec.predicate = ex::Lt(ex::Col(0), ex::Lit(60));
  spec.projection = {0};
  auto bound = Bind(spec, catalog);
  SMARTSSD_CHECK(bound.ok());

  const BatchSkipAnalysis analysis(bound->spec->predicate.get(),
                                   &*outer.zone_map,
                                   bound->outer_columns());
  ASSERT_TRUE(analysis.usable());
  expr::EvalStats per_row;
  // Page 0 holds rows [0, ~30): strictly below 60 -> all-pass, charged
  // one comparison + one column read per row.
  EXPECT_EQ(analysis.Classify(0, &per_row), PageClass::kAllPass);
  EXPECT_EQ(per_row.comparisons, 1u);
  EXPECT_EQ(per_row.column_reads, 1u);
  // The last page holds rows well above 60 -> all-fail.
  EXPECT_EQ(analysis.Classify(outer.pages.size() - 1, &per_row),
            PageClass::kAllFail);
  // A page index past the map is mixed (the safe answer), not a crash.
  EXPECT_EQ(analysis.Classify(outer.pages.size() + 5, &per_row),
            PageClass::kMixed);

  // No zone map -> analysis unusable.
  const BatchSkipAnalysis unarmed(bound->spec->predicate.get(), nullptr,
                                  bound->outer_columns());
  EXPECT_FALSE(unarmed.usable());
}

}  // namespace
}  // namespace smartssd::exec
