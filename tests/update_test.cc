// Host-side updates and their interaction with pushdown coherence
// (Section 4.3) and zone maps.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "engine/update.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"

namespace smartssd::engine {
namespace {

namespace ex = ::smartssd::expr;

class UpdateTest : public ::testing::TestWithParam<storage::PageLayout> {
 protected:
  UpdateTest() : db_(DatabaseOptions::PaperSmartSsd()) {
    SMARTSSD_CHECK(
        tpch::LoadSyntheticS(db_, "T", 8, 20'000, 100, GetParam()).ok());
    db_.ResetForColdRun();
  }

  std::int64_t SumCol4(ExecutionTarget target) {
    exec::QuerySpec spec;
    spec.table = "T";
    spec.aggregates.push_back({exec::AggSpec::Fn::kSum, ex::Col(3), "s"});
    QueryExecutor executor(&db_);
    auto result = executor.Execute(spec, target);
    SMARTSSD_CHECK(result.ok());
    return result->agg_values[0];
  }

  Database db_;
};

TEST_P(UpdateTest, UpdateChangesHostVisibleValues) {
  const std::int64_t before = SumCol4(ExecutionTarget::kHost);
  TableUpdater updater(&db_);
  // Zero Col_4 on rows with Col_1 <= 100.
  const auto pred = ex::Le(ex::Col(0), ex::Lit(100));
  auto stats = updater.Update(
      "T", pred.get(),
      [](const expr::RowView&, storage::TupleWriter& writer) {
        writer.SetInt32(3, 0);
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_matched, 100u);
  EXPECT_GT(stats->pages_dirtied, 0u);

  const std::int64_t after = SumCol4(ExecutionTarget::kHost);
  EXPECT_LE(after, before);
  EXPECT_NE(after, before);  // Col_4 is random; 100 zeroed rows shift it
}

TEST_P(UpdateTest, DirtyPagesGatePushdownUntilFlush) {
  TableUpdater updater(&db_);
  auto stats = updater.Update(
      "T", nullptr,
      [](const expr::RowView&, storage::TupleWriter& writer) {
        writer.SetInt32(3, 7);
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_matched, 20'000u);

  // Pushdown refused while dirty.
  exec::QuerySpec spec;
  spec.table = "T";
  spec.aggregates.push_back({exec::AggSpec::Fn::kSum, ex::Col(3), "s"});
  QueryExecutor executor(&db_);
  auto refused = executor.Execute(spec, ExecutionTarget::kSmartSsd);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  // Host sees the new values through the pool.
  EXPECT_EQ(SumCol4(ExecutionTarget::kHost), 7 * 20'000);

  // After flushing, pushdown works and agrees with the host.
  ASSERT_TRUE(db_.buffer_pool().FlushAll(0).ok());
  EXPECT_EQ(SumCol4(ExecutionTarget::kSmartSsd), 7 * 20'000);
}

TEST_P(UpdateTest, UpdateDropsZoneMap) {
  ASSERT_TRUE(db_.BuildZoneMap("T").ok());
  ASSERT_NE(db_.zone_map("T"), nullptr);
  TableUpdater updater(&db_);
  const auto pred = ex::Le(ex::Col(0), ex::Lit(10));
  ASSERT_TRUE(updater
                  .Update("T", pred.get(),
                          [](const expr::RowView&,
                             storage::TupleWriter& writer) {
                            writer.SetInt32(0, 999'999);
                          })
                  .ok());
  EXPECT_EQ(db_.zone_map("T"), nullptr);
}

TEST_P(UpdateTest, NoMatchesLeavesEverythingClean) {
  TableUpdater updater(&db_);
  const auto pred = ex::Gt(ex::Col(0), ex::Lit(1'000'000));
  auto stats = updater.Update(
      "T", pred.get(),
      [](const expr::RowView&, storage::TupleWriter& writer) {
        writer.SetInt32(3, 0);
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_matched, 0u);
  EXPECT_EQ(stats->pages_dirtied, 0u);
  auto info = db_.catalog().GetTable("T");
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(db_.buffer_pool().HasDirtyInRange((*info)->first_lpn,
                                                 (*info)->page_count));
}

TEST_P(UpdateTest, PlannerRefusesDirtyThenRecovers) {
  TableUpdater updater(&db_);
  const auto pred = ex::Le(ex::Col(0), ex::Lit(5));
  ASSERT_TRUE(updater
                  .Update("T", pred.get(),
                          [](const expr::RowView&,
                             storage::TupleWriter& writer) {
                            writer.SetInt32(3, 1);
                          })
                  .ok());
  exec::QuerySpec spec = tpch::ScanQuerySpec("T", 8, 0.01, true);
  auto bound = exec::Bind(spec, db_.catalog());
  ASSERT_TRUE(bound.ok());
  PushdownPlanner planner(&db_);
  auto dirty_decision = planner.Decide(*bound, PlanHints{});
  ASSERT_TRUE(dirty_decision.ok());
  EXPECT_EQ(dirty_decision->target, ExecutionTarget::kHost);

  ASSERT_TRUE(db_.buffer_pool().FlushAll(0).ok());
  db_.ResetForColdRun();
  auto clean_decision =
      planner.Decide(*bound, PlanHints{.predicate_selectivity = 0.01});
  ASSERT_TRUE(clean_decision.ok());
  // Once flushed, the decision is back to cost-based (this narrow
  // 8-column table legitimately favors the host; what matters is that
  // coherence no longer forces it).
  EXPECT_EQ(clean_decision->reason.find("coherence"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Layouts, UpdateTest,
                         ::testing::Values(storage::PageLayout::kNsm,
                                           storage::PageLayout::kPax),
                         [](const auto& info) {
                           return std::string(
                               storage::PageLayoutName(info.param));
                         });

}  // namespace
}  // namespace smartssd::engine
