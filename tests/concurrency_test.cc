// Concurrent query execution on one device: overlapping virtual
// timelines share every modelled resource (embedded cores, flash
// channels, DRAM bus, host link) through the FIFO servers.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

namespace smartssd::engine {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  ConcurrencyTest() : db_(DatabaseOptions::PaperSmartSsd()) {
    SMARTSSD_CHECK(tpch::LoadLineitem(db_, "a", 0.005,
                                      storage::PageLayout::kPax)
                       .ok());
    SMARTSSD_CHECK(tpch::LoadLineitem(db_, "b", 0.005,
                                      storage::PageLayout::kPax)
                       .ok());
    db_.ResetForColdRun();
  }

  Database db_;
};

TEST_F(ConcurrencyTest, CoRunningPushdownsShareTheDeviceFairly) {
  QueryExecutor executor(&db_);
  // Solo reference.
  auto solo = executor.Execute(tpch::Q6Spec("a"),
                               ExecutionTarget::kSmartSsd, 0);
  ASSERT_TRUE(solo.ok());
  const SimDuration solo_elapsed = solo->stats.elapsed();

  // Two sessions, both issued at t=0.
  db_.ResetForColdRun();
  auto first = executor.Execute(tpch::Q6Spec("a"),
                                ExecutionTarget::kSmartSsd, 0);
  auto second = executor.Execute(tpch::Q6Spec("b"),
                                 ExecutionTarget::kSmartSsd, 0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Same answers as solo.
  EXPECT_EQ(first->agg_values, solo->agg_values);

  // The pair takes about twice the solo time (CPU-bound sharing), and
  // certainly more than either alone and less than 2.5x.
  const SimTime span = std::max(first->stats.end, second->stats.end);
  EXPECT_GT(span, solo_elapsed);
  EXPECT_NEAR(static_cast<double>(span) /
                  static_cast<double>(solo_elapsed),
              2.0, 0.5);
}

TEST_F(ConcurrencyTest, StaggeredQueriesQueueBehindEachOther) {
  QueryExecutor executor(&db_);
  auto first = executor.Execute(tpch::Q6Spec("a"),
                                ExecutionTarget::kSmartSsd, 0);
  ASSERT_TRUE(first.ok());
  // Issue the second halfway through the first.
  const SimTime midpoint = (first->stats.start + first->stats.end) / 2;
  auto second = executor.Execute(tpch::Q6Spec("b"),
                                 ExecutionTarget::kSmartSsd, midpoint);
  ASSERT_TRUE(second.ok());
  EXPECT_GE(second->stats.start, midpoint);
  // The second finishes later than it would have alone.
  EXPECT_GT(second->stats.elapsed(), first->stats.elapsed());
}

TEST_F(ConcurrencyTest, MixedHostAndPushdownOverlap) {
  QueryExecutor executor(&db_);
  auto smart = executor.Execute(tpch::Q6Spec("a"),
                                ExecutionTarget::kSmartSsd, 0);
  auto host = executor.Execute(tpch::Q6Spec("b"),
                               ExecutionTarget::kHost, 0);
  ASSERT_TRUE(smart.ok());
  ASSERT_TRUE(host.ok());
  EXPECT_EQ(smart->agg_values, host->agg_values);  // same data generator
  // Both make progress concurrently: the span is far less than the sum.
  const SimTime span = std::max(smart->stats.end, host->stats.end);
  EXPECT_LT(span, smart->stats.elapsed() + host->stats.elapsed());
}

}  // namespace
}  // namespace smartssd::engine
