#include <gtest/gtest.h>

#include <vector>

#include "ssd/hdd_device.h"

namespace smartssd::ssd {
namespace {

HddConfig SmallConfig() {
  HddConfig config;
  config.num_pages = 4096;
  return config;
}

TEST(HddDeviceTest, ReadBackMatchesWrittenData) {
  HddDevice device(SmallConfig());
  const std::uint32_t page = device.page_size();
  std::vector<std::byte> data(3 * page);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i);
  }
  ASSERT_TRUE(device.WritePages(7, 3, data, 0).ok());
  std::vector<std::byte> out(3 * page);
  ASSERT_TRUE(device.ReadPages(7, 3, out, 0).ok());
  EXPECT_EQ(out, data);
}

TEST(HddDeviceTest, UnwrittenPagesReadAsZero) {
  HddDevice device(SmallConfig());
  std::vector<std::byte> out(device.page_size(), std::byte{0x11});
  ASSERT_TRUE(device.ReadPages(100, 1, out, 0).ok());
  for (const std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(HddDeviceTest, SequentialReadsSkipSeeks) {
  HddDevice device(SmallConfig());
  SimTime t = 0;
  for (std::uint64_t lpn = 0; lpn < 32 * 8; lpn += 32) {
    auto done = device.ReadPages(lpn, 32, {}, t);
    ASSERT_TRUE(done.ok());
    t = done.value();
  }
  EXPECT_EQ(device.seeks(), 1u);  // only the initial positioning
}

TEST(HddDeviceTest, RandomReadsPaySeeks) {
  HddDevice device(SmallConfig());
  SimTime t = 0;
  const std::uint64_t lpns[] = {0, 512, 64, 2048, 33};
  for (const std::uint64_t lpn : lpns) {
    auto done = device.ReadPages(lpn, 1, {}, t);
    ASSERT_TRUE(done.ok());
    t = done.value();
  }
  EXPECT_EQ(device.seeks(), 5u);
}

TEST(HddDeviceTest, RandomIsSlowerThanSequential) {
  const HddConfig config = SmallConfig();
  HddDevice sequential(config);
  HddDevice random(config);
  SimTime seq_done = 0;
  SimTime rnd_done = 0;
  for (int i = 0; i < 16; ++i) {
    seq_done = sequential.ReadPages(static_cast<std::uint64_t>(i), 1, {},
                                    seq_done)
                   .value();
    rnd_done = random.ReadPages(
                         static_cast<std::uint64_t>((i * 997) % 4000), 1,
                         {}, rnd_done)
                   .value();
  }
  EXPECT_LT(seq_done * 2, rnd_done);
}

// Table 3 presupposes the HDD heap scan running in the low-80s MB/s so
// that Q6 at SF 100 lands above 1,000 seconds.
TEST(HddDeviceTest, EffectiveSequentialRateMatchesCalibration) {
  HddDevice device(HddConfig{});
  constexpr std::uint64_t kPages = 8192;
  SimTime done = 0;
  for (std::uint64_t lpn = 0; lpn < kPages; lpn += 32) {
    done = device.ReadPages(lpn, 32, {}, done).value();
  }
  const double mbps = static_cast<double>(kPages) * device.page_size() /
                      ToSeconds(done) / 1e6;
  EXPECT_NEAR(mbps, 82.0, 4.0);
}

TEST(HddDeviceTest, RangeChecks) {
  HddDevice device(SmallConfig());
  EXPECT_FALSE(device.ReadPages(4095, 2, {}, 0).ok());
  std::vector<std::byte> page(device.page_size());
  EXPECT_FALSE(device.WritePages(4096, 1, page, 0).ok());
  std::vector<std::byte> small(7);
  EXPECT_FALSE(device.WritePages(0, 1, small, 0).ok());
}

}  // namespace
}  // namespace smartssd::ssd
