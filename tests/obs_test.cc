// Observability subsystem: tracer span bookkeeping and scope
// attribution, histogram percentile math, registry determinism, and the
// end-to-end properties the subsystem promises — byte-identical Chrome
// trace exports across identical runs, nanosecond-identical query
// timings with tracing on or off, and a balanced span stack even when a
// pushdown session dies mid-flight and the engine falls back to the
// host path.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/executor.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fault_injector.h"
#include "sim/rate_server.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

namespace smartssd {
namespace {

using obs::Arg;
using obs::Tracer;
using obs::TraceEvent;
using obs::TrackId;

// --- Tracer unit tests ------------------------------------------------

TEST(TracerTest, RegisterTrackIsIdempotentAndOrdersByFirstUse) {
  Tracer tracer;
  const TrackId a = tracer.RegisterTrack("device", "chan 0");
  const TrackId b = tracer.RegisterTrack("device", "chan 1");
  const TrackId c = tracer.RegisterTrack("host", "executor");
  EXPECT_EQ(tracer.RegisterTrack("device", "chan 0"), a);
  EXPECT_EQ(tracer.RegisterTrack("host", "executor"), c);
  ASSERT_EQ(tracer.tracks().size(), 3u);
  // Same process => same pid, lanes numbered in registration order.
  EXPECT_EQ(tracer.tracks()[a].pid, tracer.tracks()[b].pid);
  EXPECT_NE(tracer.tracks()[a].pid, tracer.tracks()[c].pid);
  EXPECT_EQ(tracer.tracks()[a].tid, 0u);
  EXPECT_EQ(tracer.tracks()[b].tid, 1u);
  EXPECT_EQ(tracer.tracks()[c].tid, 0u);
}

TEST(TracerTest, ScopeStackAttributesParents) {
  Tracer tracer;
  const TrackId t = tracer.RegisterTrack("p", "lane");
  const obs::SpanId outer =
      tracer.Complete(t, "outer", "test", 0, 100);
  tracer.PushScope(outer);
  const obs::SpanId inner = tracer.Complete(t, "inner", "test", 10, 50);
  tracer.Instant(t, "tick", "test", 20);
  tracer.PopScope();
  tracer.Instant(t, "after", "test", 200);

  ASSERT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.events()[0].parent, obs::kNoSpan);
  EXPECT_EQ(tracer.events()[1].parent, outer);
  EXPECT_EQ(tracer.events()[1].id, inner);
  EXPECT_EQ(tracer.events()[2].parent, outer);
  EXPECT_EQ(tracer.events()[3].parent, obs::kNoSpan);
  EXPECT_EQ(tracer.latest_time(), 200u);
}

TEST(TracerTest, BeginEndBalancesAndTrackBusySums) {
  Tracer tracer;
  const TrackId t = tracer.RegisterTrack("p", "lane");
  const obs::SpanId s = tracer.Begin(t, "work", "test", 100);
  EXPECT_EQ(tracer.open_spans(), 1u);
  tracer.End(s, 300, {Arg::Uint("rows", 7)});
  EXPECT_EQ(tracer.open_spans(), 0u);
  tracer.Complete(t, "more", "test", 400, 450);
  EXPECT_EQ(tracer.TrackBusy(t), 250u);
}

TEST(TracerTest, ScopedSpanClosesOnDestructionAtLatestTime) {
  Tracer tracer;
  const TrackId t = tracer.RegisterTrack("p", "lane");
  {
    obs::ScopedSpan span(&tracer, t, "doomed", "test", 100);
    tracer.Complete(t, "inner", "test", 120, 500);
    // No span.End(): simulates an early error return.
  }
  EXPECT_EQ(tracer.open_spans(), 0u);
  const TraceEvent& doomed = tracer.events().front();
  EXPECT_EQ(doomed.name, "doomed");
  EXPECT_EQ(doomed.end, 500u);  // closed at latest_time()

  // Null tracer: every operation is a no-op, nothing crashes.
  obs::ScopedSpan null_span(nullptr, 0, "x", "y", 0);
  null_span.End(10);
}

TEST(TracerTest, RateServerSpansMatchBusyTime) {
  Tracer tracer;
  sim::RateServer server("bus");
  server.AttachTracer(&tracer, "device");
  server.Serve(0, 100, "xfer");
  server.Serve(50, 200, "xfer");   // queues behind the first
  server.Serve(1000, 25);          // label defaults to the server name
  EXPECT_EQ(tracer.TrackBusy(server.track()), server.busy_time());
  ASSERT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.events()[2].name, "bus");
}

// --- Histogram / registry ---------------------------------------------

TEST(HistogramTest, SingleValueIsExactAtEveryPercentile) {
  obs::Histogram h("h");
  h.Record(42'000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42'000u);
  EXPECT_EQ(h.max(), 42'000u);
  EXPECT_DOUBLE_EQ(h.p50(), 42'000.0);
  EXPECT_DOUBLE_EQ(h.p99(), 42'000.0);
}

TEST(HistogramTest, PercentilesAreOrderedAndBucketBounded) {
  obs::Histogram h("h");
  for (std::uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  // Log buckets: the p-th percentile must land in the bucket holding
  // the rank-p value, i.e. within 2x of the exact answer.
  const double p50 = h.p50();
  EXPECT_GE(p50, 256.0);  // exact answer 500 lives in [256, 512)
  EXPECT_LT(p50, 512.0);
  EXPECT_LE(p50, h.p95());
  EXPECT_LE(h.p95(), h.p99());
  EXPECT_LE(h.p99(), 1000.0);  // clamped to the recorded max

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, ZeroValuesLandInBucketZero) {
  obs::Histogram h("h");
  h.Record(0);
  h.Record(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(MetricsRegistryTest, LookupIsRegistrationWithStablePointers) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.counter("flash.reads");
  c->Add(3);
  EXPECT_EQ(registry.counter("flash.reads"), c);
  EXPECT_EQ(registry.counter("flash.reads")->value(), 3u);
  registry.gauge("pool.pages")->Set(-5);
  registry.histogram("lat")->Record(8);
  EXPECT_EQ(registry.size(), 3u);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"flash.reads\":3"), std::string::npos);
  EXPECT_NE(json.find("\"pool.pages\":-5"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  // Determinism: a second export is byte-identical.
  EXPECT_EQ(registry.ToJson(), json);

  registry.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(registry.histogram("lat")->count(), 0u);
}

// The read side never registers: placement policies (and any other
// consumer) can probe instruments by name without minting empty ones.
TEST(MetricsRegistryTest, ReadSideLookupsNeverRegister) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("nope"), nullptr);
  EXPECT_EQ(registry.FindGauge("nope"), nullptr);
  EXPECT_EQ(registry.FindHistogram("nope"), nullptr);
  EXPECT_EQ(registry.CounterValue("nope"), 0u);
  EXPECT_EQ(registry.GaugeValue("nope", /*fallback=*/-7), -7);
  const obs::HistogramSnapshot absent = registry.SnapshotHistogram("nope");
  EXPECT_EQ(absent.count, 0u);
  EXPECT_EQ(absent.p95, 0.0);
  EXPECT_EQ(registry.size(), 0u);

  registry.counter("hits")->Add(4);
  registry.gauge("depth")->Set(9);
  EXPECT_EQ(registry.CounterValue("hits"), 4u);
  EXPECT_EQ(registry.GaugeValue("depth", -1), 9);
  EXPECT_EQ(registry.FindCounter("hits"), registry.counter("hits"));
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistryTest, HistogramSnapshotMatchesInstrument) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.histogram("wait");
  // An existing-but-empty histogram also reads as the zero snapshot.
  EXPECT_EQ(registry.SnapshotHistogram("wait").count, 0u);
  for (int v : {10, 20, 30, 40, 1000}) h->Record(v);

  const obs::HistogramSnapshot snap = registry.SnapshotHistogram("wait");
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1100u);
  EXPECT_EQ(snap.min, 10u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_EQ(snap.p50, h->p50());
  EXPECT_EQ(snap.p95, h->p95());
  EXPECT_EQ(snap.p99, h->p99());
  // Percentiles come back ordered, as the instrument promises.
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
}

// --- End-to-end properties over a real Q6 run -------------------------

constexpr double kSf = 0.002;  // 12k LINEITEM rows

// Loads LINEITEM (PAX) onto a paper-configured Smart SSD database,
// optionally wiring `tracer` through every layer, and runs Q6 cold.
Result<engine::QueryResult> RunTracedQ6(Tracer* tracer,
                                        engine::ExecutionTarget target,
                                        const sim::FaultSchedule* faults) {
  engine::Database db(engine::DatabaseOptions::PaperSmartSsd());
  auto loaded =
      tpch::LoadLineitem(db, "lineitem", kSf, storage::PageLayout::kPax);
  if (!loaded.ok()) return loaded.status();
  db.AttachTracer(tracer);
  db.ResetForColdRun();
  if (faults != nullptr) db.ssd()->fault_injector().Load(*faults);
  engine::QueryExecutor executor(&db);
  return executor.Execute(tpch::Q6Spec("lineitem"), target);
}

TEST(TraceExportTest, IdenticalRunsExportByteIdenticalTraces) {
  std::string exports[2];
  for (std::string& out : exports) {
    Tracer tracer;
    auto result = RunTracedQ6(&tracer, engine::ExecutionTarget::kSmartSsd,
                              nullptr);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(tracer.open_spans(), 0u);
    out = obs::ExportChromeTrace(tracer);
  }
  EXPECT_FALSE(exports[0].empty());
  EXPECT_EQ(exports[0], exports[1]);
}

TEST(TraceExportTest, ExportsTheExpectedTracks) {
  Tracer tracer;
  auto result = RunTracedQ6(&tracer, engine::ExecutionTarget::kSmartSsd,
                            nullptr);
  ASSERT_TRUE(result.ok());
  const std::string json = obs::ExportChromeTrace(tracer);
  for (const char* lane :
       {"flash chan 0", "dram bus", "embedded core", "host link",
        "session", "executor"}) {
    EXPECT_NE(json.find(lane), std::string::npos) << lane;
  }
  // Valid Chrome trace envelope.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
}

TEST(TraceExportTest, DisabledTracingIsTimingInvisible) {
  auto traced_result = [] {
    Tracer tracer;
    return RunTracedQ6(&tracer, engine::ExecutionTarget::kSmartSsd,
                       nullptr);
  }();
  auto untraced_result =
      RunTracedQ6(nullptr, engine::ExecutionTarget::kSmartSsd, nullptr);
  ASSERT_TRUE(traced_result.ok());
  ASSERT_TRUE(untraced_result.ok());
  // Tracing never reads or advances the virtual clock, so the timings
  // agree to the nanosecond.
  EXPECT_EQ(traced_result->stats.start, untraced_result->stats.start);
  EXPECT_EQ(traced_result->stats.end, untraced_result->stats.end);
  EXPECT_EQ(traced_result->agg_values, untraced_result->agg_values);
}

TEST(TraceExportTest, HostFallbackLeavesBalancedSpans) {
  sim::FaultSchedule schedule;
  schedule.faults.push_back(
      sim::FaultSpec{sim::FaultKind::kDeviceReset,
                     {sim::TriggerUnit::kPagesRead, 10},
                     1});
  Tracer tracer;
  auto result = RunTracedQ6(&tracer, engine::ExecutionTarget::kSmartSsd,
                            &schedule);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.fell_back);
  // The failed device attempt and the host retry both closed their
  // spans; nothing leaked open and the export is well-formed.
  EXPECT_EQ(tracer.open_spans(), 0u);
  const std::string json = obs::ExportChromeTrace(tracer);
  EXPECT_NE(json.find("session failed"), std::string::npos);
  EXPECT_NE(json.find("fallback to host"), std::string::npos);
}

}  // namespace
}  // namespace smartssd
