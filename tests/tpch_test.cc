#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "engine/database.h"
#include "engine/executor.h"
#include "storage/nsm_page.h"
#include "storage/tuple.h"
#include "tpch/dates.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"
#include "tpch/tpch_gen.h"

namespace smartssd::tpch {
namespace {

TEST(DatesTest, EpochAndKnownDates) {
  EXPECT_EQ(DateToDays(1992, 1, 1), 0);
  EXPECT_EQ(DateToDays(1992, 1, 2), 1);
  EXPECT_EQ(DateToDays(1993, 1, 1), 366);  // 1992 is a leap year
  EXPECT_EQ(DateToDays(1994, 1, 1), 731);
  EXPECT_EQ(DateToDays(1995, 1, 1), 1096);
  // One-month window length for Q14.
  EXPECT_EQ(DateToDays(1995, 10, 1) - DateToDays(1995, 9, 1), 30);
  EXPECT_LT(kMinShipDate, kMaxShipDate);
}

TEST(TpchSchemaTest, ShapesMatchPaperModifications) {
  const storage::Schema lineitem = LineitemSchema();
  EXPECT_EQ(lineitem.num_columns(), 16);
  // All fixed-length: decimals as ints, dates as ints, chars fixed.
  EXPECT_EQ(lineitem.column(kLExtendedPrice).type,
            storage::ColumnType::kInt64);
  EXPECT_EQ(lineitem.column(kLDiscount).type, storage::ColumnType::kInt32);
  EXPECT_EQ(lineitem.column(kLShipDate).type, storage::ColumnType::kInt32);
  EXPECT_EQ(lineitem.column(kLComment).type,
            storage::ColumnType::kFixedChar);
  EXPECT_EQ(lineitem.tuple_size(), 133u);

  const storage::Schema part = PartSchema();
  EXPECT_EQ(part.num_columns(), 9);
  EXPECT_EQ(part.column(kPType).width, 25u);
}

TEST(TpchSchemaTest, RowCountsScale) {
  EXPECT_EQ(LineitemRows(1.0), 6'000'000u);
  EXPECT_EQ(LineitemRows(100.0), 600'000'000u);
  EXPECT_EQ(PartRows(100.0), 20'000'000u);
}

class TpchDataTest : public ::testing::Test {
 protected:
  TpchDataTest() : db_(engine::DatabaseOptions::PaperSmartSsd()) {}

  engine::Database db_;
};

TEST_F(TpchDataTest, LineitemColumnDomains) {
  auto info = LoadLineitem(db_, "lineitem", 0.002,
                           storage::PageLayout::kNsm);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->tuple_count, 12000u);

  std::vector<std::byte> page(db_.device().page_size());
  std::uint64_t rows = 0;
  std::uint64_t q6_qualifying = 0;
  for (std::uint64_t p = 0; p < info->page_count; ++p) {
    ASSERT_TRUE(
        db_.device().ReadPages(info->first_lpn + p, 1, page, 0).ok());
    auto reader = storage::NsmPageReader::Open(&info->schema, page);
    ASSERT_TRUE(reader.ok());
    for (std::uint16_t i = 0; i < reader->tuple_count(); ++i, ++rows) {
      const storage::TupleReader t(&info->schema, reader->tuple(i));
      EXPECT_GE(t.GetInt32(kLQuantity), 1);
      EXPECT_LE(t.GetInt32(kLQuantity), 50);
      EXPECT_GE(t.GetInt32(kLDiscount), 0);
      EXPECT_LE(t.GetInt32(kLDiscount), 10);
      EXPECT_GE(t.GetInt32(kLShipDate), kMinShipDate);
      EXPECT_LE(t.GetInt32(kLShipDate), kMaxShipDate);
      EXPECT_EQ(t.GetInt64(kLExtendedPrice) % t.GetInt32(kLQuantity), 0);
      const bool q6 = t.GetInt32(kLShipDate) >= DateToDays(1994, 1, 1) &&
                      t.GetInt32(kLShipDate) < DateToDays(1995, 1, 1) &&
                      t.GetInt32(kLDiscount) > 5 &&
                      t.GetInt32(kLDiscount) < 7 &&
                      t.GetInt32(kLQuantity) < 24;
      if (q6) ++q6_qualifying;
    }
  }
  EXPECT_EQ(rows, info->tuple_count);
  // Q6 selectivity ~0.6% (the paper's number): 1/7 years x 1/11
  // discounts x 23/50 quantities = 0.597%.
  const double selectivity =
      static_cast<double>(q6_qualifying) / static_cast<double>(rows);
  EXPECT_NEAR(selectivity, 0.006, 0.002);
}

TEST_F(TpchDataTest, PartPromoFractionIsOneSixth) {
  auto info = LoadPart(db_, "part", 0.05, storage::PageLayout::kNsm);
  ASSERT_TRUE(info.ok());
  std::vector<std::byte> page(db_.device().page_size());
  std::uint64_t promo = 0;
  std::uint64_t rows = 0;
  for (std::uint64_t p = 0; p < info->page_count; ++p) {
    ASSERT_TRUE(
        db_.device().ReadPages(info->first_lpn + p, 1, page, 0).ok());
    auto reader = storage::NsmPageReader::Open(&info->schema, page);
    ASSERT_TRUE(reader.ok());
    for (std::uint16_t i = 0; i < reader->tuple_count(); ++i, ++rows) {
      const storage::TupleReader t(&info->schema, reader->tuple(i));
      if (t.GetChar(kPType).substr(0, 5) == "PROMO") ++promo;
    }
  }
  EXPECT_EQ(rows, 10000u);
  EXPECT_NEAR(static_cast<double>(promo) / static_cast<double>(rows),
              1.0 / 6.0, 0.02);
}

TEST_F(TpchDataTest, GenerationIsDeterministic) {
  auto a = LoadLineitem(db_, "a", 0.001, storage::PageLayout::kNsm, 42);
  auto b = LoadLineitem(db_, "b", 0.001, storage::PageLayout::kNsm, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::vector<std::byte> page_a(db_.device().page_size());
  std::vector<std::byte> page_b(db_.device().page_size());
  for (std::uint64_t p = 0; p < a->page_count; ++p) {
    ASSERT_TRUE(
        db_.device().ReadPages(a->first_lpn + p, 1, page_a, 0).ok());
    ASSERT_TRUE(
        db_.device().ReadPages(b->first_lpn + p, 1, page_b, 0).ok());
    EXPECT_EQ(page_a, page_b) << "page " << p;
  }
}

TEST_F(TpchDataTest, SyntheticSelectivityColumnIsCalibrated) {
  auto info = LoadSyntheticS(db_, "S", 8, 50000, 100,
                             storage::PageLayout::kNsm);
  ASSERT_TRUE(info.ok());
  const std::int64_t threshold = SelectivityThreshold(0.25);
  std::vector<std::byte> page(db_.device().page_size());
  std::uint64_t qualifying = 0;
  for (std::uint64_t p = 0; p < info->page_count; ++p) {
    ASSERT_TRUE(
        db_.device().ReadPages(info->first_lpn + p, 1, page, 0).ok());
    auto reader = storage::NsmPageReader::Open(&info->schema, page);
    ASSERT_TRUE(reader.ok());
    for (std::uint16_t i = 0; i < reader->tuple_count(); ++i) {
      const storage::TupleReader t(&info->schema, reader->tuple(i));
      if (t.GetInt32(2) < threshold) ++qualifying;
      // FK domain.
      EXPECT_GE(t.GetInt32(1), 1);
      EXPECT_LE(t.GetInt32(1), 100);
    }
  }
  EXPECT_NEAR(static_cast<double>(qualifying) / 50000.0, 0.25, 0.02);
}

TEST_F(TpchDataTest, SyntheticRKeysAreDense) {
  auto info =
      LoadSyntheticR(db_, "R", 8, 500, storage::PageLayout::kNsm);
  ASSERT_TRUE(info.ok());
  std::vector<std::byte> page(db_.device().page_size());
  std::vector<bool> seen(501, false);
  for (std::uint64_t p = 0; p < info->page_count; ++p) {
    ASSERT_TRUE(
        db_.device().ReadPages(info->first_lpn + p, 1, page, 0).ok());
    auto reader = storage::NsmPageReader::Open(&info->schema, page);
    ASSERT_TRUE(reader.ok());
    for (std::uint16_t i = 0; i < reader->tuple_count(); ++i) {
      const storage::TupleReader t(&info->schema, reader->tuple(i));
      const std::int32_t key = t.GetInt32(0);
      ASSERT_GE(key, 1);
      ASSERT_LE(key, 500);
      EXPECT_FALSE(seen[static_cast<std::size_t>(key)]);
      seen[static_cast<std::size_t>(key)] = true;
    }
  }
}

// Q6 through the engine must equal a brute-force reference computed
// straight from the pages.
TEST_F(TpchDataTest, Q6MatchesBruteForceReference) {
  auto info = LoadLineitem(db_, "lineitem", 0.002,
                           storage::PageLayout::kNsm);
  ASSERT_TRUE(info.ok());

  std::int64_t expected = 0;
  std::vector<std::byte> page(db_.device().page_size());
  for (std::uint64_t p = 0; p < info->page_count; ++p) {
    ASSERT_TRUE(
        db_.device().ReadPages(info->first_lpn + p, 1, page, 0).ok());
    auto reader = storage::NsmPageReader::Open(&info->schema, page);
    ASSERT_TRUE(reader.ok());
    for (std::uint16_t i = 0; i < reader->tuple_count(); ++i) {
      const storage::TupleReader t(&info->schema, reader->tuple(i));
      if (t.GetInt32(kLShipDate) >= DateToDays(1994, 1, 1) &&
          t.GetInt32(kLShipDate) < DateToDays(1995, 1, 1) &&
          t.GetInt32(kLDiscount) > 5 && t.GetInt32(kLDiscount) < 7 &&
          t.GetInt32(kLQuantity) < 24) {
        expected += t.GetInt64(kLExtendedPrice) * t.GetInt32(kLDiscount);
      }
    }
  }

  db_.ResetForColdRun();
  engine::QueryExecutor executor(&db_);
  auto result = executor.Execute(Q6Spec("lineitem"),
                                 engine::ExecutionTarget::kHost);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->agg_values.size(), 1u);
  EXPECT_EQ(result->agg_values[0], expected);
  EXPECT_EQ(Q6Revenue(result->agg_values),
            static_cast<double>(expected) / 10000.0);
}

TEST(QuerySpecBuildersTest, SpecsValidate) {
  engine::Database db(engine::DatabaseOptions::PaperSmartSsd());
  ASSERT_TRUE(
      LoadLineitem(db, "lineitem", 0.001, storage::PageLayout::kPax).ok());
  ASSERT_TRUE(LoadPart(db, "part", 0.001, storage::PageLayout::kPax).ok());
  ASSERT_TRUE(LoadSyntheticS(db, "S", 64, 100, 10,
                             storage::PageLayout::kPax)
                  .ok());
  ASSERT_TRUE(
      LoadSyntheticR(db, "R", 64, 10, storage::PageLayout::kPax).ok());

  const auto q6_spec = Q6Spec("lineitem");
  const auto q14_spec = Q14Spec("lineitem", "part");
  const auto join_spec = JoinQuerySpec("S", "R", 0.5);
  const auto scan_agg_spec = ScanQuerySpec("S", 64, 0.5, true);
  const auto scan_rows_spec = ScanQuerySpec("S", 64, 0.5, false, 3);
  EXPECT_TRUE(exec::Bind(q6_spec, db.catalog()).ok());
  EXPECT_TRUE(exec::Bind(q14_spec, db.catalog()).ok());
  EXPECT_TRUE(exec::Bind(join_spec, db.catalog()).ok());
  EXPECT_TRUE(exec::Bind(scan_agg_spec, db.catalog()).ok());
  EXPECT_TRUE(exec::Bind(scan_rows_spec, db.catalog()).ok());

  // Q14's plan probes first (Figure 6).
  auto q14 = exec::Bind(q14_spec, db.catalog());
  ASSERT_TRUE(q14.ok());
  EXPECT_EQ(q14->spec->order, exec::PipelineOrder::kProbeFirst);
}

}  // namespace
}  // namespace smartssd::tpch
