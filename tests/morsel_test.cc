// Morsel-parallel host scans are wall-clock-only: at any
// DatabaseOptions::host_threads setting the results, the operation
// counts, AND every virtual-time number must be byte-identical to the
// serial scan, because virtual time is replayed from per-page counts in
// page order regardless of which worker ground the page. These tests
// run the same queries end to end at host_threads 1, 2, and 8 and
// require exact equality; they are also the TSan workload for the
// scanner (build with SMARTSSD_SANITIZE=thread).

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "engine/database.h"
#include "engine/executor.h"
#include "exec/morsel.h"
#include "exec/page_processor.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"
#include "tpch/tpch_gen.h"

namespace smartssd::engine {
namespace {

constexpr double kSf = 0.002;  // 12k LINEITEM rows
constexpr std::uint64_t kSRows = 10'000;
constexpr std::uint64_t kRRows = 50;

std::unique_ptr<Database> MakeDb(int host_threads) {
  DatabaseOptions options = DatabaseOptions::PaperSmartSsd();
  options.host_threads = host_threads;
  auto db = std::make_unique<Database>(options);
  SMARTSSD_CHECK(tpch::LoadLineitem(*db, "lineitem", kSf,
                                    storage::PageLayout::kPax)
                     .ok());
  SMARTSSD_CHECK(tpch::LoadSyntheticS(*db, "S", 64, kSRows, kRRows,
                                      storage::PageLayout::kNsm)
                     .ok());
  SMARTSSD_CHECK(tpch::LoadSyntheticR(*db, "R", 64, kRRows,
                                      storage::PageLayout::kNsm)
                     .ok());
  SMARTSSD_CHECK(db->BuildZoneMap("lineitem").ok());
  SMARTSSD_CHECK(db->BuildZoneMap("S").ok());
  db->ResetForColdRun();
  return db;
}

QueryResult RunQuery(Database& db, const exec::QuerySpec& spec) {
  db.ResetForColdRun();
  QueryExecutor executor(&db);
  auto result = executor.Execute(spec, ExecutionTarget::kHost);
  SMARTSSD_CHECK(result.ok());
  return std::move(result).value();
}

// Full byte-identity between two runs: output rows, decoded aggregates,
// operation counts, and the virtual-time numbers those counts drive.
void ExpectIdentical(const QueryResult& a, const QueryResult& b) {
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.agg_values, b.agg_values);
  EXPECT_TRUE(a.stats.counts == b.stats.counts)
      << "operation counts diverged across host_threads";
  EXPECT_EQ(a.stats.host_cycles, b.stats.host_cycles);
  EXPECT_EQ(a.stats.end, b.stats.end) << "virtual time diverged";
  EXPECT_EQ(a.stats.pages_read, b.stats.pages_read);
  EXPECT_EQ(a.stats.pages_skipped, b.stats.pages_skipped);
  EXPECT_EQ(a.stats.bytes_over_host_link, b.stats.bytes_over_host_link);
}

class MorselTest : public ::testing::Test {
 protected:
  MorselTest()
      : db1_(MakeDb(1)), db2_(MakeDb(2)), db8_(MakeDb(8)) {}

  void CheckAcrossThreadCounts(const exec::QuerySpec& spec) {
    const QueryResult serial = RunQuery(*db1_, spec);
    const QueryResult t2 = RunQuery(*db2_, spec);
    const QueryResult t8 = RunQuery(*db8_, spec);
    ExpectIdentical(serial, t2);
    ExpectIdentical(serial, t8);
  }

  std::unique_ptr<Database> db1_;
  std::unique_ptr<Database> db2_;
  std::unique_ptr<Database> db8_;
};

TEST_F(MorselTest, ScanAggregateWithZoneMap) {
  CheckAcrossThreadCounts(tpch::Q6Spec("lineitem"));
}

TEST_F(MorselTest, ProjectionRowsConcatenateInPageOrder) {
  // Row output order is the serial scan order, not worker finish order.
  CheckAcrossThreadCounts(
      tpch::ScanQuerySpec("S", 64, 0.2, /*aggregate=*/false,
                          /*projected_columns=*/4));
}

TEST_F(MorselTest, GroupByMergesDeterministically) {
  CheckAcrossThreadCounts(tpch::Q1Spec("lineitem"));
}

TEST_F(MorselTest, JoinProbesSealedHashTable) {
  CheckAcrossThreadCounts(tpch::JoinQuerySpec("S", "R", 0.1));
}

TEST_F(MorselTest, TopNFallsBackToSerialAndStillMatches) {
  // Top-N is not morsel-eligible (its tie-keep-the-incumbent heap is
  // order-sensitive); host_threads > 1 must silently take the serial
  // path and produce the same bytes.
  CheckAcrossThreadCounts(
      tpch::TopNQuerySpec("S", 64, 0.3, /*limit=*/17));
}

TEST_F(MorselTest, EligibilityExcludesTopN) {
  exec::QuerySpec spec = tpch::TopNQuerySpec("S", 64, 0.3, 17);
  storage::Catalog& catalog = db1_->catalog();
  auto bound = exec::Bind(spec, catalog);
  SMARTSSD_CHECK(bound.ok());
  EXPECT_FALSE(exec::MorselScanner::Eligible(*bound));

  exec::QuerySpec agg = tpch::Q6Spec("lineitem");
  auto bound_agg = exec::Bind(agg, catalog);
  SMARTSSD_CHECK(bound_agg.ok());
  EXPECT_TRUE(exec::MorselScanner::Eligible(*bound_agg));
}

// Direct scanner determinism, independent of the engine: the same page
// stream through 2 and 8 workers yields identical per-page counts,
// identical merged aggregation state, and identical concatenated rows.
TEST_F(MorselTest, ScannerIsDeterministicAcrossThreadCounts) {
  const exec::QuerySpec spec =
      tpch::ScanQuerySpec("S", 64, 0.5, /*aggregate=*/true);
  auto bound = exec::Bind(spec, db1_->catalog());
  SMARTSSD_CHECK(bound.ok());
  const storage::TableInfo& outer = *bound->outer;

  // Pull the table's pages out through the buffer pool once.
  std::vector<std::vector<std::byte>> pages;
  for (std::uint64_t p = 0; p < outer.page_count; ++p) {
    auto page = db1_->buffer_pool().GetPage(
        outer.first_lpn + p, 0, outer.first_lpn + outer.page_count);
    SMARTSSD_CHECK(page.ok());
    pages.emplace_back(page.value().first.begin(),
                       page.value().first.end());
  }

  auto run_scanner = [&](int threads) {
    exec::MorselScanner scanner(&*bound, nullptr,
                                exec::KernelMode::kVectorized,
                                db1_->zone_map("S"), threads);
    for (std::uint64_t p = 0; p < pages.size(); ++p) {
      scanner.AddPage(p, pages[p]);
    }
    SMARTSSD_CHECK(scanner.Drain().ok());
    exec::OpCounts counts;
    for (std::size_t i = 0; i < scanner.pages_submitted(); ++i) {
      counts += scanner.page_counts(i);
    }
    std::vector<std::byte> rows;
    scanner.AppendRows(&rows);
    SMARTSSD_CHECK(scanner.merged().Finish(&counts, &rows).ok());
    return std::make_pair(counts, rows);
  };

  const auto [counts2, rows2] = run_scanner(2);
  const auto [counts8, rows8] = run_scanner(8);
  EXPECT_TRUE(counts2 == counts8);
  EXPECT_EQ(rows2, rows8);

  // And the serial PageProcessor grinds out the same bytes and counts.
  exec::PageProcessor processor(&*bound, nullptr,
                                exec::KernelMode::kVectorized);
  processor.SetZoneMap(db1_->zone_map("S"));
  exec::OpCounts serial_counts;
  std::vector<std::byte> serial_rows;
  for (std::uint64_t p = 0; p < pages.size(); ++p) {
    SMARTSSD_CHECK(
        processor.ProcessPage(pages[p], p, &serial_counts, &serial_rows)
            .ok());
  }
  SMARTSSD_CHECK(processor.Finish(&serial_counts, &serial_rows).ok());
  EXPECT_TRUE(serial_counts == counts2);
  EXPECT_EQ(serial_rows, rows2);
}

}  // namespace
}  // namespace smartssd::engine
