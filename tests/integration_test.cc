// End-to-end reproduction checks: the paper's headline ratios must hold
// at test scale (virtual time is scale-invariant in the ratios). These
// are the same experiments the bench/ binaries print, pinned as
// assertions so a regression in any layer breaks the build visibly.

#include <gtest/gtest.h>

#include "energy/energy_model.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"
#include "tpch/tpch_gen.h"

namespace smartssd {
namespace {

using engine::Database;
using engine::DatabaseOptions;
using engine::ExecutionTarget;
using engine::QueryExecutor;

constexpr double kSf = 0.01;  // 60k LINEITEM rows

double RunSeconds(Database& db, const exec::QuerySpec& spec,
                  ExecutionTarget target) {
  db.ResetForColdRun();
  QueryExecutor executor(&db);
  auto result = executor.Execute(spec, target);
  SMARTSSD_CHECK(result.ok());
  return result->stats.elapsed_seconds();
}

class PaperReproductionTest : public ::testing::Test {
 protected:
  PaperReproductionTest()
      : ssd_db_(DatabaseOptions::PaperSsd()),
        smart_db_(DatabaseOptions::PaperSmartSsd()) {
    SMARTSSD_CHECK(tpch::LoadLineitem(ssd_db_, "lineitem", kSf,
                                      storage::PageLayout::kNsm)
                       .ok());
    SMARTSSD_CHECK(
        tpch::LoadPart(ssd_db_, "part", kSf, storage::PageLayout::kNsm)
            .ok());
    for (const auto& [suffix, layout] :
         {std::pair{"_nsm", storage::PageLayout::kNsm},
          std::pair{"_pax", storage::PageLayout::kPax}}) {
      SMARTSSD_CHECK(
          tpch::LoadLineitem(smart_db_, std::string("lineitem") + suffix,
                             kSf, layout)
              .ok());
      SMARTSSD_CHECK(tpch::LoadPart(smart_db_,
                                    std::string("part") + suffix, kSf,
                                    layout)
                         .ok());
    }
  }

  Database ssd_db_;
  Database smart_db_;
};

// Figure 3: Q6 with PAX pushdown ~1.7x over the SSD (paper: 1.7x).
TEST_F(PaperReproductionTest, Fig3Q6Speedups) {
  const double ssd = RunSeconds(ssd_db_, tpch::Q6Spec("lineitem"),
                                ExecutionTarget::kHost);
  const double smart_nsm =
      RunSeconds(smart_db_, tpch::Q6Spec("lineitem_nsm"),
                 ExecutionTarget::kSmartSsd);
  const double smart_pax =
      RunSeconds(smart_db_, tpch::Q6Spec("lineitem_pax"),
                 ExecutionTarget::kSmartSsd);
  EXPECT_NEAR(ssd / smart_pax, 1.7, 0.15);
  EXPECT_NEAR(ssd / smart_nsm, 1.2, 0.15);
  EXPECT_LT(smart_pax, smart_nsm);  // PAX beats NSM inside the device
}

// Figure 7: Q14 with PAX pushdown ~1.3x (probe-heavy plan).
TEST_F(PaperReproductionTest, Fig7Q14Speedup) {
  const double ssd = RunSeconds(
      ssd_db_, tpch::Q14Spec("lineitem", "part"), ExecutionTarget::kHost);
  const double smart_pax =
      RunSeconds(smart_db_, tpch::Q14Spec("lineitem_pax", "part_pax"),
                 ExecutionTarget::kSmartSsd);
  EXPECT_NEAR(ssd / smart_pax, 1.3, 0.15);
}

// Figure 5: join speedup ~2.2x at 1% selectivity, ~1x at 100%.
TEST(PaperReproductionJoinTest, Fig5SelectivitySweep) {
  Database ssd_db(DatabaseOptions::PaperSsd());
  Database smart_db(DatabaseOptions::PaperSmartSsd());
  constexpr std::uint64_t kSRows = 100'000;
  constexpr std::uint64_t kRRows = kSRows / 400;
  SMARTSSD_CHECK(tpch::LoadSyntheticS(ssd_db, "S", 64, kSRows, kRRows,
                                      storage::PageLayout::kNsm)
                     .ok());
  SMARTSSD_CHECK(tpch::LoadSyntheticR(ssd_db, "R", 64, kRRows,
                                      storage::PageLayout::kNsm)
                     .ok());
  SMARTSSD_CHECK(tpch::LoadSyntheticS(smart_db, "S", 64, kSRows, kRRows,
                                      storage::PageLayout::kPax)
                     .ok());
  SMARTSSD_CHECK(tpch::LoadSyntheticR(smart_db, "R", 64, kRRows,
                                      storage::PageLayout::kPax)
                     .ok());

  const double ssd_low = RunSeconds(
      ssd_db, tpch::JoinQuerySpec("S", "R", 0.01), ExecutionTarget::kHost);
  const double smart_low =
      RunSeconds(smart_db, tpch::JoinQuerySpec("S", "R", 0.01),
                 ExecutionTarget::kSmartSsd);
  EXPECT_NEAR(ssd_low / smart_low, 2.2, 0.25);

  const double ssd_high = RunSeconds(
      ssd_db, tpch::JoinQuerySpec("S", "R", 1.0), ExecutionTarget::kHost);
  const double smart_high =
      RunSeconds(smart_db, tpch::JoinQuerySpec("S", "R", 1.0),
                 ExecutionTarget::kSmartSsd);
  EXPECT_NEAR(ssd_high / smart_high, 1.05, 0.2);

  // Monotone decay in between.
  const double smart_mid =
      RunSeconds(smart_db, tpch::JoinQuerySpec("S", "R", 0.5),
                 ExecutionTarget::kSmartSsd);
  EXPECT_GT(smart_mid, smart_low);
  EXPECT_LT(smart_mid, smart_high);
}

// Table 3: the energy ratios.
TEST_F(PaperReproductionTest, Table3EnergyRatios) {
  auto run_energy = [](Database& db, const exec::QuerySpec& spec,
                       ExecutionTarget target) {
    db.ResetForColdRun();
    QueryExecutor executor(&db);
    auto result = executor.Execute(spec, target);
    SMARTSSD_CHECK(result.ok());
    return energy::ComputeEnergy(result->stats, db.host().config(),
                                 db.device().power_profile());
  };

  Database hdd_db(DatabaseOptions::PaperHdd());
  SMARTSSD_CHECK(tpch::LoadLineitem(hdd_db, "lineitem", kSf,
                                    storage::PageLayout::kNsm)
                     .ok());

  const auto hdd = run_energy(hdd_db, tpch::Q6Spec("lineitem"),
                              ExecutionTarget::kHost);
  const auto ssd = run_energy(ssd_db_, tpch::Q6Spec("lineitem"),
                              ExecutionTarget::kHost);
  const auto pax = run_energy(smart_db_, tpch::Q6Spec("lineitem_pax"),
                              ExecutionTarget::kSmartSsd);

  EXPECT_NEAR(hdd.system_kilojoules / pax.system_kilojoules, 11.6, 1.5);
  EXPECT_NEAR(hdd.io_kilojoules / pax.io_kilojoules, 14.3, 1.5);
  EXPECT_NEAR(ssd.system_kilojoules / pax.system_kilojoules, 1.9, 0.2);
  EXPECT_NEAR(ssd.io_kilojoules / pax.io_kilojoules, 1.4, 0.2);
  EXPECT_NEAR(hdd.over_idle_kilojoules / pax.over_idle_kilojoules, 12.4,
              1.5);
  EXPECT_NEAR(ssd.over_idle_kilojoules / pax.over_idle_kilojoules, 2.3,
              0.3);
}

// Table 2 is asserted in ssd_device_test (Table2BandwidthGap); here we
// confirm the end-to-end engine sees the same ceiling: an almost-free
// aggregate scan pushes the smart path to ~2.8x.
TEST(PaperReproductionBoundTest, SpeedupApproachesBandwidthBound) {
  Database ssd_db(DatabaseOptions::PaperSsd());
  Database smart_db(DatabaseOptions::PaperSmartSsd());
  // Very wide tuples: minimal per-tuple CPU per byte.
  SMARTSSD_CHECK(tpch::LoadSyntheticS(ssd_db, "T", 64, 100'000, 100,
                                      storage::PageLayout::kNsm)
                     .ok());
  SMARTSSD_CHECK(tpch::LoadSyntheticS(smart_db, "T", 64, 100'000, 100,
                                      storage::PageLayout::kPax)
                     .ok());
  const double host = RunSeconds(
      ssd_db, tpch::ScanQuerySpec("T", 64, 0.0001, true),
      ExecutionTarget::kHost);
  const double smart = RunSeconds(
      smart_db, tpch::ScanQuerySpec("T", 64, 0.0001, true),
      ExecutionTarget::kSmartSsd);
  const double speedup = host / smart;
  EXPECT_GT(speedup, 2.0);
  EXPECT_LT(speedup, 2.9);  // can never beat the internal/host BW ratio
}

}  // namespace
}  // namespace smartssd
