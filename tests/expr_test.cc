#include <gtest/gtest.h>

#include <vector>

#include "expr/expression.h"
#include "expr/row_view.h"
#include "storage/pax_page.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace smartssd::expr {
namespace {

using storage::Column;
using storage::Schema;

Schema TestSchema() {
  auto schema = Schema::Create({
      Column::Int32("a"),
      Column::Int64("b"),
      Column::FixedChar("s", 10),
  });
  SMARTSSD_CHECK(schema.ok());
  return std::move(schema).value();
}

std::vector<std::byte> MakeTuple(const Schema& schema, std::int32_t a,
                                 std::int64_t b, std::string_view s) {
  std::vector<std::byte> tuple(schema.tuple_size());
  storage::TupleWriter writer(&schema, tuple);
  writer.SetInt32(0, a);
  writer.SetInt64(1, b);
  writer.SetChar(2, s);
  return tuple;
}

class ExprTest : public ::testing::Test {
 protected:
  ExprTest()
      : schema_(TestSchema()),
        tuple_(MakeTuple(schema_, 5, 100, "PROMO BRASS")),
        view_(&schema_, tuple_.data()) {}

  Value Eval(const ExprPtr& e) { return e->Evaluate(view_, &stats_); }

  Schema schema_;
  std::vector<std::byte> tuple_;
  NsmRowView view_;
  EvalStats stats_;
};

TEST_F(ExprTest, ColumnAndLiteral) {
  EXPECT_EQ(Eval(Col(0)).AsInt(), 5);
  EXPECT_EQ(Eval(Col(1)).AsInt(), 100);
  EXPECT_EQ(Eval(Col(2)).AsString(), "PROMO BRAS");  // CHAR(10)
  EXPECT_EQ(Eval(Lit(7)).AsInt(), 7);
  EXPECT_EQ(Eval(LitStr("x")).AsString(), "x");
  EXPECT_EQ(stats_.column_reads, 3u);
}

TEST_F(ExprTest, ComparisonsAllOps) {
  EXPECT_TRUE(Eval(Eq(Col(0), Lit(5))).AsBool());
  EXPECT_FALSE(Eval(Eq(Col(0), Lit(6))).AsBool());
  EXPECT_TRUE(Eval(Lt(Col(0), Lit(6))).AsBool());
  EXPECT_FALSE(Eval(Lt(Col(0), Lit(5))).AsBool());
  EXPECT_TRUE(Eval(Le(Col(0), Lit(5))).AsBool());
  EXPECT_TRUE(Eval(Gt(Col(0), Lit(4))).AsBool());
  EXPECT_TRUE(Eval(Ge(Col(0), Lit(5))).AsBool());
  EXPECT_TRUE(
      Eval(Compare(CompareOp::kNe, Col(0), Lit(4))).AsBool());
  EXPECT_EQ(stats_.comparisons, 8u);
}

TEST_F(ExprTest, StringComparison) {
  EXPECT_TRUE(
      Eval(Eq(Col(2), LitStr("PROMO BRAS"))).AsBool());
  EXPECT_TRUE(Eval(Gt(Col(2), LitStr("A"))).AsBool());
}

TEST_F(ExprTest, Arithmetic) {
  EXPECT_EQ(Eval(Add(Col(0), Lit(3))).AsInt(), 8);
  EXPECT_EQ(Eval(Sub(Lit(3), Col(0))).AsInt(), -2);
  EXPECT_EQ(Eval(Mul(Col(0), Col(1))).AsInt(), 500);
  EXPECT_EQ(Eval(Arith(ArithOp::kDiv, Col(1), Col(0))).AsDouble(), 20.0);
  EXPECT_EQ(stats_.arithmetic, 4u);
}

TEST_F(ExprTest, DivisionByZeroYieldsZero) {
  EXPECT_EQ(Eval(Arith(ArithOp::kDiv, Col(0), Lit(0))).AsDouble(), 0.0);
}

TEST_F(ExprTest, AndShortCircuits) {
  std::vector<ExprPtr> children;
  children.push_back(Lt(Col(0), Lit(0)));  // false: a=5
  children.push_back(Lt(Col(1), Lit(999)));
  const ExprPtr e = And(std::move(children));
  EXPECT_FALSE(Eval(e).AsBool());
  // Only the first comparison executed.
  EXPECT_EQ(stats_.comparisons, 1u);
  EXPECT_EQ(stats_.column_reads, 1u);
}

TEST_F(ExprTest, AndAllPass) {
  std::vector<ExprPtr> children;
  children.push_back(Gt(Col(0), Lit(0)));
  children.push_back(Lt(Col(1), Lit(999)));
  EXPECT_TRUE(Eval(And(std::move(children))).AsBool());
  EXPECT_EQ(stats_.comparisons, 2u);
}

TEST_F(ExprTest, OrShortCircuits) {
  std::vector<ExprPtr> children;
  children.push_back(Gt(Col(0), Lit(0)));  // true
  children.push_back(Lt(Col(1), Lit(999)));
  EXPECT_TRUE(Eval(Or(std::move(children))).AsBool());
  EXPECT_EQ(stats_.comparisons, 1u);
}

TEST_F(ExprTest, NotNegates) {
  EXPECT_FALSE(Eval(Not(Gt(Col(0), Lit(0)))).AsBool());
  EXPECT_TRUE(Eval(Not(Gt(Col(0), Lit(99)))).AsBool());
}

TEST_F(ExprTest, LikePrefix) {
  EXPECT_TRUE(Eval(LikePrefix(Col(2), "PROMO")).AsBool());
  EXPECT_FALSE(Eval(LikePrefix(Col(2), "STANDARD")).AsBool());
  EXPECT_EQ(stats_.like_evals, 2u);
}

TEST_F(ExprTest, CaseWhen) {
  const ExprPtr promo = CaseWhen(LikePrefix(Col(2), "PROMO"),
                                 Mul(Col(0), Lit(2)), Lit(0));
  EXPECT_EQ(Eval(promo).AsInt(), 10);
  const ExprPtr nope = CaseWhen(LikePrefix(Col(2), "XX"),
                                Mul(Col(0), Lit(2)), Lit(0));
  EXPECT_EQ(Eval(nope).AsInt(), 0);
  EXPECT_EQ(stats_.case_evals, 2u);
  // Only the taken branch is evaluated: one multiply total.
  EXPECT_EQ(stats_.arithmetic, 1u);
}

TEST_F(ExprTest, ValidateCatchesBadColumns) {
  EXPECT_TRUE(Col(2)->Validate(schema_).ok());
  EXPECT_FALSE(Col(3)->Validate(schema_).ok());
  EXPECT_FALSE(Col(-1)->Validate(schema_).ok());
  EXPECT_FALSE(Lt(Col(7), Lit(0))->Validate(schema_).ok());
  EXPECT_FALSE(And({})->Validate(schema_).ok());
  EXPECT_FALSE(LikePrefix(Col(2), "")->Validate(schema_).ok());
}

TEST_F(ExprTest, CollectColumns) {
  std::vector<ExprPtr> children;
  children.push_back(Lt(Col(0), Lit(1)));
  children.push_back(Eq(Col(2), LitStr("x")));
  const ExprPtr e =
      CaseWhen(And(std::move(children)), Col(1), Lit(0));
  std::vector<int> columns;
  e->CollectColumns(&columns);
  EXPECT_EQ(columns, (std::vector<int>{0, 2, 1}));
}

TEST_F(ExprTest, EstimateOpsCountsWorstCase) {
  std::vector<ExprPtr> children;
  children.push_back(Lt(Col(0), Lit(1)));
  children.push_back(Gt(Col(1), Lit(2)));
  children.push_back(Eq(Col(0), Lit(3)));
  const ExprPtr e = And(std::move(children));
  EvalStats estimate;
  e->EstimateOps(&estimate);
  EXPECT_EQ(estimate.comparisons, 3u);
  EXPECT_EQ(estimate.column_reads, 3u);
}

TEST_F(ExprTest, ToStringRendersSql) {
  EXPECT_EQ(Lt(Col(0), Lit(5))->ToString(), "($0 < 5)");
  EXPECT_EQ(LikePrefix(Col(2), "PROMO")->ToString(),
            "($2 LIKE 'PROMO%')");
  std::vector<ExprPtr> children;
  children.push_back(Gt(Col(0), Lit(1)));
  children.push_back(Lt(Col(0), Lit(9)));
  EXPECT_EQ(And(std::move(children))->ToString(),
            "(($0 > 1) AND ($0 < 9))");
}

// PAX and NSM views must agree on every column of the same logical row.
TEST(RowViewTest, PaxAndNsmViewsAgree) {
  const Schema schema = TestSchema();
  const auto tuple = MakeTuple(schema, -7, 1LL << 40, "hello");
  storage::PaxPageBuilder builder(&schema, 1024);
  ASSERT_TRUE(builder.Append(tuple));
  auto reader = storage::PaxPageReader::Open(&schema, builder.image());
  ASSERT_TRUE(reader.ok());

  const NsmRowView nsm(&schema, tuple.data());
  const PaxRowView pax(&schema, &*reader, 0);
  EXPECT_EQ(nsm.GetColumn(0).AsInt(), pax.GetColumn(0).AsInt());
  EXPECT_EQ(nsm.GetColumn(1).AsInt(), pax.GetColumn(1).AsInt());
  EXPECT_EQ(nsm.GetColumn(2).AsString(), pax.GetColumn(2).AsString());
}

TEST(ValueTest, TypeChecksAndConversions) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(3).AsDouble(), 3.0);  // int widens to double
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("ab").AsString(), "ab");
}

}  // namespace
}  // namespace smartssd::expr
