// Boundary-literal behavior of ExtractColumnRanges, the conjunct
// analysis feeding zone-map pruning on both the host and pushdown
// paths. The differential fuzzer generates exactly these extremes
// (int64 min/max comparisons, contradictory equalities), so these
// deterministic anchors pin down the semantics the fuzzer relies on.

#include <gtest/gtest.h>

#include <limits>

#include "engine/database.h"
#include "engine/executor.h"
#include "exec/predicate_range.h"
#include "tpch/synthetic.h"

namespace smartssd {
namespace {

namespace ex = ::smartssd::expr;
using exec::ColumnRange;
using exec::ExtractColumnRanges;

constexpr std::int64_t kInt64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kInt64Max = std::numeric_limits<std::int64_t>::max();

ex::ExprPtr And2(ex::ExprPtr a, ex::ExprPtr b) {
  std::vector<ex::ExprPtr> children;
  children.push_back(std::move(a));
  children.push_back(std::move(b));
  return ex::And(std::move(children));
}

TEST(PredicateRangeTest, SimpleComparisonsNarrowTheInterval) {
  auto ranges = ExtractColumnRanges(
      And2(ex::Lt(ex::Col(0), ex::Lit(10)),
               ex::Ge(ex::Col(0), ex::Lit(3)))
          .get());
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].lo, 3);
  EXPECT_EQ(ranges[0].hi, 9);  // kLt excludes the literal
  EXPECT_FALSE(ranges[0].impossible());
}

TEST(PredicateRangeTest, LtAtInt64MinYieldsEmptyRangeNotUnderflow) {
  // "col < INT64_MIN" matches nothing; literal-1 would wrap to
  // INT64_MAX and match everything.
  auto ranges = ExtractColumnRanges(
      ex::Compare(ex::CompareOp::kLt, ex::Col(2), ex::Lit(kInt64Min))
          .get());
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_TRUE(ranges[2].impossible());
}

TEST(PredicateRangeTest, GtAtInt64MaxYieldsEmptyRangeNotOverflow) {
  auto ranges = ExtractColumnRanges(
      ex::Compare(ex::CompareOp::kGt, ex::Col(1), ex::Lit(kInt64Max))
          .get());
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_TRUE(ranges[1].impossible());
}

TEST(PredicateRangeTest, LeGeAtExtremesStayFullRange) {
  auto le = ExtractColumnRanges(
      ex::Le(ex::Col(0), ex::Lit(kInt64Max)).get());
  EXPECT_EQ(le[0].lo, kInt64Min);
  EXPECT_EQ(le[0].hi, kInt64Max);
  auto ge = ExtractColumnRanges(
      ex::Ge(ex::Col(0), ex::Lit(kInt64Min)).get());
  EXPECT_EQ(ge[0].lo, kInt64Min);
  EXPECT_EQ(ge[0].hi, kInt64Max);
}

TEST(PredicateRangeTest, ContradictoryEqConjunctsAreImpossible) {
  auto ranges = ExtractColumnRanges(
      And2(ex::Eq(ex::Col(3), ex::Lit(5)),
               ex::Eq(ex::Col(3), ex::Lit(7)))
          .get());
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_TRUE(ranges[3].impossible());
}

TEST(PredicateRangeTest, EqThenDisjointLtIsImpossible) {
  auto ranges = ExtractColumnRanges(
      And2(ex::Eq(ex::Col(0), ex::Lit(100)),
               ex::Lt(ex::Col(0), ex::Lit(50)))
          .get());
  EXPECT_TRUE(ranges[0].impossible());
}

TEST(PredicateRangeTest, NeAndNonConjunctShapesAreIgnored) {
  // Ne does not narrow an interval.
  auto ne = ExtractColumnRanges(
      ex::Compare(ex::CompareOp::kNe, ex::Col(0), ex::Lit(5)).get());
  ASSERT_EQ(ne.size(), 1u);
  EXPECT_EQ(ne[0].lo, kInt64Min);
  EXPECT_EQ(ne[0].hi, kInt64Max);
  // Disjunctions are conservatively skipped entirely.
  std::vector<ex::ExprPtr> children;
  children.push_back(ex::Lt(ex::Col(0), ex::Lit(5)));
  children.push_back(ex::Gt(ex::Col(1), ex::Lit(7)));
  EXPECT_TRUE(ExtractColumnRanges(ex::Or(std::move(children)).get()).empty());
  // So is a negated comparison.
  EXPECT_TRUE(
      ExtractColumnRanges(ex::Not(ex::Lt(ex::Col(0), ex::Lit(5))).get())
          .empty());
  // Null predicate: no ranges.
  EXPECT_TRUE(ExtractColumnRanges(nullptr).empty());
}

// End-to-end anchor: a boundary-literal predicate must prune pages via
// the zone map without changing results — on either execution path.
class ZoneMapBoundaryTest : public ::testing::Test {
 protected:
  ZoneMapBoundaryTest() : db_(engine::DatabaseOptions::PaperSmartSsd()) {
    // R-style: Col_1 (index 0) is row+1, so every page has a tight
    // sorted [min, max] zone and the ranges below prune precisely.
    SMARTSSD_CHECK(tpch::LoadSyntheticR(db_, "S", 8, 4'000,
                                        storage::PageLayout::kNsm)
                       .ok());
    SMARTSSD_CHECK(db_.BuildZoneMap("S").ok());
    db_.ResetForColdRun();
  }

  Result<engine::QueryResult> Run(const exec::QuerySpec& spec,
                                  engine::ExecutionTarget target) {
    db_.ResetForColdRun();
    engine::QueryExecutor executor(&db_);
    return executor.Execute(spec, target);
  }

  static exec::QuerySpec CountWhere(ex::ExprPtr predicate) {
    exec::QuerySpec spec;
    spec.name = "boundary";
    spec.table = "S";
    spec.predicate = std::move(predicate);
    exec::AggSpec agg;
    agg.fn = exec::AggSpec::Fn::kCount;
    agg.name = "n";
    spec.aggregates.push_back(std::move(agg));
    return spec;
  }

  engine::Database db_;
};

TEST_F(ZoneMapBoundaryTest, ImpossibleRangePrunesEveryPageBothPaths) {
  // Col_1 is row+1, so the zone map tracks tight sorted ranges; a
  // contradictory conjunction must skip every page and count zero.
  const exec::QuerySpec spec = CountWhere(
      And2(ex::Eq(ex::Col(0), ex::Lit(5)),
               ex::Eq(ex::Col(0), ex::Lit(7))));
  auto host = Run(spec, engine::ExecutionTarget::kHost);
  ASSERT_TRUE(host.ok());
  EXPECT_EQ(host->agg_values, std::vector<std::int64_t>{0});
  EXPECT_EQ(host->stats.pages_read, 0u);
  EXPECT_GT(host->stats.pages_skipped, 0u);

  auto smart = Run(spec, engine::ExecutionTarget::kSmartSsd);
  ASSERT_TRUE(smart.ok());
  EXPECT_EQ(smart->agg_values, host->agg_values);
  EXPECT_EQ(smart->stats.pages_skipped, host->stats.pages_skipped);
}

TEST_F(ZoneMapBoundaryTest, Int64ExtremeLiteralsAgreeAcrossPaths) {
  struct Case {
    ex::CompareOp op;
    std::int64_t literal;
    std::int64_t expect_count;  // of 4000 rows, Col_1 in [1, 4000]
  };
  const Case cases[] = {
      {ex::CompareOp::kLt, kInt64Min, 0},
      {ex::CompareOp::kLe, kInt64Min, 0},
      {ex::CompareOp::kGt, kInt64Max, 0},
      {ex::CompareOp::kGe, kInt64Max, 0},
      {ex::CompareOp::kGt, kInt64Min, 4000},
      {ex::CompareOp::kLt, kInt64Max, 4000},
      {ex::CompareOp::kLe, 0, 0},
      {ex::CompareOp::kGe, 1, 4000},
  };
  for (const Case& c : cases) {
    const exec::QuerySpec spec =
        CountWhere(ex::Compare(c.op, ex::Col(0), ex::Lit(c.literal)));
    auto host = Run(spec, engine::ExecutionTarget::kHost);
    ASSERT_TRUE(host.ok());
    auto smart = Run(spec, engine::ExecutionTarget::kSmartSsd);
    ASSERT_TRUE(smart.ok());
    EXPECT_EQ(host->agg_values, std::vector<std::int64_t>{c.expect_count})
        << "op=" << static_cast<int>(c.op) << " literal=" << c.literal;
    EXPECT_EQ(smart->agg_values, host->agg_values);
  }
}

}  // namespace
}  // namespace smartssd
