#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/rate_server.h"

namespace smartssd::sim {
namespace {

TEST(ClockTest, StartsAtZeroAndAdvances) {
  Clock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.Advance(5);
  EXPECT_EQ(clock.now(), 5u);
  clock.AdvanceTo(10);
  EXPECT_EQ(clock.now(), 10u);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0u);
}

TEST(RateServerTest, ServesImmediatelyWhenIdle) {
  RateServer server("s");
  EXPECT_EQ(server.Serve(100, 50), 150u);
  EXPECT_EQ(server.busy_time(), 50u);
  EXPECT_EQ(server.requests(), 1u);
}

TEST(RateServerTest, QueuesBackToBackRequests) {
  RateServer server("s");
  // Three requests all ready at t=0, 10 units each: FIFO completions.
  EXPECT_EQ(server.Serve(0, 10), 10u);
  EXPECT_EQ(server.Serve(0, 10), 20u);
  EXPECT_EQ(server.Serve(0, 10), 30u);
  EXPECT_EQ(server.busy_time(), 30u);
}

TEST(RateServerTest, IdleGapsDoNotAccrueBusyTime) {
  RateServer server("s");
  server.Serve(0, 10);
  server.Serve(100, 10);  // 90 units idle in between
  EXPECT_EQ(server.busy_time(), 20u);
  EXPECT_EQ(server.next_free(), 110u);
}

TEST(RateServerTest, TandemPipelineConvergesToBottleneck) {
  // Classic tandem queue: stage A 5 units/item, stage B 20 units/item.
  // For many items, completion approaches items * 20 (B is the
  // bottleneck), regardless of A.
  RateServer a("a");
  RateServer b("b");
  SimTime done = 0;
  constexpr int kItems = 1000;
  for (int i = 0; i < kItems; ++i) {
    const SimTime at_a = a.Serve(0, 5);
    done = b.Serve(at_a, 20);
  }
  EXPECT_GE(done, kItems * 20u);
  EXPECT_LE(done, kItems * 20u + 5u);
}

TEST(ParallelServerTest, LeastLoadedDispatch) {
  ParallelServer pool("cpu", 2);
  // Four tasks at t=0, 10 units: two cores -> finish at 10,10,20,20.
  EXPECT_EQ(pool.Serve(0, 10), 10u);
  EXPECT_EQ(pool.Serve(0, 10), 10u);
  EXPECT_EQ(pool.Serve(0, 10), 20u);
  EXPECT_EQ(pool.Serve(0, 10), 20u);
  EXPECT_EQ(pool.busy_time(), 40u);
  EXPECT_EQ(pool.drain_time(), 20u);
}

TEST(ParallelServerTest, ThroughputScalesWithWidth) {
  // N identical tasks across k servers finish in ceil(N/k) rounds.
  for (const int k : {1, 2, 4, 8}) {
    ParallelServer pool("cpu", k);
    SimTime done = 0;
    for (int i = 0; i < 64; ++i) {
      done = std::max(done, pool.Serve(0, 100));
    }
    EXPECT_EQ(pool.drain_time(), 100u * (64 / k));
    EXPECT_EQ(done, pool.drain_time());
  }
}

TEST(ParallelServerTest, SingleServerMatchesRateServer) {
  ParallelServer pool("one", 1);
  RateServer server("s");
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(pool.Serve(i * 3, 7), server.Serve(i * 3, 7));
  }
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  Clock clock;
  EventQueue queue(&clock);
  std::vector<int> order;
  queue.ScheduleAt(30, [&](SimTime) { order.push_back(3); });
  queue.ScheduleAt(10, [&](SimTime) { order.push_back(1); });
  queue.ScheduleAt(20, [&](SimTime) { order.push_back(2); });
  queue.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now(), 30u);
}

TEST(EventQueueTest, SameTimeEventsRunFifo) {
  Clock clock;
  EventQueue queue(&clock);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.ScheduleAt(7, [&order, i](SimTime) { order.push_back(i); });
  }
  queue.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  Clock clock;
  EventQueue queue(&clock);
  int fired = 0;
  queue.ScheduleAt(5, [&](SimTime now) {
    ++fired;
    queue.ScheduleAt(now + 5, [&](SimTime) { ++fired; });
  });
  queue.RunUntilEmpty();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(clock.now(), 10u);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  Clock clock;
  EventQueue queue(&clock);
  int fired = 0;
  queue.ScheduleAt(10, [&](SimTime) { ++fired; });
  queue.ScheduleAt(50, [&](SimTime) { ++fired; });
  queue.RunUntil(20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(clock.now(), 20u);
  EXPECT_EQ(queue.size(), 1u);
  queue.RunUntilEmpty();
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace smartssd::sim
