#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "exec/hash_table.h"

namespace smartssd::exec {
namespace {

std::vector<std::byte> Payload(std::int64_t v) {
  std::vector<std::byte> payload(8);
  std::memcpy(payload.data(), &v, 8);
  return payload;
}

TEST(JoinHashTableTest, InsertAndProbe) {
  JoinHashTable table(8, 16);
  ASSERT_TRUE(table.Insert(1, Payload(100)).ok());
  ASSERT_TRUE(table.Insert(2, Payload(200)).ok());
  const std::byte* hit = table.Probe(1);
  ASSERT_NE(hit, nullptr);
  std::int64_t v;
  std::memcpy(&v, hit, 8);
  EXPECT_EQ(v, 100);
  EXPECT_EQ(table.Probe(3), nullptr);
  EXPECT_EQ(table.entries(), 2u);
}

TEST(JoinHashTableTest, DuplicateKeyRejected) {
  JoinHashTable table(8, 16);
  ASSERT_TRUE(table.Insert(1, Payload(100)).ok());
  auto status = table.Insert(1, Payload(999));
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
  // Original payload intact.
  std::int64_t v;
  std::memcpy(&v, table.Probe(1), 8);
  EXPECT_EQ(v, 100);
}

TEST(JoinHashTableTest, WrongPayloadWidthRejected) {
  JoinHashTable table(4, 16);
  EXPECT_FALSE(table.Insert(1, Payload(9)).ok());  // 8 bytes into 4-wide
}

TEST(JoinHashTableTest, ZeroWidthPayload) {
  JoinHashTable table(0, 4);
  ASSERT_TRUE(table.Insert(5, {}).ok());
  // A hit returns a (possibly empty) non-null sentinel... probe semantics:
  // key 5 present.
  EXPECT_NE(table.Probe(5), nullptr);
  EXPECT_EQ(table.Probe(6), nullptr);
}

TEST(JoinHashTableTest, GrowsBeyondExpectedEntries) {
  JoinHashTable table(8, 4);  // deliberately undersized
  for (std::int64_t k = 0; k < 10000; ++k) {
    ASSERT_TRUE(table.Insert(k, Payload(k * 2)).ok()) << k;
  }
  EXPECT_EQ(table.entries(), 10000u);
  for (std::int64_t k = 0; k < 10000; ++k) {
    const std::byte* hit = table.Probe(k);
    ASSERT_NE(hit, nullptr) << k;
    std::int64_t v;
    std::memcpy(&v, hit, 8);
    EXPECT_EQ(v, k * 2);
  }
}

TEST(JoinHashTableTest, NegativeAndExtremeKeys) {
  JoinHashTable table(8, 8);
  const std::int64_t keys[] = {-1, 0, std::numeric_limits<std::int64_t>::min(),
                               std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t k : keys) {
    ASSERT_TRUE(table.Insert(k, Payload(k ^ 7)).ok());
  }
  for (const std::int64_t k : keys) {
    const std::byte* hit = table.Probe(k);
    ASSERT_NE(hit, nullptr);
    std::int64_t v;
    std::memcpy(&v, hit, 8);
    EXPECT_EQ(v, k ^ 7);
  }
}

TEST(JoinHashTableTest, RandomizedAgainstReference) {
  Random rng(77);
  JoinHashTable table(8, 64);
  std::unordered_map<std::int64_t, std::int64_t> reference;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t key =
        static_cast<std::int64_t>(rng.Uniform(2000));
    const std::int64_t value = static_cast<std::int64_t>(rng.NextUint64());
    const bool inserted = table.Insert(key, Payload(value)).ok();
    const bool expected_new = reference.emplace(key, value).second;
    EXPECT_EQ(inserted, expected_new);
  }
  EXPECT_EQ(table.entries(), reference.size());
  for (const auto& [key, value] : reference) {
    const std::byte* hit = table.Probe(key);
    ASSERT_NE(hit, nullptr);
    std::int64_t v;
    std::memcpy(&v, hit, 8);
    EXPECT_EQ(v, value);
  }
}

TEST(JoinHashTableTest, InsertAfterProbeIsRejected) {
  JoinHashTable table(8, 16);
  ASSERT_TRUE(table.Insert(1, Payload(100)).ok());
  EXPECT_FALSE(table.sealed());
  ASSERT_NE(table.Probe(1), nullptr);
  EXPECT_TRUE(table.sealed());
  // Inserting now could grow `payloads_` and dangle the pointer a
  // caller is still holding from Probe(); the table must refuse.
  auto status = table.Insert(2, Payload(200));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(table.entries(), 1u);
  // A missed probe seals too — the caller has still observed layout.
  JoinHashTable miss_table(8, 16);
  EXPECT_EQ(miss_table.Probe(42), nullptr);
  EXPECT_EQ(miss_table.Insert(1, Payload(1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(JoinHashTableTest, PayloadPointersStableOnceSealed) {
  // Grow far past the reserve so `payloads_` reallocates during build;
  // pointers handed out after sealing must all stay valid and correct.
  JoinHashTable table(8, 2);  // deliberately undersized reserve
  constexpr std::int64_t kEntries = 4096;
  for (std::int64_t k = 0; k < kEntries; ++k) {
    ASSERT_TRUE(table.Insert(k, Payload(k * 3)).ok()) << k;
  }
  std::vector<const std::byte*> hits;
  hits.reserve(kEntries);
  for (std::int64_t k = 0; k < kEntries; ++k) {
    const std::byte* hit = table.Probe(k);
    ASSERT_NE(hit, nullptr) << k;
    hits.push_back(hit);
  }
  // Any further insert is refused, so the pointers cannot be moved.
  EXPECT_FALSE(table.Insert(kEntries, Payload(0)).ok());
  for (std::int64_t k = 0; k < kEntries; ++k) {
    std::int64_t v;
    std::memcpy(&v, hits[static_cast<std::size_t>(k)], 8);
    EXPECT_EQ(v, k * 3) << k;
  }
}

TEST(JoinHashTableTest, MovedFromTableIsEmptyAndReusable) {
  // Regression: the defaulted move operations left the moved-from table
  // with an empty slot vector, so its next Probe() hashed modulo zero.
  // The custom moves must reset the source to a valid empty table.
  JoinHashTable a(8, 16);
  ASSERT_TRUE(a.Insert(1, Payload(100)).ok());
  ASSERT_TRUE(a.Insert(2, Payload(200)).ok());

  JoinHashTable b(std::move(a));
  std::int64_t v;
  std::memcpy(&v, b.Probe(1), 8);
  EXPECT_EQ(v, 100);
  std::memcpy(&v, b.Probe(2), 8);
  EXPECT_EQ(v, 200);

  // The source is empty but fully operational: probes miss (no crash),
  // and it accepts fresh inserts.
  EXPECT_EQ(a.entries(), 0u);
  EXPECT_EQ(a.Probe(1), nullptr);
  JoinHashTable c(8, 16);
  ASSERT_TRUE(c.Insert(7, Payload(700)).ok());
  JoinHashTable d(8, 16);
  d = std::move(c);
  std::memcpy(&v, d.Probe(7), 8);
  EXPECT_EQ(v, 700);
  EXPECT_EQ(c.entries(), 0u);
  EXPECT_EQ(c.Probe(7), nullptr);
}

TEST(JoinHashTableTest, MemoryEstimateCoversActualUsage) {
  const std::uint64_t entries = 5000;
  const std::uint64_t estimate = JoinHashTable::EstimateBytes(entries, 8);
  JoinHashTable table(8, entries);
  for (std::int64_t k = 0; k < static_cast<std::int64_t>(entries); ++k) {
    ASSERT_TRUE(table.Insert(k, Payload(k)).ok());
  }
  EXPECT_LE(table.memory_bytes(), estimate + estimate / 4);
  EXPECT_GE(estimate, table.memory_bytes() / 2);
}

}  // namespace
}  // namespace smartssd::exec
