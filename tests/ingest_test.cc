// The write path end-to-end: appends into reserved extents, resumable
// update/append cursors, zone-map recovery at flush (the regression the
// old drop-forever behavior hid), ingest batches as resumable tasks, and
// ingest clients co-scheduled with queries under the workload scheduler.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/executor.h"
#include "engine/ingest.h"
#include "engine/update.h"
#include "engine/workload.h"
#include "tpch/synthetic.h"

namespace smartssd::engine {
namespace {

namespace ex = ::smartssd::expr;

// Deterministic 4-column INT32 table: Col_1 = row (key), Col_2 =
// row % 97, Col_3 = (row * 7) % 1000, Col_4 = 5. Pure in the row index,
// so appended rows are indistinguishable from loaded ones.
void FillRow(std::uint64_t row, storage::TupleWriter& writer) {
  writer.SetInt32(0, static_cast<std::int32_t>(row));
  writer.SetInt32(1, static_cast<std::int32_t>(row % 97));
  writer.SetInt32(2, static_cast<std::int32_t>((row * 7) % 1000));
  writer.SetInt32(3, 5);
}

constexpr std::uint64_t kBaseRows = 4'000;

void LoadInto(Database& db, storage::PageLayout layout,
              std::uint64_t reserve_extra_pages = 8) {
  SMARTSSD_CHECK(db.LoadTable("T", tpch::SyntheticSchema(4), layout,
                              kBaseRows, FillRow, reserve_extra_pages)
                     .ok());
  SMARTSSD_CHECK(db.BuildZoneMap("T").ok());
  db.ResetForColdRun();
}

class IngestTest : public ::testing::TestWithParam<storage::PageLayout> {
 protected:
  IngestTest() : db_(DatabaseOptions::PaperSmartSsd()) {
    LoadInto(db_, GetParam());
  }

  // SUM(Col_3) over rows with Col_1 in [lo, hi].
  std::int64_t RangeSum(Database& db, ExecutionTarget target,
                        std::int64_t lo, std::int64_t hi) {
    exec::QuerySpec spec;
    spec.table = "T";
    spec.predicate = ex::And([&] {
      std::vector<ex::ExprPtr> terms;
      terms.push_back(ex::Ge(ex::Col(0), ex::Lit(lo)));
      terms.push_back(ex::Le(ex::Col(0), ex::Lit(hi)));
      return terms;
    }());
    spec.aggregates.push_back({exec::AggSpec::Fn::kSum, ex::Col(2), "s"});
    QueryExecutor executor(&db);
    auto result = executor.Execute(spec, target);
    SMARTSSD_CHECK(result.ok());
    return result->agg_values[0];
  }

  Database db_;
};

TEST_P(IngestTest, AppendVisibleOnHostThenPushdownAfterFlush) {
  const std::int64_t quiet =
      RangeSum(db_, ExecutionTarget::kHost, 0, 1 << 30);

  TableAppender appender(&db_);
  auto stats = appender.Append("T", 100, FillRow);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_appended, 100u);
  EXPECT_GT(stats->pages_dirtied, 0u);

  // Host sees the appended rows through the pool immediately.
  std::int64_t expected = quiet;
  for (std::uint64_t r = kBaseRows; r < kBaseRows + 100; ++r) {
    expected += static_cast<std::int64_t>((r * 7) % 1000);
  }
  EXPECT_EQ(RangeSum(db_, ExecutionTarget::kHost, 0, 1 << 30), expected);

  // Pushdown is gated until the dirty pages flush back.
  exec::QuerySpec spec;
  spec.table = "T";
  spec.aggregates.push_back({exec::AggSpec::Fn::kSum, ex::Col(2), "s"});
  QueryExecutor executor(&db_);
  auto refused = executor.Execute(spec, ExecutionTarget::kSmartSsd);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(db_.FlushAll(0).ok());
  EXPECT_EQ(RangeSum(db_, ExecutionTarget::kSmartSsd, 0, 1 << 30),
            expected);
}

TEST_P(IngestTest, ReservedExtentExhaustionIsFailedPrecondition) {
  Database small(DatabaseOptions::PaperSmartSsd());
  LoadInto(small, GetParam(), /*reserve_extra_pages=*/1);
  auto info = small.catalog().GetTable("T");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->reserved_pages, (*info)->page_count + 1);

  // One page of headroom: appending several pages' worth of rows must
  // fill it and then fail, leaving what fit durable.
  TableAppender appender(&small);
  auto stats = appender.Append("T", 10'000, FillRow);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
}

TEST_P(IngestTest, UpdateCursorMatchesMonolithicUpdate) {
  Database other(DatabaseOptions::PaperSmartSsd());
  LoadInto(other, GetParam());

  const auto pred = ex::Le(ex::Col(0), ex::Lit(500));
  const auto mutate = [](const expr::RowView&,
                         storage::TupleWriter& writer) {
    writer.SetInt32(2, 11);
  };

  TableUpdater updater(&db_);
  auto mono = updater.Update("T", pred.get(), mutate);
  ASSERT_TRUE(mono.ok());

  auto cursor = UpdateCursor::Open(&other, "T", pred.get(), mutate);
  ASSERT_TRUE(cursor.ok());
  SimTime t = 0;
  int steps = 0;
  while (!cursor->done()) {
    auto step = cursor->StepPage(t);
    ASSERT_TRUE(step.ok());
    t = *step;
    ++steps;
  }
  EXPECT_GT(steps, 1);  // actually page-granular
  EXPECT_EQ(cursor->stats().rows_matched, mono->rows_matched);
  EXPECT_EQ(cursor->stats().pages_dirtied, mono->pages_dirtied);
  EXPECT_EQ(cursor->stats().end, mono->end);
  EXPECT_EQ(RangeSum(db_, ExecutionTarget::kHost, 0, 1 << 30),
            RangeSum(other, ExecutionTarget::kHost, 0, 1 << 30));
}

// The regression this PR exists to pin: an update used to *drop* the
// zone map permanently; now it only goes stale and FlushAll rebuilds it.
TEST_P(IngestTest, FlushAllRestoresZoneMapAfterUpdate) {
  ASSERT_NE(db_.zone_map("T"), nullptr);
  TableUpdater updater(&db_);
  const auto pred = ex::Le(ex::Col(0), ex::Lit(100));
  ASSERT_TRUE(updater
                  .Update("T", pred.get(),
                          [](const expr::RowView&,
                             storage::TupleWriter& writer) {
                            writer.SetInt32(2, 999);
                          })
                  .ok());
  EXPECT_EQ(db_.zone_map("T"), nullptr);  // stale while dirty

  ASSERT_TRUE(db_.FlushAll(0).ok());
  const storage::ZoneMap* rebuilt = db_.zone_map("T");
  ASSERT_NE(rebuilt, nullptr);

  // The rebuilt map must bound the *new* values: a pruned scan for the
  // mutated rows still finds all of them, on both paths.
  const std::int64_t want = 999 * 101;
  EXPECT_EQ(RangeSum(db_, ExecutionTarget::kHost, 0, 100), want);
  EXPECT_EQ(RangeSum(db_, ExecutionTarget::kSmartSsd, 0, 100), want);
}

TEST_P(IngestTest, AppendWidensZoneMapInPlace) {
  ASSERT_NE(db_.zone_map("T"), nullptr);
  TableAppender appender(&db_);
  ASSERT_TRUE(appender.Append("T", 200, FillRow).ok());
  // Widen-on-append keeps the map live (no stale window)...
  EXPECT_NE(db_.zone_map("T"), nullptr);

  // ...and sound: a pruned range query over the appended key range
  // finds every new row.
  std::int64_t want = 0;
  for (std::uint64_t r = kBaseRows; r < kBaseRows + 200; ++r) {
    want += static_cast<std::int64_t>((r * 7) % 1000);
  }
  EXPECT_EQ(RangeSum(db_, ExecutionTarget::kHost,
                     static_cast<std::int64_t>(kBaseRows), 1 << 30),
            want);
  ASSERT_TRUE(db_.FlushAll(0).ok());
  EXPECT_EQ(RangeSum(db_, ExecutionTarget::kSmartSsd,
                     static_cast<std::int64_t>(kBaseRows), 1 << 30),
            want);
}

TEST_P(IngestTest, IngestTaskRunsBatchToCompletion) {
  const auto pred = ex::Le(ex::Col(0), ex::Lit(50));
  IngestBatchSpec spec;
  spec.table = "T";
  spec.with_update = true;
  spec.update_predicate = pred.get();
  spec.mutate = [](const expr::RowView&, storage::TupleWriter& writer) {
    writer.SetInt32(2, 3);
  };
  spec.append_rows = 60;
  spec.append_gen = FillRow;

  IngestTask task(&db_, &spec, /*start=*/0);
  int steps = 0;
  while (!task.finished()) {
    const StepOutcome outcome = task.Step();
    ASSERT_GE(outcome.at, 0);
    ++steps;
  }
  auto result = task.TakeResult();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_updated, 51u);
  EXPECT_EQ(result->rows_appended, 60u);
  EXPECT_GT(result->pages_flushed, 0u);
  EXPECT_GT(result->end, 0);
  EXPECT_GT(steps, 3);  // update + append + flush + restore all stepped

  // The batch flushed and restored: pushdown eligible again, zone map
  // live, data as mutated.
  auto info = db_.catalog().GetTable("T");
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(db_.buffer_pool().HasDirtyInRange((*info)->first_lpn,
                                                 (*info)->reserved_pages));
  EXPECT_NE(db_.zone_map("T"), nullptr);
  EXPECT_EQ(RangeSum(db_, ExecutionTarget::kSmartSsd, 0, 50), 3 * 51);
}

INSTANTIATE_TEST_SUITE_P(Layouts, IngestTest,
                         ::testing::Values(storage::PageLayout::kNsm,
                                           storage::PageLayout::kPax),
                         [](const auto& info) {
                           return std::string(
                               storage::PageLayoutName(info.param));
                         });

// --- Co-scheduled ingest + queries -------------------------------------

struct MixedRun {
  std::vector<CompletedQuery> queries;
  std::vector<CompletedIngest> ingests;
  std::int64_t final_sum = 0;
};

MixedRun RunMixedWorkload() {
  Database db(DatabaseOptions::PaperSmartSsd());
  LoadInto(db, storage::PageLayout::kNsm);

  WorkloadScheduler sched(&db);

  // Scan client: SUM(Col_4) — the ingest below never touches Col_4 or
  // the row population it scans, so every repetition must agree.
  WorkloadQueryConfig scan;
  scan.client = "scan";
  scan.spec.table = "T";
  scan.spec.aggregates.push_back(
      {exec::AggSpec::Fn::kSum, ex::Col(3), "s"});
  scan.target = ExecutionTarget::kHost;
  sched.AddClosedLoopClient(std::move(scan), 4);

  // Ingest client: two batches, each updating Col_3 on a key prefix and
  // appending rows.
  IngestClientConfig ingest;
  ingest.client = "writer";
  ingest.spec.table = "T";
  ingest.spec.with_update = true;
  static const ex::ExprPtr kPred = ex::Le(ex::Col(0), ex::Lit(200));
  ingest.spec.update_predicate = kPred.get();
  ingest.spec.mutate = [](const expr::RowView&,
                          storage::TupleWriter& writer) {
    writer.SetInt32(2, 1);
  };
  ingest.spec.append_rows = 50;
  ingest.spec.append_gen = FillRow;
  sched.AddIngestClient(std::move(ingest), 2);

  auto records = sched.Run();
  SMARTSSD_CHECK(records.ok());

  MixedRun run;
  run.queries = std::move(records).value();
  run.ingests = sched.completed_ingests();

  exec::QuerySpec sum;
  sum.table = "T";
  sum.aggregates.push_back({exec::AggSpec::Fn::kSum, ex::Col(2), "s"});
  QueryExecutor executor(&db);
  auto result = executor.Execute(sum, ExecutionTarget::kHost);
  SMARTSSD_CHECK(result.ok());
  run.final_sum = result->agg_values[0];
  return run;
}

TEST(IngestWorkloadTest, CoScheduledIngestIsDeterministicAndExact) {
  const MixedRun first = RunMixedWorkload();
  const MixedRun second = RunMixedWorkload();

  // Determinism: byte-identical completion records across fresh runs.
  ASSERT_EQ(first.queries.size(), 4u);
  ASSERT_EQ(first.ingests.size(), 2u);
  ASSERT_EQ(second.queries.size(), first.queries.size());
  ASSERT_EQ(second.ingests.size(), first.ingests.size());
  for (std::size_t i = 0; i < first.queries.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(first.queries[i].id, second.queries[i].id);
    EXPECT_EQ(first.queries[i].end, second.queries[i].end);
    ASSERT_TRUE(first.queries[i].result.ok());
    ASSERT_TRUE(second.queries[i].result.ok());
    EXPECT_EQ(first.queries[i].result.value().agg_values,
              second.queries[i].result.value().agg_values);
  }
  for (std::size_t i = 0; i < first.ingests.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_TRUE(first.ingests[i].result.ok())
        << first.ingests[i].result.status().ToString();
    EXPECT_EQ(first.ingests[i].end, second.ingests[i].end);
    EXPECT_EQ(first.ingests[i].result->rows_updated, 201u);
    EXPECT_EQ(first.ingests[i].result->rows_appended, 50u);
  }

  // Exactness: the scan never reads a torn value — Col_4 is invariant
  // under the ingest, so every repetition returns the quiet-table sum
  // over however many rows were visible at its point in the timeline.
  for (const CompletedQuery& q : first.queries) {
    ASSERT_TRUE(q.result.ok());
    const std::int64_t sum = q.result.value().agg_values[0];
    EXPECT_EQ(sum % 5, 0);
    EXPECT_GE(sum, static_cast<std::int64_t>(kBaseRows) * 5);
    EXPECT_LE(sum, static_cast<std::int64_t>(kBaseRows + 100) * 5);
  }

  // Ground truth: the final relation equals applying the same two
  // batches on a quiet database, no scheduler involved.
  Database quiet(DatabaseOptions::PaperSmartSsd());
  LoadInto(quiet, storage::PageLayout::kNsm);
  const auto pred = ex::Le(ex::Col(0), ex::Lit(200));
  for (int batch = 0; batch < 2; ++batch) {
    TableUpdater updater(&quiet);
    ASSERT_TRUE(updater
                    .Update("T", pred.get(),
                            [](const expr::RowView&,
                               storage::TupleWriter& writer) {
                              writer.SetInt32(2, 1);
                            })
                    .ok());
    TableAppender appender(&quiet);
    ASSERT_TRUE(appender.Append("T", 50, FillRow).ok());
  }
  ASSERT_TRUE(quiet.FlushAll(0).ok());
  exec::QuerySpec sum;
  sum.table = "T";
  sum.aggregates.push_back({exec::AggSpec::Fn::kSum, ex::Col(2), "s"});
  QueryExecutor executor(&quiet);
  auto truth = executor.Execute(sum, ExecutionTarget::kHost);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(first.final_sum, truth->agg_values[0]);
  EXPECT_EQ(second.final_sum, truth->agg_values[0]);
}

}  // namespace
}  // namespace smartssd::engine
