// JsonReporter must emit well-formed JSON even when bench ids or config
// strings contain quotes, backslashes, or control characters.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_util.h"

namespace smartssd::bench {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(JsonEscapeTest, PassesThroughPlainStrings) {
  EXPECT_EQ(JsonEscape("abl_fault q6 NSM 0.25"), "abl_fault q6 NSM 0.25");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("sel=\"0.1\""), "sel=\\\"0.1\\\"");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("\\\""), "\\\\\\\"");
}

TEST(JsonEscapeTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscape("a\rb"), "a\\rb");
  EXPECT_EQ(JsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(JsonEscape(std::string("\x1f", 1)), "\\u001f");
  // 0x7f and high bytes are legal inside JSON strings; pass through.
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonReporterTest, WritesEscapedWellFormedOutput) {
  const std::string path =
      testing::TempDir() + "/bench_json_test_output.json";
  std::string json_arg = "--json=" + path;
  char arg0[] = "bench";
  std::vector<char*> argv = {arg0, json_arg.data()};
  JsonReporter reporter("q6 \"quoted\"\\bench",
                        static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(reporter.enabled());
  reporter.Add("config \"A\" \\ tab\there", 1.5, 2.0, 2.25);
  reporter.Add("plain", 0.5, NAN, 1.0);
  reporter.Write();

  const std::string written = ReadFile(path);
  std::remove(path.c_str());
  // The raw quote/backslash/control bytes must not survive unescaped:
  // every '"' is structural or preceded by a backslash, and no raw tab
  // remains.
  EXPECT_EQ(written.find('\t'), std::string::npos);
  EXPECT_NE(written.find("q6 \\\"quoted\\\"\\\\bench"), std::string::npos);
  EXPECT_NE(written.find("config \\\"A\\\" \\\\ tab\\there"),
            std::string::npos);
  EXPECT_NE(written.find("\"paper_ratio\":null"), std::string::npos);
  EXPECT_NE(written.find("\"measured_ratio\":2.25"), std::string::npos);

  // Structural sanity of the array: balanced brackets/braces and an
  // even count of unescaped quotes.
  int depth = 0;
  int quotes = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < written.size(); ++i) {
    const char c = written[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
        ++quotes;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      ++quotes;
    } else if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(quotes % 2, 0);
}

TEST(JsonReporterTest, MetadataHeaderRowIsEscapedAndFirst) {
  const std::string path =
      testing::TempDir() + "/bench_json_meta_output.json";
  std::string json_arg = "--json=" + path;
  char arg0[] = "bench";
  std::vector<char*> argv = {arg0, json_arg.data()};
  JsonReporter reporter("wall", static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(reporter.enabled());
  reporter.SetMetadata({{"compiler", "gcc \"12\""}, {"kernel_isa", "avx2"}});
  reporter.AddWall("cfg", 0.25, NAN, 1.0, 1e6);
  reporter.Write();

  const std::string written = ReadFile(path);
  std::remove(path.c_str());
  const std::size_t meta_pos = written.find("\"metadata\":{");
  ASSERT_NE(meta_pos, std::string::npos);
  EXPECT_NE(written.find("\"compiler\":\"gcc \\\"12\\\"\""),
            std::string::npos);
  EXPECT_NE(written.find("\"kernel_isa\":\"avx2\""), std::string::npos);
  // Metadata must precede every measurement row.
  EXPECT_LT(meta_pos, written.find("\"config\":\"cfg\""));
}

}  // namespace
}  // namespace smartssd::bench
