// Direct tests of PushdownProgram (the operator code "uploaded" into
// the device) against the smart runtime, below the executor.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "exec/pushdown_program.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"

namespace smartssd::exec {
namespace {

namespace ex = ::smartssd::expr;

class PushdownProgramTest : public ::testing::Test {
 protected:
  PushdownProgramTest() : db_(engine::DatabaseOptions::PaperSmartSsd()) {
    SMARTSSD_CHECK(tpch::LoadSyntheticS(db_, "S", 64, 20'000, 50,
                                        storage::PageLayout::kPax)
                       .ok());
    SMARTSSD_CHECK(tpch::LoadSyntheticR(db_, "R", 64, 50,
                                        storage::PageLayout::kPax)
                       .ok());
    db_.ResetForColdRun();
  }

  engine::Database db_;
};

TEST_F(PushdownProgramTest, ScanProgramLifecycle) {
  const auto spec = tpch::ScanQuerySpec("S", 64, 0.1, true);
  auto bound = Bind(spec, db_.catalog());
  ASSERT_TRUE(bound.ok());
  PushdownProgram program(&*bound);

  // Before Open, the program only declares static facts.
  EXPECT_EQ(program.name(), "scan_agg");
  EXPECT_GE(program.DramBytesRequired(), 2u * 1024 * 1024);
  const auto extents = program.InputExtents();
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].first_lpn, bound->outer->first_lpn);
  EXPECT_EQ(extents[0].count, bound->outer->page_count);

  std::vector<std::byte> output;
  auto session = db_.runtime()->RunSession(program, smart::PollingPolicy{},
                                           0, &output);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->pages_processed, bound->outer->page_count);
  EXPECT_EQ(output.size(), 8u);  // one SUM
  EXPECT_EQ(program.counts().tuples, 20'000u);
  // Counts contain predicate work for every tuple.
  EXPECT_GE(program.counts().eval.comparisons, 20'000u);
}

TEST_F(PushdownProgramTest, JoinProgramReservesHashTableDram) {
  const auto spec = tpch::JoinQuerySpec("S", "R", 0.5);
  auto bound = Bind(spec, db_.catalog());
  ASSERT_TRUE(bound.ok());
  PushdownProgram with_join(&*bound);

  const auto scan_spec = tpch::ScanQuerySpec("S", 64, 0.5, true);
  auto scan_bound = Bind(scan_spec, db_.catalog());
  ASSERT_TRUE(scan_bound.ok());
  PushdownProgram without_join(&*scan_bound);

  EXPECT_GT(with_join.DramBytesRequired(),
            without_join.DramBytesRequired());

  std::vector<std::byte> output;
  auto session = db_.runtime()->RunSession(with_join,
                                           smart::PollingPolicy{}, 0,
                                           &output);
  ASSERT_TRUE(session.ok());
  // Build-phase work is part of the session: inserts for all 50 R rows.
  EXPECT_EQ(with_join.counts().hash_inserts, 50u);
  // OPEN (with the internal build read) finishes before processing.
  EXPECT_GT(session->open_done, session->open_issued);
  EXPECT_GE(session->processing_done, session->open_done);
}

TEST_F(PushdownProgramTest, HybridJoinUnderTinyBudgetMatchesUnconstrained) {
  const auto spec = tpch::JoinQuerySpec("S", "R", 0.5);
  auto bound = Bind(spec, db_.catalog());
  ASSERT_TRUE(bound.ok());

  // Ground truth: the unconstrained build.
  PushdownProgram whole(&*bound);
  ASSERT_FALSE(whole.hybrid_join_engaged());
  std::vector<std::byte> whole_out;
  auto whole_session = db_.runtime()->RunSession(
      whole, smart::PollingPolicy{}, 0, &whole_out);
  ASSERT_TRUE(whole_session.ok());
  db_.ResetForColdRun();

  // A budget far below the ~2.4 KiB estimated table forces partitions
  // to spill to flash and resolve in extra passes.
  HybridJoinConfig spill;
  spill.budget_bytes = 1024;
  PushdownProgram program(&*bound, nullptr, KernelMode::kVectorized,
                          spill, db_.device().page_size());
  ASSERT_TRUE(program.hybrid_join_engaged());
  std::vector<std::byte> out;
  auto session = db_.runtime()->RunSession(program, smart::PollingPolicy{},
                                           0, &out);
  ASSERT_TRUE(session.ok());

  const HybridJoinStats stats = program.hybrid_stats();
  EXPECT_GT(stats.partitions_spilled, 0u);
  EXPECT_GT(stats.build_rows_spilled, 0u);
  EXPECT_GT(stats.spill_pages_written, 0u);
  // Every spilled page is read back at least once during resolution
  // (hot-key promotion re-scans build files on top of that).
  EXPECT_GE(stats.spill_pages_read, stats.spill_pages_written);
  EXPECT_GE(stats.passes, 2u);
  // Spilling is invisible to semantics: identical result bytes and
  // identical end-of-query operation totals.
  EXPECT_EQ(out, whole_out);
  EXPECT_EQ(program.counts().tuples, whole.counts().tuples);
  EXPECT_EQ(program.counts().probes, whole.counts().probes);
  EXPECT_EQ(program.counts().hash_inserts, whole.counts().hash_inserts);
  EXPECT_EQ(program.counts().eval.column_reads,
            whole.counts().eval.column_reads);
  EXPECT_EQ(program.counts().output_bytes, whole.counts().output_bytes);
  // The session released its flash extents and stayed within the DRAM
  // grant it declared.
  EXPECT_EQ(db_.ssd()->spill_pages_held(), 0u);
  EXPECT_LE(program.dram_peak_bytes(), program.DramBytesRequired());
  // The session-level spill counters surfaced the same page traffic.
  EXPECT_EQ(session->spill_pages_written, stats.spill_pages_written);
  EXPECT_EQ(session->spill_pages_read, stats.spill_pages_read);
}

TEST_F(PushdownProgramTest, DramEstimateCapsHybridResidency) {
  const auto spec = tpch::JoinQuerySpec("S", "R", 0.5);
  auto bound = Bind(spec, db_.catalog());
  ASSERT_TRUE(bound.ok());
  // Unconstrained grant grows with the inner table; the hybrid grant is
  // pinned near the budget instead.
  PushdownProgram whole(&*bound);
  HybridJoinConfig spill;
  spill.budget_bytes = 1024;
  PushdownProgram hybrid(&*bound, nullptr, KernelMode::kVectorized, spill,
                         db_.device().page_size());
  // Same spec, two modes: the hybrid grant swaps the full table term
  // for budget + spill buffers + ordered staging. Both must at least
  // cover the streaming floor.
  EXPECT_GE(whole.DramBytesRequired(), 2u * 1024 * 1024);
  EXPECT_GE(hybrid.DramBytesRequired(), 2u * 1024 * 1024);
  // And an enormous budget disengages the hybrid path entirely.
  HybridJoinConfig roomy;
  roomy.budget_bytes = 1ull << 30;
  PushdownProgram relaxed(&*bound, nullptr, KernelMode::kVectorized,
                          roomy, db_.device().page_size());
  EXPECT_FALSE(relaxed.hybrid_join_engaged());
}

TEST_F(PushdownProgramTest, ZoneMapPruningShrinksExtents) {
  ASSERT_TRUE(db_.BuildZoneMap("S").ok());
  db_.ResetForColdRun();
  // Clustered predicate on Col_1 (= row+1): first 10% of pages.
  QuerySpec spec;
  spec.name = "pruned";
  spec.table = "S";
  spec.predicate = ex::Lt(ex::Col(0), ex::Lit(2000));
  spec.aggregates.push_back({AggSpec::Fn::kCount, nullptr, "c"});
  auto bound = Bind(spec, db_.catalog());
  ASSERT_TRUE(bound.ok());

  PushdownProgram pruned(&*bound, db_.zone_map("S"));
  const auto extents = pruned.InputExtents();
  std::uint64_t pages = 0;
  for (const auto& extent : extents) pages += extent.count;
  EXPECT_LT(pages, bound->outer->page_count / 5);
  EXPECT_EQ(pruned.pages_skipped(), bound->outer->page_count - pages);

  // And the pruned session still returns the exact count.
  std::vector<std::byte> output;
  auto session = db_.runtime()->RunSession(pruned, smart::PollingPolicy{},
                                           0, &output);
  ASSERT_TRUE(session.ok());
  ASSERT_EQ(pruned.agg_state().size(), 1u);
  EXPECT_EQ(pruned.agg_state()[0], 1999);
}

TEST_F(PushdownProgramTest, ExtentsCoalesceContiguousRuns) {
  ASSERT_TRUE(db_.BuildZoneMap("S").ok());
  QuerySpec spec;
  spec.name = "range";
  spec.table = "S";
  // A middle slice of the clustered key: one contiguous page run.
  std::vector<ex::ExprPtr> conjuncts;
  conjuncts.push_back(ex::Ge(ex::Col(0), ex::Lit(8000)));
  conjuncts.push_back(ex::Lt(ex::Col(0), ex::Lit(12000)));
  spec.predicate = ex::And(std::move(conjuncts));
  spec.aggregates.push_back({AggSpec::Fn::kCount, nullptr, "c"});
  auto bound = Bind(spec, db_.catalog());
  ASSERT_TRUE(bound.ok());
  PushdownProgram program(&*bound, db_.zone_map("S"));
  const auto extents = program.InputExtents();
  ASSERT_EQ(extents.size(), 1u);  // one coalesced run
  EXPECT_GT(extents[0].count, 0u);
  EXPECT_LT(extents[0].count, bound->outer->page_count);
}

}  // namespace
}  // namespace smartssd::exec
