#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "flash/flash_array.h"
#include "ftl/ftl.h"

namespace smartssd::ftl {
namespace {

flash::Geometry TinyGeometry() {
  flash::Geometry g;
  g.channels = 2;
  g.chips_per_channel = 2;
  g.blocks_per_chip = 8;
  g.pages_per_block = 4;
  g.page_size_bytes = 256;
  return g;
}

std::vector<std::byte> Pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::byte>((seed * 31 + i) & 0xFF);
  }
  return data;
}

class FtlTest : public ::testing::Test {
 protected:
  FtlTest()
      : array_(TinyGeometry(), flash::Timings{}),
        ftl_(&array_, FtlConfig{}) {}

  flash::FlashArray array_;
  Ftl ftl_;
};

TEST_F(FtlTest, LogicalCapacityReflectsOverProvisioning) {
  // 128 physical pages, 12.5% OP -> 112 logical.
  EXPECT_EQ(ftl_.logical_pages(), 112u);
}

TEST_F(FtlTest, WriteThenReadRoundTrip) {
  const auto data = Pattern(256, 1);
  ASSERT_TRUE(ftl_.Write(5, data, 0).ok());
  std::vector<std::byte> out(256);
  ASSERT_TRUE(ftl_.Read(5, out, 0).ok());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), 256), 0);
  EXPECT_TRUE(ftl_.IsMapped(5));
}

TEST_F(FtlTest, UnmappedReadsAsZeroWithoutFlashOp) {
  std::vector<std::byte> out(256, std::byte{0xAB});
  const std::uint64_t reads_before = array_.reads();
  ASSERT_TRUE(ftl_.Read(7, out, 0).ok());
  for (const std::byte b : out) EXPECT_EQ(b, std::byte{0});
  EXPECT_EQ(array_.reads(), reads_before);
  EXPECT_EQ(ftl_.stats().unmapped_reads, 1u);
}

TEST_F(FtlTest, OverwriteRemapsAndInvalidates) {
  const auto v1 = Pattern(256, 1);
  const auto v2 = Pattern(256, 2);
  ASSERT_TRUE(ftl_.Write(3, v1, 0).ok());
  ASSERT_TRUE(ftl_.Write(3, v2, 0).ok());
  std::vector<std::byte> out(256);
  ASSERT_TRUE(ftl_.Read(3, out, 0).ok());
  EXPECT_EQ(std::memcmp(out.data(), v2.data(), 256), 0);
  EXPECT_EQ(ftl_.stats().host_writes, 2u);
}

TEST_F(FtlTest, TrimUnmaps) {
  ASSERT_TRUE(ftl_.Write(3, Pattern(256, 1), 0).ok());
  ASSERT_TRUE(ftl_.Trim(3).ok());
  EXPECT_FALSE(ftl_.IsMapped(3));
  std::vector<std::byte> out(256, std::byte{1});
  ASSERT_TRUE(ftl_.Read(3, out, 0).ok());
  EXPECT_EQ(out[0], std::byte{0});
}

TEST_F(FtlTest, OutOfRangeOperationsRejected) {
  const std::uint64_t beyond = ftl_.logical_pages();
  EXPECT_FALSE(ftl_.Write(beyond, Pattern(256, 1), 0).ok());
  std::vector<std::byte> out(256);
  EXPECT_FALSE(ftl_.Read(beyond, out, 0).ok());
  EXPECT_FALSE(ftl_.Trim(beyond).ok());
}

TEST_F(FtlTest, OversizedWriteRejected) {
  EXPECT_FALSE(ftl_.Write(0, Pattern(257, 1), 0).ok());
}

TEST_F(FtlTest, StripesAcrossChannels) {
  // Sequential writes land on alternating channels, so sequential reads
  // can stream from all channels at once.
  for (std::uint64_t lpn = 0; lpn < 8; ++lpn) {
    ASSERT_TRUE(ftl_.Write(lpn, Pattern(256, lpn), 0).ok());
  }
  array_.ResetTiming();
  SimTime parallel_done = 0;
  for (std::uint64_t lpn = 0; lpn < 8; ++lpn) {
    auto r = ftl_.ReadTiming(lpn, 0);
    ASSERT_TRUE(r.ok());
    parallel_done = std::max(parallel_done, r.value());
  }
  // 8 reads over 4 chips: roughly 2 serial tR, not 8.
  const flash::Timings t;
  EXPECT_LT(parallel_done, 4 * t.read_page);
}

TEST_F(FtlTest, ViewMatchesRead) {
  const auto data = Pattern(256, 7);
  ASSERT_TRUE(ftl_.Write(1, data, 0).ok());
  const auto view = ftl_.View(1);
  ASSERT_EQ(view.size(), 256u);
  EXPECT_EQ(std::memcmp(view.data(), data.data(), 256), 0);
  EXPECT_TRUE(ftl_.View(99).empty());
}

TEST_F(FtlTest, FillToLogicalCapacityAndRewrite) {
  // Fill every logical page, then overwrite everything once: GC must
  // reclaim invalidated pages without data loss.
  const std::uint64_t n = ftl_.logical_pages();
  for (std::uint64_t round = 0; round < 2; ++round) {
    for (std::uint64_t lpn = 0; lpn < n; ++lpn) {
      const auto data =
          Pattern(256, static_cast<std::uint8_t>(lpn + round * 13));
      ASSERT_TRUE(ftl_.Write(lpn, data, 0).ok())
          << "round " << round << " lpn " << lpn;
    }
  }
  for (std::uint64_t lpn = 0; lpn < n; ++lpn) {
    std::vector<std::byte> out(256);
    ASSERT_TRUE(ftl_.Read(lpn, out, 0).ok());
    const auto expected = Pattern(256, static_cast<std::uint8_t>(lpn + 13));
    EXPECT_EQ(std::memcmp(out.data(), expected.data(), 256), 0)
        << "lpn " << lpn;
  }
  EXPECT_GT(ftl_.stats().gc_runs, 0u);
  EXPECT_GT(ftl_.stats().block_erases, 0u);
  EXPECT_GE(ftl_.stats().write_amplification(), 1.0);
}

TEST_F(FtlTest, HotOverwriteWorkloadKeepsWriteAmplificationSane) {
  // Repeatedly overwrite a small hot set; GC victims are mostly
  // invalid, so write amplification stays modest.
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t lpn = 0; lpn < 8; ++lpn) {
      ASSERT_TRUE(
          ftl_.Write(lpn, Pattern(256, static_cast<std::uint8_t>(round)), 0)
              .ok());
    }
  }
  EXPECT_LT(ftl_.stats().write_amplification(), 2.0);
  EXPECT_GT(ftl_.max_erase_count(), 0u);
}

TEST_F(FtlTest, WearSpreadsAcrossBlocks) {
  for (int round = 0; round < 40; ++round) {
    for (std::uint64_t lpn = 0; lpn < 16; ++lpn) {
      ASSERT_TRUE(
          ftl_.Write(lpn, Pattern(256, static_cast<std::uint8_t>(lpn)), 0)
              .ok());
    }
  }
  // Striped allocation plus greedy GC: no single block absorbs all
  // erases.
  const flash::Geometry g = TinyGeometry();
  const std::uint32_t max_erases = ftl_.max_erase_count();
  std::uint64_t total_erases = 0;
  for (std::uint64_t b = 0; b < g.total_blocks(); ++b) {
    total_erases += array_.block_state(b).erase_count;
  }
  EXPECT_GT(total_erases, 0u);
  EXPECT_LE(max_erases, total_erases);  // sanity
  EXPECT_LT(max_erases * 2, total_erases + max_erases);
}

TEST_F(FtlTest, GcPreservesAllLiveData) {
  // Property: after heavy churn, every live LPN still returns its last
  // written pattern.
  std::vector<std::uint8_t> latest(32, 0);
  smartssd::Random rng(99);
  for (int i = 0; i < 600; ++i) {
    const std::uint64_t lpn = rng.Uniform(32);
    const std::uint8_t tag = static_cast<std::uint8_t>(rng.Uniform(250));
    ASSERT_TRUE(ftl_.Write(lpn, Pattern(256, tag), 0).ok());
    latest[lpn] = tag;
  }
  for (std::uint64_t lpn = 0; lpn < 32; ++lpn) {
    std::vector<std::byte> out(256);
    ASSERT_TRUE(ftl_.Read(lpn, out, 0).ok());
    const auto expected = Pattern(256, latest[lpn]);
    EXPECT_EQ(std::memcmp(out.data(), expected.data(), 256), 0)
        << "lpn " << lpn;
  }
}

}  // namespace
}  // namespace smartssd::ftl
