// Tests for the Smart SSD array coordinator (Section 4.3's parallel-DBMS
// vision): partitioned loads, dispatch, and all four merge kinds.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/random.h"
#include "engine/parallel.h"
#include "storage/nsm_page.h"
#include "storage/pax_page.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"
#include "tpch/tpch_gen.h"

namespace smartssd::engine {
namespace {

constexpr double kSf = 0.004;  // 24k LINEITEM rows total

class ParallelTest : public ::testing::Test {
 protected:
  ParallelTest()
      : cluster_(4, DatabaseOptions::PaperSmartSsd()),
        single_(DatabaseOptions::PaperSmartSsd()) {
    // The same LINEITEM + PART everywhere: partitioned on the cluster,
    // whole on the single-device reference.
    SMARTSSD_CHECK(tpch::LoadLineitem(single_, "lineitem", kSf,
                                      storage::PageLayout::kPax)
                       .ok());
    SMARTSSD_CHECK(
        tpch::LoadPart(single_, "part", kSf, storage::PageLayout::kPax)
            .ok());
    LoadClusterTables();
  }

  void LoadClusterTables() {
    // The tpch generator draws from a sequential PRNG, so per-range
    // regeneration would diverge. Materialize the rows once from a
    // scratch database and replay them verbatim into the partitions.
    const storage::Schema schema = tpch::LineitemSchema();
    const std::uint64_t rows = tpch::LineitemRows(kSf);
    auto buffer = std::make_shared<std::vector<std::byte>>();
    buffer->resize(rows * schema.tuple_size());
    {
      Database scratch(DatabaseOptions::PaperSmartSsd());
      auto info = tpch::LoadLineitem(scratch, "lineitem", kSf,
                                     storage::PageLayout::kNsm);
      SMARTSSD_CHECK(info.ok());
      std::vector<std::byte> page(scratch.device().page_size());
      std::uint64_t row = 0;
      for (std::uint64_t p = 0; p < info->page_count; ++p) {
        SMARTSSD_CHECK(scratch.device()
                           .ReadPages(info->first_lpn + p, 1, page, 0)
                           .ok());
        auto reader = storage::NsmPageReader::Open(&schema, page);
        SMARTSSD_CHECK(reader.ok());
        for (std::uint16_t i = 0; i < reader->tuple_count(); ++i, ++row) {
          std::memcpy(buffer->data() + row * schema.tuple_size(),
                      reader->tuple(i), schema.tuple_size());
        }
      }
      SMARTSSD_CHECK(row == rows);
    }
    const std::uint32_t tuple_size = schema.tuple_size();
    storage::RowGenerator raw_gen =
        [buffer, tuple_size](std::uint64_t row,
                             storage::TupleWriter& writer) {
          writer.CopyFrom({buffer->data() + row * tuple_size, tuple_size});
        };
    SMARTSSD_CHECK(cluster_
                       .LoadPartitionedTable("lineitem", schema,
                                             storage::PageLayout::kPax,
                                             rows, raw_gen)
                       .ok());
    // PART replicated (same seed => same rows as single_).
    for (int w = 0; w < cluster_.workers(); ++w) {
      SMARTSSD_CHECK(tpch::LoadPart(cluster_.worker(w), "part", kSf,
                                    storage::PageLayout::kPax)
                         .ok());
    }
  }

  QueryResult RunSingle(const exec::QuerySpec& spec,
                        ExecutionTarget target) {
    single_.ResetForColdRun();
    QueryExecutor executor(&single_);
    auto result = executor.Execute(spec, target);
    SMARTSSD_CHECK(result.ok());
    return std::move(result).value();
  }

  ParallelQueryResult RunCluster(const exec::QuerySpec& spec,
                                 ExecutionTarget target) {
    cluster_.ResetForColdRun();
    auto result = cluster_.Execute(spec, target);
    SMARTSSD_CHECK(result.ok());
    return std::move(result).value();
  }

  ParallelDatabase cluster_;
  Database single_;
};

TEST_F(ParallelTest, ScalarAggregateMergesExactly) {
  const auto spec = tpch::Q6Spec("lineitem");
  const auto single = RunSingle(spec, ExecutionTarget::kSmartSsd);
  const auto cluster = RunCluster(spec, ExecutionTarget::kSmartSsd);
  EXPECT_EQ(cluster.agg_values, single.agg_values);
}

TEST_F(ParallelTest, JoinWithReplicatedInnerMergesExactly) {
  const auto spec = tpch::Q14Spec("lineitem", "part");
  const auto single = RunSingle(spec, ExecutionTarget::kSmartSsd);
  const auto cluster = RunCluster(spec, ExecutionTarget::kSmartSsd);
  EXPECT_EQ(cluster.agg_values, single.agg_values);
}

TEST_F(ParallelTest, GroupByMergesExactly) {
  const auto spec = tpch::Q1Spec("lineitem");
  const auto single = RunSingle(spec, ExecutionTarget::kSmartSsd);
  const auto cluster = RunCluster(spec, ExecutionTarget::kSmartSsd);
  EXPECT_EQ(cluster.rows, single.rows);
  EXPECT_EQ(cluster.row_count(), 4u);
}

TEST_F(ParallelTest, FourWorkersAreNearlyFourTimesFaster) {
  const auto spec = tpch::Q6Spec("lineitem");
  const auto single = RunSingle(spec, ExecutionTarget::kSmartSsd);
  const auto cluster = RunCluster(spec, ExecutionTarget::kSmartSsd);
  const double scaling = single.stats.elapsed_seconds() /
                         cluster.elapsed_seconds();
  EXPECT_GT(scaling, 3.0);
  EXPECT_LT(scaling, 4.5);
}

TEST_F(ParallelTest, WorkerStatsCoverAllWorkers) {
  const auto spec = tpch::Q6Spec("lineitem");
  const auto cluster = RunCluster(spec, ExecutionTarget::kSmartSsd);
  ASSERT_EQ(cluster.worker_stats.size(), 4u);
  std::uint64_t tuples = 0;
  for (const QueryStats& stats : cluster.worker_stats) {
    tuples += stats.counts.tuples;
  }
  EXPECT_EQ(tuples, tpch::LineitemRows(kSf));
}

TEST_F(ParallelTest, HostTargetAlsoMerges) {
  const auto spec = tpch::Q6Spec("lineitem");
  const auto single = RunSingle(spec, ExecutionTarget::kHost);
  const auto cluster = RunCluster(spec, ExecutionTarget::kHost);
  EXPECT_EQ(cluster.agg_values, single.agg_values);
}

// Top-N across a partitioned synthetic table.
TEST(ParallelTopNTest, GlobalTopNMatchesSingleDevice) {
  ParallelDatabase cluster(3, DatabaseOptions::PaperSmartSsd());
  Database single(DatabaseOptions::PaperSmartSsd());
  const storage::Schema schema = tpch::SyntheticSchema(8);
  // The synthetic generator draws sequentially, so materialize rows
  // once and replay into both databases.
  constexpr std::uint64_t kRows = 30'000;
  SMARTSSD_CHECK(tpch::LoadSyntheticS(single, "T", 8, kRows, 100,
                                      storage::PageLayout::kPax)
                     .ok());
  auto info = single.catalog().GetTable("T");
  SMARTSSD_CHECK(info.ok());
  auto buffer = std::make_shared<std::vector<std::byte>>(
      kRows * schema.tuple_size());
  std::vector<std::byte> page(single.device().page_size());
  std::uint64_t row = 0;
  for (std::uint64_t p = 0; p < (*info)->page_count; ++p) {
    SMARTSSD_CHECK(
        single.device().ReadPages((*info)->first_lpn + p, 1, page, 0).ok());
    auto reader = storage::PaxPageReader::Open(&schema, page);
    SMARTSSD_CHECK(reader.ok());
    for (std::uint16_t i = 0; i < reader->tuple_count(); ++i, ++row) {
      for (int c = 0; c < schema.num_columns(); ++c) {
        std::memcpy(buffer->data() + row * schema.tuple_size() +
                        schema.offset(c),
                    reader->value(i, c), schema.column(c).width);
      }
    }
  }
  const std::uint32_t tuple_size = schema.tuple_size();
  storage::RowGenerator raw_gen =
      [buffer, tuple_size](std::uint64_t r, storage::TupleWriter& w) {
        w.CopyFrom({buffer->data() + r * tuple_size, tuple_size});
      };
  SMARTSSD_CHECK(cluster
                     .LoadPartitionedTable("T", schema,
                                           storage::PageLayout::kPax,
                                           kRows, raw_gen)
                     .ok());

  const auto spec = tpch::TopNQuerySpec("T", 8, 0.3, 50, true);
  single.ResetForColdRun();
  QueryExecutor executor(&single);
  auto single_result =
      executor.Execute(spec, ExecutionTarget::kSmartSsd);
  ASSERT_TRUE(single_result.ok());
  cluster.ResetForColdRun();
  auto cluster_result =
      cluster.Execute(spec, ExecutionTarget::kSmartSsd);
  ASSERT_TRUE(cluster_result.ok());
  EXPECT_EQ(cluster_result->rows, single_result->rows);
}

TEST(ParallelTopNTest, RejectsTopNWithoutProjectedOrderColumn) {
  ParallelDatabase cluster(2, DatabaseOptions::PaperSmartSsd());
  const storage::Schema schema = tpch::SyntheticSchema(4);
  storage::RowGenerator gen = [](std::uint64_t r,
                                 storage::TupleWriter& w) {
    for (int c = 0; c < 4; ++c) {
      w.SetInt32(c, static_cast<std::int32_t>(r + c));
    }
  };
  SMARTSSD_CHECK(cluster
                     .LoadPartitionedTable("T", schema,
                                           storage::PageLayout::kPax, 100,
                                           gen)
                     .ok());
  exec::QuerySpec spec;
  spec.table = "T";
  spec.projection = {1, 2};  // order col 0 NOT projected
  spec.top_n = exec::TopNSpec{.order_col = 0, .limit = 5};
  auto result = cluster.Execute(spec, ExecutionTarget::kSmartSsd);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace smartssd::engine
