#include <gtest/gtest.h>

#include "energy/energy_model.h"

namespace smartssd::energy {
namespace {

engine::QueryStats MakeStats(double seconds, std::uint64_t link_bytes) {
  engine::QueryStats stats;
  stats.start = 0;
  stats.end = static_cast<SimTime>(seconds * kSecond);
  stats.bytes_over_host_link = link_bytes;
  return stats;
}

TEST(EnergyModelTest, IdleBaseDominatesAtZeroActivity) {
  const engine::HostConfig host;
  const ssd::DevicePowerProfile device{.active_watts = 0,
                                       .idle_watts = 0};
  const auto energy = ComputeEnergy(MakeStats(10.0, 0), host, device);
  // 10 s x (235 idle + 105 active overhead) = 3.4 kJ.
  EXPECT_NEAR(energy.system_kilojoules, 3.4, 0.01);
  EXPECT_EQ(energy.io_kilojoules, 0.0);
  EXPECT_NEAR(energy.over_idle_kilojoules, 1.05, 0.01);
}

TEST(EnergyModelTest, DataRateTermScalesWithIngest) {
  const engine::HostConfig host;
  const ssd::DevicePowerProfile device{.active_watts = 8,
                                       .idle_watts = 1};
  // 550 MB/s for 10 seconds = 5.5 GB over the link.
  const auto busy =
      ComputeEnergy(MakeStats(10.0, 5'500'000'000ull), host, device);
  const auto quiet = ComputeEnergy(MakeStats(10.0, 0), host, device);
  const double delta_watts = (busy.system_kilojoules -
                              quiet.system_kilojoules) *
                             1000.0 / 10.0;
  EXPECT_NEAR(delta_watts, host.per_gbps_watts * 0.55, 0.5);
}

TEST(EnergyModelTest, IoSubsystemIsDeviceOnly) {
  const engine::HostConfig host;
  const ssd::DevicePowerProfile device{.active_watts = 12.5,
                                       .idle_watts = 7};
  const auto energy = ComputeEnergy(MakeStats(100.0, 0), host, device);
  EXPECT_NEAR(energy.io_kilojoules, 1.25, 0.001);
}

TEST(EnergyModelTest, AverageWattsConsistentWithTotals) {
  const engine::HostConfig host;
  const ssd::DevicePowerProfile device{.active_watts = 10,
                                       .idle_watts = 1};
  const auto energy =
      ComputeEnergy(MakeStats(42.0, 1'000'000'000ull), host, device);
  EXPECT_NEAR(energy.system_kilojoules,
              energy.average_system_watts * 42.0 / 1000.0, 1e-9);
  EXPECT_NEAR(energy.over_idle_kilojoules,
              (energy.average_system_watts - host.idle_system_watts) *
                  42.0 / 1000.0,
              1e-9);
}

// The Table 3 scenario in miniature: identical work, HDD taking ~7x
// longer at lower power still burns far more energy.
TEST(EnergyModelTest, SlowerDeviceBurnsMoreDespiteLowerPower) {
  const engine::HostConfig host;
  const ssd::DevicePowerProfile hdd{.active_watts = 12.5, .idle_watts = 7};
  const ssd::DevicePowerProfile smart{.active_watts = 10, .idle_watts = 1};
  const auto hdd_energy =
      ComputeEnergy(MakeStats(1000.0, 80'000'000'000ull), host, hdd);
  const auto smart_energy =
      ComputeEnergy(MakeStats(87.0, 1'000'000ull), host, smart);
  EXPECT_GT(hdd_energy.system_kilojoules,
            10 * smart_energy.system_kilojoules);
  EXPECT_GT(hdd_energy.io_kilojoules, 10 * smart_energy.io_kilojoules);
}

}  // namespace
}  // namespace smartssd::energy
