#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "ssd/ssd_device.h"
#include "storage/catalog.h"
#include "storage/nsm_page.h"
#include "storage/pax_page.h"
#include "storage/table_loader.h"
#include "storage/tuple.h"

namespace smartssd::storage {
namespace {

Schema TwoColSchema() {
  auto schema =
      Schema::Create({Column::Int32("k"), Column::Int64("v")});
  SMARTSSD_CHECK(schema.ok());
  return std::move(schema).value();
}

// --- Catalog ---

TEST(CatalogTest, AddAndGet) {
  Catalog catalog(1000);
  const Schema schema = TwoColSchema();
  ASSERT_TRUE(catalog
                  .AddTable(TableInfo{.name = "t",
                                      .schema = schema,
                                      .layout = PageLayout::kNsm,
                                      .first_lpn = 0,
                                      .page_count = 10,
                                      .tuple_count = 100,
                                      .tuples_per_page = 10})
                  .ok());
  auto info = catalog.GetTable("t");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->tuple_count, 100u);
  EXPECT_EQ((*info)->bytes(), 100u * schema.tuple_size());
  EXPECT_TRUE(catalog.HasTable("t"));
  EXPECT_FALSE(catalog.GetTable("missing").ok());
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog catalog(1000);
  const Schema schema = TwoColSchema();
  const TableInfo info{.name = "t",
                       .schema = schema,
                       .layout = PageLayout::kNsm,
                       .first_lpn = 0,
                       .page_count = 1,
                       .tuple_count = 1,
                       .tuples_per_page = 1};
  ASSERT_TRUE(catalog.AddTable(info).ok());
  EXPECT_EQ(catalog.AddTable(info).code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, ExtentAllocatorIsBumpAndBounded) {
  Catalog catalog(100);
  EXPECT_EQ(catalog.AllocateExtent(40).value(), 0u);
  EXPECT_EQ(catalog.AllocateExtent(40).value(), 40u);
  EXPECT_EQ(catalog.pages_allocated(), 80u);
  auto overflow = catalog.AllocateExtent(21);
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(catalog.AllocateExtent(20).value(), 80u);
}

// --- Loader on a real device, both layouts ---

class TableLoaderTest : public ::testing::TestWithParam<PageLayout> {
 protected:
  TableLoaderTest() : device_(MakeConfig()), catalog_(device_.num_pages()) {}

  static ssd::SsdConfig MakeConfig() {
    ssd::SsdConfig config = ssd::SsdConfig::PaperSmartSsd();
    config.geometry.blocks_per_chip = 32;
    return config;
  }

  ssd::SsdDevice device_;
  Catalog catalog_;
};

TEST_P(TableLoaderTest, LoadsAndReadsBackEveryRow) {
  const Schema schema = TwoColSchema();
  TableLoader loader(&device_, &catalog_);
  constexpr std::uint64_t kRows = 5000;
  auto info = loader.Load("t", schema, GetParam(), kRows,
                          [](std::uint64_t row, TupleWriter& w) {
                            w.SetInt32(0, static_cast<std::int32_t>(row));
                            w.SetInt64(1, static_cast<std::int64_t>(row) *
                                              row);
                          });
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->tuple_count, kRows);
  EXPECT_EQ(info->layout, GetParam());
  const std::uint64_t expected_pages =
      (kRows + info->tuples_per_page - 1) / info->tuples_per_page;
  EXPECT_EQ(info->page_count, expected_pages);

  // Walk every page via the device and verify every row.
  std::vector<std::byte> page(device_.page_size());
  std::uint64_t row = 0;
  for (std::uint64_t p = 0; p < info->page_count; ++p) {
    ASSERT_TRUE(device_.ReadPages(info->first_lpn + p, 1, page, 0).ok());
    if (GetParam() == PageLayout::kNsm) {
      auto reader = NsmPageReader::Open(&schema, page);
      ASSERT_TRUE(reader.ok());
      for (std::uint16_t i = 0; i < reader->tuple_count(); ++i, ++row) {
        const TupleReader tuple(&schema, reader->tuple(i));
        EXPECT_EQ(tuple.GetInt32(0), static_cast<std::int32_t>(row));
        EXPECT_EQ(tuple.GetInt64(1),
                  static_cast<std::int64_t>(row) * row);
      }
    } else {
      auto reader = PaxPageReader::Open(&schema, page);
      ASSERT_TRUE(reader.ok());
      for (std::uint16_t i = 0; i < reader->tuple_count(); ++i, ++row) {
        std::int32_t k;
        std::memcpy(&k, reader->value(i, 0), 4);
        EXPECT_EQ(k, static_cast<std::int32_t>(row));
      }
    }
  }
  EXPECT_EQ(row, kRows);
}

TEST_P(TableLoaderTest, EmptyTableGetsOnePage) {
  const Schema schema = TwoColSchema();
  TableLoader loader(&device_, &catalog_);
  auto info = loader.Load("empty", schema, GetParam(), 0,
                          [](std::uint64_t, TupleWriter&) {});
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->tuple_count, 0u);
}

TEST_P(TableLoaderTest, DuplicateTableRejected) {
  const Schema schema = TwoColSchema();
  TableLoader loader(&device_, &catalog_);
  auto gen = [](std::uint64_t, TupleWriter& w) { w.SetInt32(0, 1); };
  ASSERT_TRUE(loader.Load("t", schema, GetParam(), 1, gen).ok());
  auto again = loader.Load("t", schema, GetParam(), 1, gen);
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

INSTANTIATE_TEST_SUITE_P(Layouts, TableLoaderTest,
                         ::testing::Values(PageLayout::kNsm,
                                           PageLayout::kPax),
                         [](const auto& info) {
                           return std::string(PageLayoutName(info.param));
                         });

}  // namespace
}  // namespace smartssd::storage
