// Property testing for the expression interpreter: random expression
// trees evaluated by the interpreter must agree with an independent
// direct evaluator, on random rows, in both layouts.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "expr/expression.h"
#include "expr/row_view.h"
#include "storage/pax_page.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace smartssd::expr {
namespace {

constexpr int kColumns = 6;

// A parallel "reference AST" evaluated with plain C++ — structurally
// mirrors the ExprPtr tree but shares no code with the interpreter.
struct RefNode {
  enum class Kind { kCol, kLit, kCmp, kArith, kAnd, kOr, kNot } kind;
  int column = 0;
  std::int64_t literal = 0;
  CompareOp cmp_op = CompareOp::kEq;
  ArithOp arith_op = ArithOp::kAdd;
  std::vector<std::unique_ptr<RefNode>> children;
};

struct Pair {
  ExprPtr expr;
  std::unique_ptr<RefNode> ref;
};

Pair RandomInt(Random& rng, int depth);

Pair RandomBool(Random& rng, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.4)) {
    // Leaf comparison.
    Pair lhs = RandomInt(rng, depth - 1);
    Pair rhs = RandomInt(rng, depth - 1);
    const auto op = static_cast<CompareOp>(rng.Uniform(6));
    auto ref = std::make_unique<RefNode>();
    ref->kind = RefNode::Kind::kCmp;
    ref->cmp_op = op;
    ref->children.push_back(std::move(lhs.ref));
    ref->children.push_back(std::move(rhs.ref));
    return {Compare(op, std::move(lhs.expr), std::move(rhs.expr)),
            std::move(ref)};
  }
  switch (rng.Uniform(3)) {
    case 0: {  // NOT
      Pair child = RandomBool(rng, depth - 1);
      auto ref = std::make_unique<RefNode>();
      ref->kind = RefNode::Kind::kNot;
      ref->children.push_back(std::move(child.ref));
      return {Not(std::move(child.expr)), std::move(ref)};
    }
    default: {  // AND / OR
      const bool is_and = rng.Bernoulli(0.5);
      const int n = static_cast<int>(rng.Uniform(3)) + 2;
      std::vector<ExprPtr> exprs;
      auto ref = std::make_unique<RefNode>();
      ref->kind = is_and ? RefNode::Kind::kAnd : RefNode::Kind::kOr;
      for (int i = 0; i < n; ++i) {
        Pair child = RandomBool(rng, depth - 1);
        exprs.push_back(std::move(child.expr));
        ref->children.push_back(std::move(child.ref));
      }
      return {is_and ? And(std::move(exprs)) : Or(std::move(exprs)),
              std::move(ref)};
    }
  }
}

Pair RandomInt(Random& rng, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.5)) {
    if (rng.Bernoulli(0.5)) {
      const int col = static_cast<int>(rng.Uniform(kColumns));
      auto ref = std::make_unique<RefNode>();
      ref->kind = RefNode::Kind::kCol;
      ref->column = col;
      return {Col(col), std::move(ref)};
    }
    const std::int64_t v = rng.UniformInt(-1000, 1000);
    auto ref = std::make_unique<RefNode>();
    ref->kind = RefNode::Kind::kLit;
    ref->literal = v;
    return {Lit(v), std::move(ref)};
  }
  // Arithmetic (no division: its double semantics are tested separately
  // and would complicate the int reference).
  const auto op = static_cast<ArithOp>(rng.Uniform(3));
  Pair lhs = RandomInt(rng, depth - 1);
  Pair rhs = RandomInt(rng, depth - 1);
  auto ref = std::make_unique<RefNode>();
  ref->kind = RefNode::Kind::kArith;
  ref->arith_op = op;
  ref->children.push_back(std::move(lhs.ref));
  ref->children.push_back(std::move(rhs.ref));
  return {Arith(op, std::move(lhs.expr), std::move(rhs.expr)),
          std::move(ref)};
}

std::int64_t RefEvalInt(const RefNode& node,
                        const std::vector<std::int32_t>& row);

bool RefEvalBool(const RefNode& node,
                 const std::vector<std::int32_t>& row) {
  switch (node.kind) {
    case RefNode::Kind::kCmp: {
      const std::int64_t a = RefEvalInt(*node.children[0], row);
      const std::int64_t b = RefEvalInt(*node.children[1], row);
      switch (node.cmp_op) {
        case CompareOp::kEq:
          return a == b;
        case CompareOp::kNe:
          return a != b;
        case CompareOp::kLt:
          return a < b;
        case CompareOp::kLe:
          return a <= b;
        case CompareOp::kGt:
          return a > b;
        case CompareOp::kGe:
          return a >= b;
      }
      return false;
    }
    case RefNode::Kind::kAnd: {
      for (const auto& child : node.children) {
        if (!RefEvalBool(*child, row)) return false;
      }
      return true;
    }
    case RefNode::Kind::kOr: {
      for (const auto& child : node.children) {
        if (RefEvalBool(*child, row)) return true;
      }
      return false;
    }
    case RefNode::Kind::kNot:
      return !RefEvalBool(*node.children[0], row);
    default:
      SMARTSSD_CHECK(false);
      return false;
  }
}

std::int64_t RefEvalInt(const RefNode& node,
                        const std::vector<std::int32_t>& row) {
  switch (node.kind) {
    case RefNode::Kind::kCol:
      return row[static_cast<std::size_t>(node.column)];
    case RefNode::Kind::kLit:
      return node.literal;
    case RefNode::Kind::kArith: {
      const std::int64_t a = RefEvalInt(*node.children[0], row);
      const std::int64_t b = RefEvalInt(*node.children[1], row);
      switch (node.arith_op) {
        case ArithOp::kAdd:
          return a + b;
        case ArithOp::kSub:
          return a - b;
        case ArithOp::kMul:
          return a * b;
        case ArithOp::kDiv:
          return b == 0 ? 0 : a / b;
      }
      return 0;
    }
    default:
      SMARTSSD_CHECK(false);
      return 0;
  }
}

class ExprPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExprPropertyTest, InterpreterMatchesReferenceEvaluator) {
  Random rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);
  std::vector<storage::Column> columns;
  for (int c = 0; c < kColumns; ++c) {
    columns.push_back(storage::Column::Int32("c" + std::to_string(c)));
  }
  auto schema_or = storage::Schema::Create(std::move(columns));
  ASSERT_TRUE(schema_or.ok());
  const storage::Schema& schema = *schema_or;

  for (int trial = 0; trial < 40; ++trial) {
    const Pair pair = RandomBool(rng, 3);
    ASSERT_TRUE(pair.expr->Validate(schema).ok());

    for (int r = 0; r < 10; ++r) {
      std::vector<std::int32_t> row(kColumns);
      std::vector<std::byte> tuple(schema.tuple_size());
      storage::TupleWriter writer(&schema, tuple);
      for (int c = 0; c < kColumns; ++c) {
        row[static_cast<std::size_t>(c)] =
            static_cast<std::int32_t>(rng.UniformInt(-500, 500));
        writer.SetInt32(c, row[static_cast<std::size_t>(c)]);
      }
      const bool expected = RefEvalBool(*pair.ref, row);

      // NSM view.
      EvalStats stats;
      const NsmRowView nsm(&schema, tuple.data());
      EXPECT_EQ(pair.expr->Evaluate(nsm, &stats).AsBool(), expected)
          << "seed " << GetParam() << " trial " << trial << ": "
          << pair.expr->ToString();

      // PAX view of the same row.
      storage::PaxPageBuilder builder(&schema, 512);
      ASSERT_TRUE(builder.Append(tuple));
      auto reader = storage::PaxPageReader::Open(&schema, builder.image());
      ASSERT_TRUE(reader.ok());
      const PaxRowView pax(&schema, &*reader, 0);
      EXPECT_EQ(pair.expr->Evaluate(pax, &stats).AsBool(), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace smartssd::expr
