// Failure injection: the flash reliability model (raw bit errors, ECC
// correction, read-retry, uncorrectable reads) and its propagation
// through the FTL and device stack.

#include <gtest/gtest.h>

#include <vector>

#include "flash/flash_array.h"
#include "ftl/ftl.h"
#include "ssd/ssd_device.h"

namespace smartssd::flash {
namespace {

Geometry TinyGeometry() {
  Geometry g;
  g.channels = 2;
  g.chips_per_channel = 2;
  g.blocks_per_chip = 8;
  g.pages_per_block = 8;
  g.page_size_bytes = 4096;
  return g;
}

TEST(ReliabilityTest, ZeroRateNeverInterferes) {
  FlashArray array(TinyGeometry(), Timings{}, Reliability{});
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(array.ReadPageTiming(PageAddress{0, 0, 0, 0}, 0).ok());
  }
  EXPECT_EQ(array.reads_corrected(), 0u);
  EXPECT_EQ(array.read_retries(), 0u);
  EXPECT_EQ(array.uncorrectable_reads(), 0u);
}

TEST(ReliabilityTest, ModerateRateIsCorrectedSilently) {
  // ~3e-4 raw BER over 32768 bits => ~10 raw errors/page, well inside
  // the 40-bit correction strength: every read succeeds, many are
  // corrected, none retried.
  Reliability reliability;
  reliability.raw_bit_error_rate = 3e-4;
  FlashArray array(TinyGeometry(), Timings{}, reliability);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(array.ReadPageTiming(PageAddress{0, 0, 0, 0}, 0).ok());
  }
  EXPECT_GT(array.reads_corrected(), 400u);
  EXPECT_EQ(array.read_retries(), 0u);
  EXPECT_EQ(array.uncorrectable_reads(), 0u);
}

TEST(ReliabilityTest, HighRateTriggersRetriesButRecovers) {
  // ~60 raw errors/page exceeds 40 correctable; one retry halves it to
  // ~30, which passes. Reads succeed but cost retries.
  Reliability reliability;
  reliability.raw_bit_error_rate = 1.8e-3;
  FlashArray array(TinyGeometry(), Timings{}, reliability);
  SimTime clean_done = 0;
  {
    FlashArray clean(TinyGeometry(), Timings{}, Reliability{});
    clean_done = clean.ReadPageTiming(PageAddress{0, 0, 0, 0}, 0).value();
  }
  std::uint64_t successes = 0;
  SimTime worst = 0;
  for (int i = 0; i < 200; ++i) {
    auto read = array.ReadPageTiming(PageAddress{0, 0, 1, 0}, 0);
    if (read.ok()) {
      ++successes;
      worst = std::max(worst, read.value());
    }
  }
  EXPECT_EQ(successes, 200u);
  EXPECT_GT(array.read_retries(), 100u);
  // Retries cost real time: the worst read takes noticeably longer than
  // a clean one (it queues behind others too, so compare magnitudes).
  EXPECT_GT(worst, clean_done);
}

TEST(ReliabilityTest, ExtremeRateBecomesUncorrectable) {
  // ~400 raw errors/page: even 3 retries (scaling to ~50) cannot get
  // under 40 reliably; most reads fail with CORRUPTION.
  Reliability reliability;
  reliability.raw_bit_error_rate = 1.2e-2;
  reliability.max_read_retries = 2;
  FlashArray array(TinyGeometry(), Timings{}, reliability);
  std::uint64_t failures = 0;
  for (int i = 0; i < 100; ++i) {
    auto read = array.ReadPageTiming(PageAddress{0, 0, 0, 0}, 0);
    if (!read.ok()) {
      EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
      ++failures;
    }
  }
  EXPECT_GT(failures, 50u);
  EXPECT_EQ(array.uncorrectable_reads(), failures);
}

TEST(ReliabilityTest, ErrorsPropagateThroughFtl) {
  Reliability reliability;
  reliability.raw_bit_error_rate = 5e-2;  // hopeless
  reliability.max_read_retries = 1;
  FlashArray array(TinyGeometry(), Timings{}, reliability);
  ftl::Ftl ftl(&array, ftl::FtlConfig{});
  std::vector<std::byte> page(4096, std::byte{1});
  ASSERT_TRUE(ftl.Write(0, page, 0).ok());
  auto read = ftl.Read(0, page, 0);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

TEST(ReliabilityTest, ErrorsPropagateThroughDevice) {
  ssd::SsdConfig config = ssd::SsdConfig::Tiny();
  config.reliability.raw_bit_error_rate = 5e-2;
  config.reliability.max_read_retries = 1;
  ssd::SsdDevice device(config);
  std::vector<std::byte> page(device.page_size(), std::byte{2});
  ASSERT_TRUE(device.WritePages(0, 1, page, 0).ok());
  auto read = device.ReadPages(0, 1, page, 0);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

TEST(ReliabilityTest, DeterministicForSeed) {
  Reliability reliability;
  reliability.raw_bit_error_rate = 2e-3;
  reliability.seed = 777;
  auto run = [&]() {
    FlashArray array(TinyGeometry(), Timings{}, reliability);
    std::uint64_t ok_count = 0;
    for (int i = 0; i < 100; ++i) {
      if (array.ReadPageTiming(PageAddress{0, 0, 0, 0}, 0).ok()) {
        ++ok_count;
      }
    }
    return std::make_pair(ok_count, array.read_retries());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace smartssd::flash
