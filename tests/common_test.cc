#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/units.h"

namespace smartssd {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = NotFoundError("missing table");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing table");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing table");
}

TEST(StatusTest, FactoryCoversEveryCode) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(CorruptionError("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(AbortedError("x").code(), StatusCode::kAborted);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_FALSE(NotFoundError("a") == NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = InvalidArgumentError("bad");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(5);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> v = std::move(result).value();
  EXPECT_EQ(*v, 5);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  SMARTSSD_ASSIGN_OR_RETURN(const int half, HalveEven(x));
  SMARTSSD_ASSIGN_OR_RETURN(const int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(QuarterViaMacro(8).value(), 2);
  EXPECT_FALSE(QuarterViaMacro(6).ok());  // half is odd
  EXPECT_FALSE(QuarterViaMacro(3).ok());
}

TEST(UnitsTest, TransferTime) {
  // 1000 bytes at 1000 B/s = 1 second.
  EXPECT_EQ(TransferTime(1000, 1000), kSecond);
  // 550 MB/s moving 550 MB takes one second.
  EXPECT_EQ(TransferTime(550 * kMB, 550 * kMB), kSecond);
  EXPECT_EQ(TransferTime(0, 1000), 0u);
  // Sub-nanosecond transfers round up to 1 ns, never 0.
  EXPECT_EQ(TransferTime(1, 2'000'000'000), 1u);
}

TEST(UnitsTest, CyclesToTime) {
  EXPECT_EQ(CyclesToTime(400'000'000, 400'000'000), kSecond);
  EXPECT_EQ(CyclesToTime(1, 1'000'000'000), 1u);
  EXPECT_EQ(CyclesToTime(0, 1'000'000'000), 0u);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomTest, UniformRespectsBound) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformIntInclusiveRange) {
  Random rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RandomTest, UniformIsRoughlyUniform) {
  Random rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.Uniform(kBuckets)];
  }
  for (const int count : counts) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RandomTest, BernoulliEdgeCases) {
  Random rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits, 3000, 300);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace smartssd
