// Tests for the fault-tolerant multi-device fleet (engine/fleet.h):
// partitioned scatter-gather byte-identity against single-device ground
// truth, per-device fault-seed purity, breaker-open re-dispatch,
// half-open single-probe admission under concurrent traffic, hedged
// subqueries with deterministic replay, and the degraded-mode ladder.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "check/invariants.h"
#include "check/result_compare.h"
#include "check/table_gen.h"
#include "common/units.h"
#include "engine/executor.h"
#include "engine/fleet.h"
#include "expr/expression.h"
#include "obs/trace.h"
#include "sim/fault_injector.h"

namespace smartssd::engine {
namespace {

using check::CompareOutputs;
using check::ExecutionOutput;
using check::TableGenConfig;

// --- Shared query shapes over the check tables ---------------------------

// SUM/COUNT over a ~50% selection of F: exercises the scalar-aggregate
// merge and keeps every device's partition contributing.
exec::QuerySpec SumSpec() {
  exec::QuerySpec spec;
  spec.name = "fleet_sum";
  spec.table = check::kOuterTable;
  spec.predicate =
      expr::Lt(expr::Col(3), expr::Lit(check::kValueDomain / 2));
  spec.aggregates.push_back(exec::AggSpec{
      .fn = exec::AggSpec::Fn::kSum, .input = expr::Col(4), .name = "s"});
  spec.aggregates.push_back(exec::AggSpec{
      .fn = exec::AggSpec::Fn::kCount, .input = nullptr, .name = "c"});
  return spec;
}

// GROUP BY cat: exercises the keyed merge (groups span partitions).
exec::QuerySpec GroupSpec() {
  exec::QuerySpec spec;
  spec.name = "fleet_group";
  spec.table = check::kOuterTable;
  spec.group_by = {2};
  spec.aggregates.push_back(exec::AggSpec{
      .fn = exec::AggSpec::Fn::kSum, .input = expr::Col(6), .name = "s"});
  return spec;
}

ExecutionOutput GroundTruth(const exec::QuerySpec& spec,
                            ExecutionTarget target,
                            const TableGenConfig& config) {
  Database db(DatabaseOptions::PaperSmartSsd());
  SMARTSSD_CHECK(
      check::LoadTables(db, config, storage::PageLayout::kNsm).ok());
  db.ResetForColdRun();
  QueryExecutor executor(&db);
  auto result = executor.Execute(spec, target);
  SMARTSSD_CHECK(result.ok());
  return check::FromQuery("single", *result);
}

ExecutionOutput FleetRun(Fleet& fleet, const exec::QuerySpec& spec,
                         ExecutionTarget target,
                         const FleetOptions& options = {}) {
  fleet.ResetForColdRun();
  auto result = ExecuteOnFleet(fleet, spec, target, 0, options);
  SMARTSSD_CHECK(result.ok());
  return check::FromFleet("fleet", *result);
}

// --- Satellite: per-device fault seeds ------------------------------------

TEST(DeviceFaultSeedTest, PureAndDistinct) {
  // Pure: same inputs, same seed — no hidden state.
  EXPECT_EQ(DeviceFaultSeed(7, 3), DeviceFaultSeed(7, 3));
  // Distinct across devices of one fleet and across fleet seeds.
  std::set<std::uint64_t> seeds;
  for (int d = 0; d < 16; ++d) seeds.insert(DeviceFaultSeed(7, d));
  for (int d = 0; d < 16; ++d) seeds.insert(DeviceFaultSeed(8, d));
  EXPECT_EQ(seeds.size(), 32u);
}

TEST(DeviceFaultSeedTest, LoadFaultScheduleUsesDerivedSeed) {
  Fleet fleet(2, DatabaseOptions::PaperSmartSsd(), /*fleet_seed=*/42);
  EXPECT_EQ(fleet.device_fault_seed(0), DeviceFaultSeed(42, 0));
  EXPECT_NE(fleet.device_fault_seed(0), fleet.device_fault_seed(1));
}

// --- Scatter-gather byte-identity -----------------------------------------

class FleetTest : public ::testing::Test {
 protected:
  TableGenConfig gen_;
};

TEST_F(FleetTest, UniformFleetMatchesSingleDeviceByteForByte) {
  Fleet fleet(3, DatabaseOptions::PaperSmartSsd());
  SMARTSSD_CHECK(
      check::LoadTablesFleet(fleet, gen_, storage::PageLayout::kNsm).ok());
  std::vector<exec::QuerySpec> specs;
  specs.push_back(SumSpec());
  specs.push_back(GroupSpec());
  for (const exec::QuerySpec& spec : specs) {
    for (ExecutionTarget target :
         {ExecutionTarget::kSmartSsd, ExecutionTarget::kHost}) {
      const ExecutionOutput expected = GroundTruth(spec, target, gen_);
      const ExecutionOutput actual = FleetRun(fleet, spec, target);
      const Status s = CompareOutputs(expected, actual);
      EXPECT_TRUE(s.ok()) << spec.name << ": " << s.message();
    }
  }
}

TEST_F(FleetTest, HeterogeneousFleetMatchesSingleDevice) {
  DatabaseOptions base = DatabaseOptions::PaperSmartSsd();
  DatabaseOptions slow = base;
  slow.ssd.embedded_cpu.cores = 2;
  slow.ssd.embedded_cpu.clock_hz = 300ull * 1000 * 1000;
  Fleet fleet({base, slow, base});
  SMARTSSD_CHECK(
      check::LoadTablesFleet(fleet, gen_, storage::PageLayout::kPax).ok());
  const exec::QuerySpec spec = SumSpec();
  const ExecutionOutput expected =
      GroundTruth(spec, ExecutionTarget::kSmartSsd, gen_);
  const ExecutionOutput actual =
      FleetRun(fleet, spec, ExecutionTarget::kSmartSsd);
  const Status s = CompareOutputs(expected, actual);
  EXPECT_TRUE(s.ok()) << s.message();
}

TEST_F(FleetTest, RejectsQueryOverReplicatedTable) {
  Fleet fleet(2, DatabaseOptions::PaperSmartSsd());
  SMARTSSD_CHECK(
      check::LoadTablesFleet(fleet, gen_, storage::PageLayout::kNsm).ok());
  exec::QuerySpec spec = SumSpec();
  spec.table = check::kInnerTable;  // replicated, not partitioned
  auto result =
      ExecuteOnFleet(fleet, spec, ExecutionTarget::kSmartSsd);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(std::string(result.status().message())
                .find("not partition-loaded"),
            std::string::npos);
}

// --- Breaker-open re-dispatch ---------------------------------------------

TEST_F(FleetTest, BreakerOpenRedispatchIsByteIdentical) {
  Fleet fleet(3, DatabaseOptions::PaperSmartSsd());
  SMARTSSD_CHECK(
      check::LoadTablesFleet(fleet, gen_, storage::PageLayout::kNsm).ok());
  const exec::QuerySpec spec = SumSpec();
  const ExecutionOutput healthy =
      FleetRun(fleet, spec, ExecutionTarget::kSmartSsd);

  // Trip device 1's breaker; a query arriving inside the cooldown must
  // send that partition straight to the host path — same bytes.
  fleet.ResetForColdRun();
  DeviceCircuitBreaker& breaker = fleet.device(1).circuit_breaker();
  breaker.Reset();
  for (std::uint32_t i = 0; i < breaker.config().failure_threshold; ++i) {
    breaker.RecordFailure(0, "test");
  }
  ASSERT_EQ(breaker.state(), DeviceCircuitBreaker::State::kOpen);
  fleet.UpdateBreakerGauges();
  EXPECT_EQ(fleet.metrics().gauge("fleet.dev1.breaker_state")->value(), 1);

  FleetCoordinator coordinator(&fleet);
  FleetQueryConfig config;
  config.spec = &spec;
  coordinator.Submit(config, /*at=*/0);
  auto completed = coordinator.Run();
  ASSERT_TRUE(completed.ok());
  ASSERT_EQ(completed->size(), 1u);
  const CompletedFleetQuery& record = completed->front();
  ASSERT_TRUE(record.result.ok()) << record.result.status().message();
  EXPECT_TRUE(record.subqueries[1].redispatched);
  EXPECT_FALSE(record.subqueries[0].redispatched);
  EXPECT_FALSE(record.subqueries[2].redispatched);
  EXPECT_EQ(coordinator.redispatches(), 1u);
  EXPECT_EQ(coordinator.breaker_probes(), 0u);

  const ExecutionOutput redispatched =
      check::FromFleet("fleet-redispatch", record.result.value());
  const Status s = CompareOutputs(healthy, redispatched);
  EXPECT_TRUE(s.ok()) << s.message();
  // Gauges refreshed on completion: still open (nobody probed it).
  EXPECT_EQ(fleet.metrics().gauge("fleet.dev1.breaker_state")->value(), 1);
  breaker.Reset();
}

TEST_F(FleetTest, HalfOpenAdmitsExactlyOneProbeUnderConcurrentTraffic) {
  Fleet fleet(2, DatabaseOptions::PaperSmartSsd());
  SMARTSSD_CHECK(
      check::LoadTablesFleet(fleet, gen_, storage::PageLayout::kNsm).ok());
  const exec::QuerySpec spec = SumSpec();
  const ExecutionOutput healthy =
      GroundTruth(spec, ExecutionTarget::kSmartSsd, gen_);

  DeviceCircuitBreaker& breaker = fleet.device(0).circuit_breaker();
  for (std::uint32_t i = 0; i < breaker.config().failure_threshold; ++i) {
    breaker.RecordFailure(0, "test");
  }
  ASSERT_EQ(breaker.state(), DeviceCircuitBreaker::State::kOpen);

  // Three fleet queries arrive together just past the cooldown: exactly
  // one device-0 subquery is admitted as the half-open probe; the other
  // two keep bypassing to the host path while the probe is in flight.
  FleetCoordinator coordinator(&fleet);
  const SimTime arrival = breaker.config().cooldown + 100 * kMillisecond;
  FleetQueryConfig config;
  config.spec = &spec;
  for (int i = 0; i < 3; ++i) coordinator.Submit(config, arrival);
  auto completed = coordinator.Run();
  ASSERT_TRUE(completed.ok());
  ASSERT_EQ(completed->size(), 3u);

  EXPECT_EQ(coordinator.breaker_probes(), 1u);
  EXPECT_EQ(coordinator.redispatches(), 2u);
  int probes = 0, redispatches = 0;
  for (const CompletedFleetQuery& record : *completed) {
    ASSERT_TRUE(record.result.ok()) << record.result.status().message();
    const ExecutionOutput out =
        check::FromFleet("fleet-probe", record.result.value());
    const Status s = CompareOutputs(healthy, out);
    EXPECT_TRUE(s.ok()) << s.message();
    if (record.subqueries[0].redispatched) {
      ++redispatches;
    } else {
      ++probes;
    }
  }
  EXPECT_EQ(probes, 1);
  EXPECT_EQ(redispatches, 2);
  // The healthy probe succeeded, closing the breaker for good.
  EXPECT_EQ(breaker.state(), DeviceCircuitBreaker::State::kClosed);
}

// --- Hedged subqueries ----------------------------------------------------

struct HedgeRun {
  std::vector<CompletedFleetQuery> completed;
  std::uint64_t hedges = 0;
  std::uint64_t wins = 0;
  std::uint64_t abandoned = 0;
};

// A 4-device fleet where device 3's embedded CPU is 10x slower: its
// device-path subqueries outlive the fleet latency quantile and get a
// host-path hedge that wins. Returns everything replay determinism must
// preserve.
HedgeRun RunHedgedWorkload(const exec::QuerySpec& spec,
                           const TableGenConfig& gen) {
  DatabaseOptions base = DatabaseOptions::PaperSmartSsd();
  DatabaseOptions straggler = base;
  straggler.ssd.embedded_cpu.clock_hz = 40ull * 1000 * 1000;
  Fleet fleet({base, base, base, straggler});
  SMARTSSD_CHECK(
      check::LoadTablesFleet(fleet, gen, storage::PageLayout::kNsm).ok());
  obs::Tracer tracer;
  fleet.AttachTracer(&tracer);

  FleetOptions options;
  options.hedge_quantile = 0.5;  // track the fast devices' latencies
  options.hedge_latency_factor = 2.0;
  options.hedge_min_samples = 4;  // armed from the second query on
  FleetCoordinator coordinator(&fleet, options);
  FleetQueryConfig config;
  config.spec = &spec;
  coordinator.AddClosedLoopClient(config, /*count=*/4);
  auto completed = coordinator.Run();
  SMARTSSD_CHECK(completed.ok());

  // Cancellation left nothing behind: grants returned, spans closed.
  SMARTSSD_CHECK(check::CheckFleetInvariants(fleet).ok());
  SMARTSSD_CHECK(check::CheckTraceInvariants(tracer).ok());

  HedgeRun run;
  run.completed = std::move(completed).value();
  run.hedges = coordinator.hedges_launched();
  run.wins = coordinator.hedge_wins();
  run.abandoned = fleet.device(3).runtime()->sessions_abandoned();
  return run;
}

TEST_F(FleetTest, HedgeRescuesStragglerAndKeepsBytesIdentical) {
  const exec::QuerySpec spec = SumSpec();
  const ExecutionOutput expected =
      GroundTruth(spec, ExecutionTarget::kSmartSsd, gen_);
  const HedgeRun run = RunHedgedWorkload(spec, gen_);
  ASSERT_EQ(run.completed.size(), 4u);

  // The first query has no latency samples, so it cannot hedge; later
  // queries hedge the straggler and the host-path duplicate wins.
  EXPECT_FALSE(run.completed.front().subqueries[3].hedged);
  EXPECT_GE(run.hedges, 1u);
  EXPECT_GE(run.wins, 1u);
  // The losing device-path task was destroyed mid-session.
  EXPECT_GE(run.abandoned, 1u);

  bool any_hedge_won = false;
  for (const CompletedFleetQuery& record : run.completed) {
    ASSERT_TRUE(record.result.ok()) << record.result.status().message();
    EXPECT_FALSE(record.result.value().degraded);
    const ExecutionOutput out =
        check::FromFleet("fleet-hedge", record.result.value());
    const Status s = CompareOutputs(expected, out);
    EXPECT_TRUE(s.ok()) << s.message();
    const FleetSubqueryRecord& straggler = record.subqueries[3];
    if (straggler.hedge_won) {
      any_hedge_won = true;
      EXPECT_TRUE(straggler.hedged);
    }
  }
  EXPECT_TRUE(any_hedge_won);
}

TEST_F(FleetTest, HedgeWinnersAreDeterministicOnReplay) {
  const exec::QuerySpec spec = SumSpec();
  const HedgeRun first = RunHedgedWorkload(spec, gen_);
  const HedgeRun second = RunHedgedWorkload(spec, gen_);
  EXPECT_GE(first.hedges, 1u);  // the scenario actually hedged
  EXPECT_EQ(first.hedges, second.hedges);
  EXPECT_EQ(first.wins, second.wins);
  EXPECT_EQ(first.abandoned, second.abandoned);
  ASSERT_EQ(first.completed.size(), second.completed.size());
  for (std::size_t i = 0; i < first.completed.size(); ++i) {
    const CompletedFleetQuery& a = first.completed[i];
    const CompletedFleetQuery& b = second.completed[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.arrival, b.arrival);
    EXPECT_EQ(a.end, b.end);
    ASSERT_EQ(a.subqueries.size(), b.subqueries.size());
    for (std::size_t d = 0; d < a.subqueries.size(); ++d) {
      EXPECT_EQ(a.subqueries[d].start, b.subqueries[d].start);
      EXPECT_EQ(a.subqueries[d].end, b.subqueries[d].end);
      EXPECT_EQ(a.subqueries[d].hedged, b.subqueries[d].hedged);
      EXPECT_EQ(a.subqueries[d].hedge_won, b.subqueries[d].hedge_won);
      EXPECT_EQ(a.subqueries[d].fell_back, b.subqueries[d].fell_back);
    }
    ASSERT_TRUE(a.result.ok());
    ASSERT_TRUE(b.result.ok());
    EXPECT_EQ(a.result.value().rows, b.result.value().rows);
    EXPECT_EQ(a.result.value().agg_values, b.result.value().agg_values);
    EXPECT_EQ(a.result.value().end, b.result.value().end);
  }
}

// --- Degraded mode --------------------------------------------------------

// A fault schedule no path survives: every flash page read on the
// device fails, so the session dies and the host rerun (which reads the
// same flash) dies too.
sim::FaultSchedule KillEveryRead() {
  sim::FaultSchedule schedule;
  schedule.faults.push_back(sim::FaultSpec{
      .kind = sim::FaultKind::kUncorrectableRead,
      .trigger = {.unit = sim::TriggerUnit::kPagesRead, .at = 1},
      .count = 1'000'000});
  return schedule;
}

TEST_F(FleetTest, StrictPolicyFailsWhenPartitionIsUnavailable) {
  Fleet fleet(2, DatabaseOptions::PaperSmartSsd());
  SMARTSSD_CHECK(
      check::LoadTablesFleet(fleet, gen_, storage::PageLayout::kNsm).ok());
  const exec::QuerySpec spec = SumSpec();
  fleet.LoadFaultSchedule(1, KillEveryRead());

  FleetCoordinator coordinator(&fleet);  // default policy: strict
  FleetQueryConfig config;
  config.spec = &spec;
  coordinator.Submit(config, 0);
  auto completed = coordinator.Run();
  ASSERT_TRUE(completed.ok());
  ASSERT_EQ(completed->size(), 1u);
  const CompletedFleetQuery& record = completed->front();
  ASSERT_FALSE(record.result.ok());
  EXPECT_NE(std::string(record.result.status().message())
                .find("partition 1 unavailable"),
            std::string::npos);
  EXPECT_TRUE(record.subqueries[1].unavailable);
  EXPECT_EQ(coordinator.unavailable_partitions(), 1u);
  fleet.ClearFaults();
}

TEST_F(FleetTest, BestEffortPolicyFlagsMissingPartitionExplicitly) {
  Fleet fleet(2, DatabaseOptions::PaperSmartSsd());
  SMARTSSD_CHECK(
      check::LoadTablesFleet(fleet, gen_, storage::PageLayout::kNsm).ok());
  const exec::QuerySpec spec = SumSpec();
  fleet.LoadFaultSchedule(1, KillEveryRead());

  FleetOptions options;
  options.policy = FleetResultPolicy::kBestEffort;
  auto result =
      ExecuteOnFleet(fleet, spec, ExecutionTarget::kSmartSsd, 0, options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result->degraded);
  EXPECT_EQ(result->missing_partitions, std::vector<int>{1});
  fleet.ClearFaults();

  // The partial is exactly partition 0's answer — never a silently
  // truncated variant of the full one. Recompute it from a single
  // database loaded with just partition 0's global row range.
  Database half(DatabaseOptions::PaperSmartSsd());
  const std::uint64_t half_rows = gen_.outer_rows / 2;
  const TableGenConfig& gen = gen_;
  const storage::Schema outer_schema = check::OuterSchema();
  storage::RowGenerator outer_gen =
      [&gen, &outer_schema](std::uint64_t row, storage::TupleWriter& w) {
        for (int c = 0; c < outer_schema.num_columns(); ++c) {
          const std::int64_t v = check::OuterValue(gen, row, c);
          if (outer_schema.column(c).type == storage::ColumnType::kInt64) {
            w.SetInt64(c, v);
          } else {
            w.SetInt32(c, static_cast<std::int32_t>(v));
          }
        }
      };
  SMARTSSD_CHECK(half.LoadTable(check::kOuterTable, outer_schema,
                                storage::PageLayout::kNsm, half_rows,
                                outer_gen)
                     .ok());
  half.ResetForColdRun();
  QueryExecutor executor(&half);
  auto partial = executor.Execute(spec, ExecutionTarget::kSmartSsd);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(result->agg_values, partial->agg_values);
}

}  // namespace
}  // namespace smartssd::engine
