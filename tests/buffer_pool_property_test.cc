// Randomized buffer pool testing against a reference model: a plain
// map of the "current logical contents" of every page. Any sequence of
// reads, writes, flushes, and clears must keep the pool's answers equal
// to the model's, and the device state equal after a flush.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.h"
#include "engine/buffer_pool.h"
#include "ssd/ssd_device.h"

namespace smartssd::engine {
namespace {

constexpr std::uint64_t kPages = 200;

class BufferPoolPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BufferPoolPropertyTest, PoolMatchesReferenceModel) {
  Random rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
  ssd::SsdConfig config = ssd::SsdConfig::PaperSmartSsd();
  config.geometry.blocks_per_chip = 32;
  ssd::SsdDevice device(config);
  const std::uint32_t page_size = device.page_size();

  // Preload every page with a known tag; the model mirrors it.
  std::map<std::uint64_t, std::uint8_t> model;
  {
    std::vector<std::byte> page(page_size);
    SimTime t = 0;
    for (std::uint64_t lpn = 0; lpn < kPages; ++lpn) {
      const std::uint8_t tag = static_cast<std::uint8_t>(rng.Uniform(256));
      std::fill(page.begin(), page.end(), std::byte{tag});
      auto done = device.WritePages(lpn, 1, page, t);
      ASSERT_TRUE(done.ok());
      t = done.value();
      model[lpn] = tag;
    }
    device.ResetTiming();
  }

  // Small pool to force constant eviction.
  BufferPool pool(&device, 48);
  SimTime t = 0;
  for (int step = 0; step < 600; ++step) {
    const std::uint64_t lpn = rng.Uniform(kPages);
    switch (rng.Uniform(10)) {
      case 0: {  // write through the pool
        const std::uint8_t tag =
            static_cast<std::uint8_t>(rng.Uniform(256));
        std::vector<std::byte> page(page_size, std::byte{tag});
        auto done = pool.WritePage(lpn, page, t);
        ASSERT_TRUE(done.ok());
        t = done.value();
        model[lpn] = tag;
        EXPECT_TRUE(pool.IsDirty(lpn));
        break;
      }
      case 1: {  // flush everything
        auto done = pool.FlushAll(t);
        ASSERT_TRUE(done.ok());
        t = done.value();
        EXPECT_FALSE(pool.HasDirtyInRange(0, kPages));
        break;
      }
      case 2: {  // flush + clear (cold run)
        auto done = pool.FlushAll(t);
        ASSERT_TRUE(done.ok());
        t = done.value();
        pool.Clear();
        EXPECT_EQ(pool.CachedInRange(0, kPages), 0u);
        break;
      }
      default: {  // read
        auto page = pool.GetPage(lpn, t, kPages);
        ASSERT_TRUE(page.ok());
        t = page->second;
        EXPECT_EQ(page->first[0], std::byte{model[lpn]})
            << "step " << step << " lpn " << lpn;
        // Time never runs backwards.
        EXPECT_GE(page->second, 0u);
        break;
      }
    }
  }

  // Final flush: the device must hold exactly the model's contents.
  ASSERT_TRUE(pool.FlushAll(t).ok());
  std::vector<std::byte> page(page_size);
  for (const auto& [lpn, tag] : model) {
    ASSERT_TRUE(device.ReadPages(lpn, 1, page, t).ok());
    EXPECT_EQ(page[0], std::byte{tag}) << "lpn " << lpn;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferPoolPropertyTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace smartssd::engine
