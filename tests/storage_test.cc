#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "storage/nsm_page.h"
#include "storage/pax_page.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace smartssd::storage {
namespace {

Schema TestSchema() {
  auto schema = Schema::Create({
      Column::Int64("id"),
      Column::Int32("qty"),
      Column::FixedChar("flag", 1),
      Column::FixedChar("name", 11),
      Column::Int32("date"),
  });
  SMARTSSD_CHECK(schema.ok());
  return std::move(schema).value();
}

std::vector<std::byte> MakeTuple(const Schema& schema, std::int64_t id) {
  std::vector<std::byte> tuple(schema.tuple_size());
  TupleWriter writer(&schema, tuple);
  writer.SetInt64(0, id);
  writer.SetInt32(1, static_cast<std::int32_t>(id * 3));
  writer.SetChar(2, id % 2 == 0 ? "E" : "O");
  writer.SetChar(3, "row" + std::to_string(id));
  writer.SetInt32(4, static_cast<std::int32_t>(1000 + id));
  return tuple;
}

// --- Schema ---

TEST(SchemaTest, OffsetsAndTupleSize) {
  const Schema schema = TestSchema();
  EXPECT_EQ(schema.num_columns(), 5);
  EXPECT_EQ(schema.offset(0), 0u);
  EXPECT_EQ(schema.offset(1), 8u);
  EXPECT_EQ(schema.offset(2), 12u);
  EXPECT_EQ(schema.offset(3), 13u);
  EXPECT_EQ(schema.offset(4), 24u);
  EXPECT_EQ(schema.tuple_size(), 28u);
}

TEST(SchemaTest, FindColumn) {
  const Schema schema = TestSchema();
  EXPECT_EQ(schema.FindColumn("qty").value(), 1);
  EXPECT_EQ(schema.FindColumn("date").value(), 4);
  EXPECT_FALSE(schema.FindColumn("nope").ok());
}

TEST(SchemaTest, RejectsBadSchemas) {
  EXPECT_FALSE(Schema::Create({}).ok());
  EXPECT_FALSE(Schema::Create({Column{"", ColumnType::kInt32, 4}}).ok());
  EXPECT_FALSE(
      Schema::Create({Column::Int32("a"), Column::Int32("a")}).ok());
  EXPECT_FALSE(
      Schema::Create({Column{"bad", ColumnType::kInt32, 8}}).ok());
  EXPECT_FALSE(
      Schema::Create({Column{"bad", ColumnType::kInt64, 4}}).ok());
  EXPECT_FALSE(
      Schema::Create({Column{"bad", ColumnType::kFixedChar, 0}}).ok());
}

// --- Tuple reader/writer ---

TEST(TupleTest, RoundTrip) {
  const Schema schema = TestSchema();
  const auto tuple = MakeTuple(schema, 42);
  const TupleReader reader(&schema, tuple.data());
  EXPECT_EQ(reader.GetInt64(0), 42);
  EXPECT_EQ(reader.GetInt32(1), 126);
  EXPECT_EQ(reader.GetChar(2), "E");
  EXPECT_EQ(reader.GetChar(3), "row42      ");  // space padded to 11
  EXPECT_EQ(reader.GetInt32(4), 1042);
}

TEST(TupleTest, CharTruncatesToWidth) {
  const Schema schema = TestSchema();
  std::vector<std::byte> tuple(schema.tuple_size());
  TupleWriter writer(&schema, tuple);
  writer.SetChar(3, "abcdefghijklmnop");
  const TupleReader reader(&schema, tuple.data());
  EXPECT_EQ(reader.GetChar(3), "abcdefghijk");
}

// --- Page codecs: shared parameterized behaviour ---

class PageCodecTest : public ::testing::TestWithParam<PageLayout> {};

TEST_P(PageCodecTest, RoundTripAllTuples) {
  const Schema schema = TestSchema();
  const std::uint32_t page_size = 1024;
  std::vector<std::vector<std::byte>> tuples;

  std::vector<std::byte> image;
  std::uint32_t count = 0;
  if (GetParam() == PageLayout::kNsm) {
    NsmPageBuilder builder(&schema, page_size);
    while (builder.Append(MakeTuple(schema, count))) {
      tuples.push_back(MakeTuple(schema, count));
      ++count;
    }
    image.assign(builder.image().begin(), builder.image().end());
  } else {
    PaxPageBuilder builder(&schema, page_size);
    while (builder.Append(MakeTuple(schema, count))) {
      tuples.push_back(MakeTuple(schema, count));
      ++count;
    }
    image.assign(builder.image().begin(), builder.image().end());
  }
  ASSERT_GT(count, 10u);  // a 1 KiB page holds >10 28-byte tuples
  EXPECT_EQ(image.size(), page_size);

  if (GetParam() == PageLayout::kNsm) {
    auto reader = NsmPageReader::Open(&schema, image);
    ASSERT_TRUE(reader.ok());
    ASSERT_EQ(reader->tuple_count(), count);
    for (std::uint32_t i = 0; i < count; ++i) {
      EXPECT_EQ(std::memcmp(reader->tuple(static_cast<std::uint16_t>(i)),
                            tuples[i].data(), schema.tuple_size()),
                0)
          << "tuple " << i;
    }
  } else {
    auto reader = PaxPageReader::Open(&schema, image);
    ASSERT_TRUE(reader.ok());
    ASSERT_EQ(reader->tuple_count(), count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const TupleReader expected(&schema, tuples[i].data());
      const std::uint16_t row = static_cast<std::uint16_t>(i);
      std::int64_t id;
      std::memcpy(&id, reader->value(row, 0), 8);
      EXPECT_EQ(id, expected.GetInt64(0));
      std::int32_t qty;
      std::memcpy(&qty, reader->value(row, 1), 4);
      EXPECT_EQ(qty, expected.GetInt32(1));
      EXPECT_EQ(std::memcmp(reader->value(row, 3),
                            tuples[i].data() + schema.offset(3), 11),
                0);
    }
  }
}

TEST_P(PageCodecTest, ZeroPageReadsAsEmpty) {
  const Schema schema = TestSchema();
  const std::vector<std::byte> zeros(1024, std::byte{0});
  if (GetParam() == PageLayout::kNsm) {
    auto reader = NsmPageReader::Open(&schema, zeros);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader->tuple_count(), 0);
  } else {
    auto reader = PaxPageReader::Open(&schema, zeros);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader->tuple_count(), 0);
  }
}

TEST_P(PageCodecTest, BadMagicIsCorruption) {
  const Schema schema = TestSchema();
  std::vector<std::byte> garbage(1024, std::byte{0xEE});
  if (GetParam() == PageLayout::kNsm) {
    auto reader = NsmPageReader::Open(&schema, garbage);
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
  } else {
    auto reader = PaxPageReader::Open(&schema, garbage);
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, PageCodecTest,
                         ::testing::Values(PageLayout::kNsm,
                                           PageLayout::kPax),
                         [](const auto& info) {
                           return std::string(PageLayoutName(info.param));
                         });

// --- Layout-specific corruption and capacity details ---

TEST(NsmPageTest, CorruptTupleCountDetected) {
  const Schema schema = TestSchema();
  NsmPageBuilder builder(&schema, 1024);
  ASSERT_TRUE(builder.Append(MakeTuple(schema, 1)));
  std::vector<std::byte> image(builder.image().begin(),
                               builder.image().end());
  const std::uint16_t bogus = 999;
  std::memcpy(image.data() + 2, &bogus, 2);
  auto reader = NsmPageReader::Open(&schema, image);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST(NsmPageTest, CorruptSlotOffsetDetected) {
  const Schema schema = TestSchema();
  NsmPageBuilder builder(&schema, 1024);
  ASSERT_TRUE(builder.Append(MakeTuple(schema, 1)));
  std::vector<std::byte> image(builder.image().begin(),
                               builder.image().end());
  const std::uint16_t bogus_offset = 1020;  // points into the slot dir
  std::memcpy(image.data() + 1022, &bogus_offset, 2);
  auto reader = NsmPageReader::Open(&schema, image);
  ASSERT_FALSE(reader.ok());
}

TEST(NsmPageTest, CapacityAccountsForSlots) {
  const Schema schema = TestSchema();  // 28-byte tuples
  NsmPageBuilder builder(&schema, 1024);
  // (1024 - 8) / (28 + 2) = 33.
  EXPECT_EQ(builder.capacity(), 33u);
  std::uint32_t appended = 0;
  while (builder.Append(MakeTuple(schema, appended))) ++appended;
  EXPECT_EQ(appended, builder.capacity());
}

TEST(PaxPageTest, CapacityAccountsForDirectory) {
  const Schema schema = TestSchema();
  // (1024 - 8 - 2*5) / 28 = 35.
  EXPECT_EQ(PaxCapacity(schema, 1024), 35u);
  PaxPageBuilder builder(&schema, 1024);
  std::uint32_t appended = 0;
  while (builder.Append(MakeTuple(schema, appended))) ++appended;
  EXPECT_EQ(appended, 35u);
}

TEST(PaxPageTest, ColumnCountMismatchDetected) {
  const Schema schema = TestSchema();
  PaxPageBuilder builder(&schema, 1024);
  ASSERT_TRUE(builder.Append(MakeTuple(schema, 1)));
  auto other = Schema::Create({Column::Int32("only")});
  auto reader = PaxPageReader::Open(&*other, builder.image());
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST(PaxPageTest, MinipagesAreContiguousPerColumn) {
  const Schema schema = TestSchema();
  PaxPageBuilder builder(&schema, 1024);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(builder.Append(MakeTuple(schema, i)));
  }
  auto reader = PaxPageReader::Open(&schema, builder.image());
  ASSERT_TRUE(reader.ok());
  // Column 1 (int32): consecutive rows are 4 bytes apart.
  const std::byte* base = reader->column_data(1);
  for (std::uint16_t i = 0; i < 10; ++i) {
    EXPECT_EQ(reader->value(i, 1), base + 4 * i);
  }
}

// Property: random schemas and tuples round-trip through both codecs.
TEST(PageCodecPropertyTest, RandomSchemasRoundTrip) {
  Random rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Column> columns;
    const int ncols = static_cast<int>(rng.Uniform(12)) + 1;
    for (int c = 0; c < ncols; ++c) {
      switch (rng.Uniform(3)) {
        case 0:
          columns.push_back(Column::Int32("c" + std::to_string(c)));
          break;
        case 1:
          columns.push_back(Column::Int64("c" + std::to_string(c)));
          break;
        default:
          columns.push_back(Column::FixedChar(
              "c" + std::to_string(c),
              static_cast<std::uint32_t>(rng.Uniform(20)) + 1));
      }
    }
    auto schema_or = Schema::Create(std::move(columns));
    ASSERT_TRUE(schema_or.ok());
    const Schema& schema = *schema_or;

    std::vector<std::byte> tuple(schema.tuple_size());
    for (auto& b : tuple) {
      b = static_cast<std::byte>(rng.Uniform(256));
    }

    NsmPageBuilder nsm(&schema, 4096);
    PaxPageBuilder pax(&schema, 4096);
    ASSERT_TRUE(nsm.Append(tuple));
    ASSERT_TRUE(pax.Append(tuple));

    auto nsm_reader = NsmPageReader::Open(&schema, nsm.image());
    ASSERT_TRUE(nsm_reader.ok());
    EXPECT_EQ(std::memcmp(nsm_reader->tuple(0), tuple.data(),
                          schema.tuple_size()),
              0);

    auto pax_reader = PaxPageReader::Open(&schema, pax.image());
    ASSERT_TRUE(pax_reader.ok());
    for (int c = 0; c < schema.num_columns(); ++c) {
      EXPECT_EQ(std::memcmp(pax_reader->value(0, c),
                            tuple.data() + schema.offset(c),
                            schema.column(c).width),
                0);
    }
  }
}

}  // namespace
}  // namespace smartssd::storage
