// Fault injection end-to-end: injected device failures surface as the
// right Status at the right layer, sessions always tear down cleanly,
// the engine degrades to the host scan path with byte-identical
// results, and the circuit breaker routes around a device that keeps
// failing.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "engine/circuit_breaker.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "sim/fault_injector.h"
#include "smart/program.h"
#include "smart/runtime.h"
#include "ssd/ssd_device.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

namespace smartssd {
namespace {

using sim::FaultInjector;
using sim::FaultKind;
using sim::FaultSchedule;
using sim::FaultSpec;
using sim::RandomFault;
using sim::TriggerUnit;

FaultSchedule OneFault(FaultKind kind, TriggerUnit unit, std::uint64_t at,
                       std::uint32_t count = 1) {
  FaultSchedule schedule;
  schedule.faults.push_back(FaultSpec{kind, {unit, at}, count});
  return schedule;
}

FaultSchedule RandomSchedule(FaultKind kind, double per_page,
                             std::uint64_t seed) {
  FaultSchedule schedule;
  schedule.random.push_back(RandomFault{kind, per_page});
  schedule.seed = seed;
  return schedule;
}

// --- FaultInjector unit tests -----------------------------------------

TEST(FaultInjectorTest, UnarmedNeverFiresNorCounts) {
  FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.OnPageRead(FaultKind::kUncorrectableRead, 0));
  EXPECT_FALSE(injector.OnBytes(FaultKind::kTransferError, 4096, 0));
  EXPECT_FALSE(injector.OnEvent(FaultKind::kDeviceReset, 0));
  EXPECT_EQ(injector.pages_read(), 0u);
  EXPECT_EQ(injector.bytes_transferred(), 0u);
  EXPECT_EQ(injector.total_fired(), 0u);
}

TEST(FaultInjectorTest, PageTriggerFiresAtThreshold) {
  FaultInjector injector;
  injector.Load(
      OneFault(FaultKind::kUncorrectableRead, TriggerUnit::kPagesRead, 3));
  EXPECT_FALSE(injector.OnPageRead(FaultKind::kUncorrectableRead, 0));
  EXPECT_FALSE(injector.OnPageRead(FaultKind::kUncorrectableRead, 0));
  EXPECT_TRUE(injector.OnPageRead(FaultKind::kUncorrectableRead, 0));
  // count defaults to 1: the fault is spent.
  EXPECT_FALSE(injector.OnPageRead(FaultKind::kUncorrectableRead, 0));
  EXPECT_EQ(injector.fired(FaultKind::kUncorrectableRead), 1u);
}

TEST(FaultInjectorTest, CountedFaultFiresRepeatedly) {
  FaultInjector injector;
  injector.Load(OneFault(FaultKind::kUncorrectableRead,
                         TriggerUnit::kPagesRead, 2, /*count=*/2));
  EXPECT_FALSE(injector.OnPageRead(FaultKind::kUncorrectableRead, 0));
  EXPECT_TRUE(injector.OnPageRead(FaultKind::kUncorrectableRead, 0));
  EXPECT_TRUE(injector.OnPageRead(FaultKind::kUncorrectableRead, 0));
  EXPECT_FALSE(injector.OnPageRead(FaultKind::kUncorrectableRead, 0));
  EXPECT_EQ(injector.fired(FaultKind::kUncorrectableRead), 2u);
}

TEST(FaultInjectorTest, ByteTriggerAccumulates) {
  FaultInjector injector;
  injector.Load(OneFault(FaultKind::kTransferError,
                         TriggerUnit::kBytesTransferred, 10'000));
  EXPECT_FALSE(injector.OnBytes(FaultKind::kTransferError, 4096, 0));
  EXPECT_FALSE(injector.OnBytes(FaultKind::kTransferError, 4096, 0));
  EXPECT_TRUE(injector.OnBytes(FaultKind::kTransferError, 4096, 0));
  EXPECT_EQ(injector.bytes_transferred(), 3u * 4096);
}

TEST(FaultInjectorTest, SimTimeTriggerComparesVirtualTime) {
  FaultInjector injector;
  injector.Load(
      OneFault(FaultKind::kDeviceReset, TriggerUnit::kSimTime, 1000));
  EXPECT_FALSE(injector.OnEvent(FaultKind::kDeviceReset, 999));
  EXPECT_TRUE(injector.OnEvent(FaultKind::kDeviceReset, 1000));
  EXPECT_FALSE(injector.OnEvent(FaultKind::kDeviceReset, 2000));
}

TEST(FaultInjectorTest, KindsDoNotCrossFire) {
  FaultInjector injector;
  injector.Load(OneFault(FaultKind::kGetStall, TriggerUnit::kSimTime, 0));
  EXPECT_FALSE(injector.OnEvent(FaultKind::kDeviceReset, 100));
  EXPECT_FALSE(injector.OnPageRead(FaultKind::kUncorrectableRead, 100));
  EXPECT_TRUE(injector.OnEvent(FaultKind::kGetStall, 100));
}

TEST(FaultInjectorTest, RandomFaultsReplayWithSameSeed) {
  FaultSchedule schedule =
      RandomSchedule(FaultKind::kUncorrectableRead, 0.3, /*seed=*/42);
  FaultInjector injector;
  auto draw = [&] {
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(
          injector.OnPageRead(FaultKind::kUncorrectableRead, 0));
    }
    return fires;
  };
  injector.Load(schedule);
  const std::vector<bool> first = draw();
  injector.Load(schedule);  // re-load resets RNG and counters
  EXPECT_EQ(first, draw());
  // A different seed produces a different pattern (with 2^-200 odds of
  // a flake, effectively never).
  schedule.seed = 43;
  injector.Load(schedule);
  EXPECT_NE(first, draw());
}

TEST(FaultInjectorTest, ClearDisarms) {
  FaultInjector injector;
  FaultSchedule schedule =
      OneFault(FaultKind::kOpenRejected, TriggerUnit::kSimTime, 0);
  schedule.random.push_back(
      RandomFault{FaultKind::kUncorrectableRead, 1.0});
  injector.Load(schedule);
  EXPECT_TRUE(injector.armed());
  injector.Clear();
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.OnEvent(FaultKind::kOpenRejected, 100));
  EXPECT_FALSE(injector.OnPageRead(FaultKind::kUncorrectableRead, 100));
}

// --- Device-level propagation -----------------------------------------

ssd::SsdConfig SmallConfig() {
  ssd::SsdConfig config = ssd::SsdConfig::PaperSmartSsd();
  config.geometry.blocks_per_chip = 32;
  return config;
}

class DeviceFaultTest : public ::testing::Test {
 protected:
  DeviceFaultTest() : device_(SmallConfig()) {}

  void Preload(std::uint64_t pages) {
    std::vector<std::byte> page(device_.page_size(), std::byte{7});
    SimTime t = 0;
    for (std::uint64_t lpn = 0; lpn < pages; ++lpn) {
      page[0] = static_cast<std::byte>(lpn);
      auto done =
          device_.WritePages(lpn, 1, std::span<const std::byte>(page), t);
      ASSERT_TRUE(done.ok());
      t = done.value();
    }
    device_.ResetTiming();
  }

  ssd::SsdDevice device_;
};

TEST_F(DeviceFaultTest, UncorrectableReadSurfacesAsCorruption) {
  Preload(16);
  device_.fault_injector().Load(
      OneFault(FaultKind::kUncorrectableRead, TriggerUnit::kPagesRead, 5));
  const std::uint64_t retries_before = device_.flash_array().read_retries();
  auto status = device_.ReadPages(0, 16, {}, 0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), StatusCode::kCorruption);
  // The drive burned its full retry ladder before giving up.
  EXPECT_GT(device_.flash_array().read_retries(), retries_before);
  EXPECT_EQ(device_.flash_array().uncorrectable_reads(), 1u);
}

TEST_F(DeviceFaultTest, HostTransferErrorSurfacesAsIoError) {
  Preload(16);
  device_.fault_injector().Load(
      OneFault(FaultKind::kTransferError, TriggerUnit::kBytesTransferred,
               4 * device_.page_size()));
  auto status = device_.ReadPages(0, 16, {}, 0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), StatusCode::kIoError);
}

TEST_F(DeviceFaultTest, CleanScheduleReadsFine) {
  Preload(16);
  device_.fault_injector().Load({});  // empty schedule never fires
  EXPECT_TRUE(device_.ReadPages(0, 16, {}, 0).ok());
}

// --- Smart session protocol under faults ------------------------------

// Minimal program: sums the first byte of every input page, emits one
// byte per page and an 8-byte total at Finish.
class ByteSumProgram final : public smart::InSsdProgram {
 public:
  explicit ByteSumProgram(std::uint64_t pages, std::uint64_t dram_bytes = 0)
      : pages_(pages), dram_bytes_(dram_bytes) {}

  std::string_view name() const override { return "byte_sum"; }

  Result<SimTime> Open(smart::DeviceServices&, SimTime ready) override {
    return ready;
  }

  std::vector<smart::LpnRange> InputExtents() const override {
    return {{0, pages_}};
  }

  Result<smart::ProgramCharge> ProcessPage(
      std::span<const std::byte> page, smart::ResultSink& sink) override {
    const std::byte b = page.empty() ? std::byte{0} : page[0];
    total_ += static_cast<std::uint8_t>(b);
    sink.Emit({&b, 1});
    return smart::ProgramCharge{.cycles = 500};
  }

  Result<smart::ProgramCharge> Finish(smart::ResultSink& sink) override {
    const std::byte* p = reinterpret_cast<const std::byte*>(&total_);
    sink.Emit({p, sizeof(total_)});
    return smart::ProgramCharge{.cycles = 10};
  }

  std::uint64_t DramBytesRequired() const override { return dram_bytes_; }

 private:
  std::uint64_t pages_;
  std::uint64_t dram_bytes_;
  std::uint64_t total_ = 0;
};

class SessionFaultTest : public DeviceFaultTest {
 protected:
  SessionFaultTest() : runtime_(&device_) {}

  // Runs a 32-page session and returns its result, asserting no device
  // DRAM leaked whatever the outcome.
  Result<smart::SessionStats> RunOnce(
      const smart::PollingPolicy& policy = {}) {
    const std::uint64_t dram_before = device_.device_dram_free();
    ByteSumProgram program(32, /*dram_bytes=*/1 << 20);
    auto result = runtime_.RunSession(program, policy, 0, &output_,
                                      &failed_at_);
    EXPECT_EQ(device_.device_dram_free(), dram_before)
        << "session leaked device DRAM";
    return result;
  }

  smart::SmartSsdRuntime runtime_;
  std::vector<std::byte> output_;
  SimTime failed_at_ = 0;
};

TEST_F(SessionFaultTest, OpenRejectedSurfacesResourceExhausted) {
  Preload(32);
  device_.fault_injector().Load(
      OneFault(FaultKind::kOpenRejected, TriggerUnit::kSimTime, 0));
  auto result = RunOnce();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(runtime_.sessions_failed(), 1u);
}

TEST_F(SessionFaultTest, DeviceResetAbortsWithRecoveryDelay) {
  Preload(32);
  device_.fault_injector().Load(
      OneFault(FaultKind::kDeviceReset, TriggerUnit::kPagesRead, 10));
  auto result = RunOnce();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  // The failure time includes the reset recovery window.
  EXPECT_GE(failed_at_, smart::kDeviceResetRecovery);
}

TEST_F(SessionFaultTest, UncorrectableReadPropagatesThroughSession) {
  Preload(32);
  device_.fault_injector().Load(
      OneFault(FaultKind::kUncorrectableRead, TriggerUnit::kPagesRead, 10));
  auto result = RunOnce();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(SessionFaultTest, ResultQueueOverflowSurfacesResourceExhausted) {
  Preload(32);
  device_.fault_injector().Load(OneFault(FaultKind::kResultQueueOverflow,
                                         TriggerUnit::kPagesRead, 10));
  auto result = RunOnce();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(SessionFaultTest, TransferErrorDuringGetSurfacesIoError) {
  Preload(32);
  device_.fault_injector().Load(
      OneFault(FaultKind::kTransferError, TriggerUnit::kBytesTransferred,
               1));
  auto result = RunOnce();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(SessionFaultTest, GetStallWithinBudgetRecovers) {
  Preload(32);
  device_.fault_injector().Load(OneFault(
      FaultKind::kGetStall, TriggerUnit::kSimTime, 0, /*count=*/2));
  auto result = RunOnce();  // default budget is 3
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->get_retries, 2u);
  // Output intact despite the stalls: one byte/page + 8-byte total.
  EXPECT_EQ(output_.size(), 32u + 8u);
  // Each timeout pushed the session end out.
  smart::PollingPolicy policy;
  EXPECT_GE(result->close_done, 2 * policy.get_timeout);
}

TEST_F(SessionFaultTest, GetStallBudgetExhaustedFails) {
  Preload(32);
  device_.fault_injector().Load(OneFault(
      FaultKind::kGetStall, TriggerUnit::kSimTime, 0, /*count=*/100));
  auto result = RunOnce();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_EQ(runtime_.sessions_failed(), 1u);
}

TEST_F(SessionFaultTest, SessionCountersTrackOutcomes) {
  Preload(32);
  EXPECT_TRUE(RunOnce().ok());
  device_.fault_injector().Load(
      OneFault(FaultKind::kOpenRejected, TriggerUnit::kSimTime, 0));
  EXPECT_FALSE(RunOnce().ok());
  EXPECT_EQ(runtime_.sessions_run(), 2u);
  EXPECT_EQ(runtime_.sessions_failed(), 1u);
}

TEST_F(SessionFaultTest, BackoffPollingPreservesResults) {
  Preload(32);
  std::vector<std::byte> fixed_output;
  {
    ByteSumProgram program(32);
    auto fixed = runtime_.RunSession(program, smart::PollingPolicy{}, 0,
                                     &fixed_output);
    ASSERT_TRUE(fixed.ok());
  }
  device_.ResetTiming();
  auto backoff = RunOnce(smart::PollingPolicy::WithBackoff());
  ASSERT_TRUE(backoff.ok());
  // Backoff trades GET round-trips for latency; bytes are identical.
  EXPECT_EQ(output_, fixed_output);
}

TEST(PollingPolicyTest, BackoffClampsAtMax) {
  const smart::PollingPolicy policy = smart::PollingPolicy::WithBackoff();
  SimDuration interval = policy.min_poll_interval;
  interval = policy.NextInterval(interval);
  EXPECT_EQ(interval, 2 * policy.min_poll_interval);
  for (int i = 0; i < 16; ++i) interval = policy.NextInterval(interval);
  EXPECT_EQ(interval, policy.max_poll_interval);
  // The shared default is fixed-interval: min == max.
  const smart::PollingPolicy fixed;
  EXPECT_EQ(fixed.NextInterval(fixed.min_poll_interval),
            fixed.min_poll_interval);
}

// --- Circuit breaker unit tests ---------------------------------------

TEST(CircuitBreakerTest, OpensAtThresholdAndProbesAfterCooldown) {
  engine::CircuitBreakerConfig config;
  config.failure_threshold = 2;
  config.cooldown = 1000;
  engine::DeviceCircuitBreaker breaker(config);
  breaker.RecordFailure(0);
  EXPECT_FALSE(breaker.ShouldBypass(0));
  breaker.RecordFailure(100);
  EXPECT_TRUE(breaker.open());
  EXPECT_TRUE(breaker.ShouldBypass(100));
  EXPECT_TRUE(breaker.ShouldBypass(1099));
  // Cooldown elapsed: the next query may probe the device.
  EXPECT_FALSE(breaker.ShouldBypass(1100));
  EXPECT_EQ(breaker.state(), engine::DeviceCircuitBreaker::State::kHalfOpen);
  // The probe failing re-opens immediately for another cooldown (the
  // breaker never closed, so this is still the same trip).
  breaker.RecordFailure(1100);
  EXPECT_TRUE(breaker.ShouldBypass(1101));
  // The next probe succeeding closes it for good.
  EXPECT_FALSE(breaker.ShouldBypass(2100));
  breaker.RecordSuccess(2150);
  EXPECT_FALSE(breaker.open());
  EXPECT_FALSE(breaker.ShouldBypass(99'999));
  EXPECT_EQ(breaker.total_failures(), 3u);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbe) {
  engine::CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown = 1000;
  engine::DeviceCircuitBreaker breaker(config);
  breaker.RecordFailure(0);
  EXPECT_TRUE(breaker.open());

  // Cooldown elapsed: the first caller is admitted as the probe...
  EXPECT_FALSE(breaker.ShouldBypass(1000));
  EXPECT_TRUE(breaker.probe_in_flight());
  // ...and every co-running query keeps bypassing while it is in
  // flight, instead of piling onto a possibly-dead device.
  EXPECT_TRUE(breaker.ShouldBypass(1001));
  EXPECT_TRUE(breaker.ShouldBypass(1500));

  // The probe succeeding closes the breaker for everyone.
  breaker.RecordSuccess(1600);
  EXPECT_EQ(breaker.state(), engine::DeviceCircuitBreaker::State::kClosed);
  EXPECT_FALSE(breaker.ShouldBypass(1601));
}

TEST(CircuitBreakerTest, SilentProbeIsReplacedAfterACooldown) {
  engine::CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown = 1000;
  engine::DeviceCircuitBreaker breaker(config);
  breaker.RecordFailure(0);
  EXPECT_FALSE(breaker.ShouldBypass(1000));  // probe admitted
  EXPECT_TRUE(breaker.ShouldBypass(1999));   // still in flight: bypass
  // The probe never reported an outcome (e.g. its query died of a
  // non-device error); after a full further cooldown the breaker stops
  // waiting for it and admits a replacement.
  EXPECT_FALSE(breaker.ShouldBypass(2000));
  EXPECT_TRUE(breaker.probe_in_flight());
  breaker.RecordFailure(2100);
  EXPECT_EQ(breaker.state(), engine::DeviceCircuitBreaker::State::kOpen);
  // A failed probe does not count as a fresh trip.
  EXPECT_EQ(breaker.trips(), 1u);
}

// --- Engine-level degraded execution ----------------------------------

constexpr double kSf = 0.002;  // 12k LINEITEM rows

class DegradedExecutionTest : public ::testing::Test {
 protected:
  DegradedExecutionTest() : db_(engine::DatabaseOptions::PaperSmartSsd()) {
    SMARTSSD_CHECK(tpch::LoadLineitem(db_, "lineitem", kSf,
                                      storage::PageLayout::kPax)
                       .ok());
    db_.ResetForColdRun();
  }

  Result<engine::QueryResult> RunSmart(const exec::QuerySpec& spec) {
    db_.ResetForColdRun();
    engine::QueryExecutor executor(&db_);
    return executor.Execute(spec, engine::ExecutionTarget::kSmartSsd);
  }

  engine::Database db_;
};

TEST_F(DegradedExecutionTest, ResetMidQ6FallsBackByteIdentical) {
  const exec::QuerySpec spec = tpch::Q6Spec("lineitem");
  auto clean = RunSmart(spec);
  ASSERT_TRUE(clean.ok());
  ASSERT_FALSE(clean->stats.fell_back);

  db_.ssd()->fault_injector().Load(
      OneFault(FaultKind::kDeviceReset, TriggerUnit::kPagesRead, 40));
  auto degraded = RunSmart(spec);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->stats.fell_back);
  EXPECT_EQ(degraded->stats.target, engine::ExecutionTarget::kHost);
  EXPECT_EQ(degraded->stats.device_attempts, 1u);
  EXPECT_NE(degraded->stats.fallback_reason.find("ABORTED"),
            std::string::npos);
  // The defining property: byte-identical results.
  EXPECT_EQ(degraded->rows, clean->rows);
  EXPECT_EQ(degraded->agg_values, clean->agg_values);
  // The wasted device attempt shows up in elapsed time.
  EXPECT_GT(degraded->stats.elapsed(), clean->stats.elapsed());
  EXPECT_EQ(db_.circuit_breaker().total_failures(), 1u);
}

TEST_F(DegradedExecutionTest, EveryFaultKindFallsBackByteIdentical) {
  const exec::QuerySpec spec = tpch::Q6Spec("lineitem");
  auto clean = RunSmart(spec);
  ASSERT_TRUE(clean.ok());

  struct Case {
    const char* label;
    FaultSchedule schedule;
  };
  const Case cases[] = {
      {"uncorrectable read",
       OneFault(FaultKind::kUncorrectableRead, TriggerUnit::kPagesRead,
                30)},
      {"device reset",
       OneFault(FaultKind::kDeviceReset, TriggerUnit::kPagesRead, 30)},
      {"open rejected",
       OneFault(FaultKind::kOpenRejected, TriggerUnit::kSimTime, 0)},
      {"get stall beyond budget",
       OneFault(FaultKind::kGetStall, TriggerUnit::kSimTime, 0,
                /*count=*/100)},
      {"result queue overflow",
       OneFault(FaultKind::kResultQueueOverflow, TriggerUnit::kPagesRead,
                30)},
      {"transfer error",
       OneFault(FaultKind::kTransferError, TriggerUnit::kBytesTransferred,
                1)},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    db_.ssd()->fault_injector().Load(c.schedule);
    auto degraded = RunSmart(spec);
    ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
    EXPECT_TRUE(degraded->stats.fell_back);
    EXPECT_EQ(degraded->rows, clean->rows);
    EXPECT_EQ(degraded->agg_values, clean->agg_values);
    db_.ssd()->fault_injector().Clear();
  }
}

TEST_F(DegradedExecutionTest, SemanticRefusalDoesNotFallBack) {
  // Dirty pages are a coherence refusal, not a device fault: the caller
  // asked for pushdown specifically and must see the refusal.
  db_.ResetForColdRun();
  auto info = db_.catalog().GetTable("lineitem");
  ASSERT_TRUE(info.ok());
  std::vector<std::byte> page(db_.device().page_size(), std::byte{0});
  ASSERT_TRUE(
      db_.buffer_pool().WritePage((*info)->first_lpn, page, 0).ok());
  engine::QueryExecutor executor(&db_);
  auto result = executor.Execute(tpch::Q6Spec("lineitem"),
                                 engine::ExecutionTarget::kSmartSsd);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db_.circuit_breaker().total_failures(), 0u);
}

TEST_F(DegradedExecutionTest, BreakerOpensThenPlannerRoutesAround) {
  const exec::QuerySpec spec = tpch::Q6Spec("lineitem");
  const FaultSchedule reset_schedule =
      OneFault(FaultKind::kDeviceReset, TriggerUnit::kPagesRead, 20);
  const std::uint32_t threshold = db_.options().breaker.failure_threshold;
  for (std::uint32_t i = 0; i < threshold; ++i) {
    db_.ssd()->fault_injector().Load(reset_schedule);
    auto degraded = RunSmart(spec);
    ASSERT_TRUE(degraded.ok());
    ASSERT_TRUE(degraded->stats.fell_back);
  }
  EXPECT_TRUE(db_.circuit_breaker().open());
  EXPECT_EQ(db_.circuit_breaker().trips(), 1u);

  // The fallback runs populated the buffer pool; empty it so the
  // planner's cache rule does not mask the breaker's decision.
  db_.ResetForColdRun();
  auto bound = exec::Bind(spec, db_.catalog());
  ASSERT_TRUE(bound.ok());
  engine::PushdownPlanner planner(&db_);

  // During cool-down the planner refuses the device outright.
  auto during = planner.Decide(*bound, {}, /*now=*/0);
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(during->target, engine::ExecutionTarget::kHost);
  EXPECT_NE(during->reason.find("circuit breaker"), std::string::npos);

  // Past the cool-down it probes the device again; with faults cleared
  // the probe succeeds and the breaker closes.
  db_.ssd()->fault_injector().Clear();
  const SimTime later = 1000 * kSecond;
  auto after = planner.Decide(*bound, {}, later);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->target, engine::ExecutionTarget::kSmartSsd);
  auto probe = RunSmart(spec);
  ASSERT_TRUE(probe.ok());
  EXPECT_FALSE(probe->stats.fell_back);
  EXPECT_FALSE(db_.circuit_breaker().open());
}

TEST_F(DegradedExecutionTest, FaultsDisabledIdenticalTimeline) {
  // With nothing injected the fault machinery must not perturb timing:
  // two clean runs (and one with an empty schedule loaded) agree to the
  // nanosecond.
  const exec::QuerySpec spec = tpch::Q6Spec("lineitem");
  auto a = RunSmart(spec);
  auto b = RunSmart(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.end, b->stats.end);
  db_.ssd()->fault_injector().Load({});
  auto c = RunSmart(spec);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->stats.end, c->stats.end);
  EXPECT_EQ(a->rows, c->rows);
}

}  // namespace
}  // namespace smartssd
