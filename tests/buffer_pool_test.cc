#include <gtest/gtest.h>

#include <vector>

#include "engine/buffer_pool.h"
#include "ssd/ssd_device.h"

namespace smartssd::engine {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : device_(MakeConfig()), pool_(&device_, 64) {
    Preload(512);
  }

  static ssd::SsdConfig MakeConfig() {
    ssd::SsdConfig config = ssd::SsdConfig::PaperSmartSsd();
    config.geometry.blocks_per_chip = 32;
    return config;
  }

  void Preload(std::uint64_t pages) {
    std::vector<std::byte> page(device_.page_size());
    SimTime t = 0;
    for (std::uint64_t lpn = 0; lpn < pages; ++lpn) {
      page[0] = static_cast<std::byte>(lpn & 0xFF);
      auto done = device_.WritePages(lpn, 1, page, t);
      ASSERT_TRUE(done.ok());
      t = done.value();
    }
    device_.ResetTiming();
  }

  ssd::SsdDevice device_;
  BufferPool pool_;
};

TEST_F(BufferPoolTest, MissThenHit) {
  auto first = pool_.GetPage(3, 0, 512);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->first[0], std::byte{3});
  EXPECT_EQ(pool_.misses(), 1u);

  auto second = pool_.GetPage(3, first->second, 512);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(pool_.hits(), 1u);
  // Hit costs no further I/O time.
  EXPECT_EQ(second->second, first->second);
}

TEST_F(BufferPoolTest, ReadaheadCachesFollowingPages) {
  ASSERT_TRUE(pool_.GetPage(0, 0, 512).ok());
  for (std::uint64_t lpn = 1; lpn < BufferPool::kReadAheadPages; ++lpn) {
    EXPECT_TRUE(pool_.IsCached(lpn)) << lpn;
  }
  EXPECT_FALSE(pool_.IsCached(BufferPool::kReadAheadPages));
}

TEST_F(BufferPoolTest, ReadaheadHitsWaitForBatchIo) {
  auto first = pool_.GetPage(0, 0, 512);
  ASSERT_TRUE(first.ok());
  // Page 31 was installed by the same batch; consuming it "now" (t=0)
  // must still wait for the batch completion.
  auto hit = pool_.GetPage(31, 0, 512);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->second, first->second);
}

TEST_F(BufferPoolTest, ReadaheadRespectsLimit) {
  // Scan bounded at lpn 5: a miss on 4 must not read past the limit.
  ASSERT_TRUE(pool_.GetPage(4, 0, 5).ok());
  EXPECT_TRUE(pool_.IsCached(4));
  EXPECT_FALSE(pool_.IsCached(5));
}

TEST_F(BufferPoolTest, EvictionKeepsCapacityBound) {
  // Touch far more pages than capacity.
  SimTime t = 0;
  for (std::uint64_t lpn = 0; lpn < 256; ++lpn) {
    auto page = pool_.GetPage(lpn, t, 512);
    ASSERT_TRUE(page.ok());
    t = page->second;
  }
  std::uint64_t cached = pool_.CachedInRange(0, 512);
  EXPECT_LE(cached, pool_.capacity_pages());
  EXPECT_GT(cached, 0u);
  // The most recent pages survive.
  EXPECT_TRUE(pool_.IsCached(255));
}

TEST_F(BufferPoolTest, DirtyTrackingAndFlush) {
  std::vector<std::byte> page(device_.page_size(), std::byte{0xCD});
  ASSERT_TRUE(pool_.WritePage(9, page, 0).ok());
  EXPECT_TRUE(pool_.IsDirty(9));
  EXPECT_TRUE(pool_.HasDirtyInRange(0, 512));
  EXPECT_FALSE(pool_.HasDirtyInRange(10, 100));

  ASSERT_TRUE(pool_.FlushAll(0).ok());
  EXPECT_FALSE(pool_.IsDirty(9));

  // The device saw the new bytes.
  std::vector<std::byte> out(device_.page_size());
  ASSERT_TRUE(device_.ReadPages(9, 1, out, 0).ok());
  EXPECT_EQ(out[0], std::byte{0xCD});
}

TEST_F(BufferPoolTest, DirtyPageSurvivesEvictionViaWriteback) {
  std::vector<std::byte> page(device_.page_size(), std::byte{0xEE});
  ASSERT_TRUE(pool_.WritePage(2, page, 0).ok());
  // Force eviction pressure.
  SimTime t = 0;
  for (std::uint64_t lpn = 100; lpn < 100 + 128; ++lpn) {
    auto p = pool_.GetPage(lpn, t, 512);
    ASSERT_TRUE(p.ok());
    t = p->second;
  }
  // Whether or not 2 is still resident, its contents are durable.
  ASSERT_TRUE(pool_.FlushAll(t).ok());
  std::vector<std::byte> out(device_.page_size());
  ASSERT_TRUE(device_.ReadPages(2, 1, out, t).ok());
  EXPECT_EQ(out[0], std::byte{0xEE});
}

TEST_F(BufferPoolTest, ClearEmptiesCleanPool) {
  ASSERT_TRUE(pool_.GetPage(0, 0, 512).ok());
  EXPECT_GT(pool_.CachedInRange(0, 512), 0u);
  pool_.Clear();
  EXPECT_EQ(pool_.CachedInRange(0, 512), 0u);
  EXPECT_FALSE(pool_.IsCached(0));
}

TEST_F(BufferPoolTest, WrongSizeWriteRejected) {
  std::vector<std::byte> tiny(3);
  EXPECT_FALSE(pool_.WritePage(0, tiny, 0).ok());
}

TEST_F(BufferPoolTest, SequentialScanIsMostlyHits) {
  SimTime t = 0;
  for (std::uint64_t lpn = 0; lpn < 128; ++lpn) {
    auto page = pool_.GetPage(lpn, t, 128);
    ASSERT_TRUE(page.ok());
    t = page->second;
  }
  // One miss per 32-page readahead batch.
  EXPECT_EQ(pool_.misses(), 128u / BufferPool::kReadAheadPages);
  EXPECT_EQ(pool_.hits(), 128u - pool_.misses());
}

}  // namespace
}  // namespace smartssd::engine
