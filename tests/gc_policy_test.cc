// Garbage-collection policy tests: victim selection semantics for the
// greedy and cost-benefit policies, data integrity under either policy,
// wear-aware allocation bounds, free-block/over-provisioning accounting,
// GC observability (metrics), and fault recovery mid-relocation.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "flash/flash_array.h"
#include "ftl/ftl.h"
#include "ftl/gc_policy.h"
#include "obs/metrics.h"
#include "sim/fault_injector.h"

namespace smartssd::ftl {
namespace {

flash::Geometry TinyGeometry() {
  flash::Geometry g;
  g.channels = 2;
  g.chips_per_channel = 2;
  g.blocks_per_chip = 8;
  g.pages_per_block = 4;
  g.page_size_bytes = 256;
  return g;
}

std::vector<std::byte> Pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::byte>((seed * 31 + i) & 0xFF);
  }
  return data;
}

// --- Victim selection (pure policy, no device) -------------------------

TEST(GcPolicySelection, GreedyPicksFewestValidPages) {
  const auto policy = MakeGcPolicy(GcPolicyKind::kGreedy);
  const GcBlockView candidates[] = {
      {.block = 0, .valid_pages = 3, .erase_count = 0, .age = 500},
      {.block = 1, .valid_pages = 1, .erase_count = 9, .age = 0},
      {.block = 2, .valid_pages = 2, .erase_count = 0, .age = 900},
  };
  EXPECT_EQ(policy->SelectVictim(candidates, 8), 1u);
}

TEST(GcPolicySelection, GreedyTieBreaksByEraseThenBlock) {
  const auto policy = MakeGcPolicy(GcPolicyKind::kGreedy);
  const GcBlockView by_erase[] = {
      {.block = 0, .valid_pages = 2, .erase_count = 5, .age = 0},
      {.block = 1, .valid_pages = 2, .erase_count = 3, .age = 0},
  };
  EXPECT_EQ(policy->SelectVictim(by_erase, 8), 1u);
  const GcBlockView by_block[] = {
      {.block = 4, .valid_pages = 2, .erase_count = 3, .age = 0},
      {.block = 1, .valid_pages = 2, .erase_count = 3, .age = 0},
  };
  EXPECT_EQ(policy->SelectVictim(by_block, 8), 1u);
}

TEST(GcPolicySelection, CostBenefitPrefersColdBlockDespiteMoreValidPages) {
  // Hot block 0 has fewer valid pages (greedy's pick), but cold block 1
  // has not been invalidated for ages: the LFS benefit/cost rule spends
  // extra relocations now to retire it and stop re-collecting the hot
  // block.
  const auto greedy = MakeGcPolicy(GcPolicyKind::kGreedy);
  const auto cb = MakeGcPolicy(GcPolicyKind::kCostBenefit);
  const GcBlockView candidates[] = {
      {.block = 0, .valid_pages = 2, .erase_count = 0, .age = 0},
      {.block = 1, .valid_pages = 4, .erase_count = 0, .age = 100},
  };
  EXPECT_EQ(greedy->SelectVictim(candidates, 8), 0u);
  EXPECT_EQ(cb->SelectVictim(candidates, 8), 1u);
}

TEST(GcPolicySelection, EmptyCandidateListYieldsNoVictim) {
  for (const GcPolicyKind kind :
       {GcPolicyKind::kGreedy, GcPolicyKind::kCostBenefit}) {
    const auto policy = MakeGcPolicy(kind);
    EXPECT_EQ(policy->SelectVictim({}, 8), GcPolicy::kNoVictim);
  }
}

TEST(GcPolicySelection, NamesRoundTrip) {
  EXPECT_EQ(GcPolicyName(GcPolicyKind::kGreedy), "greedy");
  EXPECT_EQ(GcPolicyName(GcPolicyKind::kCostBenefit), "cost-benefit");
  EXPECT_EQ(MakeGcPolicy(GcPolicyKind::kCostBenefit)->name(),
            "cost-benefit");
}

// --- Full-device behavior ---------------------------------------------

FtlConfig ConfigFor(GcPolicyKind kind) {
  FtlConfig config;
  config.gc_policy = kind;
  return config;
}

// Same churn workload under either policy: policies choose different
// victims (different relocation counts are fine) but the data a reader
// sees must be byte-identical — GC must never be host-observable.
TEST(GcPolicyDevice, PoliciesAreByteIdenticalUnderChurn) {
  flash::FlashArray array_greedy(TinyGeometry(), flash::Timings{});
  flash::FlashArray array_cb(TinyGeometry(), flash::Timings{});
  Ftl greedy(&array_greedy, ConfigFor(GcPolicyKind::kGreedy));
  Ftl cb(&array_cb, ConfigFor(GcPolicyKind::kCostBenefit));

  // Hot/cold mix at full capacity: every logical page written once, then
  // LPNs 0-7 churn constantly. Cold pages share blocks with hot ones, so
  // victims carry live data and GC actually relocates.
  const std::uint64_t cold = greedy.logical_pages();
  for (std::uint64_t lpn = 0; lpn < cold; ++lpn) {
    const auto data = Pattern(256, static_cast<std::uint8_t>(lpn));
    ASSERT_TRUE(greedy.Write(lpn, data, 0).ok());
    ASSERT_TRUE(cb.Write(lpn, data, 0).ok());
  }
  smartssd::Random rng(7);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t lpn = rng.Uniform(8);
    const auto data = Pattern(256, static_cast<std::uint8_t>(i));
    ASSERT_TRUE(greedy.Write(lpn, data, 0).ok());
    ASSERT_TRUE(cb.Write(lpn, data, 0).ok());
  }
  ASSERT_GT(greedy.stats().gc_runs, 0u);
  ASSERT_GT(cb.stats().gc_runs, 0u);
  ASSERT_GT(greedy.stats().gc_relocations, 0u);
  ASSERT_GT(cb.stats().gc_relocations, 0u);

  std::vector<std::byte> a(256), b(256);
  for (std::uint64_t lpn = 0; lpn < cold; ++lpn) {
    ASSERT_TRUE(greedy.Read(lpn, a, 0).ok());
    ASSERT_TRUE(cb.Read(lpn, b, 0).ok());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), 256), 0) << "lpn " << lpn;
  }
}

TEST(GcPolicyDevice, WearAwareAllocationBoundsEraseSpread) {
  for (const GcPolicyKind kind :
       {GcPolicyKind::kGreedy, GcPolicyKind::kCostBenefit}) {
    flash::FlashArray array(TinyGeometry(), flash::Timings{});
    Ftl ftl(&array, ConfigFor(kind));
    // Heavy uniform churn over a working set that forces constant GC.
    smartssd::Random rng(13);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t lpn = rng.Uniform(24);
      ASSERT_TRUE(
          ftl.Write(lpn, Pattern(256, static_cast<std::uint8_t>(i)), 0)
              .ok());
    }
    ASSERT_GT(ftl.max_erase_count(), 0u) << GcPolicyName(kind);
    // The least-erased-free-block allocator keeps the spread within a
    // small constant band even after thousands of erases.
    EXPECT_LE(ftl.max_erase_count() - ftl.min_erase_count(), 8u)
        << GcPolicyName(kind) << ": max " << ftl.max_erase_count()
        << " min " << ftl.min_erase_count();
  }
}

TEST(GcPolicyDevice, FreeBlockAccountingAndGauges) {
  flash::FlashArray array(TinyGeometry(), flash::Timings{});
  Ftl ftl(&array, ConfigFor(GcPolicyKind::kCostBenefit));
  obs::MetricsRegistry metrics;
  ftl.AttachMetrics(&metrics);

  // All 32 blocks start free; the gauge mirrors the internal count.
  EXPECT_EQ(ftl.free_blocks(), 32u);
  EXPECT_EQ(metrics.gauge("ftl.free_blocks")->value(), 32);
  EXPECT_EQ(metrics.gauge("ftl.write_amplification")->value(), 1000);

  // Fill to logical capacity and churn: GC must keep every chip's free
  // list above zero (the low watermark refills it) and the metrics must
  // track the stats the FTL reports.
  const std::uint64_t n = ftl.logical_pages();
  for (std::uint64_t round = 0; round < 3; ++round) {
    for (std::uint64_t lpn = 0; lpn < n; ++lpn) {
      ASSERT_TRUE(
          ftl.Write(lpn, Pattern(256, static_cast<std::uint8_t>(lpn + round)),
                    0)
              .ok());
    }
  }
  EXPECT_GT(ftl.stats().gc_runs, 0u);
  EXPECT_GT(ftl.free_blocks(), 0u);
  EXPECT_EQ(metrics.gauge("ftl.free_blocks")->value(),
            static_cast<std::int64_t>(ftl.free_blocks()));
  EXPECT_EQ(metrics.counter("ftl.gc_runs")->value(), ftl.stats().gc_runs);
  EXPECT_EQ(metrics.counter("ftl.gc_relocations")->value(),
            ftl.stats().gc_relocations);
  EXPECT_EQ(metrics.histogram("ftl.gc_pause_ns")->count(),
            ftl.stats().gc_runs);
  EXPECT_EQ(metrics.gauge("ftl.write_amplification")->value(),
            static_cast<std::int64_t>(
                ftl.stats().write_amplification() * 1000.0));
  EXPECT_GE(metrics.gauge("ftl.write_amplification")->value(), 1000);
}

// An uncorrectable read during GC relocation must surface as a Status on
// the host write that triggered the collection — and the GcScope guard
// must leave the FTL able to collect (and write) again afterwards.
TEST(GcPolicyDevice, FaultDuringRelocationSurfacesAndRecovers) {
  flash::FlashArray array(TinyGeometry(), flash::Timings{});
  Ftl ftl(&array, ConfigFor(GcPolicyKind::kGreedy));

  // Fill to capacity so cold data shares blocks with hot churn: GC
  // victims then hold live pages, so collections issue relocation
  // reads. Arm a fault on the next flash page read before each write —
  // the only reads the FTL issues are relocation reads, so the fault
  // fires inside MaybeCollect.
  for (std::uint64_t lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    ASSERT_TRUE(
        ftl.Write(lpn, Pattern(256, static_cast<std::uint8_t>(lpn)), 0)
            .ok());
  }
  sim::FaultInjector injector;
  array.set_fault_injector(&injector);
  smartssd::Random rng(3);
  bool faulted = false;
  for (int i = 0; i < 2000 && !faulted; ++i) {
    sim::FaultSchedule schedule;
    schedule.faults.push_back(sim::FaultSpec{
        .kind = sim::FaultKind::kUncorrectableRead,
        .trigger = {.unit = sim::TriggerUnit::kPagesRead, .at = 0},
        .count = 1});
    injector.Load(schedule);
    const std::uint64_t lpn = rng.Uniform(8);
    const auto result =
        ftl.Write(lpn, Pattern(256, static_cast<std::uint8_t>(i)), 0);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kCorruption)
          << result.status().ToString();
      faulted = true;
    }
  }
  ASSERT_TRUE(faulted) << "churn never reached a GC relocation read";

  // Disarm and keep writing: the in-GC guard was released, collection
  // resumes, and every page still round-trips.
  injector.Clear();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(ftl.Write(rng.Uniform(16),
                          Pattern(256, static_cast<std::uint8_t>(i)), 0)
                    .ok())
        << "write " << i << " after fault recovery";
  }
  const auto final_data = Pattern(256, 42);
  ASSERT_TRUE(ftl.Write(5, final_data, 0).ok());
  std::vector<std::byte> out(256);
  ASSERT_TRUE(ftl.Read(5, out, 0).ok());
  EXPECT_EQ(std::memcmp(out.data(), final_data.data(), 256), 0);
}

}  // namespace
}  // namespace smartssd::ftl
