// Differential correctness fuzz: seeded random query specs run through
// every execution configuration — host scan, Smart SSD pushdown over
// NSM and PAX (with and without zone maps), parallel databases with
// 1/2/4 workers, fault-injected pushdown with degraded fallback,
// memory-constrained hybrid joins under 2-pass and 3-pass spill budgets
// (results AND OpCounts against the unconstrained reference), and
// fleet scatter-gather (uniform 3-device and heterogeneous 2-device
// shapes, with rotating single-device faults and a breaker-open
// re-dispatch variant) — asserting byte-identical results plus
// structural invariants. A
// failure prints the generated spec, a minimized spec, and the one-line
// check::ReplaySpec(...) reproducer; pin a found bug by adding that
// line as a regression test below.
//
// Scale: 25 seed groups x specs-per-seed (default 20) = 500 specs.
// Override the per-seed count with SMARTSSD_DIFF_SPECS_PER_SEED.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "check/differential.h"
#include "check/spec_gen.h"
#include "check/spec_print.h"
#include "check/table_gen.h"
#include "exec/query_spec.h"
#include "expr/kernel_isa.h"

namespace smartssd {
namespace {

check::HarnessOptions FuzzOptions() {
  check::HarnessOptions options;
  if (const char* env = std::getenv("SMARTSSD_DIFF_SPECS_PER_SEED")) {
    const int n = std::atoi(env);
    if (n > 0) options.specs_per_seed = n;
  }
  return options;
}

class DifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzz, AllConfigurationsAgree) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const check::HarnessReport report =
      check::RunDifferentialSeed(seed, FuzzOptions());
  EXPECT_EQ(report.specs_run, FuzzOptions().specs_per_seed);
  EXPECT_GT(report.executions, report.specs_run);  // matrix actually ran
  // Faulted configurations must have actually exercised the degraded
  // path, not silently no-oped. (kGetStall recovers in-session, so not
  // every faulted run falls back — but across a seed group some must.)
  EXPECT_GT(report.fallbacks, 0) << report.Summary();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz, ::testing::Range(0, 25));

// --- Replay entry point -------------------------------------------------
// A fuzz failure prints "check::ReplaySpec(seed, index)". Dropping that
// line here pins the shrunken case forever. The two below double as
// living documentation of the workflow (they pass today).

TEST(DifferentialReplay, SingleSpecReplaysDeterministically) {
  const check::HarnessReport first = check::ReplaySpec(3, 7);
  const check::HarnessReport second = check::ReplaySpec(3, 7);
  EXPECT_TRUE(first.ok()) << first.Summary();
  EXPECT_EQ(first.specs_run, 1);
  EXPECT_EQ(first.executions, second.executions);
  EXPECT_EQ(first.failures.size(), second.failures.size());
}

TEST(DifferentialReplay, GeneratorIsPurePerIndex) {
  // Spec i must not depend on specs 0..i-1 — that is what makes a
  // single-index replay equivalent to the failing run inside the sweep.
  check::SpecGenConfig gen;
  gen.tables.seed = 11;
  const exec::QuerySpec direct = check::GenerateSpec(11, 5, gen);
  check::GenerateSpec(11, 0, gen);  // unrelated draws change nothing
  check::GenerateSpec(11, 1, gen);
  const exec::QuerySpec again = check::GenerateSpec(11, 5, gen);
  EXPECT_EQ(check::SpecToString(direct), check::SpecToString(again));
}

TEST(DifferentialReplay, FaultsOffStillCoversTheMatrix) {
  check::HarnessOptions options;
  options.with_faults = false;
  options.specs_per_seed = 2;
  const check::HarnessReport report = check::RunDifferentialSeed(1, options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  // ref (scalar + vectorized twin, plus a scalar-ISA re-run of the twin
  // on machines whose best kernel ISA uses SIMD lanes) + 8 single
  // configs (incl. the two hybrid-join spill budgets and the split/
  // adaptive placement-policy configs) + 3 parallel configs + 2 fleet
  // configs + 4 write-path GC configs per spec.
  const int isa_axis =
      expr::DetectKernelIsa() != expr::KernelIsa::kScalarIsa ? 1 : 0;
  EXPECT_EQ(report.executions, 2 * (19 + isa_axis));
}

TEST(DifferentialReplay, WritePhaseOffShrinksTheMatrix) {
  check::HarnessOptions options;
  options.with_faults = false;
  options.with_write_phase = false;
  options.specs_per_seed = 2;
  const check::HarnessReport report = check::RunDifferentialSeed(1, options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  const int isa_axis =
      expr::DetectKernelIsa() != expr::KernelIsa::kScalarIsa ? 1 : 0;
  EXPECT_EQ(report.executions, 2 * (15 + isa_axis));
}

}  // namespace
}  // namespace smartssd
