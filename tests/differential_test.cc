// Differential property testing: for randomly generated query specs
// over randomly generated tables, host execution and in-SSD pushdown
// must produce byte-identical results, and a third independent oracle
// (direct evaluation over the raw pages) must agree. Seeds are test
// parameters so failures name their reproducer.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/synthetic.h"

namespace smartssd {
namespace {

namespace ex = ::smartssd::expr;
using engine::Database;
using engine::DatabaseOptions;
using engine::ExecutionTarget;
using engine::QueryExecutor;

constexpr int kColumns = 12;
constexpr std::uint64_t kRows = 8'000;

// Builds a random predicate over integer columns: a conjunction or
// disjunction of 1..4 comparisons, sometimes negated.
ex::ExprPtr RandomPredicate(Random& rng) {
  const int terms = static_cast<int>(rng.Uniform(4)) + 1;
  std::vector<ex::ExprPtr> children;
  for (int i = 0; i < terms; ++i) {
    const int col = static_cast<int>(rng.Uniform(kColumns));
    const auto op = static_cast<ex::CompareOp>(rng.Uniform(6));
    // Literals span the columns' domains (Col_1 is row ids, Col_3 is
    // the selectivity domain, the rest are < 2^30).
    const std::int64_t literal =
        col == 0   ? static_cast<std::int64_t>(rng.Uniform(kRows + 1))
        : col == 2 ? tpch::SelectivityThreshold(rng.NextDouble())
                   : static_cast<std::int64_t>(rng.Uniform(1u << 30));
    ex::ExprPtr cmp = ex::Compare(op, ex::Col(col), ex::Lit(literal));
    if (rng.Bernoulli(0.2)) cmp = ex::Not(std::move(cmp));
    children.push_back(std::move(cmp));
  }
  if (children.size() == 1) return std::move(children[0]);
  return rng.Bernoulli(0.7) ? ex::And(std::move(children))
                            : ex::Or(std::move(children));
}

// Builds a random query: predicate plus either aggregates (possibly
// grouped is covered elsewhere; here scalar), a projection, or top-N.
exec::QuerySpec RandomSpec(Random& rng) {
  exec::QuerySpec spec;
  spec.name = "fuzz";
  spec.table = "T";
  if (rng.Bernoulli(0.8)) spec.predicate = RandomPredicate(rng);
  switch (rng.Uniform(3)) {
    case 0: {  // scalar aggregates
      const int n = static_cast<int>(rng.Uniform(3)) + 1;
      for (int i = 0; i < n; ++i) {
        const auto fn = static_cast<exec::AggSpec::Fn>(rng.Uniform(4));
        exec::AggSpec agg;
        agg.fn = fn;
        agg.name = "a" + std::to_string(i);
        if (fn != exec::AggSpec::Fn::kCount || rng.Bernoulli(0.5)) {
          const int col = static_cast<int>(rng.Uniform(kColumns));
          agg.input = rng.Bernoulli(0.5)
                          ? ex::Col(col)
                          : ex::Add(ex::Col(col),
                                    ex::Lit(static_cast<std::int64_t>(
                                        rng.Uniform(100))));
        }
        if (agg.input == nullptr && fn != exec::AggSpec::Fn::kCount) {
          agg.input = ex::Col(0);
        }
        spec.aggregates.push_back(std::move(agg));
      }
      break;
    }
    case 1: {  // projection
      const int n = static_cast<int>(rng.Uniform(4)) + 1;
      for (int i = 0; i < n; ++i) {
        spec.projection.push_back(static_cast<int>(rng.Uniform(kColumns)));
      }
      break;
    }
    default: {  // top-N
      spec.projection = {0, 1, 2};
      spec.top_n = exec::TopNSpec{
          .order_col = 0,
          .descending = rng.Bernoulli(0.5),
          .limit = static_cast<std::uint32_t>(rng.Uniform(200)) + 1};
      break;
    }
  }
  return spec;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, HostAndDeviceAgreeOnRandomQueries) {
  Random rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);

  // Fresh random table per seed (layout also randomized).
  const storage::PageLayout layout = rng.Bernoulli(0.5)
                                         ? storage::PageLayout::kNsm
                                         : storage::PageLayout::kPax;
  Database db(DatabaseOptions::PaperSmartSsd());
  ASSERT_TRUE(tpch::LoadSyntheticS(db, "T", kColumns, kRows, 100, layout,
                                   /*seed=*/rng.NextUint64())
                  .ok());
  // Half the seeds also exercise zone-map pruning.
  if (rng.Bernoulli(0.5)) {
    ASSERT_TRUE(db.BuildZoneMap("T").ok());
  }
  db.ResetForColdRun();

  QueryExecutor executor(&db);
  for (int q = 0; q < 8; ++q) {
    const exec::QuerySpec spec = RandomSpec(rng);
    db.ResetForColdRun();
    auto host = executor.Execute(spec, ExecutionTarget::kHost);
    ASSERT_TRUE(host.ok()) << host.status().ToString();
    db.ResetForColdRun();
    auto smart = executor.Execute(spec, ExecutionTarget::kSmartSsd);
    ASSERT_TRUE(smart.ok()) << smart.status().ToString();

    EXPECT_EQ(host->rows, smart->rows)
        << "seed " << GetParam() << " query " << q << ": "
        << exec::PlanToString(
               exec::Bind(spec, db.catalog()).value());
    EXPECT_EQ(host->agg_values, smart->agg_values);
    EXPECT_EQ(host->row_count(), smart->row_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace smartssd
