// Differential tests for the vectorized batch kernel: every query shape
// runs through both the scalar (interpreted, tuple-at-a-time) kernel
// and the vectorized (selection-vector) kernel over identical pages,
// and the outputs must match byte for byte — rows, aggregates, AND
// operation counts, since the counts drive the virtual-time cost model.
// Edge cases that selection-vector code tends to get wrong are covered
// explicitly: empty pages, all-pass/all-fail predicates, a single-row
// batch, and INT64_MIN/MAX boundary literals.

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <optional>
#include <vector>

#include "exec/page_processor.h"
#include "exec/query_spec.h"
#include "storage/catalog.h"
#include "storage/nsm_page.h"
#include "storage/pax_page.h"
#include "storage/tuple.h"

namespace smartssd::exec {
namespace {

namespace ex = ::smartssd::expr;
using storage::Column;
using storage::PageLayout;
using storage::Schema;

// In-memory table: page images + catalog entry (no device).
struct MemTable {
  storage::TableInfo info;
  std::vector<std::vector<std::byte>> pages;
};

Schema OuterSchema() {
  auto schema = Schema::Create({Column::Int32("k"), Column::Int32("fk"),
                                Column::Int32("v"),
                                Column::FixedChar("tag", 4)});
  SMARTSSD_CHECK(schema.ok());
  return std::move(schema).value();
}

Schema InnerSchema() {
  auto schema =
      Schema::Create({Column::Int32("pk"), Column::Int64("payload")});
  SMARTSSD_CHECK(schema.ok());
  return std::move(schema).value();
}

MemTable BuildOuter(PageLayout layout, int rows) {
  const Schema schema = OuterSchema();
  MemTable table;
  std::vector<std::byte> tuple(schema.tuple_size());
  storage::NsmPageBuilder nsm(&schema, 512);
  storage::PaxPageBuilder pax(&schema, 512);
  auto seal = [&]() {
    if (layout == PageLayout::kNsm) {
      table.pages.emplace_back(nsm.image().begin(), nsm.image().end());
      nsm.Reset();
    } else {
      table.pages.emplace_back(pax.image().begin(), pax.image().end());
      pax.Reset();
    }
  };
  for (int row = 0; row < rows; ++row) {
    storage::TupleWriter w(&schema, tuple);
    w.SetInt32(0, row);
    w.SetInt32(1, row % 10);  // FK into inner keys 0..9
    w.SetInt32(2, row * 2);
    w.SetChar(3, row % 3 == 0 ? "abXX" : "cdXX");
    const bool ok = layout == PageLayout::kNsm ? nsm.Append(tuple)
                                               : pax.Append(tuple);
    if (!ok) {
      seal();
      SMARTSSD_CHECK(layout == PageLayout::kNsm ? nsm.Append(tuple)
                                                : pax.Append(tuple));
    }
  }
  if ((layout == PageLayout::kNsm && nsm.tuple_count() > 0) ||
      (layout == PageLayout::kPax && pax.tuple_count() > 0)) {
    seal();
  }
  table.info = storage::TableInfo{
      .name = "outer",
      .schema = schema,
      .layout = layout,
      .first_lpn = 0,
      .page_count = table.pages.size(),
      .tuple_count = static_cast<std::uint64_t>(rows),
      .tuples_per_page = 0};
  return table;
}

MemTable BuildInner(PageLayout layout) {
  const Schema schema = InnerSchema();
  MemTable table;
  std::vector<std::byte> tuple(schema.tuple_size());
  storage::NsmPageBuilder nsm(&schema, 512);
  storage::PaxPageBuilder pax(&schema, 512);
  for (int row = 0; row < 10; ++row) {
    storage::TupleWriter w(&schema, tuple);
    w.SetInt32(0, row);
    w.SetInt64(1, 1000 + row);
    SMARTSSD_CHECK(layout == PageLayout::kNsm ? nsm.Append(tuple)
                                              : pax.Append(tuple));
  }
  if (layout == PageLayout::kNsm) {
    table.pages.emplace_back(nsm.image().begin(), nsm.image().end());
  } else {
    table.pages.emplace_back(pax.image().begin(), pax.image().end());
  }
  table.info = storage::TableInfo{.name = "inner",
                                  .schema = schema,
                                  .layout = layout,
                                  .first_lpn = 100,
                                  .page_count = 1,
                                  .tuple_count = 10,
                                  .tuples_per_page = 10};
  return table;
}

struct RunOutput {
  std::vector<std::byte> rows;
  OpCounts counts;
  std::vector<std::int64_t> aggs;
  KernelMode effective_mode = KernelMode::kScalar;
};

RunOutput RunKernel(const BoundQuery& bound, const MemTable& outer,
                    const MemTable* inner, KernelMode mode) {
  RunOutput output;
  std::optional<JoinHashTable> hash_table;
  if (inner != nullptr) {
    auto table = BuildJoinHashTable(
        bound,
        [&](std::uint64_t p) -> Result<std::span<const std::byte>> {
          return std::span<const std::byte>(inner->pages[p]);
        },
        &output.counts);
    SMARTSSD_CHECK(table.ok());
    hash_table.emplace(std::move(table).value());
  }
  PageProcessor processor(
      &bound, hash_table.has_value() ? &*hash_table : nullptr, mode);
  output.effective_mode = processor.kernel_mode();
  for (const auto& page : outer.pages) {
    SMARTSSD_CHECK(
        processor.ProcessPage(page, &output.counts, &output.rows).ok());
  }
  SMARTSSD_CHECK(processor.Finish(&output.counts, &output.rows).ok());
  output.aggs = processor.agg_state();
  return output;
}

// Runs `spec` through both kernels on both layouts; the vectorized run
// must actually use the batch kernel (no silent scalar fallback) and
// agree with the scalar run on rows, aggregates, and operation counts.
// Returns the scalar NSM output for shape-specific assertions.
RunOutput CheckBothKernels(const QuerySpec& spec, int rows,
                           bool with_inner = false,
                           bool expect_vectorized = true) {
  RunOutput reference;
  for (const PageLayout layout : {PageLayout::kNsm, PageLayout::kPax}) {
    const MemTable outer = BuildOuter(layout, rows);
    const MemTable inner = BuildInner(layout);
    storage::Catalog catalog(100000);
    SMARTSSD_CHECK(catalog.AddTable(outer.info).ok());
    if (with_inner) SMARTSSD_CHECK(catalog.AddTable(inner.info).ok());
    auto bound = Bind(spec, catalog);
    SMARTSSD_CHECK(bound.ok());

    const RunOutput scalar = RunKernel(
        *bound, outer, with_inner ? &inner : nullptr, KernelMode::kScalar);
    const RunOutput vectorized =
        RunKernel(*bound, outer, with_inner ? &inner : nullptr,
                  KernelMode::kVectorized);

    EXPECT_EQ(scalar.effective_mode, KernelMode::kScalar);
    if (expect_vectorized) {
      EXPECT_EQ(vectorized.effective_mode, KernelMode::kVectorized)
          << "query fell back to the scalar kernel; test would be vacuous";
    }
    EXPECT_EQ(scalar.rows, vectorized.rows);
    EXPECT_EQ(scalar.aggs, vectorized.aggs);
    EXPECT_EQ(scalar.counts == vectorized.counts, true)
        << "operation counts diverged between kernels";
    if (layout == PageLayout::kNsm) reference = scalar;
  }
  return reference;
}

TEST(BatchKernelTest, EmptyTableProducesNothing) {
  QuerySpec spec;
  spec.table = "outer";
  spec.predicate = ex::Lt(ex::Col(0), ex::Lit(10));
  spec.projection = {0, 2};
  const RunOutput out = CheckBothKernels(spec, /*rows=*/0);
  EXPECT_EQ(out.rows.size(), 0u);
  EXPECT_EQ(out.counts.tuples, 0u);
}

TEST(BatchKernelTest, SingleRowBatch) {
  QuerySpec spec;
  spec.table = "outer";
  spec.predicate = ex::Ge(ex::Col(0), ex::Lit(0));
  spec.projection = {0, 1, 2};
  const RunOutput out = CheckBothKernels(spec, /*rows=*/1);
  EXPECT_EQ(out.counts.tuples, 1u);
  EXPECT_EQ(out.counts.output_tuples, 1u);
}

TEST(BatchKernelTest, AllPassPredicate) {
  QuerySpec spec;
  spec.table = "outer";
  spec.predicate = ex::Ge(ex::Col(0), ex::Lit(0));
  spec.projection = {0, 2};
  const RunOutput out = CheckBothKernels(spec, /*rows=*/100);
  EXPECT_EQ(out.counts.output_tuples, 100u);
}

TEST(BatchKernelTest, AllFailPredicate) {
  QuerySpec spec;
  spec.table = "outer";
  spec.predicate = ex::Lt(ex::Col(0), ex::Lit(0));
  spec.projection = {0, 2};
  const RunOutput out = CheckBothKernels(spec, /*rows=*/100);
  EXPECT_EQ(out.counts.output_tuples, 0u);
  EXPECT_EQ(out.rows.size(), 0u);
}

TEST(BatchKernelTest, Int64BoundaryLiterals) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  {
    QuerySpec spec;
    spec.table = "outer";
    spec.predicate = ex::Gt(ex::Col(0), ex::Lit(kMin));  // all pass
    spec.projection = {0};
    const RunOutput out = CheckBothKernels(spec, /*rows=*/50);
    EXPECT_EQ(out.counts.output_tuples, 50u);
  }
  {
    QuerySpec spec;
    spec.table = "outer";
    spec.predicate = ex::Gt(ex::Col(0), ex::Lit(kMax));  // none pass
    spec.projection = {0};
    const RunOutput out = CheckBothKernels(spec, /*rows=*/50);
    EXPECT_EQ(out.counts.output_tuples, 0u);
  }
  {
    QuerySpec spec;
    spec.table = "outer";
    spec.predicate = ex::Le(ex::Col(0), ex::Lit(kMax));  // all pass
    spec.aggregates.push_back({AggSpec::Fn::kCount, nullptr, "cnt"});
    const RunOutput out = CheckBothKernels(spec, /*rows=*/50);
    EXPECT_EQ(out.aggs[0], 50);
  }
}

TEST(BatchKernelTest, ShortCircuitAndOrCounts) {
  // AND/OR evaluate children left-to-right with short-circuiting, so
  // the per-child evaluation counts depend on earlier children's
  // results — the exact thing selection-narrowing must reproduce.
  QuerySpec spec;
  spec.table = "outer";
  std::vector<ex::ExprPtr> disjuncts;
  disjuncts.push_back(ex::Lt(ex::Col(0), ex::Lit(5)));
  disjuncts.push_back(ex::Ge(ex::Col(2), ex::Lit(150)));
  std::vector<ex::ExprPtr> conjuncts;
  conjuncts.push_back(ex::Or(std::move(disjuncts)));
  conjuncts.push_back(ex::Lt(ex::Col(1), ex::Lit(8)));
  conjuncts.push_back(ex::Not(ex::Eq(ex::Col(0), ex::Lit(3))));
  spec.predicate = ex::And(std::move(conjuncts));
  spec.projection = {0, 2};
  CheckBothKernels(spec, /*rows=*/100);
}

TEST(BatchKernelTest, CaseWhenWithLikeAndArithmetic) {
  // The TPC-H Q14 shape: CASE WHEN tag LIKE 'ab%' THEN v*3 ELSE v+1.
  QuerySpec spec;
  spec.table = "outer";
  spec.aggregates.push_back(
      {AggSpec::Fn::kSum,
       ex::CaseWhen(ex::LikePrefix(ex::Col(3), "ab"),
                    ex::Mul(ex::Col(2), ex::Lit(3)),
                    ex::Add(ex::Col(2), ex::Lit(1))),
       "case_sum"});
  const RunOutput out = CheckBothKernels(spec, /*rows=*/97);
  ASSERT_EQ(out.aggs.size(), 1u);
}

TEST(BatchKernelTest, GroupByMatchesScalarKernel) {
  QuerySpec spec;
  spec.table = "outer";
  spec.predicate = ex::Ge(ex::Col(0), ex::Lit(7));
  spec.aggregates.push_back({AggSpec::Fn::kSum, ex::Col(2), "sum_v"});
  spec.aggregates.push_back({AggSpec::Fn::kCount, nullptr, "cnt"});
  spec.aggregates.push_back({AggSpec::Fn::kMax, ex::Col(0), "max_k"});
  spec.group_by = {1};  // fk: 10 groups
  const RunOutput out = CheckBothKernels(spec, /*rows=*/200);
  // 10 groups of (fk, sum, cnt, max) = 4 + 3*8 bytes.
  EXPECT_EQ(out.rows.size(), 10u * (4u + 3u * 8u));
}

TEST(BatchKernelTest, JoinFilterFirstAndProbeFirst) {
  for (const PipelineOrder order :
       {PipelineOrder::kFilterFirst, PipelineOrder::kProbeFirst}) {
    QuerySpec spec;
    spec.table = "outer";
    spec.order = order;
    spec.join = JoinSpec{.inner_table = "inner",
                         .outer_key_col = 1,
                         .inner_key_col = 0,
                         .inner_payload_cols = {1}};
    spec.predicate = ex::Lt(ex::Col(1), ex::Lit(4));
    // Aggregate over the joined payload (combined column 4).
    spec.aggregates.push_back({AggSpec::Fn::kSum, ex::Col(4), "sum_p"});
    CheckBothKernels(spec, /*rows=*/150, /*with_inner=*/true);
  }
}

TEST(BatchKernelTest, TopNMatchesScalarKernel) {
  QuerySpec spec;
  spec.table = "outer";
  spec.predicate = ex::Lt(ex::Col(1), ex::Lit(7));
  spec.projection = {0, 2};
  spec.top_n = TopNSpec{.order_col = 0, .descending = true, .limit = 13};
  const RunOutput out = CheckBothKernels(spec, /*rows=*/120);
  EXPECT_EQ(out.rows.size(), 13u * 8u);
}

TEST(BatchKernelTest, NoPredicateScanAggregate) {
  QuerySpec spec;
  spec.table = "outer";
  spec.aggregates.push_back({AggSpec::Fn::kSum, ex::Col(2), "sum_v"});
  spec.aggregates.push_back({AggSpec::Fn::kMin, ex::Col(0), "min_k"});
  const RunOutput out = CheckBothKernels(spec, /*rows=*/64);
  ASSERT_EQ(out.aggs.size(), 2u);
  EXPECT_EQ(out.aggs[1], 0);
}

TEST(BatchKernelTest, UniformLiteralOnlyPredicate) {
  // A predicate with no column reference compiles to uniform slots:
  // the whole batch passes or fails on one scalar evaluation, but the
  // charged counts must still be per-row like the interpreter's.
  QuerySpec spec;
  spec.table = "outer";
  spec.predicate = ex::Lt(ex::Lit(1), ex::Lit(2));  // always true
  spec.projection = {0};
  const RunOutput out = CheckBothKernels(spec, /*rows=*/40);
  EXPECT_EQ(out.counts.output_tuples, 40u);
  EXPECT_EQ(out.counts.eval.comparisons, 40u);
}

}  // namespace
}  // namespace smartssd::exec
