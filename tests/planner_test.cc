#include <gtest/gtest.h>

#include <vector>

#include "engine/database.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"
#include "tpch/tpch_gen.h"

namespace smartssd::engine {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : db_(DatabaseOptions::PaperSmartSsd()) {
    SMARTSSD_CHECK(tpch::LoadLineitem(db_, "lineitem", 0.005,
                                      storage::PageLayout::kPax)
                       .ok());
    SMARTSSD_CHECK(
        tpch::LoadPart(db_, "part", 0.005, storage::PageLayout::kPax).ok());
    db_.ResetForColdRun();
  }

  exec::BoundQuery BindOrDie(const exec::QuerySpec& spec) {
    auto bound = exec::Bind(spec, db_.catalog());
    SMARTSSD_CHECK(bound.ok());
    return std::move(bound).value();
  }

  Database db_;
};

TEST_F(PlannerTest, SelectiveAggregateGoesToDevice) {
  const auto spec = tpch::Q6Spec("lineitem");
  const auto bound = BindOrDie(spec);
  PushdownPlanner planner(&db_);
  auto decision =
      planner.Decide(bound, PlanHints{.predicate_selectivity = 0.006});
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->target, ExecutionTarget::kSmartSsd);
  EXPECT_LT(decision->est_smart_seconds, decision->est_host_seconds);
}

TEST_F(PlannerTest, NonSmartDeviceAlwaysHost) {
  Database plain(DatabaseOptions::PaperSsd());
  SMARTSSD_CHECK(tpch::LoadLineitem(plain, "lineitem", 0.005,
                                    storage::PageLayout::kNsm)
                     .ok());
  const auto spec = tpch::Q6Spec("lineitem");
  auto bound = exec::Bind(spec, plain.catalog());
  ASSERT_TRUE(bound.ok());
  PushdownPlanner planner(&plain);
  auto decision = planner.Decide(*bound, PlanHints{});
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->target, ExecutionTarget::kHost);
  EXPECT_NE(decision->reason.find("runtime"), std::string::npos);
}

TEST_F(PlannerTest, DirtyPagesForceHost) {
  const auto spec = tpch::Q6Spec("lineitem");
  const auto bound = BindOrDie(spec);
  auto info = db_.catalog().GetTable("lineitem");
  ASSERT_TRUE(info.ok());
  std::vector<std::byte> page(db_.device().page_size(), std::byte{0});
  ASSERT_TRUE(
      db_.buffer_pool().WritePage((*info)->first_lpn + 1, page, 0).ok());

  PushdownPlanner planner(&db_);
  auto decision = planner.Decide(bound, PlanHints{});
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->target, ExecutionTarget::kHost);
  EXPECT_NE(decision->reason.find("coherence"), std::string::npos);
  ASSERT_TRUE(db_.buffer_pool().FlushAll(0).ok());
}

TEST_F(PlannerTest, MostlyCachedTableStaysOnHost) {
  // A small table that fits in the pool entirely. Wide tuples so that
  // pushdown is attractive when cold (cf. the tuple-width sweep: narrow
  // tuples are CPU-bound on the device and stay on the host anyway).
  SMARTSSD_CHECK(tpch::LoadSyntheticS(db_, "tiny", 64, 2000, 10,
                                      storage::PageLayout::kPax)
                     .ok());
  db_.ResetForColdRun();
  const auto spec = tpch::ScanQuerySpec("tiny", 64, 0.01, true);
  const auto bound = BindOrDie(spec);
  PushdownPlanner planner(&db_);

  // Cold: the planner would push down.
  auto cold = planner.Decide(bound, PlanHints{.predicate_selectivity = 0.01});
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->target, ExecutionTarget::kSmartSsd);

  // Warm the pool with a host run, then ask again.
  QueryExecutor executor(&db_);
  ASSERT_TRUE(executor.Execute(spec, ExecutionTarget::kHost).ok());
  auto warm = planner.Decide(bound, PlanHints{.predicate_selectivity = 0.01});
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->target, ExecutionTarget::kHost);
  EXPECT_NE(warm->reason.find("cached"), std::string::npos);
}

TEST_F(PlannerTest, OversizedHashTableForcesHost) {
  // Shrink device DRAM so PART's hash table cannot fit.
  DatabaseOptions options = DatabaseOptions::PaperSmartSsd();
  options.ssd.dram.capacity_bytes = 1 * kMiB;
  Database small(options);
  SMARTSSD_CHECK(tpch::LoadLineitem(small, "lineitem", 0.005,
                                    storage::PageLayout::kPax)
                     .ok());
  SMARTSSD_CHECK(
      tpch::LoadPart(small, "part", 0.005, storage::PageLayout::kPax).ok());
  small.ResetForColdRun();
  const auto spec = tpch::Q14Spec("lineitem", "part");
  auto bound = exec::Bind(spec, small.catalog());
  ASSERT_TRUE(bound.ok());
  PushdownPlanner planner(&small);
  auto decision = planner.Decide(*bound, PlanHints{});
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->target, ExecutionTarget::kHost);
  EXPECT_NE(decision->reason.find("DRAM"), std::string::npos);
}

TEST_F(PlannerTest, WideRowReturningScanStaysOnHost) {
  SMARTSSD_CHECK(tpch::LoadSyntheticS(db_, "wide", 16, 20000, 10,
                                      storage::PageLayout::kPax)
                     .ok());
  db_.ResetForColdRun();
  // Returning ~all columns of ~all rows: result transfer dominates, the
  // cost model must keep it on the host.
  const auto spec = tpch::ScanQuerySpec("wide", 16, 1.0, false);
  const auto bound = BindOrDie(spec);
  PushdownPlanner planner(&db_);
  auto decision =
      planner.Decide(bound, PlanHints{.predicate_selectivity = 1.0});
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->target, ExecutionTarget::kHost);
  EXPECT_NE(decision->reason.find("cost"), std::string::npos);
}

TEST_F(PlannerTest, ExecuteAutoFollowsTheDecision) {
  QueryExecutor executor(&db_);
  db_.ResetForColdRun();
  // Q6 on cold PAX LINEITEM: the planner pushes down.
  auto auto_run = executor.ExecuteAuto(
      tpch::Q6Spec("lineitem"), PlanHints{.predicate_selectivity = 0.006});
  ASSERT_TRUE(auto_run.ok());
  EXPECT_EQ(auto_run->stats.target, ExecutionTarget::kSmartSsd);

  // Same query on a non-smart device: auto must fall back to the host.
  Database plain(DatabaseOptions::PaperSsd());
  SMARTSSD_CHECK(tpch::LoadLineitem(plain, "lineitem", 0.005,
                                    storage::PageLayout::kNsm)
                     .ok());
  plain.ResetForColdRun();
  QueryExecutor plain_executor(&plain);
  auto fallback = plain_executor.ExecuteAuto(tpch::Q6Spec("lineitem"));
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback->stats.target, ExecutionTarget::kHost);
  EXPECT_EQ(fallback->agg_values, auto_run->agg_values);
}

// The cost estimates should be in the ballpark of measured execution —
// within 2x is plenty for a pushdown decision.
TEST_F(PlannerTest, EstimatesTrackMeasuredElapsed) {
  const auto spec = tpch::Q6Spec("lineitem");
  const auto bound = BindOrDie(spec);
  PushdownPlanner planner(&db_);
  const PlanHints hints{.predicate_selectivity = 0.006};
  const double est_host = planner.EstimateHostSeconds(bound, hints);
  const double est_smart = planner.EstimateSmartSeconds(bound, hints);

  QueryExecutor executor(&db_);
  db_.ResetForColdRun();
  auto host = executor.Execute(spec, ExecutionTarget::kHost);
  ASSERT_TRUE(host.ok());
  db_.ResetForColdRun();
  auto smart = executor.Execute(spec, ExecutionTarget::kSmartSsd);
  ASSERT_TRUE(smart.ok());

  EXPECT_GT(est_host, host->stats.elapsed_seconds() / 2);
  EXPECT_LT(est_host, host->stats.elapsed_seconds() * 2);
  EXPECT_GT(est_smart, smart->stats.elapsed_seconds() / 2);
  EXPECT_LT(est_smart, smart->stats.elapsed_seconds() * 2);
}

}  // namespace
}  // namespace smartssd::engine
