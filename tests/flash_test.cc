#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "flash/flash_array.h"
#include "flash/geometry.h"

namespace smartssd::flash {
namespace {

Geometry TinyGeometry() {
  Geometry g;
  g.channels = 2;
  g.chips_per_channel = 2;
  g.blocks_per_chip = 4;
  g.pages_per_block = 4;
  g.page_size_bytes = 512;
  return g;
}

std::vector<std::byte> Pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::byte>((seed + i) & 0xFF);
  }
  return data;
}

TEST(GeometryTest, Counts) {
  const Geometry g = TinyGeometry();
  EXPECT_EQ(g.total_chips(), 4u);
  EXPECT_EQ(g.total_blocks(), 16u);
  EXPECT_EQ(g.total_pages(), 64u);
  EXPECT_EQ(g.capacity_bytes(), 64u * 512u);
  EXPECT_TRUE(g.Valid());
}

TEST(GeometryTest, AddressRoundTrip) {
  const Geometry g = TinyGeometry();
  for (std::uint64_t i = 0; i < g.total_pages(); ++i) {
    const PageAddress addr = AddressFromPageIndex(g, i);
    EXPECT_TRUE(InBounds(g, addr));
    EXPECT_EQ(PageIndex(g, addr), i);
  }
}

TEST(GeometryTest, OutOfBoundsDetected) {
  const Geometry g = TinyGeometry();
  EXPECT_FALSE(InBounds(g, PageAddress{2, 0, 0, 0}));
  EXPECT_FALSE(InBounds(g, PageAddress{0, 2, 0, 0}));
  EXPECT_FALSE(InBounds(g, PageAddress{0, 0, 4, 0}));
  EXPECT_FALSE(InBounds(g, PageAddress{0, 0, 0, 4}));
  EXPECT_FALSE(InBounds(g, PageAddress{-1, 0, 0, 0}));
}

class FlashArrayTest : public ::testing::Test {
 protected:
  FlashArrayTest() : array_(TinyGeometry(), Timings{}) {}
  FlashArray array_;
};

TEST_F(FlashArrayTest, ProgramThenReadRoundTrip) {
  const auto data = Pattern(512, 3);
  const PageAddress addr{0, 0, 0, 0};
  ASSERT_TRUE(array_.ProgramPage(addr, data, 0).ok());
  std::vector<std::byte> out(512);
  auto done = array_.ReadPage(addr, 0, out);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), 512), 0);
}

TEST_F(FlashArrayTest, ErasedPageReadsAsZero) {
  std::vector<std::byte> out(512, std::byte{0xFF});
  ASSERT_TRUE(array_.ReadPage(PageAddress{1, 1, 2, 3}, 0, out).ok());
  for (const std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST_F(FlashArrayTest, SequentialProgramRuleEnforced) {
  const auto data = Pattern(512, 1);
  // Page 1 before page 0 in a block: rejected.
  auto status = array_.ProgramPage(PageAddress{0, 0, 0, 1}, data, 0);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), StatusCode::kFailedPrecondition);
  // In order is fine.
  ASSERT_TRUE(array_.ProgramPage(PageAddress{0, 0, 0, 0}, data, 0).ok());
  ASSERT_TRUE(array_.ProgramPage(PageAddress{0, 0, 0, 1}, data, 0).ok());
}

TEST_F(FlashArrayTest, NoProgramOverFullBlock) {
  const auto data = Pattern(512, 2);
  for (std::uint32_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(array_.ProgramPage(PageAddress{0, 0, 1, p}, data, 0).ok());
  }
  EXPECT_FALSE(array_.ProgramPage(PageAddress{0, 0, 1, 0}, data, 0).ok());
}

TEST_F(FlashArrayTest, EraseResetsBlockForReprogramming) {
  const auto data = Pattern(512, 9);
  for (std::uint32_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(array_.ProgramPage(PageAddress{0, 0, 0, p}, data, 0).ok());
  }
  ASSERT_TRUE(array_.EraseBlock(0, 0, 0, 0).ok());
  EXPECT_EQ(array_.block_state(0).erase_count, 1u);
  EXPECT_EQ(array_.block_state(0).write_pointer, 0u);
  std::vector<std::byte> out(512, std::byte{0xFF});
  ASSERT_TRUE(array_.ReadPage(PageAddress{0, 0, 0, 0}, 0, out).ok());
  EXPECT_EQ(out[0], std::byte{0});
  ASSERT_TRUE(array_.ProgramPage(PageAddress{0, 0, 0, 0}, data, 0).ok());
}

TEST_F(FlashArrayTest, OutOfRangeAddressRejected) {
  std::vector<std::byte> out(512);
  EXPECT_FALSE(array_.ReadPage(PageAddress{5, 0, 0, 0}, 0, out).ok());
  EXPECT_FALSE(array_.ProgramPage(PageAddress{0, 9, 0, 0}, out, 0).ok());
  EXPECT_FALSE(array_.EraseBlock(0, 0, 99, 0).ok());
}

TEST_F(FlashArrayTest, OversizedProgramRejected) {
  const auto data = Pattern(513, 0);
  auto status = array_.ProgramPage(PageAddress{0, 0, 0, 0}, data, 0);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FlashArrayTest, ShortProgramZeroPads) {
  const auto data = Pattern(100, 4);
  ASSERT_TRUE(array_.ProgramPage(PageAddress{0, 0, 0, 0}, data, 0).ok());
  std::vector<std::byte> out(512, std::byte{0xFF});
  ASSERT_TRUE(array_.ReadPage(PageAddress{0, 0, 0, 0}, 0, out).ok());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), 100), 0);
  for (std::size_t i = 100; i < 512; ++i) {
    EXPECT_EQ(out[i], std::byte{0});
  }
}

// --- Timing behaviour ---

TEST_F(FlashArrayTest, SameChipReadsSerializeOnTr) {
  const Timings t;
  auto r1 = array_.ReadPageTiming(PageAddress{0, 0, 0, 0}, 0);
  auto r2 = array_.ReadPageTiming(PageAddress{0, 0, 1, 0}, 0);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // Second read waits for the first chip sense to finish.
  EXPECT_GE(r2.value(), r1.value());
  EXPECT_GE(r2.value(), 2 * t.read_page);
}

TEST_F(FlashArrayTest, DifferentChipsOverlapSensing) {
  auto r1 = array_.ReadPageTiming(PageAddress{0, 0, 0, 0}, 0);
  auto r2 = array_.ReadPageTiming(PageAddress{0, 1, 0, 0}, 0);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  const Timings t;
  // Both sense in parallel; the shared channel bus staggers them only
  // by one transfer.
  EXPECT_LT(r2.value(), 2 * t.read_page);
}

TEST_F(FlashArrayTest, DifferentChannelsFullyParallel) {
  auto r1 = array_.ReadPageTiming(PageAddress{0, 0, 0, 0}, 0);
  auto r2 = array_.ReadPageTiming(PageAddress{1, 0, 0, 0}, 0);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value(), r2.value());
}

TEST_F(FlashArrayTest, OperationCountersTrack) {
  const auto data = Pattern(512, 1);
  ASSERT_TRUE(array_.ProgramPage(PageAddress{0, 0, 0, 0}, data, 0).ok());
  ASSERT_TRUE(array_.ReadPageTiming(PageAddress{0, 0, 0, 0}, 0).ok());
  ASSERT_TRUE(array_.EraseBlock(0, 0, 0, 0).ok());
  EXPECT_EQ(array_.programs(), 1u);
  EXPECT_EQ(array_.reads(), 1u);
  EXPECT_EQ(array_.erases(), 1u);
  EXPECT_GT(array_.total_chip_busy(), 0u);
  EXPECT_GT(array_.total_channel_busy(), 0u);
}

// Channel-interleaved reads should sustain roughly channels x the
// single-channel rate — the parallelism the FTL's striping exploits.
TEST(FlashTimingTest, ChannelInterleavingScalesBandwidth) {
  Geometry g = TinyGeometry();
  g.channels = 4;
  g.pages_per_block = 16;
  FlashArray array(g, Timings{});

  // 64 reads on one channel vs 64 striped over 4.
  SimTime single_done = 0;
  for (int i = 0; i < 64; ++i) {
    auto r = array.ReadPageTiming(
        PageAddress{0, i % 2, static_cast<std::uint32_t>(i / 32),
                    static_cast<std::uint32_t>(i % 16)},
        0);
    ASSERT_TRUE(r.ok());
    single_done = std::max(single_done, r.value());
  }
  array.ResetTiming();
  SimTime striped_done = 0;
  for (int i = 0; i < 64; ++i) {
    auto r = array.ReadPageTiming(
        PageAddress{i % 4, (i / 4) % 2, static_cast<std::uint32_t>(i / 32),
                    static_cast<std::uint32_t>((i / 8) % 16)},
        0);
    ASSERT_TRUE(r.ok());
    striped_done = std::max(striped_done, r.value());
  }
  EXPECT_LT(striped_done * 3, single_done);
}

}  // namespace
}  // namespace smartssd::flash
