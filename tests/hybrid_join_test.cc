// Property sweep for the memory-constrained hybrid hash join: shrinking
// the resident-build grant from fully-resident down to
// every-partition-spills must leave result bytes AND end-of-query
// operation totals identical to the unconstrained join, on both page
// layouts; and a heavily skewed probe distribution must engage the
// heavy-hitter pin so the hot key stops paying the spill path.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"
#include "tpch/tpch_gen.h"

namespace smartssd::engine {
namespace {

// ~29 KiB estimated build table (600 rows), so a 2 KiB grant cannot hold
// even one of the four partitions and a 16 KiB grant holds some but not
// all — the sweep crosses fully-resident, partial-spill, and
// everything-spills regimes.
constexpr std::uint64_t kSRows = 4'000;
constexpr std::uint64_t kRRows = 600;
constexpr int kCols = 64;  // JoinQuerySpec projects combined index 64

std::unique_ptr<Database> MakeDb(std::uint64_t budget_bytes,
                                 storage::PageLayout layout) {
  DatabaseOptions options = DatabaseOptions::PaperSmartSsd();
  options.join_spill.budget_bytes = budget_bytes;
  auto db = std::make_unique<Database>(options);
  SMARTSSD_CHECK(
      tpch::LoadSyntheticS(*db, "S", kCols, kSRows, kRRows, layout).ok());
  SMARTSSD_CHECK(tpch::LoadSyntheticR(*db, "R", kCols, kRRows, layout).ok());
  db->ResetForColdRun();
  return db;
}

TEST(HybridJoinPropertyTest, GrantSweepIsInvisibleToResultsAndCounts) {
  const exec::QuerySpec spec = tpch::JoinQuerySpec("S", "R", 0.5);
  for (const storage::PageLayout layout :
       {storage::PageLayout::kNsm, storage::PageLayout::kPax}) {
    SCOPED_TRACE(layout == storage::PageLayout::kNsm ? "nsm" : "pax");

    // Ground truth: the host path, then the unconstrained device build
    // (budget 0 resolves to "fits device DRAM, stay whole").
    auto ref_db = MakeDb(0, layout);
    QueryExecutor ref_exec(ref_db.get());
    auto host = ref_exec.Execute(spec, ExecutionTarget::kHost, 0);
    ASSERT_TRUE(host.ok()) << host.status().ToString();
    ref_db->ResetForColdRun();
    auto whole = ref_exec.Execute(spec, ExecutionTarget::kSmartSsd, 0);
    ASSERT_TRUE(whole.ok());
    ASSERT_EQ(whole->rows, host->rows);
    ASSERT_EQ(whole->stats.join_spill.partitions_spilled, 0u);

    for (const std::uint64_t budget :
         {std::uint64_t{1} << 20, std::uint64_t{16} * 1024,
          std::uint64_t{6} * 1024, std::uint64_t{2} * 1024}) {
      SCOPED_TRACE("budget=" + std::to_string(budget));
      auto db = MakeDb(budget, layout);
      QueryExecutor executor(db.get());
      auto got = executor.Execute(spec, ExecutionTarget::kSmartSsd, 0);
      ASSERT_TRUE(got.ok()) << got.status().ToString();

      // Byte-identical output and identical operation totals: spilling
      // is charged as I/O and cycles, never as logical work.
      EXPECT_EQ(got->rows, host->rows);
      EXPECT_EQ(got->agg_values, host->agg_values);
      EXPECT_EQ(got->stats.counts.tuples, whole->stats.counts.tuples);
      EXPECT_EQ(got->stats.counts.probes, whole->stats.counts.probes);
      EXPECT_EQ(got->stats.counts.hash_inserts,
                whole->stats.counts.hash_inserts);
      EXPECT_EQ(got->stats.counts.eval.column_reads,
                whole->stats.counts.eval.column_reads);
      EXPECT_EQ(got->stats.output_bytes, whole->stats.output_bytes);

      const exec::HybridJoinStats& js = got->stats.join_spill;
      if (budget >= (std::uint64_t{1} << 20)) {
        // The whole table fits the grant: no spill machinery at all.
        EXPECT_EQ(js.partitions_spilled, 0u);
        EXPECT_EQ(js.spill_pages_written, 0u);
      } else {
        EXPECT_GT(js.partitions_spilled, 0u);
        EXPECT_GE(js.passes, 2u);
        // Every written page is read back at least once (resolve);
        // hot-key promotion may re-scan build files on top of that.
        EXPECT_GE(js.spill_pages_read, js.spill_pages_written);
      }
      if (budget == std::uint64_t{2} * 1024) {
        // Below one partition's footprint: every partition spills and
        // every build row takes the flash round-trip.
        EXPECT_EQ(js.partitions_spilled, db->options().join_spill.fanout);
        EXPECT_EQ(js.build_rows_spilled, kRRows);
      }
      // The spill extents were trimmed back at session close.
      EXPECT_EQ(db->ssd()->spill_pages_held(), 0u);
    }
  }
}

TEST(HybridJoinPropertyTest, SkewedProbesPinTheHeavyHitter) {
  DatabaseOptions options = DatabaseOptions::PaperSmartSsd();
  options.join_spill.budget_bytes = 2 * 1024;  // everything spills
  Database db(options);
  SMARTSSD_CHECK(tpch::LoadSyntheticR(db, "R", kCols, kRRows,
                                      storage::PageLayout::kNsm)
                     .ok());
  // S with a hot foreign key: every even row references R.Col_1 == 1, so
  // one key carries half of all probes.
  auto rng = std::make_shared<Random>(917);
  SMARTSSD_CHECK(
      db.LoadTable("S_skew", tpch::SyntheticSchema(kCols),
                   storage::PageLayout::kNsm, kSRows,
                   [rng](std::uint64_t row, storage::TupleWriter& w) {
                     w.SetInt32(0, static_cast<std::int32_t>(row + 1));
                     w.SetInt32(1, row % 2 == 0
                                       ? 1
                                       : static_cast<std::int32_t>(
                                             rng->Uniform(kRRows) + 1));
                     w.SetInt32(2, static_cast<std::int32_t>(rng->Uniform(
                                       tpch::kSelectivityDomain)));
                     for (int c = 3; c < kCols; ++c) {
                       w.SetInt32(c, static_cast<std::int32_t>(
                                         rng->Uniform(1 << 30)));
                     }
                   })
          .ok());
  db.ResetForColdRun();

  const exec::QuerySpec spec = tpch::JoinQuerySpec("S_skew", "R", 1.0);
  QueryExecutor executor(&db);
  auto host = executor.Execute(spec, ExecutionTarget::kHost, 0);
  ASSERT_TRUE(host.ok()) << host.status().ToString();
  db.ResetForColdRun();
  auto smart = executor.Execute(spec, ExecutionTarget::kSmartSsd, 0);
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();

  EXPECT_EQ(smart->rows, host->rows);
  const exec::HybridJoinStats& js = smart->stats.join_spill;
  EXPECT_GT(js.partitions_spilled, 0u);
  // The sketch crossed its threshold on the hot key, pinned its build
  // row resident, and served the bulk of the skewed probes from the pin
  // instead of deferring them to the spill files.
  EXPECT_GE(js.hot_keys_pinned, 1u);
  EXPECT_GT(js.hot_hits, 1'000u);
  EXPECT_LT(js.probe_rows_spilled, kSRows * 3 / 4);
  EXPECT_EQ(db.ssd()->spill_pages_held(), 0u);
}

}  // namespace
}  // namespace smartssd::engine
