#include <gtest/gtest.h>

#include <vector>

#include "ssd/ssd_device.h"

namespace smartssd::ssd {
namespace {

SsdConfig SmallPaperConfig() {
  SsdConfig config = SsdConfig::PaperSmartSsd();
  config.geometry.blocks_per_chip = 32;  // keep tests light
  return config;
}

void Preload(SsdDevice& device, std::uint64_t pages) {
  std::vector<std::byte> buffer(
      static_cast<std::size_t>(32) * device.page_size(), std::byte{0x33});
  SimTime t = 0;
  for (std::uint64_t lpn = 0; lpn < pages; lpn += 32) {
    auto done = device.WritePages(lpn, 32, buffer, t);
    ASSERT_TRUE(done.ok());
    t = done.value();
  }
  device.ResetTiming();
}

double MeasuredHostMBps(SsdDevice& device, std::uint64_t pages) {
  SimTime done = 0;
  for (std::uint64_t lpn = 0; lpn < pages; lpn += 32) {
    auto r = device.ReadPages(lpn, 32, {}, 0);
    EXPECT_TRUE(r.ok());
    done = r.value();
  }
  return static_cast<double>(pages) * device.page_size() /
         ToSeconds(done) / 1e6;
}

double MeasuredInternalMBps(SsdDevice& device, std::uint64_t pages) {
  SimTime done = 0;
  for (std::uint64_t lpn = 0; lpn < pages; ++lpn) {
    auto r = device.InternalReadPageTiming(lpn, 0);
    EXPECT_TRUE(r.ok());
    done = std::max(done, r.value());
  }
  return static_cast<double>(pages) * device.page_size() /
         ToSeconds(done) / 1e6;
}

// The Table 2 invariant: host path saturates the SAS link (~550 MB/s),
// internal path saturates the DRAM bus (~1,560 MB/s), a ~2.8x gap.
TEST(SsdDeviceTest, Table2BandwidthGap) {
  SsdDevice device(SmallPaperConfig());
  constexpr std::uint64_t kPages = 8192;
  Preload(device, kPages);

  const double host = MeasuredHostMBps(device, kPages);
  device.ResetTiming();
  const double internal = MeasuredInternalMBps(device, kPages);

  EXPECT_NEAR(host, 550.0, 20.0);
  EXPECT_NEAR(internal, 1560.0, 40.0);
  EXPECT_NEAR(internal / host, 2.8, 0.15);
}

TEST(SsdDeviceTest, MoreDramBusesRaiseInternalBandwidth) {
  SsdConfig config = SmallPaperConfig();
  config.dram.bus_count = 2;
  SsdDevice device(config);
  constexpr std::uint64_t kPages = 8192;
  Preload(device, kPages);
  const double internal = MeasuredInternalMBps(device, kPages);
  // Two buses double the DRAM path; the channel aggregate (8 x 330)
  // becomes the next ceiling.
  EXPECT_GT(internal, 2400.0);
}

TEST(SsdDeviceTest, ReadBackMatchesWrittenData) {
  SsdDevice device(SmallPaperConfig());
  const std::uint32_t page = device.page_size();
  std::vector<std::byte> data(2 * page);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 7);
  }
  ASSERT_TRUE(device.WritePages(10, 2, data, 0).ok());
  std::vector<std::byte> out(2 * page);
  ASSERT_TRUE(device.ReadPages(10, 2, out, 0).ok());
  EXPECT_EQ(out, data);
}

TEST(SsdDeviceTest, SmallBufferRejected) {
  SsdDevice device(SmallPaperConfig());
  std::vector<std::byte> tiny(16);
  EXPECT_FALSE(device.ReadPages(0, 2, tiny, 0).ok());
  EXPECT_FALSE(device.WritePages(0, 2, tiny, 0).ok());
}

TEST(SsdDeviceTest, ZeroCountIsNoop) {
  SsdDevice device(SmallPaperConfig());
  auto r = device.ReadPages(0, 0, {}, 42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42u);
}

TEST(SsdDeviceTest, DeviceDramAccounting) {
  SsdDevice device(SmallPaperConfig());
  const std::uint64_t total = device.device_dram_free();
  EXPECT_GT(total, 0u);
  ASSERT_TRUE(device.AllocateDeviceDram(total / 2).ok());
  EXPECT_EQ(device.device_dram_free(), total - total / 2);
  // Over-allocation fails and leaves accounting unchanged.
  auto status = device.AllocateDeviceDram(total);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(device.device_dram_free(), total - total / 2);
  device.ReleaseDeviceDram(total / 2);
  EXPECT_EQ(device.device_dram_free(), total);
}

TEST(SsdDeviceTest, EmbeddedCpuParallelism) {
  SsdConfig config = SmallPaperConfig();
  config.embedded_cpu.cores = 3;
  config.embedded_cpu.clock_hz = 1'000'000'000;  // 1 GHz: 1 cycle = 1 ns
  SsdDevice device(config);
  // Six 100-cycle tasks on three cores: two rounds.
  SimTime last = 0;
  for (int i = 0; i < 6; ++i) {
    last = std::max(last, device.ExecuteOnDevice(100, 0));
  }
  EXPECT_EQ(last, 200u);
  EXPECT_EQ(device.embedded_cpu_busy(), 600u);
}

TEST(SsdDeviceTest, TransferToHostUsesLinkRate) {
  SsdDevice device(SmallPaperConfig());
  const SimTime done = device.TransferToHost(550 * kMB, 0);
  EXPECT_NEAR(ToSeconds(done), 1.0, 0.01);
}

TEST(SsdDeviceTest, HostCommandCostsCommandLatency) {
  SsdConfig config = SmallPaperConfig();
  SsdDevice device(config);
  const SimTime done = device.HostCommand(0);
  EXPECT_EQ(done, config.host_interface.command_latency);
}

TEST(SsdDeviceTest, InterfaceStandardsChangeHostBandwidth) {
  EXPECT_LT(EffectiveBytesPerSecond(HostInterfaceStandard::kSata3g),
            EffectiveBytesPerSecond(HostInterfaceStandard::kSas6g));
  EXPECT_LT(EffectiveBytesPerSecond(HostInterfaceStandard::kSas6g),
            EffectiveBytesPerSecond(HostInterfaceStandard::kSas12g));
  EXPECT_LT(EffectiveBytesPerSecond(HostInterfaceStandard::kSas12g),
            EffectiveBytesPerSecond(HostInterfaceStandard::kPcie3x4));
}

TEST(SsdDeviceTest, PaperConfigsDifferOnlyInPower) {
  const SsdConfig ssd = SsdConfig::PaperSsd();
  const SsdConfig smart = SsdConfig::PaperSmartSsd();
  EXPECT_EQ(ssd.geometry.channels, smart.geometry.channels);
  EXPECT_EQ(ssd.dram.bus_bytes_per_second, smart.dram.bus_bytes_per_second);
  EXPECT_LT(ssd.power.active_watts, smart.power.active_watts);
}

}  // namespace
}  // namespace smartssd::ssd
