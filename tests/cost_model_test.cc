#include <gtest/gtest.h>

#include "exec/cost_model.h"
#include "ssd/interface_trends.h"

namespace smartssd::exec {
namespace {

TEST(CostModelTest, CyclesAreLinearInCounts) {
  const CpuCostParams params = EmbeddedCostParams(storage::PageLayout::kPax);
  OpCounts counts;
  counts.pages = 10;
  counts.tuples = 1000;
  counts.eval.comparisons = 2000;
  const std::uint64_t once = Cycles(counts, params, 16, 0);
  OpCounts doubled = counts;
  doubled += counts;
  EXPECT_EQ(Cycles(doubled, params, 16, 0), 2 * once);
}

TEST(CostModelTest, PageCostScalesWithSchemaWidth) {
  const CpuCostParams params = EmbeddedCostParams(storage::PageLayout::kPax);
  OpCounts counts;
  counts.pages = 100;
  const std::uint64_t narrow = Cycles(counts, params, 8, 0);
  const std::uint64_t wide = Cycles(counts, params, 64, 0);
  EXPECT_EQ(wide - narrow, 100 * params.page_per_column * (64 - 8));
}

TEST(CostModelTest, ProbeTierSwitchesOnHashTableSize) {
  const CpuCostParams params = EmbeddedCostParams(storage::PageLayout::kPax);
  OpCounts counts;
  counts.probes = 1000;
  const std::uint64_t cached =
      Cycles(counts, params, 1, params.probe_large_threshold_entries);
  const std::uint64_t spilled =
      Cycles(counts, params, 1, params.probe_large_threshold_entries + 1);
  EXPECT_EQ(cached, 1000 * params.probe_small);
  EXPECT_EQ(spilled, 1000 * params.probe_large);
  EXPECT_GT(spilled, cached);
}

TEST(CostModelTest, EmbeddedCostsExceedHostCosts) {
  // The structural premise of the paper: the same work costs more
  // cycles on the in-order embedded cores than on the host Xeons.
  for (const auto layout :
       {storage::PageLayout::kNsm, storage::PageLayout::kPax}) {
    const CpuCostParams embedded = EmbeddedCostParams(layout);
    const CpuCostParams host = HostCostParams(layout);
    EXPECT_GT(embedded.tuple_base, host.tuple_base);
    EXPECT_GT(embedded.comparison, host.comparison);
    EXPECT_GT(embedded.output_tuple, host.output_tuple);
    EXPECT_GT(embedded.agg_update, host.agg_update);
  }
}

TEST(CostModelTest, PaxBeatsNsmPerTupleOnTheDevice) {
  // The Figure 3/7 premise: PAX's column-local access is cheaper per
  // tuple on the embedded cores.
  const CpuCostParams pax = EmbeddedCostParams(storage::PageLayout::kPax);
  const CpuCostParams nsm = EmbeddedCostParams(storage::PageLayout::kNsm);
  EXPECT_LT(pax.tuple_base, nsm.tuple_base);
  EXPECT_LT(pax.comparison, nsm.comparison);
  EXPECT_LT(pax.column_read, nsm.column_read);
}

TEST(CostModelTest, AllNewOperatorCountsAreCharged) {
  const CpuCostParams params = EmbeddedCostParams(storage::PageLayout::kPax);
  OpCounts counts;
  counts.group_updates = 10;
  counts.topn_updates = 5;
  EXPECT_EQ(Cycles(counts, params, 1, 0),
            10 * params.group_update + 5 * params.topn_update);
}

}  // namespace
}  // namespace smartssd::exec

namespace smartssd::ssd {
namespace {

TEST(InterfaceTrendsTest, SeriesIsWellFormed) {
  const auto& trends = BandwidthTrends();
  ASSERT_GE(trends.size(), 10u);
  EXPECT_EQ(trends.front().year, 2007);
  int prev_year = 0;
  std::uint64_t prev_host = 0;
  std::uint64_t prev_internal = 0;
  for (const auto& point : trends) {
    EXPECT_GT(point.year, prev_year);
    EXPECT_GE(point.host_interface_bytes_per_second, prev_host);
    EXPECT_GT(point.internal_bytes_per_second, prev_internal);
    prev_year = point.year;
    prev_host = point.host_interface_bytes_per_second;
    prev_internal = point.internal_bytes_per_second;
  }
}

TEST(InterfaceTrendsTest, GapAround2012IsAboutTenX) {
  // Section 4.2: "far smaller than the gap shown in Figure 1 (about
  // 10X)" for the 2012-era device.
  for (const auto& point : BandwidthTrends()) {
    if (point.year == 2012) {
      const double gap = InternalRelative(point) / HostRelative(point);
      EXPECT_NEAR(gap, 10.0, 1.5);
      return;
    }
  }
  FAIL() << "no 2012 point in the trend series";
}

TEST(InterfaceTrendsTest, BaselineNormalization) {
  const auto& first = BandwidthTrends().front();
  EXPECT_NEAR(HostRelative(first), 1.0, 0.01);
}

}  // namespace
}  // namespace smartssd::ssd
