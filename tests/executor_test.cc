#include <gtest/gtest.h>

#include <vector>

#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"
#include "tpch/tpch_gen.h"

namespace smartssd::engine {
namespace {

// Small-but-real workload sizes: enough pages to exercise pipelining,
// small enough to keep the suite fast.
constexpr double kSf = 0.005;  // 30k LINEITEM rows, 1k PART rows
constexpr std::uint64_t kSRows = 20'000;
constexpr std::uint64_t kRRows = 50;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : db_(DatabaseOptions::PaperSmartSsd()) {
    SMARTSSD_CHECK(tpch::LoadLineitem(db_, "lineitem", kSf,
                                      storage::PageLayout::kPax)
                       .ok());
    SMARTSSD_CHECK(
        tpch::LoadPart(db_, "part", kSf, storage::PageLayout::kPax).ok());
    SMARTSSD_CHECK(tpch::LoadSyntheticS(db_, "S", 64, kSRows, kRRows,
                                        storage::PageLayout::kPax)
                       .ok());
    SMARTSSD_CHECK(tpch::LoadSyntheticR(db_, "R", 64, kRRows,
                                        storage::PageLayout::kPax)
                       .ok());
    db_.ResetForColdRun();
  }

  QueryResult Run(const exec::QuerySpec& spec, ExecutionTarget target) {
    db_.ResetForColdRun();
    QueryExecutor executor(&db_);
    auto result = executor.Execute(spec, target);
    SMARTSSD_CHECK(result.ok());
    return std::move(result).value();
  }

  Database db_;
};

// The fundamental correctness property: host execution and in-SSD
// pushdown produce byte-identical results (same kernel, same bytes).
TEST_F(ExecutorTest, HostAndDeviceAgreeOnQ6) {
  const auto host = Run(tpch::Q6Spec("lineitem"), ExecutionTarget::kHost);
  const auto smart =
      Run(tpch::Q6Spec("lineitem"), ExecutionTarget::kSmartSsd);
  EXPECT_EQ(host.rows, smart.rows);
  ASSERT_EQ(host.agg_values.size(), 1u);
  EXPECT_EQ(host.agg_values, smart.agg_values);
  EXPECT_GT(host.agg_values[0], 0);
}

TEST_F(ExecutorTest, HostAndDeviceAgreeOnQ14) {
  const auto host =
      Run(tpch::Q14Spec("lineitem", "part"), ExecutionTarget::kHost);
  const auto smart =
      Run(tpch::Q14Spec("lineitem", "part"), ExecutionTarget::kSmartSsd);
  EXPECT_EQ(host.agg_values, smart.agg_values);
  const double promo = tpch::Q14PromoRevenue(host.agg_values);
  // PROMO leads 1/6 of p_type values. At SF 0.005 the one-month window
  // samples only a few hundred parts, so the band is wide.
  EXPECT_NEAR(promo, 100.0 / 6.0, 7.0);
}

TEST_F(ExecutorTest, HostAndDeviceAgreeOnJoinRows) {
  const auto spec_host = tpch::JoinQuerySpec("S", "R", 0.1);
  const auto host = Run(spec_host, ExecutionTarget::kHost);
  const auto spec_smart = tpch::JoinQuerySpec("S", "R", 0.1);
  const auto smart = Run(spec_smart, ExecutionTarget::kSmartSsd);
  EXPECT_EQ(host.rows, smart.rows);
  EXPECT_GT(host.row_count(), 0u);
  // ~10% of S rows qualify; every FK matches R.
  EXPECT_NEAR(static_cast<double>(host.row_count()), kSRows * 0.1,
              kSRows * 0.02);
}

TEST_F(ExecutorTest, SmartPathIsFasterForSelectiveAggregates) {
  const auto host = Run(tpch::Q6Spec("lineitem"), ExecutionTarget::kHost);
  const auto smart =
      Run(tpch::Q6Spec("lineitem"), ExecutionTarget::kSmartSsd);
  EXPECT_LT(smart.stats.elapsed(), host.stats.elapsed());
}

TEST_F(ExecutorTest, SmartPathMovesFarFewerBytes) {
  const auto host = Run(tpch::Q6Spec("lineitem"), ExecutionTarget::kHost);
  const auto smart =
      Run(tpch::Q6Spec("lineitem"), ExecutionTarget::kSmartSsd);
  // Host pulls the whole table; the device returns one aggregate row
  // plus command traffic.
  EXPECT_GT(host.stats.bytes_over_host_link,
            100 * smart.stats.bytes_over_host_link);
}

TEST_F(ExecutorTest, StatsAreFilledIn) {
  const auto smart =
      Run(tpch::Q6Spec("lineitem"), ExecutionTarget::kSmartSsd);
  EXPECT_EQ(smart.stats.target, ExecutionTarget::kSmartSsd);
  EXPECT_EQ(smart.stats.layout, storage::PageLayout::kPax);
  EXPECT_GT(smart.stats.embedded_cycles, 0u);
  EXPECT_GT(smart.stats.pages_read, 0u);
  EXPECT_GT(smart.stats.session.gets_issued, 0u);
  EXPECT_EQ(smart.stats.counts.tuples, tpch::LineitemRows(kSf));

  const auto host = Run(tpch::Q6Spec("lineitem"), ExecutionTarget::kHost);
  EXPECT_GT(host.stats.host_cycles, 0u);
  EXPECT_EQ(host.stats.embedded_cycles, 0u);
  EXPECT_EQ(host.stats.counts.tuples, tpch::LineitemRows(kSf));
}

TEST_F(ExecutorTest, PushdownRefusedWithDirtyPages) {
  db_.ResetForColdRun();
  // Dirty one page of LINEITEM in the buffer pool.
  auto info = db_.catalog().GetTable("lineitem");
  ASSERT_TRUE(info.ok());
  std::vector<std::byte> page(db_.device().page_size(), std::byte{0});
  ASSERT_TRUE(
      db_.buffer_pool().WritePage((*info)->first_lpn, page, 0).ok());

  QueryExecutor executor(&db_);
  auto result = executor.Execute(tpch::Q6Spec("lineitem"),
                                 ExecutionTarget::kSmartSsd);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);

  // Host execution still works (and sees the dirtied page from the
  // pool).
  auto host = executor.Execute(tpch::Q6Spec("lineitem"),
                               ExecutionTarget::kHost);
  EXPECT_TRUE(host.ok());
  ASSERT_TRUE(db_.buffer_pool().FlushAll(0).ok());
}

TEST_F(ExecutorTest, PushdownOnNonSmartDeviceFails) {
  Database plain(DatabaseOptions::PaperSsd());
  ASSERT_TRUE(tpch::LoadSyntheticS(plain, "S", 8, 100, 10,
                                   storage::PageLayout::kNsm)
                  .ok());
  QueryExecutor executor(&plain);
  auto result = executor.Execute(tpch::ScanQuerySpec("S", 8, 0.5, true),
                                 ExecutionTarget::kSmartSsd);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ExecutorTest, WarmPoolSpeedsUpSecondHostRun) {
  // Use a table smaller than the pool so it fully caches.
  ASSERT_TRUE(tpch::LoadSyntheticS(db_, "tiny", 8, 5000, 10,
                                   storage::PageLayout::kPax)
                  .ok());
  db_.ResetForColdRun();
  QueryExecutor executor(&db_);
  const auto spec = [] {
    return tpch::ScanQuerySpec("tiny", 8, 0.5, true);
  };
  auto cold = executor.Execute(spec(), ExecutionTarget::kHost, 0);
  ASSERT_TRUE(cold.ok());
  auto warm =
      executor.Execute(spec(), ExecutionTarget::kHost, cold->stats.end);
  ASSERT_TRUE(warm.ok());
  EXPECT_LT(warm->stats.elapsed(), cold->stats.elapsed());
  EXPECT_EQ(warm->agg_values, cold->agg_values);
}

TEST_F(ExecutorTest, HddDatabaseRunsHostPath) {
  Database hdd(DatabaseOptions::PaperHdd());
  ASSERT_TRUE(tpch::LoadLineitem(hdd, "lineitem", kSf,
                                 storage::PageLayout::kNsm)
                  .ok());
  hdd.ResetForColdRun();
  QueryExecutor executor(&hdd);
  auto result =
      executor.Execute(tpch::Q6Spec("lineitem"), ExecutionTarget::kHost);
  ASSERT_TRUE(result.ok());

  // Same answer as the SSD-resident copy.
  const auto ssd_result =
      Run(tpch::Q6Spec("lineitem"), ExecutionTarget::kHost);
  EXPECT_EQ(result->agg_values, ssd_result.agg_values);
  // And much slower: ~82 MB/s vs ~550 MB/s.
  EXPECT_GT(result->stats.elapsed(), 4 * ssd_result.stats.elapsed());
}

}  // namespace
}  // namespace smartssd::engine
