#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "smart/program.h"
#include "smart/result_queue.h"
#include "smart/runtime.h"
#include "ssd/ssd_device.h"

namespace smartssd::smart {
namespace {

ssd::SsdConfig TestConfig() {
  ssd::SsdConfig config = ssd::SsdConfig::PaperSmartSsd();
  config.geometry.blocks_per_chip = 32;
  return config;
}

// A deliberately simple program: sums the first byte of every input
// page, emits one byte per page, and a 8-byte total at Finish. Exercises
// the whole OPEN/GET/CLOSE machinery without the query stack.
class ByteSumProgram final : public InSsdProgram {
 public:
  ByteSumProgram(std::uint64_t first_lpn, std::uint64_t pages,
                 std::uint64_t cycles_per_page, std::uint64_t dram_bytes = 0)
      : first_lpn_(first_lpn),
        pages_(pages),
        cycles_per_page_(cycles_per_page),
        dram_bytes_(dram_bytes) {}

  std::string_view name() const override { return "byte_sum"; }

  Result<SimTime> Open(DeviceServices& device, SimTime ready) override {
    open_calls_++;
    if (extra_dram_ > 0) {
      SMARTSSD_RETURN_IF_ERROR(device.AllocateDram(extra_dram_));
    }
    return ready;
  }

  std::vector<LpnRange> InputExtents() const override {
    return {{first_lpn_, pages_}};
  }

  Result<ProgramCharge> ProcessPage(std::span<const std::byte> page,
                                    ResultSink& sink) override {
    const std::uint8_t b =
        page.empty() ? 0 : static_cast<std::uint8_t>(page[0]);
    total_ += b;
    const std::byte out{b};
    sink.Emit({&out, 1});
    return ProgramCharge{.cycles = cycles_per_page_};
  }

  Result<ProgramCharge> Finish(ResultSink& sink) override {
    const std::byte* p = reinterpret_cast<const std::byte*>(&total_);
    sink.Emit({p, sizeof(total_)});
    return ProgramCharge{.cycles = 10};
  }

  std::uint64_t DramBytesRequired() const override { return dram_bytes_; }

  std::uint64_t total() const { return total_; }
  int open_calls() const { return open_calls_; }
  void set_extra_dram(std::uint64_t bytes) { extra_dram_ = bytes; }

 private:
  std::uint64_t first_lpn_;
  std::uint64_t pages_;
  std::uint64_t cycles_per_page_;
  std::uint64_t dram_bytes_;
  std::uint64_t extra_dram_ = 0;
  std::uint64_t total_ = 0;
  int open_calls_ = 0;
};

class SmartRuntimeTest : public ::testing::Test {
 protected:
  SmartRuntimeTest() : device_(TestConfig()), runtime_(&device_) {}

  void Preload(std::uint64_t pages, std::uint8_t tag) {
    std::vector<std::byte> page(device_.page_size(), std::byte{tag});
    SimTime t = 0;
    for (std::uint64_t lpn = 0; lpn < pages; ++lpn) {
      page[0] = static_cast<std::byte>(tag + lpn);
      auto done = device_.WritePages(
          lpn, 1, std::span<const std::byte>(page), t);
      ASSERT_TRUE(done.ok());
      t = done.value();
    }
    device_.ResetTiming();
  }

  ssd::SsdDevice device_;
  SmartSsdRuntime runtime_;
};

TEST_F(SmartRuntimeTest, SessionDeliversAllResults) {
  constexpr std::uint64_t kPages = 100;
  Preload(kPages, 3);
  ByteSumProgram program(0, kPages, 500);
  std::vector<std::byte> output;
  auto stats = runtime_.RunSession(program, PollingPolicy{}, 0, &output);
  ASSERT_TRUE(stats.ok());

  // One byte per page + the 8-byte total.
  ASSERT_EQ(output.size(), kPages + 8);
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < kPages; ++i) {
    const std::uint8_t b = static_cast<std::uint8_t>(3 + i);
    EXPECT_EQ(output[i], std::byte{b});
    expected += b;
  }
  std::uint64_t delivered_total;
  std::memcpy(&delivered_total, output.data() + kPages, 8);
  EXPECT_EQ(delivered_total, expected);
  EXPECT_EQ(program.total(), expected);
}

TEST_F(SmartRuntimeTest, TimelineIsOrdered) {
  constexpr std::uint64_t kPages = 64;
  Preload(kPages, 1);
  ByteSumProgram program(0, kPages, 1000);
  auto stats = runtime_.RunSession(program, PollingPolicy{}, 1000, nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->open_issued, 1000u);
  EXPECT_LE(stats->open_issued, stats->open_done);
  EXPECT_LE(stats->open_done, stats->processing_done);
  EXPECT_LE(stats->processing_done, stats->last_transfer_done);
  EXPECT_LE(stats->last_transfer_done, stats->close_done);
  EXPECT_EQ(stats->pages_processed, kPages);
  EXPECT_EQ(stats->result_bytes, kPages + 8);
  EXPECT_GE(stats->gets_issued, 1u);
  EXPECT_EQ(stats->embedded_cycles, kPages * 1000 + 10);
}

TEST_F(SmartRuntimeTest, CpuBoundSessionScalesWithCycles) {
  constexpr std::uint64_t kPages = 256;
  Preload(kPages, 0);
  ByteSumProgram cheap(0, kPages, 100);
  ByteSumProgram expensive(0, kPages, 1'000'000);
  auto cheap_stats =
      runtime_.RunSession(cheap, PollingPolicy{}, 0, nullptr);
  device_.ResetTiming();
  auto expensive_stats =
      runtime_.RunSession(expensive, PollingPolicy{}, 0, nullptr);
  ASSERT_TRUE(cheap_stats.ok());
  ASSERT_TRUE(expensive_stats.ok());
  // 256 pages x 1M cycles / (3 cores x 400 MHz) ~ 213 ms.
  EXPECT_GT(expensive_stats->elapsed(), 10 * cheap_stats->elapsed());
  EXPECT_NEAR(ToSeconds(expensive_stats->elapsed()), 0.213, 0.03);
}

TEST_F(SmartRuntimeTest, IoBoundSessionTracksInternalBandwidth) {
  constexpr std::uint64_t kPages = 2048;
  Preload(kPages, 0);
  ByteSumProgram program(0, kPages, 1);  // negligible CPU
  auto stats = runtime_.RunSession(program, PollingPolicy{}, 0, nullptr);
  ASSERT_TRUE(stats.ok());
  const double seconds = ToSeconds(stats->elapsed());
  const double bytes = static_cast<double>(kPages) * device_.page_size();
  // Should run near the 1,560 MB/s internal rate, not the 550 MB/s link.
  EXPECT_NEAR(bytes / seconds / 1e6, 1560.0, 120.0);
}

TEST_F(SmartRuntimeTest, DramGrantEnforced) {
  Preload(4, 0);
  ByteSumProgram program(0, 4, 10,
                         /*dram_bytes=*/device_.device_dram_free() + 1);
  auto stats = runtime_.RunSession(program, PollingPolicy{}, 0, nullptr);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(SmartRuntimeTest, DramReleasedAtClose) {
  Preload(4, 0);
  const std::uint64_t free_before = device_.device_dram_free();
  ByteSumProgram program(0, 4, 10, /*dram_bytes=*/1024 * 1024);
  auto stats = runtime_.RunSession(program, PollingPolicy{}, 0, nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(device_.device_dram_free(), free_before);
}

TEST_F(SmartRuntimeTest, SessionIdsIncrease) {
  Preload(2, 0);
  ByteSumProgram a(0, 2, 10);
  ByteSumProgram b(0, 2, 10);
  auto s1 = runtime_.RunSession(a, PollingPolicy{}, 0, nullptr);
  auto s2 = runtime_.RunSession(b, PollingPolicy{}, s1->close_done, nullptr);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_LT(s1->session_id, s2->session_id);
}

// --- ResultQueue unit tests ---

TEST(ResultQueueTest, ChunksAtChunkSize) {
  ResultQueue queue(8);
  std::vector<std::byte> data(20, std::byte{1});
  queue.Append(data, 100);
  // 20 bytes -> two sealed 8-byte chunks + 4 open bytes.
  EXPECT_EQ(queue.pending_chunks(), 2u);
  queue.Flush(150);
  EXPECT_EQ(queue.pending_chunks(), 3u);
  ResultChunk chunk;
  ASSERT_TRUE(queue.PopReady(200, &chunk));
  EXPECT_EQ(chunk.data.size(), 8u);
  EXPECT_EQ(chunk.ready_time, 100u);
  ASSERT_TRUE(queue.PopReady(200, &chunk));
  ASSERT_TRUE(queue.PopReady(200, &chunk));
  EXPECT_EQ(chunk.data.size(), 4u);
  EXPECT_EQ(chunk.ready_time, 150u);
  EXPECT_FALSE(queue.PopReady(200, &chunk));
}

TEST(ResultQueueTest, ReadinessGatesPop) {
  ResultQueue queue(4);
  std::vector<std::byte> data(4, std::byte{2});
  queue.Append(data, 500);
  ResultChunk chunk;
  EXPECT_FALSE(queue.PopReady(499, &chunk));
  EXPECT_TRUE(queue.PopReady(500, &chunk));
}

TEST(ResultQueueTest, TotalBytesTracked) {
  ResultQueue queue(16);
  std::vector<std::byte> data(10, std::byte{3});
  queue.Append(data, 1);
  queue.Append(data, 2);
  EXPECT_EQ(queue.total_bytes(), 20u);
}

}  // namespace
}  // namespace smartssd::smart
