// Placement policies and split-scan execution. The split identity tests
// pin the refactor's core contract: a scan fragmented across host and
// device must reproduce the monolithic run's rows, aggregates, AND
// OpCounts byte-for-byte, on both layouts. The determinism test pins
// the adaptive router: a fixed arrival trace yields byte-identical
// routing decisions and results run-to-run. The breaker test pins
// satellite exclusion: an open breaker keeps the device out of
// adaptive/split placement up front, with zero device attempts.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/executor.h"
#include "engine/placement.h"
#include "engine/query_task.h"
#include "engine/workload.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"
#include "tpch/tpch_gen.h"

namespace smartssd {
namespace {

using engine::Database;
using engine::DatabaseOptions;
using engine::ExecutionTarget;
using engine::PlacementPolicyKind;
using engine::QueryExecutor;
using engine::QueryResult;
using engine::WorkloadOptions;
using engine::WorkloadQueryConfig;
using engine::WorkloadScheduler;

constexpr double kSf = 0.005;  // ~30k LINEITEM rows: fast but multi-page

void Load(Database& db, storage::PageLayout layout) {
  SMARTSSD_CHECK(tpch::LoadLineitem(db, "lineitem", kSf, layout).ok());
  SMARTSSD_CHECK(
      tpch::LoadSyntheticS(db, "S", 8, 20'000, 1'000, layout).ok());
  db.ResetForColdRun();
}

QueryResult RunPinned(Database& db, const exec::QuerySpec& spec,
                ExecutionTarget target) {
  db.ResetForColdRun();
  QueryExecutor executor(&db);
  auto result = executor.Execute(spec, target, 0);
  SMARTSSD_CHECK(result.ok());
  return std::move(result).value();
}

QueryResult RunAuto(Database& db, const exec::QuerySpec& spec,
                    PlacementPolicyKind policy) {
  db.ResetForColdRun();
  db.set_placement(policy);
  QueryExecutor executor(&db);
  auto result = executor.ExecuteAuto(spec);
  SMARTSSD_CHECK(result.ok());
  return std::move(result).value();
}

void ExpectIdentical(const QueryResult& expected, const QueryResult& got,
                     const std::string& what) {
  EXPECT_EQ(expected.rows, got.rows) << what << ": rows diverged";
  EXPECT_EQ(expected.agg_values, got.agg_values)
      << what << ": aggregates diverged";
  EXPECT_TRUE(expected.stats.counts == got.stats.counts)
      << what << ": OpCounts diverged (pages " << expected.stats.counts.pages
      << " vs " << got.stats.counts.pages << ", tuples "
      << expected.stats.counts.tuples << " vs " << got.stats.counts.tuples
      << ", output_tuples " << expected.stats.counts.output_tuples << " vs "
      << got.stats.counts.output_tuples << ")";
}

// Scan shapes that are split-eligible: scalar aggregate, GROUP BY, and
// plain projection (no join, no top-N).
std::vector<exec::QuerySpec> SplittableSpecs() {
  std::vector<exec::QuerySpec> specs;
  specs.push_back(tpch::Q6Spec("lineitem"));
  specs.push_back(tpch::Q1Spec("lineitem"));
  specs.push_back(tpch::ScanQuerySpec("S", 8, 0.10,
                                      /*aggregate=*/false,
                                      /*projected_columns=*/2));
  return specs;
}

class SplitIdentityTest
    : public ::testing::TestWithParam<storage::PageLayout> {};

// The tentpole contract: a split scan's merged result — rows,
// aggregates, and total OpCounts — equals both monolithic paths, on
// both layouts, across the split-eligible query shapes.
TEST_P(SplitIdentityTest, SplitMatchesMonolithicHostAndDevice) {
  Database db(DatabaseOptions::PaperSmartSsd());
  Load(db, GetParam());
  for (const exec::QuerySpec& spec : SplittableSpecs()) {
    const QueryResult host= RunPinned(db, spec, ExecutionTarget::kHost);
    const QueryResult device= RunPinned(db, spec, ExecutionTarget::kSmartSsd);
    const QueryResult split = RunAuto(db, spec, PlacementPolicyKind::kSplit);

    ASSERT_TRUE(split.stats.split_scan) << spec.name;
    EXPECT_GE(split.stats.fragments, 2u) << spec.name;
    EXPECT_EQ(split.stats.target, ExecutionTarget::kSmartSsd) << spec.name;
    ExpectIdentical(host, split, spec.name + " split-vs-host");
    ExpectIdentical(device, split, spec.name + " split-vs-device");
    // The two sides partition the scan: together they read exactly the
    // monolithic page set.
    EXPECT_EQ(split.stats.pages_read + split.stats.pages_skipped,
              host.stats.pages_read + host.stats.pages_skipped)
        << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, SplitIdentityTest,
                         ::testing::Values(storage::PageLayout::kNsm,
                                           storage::PageLayout::kPax));

// Ineligible shapes (joins, top-N) must still execute under the split
// policy — the decision falls back to whole-query cost-model routing.
TEST(SplitEligibility, IneligibleSpecsFallBackToWholeQueryRouting) {
  Database db(DatabaseOptions::PaperSmartSsd());
  SMARTSSD_CHECK(
      tpch::LoadLineitem(db, "lineitem", kSf, storage::PageLayout::kNsm)
          .ok());
  SMARTSSD_CHECK(
      tpch::LoadPart(db, "part", kSf, storage::PageLayout::kNsm).ok());
  SMARTSSD_CHECK(tpch::LoadSyntheticS(db, "S", 8, 20'000, 1'000,
                                      storage::PageLayout::kNsm)
                     .ok());
  db.ResetForColdRun();

  const exec::QuerySpec join = tpch::Q14Spec("lineitem", "part");
  const exec::QuerySpec topn = tpch::TopNQuerySpec("S", 8, 0.10, 10);
  for (const exec::QuerySpec* spec : {&join, &topn}) {
    const QueryResult host = RunPinned(db, *spec, ExecutionTarget::kHost);
    const QueryResult routed =
        RunAuto(db, *spec, PlacementPolicyKind::kSplit);
    EXPECT_FALSE(routed.stats.split_scan) << spec->name;
    EXPECT_EQ(host.rows, routed.rows) << spec->name;
    EXPECT_EQ(host.agg_values, routed.agg_values) << spec->name;
  }
}

// Static policies pin the side regardless of estimates.
TEST(StaticPolicies, PinTheirSide) {
  Database db(DatabaseOptions::PaperSmartSsd());
  Load(db, storage::PageLayout::kNsm);
  const exec::QuerySpec spec = tpch::Q6Spec("lineitem");

  const QueryResult host =
      RunAuto(db, spec, PlacementPolicyKind::kStaticHost);
  EXPECT_EQ(host.stats.target, ExecutionTarget::kHost);
  EXPECT_FALSE(host.stats.split_scan);

  const QueryResult device =
      RunAuto(db, spec, PlacementPolicyKind::kStaticDevice);
  EXPECT_EQ(device.stats.target, ExecutionTarget::kSmartSsd);
  EXPECT_EQ(host.rows, device.rows);
  EXPECT_EQ(host.agg_values, device.agg_values);
}

// The adaptive router is deterministic: two identical databases driven
// by the same arrival trace produce byte-identical completion records —
// same routing decisions (target, split flags), same virtual end times,
// same result bytes.
TEST(AdaptiveDeterminism, FixedTraceYieldsIdenticalRoutingAndResults) {
  DatabaseOptions options = DatabaseOptions::PaperSmartSsd();
  options.placement = PlacementPolicyKind::kAdaptive;

  auto run_trace = [&options]() {
    Database db(options);
    Load(db, storage::PageLayout::kPax);
    WorkloadOptions wl;
    wl.max_in_flight = 2;  // small pool: arrivals queue, backlog splits
    WorkloadScheduler sched(&db, wl);
    WorkloadQueryConfig config;
    config.client = "trace";
    config.spec = tpch::Q6Spec("lineitem");
    config.target = std::nullopt;  // policy decides
    // 12 arrivals at a gap far below per-query latency: the admission
    // queue grows, so the adaptive policy sees real backlog signals.
    sched.AddOpenLoopClient(std::move(config), 12,
                            /*inter_arrival=*/1'000'000);
    auto records = sched.Run();
    SMARTSSD_CHECK(records.ok());
    return std::move(records).value();
  };

  const auto first = run_trace();
  const auto second = run_trace();
  ASSERT_EQ(first.size(), second.size());
  ASSERT_EQ(first.size(), 12u);
  bool any_split = false;
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_EQ(first[i].admitted, second[i].admitted);
    EXPECT_EQ(first[i].end, second[i].end);
    ASSERT_TRUE(first[i].result.ok());
    ASSERT_TRUE(second[i].result.ok());
    const QueryResult& a = first[i].result.value();
    const QueryResult& b = second[i].result.value();
    EXPECT_EQ(a.stats.target, b.stats.target);
    EXPECT_EQ(a.stats.split_scan, b.stats.split_scan);
    EXPECT_EQ(a.stats.fragments, b.stats.fragments);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.agg_values, b.agg_values);
    any_split |= a.stats.split_scan;
  }
  // The trace was built to back up the admission queue; if no query ever
  // split, the backlog signal never reached the router and this test
  // pins nothing.
  EXPECT_TRUE(any_split);
}

// An open breaker excludes the device from adaptive and split placement
// up front: the query routes to the host at decision time, never
// attempting (and never falling back from) a device dispatch.
TEST(BreakerExclusion, OpenBreakerRoutesHostUpFrontWithoutDispatch) {
  Database db(DatabaseOptions::PaperSmartSsd());
  Load(db, storage::PageLayout::kNsm);
  const exec::QuerySpec spec = tpch::Q6Spec("lineitem");
  const QueryResult healthy= RunPinned(db, spec, ExecutionTarget::kHost);

  for (const PlacementPolicyKind policy :
       {PlacementPolicyKind::kAdaptive, PlacementPolicyKind::kSplit}) {
    engine::DeviceCircuitBreaker& breaker = db.circuit_breaker();
    breaker.Reset();
    for (std::uint32_t i = 0; i < breaker.config().failure_threshold; ++i) {
      breaker.RecordFailure(0, "pretrip");
    }
    ASSERT_EQ(breaker.state(),
              engine::DeviceCircuitBreaker::State::kOpen);

    const QueryResult routed = RunAuto(db, spec, policy);
    EXPECT_EQ(routed.stats.target, ExecutionTarget::kHost)
        << engine::PlacementPolicyName(policy);
    EXPECT_FALSE(routed.stats.split_scan);
    EXPECT_FALSE(routed.stats.fell_back);
    EXPECT_EQ(routed.stats.device_attempts, 0u);
    EXPECT_EQ(healthy.rows, routed.rows);
    EXPECT_EQ(healthy.agg_values, routed.agg_values);
    breaker.Reset();
  }
}

// DecidePlacement itself, on the signal boundary: an idle scheduler
// (no queue) keeps the device whole; a backlogged one splits.
TEST(AdaptiveSignals, BacklogSplitsIdleStaysWhole) {
  Database db(DatabaseOptions::PaperSmartSsd());
  Load(db, storage::PageLayout::kNsm);
  const exec::QuerySpec spec = tpch::Q6Spec("lineitem");
  const auto bound = exec::Bind(spec, db.catalog());
  ASSERT_TRUE(bound.ok());

  struct FixedSignals : engine::SignalSource {
    engine::LiveSignals live;
    engine::LiveSignals Signals() const override { return live; }
  };

  FixedSignals idle;
  auto whole = engine::DecidePlacement(&db, *bound, {},
                                       PlacementPolicyKind::kAdaptive, 0,
                                       &idle);
  ASSERT_TRUE(whole.ok());
  EXPECT_FALSE(whole->split);
  EXPECT_EQ(whole->target, ExecutionTarget::kSmartSsd);

  FixedSignals backlog;
  backlog.live.queue_depth = 4;
  auto split = engine::DecidePlacement(&db, *bound, {},
                                       PlacementPolicyKind::kAdaptive, 0,
                                       &backlog);
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(split->split);
  ASSERT_EQ(split->fragments.size(), 2u);
  EXPECT_EQ(split->fragments[0].target, ExecutionTarget::kHost);
  EXPECT_EQ(split->fragments[1].target, ExecutionTarget::kSmartSsd);
  // Fragments partition the outer table in page order.
  EXPECT_EQ(split->fragments[0].first_page, 0u);
  EXPECT_EQ(split->fragments[0].first_page + split->fragments[0].page_count,
            split->fragments[1].first_page);
  EXPECT_EQ(split->fragments[1].first_page + split->fragments[1].page_count,
            bound->outer->page_count);
}

}  // namespace
}  // namespace smartssd
