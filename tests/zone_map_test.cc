// Zone maps: per-page min/max statistics, predicate range extraction,
// and pruning correctness on both execution paths.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/executor.h"
#include "exec/predicate_range.h"
#include "storage/zone_map.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"

namespace smartssd {
namespace {

namespace ex = ::smartssd::expr;
using engine::Database;
using engine::DatabaseOptions;
using engine::ExecutionTarget;
using engine::QueryExecutor;

// --- Predicate range extraction ---

TEST(PredicateRangeTest, SingleComparisons) {
  {
    const auto pred = ex::Lt(ex::Col(2), ex::Lit(100));
    const auto ranges = exec::ExtractColumnRanges(pred.get());
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges.at(2).hi, 99);
  }
  {
    const auto pred = ex::Ge(ex::Col(0), ex::Lit(-5));
    const auto ranges = exec::ExtractColumnRanges(pred.get());
    EXPECT_EQ(ranges.at(0).lo, -5);
  }
  {
    const auto pred = ex::Eq(ex::Col(1), ex::Lit(7));
    const auto ranges = exec::ExtractColumnRanges(pred.get());
    EXPECT_EQ(ranges.at(1).lo, 7);
    EXPECT_EQ(ranges.at(1).hi, 7);
  }
}

TEST(PredicateRangeTest, LiteralOnLeftIsNormalized) {
  // 100 > col  <=>  col < 100.
  const auto pred =
      ex::Compare(ex::CompareOp::kGt, ex::Lit(100), ex::Col(3));
  const auto ranges = exec::ExtractColumnRanges(pred.get());
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges.at(3).hi, 99);
}

TEST(PredicateRangeTest, ConjunctionIntersects) {
  std::vector<ex::ExprPtr> conjuncts;
  conjuncts.push_back(ex::Ge(ex::Col(10), ex::Lit(731)));
  conjuncts.push_back(ex::Lt(ex::Col(10), ex::Lit(1096)));
  conjuncts.push_back(ex::Gt(ex::Col(6), ex::Lit(5)));
  const auto pred = ex::And(std::move(conjuncts));
  const auto ranges = exec::ExtractColumnRanges(pred.get());
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges.at(10).lo, 731);
  EXPECT_EQ(ranges.at(10).hi, 1095);
  EXPECT_EQ(ranges.at(6).lo, 6);
}

TEST(PredicateRangeTest, NonRangeShapesAreIgnored) {
  EXPECT_TRUE(exec::ExtractColumnRanges(nullptr).empty());
  // OR cannot prune.
  std::vector<ex::ExprPtr> disjuncts;
  disjuncts.push_back(ex::Lt(ex::Col(0), ex::Lit(5)));
  disjuncts.push_back(ex::Gt(ex::Col(0), ex::Lit(50)));
  const auto pred = ex::Or(std::move(disjuncts));
  EXPECT_TRUE(exec::ExtractColumnRanges(pred.get()).empty());
  // Column-to-column comparison cannot prune.
  const auto colcol = ex::Lt(ex::Col(0), ex::Col(1));
  EXPECT_TRUE(exec::ExtractColumnRanges(colcol.get()).empty());
  // NE does not narrow.
  const auto ne = ex::Compare(ex::CompareOp::kNe, ex::Col(0), ex::Lit(3));
  const auto ranges = exec::ExtractColumnRanges(ne.get());
  EXPECT_EQ(ranges.at(0).lo, std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(ranges.at(0).hi, std::numeric_limits<std::int64_t>::max());
}

// --- ZoneMap on real tables ---

class ZoneMapTest : public ::testing::Test {
 protected:
  ZoneMapTest() : db_(DatabaseOptions::PaperSmartSsd()) {
    // A clustered table: Col_1 = row+1 is monotonically increasing, so
    // pages are perfectly separable on it; Col_3 is random.
    SMARTSSD_CHECK(tpch::LoadSyntheticS(db_, "T", 8, 50'000, 100,
                                        storage::PageLayout::kPax)
                       .ok());
    SMARTSSD_CHECK(db_.BuildZoneMap("T").ok());
    db_.ResetForColdRun();
  }

  Database db_;
};

TEST_F(ZoneMapTest, TracksIntegerColumnsOnly) {
  const storage::ZoneMap* map = db_.zone_map("T");
  ASSERT_NE(map, nullptr);
  EXPECT_TRUE(map->TracksColumn(0));
  EXPECT_TRUE(map->TracksColumn(7));
  EXPECT_FALSE(map->TracksColumn(8));   // out of schema
  EXPECT_FALSE(map->TracksColumn(-1));
  EXPECT_GT(map->memory_bytes(), 0u);
}

TEST_F(ZoneMapTest, PageRangesCoverClusteredColumn) {
  const storage::ZoneMap* map = db_.zone_map("T");
  auto info = db_.catalog().GetTable("T");
  ASSERT_TRUE(info.ok());
  // Col_1 is row+1: page p spans exactly its row range.
  std::int64_t prev_max = 0;
  for (std::uint64_t p = 0; p < map->pages(); ++p) {
    auto range = map->PageRange(p, 0);
    ASSERT_TRUE(range.ok());
    EXPECT_EQ(range->min, prev_max + 1);
    EXPECT_GE(range->max, range->min);
    prev_max = range->max;
  }
  EXPECT_EQ(prev_max, 50'000);
}

TEST_F(ZoneMapTest, MayMatchIsSound) {
  const storage::ZoneMap* map = db_.zone_map("T");
  // Page 0 holds Col_1 in [1, ~capacity]; values beyond cannot match.
  EXPECT_TRUE(map->PageMayMatch(0, 0, 1, 10));
  EXPECT_FALSE(map->PageMayMatch(0, 0, 40'000, 50'000));
  // Untracked columns always may match.
  EXPECT_TRUE(map->PageMayMatch(0, 99, 0, 0));
}

// Results with pruning must equal results without, on both paths.
TEST_F(ZoneMapTest, PrunedResultsAreExact) {
  // Predicate on the clustered column: SUM over Col_1 < 5000 (first
  // ~10% of rows).
  exec::QuerySpec pruned_spec;
  pruned_spec.name = "clustered_scan";
  pruned_spec.table = "T";
  pruned_spec.predicate = ex::Lt(ex::Col(0), ex::Lit(5000));
  pruned_spec.aggregates.push_back(
      {exec::AggSpec::Fn::kSum, ex::Col(2), "s"});
  pruned_spec.aggregates.push_back(
      {exec::AggSpec::Fn::kCount, nullptr, "c"});

  Database no_map_db(DatabaseOptions::PaperSmartSsd());
  SMARTSSD_CHECK(tpch::LoadSyntheticS(no_map_db, "T", 8, 50'000, 100,
                                      storage::PageLayout::kPax)
                     .ok());
  no_map_db.ResetForColdRun();

  for (const auto target :
       {ExecutionTarget::kHost, ExecutionTarget::kSmartSsd}) {
    db_.ResetForColdRun();
    QueryExecutor pruned_exec(&db_);
    auto pruned = pruned_exec.Execute(pruned_spec, target);
    ASSERT_TRUE(pruned.ok());

    no_map_db.ResetForColdRun();
    QueryExecutor plain_exec(&no_map_db);
    auto plain = plain_exec.Execute(pruned_spec, target);
    ASSERT_TRUE(plain.ok());

    EXPECT_EQ(pruned->agg_values, plain->agg_values);
    // ~90% of pages skipped on the clustered predicate.
    EXPECT_GT(pruned->stats.pages_skipped,
              pruned->stats.pages_read * 5);
    EXPECT_EQ(plain->stats.pages_skipped, 0u);
    // And it is faster.
    EXPECT_LT(pruned->stats.elapsed(), plain->stats.elapsed());
  }
}

TEST_F(ZoneMapTest, RandomColumnPredicateSkipsNothing) {
  // Col_3 is uniform per page, so every page may match: pruning is a
  // no-op but results stay exact.
  const auto spec = tpch::ScanQuerySpec("T", 8, 0.3, true);
  db_.ResetForColdRun();
  QueryExecutor executor(&db_);
  auto result = executor.Execute(spec, ExecutionTarget::kSmartSsd);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.pages_skipped, 0u);
}

TEST_F(ZoneMapTest, ImpossiblePredicateSkipsEverything) {
  exec::QuerySpec spec;
  spec.table = "T";
  spec.predicate = ex::Gt(ex::Col(0), ex::Lit(1'000'000));  // > max key
  spec.aggregates.push_back({exec::AggSpec::Fn::kCount, nullptr, "c"});
  db_.ResetForColdRun();
  QueryExecutor executor(&db_);
  auto result = executor.Execute(spec, ExecutionTarget::kHost);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->agg_values[1 - 1], 0);
  EXPECT_EQ(result->stats.pages_read, 0u);
  EXPECT_GT(result->stats.pages_skipped, 0u);
}

}  // namespace
}  // namespace smartssd
