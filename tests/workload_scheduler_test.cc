// WorkloadScheduler end-to-end: interleaved queries must keep every
// correctness property the blocking executor has (byte-identical
// results, deterministic virtual timelines, clean fault fallback) while
// actually overlapping on the simulated resources — the pair-span and
// grant-parking tests pin the concurrency down.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/executor.h"
#include "engine/workload.h"
#include "sim/fault_injector.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

namespace smartssd {
namespace {

using engine::CompletedQuery;
using engine::ExecutionTarget;
using engine::WorkloadOptions;
using engine::WorkloadQueryConfig;
using engine::WorkloadScheduler;

constexpr double kSf = 0.005;  // ~30k LINEITEM rows: fast but multi-page

WorkloadQueryConfig Q6On(const std::string& table, ExecutionTarget target,
                         const std::string& client) {
  WorkloadQueryConfig config;
  config.client = client;
  config.spec = tpch::Q6Spec(table);
  config.target = target;
  return config;
}

void Load(engine::Database& db,
          storage::PageLayout layout = storage::PageLayout::kPax) {
  SMARTSSD_CHECK(tpch::LoadLineitem(db, "lineitem_a", kSf, layout).ok());
  SMARTSSD_CHECK(tpch::LoadLineitem(db, "lineitem_b", kSf, layout).ok());
  db.ResetForColdRun();
}

class WorkloadSchedulerTest : public ::testing::Test {
 protected:
  WorkloadSchedulerTest() : db_(engine::DatabaseOptions::PaperSmartSsd()) {
    Load(db_);
  }

  engine::QueryResult Solo(const std::string& table,
                           ExecutionTarget target) {
    db_.ResetForColdRun();
    engine::QueryExecutor executor(&db_);
    auto result = executor.Execute(tpch::Q6Spec(table), target, 0);
    SMARTSSD_CHECK(result.ok());
    return std::move(result).value();
  }

  std::vector<CompletedQuery> RunPair(ExecutionTarget target,
                                      const WorkloadOptions& options = {}) {
    db_.ResetForColdRun();
    WorkloadScheduler sched(&db_, options);
    sched.Submit(Q6On("lineitem_a", target, "a"), 0);
    sched.Submit(Q6On("lineitem_b", target, "b"), 0);
    auto records = sched.Run();
    SMARTSSD_CHECK(records.ok());
    return std::move(records).value();
  }

  engine::Database db_;
};

// A single query through the scheduler must reproduce the blocking
// executor's virtual timeline exactly — same end time, same results.
TEST_F(WorkloadSchedulerTest, SingleQueryMatchesExecutorExactly) {
  for (const ExecutionTarget target :
       {ExecutionTarget::kHost, ExecutionTarget::kSmartSsd}) {
    SCOPED_TRACE(engine::ExecutionTargetName(target));
    const engine::QueryResult solo = Solo("lineitem_a", target);

    db_.ResetForColdRun();
    WorkloadScheduler sched(&db_);
    sched.Submit(Q6On("lineitem_a", target, "only"), 0);
    auto records = sched.Run();
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records->size(), 1u);
    const CompletedQuery& r = records->front();
    ASSERT_TRUE(r.result.ok());
    EXPECT_EQ(r.end, solo.stats.end);
    EXPECT_EQ(r.result.value().stats.end, solo.stats.end);
    EXPECT_EQ(r.result.value().rows, solo.rows);
    EXPECT_EQ(r.result.value().agg_values, solo.agg_values);
    EXPECT_EQ(r.queue_wait(), 0);
  }
}

// Same submissions on a fresh database -> byte-identical completion
// records: the event queue's FIFO tie-break makes the whole interleaving
// a pure function of the workload definition.
TEST_F(WorkloadSchedulerTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    engine::Database db(engine::DatabaseOptions::PaperSmartSsd());
    Load(db);
    WorkloadScheduler sched(&db);
    sched.Submit(Q6On("lineitem_a", ExecutionTarget::kSmartSsd, "s1"), 0);
    sched.Submit(Q6On("lineitem_b", ExecutionTarget::kSmartSsd, "s2"), 0);
    sched.Submit(Q6On("lineitem_a", ExecutionTarget::kHost, "h1"), 0);
    auto records = sched.Run();
    SMARTSSD_CHECK(records.ok());
    return std::move(records).value();
  };
  const std::vector<CompletedQuery> first = run_once();
  const std::vector<CompletedQuery> second = run_once();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_EQ(first[i].client, second[i].client);
    EXPECT_EQ(first[i].arrival, second[i].arrival);
    EXPECT_EQ(first[i].admitted, second[i].admitted);
    EXPECT_EQ(first[i].end, second[i].end);
    ASSERT_TRUE(first[i].result.ok());
    ASSERT_TRUE(second[i].result.ok());
    EXPECT_EQ(first[i].result.value().rows, second[i].result.value().rows);
    EXPECT_EQ(first[i].result.value().agg_values,
              second[i].result.value().agg_values);
    EXPECT_EQ(first[i].result.value().stats.end,
              second[i].result.value().stats.end);
  }
}

// Co-running queries return exactly what they return solo — across both
// page layouts and both execution paths.
TEST(WorkloadResultIdentityTest, ConcurrentMatchesSoloAcrossConfigs) {
  for (const storage::PageLayout layout :
       {storage::PageLayout::kNsm, storage::PageLayout::kPax}) {
    for (const ExecutionTarget target :
         {ExecutionTarget::kHost, ExecutionTarget::kSmartSsd}) {
      SCOPED_TRACE(static_cast<int>(layout));
      SCOPED_TRACE(engine::ExecutionTargetName(target));
      engine::Database db(engine::DatabaseOptions::PaperSmartSsd());
      Load(db, layout);

      engine::QueryExecutor executor(&db);
      auto solo = executor.Execute(tpch::Q6Spec("lineitem_a"), target, 0);
      ASSERT_TRUE(solo.ok());

      db.ResetForColdRun();
      WorkloadScheduler sched(&db);
      sched.Submit(Q6On("lineitem_a", target, "a"), 0);
      sched.Submit(Q6On("lineitem_b", target, "b"), 0);
      auto records = sched.Run();
      ASSERT_TRUE(records.ok());
      ASSERT_EQ(records->size(), 2u);
      for (const CompletedQuery& r : *records) {
        SCOPED_TRACE(r.client);
        ASSERT_TRUE(r.result.ok()) << r.result.status().ToString();
        EXPECT_EQ(r.result.value().rows, solo->rows);
        EXPECT_EQ(r.result.value().agg_values, solo->agg_values);
        EXPECT_FALSE(r.result.value().stats.fell_back);
      }
    }
  }
}

// The concurrency payoff the blocking executor could not show: two
// interleaved pushdown sessions overlap their protocol overhead, so the
// pair finishes strictly earlier than both 2x solo and the serialized
// back-to-back schedule — with untouched per-query results.
TEST_F(WorkloadSchedulerTest, InterleavedPairBeatsSerializedSchedule) {
  const engine::QueryResult solo =
      Solo("lineitem_a", ExecutionTarget::kSmartSsd);
  const SimTime solo_end = solo.stats.end;

  // Serialized reference: two blocking calls, second queues behind the
  // first query's whole resource reservation history.
  db_.ResetForColdRun();
  engine::QueryExecutor executor(&db_);
  auto first = executor.Execute(tpch::Q6Spec("lineitem_a"),
                                ExecutionTarget::kSmartSsd, 0);
  auto second = executor.Execute(tpch::Q6Spec("lineitem_b"),
                                 ExecutionTarget::kSmartSsd, 0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  const SimTime serialized_span =
      std::max(first->stats.end, second->stats.end);

  const std::vector<CompletedQuery> records =
      RunPair(ExecutionTarget::kSmartSsd);
  ASSERT_EQ(records.size(), 2u);
  SimTime span = 0;
  for (const CompletedQuery& r : records) {
    ASSERT_TRUE(r.result.ok());
    span = std::max(span, r.end);
    EXPECT_EQ(r.result.value().rows, solo.rows);
    EXPECT_EQ(r.result.value().agg_values, solo.agg_values);
  }
  EXPECT_LT(span, 2 * solo_end);
  EXPECT_LT(span, serialized_span);
  // Both queries actually overlapped: each took longer than solo.
  for (const CompletedQuery& r : records) {
    EXPECT_GT(r.end - r.admitted, solo_end);
  }
}

// A device reset mid-workload kills exactly one session; that query
// falls back to the host path and still returns byte-identical results,
// and its co-runners complete untouched.
TEST_F(WorkloadSchedulerTest, MidWorkloadFaultFallsBackOthersUnaffected) {
  const engine::QueryResult solo =
      Solo("lineitem_a", ExecutionTarget::kSmartSsd);

  db_.ResetForColdRun();
  db_.ssd()->fault_injector().Load([] {
    sim::FaultSchedule schedule;
    schedule.faults.push_back(
        sim::FaultSpec{sim::FaultKind::kDeviceReset,
                       {sim::TriggerUnit::kPagesRead, 40},
                       1});
    return schedule;
  }());
  WorkloadScheduler sched(&db_);
  sched.Submit(Q6On("lineitem_a", ExecutionTarget::kSmartSsd, "a"), 0);
  sched.Submit(Q6On("lineitem_b", ExecutionTarget::kSmartSsd, "b"), 0);
  sched.Submit(Q6On("lineitem_a", ExecutionTarget::kSmartSsd, "c"), 0);
  auto records = sched.Run();
  db_.ssd()->fault_injector().Clear();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);

  int fallbacks = 0;
  for (const CompletedQuery& r : *records) {
    SCOPED_TRACE(r.client);
    ASSERT_TRUE(r.result.ok()) << r.result.status().ToString();
    EXPECT_EQ(r.result.value().rows, solo.rows);
    EXPECT_EQ(r.result.value().agg_values, solo.agg_values);
    if (r.result.value().stats.fell_back) ++fallbacks;
  }
  EXPECT_EQ(fallbacks, 1);
  EXPECT_FALSE(db_.runtime()->session_leak_detected());
}

// With a single firmware session thread, co-running pushdown queries
// park at the host instead of eating OPEN rejections: everything still
// completes on the device path, one session at a time.
TEST(WorkloadGrantParkingTest, SingleGrantSerializesSessionsNoFallback) {
  engine::DatabaseOptions options = engine::DatabaseOptions::PaperSmartSsd();
  options.ssd.embedded_cpu.session_threads = 1;
  engine::Database db(options);
  Load(db);

  WorkloadScheduler sched(&db);
  sched.Submit(Q6On("lineitem_a", ExecutionTarget::kSmartSsd, "a"), 0);
  sched.Submit(Q6On("lineitem_b", ExecutionTarget::kSmartSsd, "b"), 0);
  sched.Submit(Q6On("lineitem_a", ExecutionTarget::kSmartSsd, "c"), 0);
  auto records = sched.Run();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  for (const CompletedQuery& r : *records) {
    SCOPED_TRACE(r.client);
    ASSERT_TRUE(r.result.ok()) << r.result.status().ToString();
    EXPECT_EQ(r.result.value().stats.target, ExecutionTarget::kSmartSsd);
    EXPECT_FALSE(r.result.value().stats.fell_back);
  }
  EXPECT_EQ(db.runtime()->max_active_sessions(), 1);
  EXPECT_EQ(db.runtime()->sessions_run(), 3u);
  EXPECT_FALSE(db.runtime()->session_leak_detected());
}

// Regression: tasks parked for a session grant while the device breaker
// opens must redispatch to the host instead of serializing onto a
// failing device. One firmware thread and four queries: "a" takes the
// grant and dies to an injected reset (threshold 1 opens the breaker
// for a very long cooldown, "a" falls back). The freed slot goes to the
// longest-parked task "b"; "c" and "d" then wake to an open breaker
// with no free grant and must fall back from the park — byte-identical
// results, zero device attempts charged (they never touched the
// device). Before the fix they stayed parked until "b" finished and
// then queued onto the device one by one.
TEST(WorkloadGrantParkingTest, BreakerOpenRedispatchesParkedTasksToHost) {
  engine::DatabaseOptions options = engine::DatabaseOptions::PaperSmartSsd();
  options.ssd.embedded_cpu.session_threads = 1;
  options.breaker.failure_threshold = 1;
  options.breaker.cooldown = 3'600'000 * kMillisecond;  // outlives the run
  engine::Database db(options);
  Load(db);

  engine::QueryExecutor executor(&db);
  auto host_ref =
      executor.Execute(tpch::Q6Spec("lineitem_a"), ExecutionTarget::kHost, 0);
  ASSERT_TRUE(host_ref.ok());
  db.ResetForColdRun();

  db.ssd()->fault_injector().Load([] {
    sim::FaultSchedule schedule;
    schedule.faults.push_back(
        sim::FaultSpec{sim::FaultKind::kDeviceReset,
                       {sim::TriggerUnit::kPagesRead, 40},
                       1});
    return schedule;
  }());
  WorkloadScheduler sched(&db);
  sched.Submit(Q6On("lineitem_a", ExecutionTarget::kSmartSsd, "a"), 0);
  sched.Submit(Q6On("lineitem_a", ExecutionTarget::kSmartSsd, "b"), 0);
  sched.Submit(Q6On("lineitem_a", ExecutionTarget::kSmartSsd, "c"), 0);
  sched.Submit(Q6On("lineitem_a", ExecutionTarget::kSmartSsd, "d"), 0);
  auto records = sched.Run();
  db.ssd()->fault_injector().Clear();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 4u);

  for (const CompletedQuery& r : *records) {
    SCOPED_TRACE(r.client);
    ASSERT_TRUE(r.result.ok()) << r.result.status().ToString();
    EXPECT_EQ(r.result.value().rows, host_ref->rows);
    EXPECT_EQ(r.result.value().agg_values, host_ref->agg_values);
    const engine::QueryStats& stats = r.result.value().stats;
    if (r.client == "a") {
      // The faulted session: a real device attempt, then fallback.
      EXPECT_TRUE(stats.fell_back);
      EXPECT_EQ(stats.device_attempts, 1u);
    } else if (r.client == "b") {
      // Woken into the freed grant; the spent fault lets it finish on
      // the device (its success closes the breaker again).
      EXPECT_FALSE(stats.fell_back);
      EXPECT_EQ(stats.target, ExecutionTarget::kSmartSsd);
    } else {
      // Parked with no grant and an open breaker: host redispatch that
      // never touched the device.
      EXPECT_TRUE(stats.fell_back);
      EXPECT_EQ(stats.device_attempts, 0u);
      EXPECT_EQ(stats.target, ExecutionTarget::kHost);
    }
  }
  EXPECT_EQ(db.runtime()->sessions_run(), 2u);  // only "a" and "b"
  EXPECT_FALSE(db.runtime()->session_leak_detected());
}

// max_in_flight=1 turns the scheduler into an admission queue: the
// second query's wait shows up as queue_wait, and it starts only after
// the first delivers.
TEST_F(WorkloadSchedulerTest, AdmissionControlQueuesBeyondMaxInFlight) {
  WorkloadOptions options;
  options.max_in_flight = 1;
  const std::vector<CompletedQuery> records =
      RunPair(ExecutionTarget::kSmartSsd, options);
  ASSERT_EQ(records.size(), 2u);
  const CompletedQuery& head = records[0];
  const CompletedQuery& queued = records[1];
  EXPECT_EQ(head.queue_wait(), 0);
  EXPECT_EQ(queued.admitted, head.end);
  EXPECT_GT(queued.queue_wait(), 0);
  ASSERT_TRUE(head.result.ok());
  ASSERT_TRUE(queued.result.ok());
  EXPECT_EQ(head.result.value().agg_values,
            queued.result.value().agg_values);
}

// Closed-loop: each next arrival is the previous completion plus think
// time. Open-loop: arrivals sit on the fixed grid no matter how long
// queries take.
TEST_F(WorkloadSchedulerTest, ClosedAndOpenLoopClientsGenerateArrivals) {
  constexpr SimDuration kThink = 1'000'000;  // 1 ms
  db_.ResetForColdRun();
  WorkloadScheduler closed(&db_);
  closed.AddClosedLoopClient(
      Q6On("lineitem_a", ExecutionTarget::kSmartSsd, "closed"), 3, kThink);
  auto closed_records = closed.Run();
  ASSERT_TRUE(closed_records.ok());
  ASSERT_EQ(closed_records->size(), 3u);
  for (std::size_t i = 1; i < closed_records->size(); ++i) {
    EXPECT_EQ((*closed_records)[i].arrival,
              (*closed_records)[i - 1].end + kThink);
  }

  constexpr SimDuration kGap = 2'000'000;  // 2 ms: far below service time
  db_.ResetForColdRun();
  WorkloadScheduler open(&db_);
  open.AddOpenLoopClient(
      Q6On("lineitem_a", ExecutionTarget::kSmartSsd, "open"), 3, kGap);
  auto open_records = open.Run();
  ASSERT_TRUE(open_records.ok());
  ASSERT_EQ(open_records->size(), 3u);
  std::vector<SimTime> arrivals;
  for (const CompletedQuery& r : *open_records) {
    ASSERT_TRUE(r.result.ok());
    arrivals.push_back(r.arrival);
  }
  std::sort(arrivals.begin(), arrivals.end());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i], static_cast<SimTime>(i) * kGap);
  }
}

}  // namespace
}  // namespace smartssd
