#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "exec/page_processor.h"
#include "exec/query_spec.h"
#include "storage/catalog.h"
#include "storage/nsm_page.h"
#include "storage/pax_page.h"
#include "storage/tuple.h"

namespace smartssd::exec {
namespace {

namespace ex = ::smartssd::expr;
using storage::Column;
using storage::PageLayout;
using storage::Schema;

// Builds an in-memory "table": page images + catalog entry (no device).
struct MemTable {
  storage::TableInfo info;
  std::vector<std::vector<std::byte>> pages;
};

Schema OuterSchema() {
  auto schema = Schema::Create(
      {Column::Int32("k"), Column::Int32("fk"), Column::Int32("v")});
  SMARTSSD_CHECK(schema.ok());
  return std::move(schema).value();
}

Schema InnerSchema() {
  auto schema =
      Schema::Create({Column::Int32("pk"), Column::Int64("payload")});
  SMARTSSD_CHECK(schema.ok());
  return std::move(schema).value();
}

MemTable BuildOuter(PageLayout layout, int rows) {
  const Schema schema = OuterSchema();
  MemTable table;
  std::vector<std::byte> tuple(schema.tuple_size());
  storage::NsmPageBuilder nsm(&schema, 512);
  storage::PaxPageBuilder pax(&schema, 512);
  auto seal = [&]() {
    if (layout == PageLayout::kNsm) {
      table.pages.emplace_back(nsm.image().begin(), nsm.image().end());
      nsm.Reset();
    } else {
      table.pages.emplace_back(pax.image().begin(), pax.image().end());
      pax.Reset();
    }
  };
  for (int row = 0; row < rows; ++row) {
    storage::TupleWriter w(&schema, tuple);
    w.SetInt32(0, row);
    w.SetInt32(1, row % 10);  // FK into inner keys 0..9
    w.SetInt32(2, row * 2);
    const bool ok = layout == PageLayout::kNsm ? nsm.Append(tuple)
                                               : pax.Append(tuple);
    if (!ok) {
      seal();
      SMARTSSD_CHECK(layout == PageLayout::kNsm ? nsm.Append(tuple)
                                                : pax.Append(tuple));
    }
  }
  if ((layout == PageLayout::kNsm && nsm.tuple_count() > 0) ||
      (layout == PageLayout::kPax && pax.tuple_count() > 0)) {
    seal();
  }
  table.info = storage::TableInfo{
      .name = "outer",
      .schema = schema,
      .layout = layout,
      .first_lpn = 0,
      .page_count = table.pages.size(),
      .tuple_count = static_cast<std::uint64_t>(rows),
      .tuples_per_page = 0};
  return table;
}

MemTable BuildInner(PageLayout layout) {
  const Schema schema = InnerSchema();
  MemTable table;
  std::vector<std::byte> tuple(schema.tuple_size());
  storage::NsmPageBuilder nsm(&schema, 512);
  storage::PaxPageBuilder pax(&schema, 512);
  for (int row = 0; row < 10; ++row) {
    storage::TupleWriter w(&schema, tuple);
    w.SetInt32(0, row);
    w.SetInt64(1, 1000 + row);
    SMARTSSD_CHECK(layout == PageLayout::kNsm ? nsm.Append(tuple)
                                              : pax.Append(tuple));
  }
  if (layout == PageLayout::kNsm) {
    table.pages.emplace_back(nsm.image().begin(), nsm.image().end());
  } else {
    table.pages.emplace_back(pax.image().begin(), pax.image().end());
  }
  table.info = storage::TableInfo{.name = "inner",
                                  .schema = schema,
                                  .layout = layout,
                                  .first_lpn = 100,
                                  .page_count = 1,
                                  .tuple_count = 10,
                                  .tuples_per_page = 10};
  return table;
}

// Runs a bound query over in-memory pages; returns output bytes.
struct RunOutput {
  std::vector<std::byte> rows;
  OpCounts counts;
  std::vector<std::int64_t> aggs;
};

RunOutput RunQuery(const QuerySpec& spec, const MemTable& outer,
                   const MemTable* inner) {
  storage::Catalog catalog(100000);
  SMARTSSD_CHECK(catalog.AddTable(outer.info).ok());
  if (inner != nullptr) SMARTSSD_CHECK(catalog.AddTable(inner->info).ok());
  auto bound = Bind(spec, catalog);
  SMARTSSD_CHECK(bound.ok());

  RunOutput output;
  std::optional<JoinHashTable> hash_table;
  if (inner != nullptr) {
    auto table = BuildJoinHashTable(
        *bound,
        [&](std::uint64_t p) -> Result<std::span<const std::byte>> {
          return std::span<const std::byte>(inner->pages[p]);
        },
        &output.counts);
    SMARTSSD_CHECK(table.ok());
    hash_table.emplace(std::move(table).value());
  }
  PageProcessor processor(&*bound,
                          hash_table.has_value() ? &*hash_table : nullptr);
  for (const auto& page : outer.pages) {
    SMARTSSD_CHECK(
        processor.ProcessPage(page, &output.counts, &output.rows).ok());
  }
  SMARTSSD_CHECK(processor.Finish(&output.counts, &output.rows).ok());
  output.aggs = processor.agg_state();
  return output;
}

class PageProcessorTest : public ::testing::TestWithParam<PageLayout> {};

TEST_P(PageProcessorTest, FilterAndProject) {
  const MemTable outer = BuildOuter(GetParam(), 100);
  QuerySpec spec;
  spec.table = "outer";
  spec.predicate = ex::Lt(ex::Col(0), ex::Lit(10));  // k < 10
  spec.projection = {0, 2};
  const RunOutput out = RunQuery(spec, outer, nullptr);

  ASSERT_EQ(out.rows.size(), 10u * 8u);  // ten rows of (k, v)
  for (int i = 0; i < 10; ++i) {
    std::int32_t k;
    std::int32_t v;
    std::memcpy(&k, out.rows.data() + i * 8, 4);
    std::memcpy(&v, out.rows.data() + i * 8 + 4, 4);
    EXPECT_EQ(k, i);
    EXPECT_EQ(v, i * 2);
  }
  EXPECT_EQ(out.counts.tuples, 100u);
  EXPECT_EQ(out.counts.output_tuples, 10u);
  EXPECT_EQ(out.counts.eval.comparisons, 100u);
}

TEST_P(PageProcessorTest, AggregatesSumCountMinMax) {
  const MemTable outer = BuildOuter(GetParam(), 50);
  QuerySpec spec;
  spec.table = "outer";
  spec.predicate = ex::Ge(ex::Col(0), ex::Lit(40));  // last 10 rows
  spec.aggregates.push_back(
      {AggSpec::Fn::kSum, ex::Col(2), "sum_v"});
  spec.aggregates.push_back({AggSpec::Fn::kCount, nullptr, "cnt"});
  spec.aggregates.push_back({AggSpec::Fn::kMin, ex::Col(0), "min_k"});
  spec.aggregates.push_back({AggSpec::Fn::kMax, ex::Col(0), "max_k"});
  const RunOutput out = RunQuery(spec, outer, nullptr);

  ASSERT_EQ(out.aggs.size(), 4u);
  // sum of 2k for k in [40,50) = 2*(40+...+49) = 890.
  EXPECT_EQ(out.aggs[0], 890);
  EXPECT_EQ(out.aggs[1], 10);
  EXPECT_EQ(out.aggs[2], 40);
  EXPECT_EQ(out.aggs[3], 49);
  // The one output row carries the four int64s.
  ASSERT_EQ(out.rows.size(), 32u);
  std::int64_t sum;
  std::memcpy(&sum, out.rows.data(), 8);
  EXPECT_EQ(sum, 890);
}

TEST_P(PageProcessorTest, JoinFilterFirst) {
  const MemTable outer = BuildOuter(GetParam(), 100);
  const MemTable inner = BuildInner(GetParam());
  QuerySpec spec;
  spec.table = "outer";
  spec.predicate = ex::Lt(ex::Col(0), ex::Lit(5));
  spec.join = JoinSpec{.inner_table = "inner",
                       .outer_key_col = 1,
                       .inner_key_col = 0,
                       .inner_payload_cols = {1}};
  spec.order = PipelineOrder::kFilterFirst;
  spec.projection = {0, 3};  // k, inner.payload
  const RunOutput out = RunQuery(spec, outer, &inner);

  ASSERT_EQ(out.rows.size(), 5u * 12u);  // 5 rows of (int32, int64)
  for (int i = 0; i < 5; ++i) {
    std::int32_t k;
    std::int64_t payload;
    std::memcpy(&k, out.rows.data() + i * 12, 4);
    std::memcpy(&payload, out.rows.data() + i * 12 + 4, 8);
    EXPECT_EQ(k, i);
    EXPECT_EQ(payload, 1000 + i % 10);
  }
  // Filter-first: only the 5 qualifying rows probed.
  EXPECT_EQ(out.counts.probes, 5u);
  EXPECT_EQ(out.counts.hash_inserts, 10u);
}

TEST_P(PageProcessorTest, JoinProbeFirstProbesEveryTuple) {
  const MemTable outer = BuildOuter(GetParam(), 100);
  const MemTable inner = BuildInner(GetParam());
  QuerySpec spec;
  spec.table = "outer";
  // Predicate over the combined row referencing the payload (legal only
  // in probe-first order): payload < 1005 selects fk 0..4, i.e. half of
  // the outer rows (fk = k % 10, payload = 1000 + fk).
  spec.predicate = ex::Lt(ex::Col(3), ex::Lit(1005));
  spec.join = JoinSpec{.inner_table = "inner",
                       .outer_key_col = 1,
                       .inner_key_col = 0,
                       .inner_payload_cols = {1}};
  spec.order = PipelineOrder::kProbeFirst;
  spec.aggregates.push_back({AggSpec::Fn::kCount, nullptr, "cnt"});
  const RunOutput out = RunQuery(spec, outer, &inner);

  // Probe-first: all 100 tuples probed.
  EXPECT_EQ(out.counts.probes, 100u);
  // payload < 1005 <=> fk in 0..4 <=> k%10 in 0..4: half the rows.
  ASSERT_EQ(out.aggs.size(), 1u);
  EXPECT_EQ(out.aggs[0], 50);
}

TEST_P(PageProcessorTest, JoinMissesDropTuples) {
  const MemTable outer = BuildOuter(GetParam(), 100);
  // Inner with only keys 0..9 — but make outer FK sometimes miss by
  // filtering to fk >= 5 and joining against a reduced inner... simpler:
  // drop inner rows 5..9 by using a predicate that probes keys 0..9 while
  // inner holds all; instead verify misses via an inner key shift.
  MemTable inner = BuildInner(GetParam());
  QuerySpec spec;
  spec.table = "outer";
  spec.join = JoinSpec{.inner_table = "inner",
                       .outer_key_col = 0,  // k in 0..99; inner pk 0..9
                       .inner_key_col = 0,
                       .inner_payload_cols = {1}};
  spec.order = PipelineOrder::kFilterFirst;
  spec.aggregates.push_back({AggSpec::Fn::kCount, nullptr, "cnt"});
  const RunOutput out = RunQuery(spec, outer, &inner);
  // Only k in 0..9 find a match.
  EXPECT_EQ(out.aggs[0], 10);
  EXPECT_EQ(out.counts.probes, 100u);
}

TEST_P(PageProcessorTest, NoPredicateMeansAllRows) {
  const MemTable outer = BuildOuter(GetParam(), 64);
  QuerySpec spec;
  spec.table = "outer";
  spec.aggregates.push_back({AggSpec::Fn::kCount, nullptr, "cnt"});
  const RunOutput out = RunQuery(spec, outer, nullptr);
  EXPECT_EQ(out.aggs[0], 64);
  EXPECT_EQ(out.counts.eval.comparisons, 0u);
}

INSTANTIATE_TEST_SUITE_P(Layouts, PageProcessorTest,
                         ::testing::Values(PageLayout::kNsm,
                                           PageLayout::kPax),
                         [](const auto& info) {
                           return std::string(
                               storage::PageLayoutName(info.param));
                         });

// --- Bind() validation ---

TEST(BindTest, RejectsBadSpecs) {
  storage::Catalog catalog(1000);
  const MemTable outer = BuildOuter(PageLayout::kNsm, 10);
  ASSERT_TRUE(catalog.AddTable(outer.info).ok());

  {
    QuerySpec spec;  // neither aggregate nor projection
    spec.table = "outer";
    EXPECT_FALSE(Bind(spec, catalog).ok());
  }
  {
    QuerySpec spec;
    spec.table = "missing";
    spec.projection = {0};
    EXPECT_FALSE(Bind(spec, catalog).ok());
  }
  {
    QuerySpec spec;  // probe-first without a join
    spec.table = "outer";
    spec.order = PipelineOrder::kProbeFirst;
    spec.projection = {0};
    EXPECT_FALSE(Bind(spec, catalog).ok());
  }
  {
    QuerySpec spec;  // projection out of range
    spec.table = "outer";
    spec.projection = {17};
    EXPECT_FALSE(Bind(spec, catalog).ok());
  }
  {
    QuerySpec spec;  // filter-first predicate touching payload column
    spec.table = "outer";
    const MemTable inner = BuildInner(PageLayout::kNsm);
    storage::Catalog catalog2(1000);
    ASSERT_TRUE(catalog2.AddTable(outer.info).ok());
    ASSERT_TRUE(catalog2.AddTable(inner.info).ok());
    spec.join = JoinSpec{.inner_table = "inner",
                         .outer_key_col = 1,
                         .inner_key_col = 0,
                         .inner_payload_cols = {1}};
    spec.order = PipelineOrder::kFilterFirst;
    spec.predicate = ex::Lt(ex::Col(3), ex::Lit(0));  // payload col
    spec.projection = {0};
    EXPECT_FALSE(Bind(spec, catalog2).ok());
  }
}

TEST(BindTest, CombinedSchemaAppendsPayloadColumns) {
  storage::Catalog catalog(1000);
  const MemTable outer = BuildOuter(PageLayout::kNsm, 10);
  const MemTable inner = BuildInner(PageLayout::kNsm);
  ASSERT_TRUE(catalog.AddTable(outer.info).ok());
  ASSERT_TRUE(catalog.AddTable(inner.info).ok());
  QuerySpec spec;
  spec.table = "outer";
  spec.join = JoinSpec{.inner_table = "inner",
                       .outer_key_col = 1,
                       .inner_key_col = 0,
                       .inner_payload_cols = {1}};
  spec.projection = {0, 3};
  auto bound = Bind(spec, catalog);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->combined_schema.num_columns(), 4);
  EXPECT_EQ(bound->combined_schema.column(3).name, "inner.payload");
  EXPECT_EQ(bound->payload_width, 8u);
  auto out_schema = OutputSchema(*bound);
  ASSERT_TRUE(out_schema.ok());
  EXPECT_EQ(out_schema->num_columns(), 2);
  EXPECT_EQ(out_schema->tuple_size(), 12u);
}

TEST(BindTest, PlanToStringMentionsOperators) {
  storage::Catalog catalog(1000);
  const MemTable outer = BuildOuter(PageLayout::kPax, 10);
  ASSERT_TRUE(catalog.AddTable(outer.info).ok());
  QuerySpec spec;
  spec.table = "outer";
  spec.predicate = ex::Lt(ex::Col(0), ex::Lit(3));
  spec.aggregates.push_back({AggSpec::Fn::kSum, ex::Col(2), "s"});
  auto bound = Bind(spec, catalog);
  ASSERT_TRUE(bound.ok());
  const std::string plan = PlanToString(*bound);
  EXPECT_NE(plan.find("Aggregate"), std::string::npos);
  EXPECT_NE(plan.find("Filter"), std::string::npos);
  EXPECT_NE(plan.find("Scan[outer, PAX]"), std::string::npos);
}

}  // namespace
}  // namespace smartssd::exec
