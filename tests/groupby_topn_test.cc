// Tests for the extension operators: grouped aggregation (GROUP BY) and
// ORDER BY/LIMIT (top-N), on both execution paths.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "engine/database.h"
#include "engine/executor.h"
#include "storage/nsm_page.h"
#include "storage/tuple.h"
#include "tpch/dates.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"
#include "tpch/tpch_gen.h"

namespace smartssd {
namespace {

namespace ex = ::smartssd::expr;
using engine::Database;
using engine::DatabaseOptions;
using engine::ExecutionTarget;
using engine::QueryExecutor;

class GroupByTopNTest : public ::testing::Test {
 protected:
  GroupByTopNTest() : db_(DatabaseOptions::PaperSmartSsd()) {
    SMARTSSD_CHECK(tpch::LoadLineitem(db_, "lineitem", 0.003,
                                      storage::PageLayout::kPax)
                       .ok());
    SMARTSSD_CHECK(tpch::LoadSyntheticS(db_, "S", 16, 30'000, 100,
                                        storage::PageLayout::kPax)
                       .ok());
  }

  engine::QueryResult Run(const exec::QuerySpec& spec,
                          ExecutionTarget target) {
    db_.ResetForColdRun();
    QueryExecutor executor(&db_);
    auto result = executor.Execute(spec, target);
    SMARTSSD_CHECK(result.ok());
    return std::move(result).value();
  }

  Database db_;
};

// Reference Q1 computed straight off the pages.
struct Q1Group {
  std::int64_t sum_qty = 0;
  std::int64_t sum_base = 0;
  std::int64_t sum_disc = 0;
  std::int64_t sum_charge = 0;
  std::int64_t count = 0;
};

std::map<std::string, Q1Group> ReferenceQ1(Database& db) {
  auto info = db.catalog().GetTable("lineitem");
  SMARTSSD_CHECK(info.ok());
  std::map<std::string, Q1Group> groups;
  const auto& schema = (*info)->schema;
  std::vector<std::byte> page(db.device().page_size());
  for (std::uint64_t p = 0; p < (*info)->page_count; ++p) {
    SMARTSSD_CHECK(
        db.device().ReadPages((*info)->first_lpn + p, 1, page, 0).ok());
    auto reader = storage::PaxPageReader::Open(&schema, page);
    SMARTSSD_CHECK(reader.ok());
    for (std::uint16_t i = 0; i < reader->tuple_count(); ++i) {
      expr::PaxRowView view(&schema, &*reader, i);
      const std::int32_t shipdate =
          static_cast<std::int32_t>(
              view.GetColumn(tpch::kLShipDate).AsInt());
      if (shipdate > tpch::DateToDays(1998, 9, 2)) continue;
      std::string key;
      key += view.GetColumn(tpch::kLReturnFlag).AsString();
      key += view.GetColumn(tpch::kLLineStatus).AsString();
      Q1Group& group = groups[key];
      const std::int64_t qty = view.GetColumn(tpch::kLQuantity).AsInt();
      const std::int64_t ep =
          view.GetColumn(tpch::kLExtendedPrice).AsInt();
      const std::int64_t disc = view.GetColumn(tpch::kLDiscount).AsInt();
      const std::int64_t tax = view.GetColumn(tpch::kLTax).AsInt();
      group.sum_qty += qty;
      group.sum_base += ep;
      group.sum_disc += ep * (100 - disc);
      group.sum_charge += ep * (100 - disc) * (100 + tax);
      ++group.count;
    }
  }
  return groups;
}

TEST_F(GroupByTopNTest, Q1MatchesReferenceAndBothPathsAgree) {
  const auto host = Run(tpch::Q1Spec("lineitem"), ExecutionTarget::kHost);
  const auto smart =
      Run(tpch::Q1Spec("lineitem"), ExecutionTarget::kSmartSsd);
  EXPECT_EQ(host.rows, smart.rows);

  // Output schema: key_l_returnflag(1) key_l_linestatus(1) + 5 int64.
  ASSERT_EQ(host.output_schema.num_columns(), 7);
  ASSERT_EQ(host.output_schema.tuple_size(), 42u);
  const auto reference = ReferenceQ1(db_);
  ASSERT_EQ(host.row_count(), reference.size());
  // TPC-H Q1 famously has exactly 4 groups.
  EXPECT_EQ(host.row_count(), 4u);

  const std::uint32_t width = host.output_schema.tuple_size();
  for (std::uint64_t r = 0; r < host.row_count(); ++r) {
    const std::byte* row = host.rows.data() + r * width;
    std::string key(reinterpret_cast<const char*>(row), 2);
    auto it = reference.find(key);
    ASSERT_NE(it, reference.end()) << "unexpected group " << key;
    std::int64_t values[5];
    std::memcpy(values, row + 2, sizeof(values));
    EXPECT_EQ(values[0], it->second.sum_qty);
    EXPECT_EQ(values[1], it->second.sum_base);
    EXPECT_EQ(values[2], it->second.sum_disc);
    EXPECT_EQ(values[3], it->second.sum_charge);
    EXPECT_EQ(values[4], it->second.count);
  }
}

TEST_F(GroupByTopNTest, GroupedRowsAreKeyOrdered) {
  const auto host = Run(tpch::Q1Spec("lineitem"), ExecutionTarget::kHost);
  const std::uint32_t width = host.output_schema.tuple_size();
  std::string prev;
  for (std::uint64_t r = 0; r < host.row_count(); ++r) {
    std::string key(
        reinterpret_cast<const char*>(host.rows.data() + r * width), 2);
    EXPECT_LT(prev, key);
    prev = key;
  }
}

TEST_F(GroupByTopNTest, Q1PushdownLosesOn2013CoresWinsWhenUpgraded) {
  // Q1 evaluates four SUM expressions + COUNT on ~98% of tuples: on the
  // paper's 3x400 MHz device the embedded CPU saturates and pushdown
  // LOSES; with Section 5's "add more hardware" (6x800 MHz) it wins.
  // Either way the device ships only 4 result rows.
  const auto host = Run(tpch::Q1Spec("lineitem"), ExecutionTarget::kHost);
  const auto smart =
      Run(tpch::Q1Spec("lineitem"), ExecutionTarget::kSmartSsd);
  EXPECT_GT(smart.stats.elapsed(), host.stats.elapsed());
  EXPECT_LT(smart.stats.bytes_over_host_link, 10'000u);

  engine::DatabaseOptions upgraded = DatabaseOptions::PaperSmartSsd();
  upgraded.ssd.embedded_cpu.cores = 6;
  upgraded.ssd.embedded_cpu.clock_hz = 800'000'000;
  Database fast_db(upgraded);
  SMARTSSD_CHECK(tpch::LoadLineitem(fast_db, "lineitem", 0.003,
                                    storage::PageLayout::kPax)
                     .ok());
  fast_db.ResetForColdRun();
  QueryExecutor executor(&fast_db);
  auto fast = executor.Execute(tpch::Q1Spec("lineitem"),
                               ExecutionTarget::kSmartSsd);
  ASSERT_TRUE(fast.ok());
  EXPECT_LT(fast->stats.elapsed(), host.stats.elapsed());
  EXPECT_EQ(fast->rows, host.rows);
}

TEST_F(GroupByTopNTest, TopNBothPathsAgreeAndAreSorted) {
  const auto spec = [] {
    return tpch::TopNQuerySpec("S", 16, 0.5, 25, /*descending=*/true);
  };
  const auto host = Run(spec(), ExecutionTarget::kHost);
  const auto smart = Run(spec(), ExecutionTarget::kSmartSsd);
  EXPECT_EQ(host.rows, smart.rows);
  ASSERT_EQ(host.row_count(), 25u);

  const std::uint32_t width = host.output_schema.tuple_size();
  std::int32_t prev = std::numeric_limits<std::int32_t>::max();
  for (std::uint64_t r = 0; r < host.row_count(); ++r) {
    std::int32_t key;
    std::memcpy(&key, host.rows.data() + r * width, 4);
    EXPECT_LE(key, prev);
    prev = key;
  }
}

TEST_F(GroupByTopNTest, TopNAscendingReturnsSmallestQualifying) {
  // Col_1 = row+1; predicate keeps ~50%; ascending top-3 must be the
  // first three qualifying row ids.
  const auto spec =
      tpch::TopNQuerySpec("S", 16, 0.5, 3, /*descending=*/false);
  const auto host = Run(spec, ExecutionTarget::kHost);
  ASSERT_EQ(host.row_count(), 3u);
  const std::uint32_t width = host.output_schema.tuple_size();
  std::int32_t first;
  std::memcpy(&first, host.rows.data(), 4);
  // With ~50% selectivity the smallest qualifying id is tiny.
  EXPECT_LE(first, 10);
  std::int32_t prev = 0;
  for (std::uint64_t r = 0; r < 3; ++r) {
    std::int32_t key;
    std::memcpy(&key, host.rows.data() + r * width, 4);
    EXPECT_GT(key, prev);
    prev = key;
  }
}

TEST_F(GroupByTopNTest, TopNLimitLargerThanResultReturnsAll) {
  const auto spec =
      tpch::TopNQuerySpec("S", 16, 0.0005, 1000, /*descending=*/true);
  const auto host = Run(spec, ExecutionTarget::kHost);
  const auto plain = Run(tpch::ScanQuerySpec("S", 16, 0.0005, false, 3),
                         ExecutionTarget::kHost);
  EXPECT_EQ(host.row_count(), plain.row_count());
  EXPECT_LT(host.row_count(), 1000u);
}

TEST_F(GroupByTopNTest, BindRejectsBadExtensions) {
  {
    exec::QuerySpec spec;  // GROUP BY without aggregates
    spec.table = "S";
    spec.group_by = {0};
    spec.projection = {0};
    EXPECT_FALSE(exec::Bind(spec, db_.catalog()).ok());
  }
  {
    exec::QuerySpec spec;  // top-N on an aggregate query
    spec.table = "S";
    spec.aggregates.push_back(
        {exec::AggSpec::Fn::kCount, nullptr, "c"});
    spec.top_n = exec::TopNSpec{.order_col = 0, .limit = 5};
    EXPECT_FALSE(exec::Bind(spec, db_.catalog()).ok());
  }
  {
    exec::QuerySpec spec;  // zero limit
    spec.table = "S";
    spec.projection = {0};
    spec.top_n = exec::TopNSpec{.order_col = 0, .limit = 0};
    EXPECT_FALSE(exec::Bind(spec, db_.catalog()).ok());
  }
  {
    exec::QuerySpec spec;  // GROUP BY column out of range
    spec.table = "S";
    spec.group_by = {99};
    spec.aggregates.push_back(
        {exec::AggSpec::Fn::kCount, nullptr, "c"});
    EXPECT_FALSE(exec::Bind(spec, db_.catalog()).ok());
  }
}

TEST_F(GroupByTopNTest, PlanPrintingMentionsExtensions) {
  const auto q1_spec = tpch::Q1Spec("lineitem");
  auto q1 = exec::Bind(q1_spec, db_.catalog());
  ASSERT_TRUE(q1.ok());
  EXPECT_NE(exec::PlanToString(*q1).find("GROUP BY"), std::string::npos);

  const auto topn_spec = tpch::TopNQuerySpec("S", 16, 0.5, 10);
  auto topn = exec::Bind(topn_spec, db_.catalog());
  ASSERT_TRUE(topn.ok());
  EXPECT_NE(exec::PlanToString(*topn).find("TopN"), std::string::npos);
}

}  // namespace
}  // namespace smartssd
