// Extension experiment: concurrent queries on one Smart SSD — an open
// issue the paper raises twice ("considering the impact of concurrent
// queries", Section 5). Two pushdown sessions share the embedded cores,
// the flash channels, and the DRAM bus; two host-path queries share the
// host link. We launch query pairs at the same virtual instant and
// compare against their solo runtimes.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {
constexpr double kScaleFactor = 0.05;
}  // namespace

int main() {
  bench::PrintHeader(
      "Concurrent queries on one device: interference of co-running "
      "pushdowns",
      "the Section 5 'impact of concurrent queries' discussion");

  engine::Database db(engine::DatabaseOptions::PaperSmartSsd());
  bench::Unwrap(tpch::LoadLineitem(db, "lineitem_a", kScaleFactor,
                                   storage::PageLayout::kPax),
                "load A");
  bench::Unwrap(tpch::LoadLineitem(db, "lineitem_b", kScaleFactor,
                                   storage::PageLayout::kPax),
                "load B");

  auto run_pair = [&](engine::ExecutionTarget target,
                      const char* label) {
    // Solo run.
    db.ResetForColdRun();
    engine::QueryExecutor executor(&db);
    auto solo = bench::Unwrap(
        executor.Execute(tpch::Q6Spec("lineitem_a"), target, 0), "solo");
    const double solo_seconds = solo.stats.elapsed_seconds();

    // Two queries over different tables, both issued at t=0: they
    // contend on every shared resource the simulator models.
    db.ResetForColdRun();
    auto first = bench::Unwrap(
        executor.Execute(tpch::Q6Spec("lineitem_a"), target, 0),
        "concurrent A");
    auto second = bench::Unwrap(
        executor.Execute(tpch::Q6Spec("lineitem_b"), target, 0),
        "concurrent B");
    const double span =
        ToSeconds(std::max(first.stats.end, second.stats.end));
    std::printf("%-22s solo %8.4f s; pair span %8.4f s; "
                "interference %.2fx (ideal sharing 2.00x)\n",
                label, solo_seconds, span, span / solo_seconds);
    if (first.agg_values != solo.agg_values) {
      std::printf("!! RESULT MISMATCH\n");
    }
  };

  run_pair(engine::ExecutionTarget::kSmartSsd, "pushdown + pushdown");
  run_pair(engine::ExecutionTarget::kHost, "host + host");

  // Mixed: one pushdown, one host query — they overlap on flash + DRAM
  // but not on the host link's payload direction vs embedded CPU.
  db.ResetForColdRun();
  engine::QueryExecutor executor(&db);
  auto smart = bench::Unwrap(
      executor.Execute(tpch::Q6Spec("lineitem_a"),
                       engine::ExecutionTarget::kSmartSsd, 0),
      "mixed smart");
  auto host = bench::Unwrap(
      executor.Execute(tpch::Q6Spec("lineitem_b"),
                       engine::ExecutionTarget::kHost, 0),
      "mixed host");
  std::printf("%-22s smart %7.4f s, host %7.4f s, span %7.4f s\n",
              "pushdown + host", smart.stats.elapsed_seconds(),
              host.stats.elapsed_seconds(),
              ToSeconds(std::max(smart.stats.end, host.stats.end)));
  bench::PrintRule();
  std::printf(
      "Shape check: co-running pushdowns roughly double the span "
      "(embedded CPU is the shared bottleneck); mixed pairs overlap "
      "better because they saturate different resources.\n");
  return 0;
}
