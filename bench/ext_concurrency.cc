// Extension experiment: concurrent queries on one Smart SSD — an open
// issue the paper raises twice ("considering the impact of concurrent
// queries", Section 5). Two pushdown sessions share the embedded cores,
// the flash channels, and the DRAM bus; two host-path queries share the
// host link.
//
// Methodology note: an earlier version of this bench issued the "pair"
// through two back-to-back blocking QueryExecutor calls. Those queries
// never actually overlapped — the second call's resource requests queued
// behind the first query's entire FIFO reservation history, so the
// measured "pair span 2.00x" was call-order serialization, not resource
// sharing. We keep that serialized pair as a reference line and measure
// true interference with the WorkloadScheduler, which interleaves both
// queries page-by-page / protocol-unit-by-protocol-unit on one virtual
// clock.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "engine/workload.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {

constexpr double kScaleFactor = 0.05;

double SpanSeconds(const std::vector<engine::CompletedQuery>& records) {
  SimTime end = 0;
  for (const auto& r : records) end = std::max(end, r.end);
  return ToSeconds(end);
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Concurrent queries on one device: interference of co-running "
      "pushdowns",
      "the Section 5 'impact of concurrent queries' discussion");
  bench::JsonReporter reporter("ext_concurrency", argc, argv);

  engine::Database db(engine::DatabaseOptions::PaperSmartSsd());
  bench::Unwrap(tpch::LoadLineitem(db, "lineitem_a", kScaleFactor,
                                   storage::PageLayout::kPax),
                "load A");
  bench::Unwrap(tpch::LoadLineitem(db, "lineitem_b", kScaleFactor,
                                   storage::PageLayout::kPax),
                "load B");

  auto run_pair = [&](engine::ExecutionTarget target, const char* label) {
    // Solo run: one query, cold device.
    db.ResetForColdRun();
    engine::QueryExecutor executor(&db);
    auto solo = bench::Unwrap(
        executor.Execute(tpch::Q6Spec("lineitem_a"), target, 0), "solo");
    const double solo_seconds = solo.stats.elapsed_seconds();

    // Serialized pair: two blocking calls. Query B's first request waits
    // behind everything query A reserved — this is what the pre-
    // scheduler version of this bench (mis)reported as interference.
    db.ResetForColdRun();
    auto first = bench::Unwrap(
        executor.Execute(tpch::Q6Spec("lineitem_a"), target, 0),
        "serialized A");
    auto second = bench::Unwrap(
        executor.Execute(tpch::Q6Spec("lineitem_b"), target, 0),
        "serialized B");
    const double serialized_span =
        ToSeconds(std::max(first.stats.end, second.stats.end));

    // Interleaved pair: both queries submitted at t=0 to the workload
    // scheduler; their page / protocol-unit steps contend on every
    // shared simulated resource.
    db.ResetForColdRun();
    engine::WorkloadScheduler sched(&db);
    engine::WorkloadQueryConfig qa;
    qa.client = "client-a";
    qa.spec = tpch::Q6Spec("lineitem_a");
    qa.target = target;
    sched.Submit(std::move(qa), 0);
    engine::WorkloadQueryConfig qb;
    qb.client = "client-b";
    qb.spec = tpch::Q6Spec("lineitem_b");
    qb.target = target;
    sched.Submit(std::move(qb), 0);
    const std::vector<engine::CompletedQuery> records =
        bench::Unwrap(sched.Run(), "interleaved pair");
    const double span = SpanSeconds(records);

    std::printf("%-20s solo %7.4f s\n", label, solo_seconds);
    std::printf("%-20s   serialized pair span %7.4f s (%.2fx solo; "
                "reference, no overlap)\n",
                "", serialized_span, serialized_span / solo_seconds);
    std::printf("%-20s   interleaved pair span %6.4f s "
                "(interference %.2fx; ideal fair sharing 2.00x of the "
                "bottleneck)\n",
                "", span, span / solo_seconds);
    for (const auto& r : records) {
      bench::Check(r.result.status(), "interleaved record");
      std::printf("%-20s     %-9s latency %7.4f s\n", "", r.client.c_str(),
                  ToSeconds(r.latency()));
      if (r.result.value().agg_values != solo.agg_values) {
        std::printf("!! RESULT MISMATCH (%s)\n", r.client.c_str());
      }
    }
    reporter.Add(std::string(label) + " interleaved", span, NAN,
                 span / solo_seconds);
  };

  run_pair(engine::ExecutionTarget::kSmartSsd, "pushdown + pushdown");
  run_pair(engine::ExecutionTarget::kHost, "host + host");

  // Mixed: one pushdown, one host query — they overlap on flash + DRAM
  // but not on the host link's payload direction vs embedded CPU.
  db.ResetForColdRun();
  engine::WorkloadScheduler sched(&db);
  engine::WorkloadQueryConfig qs;
  qs.client = "smart";
  qs.spec = tpch::Q6Spec("lineitem_a");
  qs.target = engine::ExecutionTarget::kSmartSsd;
  sched.Submit(std::move(qs), 0);
  engine::WorkloadQueryConfig qh;
  qh.client = "host";
  qh.spec = tpch::Q6Spec("lineitem_b");
  qh.target = engine::ExecutionTarget::kHost;
  sched.Submit(std::move(qh), 0);
  const std::vector<engine::CompletedQuery> mixed =
      bench::Unwrap(sched.Run(), "mixed pair");
  std::printf("%-20s interleaved span %7.4f s\n", "pushdown + host",
              SpanSeconds(mixed));
  for (const auto& r : mixed) {
    std::printf("%-20s     %-9s latency %7.4f s\n", "", r.client.c_str(),
                ToSeconds(r.latency()));
  }
  reporter.Add("pushdown + host interleaved", SpanSeconds(mixed), NAN,
               NAN);

  bench::PrintRule();
  std::printf(
      "Shape check: interleaved co-running pushdowns finish in less than "
      "2x solo — the pair pays the shared bottleneck's busy time twice "
      "but overlaps protocol overhead — while the serialized reference "
      "pins the 2.00x upper bound. Mixed pairs overlap best because "
      "they saturate different resources.\n");
  reporter.Write();
  return 0;
}
