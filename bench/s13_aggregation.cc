// SIGMOD'13 sweep C: the effect of a terminal aggregation on in-SSD
// scan benefit, at fixed selectivity. Aggregation collapses the result
// to one tuple, removing the output-transfer stage entirely; returning
// rows pays per-tuple materialization on the embedded cores AND result
// transfer over the host link. The paper's Q6 (selection + aggregation)
// is the favourable case.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"

using namespace smartssd;

namespace {

constexpr int kColumns = 16;
constexpr std::uint64_t kRows = 600'000;

struct Outcome {
  double seconds;
  std::uint64_t result_bytes;
};

Outcome RunOnce(engine::Database& db, double selectivity, bool aggregate,
                int projected, engine::ExecutionTarget target) {
  db.ResetForColdRun();
  engine::QueryExecutor executor(&db);
  auto result = bench::Unwrap(
      executor.Execute(tpch::ScanQuerySpec("T", kColumns, selectivity,
                                           aggregate, projected),
                       target),
      "scan query");
  return {result.stats.elapsed_seconds(), result.stats.output_bytes};
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Scan with vs without aggregation (and narrow vs wide projection)",
      "the SIGMOD'13 with/without-aggregation comparison referenced in "
      "Section 4.2.1");

  engine::Database ssd_db(engine::DatabaseOptions::PaperSsd());
  bench::Unwrap(tpch::LoadSyntheticS(ssd_db, "T", kColumns, kRows, 1000,
                                     storage::PageLayout::kNsm),
                "load (SSD)");
  engine::Database smart_db(engine::DatabaseOptions::PaperSmartSsd());
  bench::Unwrap(tpch::LoadSyntheticS(smart_db, "T", kColumns, kRows, 1000,
                                     storage::PageLayout::kPax),
                "load (Smart)");

  struct Shape {
    const char* label;
    bool aggregate;
    int projected;  // 0 = all columns
  };
  const Shape shapes[] = {
      {"SUM aggregate (1 result tuple)", true, 0},
      {"return 2 columns", false, 2},
      {"return all 16 columns", false, 0},
  };

  std::printf("%-34s %12s %12s %9s\n", "query shape", "sel", "result MB",
              "speedup");
  bench::PrintRule();
  for (const double sel : {0.01, 0.5}) {
    for (const Shape& shape : shapes) {
      const Outcome host = RunOnce(ssd_db, sel, shape.aggregate,
                                   shape.projected,
                                   engine::ExecutionTarget::kHost);
      const Outcome smart = RunOnce(smart_db, sel, shape.aggregate,
                                    shape.projected,
                                    engine::ExecutionTarget::kSmartSsd);
      std::printf("%-34s %11.0f%% %12.2f %8.2fx\n", shape.label, sel * 100,
                  static_cast<double>(smart.result_bytes) / 1e6,
                  host.seconds / smart.seconds);
    }
  }
  bench::PrintRule();
  std::printf(
      "Shape check: aggregation preserves the benefit; wide row returns "
      "erode it, increasingly so at high selectivity.\n");
  return 0;
}
