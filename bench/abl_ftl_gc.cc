// Ablation 6: the FTL substrate under write pressure — garbage
// collection and write amplification vs over-provisioning. The paper's
// workloads are read-only after load, but the FTL is part of the
// firmware the embedded cores run (Section 2), and its behaviour bounds
// how an updatable Smart SSD database would behave.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "flash/flash_array.h"
#include "ftl/ftl.h"

using namespace smartssd;

namespace {

flash::Geometry SmallGeometry() {
  flash::Geometry g;
  g.channels = 4;
  g.chips_per_channel = 2;
  g.blocks_per_chip = 64;
  g.pages_per_block = 32;
  g.page_size_bytes = 4096;
  return g;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: FTL write amplification vs over-provisioning under "
      "random overwrites",
      "the Section 2 FTL description, exercised");

  std::printf("%-8s %12s %10s %12s %14s %12s\n", "OP", "logical pgs",
              "GC runs", "erases", "write amp", "max wear");
  bench::PrintRule();
  for (const double op : {0.07, 0.125, 0.25, 0.4}) {
    flash::FlashArray array(SmallGeometry(), flash::Timings{});
    ftl::FtlConfig config;
    config.over_provisioning = op;
    ftl::Ftl ftl(&array, config);

    // Fill to 90% of logical capacity, then randomly overwrite 4x the
    // logical space.
    const std::uint64_t live =
        ftl.logical_pages() * 9 / 10;
    std::vector<std::byte> page(4096, std::byte{0x42});
    SimTime t = 0;
    for (std::uint64_t lpn = 0; lpn < live; ++lpn) {
      t = bench::Unwrap(ftl.Write(lpn, page, t), "fill");
    }
    Random rng(1234);
    for (std::uint64_t i = 0; i < 4 * live; ++i) {
      const std::uint64_t lpn = rng.Uniform(live);
      t = bench::Unwrap(ftl.Write(lpn, page, t), "overwrite");
    }
    const ftl::FtlStats& stats = ftl.stats();
    std::printf("%6.1f%% %12llu %10llu %12llu %13.2fx %12u\n", op * 100,
                static_cast<unsigned long long>(ftl.logical_pages()),
                static_cast<unsigned long long>(stats.gc_runs),
                static_cast<unsigned long long>(stats.block_erases),
                stats.write_amplification(), ftl.max_erase_count());
  }
  bench::PrintRule();
  std::printf(
      "Shape check: write amplification falls monotonically as "
      "over-provisioning grows — the classic FTL trade-off.\n");
  return 0;
}
