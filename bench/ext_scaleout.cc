// Extension experiment: an array of Smart SSDs as a parallel DBMS —
// Section 4.3's end-of-spectrum vision ("the host machine could simply
// be the coordinator that stages computation across an array of Smart
// SSDs"). LINEITEM is partitioned across N devices; Q6 is scattered by
// the fault-tolerant FleetCoordinator to every device's embedded engine
// and the 8-byte partials are merged on the host in partition order.
// Because pushdown leaves the host idle and each device owns its data,
// scaling is near-linear until the coordinator's merge work matters (it
// never does for aggregates).

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/executor.h"
#include "engine/fleet.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {
constexpr double kScaleFactor = 0.05;
constexpr double kScaleUp = 100.0 / kScaleFactor;
}  // namespace

int main() {
  bench::PrintHeader(
      "Scale-out: Q6 across a fleet of 1..8 Smart SSDs",
      "the Section 4.3 'parallel DBMS of Smart SSDs' discussion");

  // Single regular-SSD host baseline.
  engine::Database ssd_db(engine::DatabaseOptions::PaperSsd());
  bench::Unwrap(tpch::LoadLineitem(ssd_db, "lineitem", kScaleFactor,
                                   storage::PageLayout::kNsm),
                "load (SSD)");
  ssd_db.ResetForColdRun();
  engine::QueryExecutor ssd_executor(&ssd_db);
  auto host_run = bench::Unwrap(
      ssd_executor.Execute(tpch::Q6Spec("lineitem"),
                           engine::ExecutionTarget::kHost),
      "host Q6");
  const double host_seconds = host_run.stats.elapsed_seconds();
  std::printf("baseline: 1x SAS SSD, host execution: %.1f s (SF100)\n\n",
              host_seconds * kScaleUp);

  std::printf("%-10s %14s %16s %14s\n", "devices", "Q6 (SF100 s)",
              "vs 1 smart SSD", "vs host SSD");
  bench::PrintRule();
  double one_device_seconds = 0;
  for (const int devices : {1, 2, 4, 8}) {
    engine::Fleet fleet(devices,
                        engine::DatabaseOptions::PaperSmartSsd());
    // Identical rows at every fleet size: the loader materializes the
    // sequential tpch stream once and splits it by global row ranges.
    bench::Check(tpch::LoadLineitemFleet(fleet, "lineitem", kScaleFactor,
                                         storage::PageLayout::kPax),
                 "partitioned load");

    const exec::QuerySpec spec = tpch::Q6Spec("lineitem");
    fleet.ResetForColdRun();
    auto result = bench::Unwrap(
        engine::ExecuteOnFleet(fleet, spec,
                               engine::ExecutionTarget::kSmartSsd),
        "fleet Q6");
    const double seconds = result.elapsed_seconds();
    if (devices == 1) one_device_seconds = seconds;
    std::printf("%-10d %13.1f %15.2fx %13.2fx\n", devices,
                seconds * kScaleUp, one_device_seconds / seconds,
                host_seconds / seconds);
  }
  bench::PrintRule();
  std::printf(
      "Shape check: near-linear scaling with devices; 8 Smart SSDs beat "
      "the single-SSD host by >10x, realizing the appliance vision.\n");
  return 0;
}
