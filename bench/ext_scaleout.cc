// Extension experiment: an array of Smart SSDs as a parallel DBMS —
// Section 4.3's end-of-spectrum vision ("the host machine could simply
// be the coordinator that stages computation across an array of Smart
// SSDs"). LINEITEM is partitioned across N workers; Q6 is dispatched to
// every device's embedded engine and the 8-byte partials are merged on
// the host. Because pushdown leaves the host idle and each device owns
// its data, scaling is near-linear until the coordinator's merge work
// matters (it never does for aggregates).

#include <cstdio>

#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "engine/parallel.h"
#include "storage/nsm_page.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {
constexpr double kScaleFactor = 0.05;
constexpr double kScaleUp = 100.0 / kScaleFactor;
}  // namespace

int main() {
  bench::PrintHeader(
      "Scale-out: Q6 across an array of 1..8 Smart SSDs",
      "the Section 4.3 'parallel DBMS of Smart SSDs' discussion");

  // Single regular-SSD host baseline.
  engine::Database ssd_db(engine::DatabaseOptions::PaperSsd());
  bench::Unwrap(tpch::LoadLineitem(ssd_db, "lineitem", kScaleFactor,
                                   storage::PageLayout::kNsm),
                "load (SSD)");
  ssd_db.ResetForColdRun();
  engine::QueryExecutor ssd_executor(&ssd_db);
  auto host_run = bench::Unwrap(
      ssd_executor.Execute(tpch::Q6Spec("lineitem"),
                           engine::ExecutionTarget::kHost),
      "host Q6");
  const double host_seconds = host_run.stats.elapsed_seconds();
  std::printf("baseline: 1x SAS SSD, host execution: %.1f s (SF100)\n\n",
              host_seconds * kScaleUp);

  std::printf("%-10s %14s %16s %14s\n", "workers", "Q6 (SF100 s)",
              "vs 1 smart SSD", "vs host SSD");
  bench::PrintRule();
  double one_worker_seconds = 0;
  for (const int workers : {1, 2, 4, 8}) {
    engine::ParallelDatabase cluster(
        workers, engine::DatabaseOptions::PaperSmartSsd());
    // Regenerate LINEITEM deterministically and split it by global row
    // ranges: identical data at every cluster size.
    const storage::Schema schema = tpch::LineitemSchema();
    const std::uint64_t rows = tpch::LineitemRows(kScaleFactor);
    // Materialize-and-replay (the tpch generator is sequential).
    auto buffer = std::make_shared<std::vector<std::byte>>(
        rows * schema.tuple_size());
    {
      engine::Database scratch(engine::DatabaseOptions::PaperSmartSsd());
      auto info = bench::Unwrap(
          tpch::LoadLineitem(scratch, "lineitem", kScaleFactor,
                             storage::PageLayout::kNsm),
          "scratch load");
      std::vector<std::byte> page(scratch.device().page_size());
      std::uint64_t row = 0;
      for (std::uint64_t p = 0; p < info.page_count; ++p) {
        bench::Unwrap(
            scratch.device().ReadPages(info.first_lpn + p, 1, page, 0),
            "scratch read");
        auto reader = storage::NsmPageReader::Open(&schema, page);
        bench::Check(reader.status(), "page open");
        for (std::uint16_t i = 0; i < reader->tuple_count(); ++i, ++row) {
          std::memcpy(buffer->data() + row * schema.tuple_size(),
                      reader->tuple(i), schema.tuple_size());
        }
      }
    }
    const std::uint32_t tuple_size = schema.tuple_size();
    storage::RowGenerator raw_gen =
        [buffer, tuple_size](std::uint64_t row,
                             storage::TupleWriter& writer) {
          writer.CopyFrom({buffer->data() + row * tuple_size, tuple_size});
        };
    bench::Check(cluster.LoadPartitionedTable(
                     "lineitem", schema, storage::PageLayout::kPax, rows,
                     raw_gen),
                 "partitioned load");

    cluster.ResetForColdRun();
    auto result = bench::Unwrap(
        cluster.Execute(tpch::Q6Spec("lineitem"),
                        engine::ExecutionTarget::kSmartSsd),
        "cluster Q6");
    const double seconds = result.elapsed_seconds();
    if (workers == 1) one_worker_seconds = seconds;
    std::printf("%-10d %13.1f %15.2fx %13.2fx\n", workers,
                seconds * kScaleUp, one_worker_seconds / seconds,
                host_seconds / seconds);
  }
  bench::PrintRule();
  std::printf(
      "Shape check: near-linear scaling with workers; 8 Smart SSDs beat "
      "the single-SSD host by >10x, realizing the appliance vision.\n");
  return 0;
}
