// Mixed ingest + scan workload over a GC-prone device: closed-loop scan
// clients co-run with an ingest client whose batches update and append
// through the host write path, forcing FTL garbage collection under
// query load. The paper rules writes out of the device (Section 4.3);
// this bench measures what the write path costs the *read* side — GC
// pauses queue behind scan reads on the same chips, and the victim-
// selection policy (greedy vs cost-benefit) measurably moves scan tail
// latency while the data the scans see stays byte-identical to a quiet
// device.
//
// The ingest is deliberately query-invariant: updates touch a column
// the scan never reads, appended rows fail the scan predicate. Every
// scan in every configuration must therefore return exactly the
// quiet-device ground truth — checked, exit(1) on any mismatch — so the
// policies can only differ in *when* things happen, never *what*.
//
// `--json=<path>` emits one row per configuration with scan p99 as the
// headline number plus FTL counters (gc_runs, relocations, write
// amplification, gc-pause p99).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "engine/workload.h"
#include "expr/expression.h"
#include "ftl/gc_policy.h"
#include "tpch/synthetic.h"

using namespace smartssd;

namespace ex = smartssd::expr;

namespace {

constexpr std::uint64_t kBaseRows = 30'000;
constexpr std::uint64_t kReservePages = 48;
constexpr int kScansPerClient = 12;
constexpr int kIngestBatches = 8;
constexpr std::uint64_t kUpdateHi = 6'000;   // keys [0, kUpdateHi] updated
constexpr std::uint64_t kAppendRows = 500;   // per batch

// Deterministic 4-column INT32 table, pure in the row index so appended
// rows are indistinguishable from loaded ones: Col_1 = row (key),
// Col_2 = row % 97, Col_3 = (row * 7) % 1000, Col_4 = 5.
void FillRow(std::uint64_t row, storage::TupleWriter& writer) {
  writer.SetInt32(0, static_cast<std::int32_t>(row));
  writer.SetInt32(1, static_cast<std::int32_t>(row % 97));
  writer.SetInt32(2, static_cast<std::int32_t>((row * 7) % 1000));
  writer.SetInt32(3, 5);
}

// Small device, tight over-provisioning, small buffer pool: scans pay
// flash reads and the ingest's flush-back pushes the free lists to the
// GC watermark within a few batches.
engine::DatabaseOptions GcProneOptions(ftl::GcPolicyKind policy) {
  engine::DatabaseOptions options =
      engine::DatabaseOptions::PaperSmartSsd();
  options.buffer_pool_pages = 96;
  options.ssd.geometry.channels = 2;
  options.ssd.geometry.chips_per_channel = 2;
  options.ssd.geometry.blocks_per_chip = 8;
  options.ssd.geometry.pages_per_block = 16;
  options.ssd.geometry.page_size_bytes = 2048;
  options.ssd.dram.capacity_bytes = 64 * kMiB;
  options.ssd.ftl.over_provisioning = 0.25;
  options.ssd.ftl.gc_low_watermark_blocks = 2;
  options.ssd.ftl.gc_policy = policy;
  return options;
}

void LoadBase(engine::Database& db) {
  bench::Unwrap(db.LoadTable("T", tpch::SyntheticSchema(4),
                             storage::PageLayout::kNsm, kBaseRows, FillRow,
                             kReservePages),
                "load T");
  bench::Check(db.BuildZoneMap("T"), "zone map");
  db.ResetForColdRun();
}

// The scan every client runs: SUM(Col_3) over the loaded key range.
// Appended rows (Col_1 >= kBaseRows) miss the predicate and updates
// mutate Col_4 only, so this sum is invariant under the whole ingest.
exec::QuerySpec ScanSpec() {
  exec::QuerySpec spec;
  spec.name = "invariant-scan";
  spec.table = "T";
  spec.predicate =
      ex::Lt(ex::Col(0), ex::Lit(static_cast<std::int64_t>(kBaseRows)));
  spec.aggregates.push_back({exec::AggSpec::Fn::kSum, ex::Col(2), "s"});
  return spec;
}

double PercentileSeconds(std::vector<SimDuration> sorted, double q) {
  const std::size_t n = sorted.size();
  std::size_t rank =
      static_cast<std::size_t>(std::max(1.0, std::ceil(q * n)));
  if (rank > n) rank = n;
  return ToSeconds(sorted[rank - 1]);
}

struct RunResult {
  std::vector<SimDuration> scan_latencies;  // sorted
  double ingest_p95_s = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_relocations = 0;
  double write_amplification = 1.0;
  double gc_pause_p99_ns = 0;
  std::int64_t col3_sum = 0;  // full-table SUM(Col_3) after the run
  std::int64_t col4_sum = 0;  // full-table SUM(Col_4) after the run
};

// One configuration: two closed-loop scan clients, plus (unless quiet)
// one ingest client running kIngestBatches update+append+flush batches.
RunResult RunConfig(ftl::GcPolicyKind policy, bool with_ingest,
                    std::int64_t truth) {
  engine::Database db(GcProneOptions(policy));
  LoadBase(db);

  engine::WorkloadScheduler sched(&db);
  for (const char* client : {"scan-a", "scan-b"}) {
    engine::WorkloadQueryConfig scan;
    scan.client = client;
    scan.spec = ScanSpec();
    scan.target = engine::ExecutionTarget::kHost;
    sched.AddClosedLoopClient(std::move(scan), kScansPerClient);
  }

  const ex::ExprPtr update_pred =
      ex::Le(ex::Col(0), ex::Lit(static_cast<std::int64_t>(kUpdateHi)));
  if (with_ingest) {
    engine::IngestClientConfig ingest;
    ingest.client = "writer";
    ingest.spec.table = "T";
    ingest.spec.with_update = true;
    ingest.spec.update_predicate = update_pred.get();
    // Col_4 is never read by the scans; the mutation still dirties and
    // rewrites every page of the key range.
    ingest.spec.mutate = [](const expr::RowView&,
                            storage::TupleWriter& writer) {
      writer.SetInt32(3, 7);
    };
    ingest.spec.append_rows = kAppendRows;
    ingest.spec.append_gen = FillRow;
    sched.AddIngestClient(std::move(ingest), kIngestBatches);
  }

  const std::vector<engine::CompletedQuery> records =
      bench::Unwrap(sched.Run(), "workload");

  RunResult result;
  for (const engine::CompletedQuery& r : records) {
    bench::Check(r.result.status(), "scan");
    if (r.result.value().agg_values[0] != truth) {
      std::fprintf(stderr,
                   "scan %llu returned %lld, quiet-device truth is %lld — "
                   "the write path corrupted a read\n",
                   static_cast<unsigned long long>(r.id),
                   static_cast<long long>(r.result.value().agg_values[0]),
                   static_cast<long long>(truth));
      std::exit(1);
    }
    result.scan_latencies.push_back(r.latency());
  }
  std::sort(result.scan_latencies.begin(), result.scan_latencies.end());

  std::vector<SimDuration> ingest_latencies;
  for (const engine::CompletedIngest& b : sched.completed_ingests()) {
    bench::Check(b.result.status(), "ingest batch");
    ingest_latencies.push_back(b.latency());
  }
  if (!ingest_latencies.empty()) {
    std::sort(ingest_latencies.begin(), ingest_latencies.end());
    result.ingest_p95_s = PercentileSeconds(ingest_latencies, 0.95);
  }

  const ftl::FtlStats& ftl_stats = db.ssd()->ftl().stats();
  result.gc_runs = ftl_stats.gc_runs;
  result.gc_relocations = ftl_stats.gc_relocations;
  result.write_amplification = ftl_stats.write_amplification();
  result.gc_pause_p99_ns =
      db.metrics().histogram("ftl.gc_pause_ns")->p99();

  // Final-state check inputs: full-table sums over both the scanned and
  // the mutated column.
  auto full_sum = [&db](int col) {
    exec::QuerySpec spec;
    spec.table = "T";
    spec.aggregates.push_back(
        {exec::AggSpec::Fn::kSum, ex::Col(col), "s"});
    engine::QueryExecutor executor(&db);
    return bench::Unwrap(executor.Execute(spec,
                                          engine::ExecutionTarget::kHost),
                         "final sum")
        .agg_values[0];
  };
  result.col3_sum = full_sum(2);
  result.col4_sum = full_sum(3);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Mixed ingest + scan workload: GC policy vs scan tail latency on a "
      "write-loaded device",
      "the write path Section 4.3 rules out of the device, measured "
      "from the host side");
  bench::JsonReporter reporter("ingest_workload", argc, argv);

  // Quiet-device ground truth for the invariant scan.
  std::int64_t truth = 0;
  {
    engine::Database quiet(GcProneOptions(ftl::GcPolicyKind::kGreedy));
    LoadBase(quiet);
    engine::QueryExecutor executor(&quiet);
    truth = bench::Unwrap(
                executor.Execute(ScanSpec(), engine::ExecutionTarget::kHost),
                "truth scan")
                .agg_values[0];
  }

  struct Config {
    const char* name;
    ftl::GcPolicyKind policy;
    bool with_ingest;
  };
  const Config kConfigs[] = {
      {"quiet", ftl::GcPolicyKind::kGreedy, false},
      {"greedy", ftl::GcPolicyKind::kGreedy, true},
      {"cost-benefit", ftl::GcPolicyKind::kCostBenefit, true},
  };

  std::printf("%-13s | %8s %8s %8s | %7s %7s %7s %9s\n", "config",
              "p50 s", "p95 s", "p99 s", "gc", "reloc", "WA",
              "pause p99");
  bench::PrintRule();

  double quiet_p99 = 0;
  RunResult policy_results[2];
  int policy_index = 0;
  for (const Config& config : kConfigs) {
    const RunResult r = RunConfig(config.policy, config.with_ingest, truth);
    const double p50 = PercentileSeconds(r.scan_latencies, 0.50);
    const double p95 = PercentileSeconds(r.scan_latencies, 0.95);
    const double p99 = PercentileSeconds(r.scan_latencies, 0.99);
    std::printf("%-13s | %8.4f %8.4f %8.4f | %7llu %7llu %6.2fx %7.2fms\n",
                config.name, p50, p95, p99,
                static_cast<unsigned long long>(r.gc_runs),
                static_cast<unsigned long long>(r.gc_relocations),
                r.write_amplification, r.gc_pause_p99_ns / 1e6);
    if (!config.with_ingest) {
      quiet_p99 = p99;
    } else {
      policy_results[policy_index++] = r;
    }
    reporter.AddWithCounters(
        config.name, p99, NAN, quiet_p99 > 0 ? p99 / quiet_p99 : 1.0,
        {{"gc_runs", static_cast<double>(r.gc_runs)},
         {"gc_relocations", static_cast<double>(r.gc_relocations)},
         {"write_amplification", r.write_amplification},
         {"gc_pause_p99_ns", r.gc_pause_p99_ns},
         {"ingest_p95_s", r.ingest_p95_s}});
  }
  bench::PrintRule();

  // Both ingest configurations ran the same batches: the final relation
  // must agree between policies — GC placement is never host-visible.
  if (policy_results[0].col3_sum != policy_results[1].col3_sum ||
      policy_results[0].col4_sum != policy_results[1].col4_sum) {
    std::fprintf(stderr,
                 "GC policies disagree on the final relation "
                 "(col3 %lld vs %lld, col4 %lld vs %lld)\n",
                 static_cast<long long>(policy_results[0].col3_sum),
                 static_cast<long long>(policy_results[1].col3_sum),
                 static_cast<long long>(policy_results[0].col4_sum),
                 static_cast<long long>(policy_results[1].col4_sum));
    return 1;
  }
  if (policy_results[0].gc_runs == 0 || policy_results[1].gc_runs == 0) {
    std::fprintf(stderr, "ingest never drove GC — bench is not "
                         "exercising the write path\n");
    return 1;
  }

  std::printf(
      "Shape check: every scan returned the quiet-device truth in every "
      "configuration (verified), both policies converge to the same "
      "relation, and the ingest load moves scan p99 off the quiet "
      "baseline by a policy-dependent amount.\n");
  reporter.Write();
  return 0;
}
