// Wall-clock harness for the execution kernel rewrite: runs the same
// scan/aggregate pipeline through the scalar (interpreted,
// tuple-at-a-time) and vectorized (batch, selection-vector) kernels
// over identical in-memory pages, and reports steady-clock rows/sec for
// each. Unlike the fig*/table* benches this measures the *simulator's
// own* CPU efficiency — virtual-time numbers are identical across
// kernels by construction (the differential harness proves it), so the
// only thing at stake here is how fast the host machine grinds pages.
//
//   wall_kernels [--json=BENCH_wall.json]
//
// Sweeps selectivity at fixed width, and tuple width at fixed
// selectivity, over both page layouts. Each JSON row carries
// rows_per_sec; the vectorized rows carry measured_ratio = speedup over
// the scalar kernel on the same configuration.

#include <cinttypes>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "exec/page_processor.h"
#include "exec/query_spec.h"
#include "storage/catalog.h"
#include "storage/nsm_page.h"
#include "storage/pax_page.h"
#include "storage/tuple.h"
#include "tpch/synthetic.h"

using namespace smartssd;

namespace {

namespace ex = ::smartssd::expr;
using storage::PageLayout;

constexpr std::uint32_t kPageSize = 8192;
constexpr int kRows = 400000;
constexpr int kRepeats = 3;
constexpr std::int32_t kValueRange = 1 << 30;

// An in-memory table: page images plus the catalog entry describing
// them. No device underneath — the pages are fed to the processor
// directly, so flash never shows up in the timing.
struct MemTable {
  storage::TableInfo info;
  std::vector<std::vector<std::byte>> pages;
};

MemTable BuildTable(int columns, PageLayout layout, int rows) {
  const storage::Schema schema = tpch::SyntheticSchema(columns);
  MemTable table;
  std::vector<std::byte> tuple(schema.tuple_size());
  storage::NsmPageBuilder nsm(&schema, kPageSize);
  storage::PaxPageBuilder pax(&schema, kPageSize);
  Random rng(42);
  auto seal = [&]() {
    if (layout == PageLayout::kNsm) {
      table.pages.emplace_back(nsm.image().begin(), nsm.image().end());
      nsm.Reset();
    } else {
      table.pages.emplace_back(pax.image().begin(), pax.image().end());
      pax.Reset();
    }
  };
  for (int row = 0; row < rows; ++row) {
    storage::TupleWriter w(&schema, tuple);
    for (int c = 0; c < columns; ++c) {
      w.SetInt32(c, static_cast<std::int32_t>(rng.Uniform(kValueRange)));
    }
    const bool ok = layout == PageLayout::kNsm ? nsm.Append(tuple)
                                               : pax.Append(tuple);
    if (!ok) {
      seal();
      SMARTSSD_CHECK(layout == PageLayout::kNsm ? nsm.Append(tuple)
                                                : pax.Append(tuple));
    }
  }
  if ((layout == PageLayout::kNsm && nsm.tuple_count() > 0) ||
      (layout == PageLayout::kPax && pax.tuple_count() > 0)) {
    seal();
  }
  table.info = storage::TableInfo{
      .name = "t",
      .schema = schema,
      .layout = layout,
      .first_lpn = 0,
      .page_count = table.pages.size(),
      .tuple_count = static_cast<std::uint64_t>(rows),
      .tuples_per_page = 0};
  return table;
}

// SELECT SUM(col2) FROM t WHERE col1 < threshold — the scan-aggregate
// shape of the paper's Q6-style workloads.
exec::QuerySpec ScanAggSpec(double selectivity) {
  exec::QuerySpec spec;
  spec.name = "wall-scan-agg";
  spec.table = "t";
  spec.predicate = ex::Lt(
      ex::Col(1),
      ex::Lit(static_cast<std::int64_t>(selectivity * kValueRange)));
  spec.aggregates.push_back(
      {exec::AggSpec::Fn::kSum, ex::Col(2), "sum_v"});
  return spec;
}

struct KernelRun {
  double seconds = 0;
  double rows_per_sec = 0;
  std::vector<std::int64_t> aggs;
  exec::OpCounts counts;
};

KernelRun RunKernel(const exec::BoundQuery& bound, const MemTable& table,
                    exec::KernelMode mode) {
  KernelRun run;
  auto pass = [&]() {
    exec::PageProcessor processor(&bound, nullptr, mode);
    if (mode == exec::KernelMode::kVectorized) {
      // A silent fallback would time the scalar kernel twice and report
      // a bogus 1.0x — refuse to measure it.
      SMARTSSD_CHECK(processor.kernel_mode() == exec::KernelMode::kVectorized);
    }
    std::vector<std::byte> out;
    exec::OpCounts counts;
    for (const auto& page : table.pages) {
      bench::Check(processor.ProcessPage(page, &counts, &out),
                   "ProcessPage");
    }
    bench::Check(processor.Finish(&counts, &out), "Finish");
    run.aggs = processor.agg_state();
    run.counts = counts;
  };
  const bench::WallMeasurement m = bench::MeasureWall(
      static_cast<std::uint64_t>(kRows), kRepeats, pass);
  run.seconds = m.seconds;
  run.rows_per_sec = m.rows_per_sec;
  return run;
}

struct Config {
  std::string name;
  double selectivity;
  int columns;
  PageLayout layout;
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter json("wall_kernels", argc, argv);
  bench::PrintHeader(
      "Wall-clock kernel throughput: scalar vs vectorized",
      "execution-kernel rewrite; simulator efficiency, not device time");

  std::vector<Config> configs;
  for (const double sel : {0.01, 0.10, 0.50, 0.90}) {
    for (const PageLayout layout : {PageLayout::kNsm, PageLayout::kPax}) {
      char name[64];
      std::snprintf(name, sizeof(name), "scan-agg sel=%.0f%% w=8 %s",
                    sel * 100, layout == PageLayout::kNsm ? "nsm" : "pax");
      configs.push_back({name, sel, 8, layout});
    }
  }
  for (const int columns : {4, 32}) {
    for (const PageLayout layout : {PageLayout::kNsm, PageLayout::kPax}) {
      char name[64];
      std::snprintf(name, sizeof(name), "scan-agg sel=10%% w=%d %s",
                    columns, layout == PageLayout::kNsm ? "nsm" : "pax");
      configs.push_back({name, 0.10, columns, layout});
    }
  }

  std::printf("%-28s %14s %14s %8s\n", "config", "scalar rows/s",
              "vector rows/s", "speedup");
  bench::PrintRule();

  for (const Config& config : configs) {
    const MemTable table =
        BuildTable(config.columns, config.layout, kRows);
    storage::Catalog catalog(100000);
    bench::Check(catalog.AddTable(table.info), "AddTable");
    const exec::QuerySpec spec = ScanAggSpec(config.selectivity);
    auto bound = exec::Bind(spec, catalog);
    bench::Check(bound.status(), "Bind");

    const KernelRun scalar =
        RunKernel(*bound, table, exec::KernelMode::kScalar);
    const KernelRun vectorized =
        RunKernel(*bound, table, exec::KernelMode::kVectorized);

    // The two kernels must agree bit for bit — a fast wrong answer is
    // not a speedup.
    SMARTSSD_CHECK(scalar.aggs == vectorized.aggs);
    SMARTSSD_CHECK(scalar.counts == vectorized.counts);

    const double speedup = scalar.rows_per_sec > 0
                               ? vectorized.rows_per_sec / scalar.rows_per_sec
                               : 0;
    std::printf("%-28s %14.3g %14.3g %7.2fx\n", config.name.c_str(),
                scalar.rows_per_sec, vectorized.rows_per_sec, speedup);
    json.AddWall(config.name + " scalar", scalar.seconds, NAN, NAN,
                 scalar.rows_per_sec);
    json.AddWall(config.name + " vectorized", vectorized.seconds, NAN,
                 speedup, vectorized.rows_per_sec);
  }

  bench::PrintRule();
  std::printf("rows per config: %d; best of %d repeats after warmup\n",
              kRows, kRepeats);
  json.Write();
  return 0;
}
