// Wall-clock harness for the execution kernel: runs the same
// scan/aggregate pipeline through the scalar (interpreted,
// tuple-at-a-time) kernel and several build-ups of the vectorized
// (batch, selection-vector) kernel over identical in-memory pages, and
// reports steady-clock rows/sec for each. Unlike the fig*/table*
// benches this measures the *simulator's own* CPU efficiency —
// virtual-time numbers are identical across all of these by
// construction (the differential harness proves it), so the only thing
// at stake here is how fast the host machine grinds pages.
//
//   wall_kernels [--json=BENCH_wall.json] [--threads=2,4]
//
// Measured configurations per workload:
//   scalar            interpreted reference kernel
//   vectorized        batch kernel, SIMD lanes forced off (the PR4
//                     baseline every speedup is quoted against)
//   vectorized+simd   batch kernel on this CPU's best ISA
//   vectorized+simd+zm  ... plus zone-map batch skipping (headline;
//                     measured_ratio = speedup over `vectorized`)
//   morsel tN         headline kernel under the morsel-parallel
//                     scanner at N worker threads (PAX 1%/10% only)
// Every run's aggregates AND OpCounts are checked identical to the
// scalar kernel — a fast wrong answer is not a speedup, and a kernel
// that charges different counts would corrupt virtual time.
//
// col1 (the predicate column) is generated as a row-proportional ramp —
// the clustered shape of a date-ordered fact table (think l_shipdate),
// which is what makes per-page min/max statistics selective. The other
// columns stay uniform random. All kernels read the identical pages.
//
// Sweeps selectivity at fixed width, and tuple width at fixed
// selectivity, over both page layouts. Each JSON row carries
// rows_per_sec; a metadata header row records the toolchain, build
// type, and kernel ISA that produced the numbers.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "exec/morsel.h"
#include "exec/page_processor.h"
#include "exec/query_spec.h"
#include "expr/kernel_isa.h"
#include "storage/catalog.h"
#include "storage/nsm_page.h"
#include "storage/pax_page.h"
#include "storage/tuple.h"
#include "storage/zone_map.h"
#include "tpch/synthetic.h"

using namespace smartssd;

namespace {

namespace ex = ::smartssd::expr;
using storage::PageLayout;

constexpr std::uint32_t kPageSize = 8192;
constexpr int kRows = 400000;
constexpr int kRepeats = 5;
constexpr std::int32_t kValueRange = 1 << 30;

#ifndef SMARTSSD_BUILD_TYPE
#define SMARTSSD_BUILD_TYPE "unknown"
#endif

// An in-memory table: page images plus the catalog entry describing
// them. No device underneath — the pages are fed to the processor
// directly, so flash never shows up in the timing.
struct MemTable {
  storage::TableInfo info;
  std::vector<std::vector<std::byte>> pages;
  std::optional<storage::ZoneMap> zone_map;
};

MemTable BuildTable(int columns, PageLayout layout, int rows) {
  const storage::Schema schema = tpch::SyntheticSchema(columns);
  MemTable table;
  std::vector<std::byte> tuple(schema.tuple_size());
  storage::NsmPageBuilder nsm(&schema, kPageSize);
  storage::PaxPageBuilder pax(&schema, kPageSize);
  Random rng(42);
  auto seal = [&]() {
    if (layout == PageLayout::kNsm) {
      table.pages.emplace_back(nsm.image().begin(), nsm.image().end());
      nsm.Reset();
    } else {
      table.pages.emplace_back(pax.image().begin(), pax.image().end());
      pax.Reset();
    }
  };
  for (int row = 0; row < rows; ++row) {
    storage::TupleWriter w(&schema, tuple);
    for (int c = 0; c < columns; ++c) {
      if (c == 1) {
        // Clustered predicate column: a row-proportional ramp over the
        // same value range the uniform columns draw from, so a
        // selectivity-s predicate still passes ~s of the rows but the
        // matches concentrate in the first ~s of the pages.
        w.SetInt32(c, static_cast<std::int32_t>(
                          (static_cast<std::int64_t>(row) * kValueRange) /
                          rows));
      } else {
        w.SetInt32(c, static_cast<std::int32_t>(rng.Uniform(kValueRange)));
      }
    }
    const bool ok = layout == PageLayout::kNsm ? nsm.Append(tuple)
                                               : pax.Append(tuple);
    if (!ok) {
      seal();
      SMARTSSD_CHECK(layout == PageLayout::kNsm ? nsm.Append(tuple)
                                                : pax.Append(tuple));
    }
  }
  if ((layout == PageLayout::kNsm && nsm.tuple_count() > 0) ||
      (layout == PageLayout::kPax && pax.tuple_count() > 0)) {
    seal();
  }
  table.info = storage::TableInfo{
      .name = "t",
      .schema = schema,
      .layout = layout,
      .first_lpn = 0,
      .page_count = table.pages.size(),
      .tuple_count = static_cast<std::uint64_t>(rows),
      .tuples_per_page = 0};
  table.zone_map = bench::Unwrap(
      storage::ZoneMap::Build(
          table.info,
          [&](std::uint64_t page_index)
              -> Result<std::span<const std::byte>> {
            return std::span<const std::byte>(table.pages[page_index]);
          }),
      "ZoneMap::Build");
  return table;
}

// SELECT SUM(col2) FROM t WHERE col1 < threshold — the scan-aggregate
// shape of the paper's Q6-style workloads.
exec::QuerySpec ScanAggSpec(double selectivity) {
  exec::QuerySpec spec;
  spec.name = "wall-scan-agg";
  spec.table = "t";
  spec.predicate = ex::Lt(
      ex::Col(1),
      ex::Lit(static_cast<std::int64_t>(selectivity * kValueRange)));
  spec.aggregates.push_back(
      {exec::AggSpec::Fn::kSum, ex::Col(2), "sum_v"});
  return spec;
}

struct KernelRun {
  double seconds = 0;
  double rows_per_sec = 0;
  std::vector<std::int64_t> aggs;
  exec::OpCounts counts;
};

struct RunOptions {
  exec::KernelMode mode = exec::KernelMode::kVectorized;
  expr::KernelIsa isa = expr::KernelIsa::kScalarIsa;
  bool use_zone_map = false;
  int morsel_threads = 0;  // 0 = serial page loop
};

KernelRun RunKernel(const exec::BoundQuery& bound, const MemTable& table,
                    const RunOptions& options) {
  const expr::ScopedKernelIsa scoped_isa(options.isa);
  const storage::ZoneMap* map =
      options.use_zone_map ? &*table.zone_map : nullptr;
  KernelRun run;
  auto pass = [&]() {
    std::vector<std::byte> out;
    exec::OpCounts counts;
    if (options.morsel_threads > 0) {
      exec::MorselScanner scanner(&bound, nullptr,
                                  exec::KernelMode::kVectorized, map,
                                  options.morsel_threads);
      for (std::size_t p = 0; p < table.pages.size(); ++p) {
        scanner.AddPage(p, table.pages[p]);
      }
      bench::Check(scanner.Drain(), "MorselScanner::Drain");
      for (std::size_t i = 0; i < scanner.pages_submitted(); ++i) {
        counts += scanner.page_counts(i);
      }
      scanner.AppendRows(&out);
      bench::Check(scanner.merged().Finish(&counts, &out), "Finish");
      run.aggs = scanner.merged().agg_state();
    } else {
      exec::PageProcessor processor(&bound, nullptr, options.mode);
      if (options.mode == exec::KernelMode::kVectorized) {
        // A silent fallback would time the scalar kernel twice and
        // report a bogus 1.0x — refuse to measure it.
        SMARTSSD_CHECK(processor.kernel_mode() ==
                       exec::KernelMode::kVectorized);
      }
      processor.SetZoneMap(map);
      for (std::size_t p = 0; p < table.pages.size(); ++p) {
        bench::Check(processor.ProcessPage(table.pages[p], p, &counts, &out),
                     "ProcessPage");
      }
      bench::Check(processor.Finish(&counts, &out), "Finish");
      run.aggs = processor.agg_state();
    }
    run.counts = counts;
  };
  const bench::WallMeasurement m = bench::MeasureWall(
      static_cast<std::uint64_t>(kRows), kRepeats, pass);
  run.seconds = m.seconds;
  run.rows_per_sec = m.rows_per_sec;
  return run;
}

struct Config {
  std::string name;
  double selectivity;
  int columns;
  PageLayout layout;
  bool morsel;  // also measure the morsel scanner on this config
};

const char* CompilerId() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter json("wall_kernels", argc, argv);
  bench::PrintHeader(
      "Wall-clock kernel throughput: scalar vs vectorized vs SIMD",
      "raw-speed pass; simulator efficiency, not device time");

  std::vector<int> morsel_threads = {2, 4};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    constexpr std::string_view kFlag = "--threads=";
    if (arg.substr(0, kFlag.size()) == kFlag) {
      morsel_threads.clear();
      std::string list(arg.substr(kFlag.size()));
      for (char* tok = std::strtok(list.data(), ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        const int t = std::atoi(tok);
        if (t >= 2) morsel_threads.push_back(t);
      }
    }
  }

  const expr::KernelIsa best_isa = expr::DetectKernelIsa();
  json.SetMetadata(
      {{"compiler", CompilerId()},
       {"build_type", SMARTSSD_BUILD_TYPE},
       {"kernel_isa_detected", expr::KernelIsaName(best_isa)},
       {"kernel_isa_active",
        expr::KernelIsaName(expr::CurrentKernelIsa())},
       {"hardware_threads",
        std::to_string(std::thread::hardware_concurrency())}});

  std::vector<Config> configs;
  for (const double sel : {0.01, 0.10, 0.50, 0.90}) {
    for (const PageLayout layout : {PageLayout::kNsm, PageLayout::kPax}) {
      char name[64];
      std::snprintf(name, sizeof(name), "scan-agg sel=%.0f%% w=8 %s",
                    sel * 100, layout == PageLayout::kNsm ? "nsm" : "pax");
      // Morsel rows only on the headline PAX 1%/10% configurations.
      const bool morsel = layout == PageLayout::kPax && sel <= 0.10;
      configs.push_back({name, sel, 8, layout, morsel});
    }
  }
  for (const int columns : {4, 32}) {
    for (const PageLayout layout : {PageLayout::kNsm, PageLayout::kPax}) {
      char name[64];
      std::snprintf(name, sizeof(name), "scan-agg sel=10%% w=%d %s",
                    columns, layout == PageLayout::kNsm ? "nsm" : "pax");
      configs.push_back({name, 0.10, columns, layout, false});
    }
  }

  std::printf("%-26s %12s %12s %12s %12s %8s\n", "config", "scalar r/s",
              "vector r/s", "+simd r/s", "+simd+zm", "zm-gain");
  bench::PrintRule();

  for (const Config& config : configs) {
    const MemTable table =
        BuildTable(config.columns, config.layout, kRows);
    storage::Catalog catalog(100000);
    bench::Check(catalog.AddTable(table.info), "AddTable");
    const exec::QuerySpec spec = ScanAggSpec(config.selectivity);
    auto bound = exec::Bind(spec, catalog);
    bench::Check(bound.status(), "Bind");

    const KernelRun scalar = RunKernel(
        *bound, table, {.mode = exec::KernelMode::kScalar});
    const KernelRun vectorized = RunKernel(
        *bound, table, {.isa = expr::KernelIsa::kScalarIsa});
    const KernelRun simd =
        RunKernel(*bound, table, {.isa = best_isa});
    const KernelRun simd_zm = RunKernel(
        *bound, table, {.isa = best_isa, .use_zone_map = true});

    // Every kernel build-up must agree with the interpreter bit for bit
    // in results AND operation counts — the count identity is what
    // keeps virtual time independent of all of this machinery.
    SMARTSSD_CHECK(scalar.aggs == vectorized.aggs);
    SMARTSSD_CHECK(scalar.counts == vectorized.counts);
    SMARTSSD_CHECK(scalar.aggs == simd.aggs);
    SMARTSSD_CHECK(scalar.counts == simd.counts);
    SMARTSSD_CHECK(scalar.aggs == simd_zm.aggs);
    SMARTSSD_CHECK(scalar.counts == simd_zm.counts);

    auto speedup_over = [](const KernelRun& num, const KernelRun& den) {
      return den.rows_per_sec > 0 ? num.rows_per_sec / den.rows_per_sec : 0;
    };
    std::printf("%-26s %12.3g %12.3g %12.3g %12.3g %7.2fx\n",
                config.name.c_str(), scalar.rows_per_sec,
                vectorized.rows_per_sec, simd.rows_per_sec,
                simd_zm.rows_per_sec, speedup_over(simd_zm, vectorized));
    json.AddWall(config.name + " scalar", scalar.seconds, NAN, NAN,
                 scalar.rows_per_sec);
    json.AddWall(config.name + " vectorized", vectorized.seconds, NAN,
                 speedup_over(vectorized, scalar),
                 vectorized.rows_per_sec);
    json.AddWall(config.name + " vectorized+simd", simd.seconds, NAN,
                 speedup_over(simd, vectorized), simd.rows_per_sec);
    json.AddWall(config.name + " vectorized+simd+zm", simd_zm.seconds,
                 NAN, speedup_over(simd_zm, vectorized),
                 simd_zm.rows_per_sec);

    if (config.morsel) {
      // Morsel scaling is measured without the zone map: batch skipping
      // leaves almost no per-page work on these clustered configs, so a
      // skip-enabled morsel row would only measure dispatch overhead.
      // The interesting question is how the full-work SIMD kernel
      // scales across threads, so measured_ratio = speedup over the
      // single-threaded `vectorized+simd` row.
      for (const int t : morsel_threads) {
        const KernelRun morsel = RunKernel(
            *bound, table, {.isa = best_isa, .morsel_threads = t});
        SMARTSSD_CHECK(scalar.aggs == morsel.aggs);
        SMARTSSD_CHECK(scalar.counts == morsel.counts);
        char mname[96];
        std::snprintf(mname, sizeof(mname), "%s morsel t%d",
                      config.name.c_str(), t);
        std::printf("%-26s %12s %12s %12.3g %12s %7.2fx\n", mname, "", "",
                    morsel.rows_per_sec, "", speedup_over(morsel, simd));
        json.AddWall(mname, morsel.seconds, NAN, speedup_over(morsel, simd),
                     morsel.rows_per_sec);
      }
    }
  }

  bench::PrintRule();
  std::printf(
      "rows per config: %d; best of %d repeats after warmup; "
      "kernel isa: %s (detected %s)\n",
      kRows, kRepeats, expr::KernelIsaName(expr::CurrentKernelIsa()),
      expr::KernelIsaName(best_isa));
  json.Write();
  return 0;
}
