// Ablation: query latency under injected device faults. Sweeps the
// per-page uncorrectable-read rate from 0 to 1e-2 and runs TPC-H Q6
// through the pushdown path with host fallback enabled. At low rates
// the occasional failed session costs one wasted device attempt and a
// host re-scan; at flash-death rates both paths start losing reads and
// queries fail outright — degraded execution buys graceful slowdown,
// not immortality.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "sim/fault_injector.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {

constexpr double kSf = 0.01;  // 60k LINEITEM rows, ~1k pages
constexpr int kTrials = 25;

struct RateOutcome {
  int clean = 0;     // pushdown succeeded on the device
  int fallback = 0;  // session failed, host path delivered
  int failed = 0;    // both paths lost reads
  double total_seconds = 0;  // over delivered queries
  int delivered() const { return clean + fallback; }
};

sim::FaultSchedule ScheduleFor(double rate, std::uint64_t seed) {
  sim::FaultSchedule schedule;
  if (rate > 0) {
    schedule.random.push_back(
        sim::RandomFault{sim::FaultKind::kUncorrectableRead, rate});
  }
  schedule.seed = seed;
  return schedule;
}

RateOutcome Sweep(engine::Database& db, const exec::QuerySpec& spec,
                  double rate) {
  RateOutcome outcome;
  for (int trial = 0; trial < kTrials; ++trial) {
    db.ResetForColdRun();
    db.ssd()->fault_injector().Load(
        ScheduleFor(rate, /*seed=*/0xFA17 + trial));
    engine::QueryExecutor executor(&db);
    auto result = executor.Execute(spec, engine::ExecutionTarget::kSmartSsd);
    if (!result.ok()) {
      // The fallback host scan hit an uncorrectable page too.
      ++outcome.failed;
      continue;
    }
    if (result->stats.fell_back) {
      ++outcome.fallback;
    } else {
      ++outcome.clean;
    }
    outcome.total_seconds += result->stats.elapsed_seconds();
  }
  db.ssd()->fault_injector().Clear();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("abl_fault_degradation", argc, argv);
  bench::PrintHeader(
      "Ablation: Q6 under injected uncorrectable-read faults "
      "(pushdown with host fallback)",
      "the Section 5 reliability discussion: degraded execution cost");

  engine::Database db(engine::DatabaseOptions::PaperSmartSsd());
  bench::Unwrap(
      tpch::LoadLineitem(db, "lineitem", kSf, storage::PageLayout::kPax),
      "load lineitem");
  const exec::QuerySpec spec = tpch::Q6Spec("lineitem");

  const double rates[] = {0.0, 1e-5, 1e-4, 1e-3, 1e-2};
  const RateOutcome baseline = Sweep(db, spec, 0.0);
  const double clean_seconds =
      baseline.total_seconds / baseline.delivered();

  std::printf("%-12s %7s %9s %7s %13s %10s\n", "fault/page", "clean",
              "fallback", "failed", "mean Q6 (s)", "overhead");
  bench::PrintRule();
  for (const double rate : rates) {
    const RateOutcome outcome =
        rate == 0.0 ? baseline : Sweep(db, spec, rate);
    const double mean =
        outcome.delivered() > 0
            ? outcome.total_seconds / outcome.delivered()
            : 0.0;
    std::printf("%-12.0e %7d %9d %7d %13.4f %9.2fx\n", rate,
                outcome.clean, outcome.fallback, outcome.failed, mean,
                mean > 0 ? mean / clean_seconds : 0.0);
    // Ratio is mean-latency overhead over the fault-free sweep; the
    // paper discusses degraded execution qualitatively, so there is no
    // paper number to compare against (null in the JSON).
    char config[32];
    std::snprintf(config, sizeof(config), "rate=%.0e", rate);
    reporter.Add(config, mean, NAN,
                 mean > 0 ? mean / clean_seconds : NAN);
  }
  bench::PrintRule();
  std::printf(
      "Delivered queries stay byte-correct at every rate; the overhead\n"
      "column is the price of the wasted device attempt plus the host\n"
      "re-scan. 'failed' counts trials where the fallback scan also hit\n"
      "an uncorrectable page — past ~1e-3/page the medium itself is\n"
      "dying and no execution path can save the query.\n");
  std::printf("circuit breaker: %llu failures recorded, %llu trips\n",
              static_cast<unsigned long long>(
                  db.circuit_breaker().total_failures()),
              static_cast<unsigned long long>(
                  db.circuit_breaker().trips()));
  reporter.Write();
  return 0;
}
