// Ablation 5: DBMS/flash page size. Bigger pages amortize per-page
// overheads (command handling, directory parsing) on both processors
// and raise the sequential efficiency of the HDD baseline most of all.
// The paper fixed 8 KB; this sweep shows the choice is not what its
// conclusions hinge on.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {
constexpr double kScaleFactor = 0.05;
}  // namespace

int main() {
  bench::PrintHeader("Ablation: page size vs Q6 on both paths",
                     "the Section 4.1.1 storage configuration");

  std::printf("%-12s %12s %14s %14s %10s\n", "page size", "tuples/pg",
              "host Q6 (s)", "smart Q6 (s)", "speedup");
  bench::PrintRule();
  for (const std::uint32_t kib : {4u, 8u, 16u, 32u}) {
    engine::DatabaseOptions ssd_options =
        engine::DatabaseOptions::PaperSsd();
    ssd_options.ssd.geometry.page_size_bytes = kib * 1024;
    ssd_options.ssd.geometry.blocks_per_chip = 512 * 8 / kib;
    engine::Database ssd_db(ssd_options);
    auto info = bench::Unwrap(
        tpch::LoadLineitem(ssd_db, "lineitem", kScaleFactor,
                           storage::PageLayout::kNsm),
        "load (SSD)");
    ssd_db.ResetForColdRun();
    engine::QueryExecutor ssd_executor(&ssd_db);
    auto host_run = bench::Unwrap(
        ssd_executor.Execute(tpch::Q6Spec("lineitem"),
                             engine::ExecutionTarget::kHost),
        "host Q6");

    engine::DatabaseOptions smart_options =
        engine::DatabaseOptions::PaperSmartSsd();
    smart_options.ssd.geometry.page_size_bytes = kib * 1024;
    smart_options.ssd.geometry.blocks_per_chip = 512 * 8 / kib;
    engine::Database smart_db(smart_options);
    bench::Unwrap(tpch::LoadLineitem(smart_db, "lineitem", kScaleFactor,
                                     storage::PageLayout::kPax),
                  "load (Smart)");
    smart_db.ResetForColdRun();
    engine::QueryExecutor smart_executor(&smart_db);
    auto smart_run = bench::Unwrap(
        smart_executor.Execute(tpch::Q6Spec("lineitem"),
                               engine::ExecutionTarget::kSmartSsd),
        "smart Q6");

    std::printf("%8u KiB %12u %13.4f %14.4f %9.2fx\n", kib,
                info.tuples_per_page, host_run.stats.elapsed_seconds(),
                smart_run.stats.elapsed_seconds(),
                host_run.stats.elapsed_seconds() /
                    smart_run.stats.elapsed_seconds());
  }
  bench::PrintRule();
  std::printf(
      "Shape check: the speedup grows modestly with page size (per-page "
      "firmware overheads amortize over more tuples) and the conclusion "
      "never flips — the paper's 8 KB choice is conservative for the "
      "device.\n");
  return 0;
}
