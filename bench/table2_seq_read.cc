// Table 2: maximum sequential read bandwidth with 32-page (256 KB)
// I/Os. The paper measures 550 MB/s through the SAS host interface and
// 1,560 MB/s internally (flash -> device DRAM), a 2.8x gap — the upper
// bound on any Smart SSD gain with this device.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "ssd/ssd_device.h"

using namespace smartssd;

namespace {

constexpr std::uint64_t kPages = 32768;  // 256 MiB at 8 KiB pages
constexpr std::uint32_t kIoPages = 32;   // 256 KB commands

// Fills the first kPages logical pages so reads hit real flash.
void Preload(ssd::SsdDevice& device) {
  const std::uint32_t page_size = device.page_size();
  std::vector<std::byte> buffer(
      static_cast<std::size_t>(kIoPages) * page_size, std::byte{0x5A});
  SimTime t = 0;
  for (std::uint64_t lpn = 0; lpn < kPages; lpn += kIoPages) {
    t = bench::Unwrap(device.WritePages(lpn, kIoPages, buffer, t),
                      "preload write");
  }
  device.ResetTiming();
}

double HostPathBandwidthMBps(ssd::SsdDevice& device) {
  SimTime done = 0;
  for (std::uint64_t lpn = 0; lpn < kPages; lpn += kIoPages) {
    done = bench::Unwrap(device.ReadPages(lpn, kIoPages, {}, 0),
                         "host read");
  }
  const double bytes =
      static_cast<double>(kPages) * device.page_size();
  return bytes / ToSeconds(done) / 1e6;
}

double InternalBandwidthMBps(ssd::SsdDevice& device) {
  SimTime done = 0;
  for (std::uint64_t lpn = 0; lpn < kPages; ++lpn) {
    done = bench::Unwrap(device.InternalReadPageTiming(lpn, 0),
                         "internal read");
  }
  const double bytes =
      static_cast<double>(kPages) * device.page_size();
  return bytes / ToSeconds(done) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("table2_seq_read", argc, argv);
  bench::PrintHeader(
      "Maximum sequential read bandwidth, 32-page (256 KB) I/Os",
      "Table 2");

  ssd::SsdDevice device(ssd::SsdConfig::PaperSmartSsd());
  Preload(device);

  const double host_mbps = HostPathBandwidthMBps(device);
  device.ResetTiming();
  const double internal_mbps = InternalBandwidthMBps(device);

  std::printf("%-28s %12s %12s\n", "path", "paper", "measured");
  bench::PrintRule();
  std::printf("%-28s %9d MB/s %8.0f MB/s\n",
              "SAS SSD (host interface)", 550, host_mbps);
  std::printf("%-28s %9d MB/s %8.0f MB/s\n",
              "Smart SSD (internal)", 1560, internal_mbps);
  bench::PrintRule();
  std::printf("Internal/host ratio: paper 2.8x, measured %.2fx\n",
              internal_mbps / host_mbps);

  // Ratios are bandwidth relative to the host interface path; the paper
  // gap is 1560/550 = 2.8x. Elapsed is the virtual time to stream the
  // whole 256 MiB region at the measured bandwidth.
  const double bytes = static_cast<double>(kPages) * device.page_size();
  reporter.Add("SAS SSD (host interface)", bytes / (host_mbps * 1e6), 1.0,
               1.0);
  reporter.Add("Smart SSD (internal)", bytes / (internal_mbps * 1e6), 2.8,
               internal_mbps / host_mbps);
  reporter.Write();
  return 0;
}
