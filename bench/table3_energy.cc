// Table 3: energy consumption for TPC-H Query 6 across the four storage
// configurations (SAS HDD, SAS SSD, Smart SSD with NSM, Smart SSD with
// PAX), at whole-system and I/O-subsystem granularity. The paper
// reports, relative to Smart SSD (PAX):
//   HDD:  11.6x system energy, 14.3x I/O energy (12.4x over idle base)
//   SSD:   1.9x system energy,  1.4x I/O energy ( 2.3x over idle base)

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "energy/energy_model.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {

constexpr double kScaleFactor = 0.05;
constexpr double kScaleUp = 100.0 / kScaleFactor;

struct Row {
  const char* label;
  double elapsed_sf100;
  energy::EnergyBreakdown energy;
};

Row RunQ6(engine::Database& db, const std::string& table,
          engine::ExecutionTarget target, const char* label) {
  db.ResetForColdRun();
  engine::QueryExecutor executor(&db);
  auto result = bench::Unwrap(executor.Execute(tpch::Q6Spec(table), target),
                              label);
  energy::EnergyBreakdown energy = energy::ComputeEnergy(
      result.stats, db.host().config(), db.device().power_profile());
  // Energy scales linearly with elapsed time; project to SF 100.
  energy.elapsed_seconds *= kScaleUp;
  energy.system_kilojoules *= kScaleUp;
  energy.io_kilojoules *= kScaleUp;
  energy.over_idle_kilojoules *= kScaleUp;
  return Row{label, result.stats.elapsed_seconds() * kScaleUp, energy};
}

}  // namespace

int main() {
  bench::PrintHeader("Energy consumption for TPC-H Query 6", "Table 3");

  engine::Database hdd_db(engine::DatabaseOptions::PaperHdd());
  bench::Unwrap(tpch::LoadLineitem(hdd_db, "lineitem", kScaleFactor,
                                   storage::PageLayout::kNsm),
                "load (HDD)");

  engine::Database ssd_db(engine::DatabaseOptions::PaperSsd());
  bench::Unwrap(tpch::LoadLineitem(ssd_db, "lineitem", kScaleFactor,
                                   storage::PageLayout::kNsm),
                "load (SSD)");

  engine::Database smart_db(engine::DatabaseOptions::PaperSmartSsd());
  bench::Unwrap(tpch::LoadLineitem(smart_db, "lineitem_nsm", kScaleFactor,
                                   storage::PageLayout::kNsm),
                "load NSM (Smart)");
  bench::Unwrap(tpch::LoadLineitem(smart_db, "lineitem_pax", kScaleFactor,
                                   storage::PageLayout::kPax),
                "load PAX (Smart)");

  const Row rows[] = {
      RunQ6(hdd_db, "lineitem", engine::ExecutionTarget::kHost, "SAS HDD"),
      RunQ6(ssd_db, "lineitem", engine::ExecutionTarget::kHost, "SAS SSD"),
      RunQ6(smart_db, "lineitem_nsm", engine::ExecutionTarget::kSmartSsd,
            "Smart SSD (NSM)"),
      RunQ6(smart_db, "lineitem_pax", engine::ExecutionTarget::kSmartSsd,
            "Smart SSD (PAX)"),
  };
  const Row& pax = rows[3];

  std::printf("%-18s %12s %14s %14s %12s\n", "configuration",
              "elapsed (s)", "system (kJ)", "I/O subsys (kJ)",
              "avg watts");
  bench::PrintRule();
  for (const Row& row : rows) {
    std::printf("%-18s %11.1f %13.1f %13.2f %12.1f\n", row.label,
                row.elapsed_sf100, row.energy.system_kilojoules,
                row.energy.io_kilojoules,
                row.energy.average_system_watts);
  }
  bench::PrintRule();
  std::printf("Ratios vs Smart SSD (PAX):          paper    measured\n");
  std::printf("  HDD system energy                 11.6x    %8.1fx\n",
              rows[0].energy.system_kilojoules /
                  pax.energy.system_kilojoules);
  std::printf("  HDD I/O subsystem energy          14.3x    %8.1fx\n",
              rows[0].energy.io_kilojoules / pax.energy.io_kilojoules);
  std::printf("  HDD energy over 235 W idle        12.4x    %8.1fx\n",
              rows[0].energy.over_idle_kilojoules /
                  pax.energy.over_idle_kilojoules);
  std::printf("  SSD system energy                  1.9x    %8.1fx\n",
              rows[1].energy.system_kilojoules /
                  pax.energy.system_kilojoules);
  std::printf("  SSD I/O subsystem energy           1.4x    %8.1fx\n",
              rows[1].energy.io_kilojoules / pax.energy.io_kilojoules);
  std::printf("  SSD energy over 235 W idle         2.3x    %8.1fx\n",
              rows[1].energy.over_idle_kilojoules /
                  pax.energy.over_idle_kilojoules);
  return 0;
}
