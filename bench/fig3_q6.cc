// Figure 3: elapsed time for TPC-H Query 6 on LINEITEM, comparing the
// regular SAS SSD (host execution) against the Smart SSD with NSM and
// PAX layouts. The paper reports the Smart SSD with PAX improving query
// response time by 1.7x over the SSD at SF 100.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {

constexpr double kScaleFactor = 0.05;  // 300k LINEITEM rows
constexpr double kPaperSf = 100.0;

struct Run {
  const char* label;
  double seconds;
  double revenue;
};

Run RunQ6(engine::Database& db, const std::string& table,
          engine::ExecutionTarget target, const char* label) {
  db.ResetForColdRun();
  engine::QueryExecutor executor(&db);
  auto result = bench::Unwrap(executor.Execute(tpch::Q6Spec(table), target),
                              label);
  return Run{label, result.stats.elapsed_seconds(),
             tpch::Q6Revenue(result.agg_values)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("fig3_q6", argc, argv);
  bench::PrintHeader("TPC-H Q6 elapsed time: SSD vs Smart SSD (NSM/PAX)",
                     "Figure 3");

  // Regular SSD: data in NSM (the host engine's native layout).
  engine::Database ssd_db(engine::DatabaseOptions::PaperSsd());
  bench::Unwrap(tpch::LoadLineitem(ssd_db, "lineitem", kScaleFactor,
                                   storage::PageLayout::kNsm),
                "load lineitem (SSD)");

  // Smart SSD: both layouts loaded, queries pushed down.
  engine::Database smart_db(engine::DatabaseOptions::PaperSmartSsd());
  bench::Unwrap(tpch::LoadLineitem(smart_db, "lineitem_nsm", kScaleFactor,
                                   storage::PageLayout::kNsm),
                "load lineitem NSM (Smart SSD)");
  bench::Unwrap(tpch::LoadLineitem(smart_db, "lineitem_pax", kScaleFactor,
                                   storage::PageLayout::kPax),
                "load lineitem PAX (Smart SSD)");

  const Run runs[] = {
      RunQ6(ssd_db, "lineitem", engine::ExecutionTarget::kHost, "SAS SSD"),
      RunQ6(smart_db, "lineitem_nsm", engine::ExecutionTarget::kSmartSsd,
            "Smart SSD (NSM)"),
      RunQ6(smart_db, "lineitem_pax", engine::ExecutionTarget::kSmartSsd,
            "Smart SSD (PAX)"),
  };

  const double scale_up = kPaperSf / kScaleFactor;
  std::printf("%-18s %14s %16s %10s\n", "configuration",
              "elapsed (SF0.05)", "projected SF100", "speedup");
  bench::PrintRule();
  for (const Run& run : runs) {
    std::printf("%-18s %13.4f s %14.1f s %9.2fx\n", run.label, run.seconds,
                run.seconds * scale_up, runs[0].seconds / run.seconds);
  }
  bench::PrintRule();
  std::printf("Q6 revenue agrees across configurations: %s "
              "(%.2f)\n",
              (runs[0].revenue == runs[1].revenue &&
               runs[1].revenue == runs[2].revenue)
                  ? "yes"
                  : "NO (BUG)",
              runs[0].revenue);
  std::printf("Paper: Smart SSD (PAX) improves Q6 by 1.7x over the SSD; "
              "measured %.2fx\n",
              runs[0].seconds / runs[2].seconds);

  // Ratios are Q6 speedups over the SAS SSD baseline. The paper gives
  // 1.7x for PAX (Figure 3); it has no headline number for pushdown on
  // NSM pages.
  const double paper_ratios[] = {1.0, NAN, 1.7};
  for (std::size_t i = 0; i < 3; ++i) {
    reporter.Add(runs[i].label, runs[i].seconds, paper_ratios[i],
                 runs[0].seconds / runs[i].seconds);
  }
  reporter.Write();
  return 0;
}
