// SIGMOD'13 sweep A (the companion paper's Section 4 points to these as
// "additional results for single table scan queries for varying ...
// scan selectivities, with and without aggregation ... in [7]"):
// speedup of in-SSD execution over the SSD for a single-table scan as
// selectivity varies, with and without a terminal aggregate.
//
// Expected shape: with aggregation the result is one tuple, so the
// Smart SSD keeps its advantage at every selectivity; without
// aggregation the qualifying tuples must cross the host link, so the
// advantage decays with selectivity and in-SSD execution approaches (or
// falls below) parity as the query returns most of the table.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"

using namespace smartssd;

namespace {

constexpr int kColumns = 32;
constexpr std::uint64_t kRows = 300'000;

double RunScan(engine::Database& db, double selectivity, bool aggregate,
               engine::ExecutionTarget target) {
  db.ResetForColdRun();
  engine::QueryExecutor executor(&db);
  auto result = bench::Unwrap(
      executor.Execute(
          tpch::ScanQuerySpec("T", kColumns, selectivity, aggregate),
          target),
      "scan query");
  return result.stats.elapsed_seconds();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Single-table scan: Smart SSD speedup vs selectivity, with and "
      "without aggregation",
      "the SIGMOD'13 selectivity sweeps referenced in Section 4.2.1");

  engine::Database ssd_db(engine::DatabaseOptions::PaperSsd());
  bench::Unwrap(tpch::LoadSyntheticS(ssd_db, "T", kColumns, kRows, 1000,
                                     storage::PageLayout::kNsm),
                "load (SSD)");
  engine::Database smart_db(engine::DatabaseOptions::PaperSmartSsd());
  bench::Unwrap(tpch::LoadSyntheticS(smart_db, "T", kColumns, kRows, 1000,
                                     storage::PageLayout::kPax),
                "load (Smart)");

  std::printf("%-12s %18s %21s\n", "selectivity", "speedup (with agg)",
              "speedup (return rows)");
  bench::PrintRule();
  for (const double sel : {0.0001, 0.001, 0.01, 0.1, 0.25, 0.5, 1.0}) {
    const double agg_ssd =
        RunScan(ssd_db, sel, true, engine::ExecutionTarget::kHost);
    const double agg_smart =
        RunScan(smart_db, sel, true, engine::ExecutionTarget::kSmartSsd);
    const double row_ssd =
        RunScan(ssd_db, sel, false, engine::ExecutionTarget::kHost);
    const double row_smart =
        RunScan(smart_db, sel, false, engine::ExecutionTarget::kSmartSsd);
    std::printf("%10.2f%% %17.2fx %20.2fx\n", sel * 100,
                agg_ssd / agg_smart, row_ssd / row_smart);
  }
  bench::PrintRule();
  std::printf(
      "Shape check: the aggregate column stays high; the row-returning "
      "column decays toward/below 1x as output volume grows.\n");
  return 0;
}
