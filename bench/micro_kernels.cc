// Wall-clock microbenchmarks (google-benchmark) for the hot kernels the
// simulator executes for real: page codecs, expression evaluation, and
// the join hash table. These measure the *simulator's* own efficiency,
// not the paper's device — virtual-time results come from the fig*/
// table*/s13_*/abl_* binaries.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "exec/hash_table.h"
#include "expr/expression.h"
#include "expr/row_view.h"
#include "storage/nsm_page.h"
#include "storage/pax_page.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "tpch/synthetic.h"

using namespace smartssd;

namespace {

storage::Schema MakeSchema(int columns) {
  return tpch::SyntheticSchema(columns);
}

std::vector<std::byte> MakeTuple(const storage::Schema& schema,
                                 Random& rng) {
  std::vector<std::byte> tuple(schema.tuple_size());
  storage::TupleWriter writer(&schema, tuple);
  for (int c = 0; c < schema.num_columns(); ++c) {
    writer.SetInt32(c, static_cast<std::int32_t>(rng.Uniform(1 << 30)));
  }
  return tuple;
}

void BM_NsmPageBuild(benchmark::State& state) {
  const storage::Schema schema = MakeSchema(static_cast<int>(state.range(0)));
  Random rng(7);
  const std::vector<std::byte> tuple = MakeTuple(schema, rng);
  storage::NsmPageBuilder builder(&schema, 8192);
  for (auto _ : state) {
    builder.Reset();
    while (builder.Append(tuple)) {
    }
    benchmark::DoNotOptimize(builder.image().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8192);
}
BENCHMARK(BM_NsmPageBuild)->Arg(8)->Arg(64);

void BM_PaxPageBuild(benchmark::State& state) {
  const storage::Schema schema = MakeSchema(static_cast<int>(state.range(0)));
  Random rng(7);
  const std::vector<std::byte> tuple = MakeTuple(schema, rng);
  storage::PaxPageBuilder builder(&schema, 8192);
  for (auto _ : state) {
    builder.Reset();
    while (builder.Append(tuple)) {
    }
    benchmark::DoNotOptimize(builder.image().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8192);
}
BENCHMARK(BM_PaxPageBuild)->Arg(8)->Arg(64);

void BM_PredicateEvalNsm(benchmark::State& state) {
  const storage::Schema schema = MakeSchema(16);
  Random rng(11);
  const std::vector<std::byte> tuple = MakeTuple(schema, rng);
  std::vector<expr::ExprPtr> predicates;
  predicates.push_back(expr::Lt(expr::Col(2), expr::Lit(1 << 29)));
  predicates.push_back(expr::Gt(expr::Col(5), expr::Lit(1 << 20)));
  const expr::ExprPtr predicate = expr::And(std::move(predicates));
  const expr::NsmRowView view(&schema, tuple.data());
  expr::EvalStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(predicate->Evaluate(view, &stats).AsBool());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PredicateEvalNsm);

void BM_HashTableProbe(benchmark::State& state) {
  const std::int64_t entries = state.range(0);
  exec::JoinHashTable table(
      8, static_cast<std::uint64_t>(entries));
  std::vector<std::byte> payload(8, std::byte{1});
  for (std::int64_t k = 0; k < entries; ++k) {
    SMARTSSD_CHECK(table.Insert(k, payload).ok());
  }
  Random rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Probe(static_cast<std::int64_t>(rng.Uniform(
            static_cast<std::uint64_t>(entries)))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HashTableProbe)->Arg(1 << 10)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
