// Workload-level view of query pushdown: an open-loop client stream of
// TPC-H Q6 at increasing arrival rates, run entirely on the host path,
// entirely as pushdown, and as a 50/50 mix. The paper argues per-query
// (Figures 3/7); this sweep asks what the same device trade-off looks
// like under load — pushdown's shorter service time pushes the knee of
// the latency curve to a higher QPS, and past saturation the queue wait,
// not the service time, dominates p99.
//
// Each (mode, qps) point runs on a cold database with a deliberately
// small buffer pool (512 pages) so every scan pays flash reads, then
// reports exact percentiles over the per-query latencies plus the mean
// admission-queue wait. `--json=<path>` emits one row per point with
// p95 latency as the headline number and achieved/offered throughput as
// the measured ratio.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/workload.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {

constexpr double kScaleFactor = 0.05;
constexpr int kQueriesPerPoint = 16;

// Exact percentile over the measured sample (nearest-rank), not an
// interpolation: with 16 queries per point every reported number is one
// query's actual latency.
double PercentileSeconds(std::vector<SimDuration> sorted, double q) {
  const std::size_t n = sorted.size();
  std::size_t rank =
      static_cast<std::size_t>(std::max(1.0, std::ceil(q * n)));
  if (rank > n) rank = n;
  return ToSeconds(sorted[rank - 1]);
}

struct Mode {
  const char* name;
  // Target for even-numbered clients; odd-numbered clients use
  // `alt_target` (same value for the pure modes).
  engine::ExecutionTarget target;
  engine::ExecutionTarget alt_target;
};

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Mixed workload sweep: Q6 arrival rate vs latency, host vs "
      "pushdown vs 50/50 mix",
      "extension of Section 5's concurrent-query discussion");
  bench::JsonReporter reporter("workload_mixed", argc, argv);

  engine::DatabaseOptions options = engine::DatabaseOptions::PaperSmartSsd();
  options.buffer_pool_pages = 512;  // keep repeated scans cold
  engine::Database db(options);
  bench::Unwrap(tpch::LoadLineitem(db, "lineitem_a", kScaleFactor,
                                   storage::PageLayout::kPax),
                "load A");
  bench::Unwrap(tpch::LoadLineitem(db, "lineitem_b", kScaleFactor,
                                   storage::PageLayout::kPax),
                "load B");

  const Mode kModes[] = {
      {"host", engine::ExecutionTarget::kHost,
       engine::ExecutionTarget::kHost},
      {"pushdown", engine::ExecutionTarget::kSmartSsd,
       engine::ExecutionTarget::kSmartSsd},
      {"mixed", engine::ExecutionTarget::kSmartSsd,
       engine::ExecutionTarget::kHost},
  };
  // Q6 solo service time is ~0.044 s pushdown / ~0.073 s host at this
  // scale factor, so this sweep crosses saturation for both paths.
  const double kQps[] = {5, 10, 20, 40};

  std::printf("%-8s %6s | %8s %8s %8s | %9s %10s %6s\n", "mode", "qps",
              "p50 s", "p95 s", "p99 s", "qwait s", "achieved", "peak");
  bench::PrintRule();

  for (const Mode& mode : kModes) {
    for (const double qps : kQps) {
      db.ResetForColdRun();
      engine::WorkloadScheduler sched(&db);
      const auto gap = static_cast<SimDuration>(1e9 / qps);
      // Two clients on distinct tables, interleaved arrivals: client B's
      // stream is offset by half a gap so the combined stream arrives at
      // `qps` with no simultaneous arrivals.
      engine::WorkloadQueryConfig a;
      a.client = "client-a";
      a.spec = tpch::Q6Spec("lineitem_a");
      a.target = mode.target;
      sched.AddOpenLoopClient(std::move(a), kQueriesPerPoint / 2,
                              /*inter_arrival=*/2 * gap,
                              /*first_arrival=*/0);
      engine::WorkloadQueryConfig b;
      b.client = "client-b";
      b.spec = tpch::Q6Spec("lineitem_b");
      b.target = mode.alt_target;
      sched.AddOpenLoopClient(std::move(b), kQueriesPerPoint / 2,
                              /*inter_arrival=*/2 * gap,
                              /*first_arrival=*/gap);
      const std::vector<engine::CompletedQuery> records =
          bench::Unwrap(sched.Run(), "workload point");

      std::vector<SimDuration> latencies;
      SimTime first_arrival = records.front().arrival;
      SimTime last_end = 0;
      double queue_wait = 0;
      for (const auto& r : records) {
        bench::Check(r.result.status(), "workload query");
        latencies.push_back(r.latency());
        first_arrival = std::min(first_arrival, r.arrival);
        last_end = std::max(last_end, r.end);
        queue_wait += ToSeconds(r.queue_wait());
      }
      std::sort(latencies.begin(), latencies.end());
      const double span = ToSeconds(last_end - first_arrival);
      const double achieved =
          span > 0 ? static_cast<double>(records.size()) / span : 0;
      const double p95 = PercentileSeconds(latencies, 0.95);
      std::printf("%-8s %6.0f | %8.4f %8.4f %8.4f | %9.4f %7.1f/s %6d\n",
                  mode.name, qps, PercentileSeconds(latencies, 0.50), p95,
                  PercentileSeconds(latencies, 0.99),
                  queue_wait / static_cast<double>(records.size()),
                  achieved, sched.peak_in_flight());
      char config[64];
      std::snprintf(config, sizeof config, "%s@%gqps", mode.name, qps);
      reporter.Add(config, p95, NAN, achieved / qps);
    }
    bench::PrintRule();
  }

  std::printf(
      "Shape check: at low QPS every mode's p50 sits at its solo service "
      "time; as the rate crosses a path's saturation point its queue "
      "wait and tail latencies blow up first on the host path (longer "
      "service time), later for pushdown, with the mix in between.\n");
  reporter.Write();
  return 0;
}
