// Workload-level view of query placement: an open-loop client stream of
// TPC-H Q6 at increasing arrival rates, swept across the engine's
// routing policies — both static pins (host, device), the planner's
// cost model, the live-signal adaptive router, and always-split. The
// paper argues per-query (Figures 3/7); this sweep asks what the same
// device trade-off looks like under load. A pure strategy saturates at
// its own path's service rate; the adaptive policy overflows to the
// host when the device's session grants run dry and splits scans across
// both sides under admission backlog, so its saturation throughput
// strictly beats both pure strategies — the load-adaptive hybrid
// placement result.
//
// Each (policy, qps) point runs on a cold database with a deliberately
// small buffer pool (512 pages) so every scan pays flash reads, then
// reports exact percentiles over the per-query latencies plus the mean
// admission-queue wait. `--json=<path>` (CI writes BENCH_routing.json)
// emits one row per point with p95 latency as the headline number and
// achieved/offered throughput as the measured ratio, plus one
// `saturation:<policy>` row per policy carrying the achieved QPS at the
// top of the sweep. Everything runs on the virtual clock, so the
// emitted numbers are byte-identical run-to-run.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/metrics.h"
#include "engine/workload.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {

constexpr double kScaleFactor = 0.05;
constexpr int kQueriesPerPoint = 16;

// Exact percentile over the measured sample (nearest-rank), not an
// interpolation: with 16 queries per point every reported number is one
// query's actual latency.
double PercentileSeconds(std::vector<SimDuration> sorted, double q) {
  const std::size_t n = sorted.size();
  std::size_t rank =
      static_cast<std::size_t>(std::max(1.0, std::ceil(q * n)));
  if (rank > n) rank = n;
  return ToSeconds(sorted[rank - 1]);
}

struct PointResult {
  double achieved = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  double mean_queue_wait = 0;
  int peak_in_flight = 0;
  double splits = 0;        // queries that ran as split scans
  double device_share = 0;  // fraction whose target was the device
};

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Routing-policy sweep: Q6 arrival rate vs latency and saturation "
      "across static-host / static-device / cost-model / adaptive / "
      "split placement",
      "extension of Section 5's concurrent-query discussion");
  bench::JsonReporter reporter("workload_routing", argc, argv);

  engine::DatabaseOptions options = engine::DatabaseOptions::PaperSmartSsd();
  options.buffer_pool_pages = 512;  // keep repeated scans cold
  engine::Database db(options);
  bench::Unwrap(tpch::LoadLineitem(db, "lineitem_a", kScaleFactor,
                                   storage::PageLayout::kPax),
                "load A");
  bench::Unwrap(tpch::LoadLineitem(db, "lineitem_b", kScaleFactor,
                                   storage::PageLayout::kPax),
                "load B");

  const engine::PlacementPolicyKind kPolicies[] = {
      engine::PlacementPolicyKind::kStaticHost,
      engine::PlacementPolicyKind::kStaticDevice,
      engine::PlacementPolicyKind::kCostModel,
      engine::PlacementPolicyKind::kAdaptive,
      engine::PlacementPolicyKind::kSplit,
  };
  // Q6 solo service time is ~0.044 s pushdown / ~0.073 s host at this
  // scale factor, so this sweep crosses saturation for every policy;
  // the last rate is the saturation measurement point.
  const double kQps[] = {5, 10, 20, 40};
  const double kSaturationQps = kQps[std::size(kQps) - 1];

  std::printf("%-13s %6s | %8s %8s %8s | %9s %10s %5s %6s\n", "policy",
              "qps", "p50 s", "p95 s", "p99 s", "qwait s", "achieved",
              "split", "dev%");
  bench::PrintRule();

  std::vector<std::pair<std::string, double>> saturation;
  for (const engine::PlacementPolicyKind policy : kPolicies) {
    const char* name = engine::PlacementPolicyName(policy);
    PointResult last{};
    for (const double qps : kQps) {
      db.ResetForColdRun();
      db.set_placement(policy);
      engine::WorkloadScheduler sched(&db);
      const auto gap = static_cast<SimDuration>(1e9 / qps);
      // Two clients on distinct tables, interleaved arrivals: client
      // B's stream is offset by half a gap so the combined stream
      // arrives at `qps` with no simultaneous arrivals. No pinned
      // target — the policy under test routes every query.
      engine::WorkloadQueryConfig a;
      a.client = "client-a";
      a.spec = tpch::Q6Spec("lineitem_a");
      sched.AddOpenLoopClient(std::move(a), kQueriesPerPoint / 2,
                              /*inter_arrival=*/2 * gap,
                              /*first_arrival=*/0);
      engine::WorkloadQueryConfig b;
      b.client = "client-b";
      b.spec = tpch::Q6Spec("lineitem_b");
      sched.AddOpenLoopClient(std::move(b), kQueriesPerPoint / 2,
                              /*inter_arrival=*/2 * gap,
                              /*first_arrival=*/gap);
      const std::vector<engine::CompletedQuery> records =
          bench::Unwrap(sched.Run(), "workload point");

      PointResult point;
      std::vector<SimDuration> latencies;
      SimTime first_arrival = records.front().arrival;
      SimTime last_end = 0;
      double queue_wait = 0;
      for (const auto& r : records) {
        bench::Check(r.result.status(), "workload query");
        const engine::QueryStats& stats = r.result.value().stats;
        latencies.push_back(r.latency());
        first_arrival = std::min(first_arrival, r.arrival);
        last_end = std::max(last_end, r.end);
        queue_wait += ToSeconds(r.queue_wait());
        if (stats.split_scan) point.splits += 1;
        if (stats.target == engine::ExecutionTarget::kSmartSsd) {
          point.device_share += 1;
        }
      }
      std::sort(latencies.begin(), latencies.end());
      const double span = ToSeconds(last_end - first_arrival);
      point.achieved =
          span > 0 ? static_cast<double>(records.size()) / span : 0;
      point.p50 = PercentileSeconds(latencies, 0.50);
      point.p95 = PercentileSeconds(latencies, 0.95);
      point.p99 = PercentileSeconds(latencies, 0.99);
      point.mean_queue_wait =
          queue_wait / static_cast<double>(records.size());
      point.peak_in_flight = sched.peak_in_flight();
      point.device_share /= static_cast<double>(records.size());
      last = point;

      std::printf(
          "%-13s %6.0f | %8.4f %8.4f %8.4f | %9.4f %7.1f/s %5.0f %5.0f%%\n",
          name, qps, point.p50, point.p95, point.p99,
          point.mean_queue_wait, point.achieved, point.splits,
          100 * point.device_share);
      char config[64];
      std::snprintf(config, sizeof config, "%s@%gqps", name, qps);
      reporter.AddWithCounters(
          config, point.p95, NAN, point.achieved / qps,
          {{"achieved_qps", point.achieved},
           {"split_scans", point.splits},
           {"device_share", point.device_share},
           {"peak_in_flight",
            static_cast<double>(point.peak_in_flight)}});
    }
    // The last sweep point is past every policy's knee, so its achieved
    // throughput is the policy's saturation rate.
    saturation.emplace_back(name, last.achieved);
    char config[64];
    std::snprintf(config, sizeof config, "saturation:%s", name);
    reporter.Add(config, last.achieved, NAN,
                 last.achieved / kSaturationQps);
    bench::PrintRule();
  }

  double host_sat = 0, device_sat = 0, adaptive_sat = 0;
  for (const auto& [name, qps] : saturation) {
    std::printf("saturation %-13s %6.1f queries/s\n", name.c_str(), qps);
    if (name == "static-host") host_sat = qps;
    if (name == "static-device") device_sat = qps;
    if (name == "adaptive") adaptive_sat = qps;
  }
  std::printf(
      "Shape check: the adaptive policy's saturation throughput "
      "(%.1f/s) must strictly beat both pure strategies (host %.1f/s, "
      "device %.1f/s) — under backlog it splits scans across both sides "
      "and overflows to the host when session grants run dry, so it "
      "drains the queue with host and device working concurrently.\n",
      adaptive_sat, host_sat, device_sat);
  if (adaptive_sat <= host_sat || adaptive_sat <= device_sat) {
    std::fprintf(stderr,
                 "FAIL: adaptive saturation %.2f/s does not beat both "
                 "pure strategies (host %.2f/s, device %.2f/s)\n",
                 adaptive_sat, host_sat, device_sat);
    return 1;
  }
  reporter.Write();
  return 0;
}
