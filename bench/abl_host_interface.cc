// Ablation 4: the host interface generation. Figure 1's argument cuts
// both ways — pushdown pays off because the link is slow relative to
// the internal path. We sweep the interface standard at fixed internals
// and embedded CPU: as the link catches up (SAS 12G, PCIe), the host
// path accelerates and the 2013 device's pushdown advantage shrinks and
// inverts, unless the device hardware grows with it.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {
constexpr double kScaleFactor = 0.05;

struct Point {
  const char* label;
  ssd::HostInterfaceStandard standard;
};
}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: host interface generation vs Q6 pushdown benefit",
      "the Figure 1 bandwidth-trend argument, inverted");

  const Point points[] = {
      {"SATA 3Gb/s (~275 MB/s)", ssd::HostInterfaceStandard::kSata3g},
      {"SAS 6Gb/s (~550 MB/s, paper)", ssd::HostInterfaceStandard::kSas6g},
      {"SAS 12Gb/s (~1100 MB/s)", ssd::HostInterfaceStandard::kSas12g},
      {"PCIe3 x4 (~3200 MB/s)", ssd::HostInterfaceStandard::kPcie3x4},
  };

  std::printf("%-30s %14s %14s %10s\n", "host interface", "host Q6 (s)",
              "smart Q6 (s)", "speedup");
  bench::PrintRule();
  for (const Point& point : points) {
    engine::DatabaseOptions ssd_options =
        engine::DatabaseOptions::PaperSsd();
    ssd_options.ssd.host_interface.standard = point.standard;
    engine::Database ssd_db(ssd_options);
    bench::Unwrap(tpch::LoadLineitem(ssd_db, "lineitem", kScaleFactor,
                                     storage::PageLayout::kNsm),
                  "load (SSD)");
    ssd_db.ResetForColdRun();
    engine::QueryExecutor ssd_executor(&ssd_db);
    auto host_run = bench::Unwrap(
        ssd_executor.Execute(tpch::Q6Spec("lineitem"),
                             engine::ExecutionTarget::kHost),
        "host Q6");

    engine::DatabaseOptions smart_options =
        engine::DatabaseOptions::PaperSmartSsd();
    smart_options.ssd.host_interface.standard = point.standard;
    engine::Database smart_db(smart_options);
    bench::Unwrap(tpch::LoadLineitem(smart_db, "lineitem", kScaleFactor,
                                     storage::PageLayout::kPax),
                  "load (Smart)");
    smart_db.ResetForColdRun();
    engine::QueryExecutor smart_executor(&smart_db);
    auto smart_run = bench::Unwrap(
        smart_executor.Execute(tpch::Q6Spec("lineitem"),
                               engine::ExecutionTarget::kSmartSsd),
        "smart Q6");

    std::printf("%-30s %13.4f %14.4f %9.2fx\n", point.label,
                host_run.stats.elapsed_seconds(),
                smart_run.stats.elapsed_seconds(),
                host_run.stats.elapsed_seconds() /
                    smart_run.stats.elapsed_seconds());
  }
  bench::PrintRule();
  std::printf(
      "Shape check: pushdown benefit shrinks as the link catches up; at "
      "PCIe rates the 2013-era embedded CPU loses outright — i.e. the "
      "opportunity exists exactly while Figure 1's gap persists.\n");
  return 0;
}
