// SIGMOD'13 sweep B: Smart SSD speedup as a function of tuple width, at
// fixed total data volume. Wider tuples mean fewer tuples per page, so
// fewer per-tuple interpreter invocations per byte scanned — the
// embedded CPU saturates later and the speedup approaches the 2.8x
// bandwidth bound. Narrow tuples are the worst case for in-SSD
// execution (this is the "number of tuples in a data page ... [has] a
// big impact" observation of Section 4.2.1).

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"

using namespace smartssd;

namespace {

constexpr std::uint64_t kTargetBytes = 40ull * 1024 * 1024;
constexpr double kSelectivity = 0.01;

double RunOnce(engine::Database& db, int columns,
               engine::ExecutionTarget target) {
  db.ResetForColdRun();
  engine::QueryExecutor executor(&db);
  auto result = bench::Unwrap(
      executor.Execute(
          tpch::ScanQuerySpec("T", columns, kSelectivity, true), target),
      "scan query");
  return result.stats.elapsed_seconds();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Single-table scan+aggregate: Smart SSD speedup vs tuple width "
      "(fixed ~40 MB of data)",
      "the SIGMOD'13 tuple-size sweep referenced in Section 4.2.1");

  std::printf("%-10s %12s %12s %12s %9s\n", "columns", "tuple bytes",
              "rows", "tuples/page", "speedup");
  bench::PrintRule();
  for (const int columns : {4, 8, 16, 32, 64}) {
    const std::uint64_t tuple_bytes = 4ull * columns;
    const std::uint64_t rows = kTargetBytes / tuple_bytes;

    engine::Database ssd_db(engine::DatabaseOptions::PaperSsd());
    auto ssd_info = bench::Unwrap(
        tpch::LoadSyntheticS(ssd_db, "T", columns, rows, 1000,
                             storage::PageLayout::kNsm),
        "load (SSD)");
    engine::Database smart_db(engine::DatabaseOptions::PaperSmartSsd());
    bench::Unwrap(tpch::LoadSyntheticS(smart_db, "T", columns, rows, 1000,
                                       storage::PageLayout::kPax),
                  "load (Smart)");

    const double host_s =
        RunOnce(ssd_db, columns, engine::ExecutionTarget::kHost);
    const double smart_s =
        RunOnce(smart_db, columns, engine::ExecutionTarget::kSmartSsd);
    std::printf("%-10d %12llu %12llu %12u %8.2fx\n", columns,
                static_cast<unsigned long long>(tuple_bytes),
                static_cast<unsigned long long>(rows),
                ssd_info.tuples_per_page, host_s / smart_s);
  }
  bench::PrintRule();
  std::printf(
      "Shape check: speedup grows with tuple width toward the 2.8x "
      "bandwidth bound of Table 2.\n");
  return 0;
}
