// Ablation 2: embedded CPU provisioning. Section 5: "the CPU quickly
// became a bottleneck ... The next step must be to add in more hardware
// (CPU, SRAM and DRAM) so that the DBMS code can run more effectively
// inside the SSD." We sweep embedded core count and clock and report
// the Q6 pushdown speedup; once the CPU stops binding, the speedup
// saturates at the internal-bandwidth bound (2.8x for this device),
// after which only more DRAM bandwidth helps (ablation 1).

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {
constexpr double kScaleFactor = 0.05;
}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: embedded cores/clock vs Q6 pushdown speedup",
      "the Section 5 'CPU quickly became a bottleneck' discussion");

  engine::Database ssd_db(engine::DatabaseOptions::PaperSsd());
  bench::Unwrap(tpch::LoadLineitem(ssd_db, "lineitem", kScaleFactor,
                                   storage::PageLayout::kNsm),
                "load (SSD)");
  ssd_db.ResetForColdRun();
  engine::QueryExecutor ssd_executor(&ssd_db);
  auto host_run = bench::Unwrap(
      ssd_executor.Execute(tpch::Q6Spec("lineitem"),
                           engine::ExecutionTarget::kHost),
      "host Q6");
  const double host_seconds = host_run.stats.elapsed_seconds();

  std::printf("%-8s %10s %16s %14s %10s\n", "cores", "clock MHz",
              "device Gcyc/s", "Q6 smart (s)", "speedup");
  bench::PrintRule();
  struct Point {
    int cores;
    std::uint64_t mhz;
  };
  for (const Point point : {Point{1, 400}, Point{2, 400}, Point{3, 400},
                            Point{6, 400}, Point{3, 800}, Point{6, 800},
                            Point{12, 1200}}) {
    engine::DatabaseOptions options =
        engine::DatabaseOptions::PaperSmartSsd();
    options.ssd.embedded_cpu.cores = point.cores;
    options.ssd.embedded_cpu.clock_hz = point.mhz * 1'000'000ull;
    engine::Database smart_db(options);
    bench::Unwrap(tpch::LoadLineitem(smart_db, "lineitem", kScaleFactor,
                                     storage::PageLayout::kPax),
                  "load (Smart)");
    smart_db.ResetForColdRun();
    engine::QueryExecutor executor(&smart_db);
    auto run = bench::Unwrap(
        executor.Execute(tpch::Q6Spec("lineitem"),
                         engine::ExecutionTarget::kSmartSsd),
        "smart Q6");
    const double smart_seconds = run.stats.elapsed_seconds();
    std::printf("%-8d %10llu %15.2f %13.4f %9.2fx\n", point.cores,
                static_cast<unsigned long long>(point.mhz),
                point.cores * point.mhz / 1000.0, smart_seconds,
                host_seconds / smart_seconds);
  }
  bench::PrintRule();
  std::printf(
      "Shape check: speedup grows with compute until it hits the 2.8x "
      "internal-bandwidth bound of Table 2.\n");
  return 0;
}
