// Hybrid hash join under shrinking device-DRAM grants: the same
// selection-with-join query (Figure 5's shape) runs pushed down while
// the resident build-side budget sweeps from "whole table resident"
// to "every partition spills, multiple passes". The paper's prototype
// simply refused joins whose hash table outgrew device DRAM; the
// hybrid join turns that cliff into a curve, and this bench measures
// the curve: elapsed time should degrade gracefully with the grant,
// never fall off a correctness or routing cliff, and a skewed probe
// distribution should recover most of the spill cost through the
// heavy-hitter pin.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"

using namespace smartssd;

namespace {

constexpr std::uint64_t kSRows = 40'000;
constexpr std::uint64_t kRRows = 2'000;  // build table estimate ~96 KiB
constexpr int kCols = 64;
constexpr double kSelectivity = 0.5;

std::unique_ptr<engine::Database> MakeDb(std::uint64_t budget_bytes,
                                         bool skewed) {
  engine::DatabaseOptions options = engine::DatabaseOptions::PaperSmartSsd();
  options.join_spill.budget_bytes = budget_bytes;
  auto db = std::make_unique<engine::Database>(options);
  bench::Unwrap(tpch::LoadSyntheticR(*db, "R", kCols, kRRows,
                                     storage::PageLayout::kPax),
                "load R");
  if (!skewed) {
    bench::Unwrap(tpch::LoadSyntheticS(*db, "S", kCols, kSRows, kRRows,
                                       storage::PageLayout::kPax),
                  "load S");
  } else {
    // Half of all probes hit one key: the worst case for a partitioned
    // join, the best case for the heavy-hitter pin.
    auto rng = std::make_shared<Random>(917);
    bench::Unwrap(
        db->LoadTable("S", tpch::SyntheticSchema(kCols),
                      storage::PageLayout::kPax, kSRows,
                      [rng](std::uint64_t row, storage::TupleWriter& w) {
                        w.SetInt32(0, static_cast<std::int32_t>(row + 1));
                        w.SetInt32(1, row % 2 == 0
                                          ? 1
                                          : static_cast<std::int32_t>(
                                                rng->Uniform(kRRows) + 1));
                        w.SetInt32(2, static_cast<std::int32_t>(rng->Uniform(
                                          tpch::kSelectivityDomain)));
                        for (int c = 3; c < kCols; ++c) {
                          w.SetInt32(c, static_cast<std::int32_t>(
                                            rng->Uniform(1 << 30)));
                        }
                      }),
        "load skewed S");
  }
  db->ResetForColdRun();
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Hybrid join latency vs resident build budget (R |x| S pushdown)",
      "the spill extension; baseline query is Figure 5's join");
  bench::JsonReporter json("join_spill", argc, argv);

  // Host ground truth for the row count.
  auto host_db = MakeDb(0, /*skewed=*/false);
  engine::QueryExecutor host_exec(host_db.get());
  const auto host = bench::Unwrap(
      host_exec.Execute(tpch::JoinQuerySpec("S", "R", kSelectivity),
                        engine::ExecutionTarget::kHost),
      "host join");

  std::printf("%-14s %12s %7s %7s %11s %11s %10s\n", "budget", "smart (s)",
              "passes", "spilled", "pages out", "pages in", "rows match");
  bench::PrintRule();

  double unconstrained_s = 0;
  struct Config {
    const char* name;
    std::uint64_t budget;
    bool skewed;
  };
  const std::vector<Config> configs = {
      {"unconstrained", 0, false},     {"64KiB", 64 * 1024, false},
      {"32KiB", 32 * 1024, false},     {"16KiB", 16 * 1024, false},
      {"8KiB", 8 * 1024, false},       {"skew-8KiB", 8 * 1024, true},
  };
  for (const Config& config : configs) {
    auto db = MakeDb(config.budget, config.skewed);
    engine::QueryExecutor executor(db.get());
    const auto result = bench::Unwrap(
        executor.Execute(tpch::JoinQuerySpec("S", "R", kSelectivity),
                         engine::ExecutionTarget::kSmartSsd),
        "smart join");
    const double seconds = result.stats.elapsed_seconds();
    if (config.budget == 0) unconstrained_s = seconds;
    const exec::HybridJoinStats& js = result.stats.join_spill;
    const bool rows_match =
        config.skewed || result.rows == host.rows;
    std::printf("%-14s %10.4f s %7u %7u %11llu %11llu %10s\n", config.name,
                seconds, js.passes, js.partitions_spilled,
                static_cast<unsigned long long>(js.spill_pages_written),
                static_cast<unsigned long long>(js.spill_pages_read),
                rows_match ? "yes" : "NO (BUG)");
    if (!rows_match) return 1;
    json.AddWithCounters(
        config.name, seconds, NAN,
        unconstrained_s > 0 ? seconds / unconstrained_s : 1.0,
        {{"passes", js.passes},
         {"partitions_spilled", js.partitions_spilled},
         {"build_rows_spilled", static_cast<double>(js.build_rows_spilled)},
         {"spill_pages_written",
          static_cast<double>(js.spill_pages_written)},
         {"spill_pages_read", static_cast<double>(js.spill_pages_read)},
         {"hot_keys_pinned", static_cast<double>(js.hot_keys_pinned)},
         {"hot_hits", static_cast<double>(js.hot_hits)}});
  }
  bench::PrintRule();
  std::printf(
      "Degradation is a curve, not a cliff: each halving of the grant "
      "adds spill\npasses and flash round-trips; the skewed run recovers "
      "most probes via the\nheavy-hitter pin.\n");
  json.Write();
  return 0;
}
