// Figure 1: bandwidth trends for the host I/O interface versus the
// SSD-internal data path, relative to the 2007 interface speed
// (375 MB/s). The internal path (channel count x NAND bus rate) pulls
// away from shipping interface standards, reaching roughly 10x the
// interface's relative speed by the projection horizon — the structural
// argument for moving computation into the device.

#include <cstdio>

#include "bench/bench_util.h"
#include "ssd/interface_trends.h"

using namespace smartssd;

int main() {
  bench::PrintHeader(
      "Host interface vs SSD-internal bandwidth, relative to 2007",
      "Figure 1");
  std::printf("%-6s %-24s %10s %10s %8s\n", "year", "host interface",
              "host(rel)", "internal", "gap");
  bench::PrintRule();
  for (const auto& point : ssd::BandwidthTrends()) {
    std::printf("%-6d %-24s %9.1fx %9.1fx %7.1fx\n", point.year,
                point.host_interface_name, ssd::HostRelative(point),
                ssd::InternalRelative(point),
                ssd::InternalRelative(point) / ssd::HostRelative(point));
  }
  bench::PrintRule();
  const auto* y2012 = &ssd::BandwidthTrends()[5];
  std::printf(
      "Paper (Section 4.2): the Figure 1 gap around the 2012 device is "
      "'about 10X'; measured %d gap %.1fx.\n",
      y2012->year, ssd::InternalRelative(*y2012) / ssd::HostRelative(*y2012));
  std::printf(
      "The 2012 device of Table 2 sits at 1,560/550 = 2.8x of this "
      "curve.\n");
  return 0;
}
