// Fleet robustness sweep: a closed-loop Q6 stream scattered across
// 1/2/4/8 Smart SSDs by the fault-tolerant FleetCoordinator, plus a
// variant where one device of the 4-wide fleet starts failing every
// session mid-workload. Healthy fleets show the Section 4.3 scale-out
// (throughput grows near-linearly with devices because each subquery
// scans 1/N of the partitioned LINEITEM); the faulted fleet shows the
// robustness ladder earning its keep — every query still completes with
// byte-identical results (host fallback, then breaker-open re-dispatch)
// at the cost of visible p99 inflation.
//
// `--json=<path>` emits one row per fleet configuration with p99
// latency as the headline number, achieved-QPS speedup over the
// 1-device fleet as the measured ratio, and a "counters" object
// carrying the robustness counters (hedges, re-dispatches, fallbacks,
// breaker trips) for the CI artifact trail.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "engine/executor.h"
#include "engine/fleet.h"
#include "sim/fault_injector.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {

constexpr double kScaleFactor = 0.05;
constexpr int kQueries = 16;

double PercentileSeconds(std::vector<SimDuration> sorted, double q) {
  const std::size_t n = sorted.size();
  std::size_t rank =
      static_cast<std::size_t>(std::max(1.0, std::ceil(q * n)));
  if (rank > n) rank = n;
  return ToSeconds(sorted[rank - 1]);
}

struct PointStats {
  double p50 = 0;
  double p99 = 0;
  double qps = 0;
  std::uint64_t hedges = 0;
  std::uint64_t redispatches = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t trips = 0;
};

// One sweep point: a fresh fleet, LINEITEM partitioned across its
// devices, a closed-loop client running kQueries Q6s back to back.
// Every result is checked against the single-device reference — the
// faulted point completes through fallback and re-dispatch, never by
// dropping a partition.
PointStats RunPoint(int devices, bool fault_one_device,
                    const exec::QuerySpec& spec,
                    const std::vector<std::int64_t>& reference) {
  engine::DatabaseOptions options =
      engine::DatabaseOptions::PaperSmartSsd();
  options.buffer_pool_pages = 512;  // keep repeated scans cold
  engine::Fleet fleet(devices, options);
  bench::Check(tpch::LoadLineitemFleet(fleet, "lineitem", kScaleFactor,
                                       storage::PageLayout::kPax),
               "fleet load");

  if (fault_one_device) {
    // From 50 ms of virtual time on, every session on the middle device
    // dies at OPEN: the first few queries pay the in-query host
    // fallback, the breaker opens, and later queries re-dispatch that
    // partition straight to the host path.
    sim::FaultSchedule schedule;
    schedule.faults.push_back(sim::FaultSpec{
        .kind = sim::FaultKind::kDeviceReset,
        .trigger = {.unit = sim::TriggerUnit::kSimTime,
                    .at = 50 * kMillisecond},
        .count = 1000});
    fleet.LoadFaultSchedule(devices / 2, std::move(schedule));
  }

  engine::FleetCoordinator coordinator(&fleet);
  engine::FleetQueryConfig config;
  config.client = "client";
  config.spec = &spec;
  coordinator.AddClosedLoopClient(config, kQueries);
  const std::vector<engine::CompletedFleetQuery> records =
      bench::Unwrap(coordinator.Run(), "fleet sweep point");

  std::vector<SimDuration> latencies;
  SimTime last_end = 0;
  for (const engine::CompletedFleetQuery& record : records) {
    bench::Check(record.result.status(), "fleet query");
    if (record.result.value().agg_values != reference) {
      std::fprintf(stderr, "fleet result diverged from single-device\n");
      std::exit(1);
    }
    latencies.push_back(record.latency());
    last_end = std::max(last_end, record.end);
  }
  std::sort(latencies.begin(), latencies.end());

  PointStats stats;
  stats.p50 = PercentileSeconds(latencies, 0.50);
  stats.p99 = PercentileSeconds(latencies, 0.99);
  const double span = ToSeconds(last_end - records.front().arrival);
  stats.qps =
      span > 0 ? static_cast<double>(records.size()) / span : 0;
  stats.hedges = coordinator.hedges_launched();
  stats.redispatches = coordinator.redispatches();
  stats.fallbacks = coordinator.subquery_fallbacks();
  stats.trips = fleet.TotalBreakerTrips();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Fleet sweep: closed-loop Q6 across 1..8 Smart SSDs, with and "
      "without a failing device",
      "the Section 4.3 scale-out vision under the robustness ladder");
  bench::JsonReporter reporter("fleet_workload", argc, argv);

  // Single-device reference result: the bytes every fleet shape (and
  // the faulted run) must reproduce.
  const exec::QuerySpec spec = tpch::Q6Spec("lineitem");
  std::vector<std::int64_t> reference;
  {
    engine::Database db(engine::DatabaseOptions::PaperSmartSsd());
    bench::Unwrap(tpch::LoadLineitem(db, "lineitem", kScaleFactor,
                                     storage::PageLayout::kPax),
                  "reference load");
    db.ResetForColdRun();
    engine::QueryExecutor executor(&db);
    reference = bench::Unwrap(
                    executor.Execute(spec, engine::ExecutionTarget::kSmartSsd),
                    "reference Q6")
                    .agg_values;
  }

  std::printf("%-14s | %8s %8s %8s %8s | %6s %6s %6s %6s\n", "fleet",
              "p50 s", "p99 s", "qps", "vs 1dev", "hedge", "redisp",
              "fallbk", "trips");
  bench::PrintRule();

  double one_device_qps = 0;
  struct Config {
    int devices;
    bool faulted;
  };
  const Config kConfigs[] = {
      {1, false}, {2, false}, {4, false}, {8, false}, {4, true}};
  double healthy4_p99 = 0;
  for (const Config& cfg : kConfigs) {
    const PointStats stats =
        RunPoint(cfg.devices, cfg.faulted, spec, reference);
    if (cfg.devices == 1 && !cfg.faulted) one_device_qps = stats.qps;
    if (cfg.devices == 4 && !cfg.faulted) healthy4_p99 = stats.p99;
    const double speedup =
        one_device_qps > 0 ? stats.qps / one_device_qps : 1.0;
    char name[32];
    std::snprintf(name, sizeof name, "fleet%d%s", cfg.devices,
                  cfg.faulted ? "-faulted" : "");
    std::printf("%-14s | %8.4f %8.4f %8.1f %7.2fx | %6llu %6llu %6llu "
                "%6llu\n",
                name, stats.p50, stats.p99, stats.qps, speedup,
                static_cast<unsigned long long>(stats.hedges),
                static_cast<unsigned long long>(stats.redispatches),
                static_cast<unsigned long long>(stats.fallbacks),
                static_cast<unsigned long long>(stats.trips));
    if (cfg.faulted && healthy4_p99 > 0) {
      std::printf("%-14s   p99 inflation vs healthy 4-device fleet: "
                  "%.2fx\n",
                  "", stats.p99 / healthy4_p99);
    }
    reporter.AddWithCounters(
        name, stats.p99, NAN, speedup,
        {{"qps", stats.qps},
         {"hedges", static_cast<double>(stats.hedges)},
         {"redispatches", static_cast<double>(stats.redispatches)},
         {"fallbacks", static_cast<double>(stats.fallbacks)},
         {"breaker_trips", static_cast<double>(stats.trips)}});
  }
  bench::PrintRule();
  std::printf(
      "Shape check: healthy fleets scale near-linearly (>=3x QPS at 4 "
      "devices); the faulted fleet completes every query byte-identically "
      "via fallback then re-dispatch, trading p99 inflation for "
      "availability.\n");
  reporter.Write();
  return 0;
}
