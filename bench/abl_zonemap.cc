// Ablation 3: zone maps and data clustering — the "impact of various
// storage layout" question Section 5 leaves open, answered with
// per-page min/max statistics used as an in-SSD index. On a clustered
// predicate column, pruning skips the non-matching pages before they
// are read from flash; on a random column the statistics are useless.
// We sweep selectivity on both a clustered and an unclustered table.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "expr/expression.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"

using namespace smartssd;

namespace {

namespace ex = ::smartssd::expr;
constexpr int kColumns = 16;
constexpr std::uint64_t kRows = 400'000;

// SUM over rows with Col_1 < limit: Col_1 = row+1 is the clustered
// (load-ordered) column; a Col_3 predicate is the unclustered control.
exec::QuerySpec ClusteredSpec(double selectivity) {
  exec::QuerySpec spec;
  spec.name = "clustered";
  spec.table = "T";
  spec.predicate =
      ex::Lt(ex::Col(0),
             ex::Lit(static_cast<std::int64_t>(selectivity * kRows) + 1));
  spec.aggregates.push_back({exec::AggSpec::Fn::kSum, ex::Col(2), "s"});
  return spec;
}

struct Outcome {
  double seconds;
  std::uint64_t skipped;
  std::uint64_t read;
};

Outcome Run(engine::Database& db, const exec::QuerySpec& spec) {
  db.ResetForColdRun();
  engine::QueryExecutor executor(&db);
  auto result = bench::Unwrap(
      executor.Execute(spec, engine::ExecutionTarget::kSmartSsd), "query");
  return {result.stats.elapsed_seconds(), result.stats.pages_skipped,
          result.stats.pages_read};
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: zone-map pruning on clustered vs unclustered predicates "
      "(pushdown path)",
      "the Section 5 storage-layout discussion, as in-SSD indexing");

  engine::Database with_map(engine::DatabaseOptions::PaperSmartSsd());
  bench::Unwrap(tpch::LoadSyntheticS(with_map, "T", kColumns, kRows, 1000,
                                     storage::PageLayout::kPax),
                "load");
  bench::Check(with_map.BuildZoneMap("T"), "build zone map");

  engine::Database without_map(engine::DatabaseOptions::PaperSmartSsd());
  bench::Unwrap(tpch::LoadSyntheticS(without_map, "T", kColumns, kRows,
                                     1000, storage::PageLayout::kPax),
                "load");

  std::printf("%-12s %16s %16s %12s %10s\n", "selectivity",
              "no zone map (s)", "zone map (s)", "pages skip",
              "speedup");
  bench::PrintRule();
  for (const double sel : {0.01, 0.1, 0.25, 0.5, 1.0}) {
    const Outcome plain = Run(without_map, ClusteredSpec(sel));
    const Outcome pruned = Run(with_map, ClusteredSpec(sel));
    std::printf("%10.0f%% %15.4f %16.4f %12llu %9.2fx\n", sel * 100,
                plain.seconds, pruned.seconds,
                static_cast<unsigned long long>(pruned.skipped),
                plain.seconds / pruned.seconds);
  }
  bench::PrintRule();
  // Control: unclustered predicate — statistics can prune nothing.
  const Outcome control_plain =
      Run(without_map, tpch::ScanQuerySpec("T", kColumns, 0.1, true));
  const Outcome control_pruned =
      Run(with_map, tpch::ScanQuerySpec("T", kColumns, 0.1, true));
  std::printf(
      "control (random Col_3 predicate, 10%%): %0.4f s vs %0.4f s, "
      "%llu pages skipped\n",
      control_plain.seconds, control_pruned.seconds,
      static_cast<unsigned long long>(control_pruned.skipped));
  std::printf(
      "Shape check: pruning gain ~1/selectivity on the clustered "
      "column, none on the random column.\n");
  return 0;
}
