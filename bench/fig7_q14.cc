// Figure 7: elapsed time for TPC-H Query 14 (LINEITEM |x| PART, one
// month of shipdates). The paper reports the Smart SSD with PAX
// improving the response time by 1.3x over the SSD — less than the
// synthetic join's 2.2x because the plan (Figure 6) probes the 20M-entry
// PART hash table for every LINEITEM tuple, making Q14 the most
// CPU-intensive query per page in the evaluation.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {

constexpr double kScaleFactor = 0.05;
constexpr double kScaleUp = 100.0 / kScaleFactor;

struct Run {
  const char* label;
  double seconds;
  double promo_revenue;
};

Run RunQ14(engine::Database& db, const std::string& lineitem,
           const std::string& part, engine::ExecutionTarget target,
           const char* label) {
  db.ResetForColdRun();
  engine::QueryExecutor executor(&db);
  auto result = bench::Unwrap(
      executor.Execute(tpch::Q14Spec(lineitem, part), target), label);
  return Run{label, result.stats.elapsed_seconds(),
             tpch::Q14PromoRevenue(result.agg_values)};
}

}  // namespace

int main() {
  bench::PrintHeader("TPC-H Q14 elapsed time: SSD vs Smart SSD (NSM/PAX)",
                     "Figure 7");

  engine::Database ssd_db(engine::DatabaseOptions::PaperSsd());
  bench::Unwrap(tpch::LoadLineitem(ssd_db, "lineitem", kScaleFactor,
                                   storage::PageLayout::kNsm),
                "load lineitem (SSD)");
  bench::Unwrap(tpch::LoadPart(ssd_db, "part", kScaleFactor,
                               storage::PageLayout::kNsm),
                "load part (SSD)");

  engine::Database smart_db(engine::DatabaseOptions::PaperSmartSsd());
  for (const auto& [suffix, layout] :
       {std::pair{"nsm", storage::PageLayout::kNsm},
        std::pair{"pax", storage::PageLayout::kPax}}) {
    bench::Unwrap(
        tpch::LoadLineitem(smart_db, std::string("lineitem_") + suffix,
                           kScaleFactor, layout),
        "load lineitem (Smart)");
    bench::Unwrap(tpch::LoadPart(smart_db, std::string("part_") + suffix,
                                 kScaleFactor, layout),
                  "load part (Smart)");
  }

  const Run runs[] = {
      RunQ14(ssd_db, "lineitem", "part", engine::ExecutionTarget::kHost,
             "SAS SSD"),
      RunQ14(smart_db, "lineitem_nsm", "part_nsm",
             engine::ExecutionTarget::kSmartSsd, "Smart SSD (NSM)"),
      RunQ14(smart_db, "lineitem_pax", "part_pax",
             engine::ExecutionTarget::kSmartSsd, "Smart SSD (PAX)"),
  };

  std::printf("%-18s %14s %16s %10s\n", "configuration",
              "elapsed (SF0.05)", "projected SF100", "speedup");
  bench::PrintRule();
  for (const Run& run : runs) {
    std::printf("%-18s %13.4f s %14.1f s %9.2fx\n", run.label, run.seconds,
                run.seconds * kScaleUp, runs[0].seconds / run.seconds);
  }
  bench::PrintRule();
  std::printf("promo_revenue agrees: %s (%.4f%%)\n",
              (runs[0].promo_revenue == runs[1].promo_revenue &&
               runs[1].promo_revenue == runs[2].promo_revenue)
                  ? "yes"
                  : "NO (BUG)",
              runs[0].promo_revenue);
  std::printf(
      "Paper: Smart SSD (PAX) improves Q14 by 1.3x over the SSD; measured "
      "%.2fx\n",
      runs[0].seconds / runs[2].seconds);
  return 0;
}
