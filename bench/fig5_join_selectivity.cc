// Figure 5: elapsed time for the selection-with-join query on
// Synthetic64_R |x| Synthetic64_S at varying selectivity factors.
// The paper reports the Smart SSD (PAX) up to 2.2x faster than the SSD
// at 1% selectivity, saturating toward parity at 100% because the
// result volume (and per-tuple probe/materialization work) grows with
// selectivity.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"

using namespace smartssd;

namespace {

// Paper: S = 400M rows (~120 GB), R = 1M rows, S = 400 R. Scaled 1/2000.
constexpr std::uint64_t kSRows = 200'000;
constexpr std::uint64_t kRRows = kSRows / 400;
constexpr double kScaleUp = 2000.0;

double RunJoin(engine::Database& db, const std::string& s_table,
               const std::string& r_table, double selectivity,
               engine::ExecutionTarget target, std::uint64_t* rows_out) {
  db.ResetForColdRun();
  engine::QueryExecutor executor(&db);
  auto result = bench::Unwrap(
      executor.Execute(tpch::JoinQuerySpec(s_table, r_table, selectivity),
                       target),
      "join query");
  *rows_out = result.stats.output_rows;
  return result.stats.elapsed_seconds();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Selection+join on Synthetic64 R |x| S vs selectivity factor",
      "Figure 5");

  engine::Database ssd_db(engine::DatabaseOptions::PaperSsd());
  bench::Unwrap(tpch::LoadSyntheticS(ssd_db, "S", 64, kSRows, kRRows,
                                     storage::PageLayout::kNsm),
                "load S (SSD)");
  bench::Unwrap(tpch::LoadSyntheticR(ssd_db, "R", 64, kRRows,
                                     storage::PageLayout::kNsm),
                "load R (SSD)");

  engine::Database smart_db(engine::DatabaseOptions::PaperSmartSsd());
  bench::Unwrap(tpch::LoadSyntheticS(smart_db, "S", 64, kSRows, kRRows,
                                     storage::PageLayout::kPax),
                "load S (Smart)");
  bench::Unwrap(tpch::LoadSyntheticR(smart_db, "R", 64, kRRows,
                                     storage::PageLayout::kPax),
                "load R (Smart)");

  std::printf("%-12s %14s %16s %9s %12s\n", "selectivity", "SSD (s, SF100)",
              "Smart PAX (s)", "speedup", "rows match");
  bench::PrintRule();
  for (const double selectivity : {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    std::uint64_t ssd_rows = 0;
    std::uint64_t smart_rows = 0;
    const double ssd_s =
        RunJoin(ssd_db, "S", "R", selectivity,
                engine::ExecutionTarget::kHost, &ssd_rows);
    const double smart_s =
        RunJoin(smart_db, "S", "R", selectivity,
                engine::ExecutionTarget::kSmartSsd, &smart_rows);
    std::printf("%11.0f%% %13.1f s %14.1f s %8.2fx %12s\n",
                selectivity * 100, ssd_s * kScaleUp, smart_s * kScaleUp,
                ssd_s / smart_s,
                ssd_rows == smart_rows ? "yes" : "NO (BUG)");
  }
  bench::PrintRule();
  std::printf(
      "Paper: up to 2.2x at 1%% selectivity; saturating toward ~1x at "
      "100%%.\n");
  return 0;
}
