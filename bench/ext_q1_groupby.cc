// Extension experiment: TPC-H Query 1 (grouped aggregation), an
// operator class the paper lists as future work ("designing algorithms
// for various operators that work inside the Smart SSD", Section 5).
//
// Q1 scans ~98% of LINEITEM and evaluates four SUM expressions plus a
// COUNT per qualifying tuple — the heaviest per-tuple aggregation in
// the suite — yet returns only 4 rows. The result is a clean
// demonstration of Section 5's hardware argument: on the paper's
// 3x400 MHz device the pushdown *loses* (the embedded CPU saturates far
// below the host link rate), while on a modestly upgraded device
// (6 cores at 800 MHz, the kind of provisioning Section 5 calls for)
// the same pushdown wins and approaches the bandwidth bound.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {
constexpr double kScaleFactor = 0.05;
constexpr double kScaleUp = 100.0 / kScaleFactor;

struct Config {
  const char* label;
  int cores;
  std::uint64_t mhz;
};
}  // namespace

int main() {
  bench::PrintHeader(
      "TPC-H Q1 (GROUP BY) pushdown — extension beyond the paper's "
      "operator set",
      "the Section 5 future-work discussion");

  engine::Database ssd_db(engine::DatabaseOptions::PaperSsd());
  bench::Unwrap(tpch::LoadLineitem(ssd_db, "lineitem", kScaleFactor,
                                   storage::PageLayout::kNsm),
                "load (SSD)");
  ssd_db.ResetForColdRun();
  engine::QueryExecutor ssd_executor(&ssd_db);
  auto host_run = bench::Unwrap(
      ssd_executor.Execute(tpch::Q1Spec("lineitem"),
                           engine::ExecutionTarget::kHost),
      "host Q1");
  const double host_seconds = host_run.stats.elapsed_seconds();

  std::printf("%-34s %12s %10s %8s\n", "configuration",
              "SF100 (s)", "speedup", "groups");
  bench::PrintRule();
  std::printf("%-34s %12.1f %9.2fx %8llu\n", "SAS SSD (host)",
              host_seconds * kScaleUp, 1.0,
              static_cast<unsigned long long>(host_run.row_count()));

  const Config configs[] = {
      {"Smart SSD (paper: 3x400 MHz)", 3, 400},
      {"Smart SSD (upgraded: 6x800 MHz)", 6, 800},
  };
  for (const Config& config : configs) {
    engine::DatabaseOptions options =
        engine::DatabaseOptions::PaperSmartSsd();
    options.ssd.embedded_cpu.cores = config.cores;
    options.ssd.embedded_cpu.clock_hz = config.mhz * 1'000'000ull;
    engine::Database smart_db(options);
    bench::Unwrap(tpch::LoadLineitem(smart_db, "lineitem", kScaleFactor,
                                     storage::PageLayout::kPax),
                  "load (Smart)");
    smart_db.ResetForColdRun();
    engine::QueryExecutor executor(&smart_db);
    auto run = bench::Unwrap(
        executor.Execute(tpch::Q1Spec("lineitem"),
                         engine::ExecutionTarget::kSmartSsd),
        "smart Q1");
    std::printf("%-34s %12.1f %9.2fx %8llu\n", config.label,
                run.stats.elapsed_seconds() * kScaleUp,
                host_seconds / run.stats.elapsed_seconds(),
                static_cast<unsigned long long>(run.row_count()));
    if (run.rows != host_run.rows) {
      std::printf("!! RESULT MISMATCH\n");
      return 1;
    }
  }
  bench::PrintRule();
  std::printf(
      "Shape check: identical 4-group results everywhere; the 2013 "
      "device loses on Q1 (CPU-bound, Section 5's bottleneck), the "
      "upgraded device wins — aggregation ships 4 rows instead of the "
      "table.\n");
  return 0;
}
