// Ablation 1: the device DRAM bus — the serialization point Section 4.2
// blames for the 2.8x ceiling ("the access to the DRAM is shared by all
// the flash channels ... only one channel can be active at a time") and
// proposes to fix by "increasing the bandwidth to the DRAM or adding
// more DRAM buses". We sweep the bus count (with a matching channel
// budget) and report the internal sequential read bandwidth and the Q6
// pushdown speedup. The I/O ceiling rises with the buses; Q6 stops
// improving once the embedded CPU becomes the binding constraint —
// which is Section 5's point that more compute must come with more
// bandwidth.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {

constexpr double kScaleFactor = 0.05;

double InternalBandwidthMBps(ssd::SsdDevice& device,
                             std::uint64_t pages) {
  SimTime done = 0;
  for (std::uint64_t lpn = 0; lpn < pages; ++lpn) {
    done = bench::Unwrap(device.InternalReadPageTiming(lpn, 0),
                         "internal read");
  }
  return static_cast<double>(pages) * device.page_size() /
         ToSeconds(done) / 1e6;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: device DRAM buses vs internal bandwidth and Q6 speedup",
      "the Section 4.2 DRAM-bottleneck discussion / Figure 1 projection");

  // Host-side reference (independent of the ablation).
  engine::Database ssd_db(engine::DatabaseOptions::PaperSsd());
  bench::Unwrap(tpch::LoadLineitem(ssd_db, "lineitem", kScaleFactor,
                                   storage::PageLayout::kNsm),
                "load (SSD)");
  ssd_db.ResetForColdRun();
  engine::QueryExecutor ssd_executor(&ssd_db);
  auto host_run = bench::Unwrap(
      ssd_executor.Execute(tpch::Q6Spec("lineitem"),
                           engine::ExecutionTarget::kHost),
      "host Q6");
  const double host_seconds = host_run.stats.elapsed_seconds();

  std::printf("%-8s %10s %16s %14s %10s\n", "buses", "channels",
              "internal MB/s", "Q6 smart (s)", "speedup");
  bench::PrintRule();
  for (const int buses : {1, 2, 4, 8}) {
    engine::DatabaseOptions options =
        engine::DatabaseOptions::PaperSmartSsd();
    options.ssd.dram.bus_count = buses;
    // Give the flash side enough channels that the DRAM path stays the
    // knob under test.
    options.ssd.geometry.channels = 8 * buses;
    options.ssd.geometry.blocks_per_chip = 512 / buses;
    engine::Database smart_db(options);
    bench::Unwrap(tpch::LoadLineitem(smart_db, "lineitem", kScaleFactor,
                                     storage::PageLayout::kPax),
                  "load (Smart)");
    const std::uint64_t probe_pages = 16384;
    smart_db.ResetForColdRun();
    const double internal_mbps =
        InternalBandwidthMBps(*smart_db.ssd(), probe_pages);

    smart_db.ResetForColdRun();
    engine::QueryExecutor executor(&smart_db);
    auto run = bench::Unwrap(
        executor.Execute(tpch::Q6Spec("lineitem"),
                         engine::ExecutionTarget::kSmartSsd),
        "smart Q6");
    const double smart_seconds = run.stats.elapsed_seconds();
    std::printf("%-8d %10d %15.0f %13.4f %9.2fx\n", buses,
                options.ssd.geometry.channels, internal_mbps,
                smart_seconds, host_seconds / smart_seconds);
  }
  bench::PrintRule();
  std::printf(
      "Shape check: bandwidth scales with buses, but Q6 speedup "
      "plateaus at the embedded-CPU bound — bandwidth alone cannot "
      "deliver the 10x of Figure 1.\n");
  return 0;
}
