#ifndef SMARTSSD_BENCH_BENCH_UTIL_H_
#define SMARTSSD_BENCH_BENCH_UTIL_H_

// Shared helpers for the paper-reproduction benches. Each bench binary
// regenerates one table or figure of the paper: it loads the workload at
// a reduced scale factor, runs the measured configurations cold, and
// prints measured (virtual-time) numbers next to the paper's. Virtual
// time scales linearly with data volume, so ratios are scale-invariant
// and an SF-100 projection is printed alongside.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace smartssd::bench {

// Aborts the bench with a message if `result` is an error; otherwise
// returns the value. Benches are top-level tools, so failing fast with
// the status text is the right behaviour.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s)\n", paper_ref);
  std::printf("==============================================================\n");
}

inline void PrintRule() {
  std::printf("--------------------------------------------------------------\n");
}

// Escapes a string for embedding in a JSON string literal: quotes and
// backslashes get a backslash, control characters become \uXXXX (with
// the common short forms for \b \f \n \r \t).
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

// Wall-clock (steady_clock) measurement for benches that time the
// simulator's own kernels rather than virtual device time. Runs `fn`
// once to warm caches, then `repeats` more times and keeps the fastest
// run — the usual way to strip scheduler noise from a throughput
// number. Fewer than 5 timed runs leaves too much scheduler noise in a
// min-of-N number to trust a ratio between two configs, so `repeats`
// is clamped up to 5.
struct WallMeasurement {
  double seconds = 0;        // best single run
  double rows_per_sec = 0;   // rows / seconds
};

inline constexpr int kMinWallRepeats = 5;

template <typename Fn>
WallMeasurement MeasureWall(std::uint64_t rows, int repeats, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  if (repeats < kMinWallRepeats) repeats = kMinWallRepeats;
  fn();  // warmup
  double best = 0;
  for (int r = 0; r < repeats; ++r) {
    const Clock::time_point start = Clock::now();
    fn();
    const double s = std::chrono::duration<double>(Clock::now() - start)
                         .count();
    if (r == 0 || s < best) best = s;
  }
  WallMeasurement m;
  m.seconds = best;
  m.rows_per_sec = best > 0 ? static_cast<double>(rows) / best : 0;
  return m;
}

// Machine-readable bench output, enabled by a `--json=<path>` argument.
// Write() emits a JSON array with one object per measured configuration:
//   {"bench": ..., "config": ..., "virtual_seconds": ...,
//    "paper_ratio": ..., "measured_ratio": ...}
// so successive runs can append to the repo's perf trajectory. Ratios
// are each bench's headline comparison (e.g. speedup over the baseline
// configuration); pass NAN where the paper gives no number — it is
// serialized as null. Without `--json=...` the reporter is inert, so the
// human-readable tables are unchanged.
class JsonReporter {
 public:
  JsonReporter(std::string bench_id, int argc, char** argv)
      : bench_id_(std::move(bench_id)) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg(argv[i]);
      constexpr std::string_view kFlag = "--json=";
      if (arg.substr(0, kFlag.size()) == kFlag) {
        path_ = std::string(arg.substr(kFlag.size()));
      }
    }
  }

  bool enabled() const { return !path_.empty(); }

  // Build/run provenance (compiler, build type, kernel ISA, thread
  // count, ...). Serialized as a distinguished first array element
  // {"bench": ..., "metadata": {...}} so perf-trajectory tooling can
  // tell which toolchain and CPU features produced the numbers without
  // changing the per-row schema.
  void SetMetadata(std::vector<std::pair<std::string, std::string>> meta) {
    metadata_ = std::move(meta);
  }

  void Add(std::string_view config, double virtual_seconds,
           double paper_ratio, double measured_ratio) {
    if (!enabled()) return;
    rows_.push_back(Row{std::string(config), virtual_seconds, paper_ratio,
                        measured_ratio, NAN, {}});
  }

  // Robustness-aware variant: attaches a flat name->value counter map
  // serialized as an extra "counters" object (hedge launches, breaker
  // trips, re-dispatches, ...). Rows added without counters keep the
  // existing JSON schema.
  void AddWithCounters(
      std::string_view config, double virtual_seconds, double paper_ratio,
      double measured_ratio,
      std::vector<std::pair<std::string, double>> counters) {
    if (!enabled()) return;
    rows_.push_back(Row{std::string(config), virtual_seconds, paper_ratio,
                        measured_ratio, NAN, std::move(counters)});
  }

  // Wall-clock variant: also records rows/sec. The extra field is only
  // serialized for rows added through this overload, so virtual-time
  // benches keep their existing JSON schema.
  void AddWall(std::string_view config, double wall_seconds,
               double paper_ratio, double measured_ratio,
               double rows_per_sec) {
    if (!enabled()) return;
    rows_.push_back(Row{std::string(config), wall_seconds, paper_ratio,
                        measured_ratio, rows_per_sec, {}});
  }

  void Write() {
    if (!enabled()) return;
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path_.c_str());
      std::exit(1);
    }
    std::fprintf(f, "[\n");
    if (!metadata_.empty()) {
      std::fprintf(f, "{\"bench\":\"%s\",\"metadata\":{",
                   JsonEscape(bench_id_).c_str());
      for (std::size_t m = 0; m < metadata_.size(); ++m) {
        std::fprintf(f, "%s\"%s\":\"%s\"", m > 0 ? "," : "",
                     JsonEscape(metadata_[m].first).c_str(),
                     JsonEscape(metadata_[m].second).c_str());
      }
      std::fprintf(f, "}}%s\n", rows_.empty() ? "" : ",");
    }
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      std::fprintf(f,
                   "{\"bench\":\"%s\",\"config\":\"%s\","
                   "\"virtual_seconds\":%.9g,\"paper_ratio\":",
                   JsonEscape(bench_id_).c_str(),
                   JsonEscape(row.config).c_str(), row.virtual_seconds);
      WriteRatio(f, row.paper_ratio);
      std::fprintf(f, ",\"measured_ratio\":");
      WriteRatio(f, row.measured_ratio);
      if (!std::isnan(row.rows_per_sec)) {
        std::fprintf(f, ",\"rows_per_sec\":%.9g", row.rows_per_sec);
      }
      if (!row.counters.empty()) {
        std::fprintf(f, ",\"counters\":{");
        for (std::size_t c = 0; c < row.counters.size(); ++c) {
          std::fprintf(f, "%s\"%s\":%.9g", c > 0 ? "," : "",
                       JsonEscape(row.counters[c].first).c_str(),
                       row.counters[c].second);
        }
        std::fprintf(f, "}");
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %zu json rows to %s\n", rows_.size(), path_.c_str());
  }

 private:
  struct Row {
    std::string config;
    double virtual_seconds;
    double paper_ratio;
    double measured_ratio;
    double rows_per_sec;  // NAN = virtual-time row, field omitted
    std::vector<std::pair<std::string, double>> counters;
  };

  static void WriteRatio(std::FILE* f, double v) {
    if (std::isnan(v)) {
      std::fprintf(f, "null");
    } else {
      std::fprintf(f, "%.9g", v);
    }
  }

  std::string bench_id_;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> metadata_;
  std::vector<Row> rows_;
};

}  // namespace smartssd::bench

#endif  // SMARTSSD_BENCH_BENCH_UTIL_H_
