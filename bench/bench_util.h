#ifndef SMARTSSD_BENCH_BENCH_UTIL_H_
#define SMARTSSD_BENCH_BENCH_UTIL_H_

// Shared helpers for the paper-reproduction benches. Each bench binary
// regenerates one table or figure of the paper: it loads the workload at
// a reduced scale factor, runs the measured configurations cold, and
// prints measured (virtual-time) numbers next to the paper's. Virtual
// time scales linearly with data volume, so ratios are scale-invariant
// and an SF-100 projection is printed alongside.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/result.h"

namespace smartssd::bench {

// Aborts the bench with a message if `result` is an error; otherwise
// returns the value. Benches are top-level tools, so failing fast with
// the status text is the right behaviour.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s)\n", paper_ref);
  std::printf("==============================================================\n");
}

inline void PrintRule() {
  std::printf("--------------------------------------------------------------\n");
}

}  // namespace smartssd::bench

#endif  // SMARTSSD_BENCH_BENCH_UTIL_H_
