// Extension experiment: ORDER BY/LIMIT (top-N) pushdown. The s13
// sweeps show row-returning scans losing their in-SSD advantage as
// selectivity grows (result transfer + materialization); a top-N
// operator restores it by collapsing the result to k rows inside the
// device, whatever the selectivity.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"

using namespace smartssd;

namespace {

constexpr int kColumns = 32;
constexpr std::uint64_t kRows = 300'000;

double RunOnce(engine::Database& db, const exec::QuerySpec& spec,
               engine::ExecutionTarget target, std::uint64_t* rows_out) {
  db.ResetForColdRun();
  engine::QueryExecutor executor(&db);
  auto result = bench::Unwrap(executor.Execute(spec, target), "query");
  *rows_out = result.row_count();
  return result.stats.elapsed_seconds();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Top-N pushdown vs plain row-returning scan — extension operator",
      "the Section 5 future-work discussion");

  engine::Database ssd_db(engine::DatabaseOptions::PaperSsd());
  bench::Unwrap(tpch::LoadSyntheticS(ssd_db, "T", kColumns, kRows, 1000,
                                     storage::PageLayout::kNsm),
                "load (SSD)");
  engine::Database smart_db(engine::DatabaseOptions::PaperSmartSsd());
  bench::Unwrap(tpch::LoadSyntheticS(smart_db, "T", kColumns, kRows, 1000,
                                     storage::PageLayout::kPax),
                "load (Smart)");

  std::printf("%-12s %22s %22s\n", "selectivity",
              "plain rows: speedup", "ORDER BY LIMIT 100: speedup");
  bench::PrintRule();
  for (const double sel : {0.01, 0.1, 0.5, 1.0}) {
    std::uint64_t rows = 0;
    const double plain_host = RunOnce(
        ssd_db, tpch::ScanQuerySpec("T", kColumns, sel, false, 3),
        engine::ExecutionTarget::kHost, &rows);
    const double plain_smart = RunOnce(
        smart_db, tpch::ScanQuerySpec("T", kColumns, sel, false, 3),
        engine::ExecutionTarget::kSmartSsd, &rows);
    std::uint64_t topn_rows = 0;
    const double topn_host =
        RunOnce(ssd_db, tpch::TopNQuerySpec("T", kColumns, sel, 100),
                engine::ExecutionTarget::kHost, &topn_rows);
    const double topn_smart =
        RunOnce(smart_db, tpch::TopNQuerySpec("T", kColumns, sel, 100),
                engine::ExecutionTarget::kSmartSsd, &topn_rows);
    std::printf("%10.0f%% %21.2fx %21.2fx   (%llu rows)\n", sel * 100,
                plain_host / plain_smart, topn_host / topn_smart,
                static_cast<unsigned long long>(topn_rows));
  }
  bench::PrintRule();
  std::printf(
      "Shape check: the plain-scan column decays with selectivity; the "
      "top-N column stays near the aggregate-scan speedup at every "
      "selectivity.\n");
  return 0;
}
