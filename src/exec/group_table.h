#ifndef SMARTSSD_EXEC_GROUP_TABLE_H_
#define SMARTSSD_EXEC_GROUP_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace smartssd::exec {

// Flat open-addressing hash table for GROUP BY state. Keys are the raw
// serialized group-column bytes (fixed width per query), so a lookup is
// hash + memcmp with no allocation — replacing the former
// std::map<std::string, ...> whose every probe materialized a
// std::string key and chased tree nodes.
//
// Groups are kept in insertion order in two flat pools (keys_, states_)
// and only sorted at Finish time. Equal-width keys sort by memcmp
// exactly as std::string keys sorted in the map, so output order is
// unchanged.
class GroupTable {
 public:
  GroupTable() = default;
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(GroupTable);

  // Must be called once before use. `key_width` > 0.
  void Init(std::uint32_t key_width, std::uint32_t num_states);

  // Returns the index of the group for `key` (key_width bytes),
  // creating it with a copy of `init_states` (num_states values) if it
  // is new.
  std::uint32_t FindOrInsert(const std::byte* key,
                             const std::int64_t* init_states);

  std::int64_t* states(std::uint32_t group) {
    return states_.data() +
           static_cast<std::size_t>(group) * num_states_;
  }
  const std::int64_t* states(std::uint32_t group) const {
    return states_.data() +
           static_cast<std::size_t>(group) * num_states_;
  }
  const std::byte* key(std::uint32_t group) const {
    return keys_.data() + static_cast<std::size_t>(group) * key_width_;
  }

  std::uint32_t size() const { return count_; }
  std::uint32_t key_width() const { return key_width_; }

  // Fills `out` with all group indices in ascending key-byte order.
  void SortedGroups(std::vector<std::uint32_t>* out) const;

 private:
  void Grow();
  std::uint64_t Hash(const std::byte* key) const;

  std::uint32_t key_width_ = 0;
  std::uint32_t num_states_ = 0;
  std::uint32_t count_ = 0;
  std::vector<std::byte> keys_;
  std::vector<std::int64_t> states_;
  std::vector<std::uint32_t> slots_;  // group index + 1; 0 = empty
};

}  // namespace smartssd::exec

#endif  // SMARTSSD_EXEC_GROUP_TABLE_H_
