#include "exec/batch_skip.h"

namespace smartssd::exec {

namespace {

enum class ConjunctVerdict { kAllPass, kAllFail, kMixed };

// Classifies "col OP literal" against the page's [mn, mx]. The empty-
// page sentinel (mn > mx) can classify either way; with zero rows on
// the page every per-row charge multiplies to nothing, so any verdict
// is exact there.
ConjunctVerdict ClassifyConjunct(const expr::ColumnCompare& cc,
                                 std::int64_t mn, std::int64_t mx) {
  const std::int64_t lit = cc.literal;
  switch (cc.op) {
    case expr::CompareOp::kLt:
      if (mx < lit) return ConjunctVerdict::kAllPass;
      if (mn >= lit) return ConjunctVerdict::kAllFail;
      break;
    case expr::CompareOp::kLe:
      if (mx <= lit) return ConjunctVerdict::kAllPass;
      if (mn > lit) return ConjunctVerdict::kAllFail;
      break;
    case expr::CompareOp::kGt:
      if (mn > lit) return ConjunctVerdict::kAllPass;
      if (mx <= lit) return ConjunctVerdict::kAllFail;
      break;
    case expr::CompareOp::kGe:
      if (mn >= lit) return ConjunctVerdict::kAllPass;
      if (mx < lit) return ConjunctVerdict::kAllFail;
      break;
    case expr::CompareOp::kEq:
      if (mn == lit && mx == lit) return ConjunctVerdict::kAllPass;
      if (lit < mn || lit > mx) return ConjunctVerdict::kAllFail;
      break;
    case expr::CompareOp::kNe:
      if (lit < mn || lit > mx) return ConjunctVerdict::kAllPass;
      if (mn == lit && mx == lit) return ConjunctVerdict::kAllFail;
      break;
  }
  return ConjunctVerdict::kMixed;
}

}  // namespace

BatchSkipAnalysis::BatchSkipAnalysis(const expr::Expression* pred,
                                     const storage::ZoneMap* map,
                                     int num_outer_columns)
    : map_(map) {
  if (pred == nullptr || map == nullptr) return;
  auto add = [&](const expr::Expression& e) {
    const std::optional<expr::ColumnCompare> cc = e.AsColumnCompare();
    if (cc.has_value() && cc->column < num_outer_columns &&
        map->TracksColumn(cc->column)) {
      conjuncts_.emplace_back(cc);
    } else {
      conjuncts_.emplace_back(std::nullopt);
    }
  };
  if (const auto* children = pred->AsConjunction()) {
    for (const auto& child : *children) add(*child);
  } else {
    add(*pred);
  }
  // A leading non-conforming conjunct blocks every verdict.
  usable_ = !conjuncts_.empty() && conjuncts_.front().has_value();
}

PageClass BatchSkipAnalysis::Classify(std::uint64_t page,
                                      expr::EvalStats* per_row) const {
  expr::EvalStats cost;
  for (const auto& cc : conjuncts_) {
    if (!cc.has_value()) return PageClass::kMixed;
    const Result<storage::ZoneMap::Range> range =
        map_->PageRange(page, cc->column);
    if (!range.ok()) return PageClass::kMixed;
    // One column read + one comparison per row this conjunct runs on.
    ++cost.column_reads;
    ++cost.comparisons;
    switch (ClassifyConjunct(*cc, range->min, range->max)) {
      case ConjunctVerdict::kAllPass:
        break;  // every row reaches the next conjunct
      case ConjunctVerdict::kAllFail:
        // Every row short-circuits here: prefix + this conjunct.
        *per_row = cost;
        return PageClass::kAllFail;
      case ConjunctVerdict::kMixed:
        return PageClass::kMixed;
    }
  }
  *per_row = cost;
  return PageClass::kAllPass;
}

void AddScaledEvalStats(expr::EvalStats* dst, const expr::EvalStats& per_row,
                        std::uint64_t rows) {
  dst->comparisons += per_row.comparisons * rows;
  dst->arithmetic += per_row.arithmetic * rows;
  dst->column_reads += per_row.column_reads * rows;
  dst->like_evals += per_row.like_evals * rows;
  dst->case_evals += per_row.case_evals * rows;
}

}  // namespace smartssd::exec
