#ifndef SMARTSSD_EXEC_MORSEL_H_
#define SMARTSSD_EXEC_MORSEL_H_

// Morsel-parallel host scan: wall-clock-only multi-threading for the
// page-processing loop.
//
// The simulation's virtual-time accounting is untouched by this layer.
// The dispatcher (the calling thread) feeds pages in scan order; worker
// threads run private PageProcessors over them and record each page's
// OpCounts and output rows next to the page, keyed by submission index.
// The caller replays virtual time from those per-page counts in
// submission order — the identical cost-model call sequence the serial
// loop makes — and merges results deterministically:
//  * projection rows concatenate in page submission order,
//  * aggregate/GROUP BY state folds via PageProcessor::MergeFrom
//    (commutative folds; group output is sorted at Finish),
// so results, OpCounts, and virtual-time numbers are byte-identical at
// any thread count. All simulation and differential paths run with
// threads == 1, which bypasses this scanner entirely.
//
// Threading discipline (what keeps TSan quiet): page slots live in a
// deque that only grows; workers take a stable element pointer under
// the queue mutex and write only their claimed slot outside it; the
// dispatcher reads slots only after Drain() has joined every worker.
// The join hash table is sealed before the workers start, so probes
// never write the lazy-seal flag concurrently.

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include <condition_variable>

#include "common/macros.h"
#include "common/result.h"
#include "exec/cost_model.h"
#include "exec/kernel_mode.h"
#include "exec/page_processor.h"
#include "exec/query_spec.h"

namespace smartssd::exec {

class MorselScanner {
 public:
  // Mirrors the PageProcessor constructor; `zone_map` (optional) arms
  // the batch skip paths on every worker. `threads` >= 2.
  MorselScanner(const BoundQuery* bound, const JoinHashTable* hash_table,
                KernelMode mode, const storage::ZoneMap* zone_map,
                int threads);
  ~MorselScanner();
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(MorselScanner);

  // Whether a query's result can be merged deterministically from
  // per-worker partial state. Top-N cannot: its tie-keep-the-incumbent
  // heap makes the kept set depend on arrival order.
  static bool Eligible(const BoundQuery& bound) {
    return !bound.spec->top_n.has_value();
  }

  // Copies one page's bytes and queues it (the source span may be a
  // buffer-pool frame that gets evicted while workers are behind).
  // Blocks when too many undigested pages are in flight.
  void AddPage(std::uint64_t page_index, std::span<const std::byte> page);

  // Joins the workers, folds every worker's aggregation state into the
  // merged processor, and reports the first page-processing error.
  Status Drain();

  // Valid after Drain(). Per-page results in submission order.
  std::size_t pages_submitted() const { return pages_.size(); }
  const OpCounts& page_counts(std::size_t i) const {
    return pages_[i].counts;
  }
  // Appends every page's output rows to `out` in submission order.
  void AppendRows(std::vector<std::byte>* out);

  // The merged processor (worker 0 after folding); drive Finish on it.
  PageProcessor& merged() { return *processors_.front(); }

 private:
  struct PageWork {
    std::uint64_t page_index = 0;
    std::vector<std::byte> bytes;
    OpCounts counts;
    std::vector<std::byte> rows;
    Status status = Status::OK();
  };

  void WorkerLoop(PageProcessor* processor);

  std::vector<std::unique_ptr<PageProcessor>> processors_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::deque<PageWork> pages_;      // grows only; slots are stable
  std::size_t next_ = 0;            // first unclaimed slot
  std::size_t completed_ = 0;       // processed slots (for throttling)
  std::size_t in_flight_cap_ = 0;
  bool closed_ = false;
  bool drained_ = false;
};

}  // namespace smartssd::exec

#endif  // SMARTSSD_EXEC_MORSEL_H_
