#include "exec/cost_model.h"

namespace smartssd::exec {

CpuCostParams EmbeddedCostParams(storage::PageLayout layout) {
  if (layout == storage::PageLayout::kPax) {
    // PAX on the embedded cores. per-page: header + one minipage pointer
    // setup per column; per-tuple costs are low because predicate columns
    // stream contiguously.
    return CpuCostParams{
        .page_base = 1000,
        .page_per_column = 52,
        .tuple_base = 65,
        .comparison = 27,
        .arithmetic = 10,
        .column_read = 13,
        .like_eval = 60,
        .case_eval = 10,
        .probe_small = 40,
        .probe_large = 70,
        .probe_large_threshold_entries = 65536,
        .hash_insert = 80,
        .output_tuple = 180,
        .output_byte = 4,
        .agg_update = 30,
        .group_update = 50,
        .topn_update = 60,
    };
  }
  // NSM on the embedded cores: every field access strides across whole
  // tuples, wrecking the small caches; the slot directory walk adds to
  // the per-tuple base. This is why the paper's Smart SSD gains with NSM
  // are visibly below its PAX gains (Figures 3 and 7).
  return CpuCostParams{
      .page_base = 600,
      .page_per_column = 12,
      .tuple_base = 105,
      .comparison = 42,
      .arithmetic = 12,
      .column_read = 24,
      .like_eval = 80,
      .case_eval = 12,
      .probe_small = 45,
      .probe_large = 75,
      .probe_large_threshold_entries = 65536,
      .hash_insert = 90,
      .output_tuple = 200,
      .output_byte = 4,
      .agg_update = 34,
      .group_update = 60,
      .topn_update = 70,
  };
}

CpuCostParams HostCostParams(storage::PageLayout layout) {
  if (layout == storage::PageLayout::kPax) {
    return CpuCostParams{
        .page_base = 500,
        .page_per_column = 10,
        .tuple_base = 20,
        .comparison = 7,
        .arithmetic = 4,
        .column_read = 3,
        .like_eval = 18,
        .case_eval = 4,
        .probe_small = 40,
        .probe_large = 70,
        .probe_large_threshold_entries = 1u << 20,
        .hash_insert = 50,
        .output_tuple = 60,
        .output_byte = 1,
        .agg_update = 8,
        .group_update = 14,
        .topn_update = 18,
    };
  }
  return CpuCostParams{
      .page_base = 400,
      .page_per_column = 8,
      .tuple_base = 25,
      .comparison = 8,
      .arithmetic = 4,
      .column_read = 4,
      .like_eval = 20,
      .case_eval = 4,
      .probe_small = 40,
      .probe_large = 70,
      .probe_large_threshold_entries = 1u << 20,
      .hash_insert = 50,
      .output_tuple = 60,
      .output_byte = 1,
      .agg_update = 8,
      .group_update = 14,
      .topn_update = 18,
  };
}

std::uint64_t Cycles(const OpCounts& counts, const CpuCostParams& params,
                     int schema_columns, std::uint64_t hash_entries) {
  const std::uint64_t probe_cost =
      hash_entries > params.probe_large_threshold_entries
          ? params.probe_large
          : params.probe_small;
  std::uint64_t cycles = 0;
  cycles += counts.pages * (params.page_base +
                            params.page_per_column *
                                static_cast<std::uint64_t>(schema_columns));
  cycles += counts.tuples * params.tuple_base;
  cycles += counts.eval.comparisons * params.comparison;
  cycles += counts.eval.arithmetic * params.arithmetic;
  cycles += counts.eval.column_reads * params.column_read;
  cycles += counts.eval.like_evals * params.like_eval;
  cycles += counts.eval.case_evals * params.case_eval;
  cycles += counts.probes * probe_cost;
  cycles += counts.hash_inserts * params.hash_insert;
  cycles += counts.output_tuples * params.output_tuple;
  cycles += counts.output_bytes * params.output_byte;
  cycles += counts.agg_updates * params.agg_update;
  cycles += counts.group_updates * params.group_update;
  cycles += counts.topn_updates * params.topn_update;
  return cycles;
}

}  // namespace smartssd::exec
