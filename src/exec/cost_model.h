#ifndef SMARTSSD_EXEC_COST_MODEL_H_
#define SMARTSSD_EXEC_COST_MODEL_H_

#include <cstdint>

#include "expr/expression.h"
#include "storage/types.h"

namespace smartssd::exec {

// Operation counts produced by actually executing a query kernel over
// real page bytes. Counts are architecture-independent; the cost params
// below convert them to cycles on a given processor.
struct OpCounts {
  std::uint64_t pages = 0;
  std::uint64_t tuples = 0;
  std::uint64_t probes = 0;
  std::uint64_t hash_inserts = 0;
  std::uint64_t output_tuples = 0;
  std::uint64_t output_bytes = 0;
  std::uint64_t agg_updates = 0;
  std::uint64_t group_updates = 0;  // GROUP BY hash-table updates
  std::uint64_t topn_updates = 0;   // ORDER BY/LIMIT heap operations
  expr::EvalStats eval;

  OpCounts& operator+=(const OpCounts& other) {
    pages += other.pages;
    tuples += other.tuples;
    probes += other.probes;
    hash_inserts += other.hash_inserts;
    output_tuples += other.output_tuples;
    output_bytes += other.output_bytes;
    agg_updates += other.agg_updates;
    group_updates += other.group_updates;
    topn_updates += other.topn_updates;
    eval += other.eval;
    return *this;
  }

  friend bool operator==(const OpCounts&, const OpCounts&) = default;
};

// Cycles charged per counted operation on one processor/layout pair.
//
// Calibration. The counts come from real execution; these constants are
// fitted so that the simulated elapsed times land on the paper's
// measured ratios, then *checked* against every other experiment (see
// EXPERIMENTS.md). The embedded numbers encode a 2013-era in-order ARM
// running interpreted operator code inside firmware; the host numbers an
// out-of-order Xeon running a mature commercial executor. Two structural
// choices matter more than any single constant:
//
//  * page_per_column models per-page directory/minipage setup, so wide
//    schemas (Synthetic64) cost more per page than LINEITEM — this is
//    what separates the join query's 2.2x from Q6's 1.7x;
//  * probe cost steps up when the hash table outgrows the processor's
//    cache (probe_large), which is why TPC-H Q14 (20M-entry PART table)
//    only reaches 1.3x while the 1M-entry synthetic join reaches 2.2x.
struct CpuCostParams {
  std::uint64_t page_base = 0;        // per page: header parse, DMA mgmt
  std::uint64_t page_per_column = 0;  // per page per schema column
  std::uint64_t tuple_base = 0;       // per tuple: slot walk, loop body
  std::uint64_t comparison = 0;
  std::uint64_t arithmetic = 0;
  std::uint64_t column_read = 0;
  std::uint64_t like_eval = 0;
  std::uint64_t case_eval = 0;
  std::uint64_t probe_small = 0;  // hash table fits cache
  std::uint64_t probe_large = 0;  // hash table spills to DRAM
  std::uint64_t probe_large_threshold_entries = 0;
  std::uint64_t hash_insert = 0;
  std::uint64_t output_tuple = 0;  // result slot alloc, header update
  std::uint64_t output_byte = 0;   // result copy, per byte
  std::uint64_t agg_update = 0;
  std::uint64_t group_update = 0;  // GROUP BY key hash + state lookup
  std::uint64_t topn_update = 0;   // ORDER BY/LIMIT heap compare/sift
};

// Calibrated parameter sets. `layout` selects NSM (tuple-at-a-time,
// strided field access) vs PAX (column-local access) costs.
CpuCostParams EmbeddedCostParams(storage::PageLayout layout);
CpuCostParams HostCostParams(storage::PageLayout layout);

// Converts counts to cycles. `schema_columns` scales the per-page
// directory cost; `hash_entries` picks the probe cost tier.
std::uint64_t Cycles(const OpCounts& counts, const CpuCostParams& params,
                     int schema_columns, std::uint64_t hash_entries);

}  // namespace smartssd::exec

#endif  // SMARTSSD_EXEC_COST_MODEL_H_
