#ifndef SMARTSSD_EXEC_QUERY_SPEC_H_
#define SMARTSSD_EXEC_QUERY_SPEC_H_

#include <optional>
#include <string>
#include <vector>

#include "expr/expression.h"
#include "storage/catalog.h"

namespace smartssd::exec {

// Join description: build a hash table on the (small) inner table, probe
// it with the outer table's foreign key — the paper's "simple hash join"
// (Figures 4 and 6).
struct JoinSpec {
  std::string inner_table;
  int outer_key_col = -1;  // FK column in the outer schema
  int inner_key_col = -1;  // unique key column in the inner schema
  // Inner columns appended to the combined row (after the outer columns),
  // available to predicates, aggregates, and projections.
  std::vector<int> inner_payload_cols;
};

// Where the selection sits relative to the probe. The synthetic join
// query (Figure 4) filters S before probing; the paper's Q14 plan
// (Figure 6) replaces the selection with aggregation after the join, so
// the probe happens for every outer tuple — which is exactly why Q14 is
// the most CPU-hungry query in the evaluation.
enum class PipelineOrder { kFilterFirst, kProbeFirst };

struct AggSpec {
  enum class Fn { kSum, kCount, kMin, kMax };
  Fn fn = Fn::kSum;
  expr::ExprPtr input;  // over the combined row; null only for COUNT
  std::string name;
};

// ORDER BY <column> [DESC] LIMIT <limit> on a projection query. A
// natural extension beyond the paper's evaluated operators ("designing
// algorithms for various operators that work inside the Smart SSD",
// Section 5): top-N collapses the result to k rows, so pushing it down
// keeps the in-SSD advantage even for otherwise row-returning scans.
struct TopNSpec {
  int order_col = -1;  // combined-row column, must be an integer column
  bool descending = false;
  std::uint32_t limit = 0;
};

// A declarative single-pipeline query: scan [+ filter] [+ hash-probe
// join] and one of
//   * scalar aggregation (one output row),
//   * grouped aggregation (GROUP BY a few low-cardinality columns — the
//     TPC-H Q1 shape; an extension beyond the paper's evaluated class),
//   * projection of qualifying rows, optionally with ORDER BY/LIMIT.
// The engine can run any QuerySpec on the host or push it into the
// Smart SSD.
struct QuerySpec {
  std::string name;   // for plan printing
  std::string table;  // outer (scanned/probed) table
  expr::ExprPtr predicate;
  std::optional<JoinSpec> join;
  PipelineOrder order = PipelineOrder::kFilterFirst;
  std::vector<AggSpec> aggregates;  // non-empty => aggregate query
  std::vector<int> group_by;        // with aggregates: GROUP BY columns
  std::vector<int> projection;      // combined-row columns, else
  std::optional<TopNSpec> top_n;    // with projection only
};

// A spec resolved against a catalog: table metadata, the combined-row
// schema (outer columns followed by inner payload columns), and the
// payload blob layout carried from probe hits.
struct BoundQuery {
  const QuerySpec* spec = nullptr;
  const storage::TableInfo* outer = nullptr;
  const storage::TableInfo* inner = nullptr;  // null without a join
  storage::Schema combined_schema;
  std::vector<std::uint32_t> payload_offsets;  // within the payload blob
  std::uint32_t payload_width = 0;

  int outer_columns() const { return outer->schema.num_columns(); }
};

// Resolves and type-checks a spec. Fails if tables/columns are missing,
// expressions do not validate, or the join keys are not integer columns.
// The BoundQuery keeps a pointer to `spec`, which must therefore outlive
// it — binding a temporary is a compile error.
Result<BoundQuery> Bind(const QuerySpec& spec,
                        const storage::Catalog& catalog);
Result<BoundQuery> Bind(QuerySpec&& spec,
                        const storage::Catalog& catalog) = delete;

// Schema of the query's output rows: the projected columns for a
// projection query, or (GROUP BY columns followed by) one INT64 column
// per aggregate.
Result<storage::Schema> OutputSchema(const BoundQuery& bound);

// One-line plan rendering (the textual equivalent of Figures 4 and 6).
std::string PlanToString(const BoundQuery& bound);

}  // namespace smartssd::exec

#endif  // SMARTSSD_EXEC_QUERY_SPEC_H_
