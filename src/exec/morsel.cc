#include "exec/morsel.h"

#include <utility>

namespace smartssd::exec {

MorselScanner::MorselScanner(const BoundQuery* bound,
                             const JoinHashTable* hash_table,
                             KernelMode mode,
                             const storage::ZoneMap* zone_map, int threads) {
  SMARTSSD_CHECK(threads >= 2);
  SMARTSSD_CHECK(Eligible(*bound));
  if (hash_table != nullptr) hash_table->Seal();
  // A couple of undigested pages per worker keeps everyone busy without
  // buffering an unbounded slice of the table.
  in_flight_cap_ = static_cast<std::size_t>(threads) * 4;
  processors_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    processors_.push_back(
        std::make_unique<PageProcessor>(bound, hash_table, mode));
    if (zone_map != nullptr) processors_.back()->SetZoneMap(zone_map);
  }
  threads_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    threads_.emplace_back(&MorselScanner::WorkerLoop, this,
                          processors_[static_cast<std::size_t>(t)].get());
  }
}

MorselScanner::~MorselScanner() {
  // Error-path teardown: make sure the workers are gone. The returned
  // status was either already surfaced by an explicit Drain() or is
  // moot because the query failed before reaching it.
  if (!drained_) {
    const Status status = Drain();
    (void)status;
  }
}

void MorselScanner::AddPage(std::uint64_t page_index,
                            std::span<const std::byte> page) {
  std::unique_lock<std::mutex> lock(mu_);
  SMARTSSD_CHECK(!closed_);
  work_done_.wait(lock, [this] {
    return pages_.size() - completed_ < in_flight_cap_;
  });
  PageWork& work = pages_.emplace_back();
  work.page_index = page_index;
  work.bytes.assign(page.begin(), page.end());
  lock.unlock();
  work_ready_.notify_one();
}

void MorselScanner::WorkerLoop(PageProcessor* processor) {
  for (;;) {
    PageWork* work = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [this] { return closed_ || next_ < pages_.size(); });
      if (next_ >= pages_.size()) return;  // closed and drained
      work = &pages_[next_++];  // stable: the deque never shrinks
    }
    work->status = processor->ProcessPage(
        std::span<const std::byte>(work->bytes), work->page_index,
        &work->counts, &work->rows);
    // The page copy is digested; drop it so in-flight memory stays
    // bounded by the cap, not the table size.
    work->bytes = std::vector<std::byte>();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++completed_;
    }
    work_done_.notify_one();
  }
}

Status MorselScanner::Drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  if (drained_) return Status::OK();
  drained_ = true;
  // Everything below runs after the joins, so every slot and every
  // worker processor is quiescent and safely readable here.
  for (const PageWork& work : pages_) {
    if (!work.status.ok()) return work.status;
  }
  for (std::size_t t = 1; t < processors_.size(); ++t) {
    processors_.front()->MergeFrom(*processors_[t]);
  }
  return Status::OK();
}

void MorselScanner::AppendRows(std::vector<std::byte>* out) {
  SMARTSSD_CHECK(drained_);
  for (PageWork& work : pages_) {
    out->insert(out->end(), work.rows.begin(), work.rows.end());
  }
}

}  // namespace smartssd::exec
