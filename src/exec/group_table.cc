#include "exec/group_table.h"

#include <algorithm>
#include <cstring>

namespace smartssd::exec {

namespace {
constexpr std::size_t kInitialSlots = 64;  // power of two
}  // namespace

void GroupTable::Init(std::uint32_t key_width, std::uint32_t num_states) {
  SMARTSSD_CHECK_GT(key_width, 0u);
  key_width_ = key_width;
  num_states_ = num_states;
  slots_.assign(kInitialSlots, 0);
}

std::uint64_t GroupTable::Hash(const std::byte* key) const {
  // FNV-1a with a Fibonacci finalizer: the keys are short (a few
  // fixed-width columns), so byte-at-a-time is fine.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::uint32_t i = 0; i < key_width_; ++i) {
    h ^= static_cast<std::uint64_t>(key[i]);
    h *= 0x100000001B3ull;
  }
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return h;
}

void GroupTable::Grow() {
  std::vector<std::uint32_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, 0);
  const std::size_t mask = slots_.size() - 1;
  for (const std::uint32_t entry : old) {
    if (entry == 0) continue;
    std::size_t i = Hash(key(entry - 1)) & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = entry;
  }
}

std::uint32_t GroupTable::FindOrInsert(const std::byte* key_bytes,
                                       const std::int64_t* init_states) {
  SMARTSSD_CHECK_GT(key_width_, 0u);  // Init() must have run
  if ((count_ + 1) * 2 > slots_.size()) Grow();
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = Hash(key_bytes) & mask;
  while (slots_[i] != 0) {
    const std::uint32_t group = slots_[i] - 1;
    if (std::memcmp(key(group), key_bytes, key_width_) == 0) return group;
    i = (i + 1) & mask;
  }
  const std::uint32_t group = count_++;
  keys_.insert(keys_.end(), key_bytes, key_bytes + key_width_);
  states_.insert(states_.end(), init_states, init_states + num_states_);
  slots_[i] = group + 1;
  return group;
}

void GroupTable::SortedGroups(std::vector<std::uint32_t>* out) const {
  out->resize(count_);
  for (std::uint32_t g = 0; g < count_; ++g) (*out)[g] = g;
  std::sort(out->begin(), out->end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return std::memcmp(key(a), key(b), key_width_) < 0;
            });
}

}  // namespace smartssd::exec
