#include "exec/query_spec.h"

#include <string>
#include <unordered_set>

namespace smartssd::exec {

namespace {

bool IsIntegerColumn(const storage::Column& column) {
  return column.type == storage::ColumnType::kInt32 ||
         column.type == storage::ColumnType::kInt64;
}

}  // namespace

Result<BoundQuery> Bind(const QuerySpec& spec,
                        const storage::Catalog& catalog) {
  SMARTSSD_ASSIGN_OR_RETURN(const storage::TableInfo* outer,
                            catalog.GetTable(spec.table));
  const storage::TableInfo* inner = nullptr;
  std::vector<storage::Column> combined_columns =
      outer->schema.columns();
  std::vector<std::uint32_t> payload_offsets;
  std::uint32_t payload_width = 0;

  if (spec.join.has_value()) {
    const JoinSpec& join = *spec.join;
    SMARTSSD_ASSIGN_OR_RETURN(inner, catalog.GetTable(join.inner_table));
    if (join.outer_key_col < 0 ||
        join.outer_key_col >= outer->schema.num_columns()) {
      return InvalidArgumentError("join: outer key column out of range");
    }
    if (join.inner_key_col < 0 ||
        join.inner_key_col >= inner->schema.num_columns()) {
      return InvalidArgumentError("join: inner key column out of range");
    }
    if (!IsIntegerColumn(outer->schema.column(join.outer_key_col)) ||
        !IsIntegerColumn(inner->schema.column(join.inner_key_col))) {
      return InvalidArgumentError("join keys must be integer columns");
    }
    for (const int col : join.inner_payload_cols) {
      if (col < 0 || col >= inner->schema.num_columns()) {
        return InvalidArgumentError("join: payload column out of range");
      }
      storage::Column payload_column = inner->schema.column(col);
      payload_column.name = join.inner_table + "." + payload_column.name;
      payload_offsets.push_back(payload_width);
      payload_width += payload_column.width;
      combined_columns.push_back(std::move(payload_column));
    }
  } else {
    if (spec.order == PipelineOrder::kProbeFirst) {
      return InvalidArgumentError("probe-first order requires a join");
    }
  }

  SMARTSSD_ASSIGN_OR_RETURN(
      storage::Schema combined_schema,
      storage::Schema::Create(std::move(combined_columns)));

  // Type-check every expression.
  if (spec.predicate != nullptr) {
    // In filter-first order the predicate runs before the probe, so it
    // may only reference outer columns.
    if (spec.order == PipelineOrder::kFilterFirst) {
      SMARTSSD_RETURN_IF_ERROR(spec.predicate->Validate(outer->schema));
    } else {
      SMARTSSD_RETURN_IF_ERROR(spec.predicate->Validate(combined_schema));
    }
  }
  if (!spec.aggregates.empty() && !spec.projection.empty()) {
    return InvalidArgumentError(
        "query cannot both aggregate and project rows");
  }
  for (const AggSpec& agg : spec.aggregates) {
    if (agg.input == nullptr && agg.fn != AggSpec::Fn::kCount) {
      return InvalidArgumentError("aggregate needs an input expression");
    }
    if (agg.input != nullptr) {
      SMARTSSD_RETURN_IF_ERROR(agg.input->Validate(combined_schema));
    }
  }
  for (const int col : spec.projection) {
    if (col < 0 || col >= combined_schema.num_columns()) {
      return InvalidArgumentError("projection column out of range");
    }
  }
  if (spec.aggregates.empty() && spec.projection.empty()) {
    return InvalidArgumentError("query must aggregate or project");
  }
  for (const int col : spec.group_by) {
    if (col < 0 || col >= combined_schema.num_columns()) {
      return InvalidArgumentError("GROUP BY column out of range");
    }
  }
  if (!spec.group_by.empty() && spec.aggregates.empty()) {
    return InvalidArgumentError("GROUP BY requires aggregates");
  }
  if (spec.top_n.has_value()) {
    if (spec.projection.empty()) {
      return InvalidArgumentError("ORDER BY/LIMIT requires a projection");
    }
    const TopNSpec& top_n = *spec.top_n;
    if (top_n.order_col < 0 ||
        top_n.order_col >= combined_schema.num_columns()) {
      return InvalidArgumentError("ORDER BY column out of range");
    }
    if (!IsIntegerColumn(combined_schema.column(top_n.order_col))) {
      return InvalidArgumentError("ORDER BY column must be an integer");
    }
    if (top_n.limit == 0) {
      return InvalidArgumentError("LIMIT must be positive");
    }
  }

  return BoundQuery{.spec = &spec,
                    .outer = outer,
                    .inner = inner,
                    .combined_schema = std::move(combined_schema),
                    .payload_offsets = std::move(payload_offsets),
                    .payload_width = payload_width};
}

Result<storage::Schema> OutputSchema(const BoundQuery& bound) {
  std::vector<storage::Column> columns;
  if (!bound.spec->aggregates.empty()) {
    for (const int col : bound.spec->group_by) {
      storage::Column group_column = bound.combined_schema.column(col);
      // Disambiguate if the same column appears twice in the output.
      group_column.name = "key_" + group_column.name;
      columns.push_back(std::move(group_column));
    }
    for (const AggSpec& agg : bound.spec->aggregates) {
      columns.push_back(storage::Column::Int64(
          agg.name.empty() ? "agg" + std::to_string(columns.size())
                           : agg.name));
    }
  } else {
    // A column may legally be projected more than once; suffix repeats
    // with their position so output column names stay unique.
    std::unordered_set<std::string> used;
    for (std::size_t i = 0; i < bound.spec->projection.size(); ++i) {
      storage::Column column =
          bound.combined_schema.column(bound.spec->projection[i]);
      std::string name = column.name;
      while (!used.insert(name).second) {
        name = column.name + "_" + std::to_string(i);
        column.name = name;
      }
      column.name = name;
      columns.push_back(std::move(column));
    }
  }
  return storage::Schema::Create(std::move(columns));
}

std::string PlanToString(const BoundQuery& bound) {
  const QuerySpec& spec = *bound.spec;
  std::string out;
  if (!spec.aggregates.empty()) {
    out += "Aggregate[";
    for (std::size_t i = 0; i < spec.aggregates.size(); ++i) {
      if (i > 0) out += ", ";
      const AggSpec& agg = spec.aggregates[i];
      switch (agg.fn) {
        case AggSpec::Fn::kSum:
          out += "SUM";
          break;
        case AggSpec::Fn::kCount:
          out += "COUNT";
          break;
        case AggSpec::Fn::kMin:
          out += "MIN";
          break;
        case AggSpec::Fn::kMax:
          out += "MAX";
          break;
      }
      out += "(";
      out += agg.input == nullptr ? "*" : agg.input->ToString();
      out += ")";
    }
    if (!spec.group_by.empty()) {
      out += " GROUP BY ";
      for (std::size_t i = 0; i < spec.group_by.size(); ++i) {
        if (i > 0) out += ", ";
        out += bound.combined_schema.column(spec.group_by[i]).name;
      }
    }
    out += "] <- ";
  } else {
    if (spec.top_n.has_value()) {
      out += "TopN[";
      out += bound.combined_schema.column(spec.top_n->order_col).name;
      out += spec.top_n->descending ? " DESC" : " ASC";
      out += " LIMIT " + std::to_string(spec.top_n->limit) + "] <- ";
    }
    out += "Project[";
    for (std::size_t i = 0; i < spec.projection.size(); ++i) {
      if (i > 0) out += ", ";
      out += bound.combined_schema.column(spec.projection[i]).name;
    }
    out += "] <- ";
  }
  const std::string filter =
      spec.predicate == nullptr
          ? ""
          : "Filter[" + spec.predicate->ToString() + "] <- ";
  const std::string probe =
      spec.join.has_value()
          ? "HashJoin[probe " + spec.table + "." +
                bound.outer->schema.column(spec.join->outer_key_col).name +
                " = build " + spec.join->inner_table + "." +
                bound.inner->schema.column(spec.join->inner_key_col).name +
                "] <- "
          : "";
  // Top-down plan order: filter-first puts the filter next to the scan
  // (Figure 4); probe-first puts the join there (Figure 6).
  if (spec.order == PipelineOrder::kFilterFirst) {
    out += probe + filter;
  } else {
    out += filter + probe;
  }
  out += "Scan[" + spec.table + ", " +
         storage::PageLayoutName(bound.outer->layout) + "]";
  return out;
}

}  // namespace smartssd::exec
