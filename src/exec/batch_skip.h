#ifndef SMARTSSD_EXEC_BATCH_SKIP_H_
#define SMARTSSD_EXEC_BATCH_SKIP_H_

// Zone-map-aware page classification for the vectorized kernel.
//
// Task-level pruning (engine/query_task.cc, exec/pushdown_program.cc)
// skips pages whose per-column *merged* predicate interval cannot match
// — those pages are never read, and never charged. This analysis covers
// the complementary case inside the batch loop: a page that survived
// pruning (or was never pruned, e.g. when the caller has no zone map at
// the task layer) can still be decided wholesale from its [min, max]
// without touching a single row.
//
// The predicate is decomposed into its top-level AND conjuncts, in
// evaluation order. A conjunct is *conforming* when it is exactly
// "column OP int-literal" on a zone-map-tracked outer column; such a
// conjunct costs a fixed {1 column_read, 1 comparison} per row it is
// evaluated on, whether it passes or fails (CompareExpr evaluates both
// operands, then charges one comparison). Against one page's range a
// conforming conjunct is ALL-PASS, ALL-FAIL, or MIXED. Walking in
// order:
//  * every conjunct conforming and ALL-PASS  -> the page is all-pass:
//    predicate evaluation can be skipped with a dense selection vector,
//    charging every conjunct's cost for every row (the interpreter
//    evaluates the full chain on a passing row);
//  * a prefix of ALL-PASS conjuncts followed by an ALL-FAIL one -> the
//    page is all-fail: per-row work can be skipped entirely, charging
//    the prefix-plus-failing-conjunct cost for every row (the
//    interpreter short-circuits at the first false conjunct);
//  * anything else (MIXED, or a non-conforming conjunct reached before
//    a verdict) -> the page must be processed normally.
// This reasoning is what makes the fast paths charge *exactly* the
// interpreter's OpCounts for the rows they skip — the count-identity
// invariant every virtual-time number rests on.
//
// An empty query interval (e.g. "col > 5 AND col < 3") needs no special
// case: the second conjunct classifies ALL-FAIL against any non-empty
// page range, so such pages are skipped with the exact two-conjunct
// cost (the differential harness's PR-3 regression class).

#include <cstdint>
#include <optional>
#include <vector>

#include "expr/expression.h"
#include "storage/zone_map.h"

namespace smartssd::exec {

enum class PageClass {
  kMixed,    // no wholesale verdict: run the predicate normally
  kAllPass,  // every row passes: dense selection, skip evaluation
  kAllFail,  // every row fails: skip all per-row work
};

class BatchSkipAnalysis {
 public:
  BatchSkipAnalysis() = default;

  // `pred` and `map` must outlive the analysis. `num_outer_columns`
  // bounds the columns resolvable from the scanned page (join payload
  // columns are not known page-wide).
  BatchSkipAnalysis(const expr::Expression* pred,
                    const storage::ZoneMap* map, int num_outer_columns);

  // False when no page can ever classify (no zone map, no predicate, or
  // the first conjunct is non-conforming); callers then skip Classify.
  bool usable() const { return usable_; }

  // Classifies one page. On kAllPass, *per_row is the full conjunct
  // chain's per-row cost; on kAllFail, the evaluated-prefix cost
  // (including the failing conjunct). Untouched on kMixed.
  PageClass Classify(std::uint64_t page, expr::EvalStats* per_row) const;

 private:
  // nullopt marks a non-conforming conjunct: classification cannot see
  // past it (it may pass or fail per row).
  std::vector<std::optional<expr::ColumnCompare>> conjuncts_;
  const storage::ZoneMap* map_ = nullptr;
  bool usable_ = false;
};

// dst += per_row * rows, field by field. Used to charge skipped rows.
void AddScaledEvalStats(expr::EvalStats* dst, const expr::EvalStats& per_row,
                        std::uint64_t rows);

}  // namespace smartssd::exec

#endif  // SMARTSSD_EXEC_BATCH_SKIP_H_
