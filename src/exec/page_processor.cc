#include "exec/page_processor.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "exec/hybrid_join.h"
#include "storage/nsm_page.h"
#include "storage/pax_page.h"

namespace smartssd::exec {

namespace {

// Row view over the combined row: outer columns come from the scanned
// tuple, payload columns from the probe hit's payload blob.
class CombinedRowView final : public expr::RowView {
 public:
  CombinedRowView(const BoundQuery* bound, const expr::RowView* outer)
      : bound_(bound), outer_(outer) {}

  void SetPayload(const std::byte* payload) { payload_ = payload; }

  expr::Value GetColumn(int col) const override {
    const int outer_columns = bound_->outer_columns();
    if (col < outer_columns) return outer_->GetColumn(col);
    SMARTSSD_CHECK(payload_ != nullptr);
    const int payload_index = col - outer_columns;
    const std::byte* p =
        payload_ +
        bound_->payload_offsets[static_cast<std::size_t>(payload_index)];
    const storage::Column& column = bound_->combined_schema.column(col);
    switch (column.type) {
      case storage::ColumnType::kInt32: {
        std::int32_t v;
        std::memcpy(&v, p, sizeof(v));
        return expr::Value::Int(v);
      }
      case storage::ColumnType::kInt64: {
        std::int64_t v;
        std::memcpy(&v, p, sizeof(v));
        return expr::Value::Int(v);
      }
      case storage::ColumnType::kFixedChar:
        return expr::Value::String(
            {reinterpret_cast<const char*>(p), column.width});
    }
    return expr::Value::Null();
  }

 private:
  const BoundQuery* bound_;
  const expr::RowView* outer_;
  const std::byte* payload_ = nullptr;
};

std::int64_t AggInit(AggSpec::Fn fn) {
  switch (fn) {
    case AggSpec::Fn::kSum:
    case AggSpec::Fn::kCount:
      return 0;
    case AggSpec::Fn::kMin:
      return std::numeric_limits<std::int64_t>::max();
    case AggSpec::Fn::kMax:
      return std::numeric_limits<std::int64_t>::min();
  }
  return 0;
}

std::vector<std::int64_t> AggInitStates(const QuerySpec& spec) {
  std::vector<std::int64_t> states;
  states.reserve(spec.aggregates.size());
  for (const AggSpec& agg : spec.aggregates) {
    states.push_back(AggInit(agg.fn));
  }
  return states;
}

// Grows `out` for `extra` more bytes without forfeiting geometric
// growth: reserving the exact per-page need each time would make every
// page's append a full copy (quadratic over the scan).
void EnsureOutCapacity(std::vector<std::byte>* out, std::size_t extra) {
  const std::size_t needed = out->size() + extra;
  if (needed <= out->capacity()) return;
  out->reserve(std::max(needed, out->capacity() * 2));
}

// Reads the integer value of a batch column lane (INT32 or INT64).
std::int64_t LoadIntLane(const expr::BatchColumn& col, std::uint32_t row) {
  const std::byte* p = col.at(row);
  if (col.width == 4) {
    std::int32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  std::int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

PageProcessor::PageProcessor(const BoundQuery* bound,
                             const JoinHashTable* hash_table,
                             KernelMode mode, HybridJoin* hybrid)
    : bound_(bound), hash_table_(hash_table), hybrid_(hybrid) {
  SMARTSSD_CHECK(bound != nullptr);
  SMARTSSD_CHECK_EQ(bound->spec->join.has_value(),
                    hash_table != nullptr || hybrid != nullptr);
  SMARTSSD_CHECK(hash_table == nullptr || hybrid == nullptr);
  const QuerySpec& spec = *bound->spec;
  agg_init_ = AggInitStates(spec);
  agg_state_ = agg_init_;
  if (spec.aggregates.empty()) {
    for (const int col : spec.projection) {
      output_row_width_ += bound->combined_schema.column(col).width;
    }
  } else {
    std::uint32_t key_width = 0;
    for (const int col : spec.group_by) {
      key_width += bound->combined_schema.column(col).width;
    }
    output_row_width_ = key_width;
    output_row_width_ +=
        8u * static_cast<std::uint32_t>(spec.aggregates.size());
    if (!spec.group_by.empty()) {
      group_table_.Init(key_width,
                        static_cast<std::uint32_t>(spec.aggregates.size()));
    }
  }
  if (spec.top_n.has_value()) {
    top_n_.reserve(spec.top_n->limit + 1);
  }

  // Column metadata for the batch kernel (the per-page part — base /
  // row_ptrs — is filled when a page arrives).
  const int combined_cols = bound->combined_schema.num_columns();
  const int outer_cols = bound->outer_columns();
  batch_columns_.resize(static_cast<std::size_t>(combined_cols));
  for (int c = 0; c < combined_cols; ++c) {
    const storage::Column& col = bound->combined_schema.column(c);
    batch_columns_[static_cast<std::size_t>(c)].type = col.type;
    batch_columns_[static_cast<std::size_t>(c)].width = col.width;
    if (c >= outer_cols) {
      batch_columns_[static_cast<std::size_t>(c)].offset =
          bound->payload_offsets[static_cast<std::size_t>(c - outer_cols)];
    }
  }

  if (mode == KernelMode::kVectorized && hybrid_ == nullptr &&
      CompileKernels()) {
    mode_ = KernelMode::kVectorized;
  } else {
    pred_compiled_.reset();
    agg_compiled_.clear();
  }
}

bool PageProcessor::CompileKernels() {
  const QuerySpec& spec = *bound_->spec;
  const storage::Schema& schema = bound_->combined_schema;
  if (spec.predicate != nullptr) {
    auto compiled = expr::CompiledExpr::Compile(*spec.predicate, schema);
    if (!compiled.ok() ||
        compiled->result_type() != expr::SlotType::kBool) {
      return false;
    }
    pred_compiled_.emplace(std::move(compiled).value());
  }
  for (const AggSpec& agg : spec.aggregates) {
    if (agg.input == nullptr) {
      agg_compiled_.emplace_back();  // COUNT(*): nothing to evaluate
      continue;
    }
    auto compiled = expr::CompiledExpr::Compile(*agg.input, schema);
    // The scalar path funnels aggregate inputs through Value::AsInt;
    // only statically-INT64 inputs are expressible in batch form.
    if (!compiled.ok() ||
        compiled->result_type() != expr::SlotType::kI64) {
      return false;
    }
    agg_compiled_.emplace_back(std::move(compiled).value());
  }
  return true;
}

void PageProcessor::AppendColumnBytes(
    const std::vector<int>& columns,
    const std::function<const std::byte*(int col)>& outer_col_bytes,
    const std::byte* payload, OpCounts* counts,
    std::vector<std::byte>* out) const {
  const int outer_columns = bound_->outer_columns();
  for (const int col : columns) {
    const std::uint32_t width = bound_->combined_schema.column(col).width;
    const std::byte* src;
    if (col < outer_columns) {
      ++counts->eval.column_reads;
      src = outer_col_bytes(col);
    } else {
      SMARTSSD_CHECK(payload != nullptr);
      src = payload + bound_->payload_offsets[static_cast<std::size_t>(
                          col - outer_columns)];
    }
    out->insert(out->end(), src, src + width);
  }
}

Status PageProcessor::UpdateAggregates(const expr::RowView& combined_view,
                                       std::int64_t* states,
                                       OpCounts* counts) {
  const QuerySpec& spec = *bound_->spec;
  for (std::size_t i = 0; i < spec.aggregates.size(); ++i) {
    const AggSpec& agg = spec.aggregates[i];
    ++counts->agg_updates;
    if (agg.fn == AggSpec::Fn::kCount && agg.input == nullptr) {
      ++states[i];
      continue;
    }
    const std::int64_t v =
        agg.input->Evaluate(combined_view, &counts->eval).AsInt();
    switch (agg.fn) {
      case AggSpec::Fn::kSum:
        states[i] += v;
        break;
      case AggSpec::Fn::kCount:
        ++states[i];
        break;
      case AggSpec::Fn::kMin:
        states[i] = std::min(states[i], v);
        break;
      case AggSpec::Fn::kMax:
        states[i] = std::max(states[i], v);
        break;
    }
  }
  return Status::OK();
}

void PageProcessor::PushTopN(std::int64_t key, std::vector<std::byte> row,
                             OpCounts* counts) {
  const TopNSpec& top_n = *bound_->spec->top_n;
  // Heap comparator: the *worst* kept row on top. Ascending keeps the k
  // smallest, so "worst" is the largest key (max-heap); descending is
  // the mirror image.
  auto worse = [&top_n](const std::pair<std::int64_t,
                                        std::vector<std::byte>>& a,
                        const std::pair<std::int64_t,
                                        std::vector<std::byte>>& b) {
    return top_n.descending ? a.first > b.first : a.first < b.first;
  };
  ++counts->topn_updates;
  if (top_n_.size() < top_n.limit) {
    top_n_.emplace_back(key, std::move(row));
    std::push_heap(top_n_.begin(), top_n_.end(), worse);
    return;
  }
  const std::int64_t worst = top_n_.front().first;
  const bool better = top_n.descending ? key > worst : key < worst;
  if (!better) return;
  std::pop_heap(top_n_.begin(), top_n_.end(), worse);
  top_n_.back() = {key, std::move(row)};
  std::push_heap(top_n_.begin(), top_n_.end(), worse);
}

Status PageProcessor::HandleTuple(
    const expr::RowView& outer_view,
    const std::function<const std::byte*(int col)>& outer_col_bytes,
    OpCounts* counts, std::vector<std::byte>* out) {
  const QuerySpec& spec = *bound_->spec;
  CombinedRowView combined(bound_, &outer_view);
  const std::byte* payload = nullptr;
  std::uint64_t seq = 0;

  // Returns whether the tuple has a join match in hand. A hybrid-join
  // tuple landing in a spilled partition has neither a match nor a miss
  // yet: it is deferred (spilled, probed during Finish) and reports
  // "no match" here so the scan moves on. Probe-first predicates for
  // deferred tuples are owed at resolve time.
  auto probe = [&]() -> Result<bool> {
    ++counts->eval.column_reads;  // read the FK
    const std::int64_t key =
        outer_view.GetColumn(spec.join->outer_key_col).AsInt();
    if (hybrid_ != nullptr) {
      SMARTSSD_ASSIGN_OR_RETURN(
          const HybridJoin::ProbeResult result,
          hybrid_->Probe(key, outer_col_bytes, counts));
      if (result.deferred) return false;
      seq = result.seq;
      payload = result.payload;
    } else {
      ++counts->probes;
      payload = hash_table_->Probe(key);
    }
    if (payload == nullptr) return false;
    combined.SetPayload(payload);
    return true;
  };

  if (spec.order == PipelineOrder::kFilterFirst) {
    if (spec.predicate != nullptr &&
        !spec.predicate->Evaluate(outer_view, &counts->eval).AsBool()) {
      return Status::OK();
    }
    if (spec.join.has_value()) {
      SMARTSSD_ASSIGN_OR_RETURN(const bool matched, probe());
      if (!matched) return Status::OK();
    }
  } else {
    SMARTSSD_ASSIGN_OR_RETURN(const bool matched, probe());
    if (!matched) return Status::OK();
    if (spec.predicate != nullptr &&
        !spec.predicate->Evaluate(combined, &counts->eval).AsBool()) {
      return Status::OK();
    }
  }

  // Order-sensitive output with spilled partitions: stage the match and
  // replay everything in scan order at Finish, so scan-time matches and
  // resolved matches interleave exactly as the unconstrained join
  // emits them.
  if (hybrid_ != nullptr && hybrid_->ordered()) {
    hybrid_->BufferMatch(seq, outer_col_bytes, payload);
    return Status::OK();
  }
  return SinkJoinedRow(outer_view, outer_col_bytes, payload, counts, out);
}

Status PageProcessor::SinkJoinedRow(
    const expr::RowView& outer_view,
    const std::function<const std::byte*(int col)>& outer_col_bytes,
    const std::byte* payload, OpCounts* counts,
    std::vector<std::byte>* out) {
  const QuerySpec& spec = *bound_->spec;
  CombinedRowView combined(bound_, &outer_view);
  combined.SetPayload(payload);

  if (!spec.aggregates.empty()) {
    if (spec.group_by.empty()) {
      return UpdateAggregates(combined, agg_state_.data(), counts);
    }
    // Grouped aggregation: raw key bytes -> running states.
    row_scratch_.clear();
    AppendColumnBytes(spec.group_by, outer_col_bytes, payload, counts,
                      &row_scratch_);
    ++counts->group_updates;
    const std::uint32_t group =
        group_table_.FindOrInsert(row_scratch_.data(), agg_init_.data());
    return UpdateAggregates(combined, group_table_.states(group), counts);
  }

  // Projection path: serialize the output row.
  row_scratch_.clear();
  AppendColumnBytes(spec.projection, outer_col_bytes, payload, counts,
                    &row_scratch_);
  if (spec.top_n.has_value()) {
    ++counts->eval.column_reads;
    const std::int64_t key =
        combined.GetColumn(spec.top_n->order_col).AsInt();
    PushTopN(key, row_scratch_, counts);
    return Status::OK();
  }
  out->insert(out->end(), row_scratch_.begin(), row_scratch_.end());
  ++counts->output_tuples;
  counts->output_bytes += output_row_width_;
  ++rows_output_;
  return Status::OK();
}

void PageProcessor::SetZoneMap(const storage::ZoneMap* map) {
  skip_analysis_ =
      BatchSkipAnalysis(bound_->spec->predicate.get(), map,
                        bound_->outer_columns());
}

Status PageProcessor::ProcessPage(std::span<const std::byte> page,
                                  std::uint64_t page_index,
                                  OpCounts* counts,
                                  std::vector<std::byte>* out) {
  ++counts->pages;
  if (mode_ == KernelMode::kVectorized) {
    return ProcessPageVectorized(page, page_index, counts, out);
  }
  return ProcessPageScalar(page, counts, out);
}

void PageProcessor::MergeFrom(const PageProcessor& other) {
  SMARTSSD_CHECK(!bound_->spec->top_n.has_value());
  SMARTSSD_CHECK(hybrid_ == nullptr && other.hybrid_ == nullptr);
  const QuerySpec& spec = *bound_->spec;
  auto fold = [&spec](std::size_t i, std::int64_t& state, std::int64_t v) {
    switch (spec.aggregates[i].fn) {
      case AggSpec::Fn::kSum:
      case AggSpec::Fn::kCount:  // partial counts are additive
        state += v;
        break;
      case AggSpec::Fn::kMin:
        state = std::min(state, v);
        break;
      case AggSpec::Fn::kMax:
        state = std::max(state, v);
        break;
    }
  };
  if (spec.group_by.empty()) {
    for (std::size_t i = 0; i < agg_state_.size(); ++i) {
      fold(i, agg_state_[i], other.agg_state_[i]);
    }
  } else {
    for (std::uint32_t g = 0; g < other.group_table_.size(); ++g) {
      const std::uint32_t mine = group_table_.FindOrInsert(
          other.group_table_.key(g), agg_init_.data());
      std::int64_t* states = group_table_.states(mine);
      const std::int64_t* theirs = other.group_table_.states(g);
      for (std::size_t i = 0; i < spec.aggregates.size(); ++i) {
        fold(i, states[i], theirs[i]);
      }
    }
  }
  rows_output_ += other.rows_output_;
}

Status PageProcessor::ProcessPageScalar(std::span<const std::byte> page,
                                        OpCounts* counts,
                                        std::vector<std::byte>* out) {
  const QuerySpec& spec = *bound_->spec;
  const bool row_output =
      spec.aggregates.empty() && !spec.top_n.has_value();
  const storage::Schema& schema = bound_->outer->schema;
  if (bound_->outer->layout == storage::PageLayout::kNsm) {
    SMARTSSD_ASSIGN_OR_RETURN(const storage::NsmPageReader reader,
                              storage::NsmPageReader::Open(&schema, page));
    if (row_output) {
      EnsureOutCapacity(out, static_cast<std::size_t>(
                                 reader.tuple_count()) *
                                 output_row_width_);
    }
    for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
      ++counts->tuples;
      const std::byte* tuple = reader.tuple(i);
      expr::NsmRowView view(&schema, tuple);
      auto col_bytes = [&](int col) -> const std::byte* {
        return tuple + schema.offset(col);
      };
      SMARTSSD_RETURN_IF_ERROR(HandleTuple(view, col_bytes, counts, out));
    }
    return Status::OK();
  }
  SMARTSSD_ASSIGN_OR_RETURN(const storage::PaxPageReader reader,
                            storage::PaxPageReader::Open(&schema, page));
  if (row_output) {
    EnsureOutCapacity(out, static_cast<std::size_t>(reader.tuple_count()) *
                               output_row_width_);
  }
  for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
    ++counts->tuples;
    expr::PaxRowView view(&schema, &reader, i);
    auto col_bytes = [&](int col) -> const std::byte* {
      return reader.value(i, col);
    };
    SMARTSSD_RETURN_IF_ERROR(HandleTuple(view, col_bytes, counts, out));
  }
  return Status::OK();
}

Status PageProcessor::ProcessPageVectorized(std::span<const std::byte> page,
                                            std::uint64_t page_index,
                                            OpCounts* counts,
                                            std::vector<std::byte>* out) {
  const QuerySpec& spec = *bound_->spec;
  const storage::Schema& schema = bound_->outer->schema;
  const int outer_cols = schema.num_columns();

  // Zone-map classification first: it needs only the page index, and an
  // all-fail verdict on the filter-first path skips even the NSM tuple-
  // pointer gather below. The per-row cost it reports is exactly what
  // the interpreter would charge the skipped rows (batch_skip.h), so
  // the fast paths leave OpCounts byte-identical.
  PageClass page_class = PageClass::kMixed;
  expr::EvalStats skip_per_row;
  if (page_index != kNoPage && pred_compiled_.has_value() &&
      skip_analysis_.usable()) {
    page_class = skip_analysis_.Classify(page_index, &skip_per_row);
  }

  std::uint16_t n = 0;
  // The readers only validate and locate; the column pointers they hand
  // out live in `page` and stay valid after the readers go out of scope.
  if (bound_->outer->layout == storage::PageLayout::kNsm) {
    SMARTSSD_ASSIGN_OR_RETURN(const storage::NsmPageReader reader,
                              storage::NsmPageReader::Open(&schema, page));
    n = reader.tuple_count();
    counts->tuples += n;
    // Empty (e.g. zero-initialized) pages have no slot directory or
    // minipages to point into — bail before touching them.
    if (n == 0) return Status::OK();
    // All-fail before the probe stage: every row short-circuits inside
    // the predicate, so no per-row work (not even the pointer gather)
    // remains — charge the rows' evaluation cost and move on.
    if (page_class == PageClass::kAllFail &&
        spec.order == PipelineOrder::kFilterFirst) {
      AddScaledEvalStats(&counts->eval, skip_per_row, n);
      return Status::OK();
    }
    tuple_ptrs_.resize(n);
    reader.TuplePointers(tuple_ptrs_.data());
    for (int c = 0; c < outer_cols; ++c) {
      expr::BatchColumn& col = batch_columns_[static_cast<std::size_t>(c)];
      col.base = nullptr;
      col.row_ptrs = tuple_ptrs_.data();
      col.offset = schema.offset(c);
    }
  } else {
    SMARTSSD_ASSIGN_OR_RETURN(const storage::PaxPageReader reader,
                              storage::PaxPageReader::Open(&schema, page));
    n = reader.tuple_count();
    counts->tuples += n;
    if (n == 0) return Status::OK();
    if (page_class == PageClass::kAllFail &&
        spec.order == PipelineOrder::kFilterFirst) {
      AddScaledEvalStats(&counts->eval, skip_per_row, n);
      return Status::OK();
    }
    for (int c = 0; c < outer_cols; ++c) {
      expr::BatchColumn& col = batch_columns_[static_cast<std::size_t>(c)];
      col.base = reader.column_data(c);
      col.stride = schema.column(c).width;
      col.row_ptrs = nullptr;
    }
  }

  sel_.resize(n);
  for (std::uint16_t i = 0; i < n; ++i) sel_[i] = i;

  const expr::BatchInput in{batch_columns_.data(),
                            static_cast<int>(batch_columns_.size())};
  if (spec.order == PipelineOrder::kFilterFirst) {
    if (pred_compiled_.has_value()) {
      if (page_class == PageClass::kAllPass) {
        // Every row passes: keep the dense selection and charge what
        // evaluating the full conjunct chain on each row would have.
        AddScaledEvalStats(&counts->eval, skip_per_row, n);
      } else {
        pred_compiled_->Filter(in, &sel_, &scratch_, &counts->eval);
      }
    }
    if (spec.join.has_value()) ProbeBatch(n, counts);
  } else {
    ProbeBatch(n, counts);
    if (pred_compiled_.has_value()) {
      switch (page_class) {
        case PageClass::kAllPass:
          AddScaledEvalStats(&counts->eval, skip_per_row, sel_.size());
          break;
        case PageClass::kAllFail:
          // Probe survivors would each evaluate (and fail) the chain's
          // short-circuit prefix.
          AddScaledEvalStats(&counts->eval, skip_per_row, sel_.size());
          sel_.clear();
          break;
        case PageClass::kMixed:
          pred_compiled_->Filter(in, &sel_, &scratch_, &counts->eval);
          break;
      }
    }
  }
  return SinkBatch(in, counts, out);
}

void PageProcessor::ProbeBatch(std::uint32_t rows, OpCounts* counts) {
  const JoinSpec& join = *bound_->spec->join;
  const expr::BatchColumn& fk =
      batch_columns_[static_cast<std::size_t>(join.outer_key_col)];
  counts->eval.column_reads += sel_.size();  // FK read per probed row
  counts->probes += sel_.size();
  payload_ptrs_.resize(rows);
  std::size_t w = 0;
  for (const std::uint32_t row : sel_) {
    const std::byte* hit = hash_table_->Probe(LoadIntLane(fk, row));
    if (hit == nullptr) continue;
    payload_ptrs_[row] = hit;
    sel_[w++] = row;
  }
  sel_.resize(w);
  // payload_ptrs_ may have reallocated: (re)point the payload columns.
  const int combined_cols = bound_->combined_schema.num_columns();
  for (int c = bound_->outer_columns(); c < combined_cols; ++c) {
    batch_columns_[static_cast<std::size_t>(c)].row_ptrs =
        payload_ptrs_.data();
  }
}

Status PageProcessor::SinkBatch(const expr::BatchInput& in,
                                OpCounts* counts,
                                std::vector<std::byte>* out) {
  const QuerySpec& spec = *bound_->spec;
  const int outer_cols = bound_->outer_columns();

  if (!spec.aggregates.empty()) {
    const bool grouped = !spec.group_by.empty();
    if (grouped) {
      // Pass 1: resolve every lane's group index (and charge the key-
      // column reads the scalar path charges in AppendColumnBytes).
      counts->group_updates += sel_.size();
      std::uint64_t outer_key_cols = 0;
      for (const int col : spec.group_by) {
        if (col < outer_cols) ++outer_key_cols;
      }
      counts->eval.column_reads += outer_key_cols * sel_.size();
      group_idx_.resize(sel_.size());
      for (std::size_t j = 0; j < sel_.size(); ++j) {
        row_scratch_.clear();
        for (const int col : spec.group_by) {
          const expr::BatchColumn& c =
              batch_columns_[static_cast<std::size_t>(col)];
          const std::byte* src = c.at(sel_[j]);
          row_scratch_.insert(row_scratch_.end(), src, src + c.width);
        }
        group_idx_[j] =
            group_table_.FindOrInsert(row_scratch_.data(),
                                      agg_init_.data());
      }
    }
    // Pass 2: one aggregate at a time — each EvalI64 reuses the shared
    // scratch, so its span must be consumed before the next call.
    for (std::size_t i = 0; i < spec.aggregates.size(); ++i) {
      const AggSpec& agg = spec.aggregates[i];
      counts->agg_updates += sel_.size();
      if (agg.input == nullptr) {  // COUNT(*)
        if (grouped) {
          for (const std::uint32_t g : group_idx_) {
            ++group_table_.states(g)[i];
          }
        } else {
          agg_state_[i] += static_cast<std::int64_t>(sel_.size());
        }
        continue;
      }
      const std::span<const std::int64_t> vals =
          agg_compiled_[i]->EvalI64(in, sel_, &scratch_, &counts->eval);
      auto fold = [&](std::int64_t& state, std::int64_t v) {
        switch (agg.fn) {
          case AggSpec::Fn::kSum:
            state += v;
            break;
          case AggSpec::Fn::kCount:
            ++state;
            break;
          case AggSpec::Fn::kMin:
            state = std::min(state, v);
            break;
          case AggSpec::Fn::kMax:
            state = std::max(state, v);
            break;
        }
      };
      if (grouped) {
        for (std::size_t j = 0; j < vals.size(); ++j) {
          fold(group_table_.states(group_idx_[j])[i], vals[j]);
        }
      } else {
        for (const std::int64_t v : vals) fold(agg_state_[i], v);
      }
    }
    return Status::OK();
  }

  // Projection: copy the surviving rows' column bytes.
  std::uint64_t outer_proj_cols = 0;
  for (const int col : spec.projection) {
    if (col < outer_cols) ++outer_proj_cols;
  }
  counts->eval.column_reads += outer_proj_cols * sel_.size();
  if (spec.top_n.has_value()) {
    counts->eval.column_reads += sel_.size();  // the order key
    const expr::BatchColumn& order_col =
        batch_columns_[static_cast<std::size_t>(spec.top_n->order_col)];
    for (const std::uint32_t row : sel_) {
      row_scratch_.clear();
      for (const int col : spec.projection) {
        const expr::BatchColumn& c =
            batch_columns_[static_cast<std::size_t>(col)];
        const std::byte* src = c.at(row);
        row_scratch_.insert(row_scratch_.end(), src, src + c.width);
      }
      PushTopN(LoadIntLane(order_col, row), row_scratch_, counts);
    }
    return Status::OK();
  }
  EnsureOutCapacity(out, sel_.size() * output_row_width_);
  for (const std::uint32_t row : sel_) {
    for (const int col : spec.projection) {
      const expr::BatchColumn& c =
          batch_columns_[static_cast<std::size_t>(col)];
      const std::byte* src = c.at(row);
      out->insert(out->end(), src, src + c.width);
    }
  }
  counts->output_tuples += sel_.size();
  counts->output_bytes +=
      static_cast<std::uint64_t>(sel_.size()) * output_row_width_;
  rows_output_ += sel_.size();
  return Status::OK();
}

Status PageProcessor::FinishHybrid(OpCounts* counts,
                                   std::vector<std::byte>* out) {
  const QuerySpec& spec = *bound_->spec;
  const storage::Schema& schema = bound_->outer->schema;
  // Resolve spilled partitions: each deferred tuple arrives back as a
  // materialized NSM outer row plus its matched payload.
  auto deliver = [&](std::uint64_t seq, const std::byte* row,
                     const std::byte* payload) -> Status {
    expr::NsmRowView view(&schema, row);
    auto col_bytes = [&](int col) -> const std::byte* {
      return row + schema.offset(col);
    };
    // Probe-first deferred tuples still owe the predicate (it needs the
    // payload); filter-first tuples passed it before they spilled.
    if (spec.order == PipelineOrder::kProbeFirst &&
        spec.predicate != nullptr) {
      CombinedRowView combined(bound_, &view);
      combined.SetPayload(payload);
      if (!spec.predicate->Evaluate(combined, &counts->eval).AsBool()) {
        return Status::OK();
      }
    }
    if (hybrid_->ordered()) {
      hybrid_->BufferMatchRaw(seq, row, payload);
      return Status::OK();
    }
    return SinkJoinedRow(view, col_bytes, payload, counts, out);
  };
  SMARTSSD_RETURN_IF_ERROR(hybrid_->Resolve(counts, deliver));
  if (hybrid_->ordered()) {
    SMARTSSD_RETURN_IF_ERROR(hybrid_->ReplayOrdered(
        [&](const std::byte* row, const std::byte* payload) -> Status {
          expr::NsmRowView view(&schema, row);
          auto col_bytes = [&](int col) -> const std::byte* {
            return row + schema.offset(col);
          };
          return SinkJoinedRow(view, col_bytes, payload, counts, out);
        }));
  }
  return Status::OK();
}

Status PageProcessor::Finish(OpCounts* counts, std::vector<std::byte>* out) {
  const QuerySpec& spec = *bound_->spec;
  if (hybrid_ != nullptr) {
    SMARTSSD_RETURN_IF_ERROR(FinishHybrid(counts, out));
  }
  if (!spec.aggregates.empty()) {
    if (spec.group_by.empty()) {
      for (const std::int64_t v : agg_state_) {
        const std::byte* p = reinterpret_cast<const std::byte*>(&v);
        out->insert(out->end(), p, p + sizeof(v));
      }
      ++counts->output_tuples;
      counts->output_bytes += output_row_width_;
      ++rows_output_;
      return Status::OK();
    }
    // One row per group, in key-byte order (what the former
    // std::map<std::string, ...> iteration produced).
    std::vector<std::uint32_t> order;
    group_table_.SortedGroups(&order);
    for (const std::uint32_t g : order) {
      const std::byte* key = group_table_.key(g);
      out->insert(out->end(), key, key + group_table_.key_width());
      const std::int64_t* states = group_table_.states(g);
      for (std::size_t i = 0; i < spec.aggregates.size(); ++i) {
        const std::byte* p =
            reinterpret_cast<const std::byte*>(&states[i]);
        out->insert(out->end(), p, p + sizeof(std::int64_t));
      }
      ++counts->output_tuples;
      counts->output_bytes += output_row_width_;
      ++rows_output_;
    }
    return Status::OK();
  }
  if (spec.top_n.has_value()) {
    // Drain the heap into sort order.
    std::sort(top_n_.begin(), top_n_.end(),
              [&](const auto& a, const auto& b) {
                return spec.top_n->descending ? a.first > b.first
                                              : a.first < b.first;
              });
    for (const auto& [key, row] : top_n_) {
      out->insert(out->end(), row.begin(), row.end());
      ++counts->output_tuples;
      counts->output_bytes += output_row_width_;
      ++rows_output_;
    }
  }
  return Status::OK();
}

JoinHashTableBuilder::JoinHashTableBuilder(const BoundQuery* bound)
    : bound_(bound),
      table_(bound->payload_width, bound->inner->tuple_count),
      payload_(bound->payload_width) {
  SMARTSSD_CHECK(bound->spec->join.has_value());
}

Status JoinHashTableBuilder::AddPage(std::span<const std::byte> page) {
  const JoinSpec& join = *bound_->spec->join;
  const storage::TableInfo& inner = *bound_->inner;
  ++counts_.pages;
  ++pages_added_;
  auto insert_tuple = [&](const expr::RowView& view,
                          auto col_bytes) -> Status {
    ++counts_.tuples;
    ++counts_.eval.column_reads;
    const std::int64_t key = view.GetColumn(join.inner_key_col).AsInt();
    std::size_t offset = 0;
    for (const int col : join.inner_payload_cols) {
      ++counts_.eval.column_reads;
      const std::uint32_t width = inner.schema.column(col).width;
      std::memcpy(payload_.data() + offset, col_bytes(col), width);
      offset += width;
    }
    ++counts_.hash_inserts;
    return table_.Insert(key, payload_);
  };
  if (inner.layout == storage::PageLayout::kNsm) {
    SMARTSSD_ASSIGN_OR_RETURN(
        const storage::NsmPageReader reader,
        storage::NsmPageReader::Open(&inner.schema, page));
    for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
      const std::byte* tuple = reader.tuple(i);
      expr::NsmRowView view(&inner.schema, tuple);
      SMARTSSD_RETURN_IF_ERROR(insert_tuple(view, [&](int col) {
        return tuple + inner.schema.offset(col);
      }));
    }
  } else {
    SMARTSSD_ASSIGN_OR_RETURN(
        const storage::PaxPageReader reader,
        storage::PaxPageReader::Open(&inner.schema, page));
    for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
      expr::PaxRowView view(&inner.schema, &reader, i);
      SMARTSSD_RETURN_IF_ERROR(insert_tuple(
          view, [&](int col) { return reader.value(i, col); }));
    }
  }
  return Status::OK();
}

JoinHashTable JoinHashTableBuilder::TakeTable() {
  return std::move(table_);
}

Result<JoinHashTable> BuildJoinHashTable(
    const BoundQuery& bound,
    const std::function<Result<std::span<const std::byte>>(
        std::uint64_t page_index)>& read_page,
    OpCounts* counts) {
  const storage::TableInfo& inner = *bound.inner;
  JoinHashTableBuilder builder(&bound);
  for (std::uint64_t p = 0; p < inner.page_count; ++p) {
    SMARTSSD_ASSIGN_OR_RETURN(std::span<const std::byte> page, read_page(p));
    SMARTSSD_RETURN_IF_ERROR(builder.AddPage(page));
  }
  *counts += builder.counts();
  return builder.TakeTable();
}

}  // namespace smartssd::exec
