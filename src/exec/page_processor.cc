#include "exec/page_processor.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "storage/nsm_page.h"
#include "storage/pax_page.h"

namespace smartssd::exec {

namespace {

// Row view over the combined row: outer columns come from the scanned
// tuple, payload columns from the probe hit's payload blob.
class CombinedRowView final : public expr::RowView {
 public:
  CombinedRowView(const BoundQuery* bound, const expr::RowView* outer)
      : bound_(bound), outer_(outer) {}

  void SetPayload(const std::byte* payload) { payload_ = payload; }

  expr::Value GetColumn(int col) const override {
    const int outer_columns = bound_->outer_columns();
    if (col < outer_columns) return outer_->GetColumn(col);
    SMARTSSD_CHECK(payload_ != nullptr);
    const int payload_index = col - outer_columns;
    const std::byte* p =
        payload_ +
        bound_->payload_offsets[static_cast<std::size_t>(payload_index)];
    const storage::Column& column = bound_->combined_schema.column(col);
    switch (column.type) {
      case storage::ColumnType::kInt32: {
        std::int32_t v;
        std::memcpy(&v, p, sizeof(v));
        return expr::Value::Int(v);
      }
      case storage::ColumnType::kInt64: {
        std::int64_t v;
        std::memcpy(&v, p, sizeof(v));
        return expr::Value::Int(v);
      }
      case storage::ColumnType::kFixedChar:
        return expr::Value::String(
            {reinterpret_cast<const char*>(p), column.width});
    }
    return expr::Value::Null();
  }

 private:
  const BoundQuery* bound_;
  const expr::RowView* outer_;
  const std::byte* payload_ = nullptr;
};

std::int64_t AggInit(AggSpec::Fn fn) {
  switch (fn) {
    case AggSpec::Fn::kSum:
    case AggSpec::Fn::kCount:
      return 0;
    case AggSpec::Fn::kMin:
      return std::numeric_limits<std::int64_t>::max();
    case AggSpec::Fn::kMax:
      return std::numeric_limits<std::int64_t>::min();
  }
  return 0;
}

std::vector<std::int64_t> AggInitStates(const QuerySpec& spec) {
  std::vector<std::int64_t> states;
  states.reserve(spec.aggregates.size());
  for (const AggSpec& agg : spec.aggregates) {
    states.push_back(AggInit(agg.fn));
  }
  return states;
}

}  // namespace

PageProcessor::PageProcessor(const BoundQuery* bound,
                             const JoinHashTable* hash_table)
    : bound_(bound), hash_table_(hash_table) {
  SMARTSSD_CHECK(bound != nullptr);
  SMARTSSD_CHECK_EQ(bound->spec->join.has_value(), hash_table != nullptr);
  const QuerySpec& spec = *bound->spec;
  agg_state_ = AggInitStates(spec);
  if (spec.aggregates.empty()) {
    for (const int col : spec.projection) {
      output_row_width_ += bound->combined_schema.column(col).width;
    }
  } else {
    for (const int col : spec.group_by) {
      output_row_width_ += bound->combined_schema.column(col).width;
    }
    output_row_width_ +=
        8u * static_cast<std::uint32_t>(spec.aggregates.size());
  }
  if (spec.top_n.has_value()) {
    top_n_.reserve(spec.top_n->limit + 1);
  }
}

void PageProcessor::AppendColumnBytes(
    const std::vector<int>& columns,
    const std::function<const std::byte*(int col)>& outer_col_bytes,
    const std::byte* payload, OpCounts* counts,
    std::vector<std::byte>* out) const {
  const int outer_columns = bound_->outer_columns();
  for (const int col : columns) {
    const std::uint32_t width = bound_->combined_schema.column(col).width;
    const std::byte* src;
    if (col < outer_columns) {
      ++counts->eval.column_reads;
      src = outer_col_bytes(col);
    } else {
      SMARTSSD_CHECK(payload != nullptr);
      src = payload + bound_->payload_offsets[static_cast<std::size_t>(
                          col - outer_columns)];
    }
    out->insert(out->end(), src, src + width);
  }
}

Status PageProcessor::UpdateAggregates(const expr::RowView& combined_view,
                                       std::vector<std::int64_t>* states,
                                       OpCounts* counts) {
  const QuerySpec& spec = *bound_->spec;
  for (std::size_t i = 0; i < spec.aggregates.size(); ++i) {
    const AggSpec& agg = spec.aggregates[i];
    ++counts->agg_updates;
    if (agg.fn == AggSpec::Fn::kCount && agg.input == nullptr) {
      ++(*states)[i];
      continue;
    }
    const std::int64_t v =
        agg.input->Evaluate(combined_view, &counts->eval).AsInt();
    switch (agg.fn) {
      case AggSpec::Fn::kSum:
        (*states)[i] += v;
        break;
      case AggSpec::Fn::kCount:
        ++(*states)[i];
        break;
      case AggSpec::Fn::kMin:
        (*states)[i] = std::min((*states)[i], v);
        break;
      case AggSpec::Fn::kMax:
        (*states)[i] = std::max((*states)[i], v);
        break;
    }
  }
  return Status::OK();
}

void PageProcessor::PushTopN(std::int64_t key, std::vector<std::byte> row,
                             OpCounts* counts) {
  const TopNSpec& top_n = *bound_->spec->top_n;
  // Heap comparator: the *worst* kept row on top. Ascending keeps the k
  // smallest, so "worst" is the largest key (max-heap); descending is
  // the mirror image.
  auto worse = [&top_n](const std::pair<std::int64_t,
                                        std::vector<std::byte>>& a,
                        const std::pair<std::int64_t,
                                        std::vector<std::byte>>& b) {
    return top_n.descending ? a.first > b.first : a.first < b.first;
  };
  ++counts->topn_updates;
  if (top_n_.size() < top_n.limit) {
    top_n_.emplace_back(key, std::move(row));
    std::push_heap(top_n_.begin(), top_n_.end(), worse);
    return;
  }
  const std::int64_t worst = top_n_.front().first;
  const bool better = top_n.descending ? key > worst : key < worst;
  if (!better) return;
  std::pop_heap(top_n_.begin(), top_n_.end(), worse);
  top_n_.back() = {key, std::move(row)};
  std::push_heap(top_n_.begin(), top_n_.end(), worse);
}

Status PageProcessor::HandleTuple(
    const expr::RowView& outer_view,
    const std::function<const std::byte*(int col)>& outer_col_bytes,
    OpCounts* counts, std::vector<std::byte>* out) {
  const QuerySpec& spec = *bound_->spec;
  CombinedRowView combined(bound_, &outer_view);
  const std::byte* payload = nullptr;

  auto probe = [&]() -> bool {
    ++counts->eval.column_reads;  // read the FK
    const std::int64_t key =
        outer_view.GetColumn(spec.join->outer_key_col).AsInt();
    ++counts->probes;
    payload = hash_table_->Probe(key);
    if (payload == nullptr) return false;
    combined.SetPayload(payload);
    return true;
  };

  if (spec.order == PipelineOrder::kFilterFirst) {
    if (spec.predicate != nullptr &&
        !spec.predicate->Evaluate(outer_view, &counts->eval).AsBool()) {
      return Status::OK();
    }
    if (spec.join.has_value() && !probe()) return Status::OK();
  } else {
    if (!probe()) return Status::OK();
    if (spec.predicate != nullptr &&
        !spec.predicate->Evaluate(combined, &counts->eval).AsBool()) {
      return Status::OK();
    }
  }

  if (!spec.aggregates.empty()) {
    if (spec.group_by.empty()) {
      return UpdateAggregates(combined, &agg_state_, counts);
    }
    // Grouped aggregation: key bytes -> running states.
    group_key_scratch_.clear();
    {
      row_scratch_.clear();
      AppendColumnBytes(spec.group_by, outer_col_bytes, payload, counts,
                        &row_scratch_);
      group_key_scratch_.assign(
          reinterpret_cast<const char*>(row_scratch_.data()),
          row_scratch_.size());
    }
    ++counts->group_updates;
    auto it = groups_.find(group_key_scratch_);
    if (it == groups_.end()) {
      it = groups_.emplace(group_key_scratch_, AggInitStates(spec)).first;
    }
    return UpdateAggregates(combined, &it->second, counts);
  }

  // Projection path: serialize the output row.
  row_scratch_.clear();
  AppendColumnBytes(spec.projection, outer_col_bytes, payload, counts,
                    &row_scratch_);
  if (spec.top_n.has_value()) {
    ++counts->eval.column_reads;
    const std::int64_t key =
        combined.GetColumn(spec.top_n->order_col).AsInt();
    PushTopN(key, row_scratch_, counts);
    return Status::OK();
  }
  out->insert(out->end(), row_scratch_.begin(), row_scratch_.end());
  ++counts->output_tuples;
  counts->output_bytes += output_row_width_;
  ++rows_output_;
  return Status::OK();
}

Status PageProcessor::ProcessPage(std::span<const std::byte> page,
                                  OpCounts* counts,
                                  std::vector<std::byte>* out) {
  ++counts->pages;
  const storage::Schema& schema = bound_->outer->schema;
  if (bound_->outer->layout == storage::PageLayout::kNsm) {
    SMARTSSD_ASSIGN_OR_RETURN(const storage::NsmPageReader reader,
                              storage::NsmPageReader::Open(&schema, page));
    for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
      ++counts->tuples;
      const std::byte* tuple = reader.tuple(i);
      expr::NsmRowView view(&schema, tuple);
      auto col_bytes = [&](int col) -> const std::byte* {
        return tuple + schema.offset(col);
      };
      SMARTSSD_RETURN_IF_ERROR(HandleTuple(view, col_bytes, counts, out));
    }
    return Status::OK();
  }
  SMARTSSD_ASSIGN_OR_RETURN(const storage::PaxPageReader reader,
                            storage::PaxPageReader::Open(&schema, page));
  for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
    ++counts->tuples;
    expr::PaxRowView view(&schema, &reader, i);
    auto col_bytes = [&](int col) -> const std::byte* {
      return reader.value(i, col);
    };
    SMARTSSD_RETURN_IF_ERROR(HandleTuple(view, col_bytes, counts, out));
  }
  return Status::OK();
}

Status PageProcessor::Finish(OpCounts* counts, std::vector<std::byte>* out) {
  const QuerySpec& spec = *bound_->spec;
  if (!spec.aggregates.empty()) {
    if (spec.group_by.empty()) {
      for (const std::int64_t v : agg_state_) {
        const std::byte* p = reinterpret_cast<const std::byte*>(&v);
        out->insert(out->end(), p, p + sizeof(v));
      }
      ++counts->output_tuples;
      counts->output_bytes += output_row_width_;
      ++rows_output_;
      return Status::OK();
    }
    // One row per group, in key order (std::map iteration).
    for (const auto& [key, states] : groups_) {
      out->insert(out->end(),
                  reinterpret_cast<const std::byte*>(key.data()),
                  reinterpret_cast<const std::byte*>(key.data()) +
                      key.size());
      for (const std::int64_t v : states) {
        const std::byte* p = reinterpret_cast<const std::byte*>(&v);
        out->insert(out->end(), p, p + sizeof(v));
      }
      ++counts->output_tuples;
      counts->output_bytes += output_row_width_;
      ++rows_output_;
    }
    return Status::OK();
  }
  if (spec.top_n.has_value()) {
    // Drain the heap into sort order.
    std::sort(top_n_.begin(), top_n_.end(),
              [&](const auto& a, const auto& b) {
                return spec.top_n->descending ? a.first > b.first
                                              : a.first < b.first;
              });
    for (const auto& [key, row] : top_n_) {
      out->insert(out->end(), row.begin(), row.end());
      ++counts->output_tuples;
      counts->output_bytes += output_row_width_;
      ++rows_output_;
    }
  }
  return Status::OK();
}

Result<JoinHashTable> BuildJoinHashTable(
    const BoundQuery& bound,
    const std::function<Result<std::span<const std::byte>>(
        std::uint64_t page_index)>& read_page,
    OpCounts* counts) {
  SMARTSSD_CHECK(bound.spec->join.has_value());
  const JoinSpec& join = *bound.spec->join;
  const storage::TableInfo& inner = *bound.inner;
  JoinHashTable table(bound.payload_width, inner.tuple_count);
  std::vector<std::byte> payload(bound.payload_width);

  for (std::uint64_t p = 0; p < inner.page_count; ++p) {
    SMARTSSD_ASSIGN_OR_RETURN(std::span<const std::byte> page, read_page(p));
    ++counts->pages;
    auto insert_tuple = [&](const expr::RowView& view,
                            auto col_bytes) -> Status {
      ++counts->tuples;
      ++counts->eval.column_reads;
      const std::int64_t key =
          view.GetColumn(join.inner_key_col).AsInt();
      std::size_t offset = 0;
      for (const int col : join.inner_payload_cols) {
        ++counts->eval.column_reads;
        const std::uint32_t width = inner.schema.column(col).width;
        std::memcpy(payload.data() + offset, col_bytes(col), width);
        offset += width;
      }
      ++counts->hash_inserts;
      return table.Insert(key, payload);
    };
    if (inner.layout == storage::PageLayout::kNsm) {
      SMARTSSD_ASSIGN_OR_RETURN(
          const storage::NsmPageReader reader,
          storage::NsmPageReader::Open(&inner.schema, page));
      for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
        const std::byte* tuple = reader.tuple(i);
        expr::NsmRowView view(&inner.schema, tuple);
        SMARTSSD_RETURN_IF_ERROR(insert_tuple(view, [&](int col) {
          return tuple + inner.schema.offset(col);
        }));
      }
    } else {
      SMARTSSD_ASSIGN_OR_RETURN(
          const storage::PaxPageReader reader,
          storage::PaxPageReader::Open(&inner.schema, page));
      for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
        expr::PaxRowView view(&inner.schema, &reader, i);
        SMARTSSD_RETURN_IF_ERROR(insert_tuple(
            view, [&](int col) { return reader.value(i, col); }));
      }
    }
  }
  return table;
}

}  // namespace smartssd::exec
