#include "exec/pushdown_program.h"

#include <algorithm>

namespace smartssd::exec {

PushdownProgram::PushdownProgram(const BoundQuery* bound,
                                 const storage::ZoneMap* zone_map,
                                 KernelMode kernel)
    : bound_(bound),
      outer_params_(EmbeddedCostParams(bound->outer->layout)),
      zone_map_(zone_map),
      kernel_(kernel) {
  if (zone_map_ != nullptr) {
    // Only outer-column ranges are usable for extent pruning.
    for (auto& [col, range] :
         ExtractColumnRanges(bound->spec->predicate.get())) {
      if (col < bound->outer_columns() && zone_map_->TracksColumn(col)) {
        prune_ranges_.emplace(col, range);
      }
    }
  }
}

std::string_view PushdownProgram::name() const {
  return bound_->spec->name;
}

std::uint64_t PushdownProgram::DramBytesRequired() const {
  // Streaming buffers plus, for joins, the estimated hash table. The
  // runtime reserves this before the build; the planner makes the same
  // estimate when deciding whether pushdown is feasible at all. The
  // device-resident zone-map copy counts too.
  std::uint64_t bytes = 2ull * 1024 * 1024;
  if (bound_->spec->join.has_value()) {
    bytes += JoinHashTable::EstimateBytes(bound_->inner->tuple_count,
                                          bound_->payload_width);
  }
  if (zone_map_ != nullptr) bytes += zone_map_->memory_bytes();
  return bytes;
}

Result<SimTime> PushdownProgram::Open(smart::DeviceServices& device,
                                      SimTime ready) {
  SimTime done = ready;
  if (bound_->spec->join.has_value()) {
    // Build phase: stream the inner table through the internal path and
    // hash it in device DRAM.
    const storage::TableInfo& inner = *bound_->inner;
    SimTime io_done = ready;
    for (std::uint64_t p = 0; p < inner.page_count; ++p) {
      SMARTSSD_ASSIGN_OR_RETURN(
          io_done, device.ReadInternal(inner.first_lpn + p, ready));
    }
    OpCounts build_counts;
    auto read_page = [&](std::uint64_t page_index)
        -> Result<std::span<const std::byte>> {
      std::span<const std::byte> view =
          device.ViewPage(inner.first_lpn + page_index);
      if (view.empty()) {
        return CorruptionError("inner table page is unmapped");
      }
      return view;
    };
    SMARTSSD_ASSIGN_OR_RETURN(
        JoinHashTable table,
        BuildJoinHashTable(*bound_, read_page, &build_counts));
    hash_table_.emplace(std::move(table));
    counts_ += build_counts;
    // The build is single-threaded firmware code on one embedded core.
    const std::uint64_t cycles =
        Cycles(build_counts, EmbeddedCostParams(inner.layout),
               inner.schema.num_columns(), 0);
    done = device.Execute(cycles, io_done);
  }
  if (!prune_ranges_.empty()) {
    // Extent filtering against the zone map: a couple of cycles per
    // page entry on one embedded core.
    done = device.Execute(bound_->outer->page_count * 2, done);
  }
  processor_ = std::make_unique<PageProcessor>(
      bound_, hash_table_.has_value() ? &*hash_table_ : nullptr, kernel_);
  return done;
}

std::vector<smart::LpnRange> PushdownProgram::InputExtents() const {
  const storage::TableInfo& outer = *bound_->outer;
  if (prune_ranges_.empty()) {
    return {{outer.first_lpn, outer.page_count}};
  }
  // Zone-map pruning: stream only pages whose per-column [min, max]
  // intersects every predicate range, as coalesced runs.
  pages_skipped_ = 0;  // recomputed on every call
  std::vector<smart::LpnRange> extents;
  for (std::uint64_t p = 0; p < outer.page_count; ++p) {
    bool may_match = true;
    for (const auto& [col, range] : prune_ranges_) {
      if (!zone_map_->PageMayMatch(p, col, range.lo, range.hi)) {
        may_match = false;
        break;
      }
    }
    if (!may_match) {
      ++pages_skipped_;
      continue;
    }
    if (!extents.empty() && extents.back().first_lpn +
                                    extents.back().count ==
                                outer.first_lpn + p) {
      ++extents.back().count;
    } else {
      extents.push_back({outer.first_lpn + p, 1});
    }
  }
  return extents;
}

Result<smart::ProgramCharge> PushdownProgram::ProcessPage(
    std::span<const std::byte> page, smart::ResultSink& sink) {
  SMARTSSD_CHECK(processor_ != nullptr);  // Open() must run first
  OpCounts page_counts;
  scratch_.clear();
  SMARTSSD_RETURN_IF_ERROR(
      processor_->ProcessPage(page, &page_counts, &scratch_));
  if (!scratch_.empty()) sink.Emit(scratch_);
  counts_ += page_counts;
  return smart::ProgramCharge{
      .cycles = Cycles(page_counts, outer_params_,
                       bound_->outer->schema.num_columns(), HashEntries())};
}

Result<smart::ProgramCharge> PushdownProgram::Finish(
    smart::ResultSink& sink) {
  SMARTSSD_CHECK(processor_ != nullptr);
  OpCounts final_counts;
  scratch_.clear();
  SMARTSSD_RETURN_IF_ERROR(processor_->Finish(&final_counts, &scratch_));
  if (!scratch_.empty()) sink.Emit(scratch_);
  counts_ += final_counts;
  return smart::ProgramCharge{
      .cycles = Cycles(final_counts, outer_params_,
                       bound_->outer->schema.num_columns(), HashEntries())};
}

}  // namespace smartssd::exec
