#include "exec/pushdown_program.h"

#include <algorithm>

namespace smartssd::exec {

PushdownProgram::PushdownProgram(const BoundQuery* bound,
                                 const storage::ZoneMap* zone_map,
                                 KernelMode kernel,
                                 const HybridJoinConfig& spill,
                                 std::uint32_t spill_page_size_hint,
                                 std::uint64_t first_page,
                                 std::uint64_t page_count)
    : bound_(bound),
      outer_params_(EmbeddedCostParams(bound->outer->layout)),
      zone_map_(zone_map),
      kernel_(kernel),
      spill_(spill),
      spill_page_size_hint_(spill_page_size_hint) {
  const std::uint64_t table_pages = bound->outer->page_count;
  scan_begin_ = std::min(first_page, table_pages);
  scan_end_ = page_count >= table_pages - scan_begin_
                  ? table_pages
                  : scan_begin_ + page_count;
  if (zone_map_ != nullptr) {
    // Only outer-column ranges are usable for extent pruning.
    for (auto& [col, range] :
         ExtractColumnRanges(bound->spec->predicate.get())) {
      if (col < bound->outer_columns() && zone_map_->TracksColumn(col)) {
        prune_ranges_.emplace(col, range);
      }
    }
  }
}

std::string_view PushdownProgram::name() const {
  return bound_->spec->name;
}

bool PushdownProgram::hybrid_join_engaged() const {
  return bound_->spec->join.has_value() && spill_.budget_bytes > 0 &&
         JoinHashTable::EstimateBytes(bound_->inner->tuple_count,
                                      bound_->payload_width) >
             spill_.budget_bytes;
}

std::uint64_t PushdownProgram::OutputRowWidth() const {
  const QuerySpec& spec = *bound_->spec;
  std::uint64_t width = 0;
  if (spec.aggregates.empty()) {
    for (const int col : spec.projection) {
      width += bound_->combined_schema.column(col).width;
    }
  } else {
    for (const int col : spec.group_by) {
      width += bound_->combined_schema.column(col).width;
    }
    width += 8ull * spec.aggregates.size();
  }
  return width;
}

std::uint64_t PushdownProgram::DramBytesRequired() const {
  const QuerySpec& spec = *bound_->spec;
  // Streaming buffers for the internal data path.
  std::uint64_t bytes = 2ull * 1024 * 1024;
  // Output staging. The per-page scratch and ordered-replay arena grow
  // geometrically, so capacity can reach twice the live content — the
  // old flat 2 MiB silently absorbed this, which defeated the grant
  // audit for wide outputs.
  const std::uint64_t out_width = OutputRowWidth();
  if (spec.top_n.has_value()) {
    bytes += (spec.top_n->limit + 1ull) * (out_width + 24);
  } else if (!spec.group_by.empty()) {
    bytes += std::min<std::uint64_t>(bound_->outer->tuple_count, 4096) *
             (out_width + 16);
  } else {
    bytes += 2ull * bound_->outer->tuples_per_page * out_width;
  }
  if (spec.join.has_value()) {
    if (hybrid_join_engaged()) {
      // Hybrid mode: the resident build side is capped by the budget;
      // on top of it the join keeps one page buffer per partition file
      // (build + probe), one spill-read staging page, and the pinned
      // heavy hitters.
      bytes += spill_.budget_bytes;
      bytes += (2ull * spill_.fanout + 1) * spill_page_size_hint_;
      bytes += spill_.hot_key_capacity *
               (bound_->payload_width + 48ull);
      if (spec.aggregates.empty()) {
        // Order-sensitive output stages every match (seq + outer row +
        // payload) for scan-order replay; 2x for geometric growth.
        bytes += 2ull * bound_->outer->tuple_count *
                 (16 + bound_->outer->schema.tuple_size() +
                  bound_->payload_width);
      }
    } else {
      // The slot array at the table's real load factor plus the payload
      // pool (EstimateBytes mirrors the constructor exactly).
      bytes += JoinHashTable::EstimateBytes(bound_->inner->tuple_count,
                                            bound_->payload_width);
    }
  }
  if (zone_map_ != nullptr) bytes += zone_map_->memory_bytes();
  return bytes;
}

void PushdownProgram::NotePeak() {
  std::uint64_t current = scratch_.capacity();
  if (hash_table_.has_value()) current += hash_table_->memory_bytes();
  if (hybrid_ != nullptr) current += hybrid_->dram_peak_bytes();
  if (zone_map_ != nullptr) current += zone_map_->memory_bytes();
  dram_peak_ = std::max(dram_peak_, current);
}

Result<SimTime> PushdownProgram::Open(smart::DeviceServices& device,
                                      SimTime ready) {
  SimTime done = ready;
  if (bound_->spec->join.has_value()) {
    // Build phase: stream the inner table through the internal path and
    // hash it in device DRAM — all of it (simple hash join) or as much
    // as the budget admits (hybrid), the rest spilling to flash.
    const storage::TableInfo& inner = *bound_->inner;
    SimTime io_done = ready;
    for (std::uint64_t p = 0; p < inner.page_count; ++p) {
      SMARTSSD_ASSIGN_OR_RETURN(
          io_done, device.ReadInternal(inner.first_lpn + p, ready));
    }
    OpCounts build_counts;
    if (hybrid_join_engaged()) {
      hybrid_ = std::make_unique<HybridJoin>(bound_, &device, spill_);
      for (std::uint64_t p = 0; p < inner.page_count; ++p) {
        std::span<const std::byte> view =
            device.ViewPage(inner.first_lpn + p);
        if (view.empty()) {
          return CorruptionError("inner table page is unmapped");
        }
        SMARTSSD_RETURN_IF_ERROR(hybrid_->AddBuildPage(view));
      }
      SMARTSSD_RETURN_IF_ERROR(hybrid_->FinishBuild());
      build_counts = hybrid_->build_counts();
    } else {
      auto read_page = [&](std::uint64_t page_index)
          -> Result<std::span<const std::byte>> {
        std::span<const std::byte> view =
            device.ViewPage(inner.first_lpn + page_index);
        if (view.empty()) {
          return CorruptionError("inner table page is unmapped");
        }
        return view;
      };
      SMARTSSD_ASSIGN_OR_RETURN(
          JoinHashTable table,
          BuildJoinHashTable(*bound_, read_page, &build_counts));
      hash_table_.emplace(std::move(table));
    }
    counts_ += build_counts;
    // The build is single-threaded firmware code on one embedded core;
    // partitioning/eviction bookkeeping rides on the same core.
    const std::uint64_t cycles =
        Cycles(build_counts, EmbeddedCostParams(inner.layout),
               inner.schema.num_columns(), 0) +
        SpillOverheadCycles();
    done = device.Execute(cycles, io_done);
  }
  if (!prune_ranges_.empty()) {
    // Extent filtering against the zone map: a couple of cycles per
    // page entry on one embedded core. Fragments only check their own
    // range, so per-fragment charges sum to the monolithic charge.
    done = device.Execute((scan_end_ - scan_begin_) * 2, done);
  }
  processor_ = std::make_unique<PageProcessor>(
      bound_, hash_table_.has_value() ? &*hash_table_ : nullptr, kernel_,
      hybrid_.get());
  processor_->SetZoneMap(zone_map_);
  // Page-index sequence matching InputExtents() (see header). With no
  // prune ranges the inner loop is empty and every page survives.
  input_pages_.clear();
  next_input_page_ = 0;
  for (std::uint64_t p = scan_begin_; p < scan_end_; ++p) {
    bool may_match = true;
    for (const auto& [col, range] : prune_ranges_) {
      if (!zone_map_->PageMayMatch(p, col, range.lo, range.hi)) {
        may_match = false;
        break;
      }
    }
    if (may_match) input_pages_.push_back(p);
  }
  NotePeak();
  return done;
}

std::vector<smart::LpnRange> PushdownProgram::InputExtents() const {
  const storage::TableInfo& outer = *bound_->outer;
  if (scan_end_ <= scan_begin_) return {};
  if (prune_ranges_.empty()) {
    return {{outer.first_lpn + scan_begin_, scan_end_ - scan_begin_}};
  }
  // Zone-map pruning: stream only pages whose per-column [min, max]
  // intersects every predicate range, as coalesced runs.
  pages_skipped_ = 0;  // recomputed on every call
  std::vector<smart::LpnRange> extents;
  for (std::uint64_t p = scan_begin_; p < scan_end_; ++p) {
    bool may_match = true;
    for (const auto& [col, range] : prune_ranges_) {
      if (!zone_map_->PageMayMatch(p, col, range.lo, range.hi)) {
        may_match = false;
        break;
      }
    }
    if (!may_match) {
      ++pages_skipped_;
      continue;
    }
    if (!extents.empty() && extents.back().first_lpn +
                                    extents.back().count ==
                                outer.first_lpn + p) {
      ++extents.back().count;
    } else {
      extents.push_back({outer.first_lpn + p, 1});
    }
  }
  return extents;
}

Result<smart::ProgramCharge> PushdownProgram::ProcessPage(
    std::span<const std::byte> page, smart::ResultSink& sink) {
  SMARTSSD_CHECK(processor_ != nullptr);  // Open() must run first
  const std::uint64_t page_index =
      next_input_page_ < input_pages_.size()
          ? input_pages_[next_input_page_++]
          : PageProcessor::kNoPage;
  OpCounts page_counts;
  scratch_.clear();
  SMARTSSD_RETURN_IF_ERROR(
      processor_->ProcessPage(page, page_index, &page_counts, &scratch_));
  if (!scratch_.empty()) sink.Emit(scratch_);
  counts_ += page_counts;
  NotePeak();
  return smart::ProgramCharge{
      .cycles = Cycles(page_counts, outer_params_,
                       bound_->outer->schema.num_columns(),
                       HashEntries()) +
                SpillOverheadCycles()};
}

OpCounts PushdownProgram::CountsExcludingFinish() const {
  // OpCounts has no operator-: subtract the scalar fields directly.
  // Finish() of the non-hybrid pipelines (the only ones fragments run)
  // never records EvalStats, so `eval` carries over untouched.
  OpCounts body = counts_;
  body.pages -= finish_counts_.pages;
  body.tuples -= finish_counts_.tuples;
  body.probes -= finish_counts_.probes;
  body.hash_inserts -= finish_counts_.hash_inserts;
  body.output_tuples -= finish_counts_.output_tuples;
  body.output_bytes -= finish_counts_.output_bytes;
  body.agg_updates -= finish_counts_.agg_updates;
  body.group_updates -= finish_counts_.group_updates;
  body.topn_updates -= finish_counts_.topn_updates;
  return body;
}

Result<smart::ProgramCharge> PushdownProgram::Finish(
    smart::ResultSink& sink) {
  SMARTSSD_CHECK(processor_ != nullptr);
  OpCounts final_counts;
  scratch_.clear();
  SMARTSSD_RETURN_IF_ERROR(processor_->Finish(&final_counts, &scratch_));
  if (!scratch_.empty()) sink.Emit(scratch_);
  counts_ += final_counts;
  finish_counts_ += final_counts;
  NotePeak();
  return smart::ProgramCharge{
      .cycles = Cycles(final_counts, outer_params_,
                       bound_->outer->schema.num_columns(),
                       HashEntries()) +
                SpillOverheadCycles()};
}

}  // namespace smartssd::exec
