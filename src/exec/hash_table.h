#ifndef SMARTSSD_EXEC_HASH_TABLE_H_
#define SMARTSSD_EXEC_HASH_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/result.h"

namespace smartssd::exec {

// Open-addressing hash table for the paper's "simple hash join": built
// once over the (small) inner table, probed per outer tuple. Keys are
// 64-bit integers (the joins are FK -> unique PK equi-joins); each entry
// carries a fixed-width payload of the inner columns the query needs.
//
// Build-then-probe contract: Probe() returns pointers into the payload
// pool, which an Insert() past the reserved capacity would reallocate
// and dangle. The first Probe therefore seals the table; a later Insert
// is rejected with kFailedPrecondition instead of silently invalidating
// payloads the caller may still hold.
//
// The footprint is what the pushdown planner checks against device DRAM:
// slot array + payload pool.
class JoinHashTable {
 public:
  // `payload_width` bytes per entry; `expected_entries` sizes the table
  // (it grows if exceeded, doubling).
  JoinHashTable(std::uint32_t payload_width,
                std::uint64_t expected_entries);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(JoinHashTable);
  // Moves transfer the payload pool wholesale, so pointers handed out by
  // Probe() before the move stay valid for the life of the destination;
  // the seal travels with them. The moved-from table is reset to a valid
  // empty, unsealed state (a defaulted move used to leave it with an
  // empty slot array, making a later SlotFor() mask with SIZE_MAX).
  // Move-assigning OVER a sealed table would free the payload pool its
  // probers still point into, so that is a checked programming error.
  JoinHashTable(JoinHashTable&& other) noexcept;
  JoinHashTable& operator=(JoinHashTable&& other) noexcept;

  // Inserts key -> payload. Duplicate keys are rejected (inner sides of
  // the paper's joins are primary keys), as is any insert after the
  // first Probe (the table is then sealed).
  Status Insert(std::int64_t key, std::span<const std::byte> payload);

  // Returns the payload for `key`, or nullptr if absent. The pointer
  // stays valid for the life of the table: probing seals it against
  // further inserts.
  const std::byte* Probe(std::int64_t key) const;

  // Seals the table up front. Probe() seals lazily by writing a mutable
  // flag on first call; concurrent first-probes from morsel workers
  // would race on that write, so a dispatcher sharing the table
  // read-only across threads seals it before spawning them.
  void Seal() const { sealed_ = true; }

  bool sealed() const { return sealed_; }

  std::uint64_t entries() const { return entries_; }
  std::uint32_t payload_width() const { return payload_width_; }
  std::uint64_t memory_bytes() const {
    return slots_.size() * sizeof(Slot) + payloads_.size();
  }

  // Conservative size estimate for `entries` rows, used by the planner
  // before the table exists.
  static std::uint64_t EstimateBytes(std::uint64_t entries,
                                     std::uint32_t payload_width);

  // The key mixer, exposed so the hybrid join can derive partition ids
  // from bits SlotFor() does not consume (SlotFor masks the low bits).
  static std::uint64_t HashKey(std::int64_t key);

 private:
  struct Slot {
    std::int64_t key = 0;
    std::uint64_t payload_offset_plus_one = 0;  // 0 = empty
  };

  void Grow();
  std::size_t SlotFor(std::int64_t key) const;

  std::uint32_t payload_width_;
  // Set by the (const) read path on first Probe; checked by Insert.
  mutable bool sealed_ = false;
  std::uint64_t entries_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::byte> payloads_;
};

}  // namespace smartssd::exec

#endif  // SMARTSSD_EXEC_HASH_TABLE_H_
