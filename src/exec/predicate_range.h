#ifndef SMARTSSD_EXEC_PREDICATE_RANGE_H_
#define SMARTSSD_EXEC_PREDICATE_RANGE_H_

#include <cstdint>
#include <limits>
#include <map>

#include "expr/expression.h"

namespace smartssd::exec {

// The value interval a predicate allows for one column.
struct ColumnRange {
  std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  std::int64_t hi = std::numeric_limits<std::int64_t>::max();

  bool impossible() const { return lo > hi; }
};

// Derives per-column ranges from a predicate's top-level conjunction:
// every conjunct of the form "column <op> int-literal" narrows that
// column's interval; anything else (ORs, arithmetic, string matches) is
// conservatively ignored. The result is sound for pruning: a row
// violating any returned range cannot satisfy the predicate.
std::map<int, ColumnRange> ExtractColumnRanges(
    const expr::Expression* predicate);

}  // namespace smartssd::exec

#endif  // SMARTSSD_EXEC_PREDICATE_RANGE_H_
