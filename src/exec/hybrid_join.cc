#include "exec/hybrid_join.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "expr/row_view.h"
#include "storage/nsm_page.h"
#include "storage/pax_page.h"

namespace smartssd::exec {

namespace {

// Pages per spill-extent allocation. Small enough that lightly-used
// partitions waste little flash, large enough to keep the allocator off
// the per-page path.
constexpr std::uint64_t kSpillChunkPages = 4;

// Level salts for the partitioning rehash. Each recursion level must
// split keys that collided at the previous level, so every level mixes
// with a different odd constant before taking the high bits.
constexpr std::uint64_t kLevelSalts[] = {
    0x9E3779B97F4A7C15ULL, 0xC2B2AE3D27D4EB4FULL, 0x165667B19E3779F9ULL,
    0xD6E8FEB86659FD93ULL, 0x8CB92BA72F3D8DD7ULL, 0x27D4EB2F165667C5ULL,
    0x85EBCA77C2B2AE63ULL, 0x2545F4914F6CDD1DULL,
};
constexpr std::uint32_t kNumLevelSalts =
    sizeof(kLevelSalts) / sizeof(kLevelSalts[0]);

std::uint64_t Load64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void Store64(std::byte* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof(v));
}

}  // namespace

HybridJoin::HybridJoin(const BoundQuery* bound,
                       smart::DeviceServices* device,
                       const HybridJoinConfig& config)
    : bound_(bound),
      device_(device),
      config_(config),
      page_size_(device->page_size()) {
  SMARTSSD_CHECK(bound_->spec->join.has_value());
  SMARTSSD_CHECK_GT(config_.budget_bytes, 0u);
  SMARTSSD_CHECK_GT(config_.fanout, 1u);
  SMARTSSD_CHECK((config_.fanout & (config_.fanout - 1)) == 0);
  SMARTSSD_CHECK_GE(config_.max_depth, 1u);
  while ((1u << fanout_shift_) < config_.fanout) ++fanout_shift_;
  build_rec_width_ = 8 + bound_->payload_width;
  outer_row_width_ = bound_->outer->schema.tuple_size();
  probe_rec_width_ = 8 + outer_row_width_;
  SMARTSSD_CHECK_LE(build_rec_width_, page_size_);
  SMARTSSD_CHECK_LE(probe_rec_width_, page_size_);
  partitions_.resize(config_.fanout);
}

std::uint32_t HybridJoin::PartitionOf(std::int64_t key,
                                      std::uint32_t level) const {
  std::uint64_t h =
      JoinHashTable::HashKey(key) ^ kLevelSalts[level % kNumLevelSalts];
  h *= 0x2545F4914F6CDD1DULL;
  h ^= h >> 29;
  // High bits: SlotFor() masks the low bits, so partition choice and
  // in-table placement stay independent.
  return static_cast<std::uint32_t>(h >> (64 - fanout_shift_));
}

std::int64_t HybridJoin::KeyFromOuterRow(const std::byte* row) const {
  const storage::Schema& schema = bound_->outer->schema;
  const int col = bound_->spec->join->outer_key_col;
  const std::byte* p = row + schema.offset(col);
  if (schema.column(col).type == storage::ColumnType::kInt32) {
    std::int32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  std::int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void HybridJoin::NotePeak(std::uint64_t extra) {
  std::uint64_t current = extra + match_arena_.capacity() +
                          matches_.capacity() * sizeof(Match);
  if (resident_table_.has_value()) {
    current += resident_table_->memory_bytes();
  }
  for (const Partition& p : partitions_) {
    current += p.rows.capacity() + p.build_file.buffer.capacity() +
               p.probe_file.buffer.capacity();
  }
  current += hot_.size() * (sizeof(std::int64_t) + bound_->payload_width +
                            32);  // node overhead estimate
  dram_peak_ = std::max(dram_peak_, current);
}

// --- spill files -----------------------------------------------------

Status HybridJoin::FlushPage(PageFile* file) {
  if (file->buffer.empty()) return Status::OK();
  if (file->pages_used == file->lpns.size()) {
    SMARTSSD_ASSIGN_OR_RETURN(
        const std::uint64_t first,
        device_->AllocateSpillExtent(kSpillChunkPages));
    for (std::uint64_t i = 0; i < kSpillChunkPages; ++i) {
      file->lpns.push_back(first + i);
    }
  }
  file->buffer.resize(page_size_, std::byte{0});
  SMARTSSD_ASSIGN_OR_RETURN(
      const SimTime done,
      device_->WriteSpillPage(file->lpns[file->pages_used], file->buffer));
  (void)done;  // spill I/O lands on the session's timeline, not ours
  ++file->pages_used;
  ++stats_.spill_pages_written;
  overhead_cycles_ += page_size_ / 16;  // page formatting + DMA setup
  file->buffer.clear();
  return Status::OK();
}

Status HybridJoin::AppendRecord(PageFile* file,
                                std::span<const std::byte> record) {
  if (file->buffer.size() + record.size() > page_size_) {
    SMARTSSD_RETURN_IF_ERROR(FlushPage(file));
  }
  if (file->buffer.capacity() == 0) file->buffer.reserve(page_size_);
  file->buffer.insert(file->buffer.end(), record.begin(), record.end());
  ++file->records;
  overhead_cycles_ += record.size() / 8 + 2;
  return Status::OK();
}

Status HybridJoin::ForEachRecord(
    const PageFile& file, std::uint32_t width,
    const std::function<Status(const std::byte*)>& fn) {
  SMARTSSD_CHECK(file.buffer.empty());  // sealed
  const std::uint64_t per_page = page_size_ / width;
  std::uint64_t remaining = file.records;
  for (std::uint64_t p = 0; p < file.pages_used && remaining > 0; ++p) {
    SMARTSSD_ASSIGN_OR_RETURN(const SimTime at,
                              device_->ReadSpillPage(file.lpns[p]));
    (void)at;
    const std::span<const std::byte> view = device_->ViewPage(file.lpns[p]);
    if (view.size() < page_size_) {
      return CorruptionError("spill page vanished from the FTL");
    }
    // Copy before iterating: spill writes issued from inside `fn` (child
    // partitions, GC relocations) may move the viewed flash page.
    read_buf_.assign(view.begin(), view.begin() + page_size_);
    const std::uint64_t n = std::min<std::uint64_t>(per_page, remaining);
    for (std::uint64_t i = 0; i < n; ++i) {
      SMARTSSD_RETURN_IF_ERROR(fn(read_buf_.data() + i * width));
    }
    remaining -= n;
    ++stats_.spill_pages_read;
    overhead_cycles_ += page_size_ / 16 + n * (width / 8 + 2);
  }
  return Status::OK();
}

// --- build phase -----------------------------------------------------

Status HybridJoin::EvictLargestResident() {
  // Largest resident partition frees the most budget per spilled page;
  // ties break toward the lowest id for determinism.
  Partition* victim = nullptr;
  for (Partition& p : partitions_) {
    if (!p.resident || p.build_rows == 0) continue;
    if (victim == nullptr || p.build_rows > victim->build_rows) {
      victim = &p;
    }
  }
  if (victim == nullptr) return Status::OK();  // nothing left to evict
  const std::uint64_t n = victim->build_rows;
  for (std::uint64_t i = 0; i < n; ++i) {
    SMARTSSD_RETURN_IF_ERROR(AppendRecord(
        &victim->build_file,
        std::span<const std::byte>(
            victim->rows.data() + i * build_rec_width_, build_rec_width_)));
  }
  victim->rows.clear();
  victim->rows.shrink_to_fit();
  victim->resident = false;
  resident_rows_total_ -= n;
  stats_.build_rows_spilled += n;
  ++stats_.partitions_spilled;
  return Status::OK();
}

Status HybridJoin::AddBuildRow(std::int64_t key,
                               std::span<const std::byte> payload) {
  Partition& p = partitions_[PartitionOf(key, 0)];
  ++p.build_rows;
  if (!p.resident) {
    std::vector<std::byte> rec(build_rec_width_);
    Store64(rec.data(), static_cast<std::uint64_t>(key));
    std::memcpy(rec.data() + 8, payload.data(), payload.size());
    ++stats_.build_rows_spilled;
    return AppendRecord(&p.build_file, rec);
  }
  const std::size_t off = p.rows.size();
  p.rows.resize(off + build_rec_width_);
  Store64(p.rows.data() + off, static_cast<std::uint64_t>(key));
  std::memcpy(p.rows.data() + off + 8, payload.data(), payload.size());
  ++resident_rows_total_;
  // Keep the projected resident hash table inside the budget: evict
  // whole partitions, largest first, until it fits (or nothing is left).
  while (JoinHashTable::EstimateBytes(resident_rows_total_,
                                      bound_->payload_width) >
             config_.budget_bytes &&
         resident_rows_total_ > 0) {
    SMARTSSD_RETURN_IF_ERROR(EvictLargestResident());
  }
  NotePeak(0);
  return Status::OK();
}

Status HybridJoin::AddBuildPage(std::span<const std::byte> page) {
  SMARTSSD_CHECK(!build_finished_);
  const JoinSpec& join = *bound_->spec->join;
  const storage::TableInfo& inner = *bound_->inner;
  ++build_counts_.pages;
  std::vector<std::byte> payload(bound_->payload_width);
  // Charge exactly what JoinHashTableBuilder::AddPage charges per tuple
  // (tuples, key + payload column reads); hash_inserts wait until the
  // row actually enters a table.
  auto add_tuple = [&](const expr::RowView& view, auto col_bytes) {
    ++build_counts_.tuples;
    ++build_counts_.eval.column_reads;
    const std::int64_t key = view.GetColumn(join.inner_key_col).AsInt();
    std::size_t offset = 0;
    for (const int col : join.inner_payload_cols) {
      ++build_counts_.eval.column_reads;
      const std::uint32_t width = inner.schema.column(col).width;
      std::memcpy(payload.data() + offset, col_bytes(col), width);
      offset += width;
    }
    return AddBuildRow(key, payload);
  };
  if (inner.layout == storage::PageLayout::kNsm) {
    SMARTSSD_ASSIGN_OR_RETURN(
        const storage::NsmPageReader reader,
        storage::NsmPageReader::Open(&inner.schema, page));
    for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
      const std::byte* tuple = reader.tuple(i);
      expr::NsmRowView view(&inner.schema, tuple);
      SMARTSSD_RETURN_IF_ERROR(add_tuple(view, [&](int col) {
        return tuple + inner.schema.offset(col);
      }));
    }
  } else {
    SMARTSSD_ASSIGN_OR_RETURN(
        const storage::PaxPageReader reader,
        storage::PaxPageReader::Open(&inner.schema, page));
    for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
      expr::PaxRowView view(&inner.schema, &reader, i);
      SMARTSSD_RETURN_IF_ERROR(add_tuple(
          view, [&](int col) { return reader.value(i, col); }));
    }
  }
  return Status::OK();
}

Status HybridJoin::FinishBuild() {
  SMARTSSD_CHECK(!build_finished_);
  build_finished_ = true;
  resident_table_.emplace(bound_->payload_width, resident_rows_total_);
  for (Partition& p : partitions_) {
    if (!p.resident) {
      SMARTSSD_RETURN_IF_ERROR(SealFile(&p.build_file));
      continue;
    }
    for (std::uint64_t i = 0; i < p.build_rows; ++i) {
      const std::byte* rec = p.rows.data() + i * build_rec_width_;
      ++build_counts_.hash_inserts;
      SMARTSSD_RETURN_IF_ERROR(resident_table_->Insert(
          static_cast<std::int64_t>(Load64(rec)),
          std::span<const std::byte>(rec + 8, bound_->payload_width)));
    }
    // The table copied the payloads; the staging rows are done.
    p.rows.clear();
    p.rows.shrink_to_fit();
  }
  NotePeak(0);
  return Status::OK();
}

// --- probe phase -----------------------------------------------------

std::uint64_t HybridJoin::SketchBump(std::int64_t key) {
  auto it = sketch_.find(key);
  if (it != sketch_.end()) return ++it->second;
  // Space-saving: at capacity, the newcomer inherits (and increments)
  // the smallest tracked count, so a genuine heavy hitter climbs fast
  // even if it arrived late.
  const std::size_t capacity =
      std::max<std::size_t>(config_.hot_key_capacity, 1);
  if (sketch_.size() < capacity) {
    sketch_.emplace(key, 1);
    return 1;
  }
  auto min_it = sketch_.begin();
  for (auto i = sketch_.begin(); i != sketch_.end(); ++i) {
    if (i->second < min_it->second) min_it = i;
  }
  const std::uint64_t count = min_it->second + 1;
  sketch_.erase(min_it);
  sketch_.emplace(key, count);
  return count;
}

const std::byte* HybridJoin::HotPayload(
    const std::optional<std::vector<std::byte>>& entry) const {
  if (!entry.has_value()) return nullptr;  // confirmed absent
  if (entry->empty()) {
    static constexpr std::byte kEmptyPayload{};
    return &kEmptyPayload;
  }
  return entry->data();
}

Status HybridJoin::Promote(std::int64_t key, Partition& partition) {
  // Fetch the heavy hitter's build row from the partition's sealed
  // build file — real (charged) spill reads, no OpCounts.
  std::optional<std::vector<std::byte>> found;
  SMARTSSD_RETURN_IF_ERROR(ForEachRecord(
      partition.build_file, build_rec_width_,
      [&](const std::byte* rec) -> Status {
        if (!found.has_value() &&
            static_cast<std::int64_t>(Load64(rec)) == key) {
          found.emplace(rec + 8, rec + build_rec_width_);
        }
        return Status::OK();
      }));
  hot_.emplace(key, std::move(found));
  ++stats_.hot_keys_pinned;
  NotePeak(0);
  return Status::OK();
}

Result<HybridJoin::ProbeResult> HybridJoin::Probe(
    std::int64_t key,
    const std::function<const std::byte*(int col)>& outer_col_bytes,
    OpCounts* counts) {
  SMARTSSD_CHECK(build_finished_);
  ProbeResult result;
  result.seq = next_seq_++;
  Partition& p = partitions_[PartitionOf(key, 0)];
  if (p.resident) {
    ++counts->probes;
    result.payload = resident_table_->Probe(key);
    return result;
  }
  const auto hot = hot_.find(key);
  if (hot != hot_.end()) {
    ++counts->probes;
    ++stats_.hot_hits;
    result.payload = HotPayload(hot->second);
    return result;
  }
  if (SketchBump(key) >= config_.hot_key_threshold &&
      hot_.size() < config_.hot_key_capacity) {
    SMARTSSD_RETURN_IF_ERROR(Promote(key, p));
    ++counts->probes;
    ++stats_.hot_hits;
    result.payload = HotPayload(hot_.find(key)->second);
    return result;
  }
  // Defer: materialize the outer row (NSM layout) into the partition's
  // probe file, tagged with its scan position.
  std::vector<std::byte> rec(probe_rec_width_);
  Store64(rec.data(), result.seq);
  const storage::Schema& schema = bound_->outer->schema;
  for (int c = 0; c < schema.num_columns(); ++c) {
    std::memcpy(rec.data() + 8 + schema.offset(c), outer_col_bytes(c),
                schema.column(c).width);
  }
  SMARTSSD_RETURN_IF_ERROR(AppendRecord(&p.probe_file, rec));
  ++stats_.probe_rows_spilled;
  result.deferred = true;
  return result;
}

void HybridJoin::BufferMatchRaw(std::uint64_t seq,
                                const std::byte* outer_row,
                                const std::byte* payload) {
  const std::uint64_t offset = match_arena_.size();
  match_arena_.insert(match_arena_.end(), outer_row,
                      outer_row + outer_row_width_);
  if (bound_->payload_width > 0) {
    match_arena_.insert(match_arena_.end(), payload,
                        payload + bound_->payload_width);
  }
  matches_.push_back(Match{seq, offset});
  overhead_cycles_ += (outer_row_width_ + bound_->payload_width) / 8 + 2;
  NotePeak(0);
}

void HybridJoin::BufferMatch(
    std::uint64_t seq,
    const std::function<const std::byte*(int col)>& outer_col_bytes,
    const std::byte* payload) {
  const storage::Schema& schema = bound_->outer->schema;
  const std::uint64_t offset = match_arena_.size();
  match_arena_.resize(offset + outer_row_width_);
  for (int c = 0; c < schema.num_columns(); ++c) {
    std::memcpy(match_arena_.data() + offset + schema.offset(c),
                outer_col_bytes(c), schema.column(c).width);
  }
  if (bound_->payload_width > 0) {
    match_arena_.insert(match_arena_.end(), payload,
                        payload + bound_->payload_width);
  }
  matches_.push_back(Match{seq, offset});
  overhead_cycles_ += (outer_row_width_ + bound_->payload_width) / 8 + 2;
  NotePeak(0);
}

// --- resolve ---------------------------------------------------------

Status HybridJoin::ResolveFiles(PageFile build, PageFile probe,
                                std::uint32_t level, OpCounts* counts,
                                const Deliver& deliver) {
  stats_.passes = std::max(stats_.passes, level + 1);
  if (JoinHashTable::EstimateBytes(build.records, bound_->payload_width) <=
      config_.budget_bytes) {
    JoinHashTable table(bound_->payload_width, build.records);
    SMARTSSD_RETURN_IF_ERROR(ForEachRecord(
        build, build_rec_width_, [&](const std::byte* rec) {
          ++counts->hash_inserts;
          return table.Insert(
              static_cast<std::int64_t>(Load64(rec)),
              std::span<const std::byte>(rec + 8, bound_->payload_width));
        }));
    NotePeak(table.memory_bytes());
    return ForEachRecord(
        probe, probe_rec_width_, [&](const std::byte* rec) -> Status {
          const std::uint64_t seq = Load64(rec);
          const std::byte* row = rec + 8;
          ++counts->probes;
          const std::byte* payload = table.Probe(KeyFromOuterRow(row));
          if (payload == nullptr) return Status::OK();
          return deliver(seq, row, payload);
        });
  }
  if (level >= config_.max_depth) {
    return ResourceExhaustedError(
        "hybrid join: partition still exceeds the memory budget at the "
        "maximum recursion depth");
  }
  // Split both files into fanout children with the next level's salt and
  // recurse. Records move wholesale: no OpCounts are recharged.
  std::vector<PageFile> child_build(config_.fanout);
  std::vector<PageFile> child_probe(config_.fanout);
  SMARTSSD_RETURN_IF_ERROR(ForEachRecord(
      build, build_rec_width_, [&](const std::byte* rec) {
        const std::int64_t key = static_cast<std::int64_t>(Load64(rec));
        return AppendRecord(&child_build[PartitionOf(key, level)],
                            std::span<const std::byte>(rec,
                                                       build_rec_width_));
      }));
  for (PageFile& f : child_build) SMARTSSD_RETURN_IF_ERROR(SealFile(&f));
  SMARTSSD_RETURN_IF_ERROR(ForEachRecord(
      probe, probe_rec_width_, [&](const std::byte* rec) {
        const std::int64_t key = KeyFromOuterRow(rec + 8);
        return AppendRecord(&child_probe[PartitionOf(key, level)],
                            std::span<const std::byte>(rec,
                                                       probe_rec_width_));
      }));
  for (PageFile& f : child_probe) SMARTSSD_RETURN_IF_ERROR(SealFile(&f));
  for (std::uint32_t c = 0; c < config_.fanout; ++c) {
    SMARTSSD_RETURN_IF_ERROR(ResolveFiles(std::move(child_build[c]),
                                          std::move(child_probe[c]),
                                          level + 1, counts, deliver));
  }
  return Status::OK();
}

Status HybridJoin::Resolve(OpCounts* counts, const Deliver& deliver) {
  SMARTSSD_CHECK(build_finished_);
  if (!any_spilled()) return Status::OK();
  // Scan-side probing is over: retiring the resident table frees the
  // budget's biggest tenant before the per-partition tables are built.
  resident_table_.reset();
  for (Partition& p : partitions_) {
    if (p.resident) continue;
    SMARTSSD_RETURN_IF_ERROR(SealFile(&p.probe_file));
    SMARTSSD_RETURN_IF_ERROR(ResolveFiles(std::move(p.build_file),
                                          std::move(p.probe_file),
                                          /*level=*/1, counts, deliver));
    p.build_file = PageFile{};
    p.probe_file = PageFile{};
  }
  return Status::OK();
}

Status HybridJoin::ReplayOrdered(const Replay& replay) {
  std::sort(matches_.begin(), matches_.end(),
            [](const Match& a, const Match& b) { return a.seq < b.seq; });
  overhead_cycles_ += matches_.size() * 4;
  static constexpr std::byte kEmptyPayload{};
  for (const Match& m : matches_) {
    const std::byte* row = match_arena_.data() + m.offset;
    const std::byte* payload = bound_->payload_width > 0
                                   ? row + outer_row_width_
                                   : &kEmptyPayload;
    SMARTSSD_RETURN_IF_ERROR(replay(row, payload));
  }
  matches_.clear();
  match_arena_.clear();
  return Status::OK();
}

}  // namespace smartssd::exec
