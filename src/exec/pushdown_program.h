#ifndef SMARTSSD_EXEC_PUSHDOWN_PROGRAM_H_
#define SMARTSSD_EXEC_PUSHDOWN_PROGRAM_H_

#include <memory>
#include <optional>
#include <vector>

#include "exec/cost_model.h"
#include "exec/hash_table.h"
#include "exec/hybrid_join.h"
#include "exec/page_processor.h"
#include "exec/predicate_range.h"
#include "exec/query_spec.h"
#include "smart/program.h"
#include "storage/zone_map.h"

namespace smartssd::exec {

// The operator code that gets "uploaded" into the Smart SSD (Section 3):
// an InSsdProgram that runs a bound query pipeline on the device. Its
// build phase (for joins) reads the inner table through the internal
// data path, its per-page work is charged to the embedded cores with the
// embedded cost parameters, and only result tuples leave the device.
//
// Joins run in one of two modes. When the estimated hash table fits the
// join memory budget (or no budget is set), the whole inner table is
// hashed in device DRAM — the paper's simple hash join. When a budget is
// set and the estimate exceeds it, the build switches to the hybrid hash
// join (exec/hybrid_join.h): partitions beyond the budget spill to flash
// through the device's internal write path and are probed in extra
// passes during Finish, trading spill I/O for a bounded DRAM grant.
class PushdownProgram final : public smart::InSsdProgram {
 public:
  // `zone_map` (optional) is the device-resident copy of the outer
  // table's per-page statistics: the program prunes its input extents
  // with it, so non-matching pages are never even read from flash —
  // in-SSD indexing.
  //
  // `spill.budget_bytes` > 0 caps the resident build side of a join;
  // 0 keeps the unconstrained build. `spill_page_size_hint` sizes the
  // pre-OPEN DRAM estimate for the spill buffers (the join itself uses
  // the device's real page size).
  //
  // `first_page` / `page_count` restrict the program to a fragment of
  // the outer table's pages — the device half of a split scan. The
  // defaults cover the whole table, which is the monolithic behaviour:
  // extent announcement, pruning walk, and zone-check charge all stay
  // byte-identical to a program built without a fragment range.
  explicit PushdownProgram(const BoundQuery* bound,
                           const storage::ZoneMap* zone_map = nullptr,
                           KernelMode kernel = KernelMode::kVectorized,
                           const HybridJoinConfig& spill = {},
                           std::uint32_t spill_page_size_hint = 8192,
                           std::uint64_t first_page = 0,
                           std::uint64_t page_count = ~0ull);

  std::string_view name() const override;

  Result<SimTime> Open(smart::DeviceServices& device,
                       SimTime ready) override;

  std::vector<smart::LpnRange> InputExtents() const override;

  Result<smart::ProgramCharge> ProcessPage(std::span<const std::byte> page,
                                           smart::ResultSink& sink) override;

  Result<smart::ProgramCharge> Finish(smart::ResultSink& sink) override;

  std::uint64_t DramBytesRequired() const override;

  // Total counts, for inspection/EXPERIMENTS reporting.
  const OpCounts& counts() const { return counts_; }
  // The portion of counts() charged by Finish()'s output emission.
  // Fragment (partial) runs report counts() minus this, so the split
  // coordinator can synthesize the canonical monolithic finish charge
  // over the merged result exactly once.
  const OpCounts& finish_counts() const { return finish_counts_; }
  // counts() with the Finish() emission charge removed. Only valid for
  // non-hybrid-join programs (split scans never run joins): plain
  // Finish() touches the scalar OpCounts fields, not EvalStats.
  OpCounts CountsExcludingFinish() const;
  const std::vector<std::int64_t>& agg_state() const {
    return processor_->agg_state();
  }
  std::uint64_t pages_skipped() const { return pages_skipped_; }

  // True when this program's join runs (or would run) the hybrid
  // spill path under the configured budget.
  bool hybrid_join_engaged() const;
  // Spill statistics; all-zero when the join stayed unconstrained.
  HybridJoinStats hybrid_stats() const {
    return hybrid_ != nullptr ? hybrid_->stats() : HybridJoinStats{};
  }
  // High-water mark of the program's actual DRAM use, to check against
  // the DramBytesRequired() grant (the session-leak audit's other half:
  // a grant that under-states real use defeats the accounting).
  std::uint64_t dram_peak_bytes() const { return dram_peak_; }

 private:
  std::uint64_t HashEntries() const {
    if (hybrid_ != nullptr) return hybrid_->resident_entries();
    return hash_table_.has_value() ? hash_table_->entries() : 0;
  }
  std::uint64_t OutputRowWidth() const;
  std::uint64_t SpillOverheadCycles() {
    return hybrid_ != nullptr ? hybrid_->TakeOverheadCycles() : 0;
  }
  void NotePeak();

  const BoundQuery* bound_;
  CpuCostParams outer_params_;
  const storage::ZoneMap* zone_map_;
  KernelMode kernel_;
  HybridJoinConfig spill_;
  std::uint32_t spill_page_size_hint_;
  std::map<int, ColumnRange> prune_ranges_;  // outer columns only
  // The session protocol delivers exactly the pages InputExtents()
  // announces — one ProcessPage() call per page, in extent order. This
  // is that page-index sequence (computed in Open() with the same
  // pruning walk), consumed one entry per delivery so each page can be
  // tied back to its zone-map entry for the batch-skip fast paths.
  std::vector<std::uint64_t> input_pages_;
  std::size_t next_input_page_ = 0;
  // Fragment bounds over the outer table's page indices, clamped to the
  // table in the constructor. Monolithic programs cover [0, page_count).
  std::uint64_t scan_begin_ = 0;
  std::uint64_t scan_end_ = 0;
  mutable std::uint64_t pages_skipped_ = 0;
  std::optional<JoinHashTable> hash_table_;
  std::unique_ptr<HybridJoin> hybrid_;
  std::unique_ptr<PageProcessor> processor_;
  OpCounts counts_;
  OpCounts finish_counts_;
  std::vector<std::byte> scratch_;
  std::uint64_t dram_peak_ = 0;
};

}  // namespace smartssd::exec

#endif  // SMARTSSD_EXEC_PUSHDOWN_PROGRAM_H_
