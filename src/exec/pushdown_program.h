#ifndef SMARTSSD_EXEC_PUSHDOWN_PROGRAM_H_
#define SMARTSSD_EXEC_PUSHDOWN_PROGRAM_H_

#include <memory>
#include <optional>
#include <vector>

#include "exec/cost_model.h"
#include "exec/hash_table.h"
#include "exec/page_processor.h"
#include "exec/predicate_range.h"
#include "exec/query_spec.h"
#include "smart/program.h"
#include "storage/zone_map.h"

namespace smartssd::exec {

// The operator code that gets "uploaded" into the Smart SSD (Section 3):
// an InSsdProgram that runs a bound query pipeline on the device. Its
// build phase (for joins) reads the inner table through the internal
// data path, its per-page work is charged to the embedded cores with the
// embedded cost parameters, and only result tuples leave the device.
class PushdownProgram final : public smart::InSsdProgram {
 public:
  // `zone_map` (optional) is the device-resident copy of the outer
  // table's per-page statistics: the program prunes its input extents
  // with it, so non-matching pages are never even read from flash —
  // in-SSD indexing.
  explicit PushdownProgram(const BoundQuery* bound,
                           const storage::ZoneMap* zone_map = nullptr,
                           KernelMode kernel = KernelMode::kVectorized);

  std::string_view name() const override;

  Result<SimTime> Open(smart::DeviceServices& device,
                       SimTime ready) override;

  std::vector<smart::LpnRange> InputExtents() const override;

  Result<smart::ProgramCharge> ProcessPage(std::span<const std::byte> page,
                                           smart::ResultSink& sink) override;

  Result<smart::ProgramCharge> Finish(smart::ResultSink& sink) override;

  std::uint64_t DramBytesRequired() const override;

  // Total counts, for inspection/EXPERIMENTS reporting.
  const OpCounts& counts() const { return counts_; }
  const std::vector<std::int64_t>& agg_state() const {
    return processor_->agg_state();
  }
  std::uint64_t pages_skipped() const { return pages_skipped_; }

 private:
  std::uint64_t HashEntries() const {
    return hash_table_.has_value() ? hash_table_->entries() : 0;
  }

  const BoundQuery* bound_;
  CpuCostParams outer_params_;
  const storage::ZoneMap* zone_map_;
  KernelMode kernel_;
  std::map<int, ColumnRange> prune_ranges_;  // outer columns only
  mutable std::uint64_t pages_skipped_ = 0;
  std::optional<JoinHashTable> hash_table_;
  std::unique_ptr<PageProcessor> processor_;
  OpCounts counts_;
  std::vector<std::byte> scratch_;
};

}  // namespace smartssd::exec

#endif  // SMARTSSD_EXEC_PUSHDOWN_PROGRAM_H_
