#ifndef SMARTSSD_EXEC_HYBRID_JOIN_H_
#define SMARTSSD_EXEC_HYBRID_JOIN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "exec/cost_model.h"
#include "exec/hash_table.h"
#include "exec/query_spec.h"
#include "smart/program.h"

namespace smartssd::exec {

// Memory-constrained hybrid hash join for the in-SSD pushdown path.
//
// The paper's join assumes the build side fits the session's device-DRAM
// grant; this class turns that cliff into a curve (after "Design
// Trade-offs for a Robust Dynamic Hybrid Hash Join", PAPERS.md). The
// inner table is hashed into `fanout` partitions by a level-salted
// rehash of the join key. Partitions stay resident while the projected
// hash-table footprint fits `budget_bytes`; when it would not, the
// largest resident partition is evicted to flash through the device's
// real spill write path (DMA + out-of-place FTL program, visible to GC,
// trimmed back at session close). Probing then classifies each outer
// tuple: resident partitions probe immediately; spilled partitions defer
// the tuple, materializing it into the partition's probe file. A
// space-saving sketch spots heavy-hitter probe keys (JSPIM-style skew
// handling) and pins their build rows resident so a skewed key stops
// paying the spill path. At Finish, each spilled partition is resolved:
// build its table if it now fits, else recursively re-partition both
// files with the next level's salt, bounded by `max_depth` (beyond it
// the join fails with RESOURCE_EXHAUSTED and the engine falls back to
// the host, byte-identically).
//
// Count discipline: the differential harness holds OpCounts totals
// byte-identical to the unconstrained join, so every logical operation
// is charged exactly once no matter where it lands —
//   * inner tuples + key/payload column reads: at the build scan;
//   * hash_inserts: when a row actually enters a hash table (resident at
//     FinishBuild, spilled at its resolve level — re-splits recharge
//     nothing);
//   * FK column read: at the outer scan, for every tuple reaching the
//     probe stage;
//   * probes: when the probe actually happens (scan for resident/hot,
//     resolve for deferred) — once per tuple either way.
// All spill overhead (record formatting, page flushes, merges, hot-key
// fetches) is charged as embedded cycles and spill I/O, never OpCounts.
//
// Order discipline: projection and top-N output must be byte-identical
// to the unconstrained scan order, but deferred matches surface in
// partition order. When anything spilled and the query is
// order-sensitive, every confirmed match (scan-time and resolved) is
// staged as (seq, outer row, payload) and replayed in seq order — seq
// being the tuple's position in the outer scan. Aggregates fold
// commutatively, so they sink matches the moment they are found.
struct HybridJoinConfig {
  std::uint64_t budget_bytes = 0;  // resident build-side budget (> 0)
  std::uint32_t fanout = 4;        // partitions per level (power of two)
  std::uint32_t max_depth = 4;     // recursive re-partitioning bound
  std::uint32_t hot_key_capacity = 8;    // max pinned heavy hitters
  std::uint32_t hot_key_threshold = 32;  // sketch count before pinning
};

struct HybridJoinStats {
  std::uint32_t partitions_spilled = 0;
  std::uint32_t passes = 1;  // 1 = fully resident, 2 = one spill pass...
  std::uint64_t build_rows_spilled = 0;
  std::uint64_t probe_rows_spilled = 0;
  std::uint64_t spill_pages_written = 0;
  std::uint64_t spill_pages_read = 0;
  std::uint64_t hot_keys_pinned = 0;
  std::uint64_t hot_hits = 0;
};

class HybridJoin {
 public:
  HybridJoin(const BoundQuery* bound, smart::DeviceServices* device,
             const HybridJoinConfig& config);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(HybridJoin);

  // --- build phase (inner scan, during OPEN) -------------------------
  // Charges the same per-tuple counts JoinHashTableBuilder charges
  // (tuples, key + payload column reads) into build_counts();
  // hash_inserts land when rows actually enter a table.
  Status AddBuildPage(std::span<const std::byte> page);
  // Seals the build side: spilled build files flush their tails, the
  // resident partitions' rows enter the resident hash table.
  Status FinishBuild();
  const OpCounts& build_counts() const { return build_counts_; }

  bool any_spilled() const { return stats_.partitions_spilled > 0; }
  // Projection/top-N with spilling must stage matches and replay them in
  // scan order; aggregates never need to.
  bool ordered() const {
    return bound_->spec->aggregates.empty() && any_spilled();
  }

  // --- probe phase (outer scan) --------------------------------------
  struct ProbeResult {
    bool deferred = false;               // tuple spilled; resolve later
    const std::byte* payload = nullptr;  // probe hit (when !deferred)
    std::uint64_t seq = 0;               // scan-order position
  };
  // The caller has read (and charged) the FK. Resident/hot keys probe
  // now (charging counts->probes); spilled partitions materialize the
  // outer row via `outer_col_bytes` into the partition's probe file.
  Result<ProbeResult> Probe(
      std::int64_t key,
      const std::function<const std::byte*(int col)>& outer_col_bytes,
      OpCounts* counts);

  // Stages a confirmed match for ordered replay (ordered() mode only).
  // The outer row and payload are copied into the staging arena.
  void BufferMatch(
      std::uint64_t seq,
      const std::function<const std::byte*(int col)>& outer_col_bytes,
      const std::byte* payload);
  void BufferMatchRaw(std::uint64_t seq, const std::byte* outer_row,
                      const std::byte* payload);

  // --- resolve (multi-pass probing, during Finish) -------------------
  // Resolves every spilled partition, invoking `deliver` for each match
  // (seq, materialized outer row in NSM layout, payload). Pointers are
  // valid only for the duration of the callback.
  using Deliver = std::function<Status(
      std::uint64_t seq, const std::byte* outer_row,
      const std::byte* payload)>;
  Status Resolve(OpCounts* counts, const Deliver& deliver);

  // Replays the staged matches in scan order (after Resolve).
  using Replay = std::function<Status(const std::byte* outer_row,
                                      const std::byte* payload)>;
  Status ReplayOrdered(const Replay& replay);

  const HybridJoinStats& stats() const { return stats_; }
  // Entries in the resident table (probe-cost tier for the cycle model).
  std::uint64_t resident_entries() const {
    return resident_table_.has_value() ? resident_table_->entries() : 0;
  }
  // Embedded cycles accrued by spill bookkeeping since the last drain.
  std::uint64_t TakeOverheadCycles() {
    const std::uint64_t c = overhead_cycles_;
    overhead_cycles_ = 0;
    return c;
  }
  // High-water mark of the join's modeled DRAM footprint (resident rows
  // or table, partition page buffers, hot table, staging arena) — what
  // the session grant must cover.
  std::uint64_t dram_peak_bytes() const { return dram_peak_; }

 private:
  // A spill-backed sequence of fixed-width records. Full pages flush as
  // they fill; the tail flushes at seal. Pages come from the device's
  // spill extent allocator in small chunks.
  struct PageFile {
    std::vector<std::uint64_t> lpns;
    std::uint64_t pages_used = 0;  // pages flushed so far
    std::uint64_t records = 0;
    std::vector<std::byte> buffer;  // current partial page
  };
  struct Partition {
    bool resident = true;
    std::uint64_t build_rows = 0;
    std::vector<std::byte> rows;  // resident build records
    PageFile build_file;
    PageFile probe_file;
  };
  struct Match {
    std::uint64_t seq = 0;
    std::uint64_t offset = 0;  // into match_arena_
  };

  std::uint32_t PartitionOf(std::int64_t key, std::uint32_t level) const;
  std::int64_t KeyFromOuterRow(const std::byte* row) const;
  Status AddBuildRow(std::int64_t key,
                     std::span<const std::byte> payload);
  Status EvictLargestResident();
  Status AppendRecord(PageFile* file, std::span<const std::byte> record);
  Status FlushPage(PageFile* file);
  Status SealFile(PageFile* file) { return FlushPage(file); }
  // Streams a sealed file's records through `fn`. Each page is copied
  // into a local buffer first: spill writes issued from inside `fn`
  // (child partitions, GC relocations) may move the viewed flash page.
  Status ForEachRecord(const PageFile& file, std::uint32_t width,
                       const std::function<Status(const std::byte*)>& fn);
  Status ResolveFiles(PageFile build, PageFile probe, std::uint32_t level,
                      OpCounts* counts, const Deliver& deliver);
  std::uint64_t SketchBump(std::int64_t key);
  Status Promote(std::int64_t key, Partition& partition);
  const std::byte* HotPayload(
      const std::optional<std::vector<std::byte>>& entry) const;
  void NotePeak(std::uint64_t extra);

  const BoundQuery* bound_;
  smart::DeviceServices* device_;
  HybridJoinConfig config_;
  std::uint32_t page_size_;
  std::uint32_t fanout_shift_ = 0;  // log2(fanout)
  std::uint32_t build_rec_width_;   // 8-byte key + payload
  std::uint32_t probe_rec_width_;   // 8-byte seq + outer row
  std::uint32_t outer_row_width_;

  OpCounts build_counts_;
  HybridJoinStats stats_;
  std::vector<Partition> partitions_;
  std::uint64_t resident_rows_total_ = 0;
  std::optional<JoinHashTable> resident_table_;
  bool build_finished_ = false;

  std::uint64_t next_seq_ = 0;

  // Skew handling: space-saving sketch over probe keys; pinned heavy
  // hitters carry their build payload (or confirmed absence) resident.
  std::map<std::int64_t, std::uint64_t> sketch_;
  std::map<std::int64_t, std::optional<std::vector<std::byte>>> hot_;

  // Ordered staging: (seq, outer row bytes ++ payload bytes).
  std::vector<Match> matches_;
  std::vector<std::byte> match_arena_;

  std::vector<std::byte> read_buf_;  // stable copy of one spill page
  std::uint64_t overhead_cycles_ = 0;
  std::uint64_t dram_peak_ = 0;
};

}  // namespace smartssd::exec

#endif  // SMARTSSD_EXEC_HYBRID_JOIN_H_
