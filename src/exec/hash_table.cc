#include "exec/hash_table.h"

#include <bit>

namespace smartssd::exec {

namespace {

std::uint64_t NextPow2(std::uint64_t n) {
  return n <= 1 ? 1 : std::bit_ceil(n);
}

}  // namespace

std::uint64_t JoinHashTable::HashKey(std::int64_t key) {
  // Fibonacci-style mix; adequate for integer keys.
  std::uint64_t x = static_cast<std::uint64_t>(key);
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

JoinHashTable::JoinHashTable(std::uint32_t payload_width,
                             std::uint64_t expected_entries)
    : payload_width_(payload_width) {
  // Target load factor ~0.7.
  const std::uint64_t slots =
      NextPow2(expected_entries + expected_entries / 2 + 8);
  slots_.resize(static_cast<std::size_t>(slots));
  payloads_.reserve(static_cast<std::size_t>(expected_entries) *
                    payload_width);
}

JoinHashTable::JoinHashTable(JoinHashTable&& other) noexcept
    : payload_width_(other.payload_width_),
      sealed_(other.sealed_),
      entries_(other.entries_),
      slots_(std::move(other.slots_)),
      payloads_(std::move(other.payloads_)) {
  // Leave the source a valid empty table: unsealed, with a real (if
  // minimal) slot array so SlotFor's power-of-two mask stays defined.
  other.sealed_ = false;
  other.entries_ = 0;
  other.slots_.assign(1, Slot{});
  other.payloads_.clear();
}

JoinHashTable& JoinHashTable::operator=(JoinHashTable&& other) noexcept {
  if (this == &other) return *this;
  // Overwriting a sealed table frees the payload pool its probers still
  // point into — the caller broke the build-then-probe contract.
  SMARTSSD_CHECK(!sealed_);
  payload_width_ = other.payload_width_;
  sealed_ = other.sealed_;
  entries_ = other.entries_;
  slots_ = std::move(other.slots_);
  payloads_ = std::move(other.payloads_);
  other.sealed_ = false;
  other.entries_ = 0;
  other.slots_.assign(1, Slot{});
  other.payloads_.clear();
  return *this;
}

std::size_t JoinHashTable::SlotFor(std::int64_t key) const {
  return static_cast<std::size_t>(HashKey(key) & (slots_.size() - 1));
}

Status JoinHashTable::Insert(std::int64_t key,
                             std::span<const std::byte> payload) {
  if (sealed_) {
    return FailedPreconditionError(
        "hash insert after probe: payload pointers would dangle");
  }
  if (payload.size() != payload_width_) {
    return InvalidArgumentError("hash insert: wrong payload width");
  }
  if ((entries_ + entries_ / 2) >= slots_.size()) Grow();
  std::size_t i = SlotFor(key);
  for (;;) {
    Slot& slot = slots_[i];
    if (slot.payload_offset_plus_one == 0) {
      slot.key = key;
      slot.payload_offset_plus_one = payloads_.size() + 1;
      payloads_.insert(payloads_.end(), payload.begin(), payload.end());
      ++entries_;
      return Status::OK();
    }
    if (slot.key == key) {
      return AlreadyExistsError("hash insert: duplicate join key");
    }
    i = (i + 1) & (slots_.size() - 1);
  }
}

const std::byte* JoinHashTable::Probe(std::int64_t key) const {
  // Conditional so that after Seal() no probing thread ever writes the
  // flag: concurrent morsel workers only read a value that was fixed
  // before they were spawned, which is race-free.
  if (!sealed_) sealed_ = true;
  std::size_t i = SlotFor(key);
  for (;;) {
    const Slot& slot = slots_[i];
    if (slot.payload_offset_plus_one == 0) return nullptr;
    if (slot.key == key) {
      if (payload_width_ == 0) {
        // Zero-width payloads still need a non-null "present" marker.
        static constexpr std::byte kEmptyPayload{};
        return &kEmptyPayload;
      }
      return payloads_.data() + (slot.payload_offset_plus_one - 1);
    }
    i = (i + 1) & (slots_.size() - 1);
  }
}

void JoinHashTable::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  for (const Slot& slot : old) {
    if (slot.payload_offset_plus_one == 0) continue;
    std::size_t i = SlotFor(slot.key);
    while (slots_[i].payload_offset_plus_one != 0) {
      i = (i + 1) & (slots_.size() - 1);
    }
    slots_[i] = slot;
  }
}

std::uint64_t JoinHashTable::EstimateBytes(std::uint64_t entries,
                                           std::uint32_t payload_width) {
  const std::uint64_t slots = NextPow2(entries + entries / 2 + 8);
  return slots * sizeof(Slot) + entries * payload_width;
}

}  // namespace smartssd::exec
