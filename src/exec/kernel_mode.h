#ifndef SMARTSSD_EXEC_KERNEL_MODE_H_
#define SMARTSSD_EXEC_KERNEL_MODE_H_

namespace smartssd::exec {

// Which page kernel PageProcessor runs. Both produce byte-identical
// results and byte-identical OpCounts — the vectorized kernel only
// changes wall-clock speed, never virtual time. Queries the batch
// compiler cannot express fall back to kScalar regardless of the
// requested mode.
enum class KernelMode {
  kScalar,      // interpreted row-at-a-time (the semantic reference)
  kVectorized,  // compiled column-at-a-time over selection vectors
};

}  // namespace smartssd::exec

#endif  // SMARTSSD_EXEC_KERNEL_MODE_H_
