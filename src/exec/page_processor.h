#ifndef SMARTSSD_EXEC_PAGE_PROCESSOR_H_
#define SMARTSSD_EXEC_PAGE_PROCESSOR_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "exec/batch_skip.h"
#include "exec/cost_model.h"
#include "exec/group_table.h"
#include "exec/hash_table.h"
#include "exec/kernel_mode.h"
#include "exec/query_spec.h"
#include "expr/batch.h"

namespace smartssd::exec {

class HybridJoin;

// Executes a bound query pipeline over one page at a time, producing
// real output rows and the operation counts the cost models charge.
//
// This kernel is deliberately shared between the host executor and the
// in-SSD pushdown program: both run exactly the same code over exactly
// the same bytes and therefore produce identical results and identical
// counts — only the cycles-per-operation (and the data path the pages
// took to get here) differ. That is the paper's setup: the same operator
// logic compiled for the host and for the device firmware.
//
// Two kernels implement the pipeline:
//  * kScalar — interpreted row-at-a-time (virtual RowView access, tree-
//    walked predicates); the semantic reference.
//  * kVectorized — the page is exposed as column accessors (PAX
//    minipages directly, NSM via one gather of tuple pointers), the
//    predicate/aggregate expressions are compiled once into flat batch
//    programs (expr/batch.h), and every stage runs column-at-a-time over
//    a selection vector of surviving row ids.
// Both produce byte-identical output and byte-identical OpCounts; a
// query the batch compiler cannot express silently degrades to kScalar
// (see kernel_mode()).
class PageProcessor {
 public:
  // `hash_table` must outlive the processor and is required iff the
  // query has a join — unless `hybrid` is supplied instead, in which
  // case probes route through the memory-constrained hybrid join (and
  // the kernel degrades to kScalar: deferral is a per-row decision the
  // batch probe cannot express). Exactly one of the two may be set for
  // a join query.
  PageProcessor(const BoundQuery* bound, const JoinHashTable* hash_table,
                KernelMode mode = KernelMode::kVectorized,
                HybridJoin* hybrid = nullptr);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(PageProcessor);

  // Sentinel page index for callers that cannot name the page.
  static constexpr std::uint64_t kNoPage = ~0ull;

  // Arms the zone-map batch fast paths: pages whose [min, max] decide
  // the whole predicate are settled without per-row work (all-fail) or
  // without predicate evaluation (all-pass), charging exactly the
  // interpreter's OpCounts for the skipped rows (see exec/batch_skip.h).
  // Effective only for the vectorized kernel and only on ProcessPage
  // calls that carry a real page index; the scalar kernel stays the
  // skip-free semantic reference. `map` must outlive the processor.
  void SetZoneMap(const storage::ZoneMap* map);

  // Processes one outer-table page. Serialized output rows (packed
  // fixed-width, per OutputSchema) are appended to `out`. `page_index`
  // is the table-relative index (for zone-map classification); the
  // two-argument form processes without one.
  Status ProcessPage(std::span<const std::byte> page,
                     std::uint64_t page_index, OpCounts* counts,
                     std::vector<std::byte>* out);
  Status ProcessPage(std::span<const std::byte> page, OpCounts* counts,
                     std::vector<std::byte>* out) {
    return ProcessPage(page, kNoPage, counts, out);
  }

  // Folds another processor's aggregation state into this one (morsel
  // merge): scalar aggregates, GROUP BY groups, and the projection row
  // count. Both processors must be built from the same BoundQuery and
  // must not have Finish()ed; top-N and hybrid-join state do not merge
  // (morsel mode excludes those queries). Aggregate folds are
  // commutative and group output is sorted at Finish, so the merged
  // result is independent of worker scheduling.
  void MergeFrom(const PageProcessor& other);

  // Emits the final rows: the scalar aggregate row, the per-group rows
  // (GROUP BY, in key order), or the top-N rows (in sort order).
  Status Finish(OpCounts* counts, std::vector<std::byte>* out);

  const std::vector<std::int64_t>& agg_state() const { return agg_state_; }
  std::uint32_t output_row_width() const { return output_row_width_; }
  std::uint64_t rows_output() const { return rows_output_; }
  // The kernel actually running: the requested mode, degraded to
  // kScalar if any of the query's expressions failed to batch-compile.
  KernelMode kernel_mode() const { return mode_; }

 private:
  // --- scalar kernel ---
  Status ProcessPageScalar(std::span<const std::byte> page,
                           OpCounts* counts, std::vector<std::byte>* out);
  Status HandleTuple(
      const expr::RowView& outer_view,
      const std::function<const std::byte*(int col)>& outer_col_bytes,
      OpCounts* counts, std::vector<std::byte>* out);

  // Copies the raw bytes of combined-row columns (outer or payload) to
  // `out`, counting the outer column reads.
  void AppendColumnBytes(
      const std::vector<int>& columns,
      const std::function<const std::byte*(int col)>& outer_col_bytes,
      const std::byte* payload, OpCounts* counts,
      std::vector<std::byte>* out) const;

  Status UpdateAggregates(const expr::RowView& combined_view,
                          std::int64_t* states, OpCounts* counts);

  // Sinks one surviving row (post-predicate, post-probe) into the
  // aggregate / group / projection / top-N stage. Shared between the
  // scan path and the hybrid join's deferred-match replay, so both
  // charge identical counts.
  Status SinkJoinedRow(
      const expr::RowView& outer_view,
      const std::function<const std::byte*(int col)>& outer_col_bytes,
      const std::byte* payload, OpCounts* counts,
      std::vector<std::byte>* out);

  // Resolves the hybrid join's spilled partitions (multi-pass probing)
  // and, for order-sensitive queries, replays all staged matches in
  // scan order. Called from Finish() before the final rows are emitted.
  Status FinishHybrid(OpCounts* counts, std::vector<std::byte>* out);

  // --- vectorized kernel ---
  // Compiles predicate + aggregate inputs; false => fall back to scalar.
  bool CompileKernels();
  Status ProcessPageVectorized(std::span<const std::byte> page,
                               std::uint64_t page_index, OpCounts* counts,
                               std::vector<std::byte>* out);
  // Probes the join hash table for every lane of sel_, keeps the hits,
  // and repoints the payload batch columns. `rows` is the page's tuple
  // count (payload pointers are indexed by row id).
  void ProbeBatch(std::uint32_t rows, OpCounts* counts);
  // Aggregation / projection over the surviving lanes of sel_.
  Status SinkBatch(const expr::BatchInput& in, OpCounts* counts,
                   std::vector<std::byte>* out);

  void PushTopN(std::int64_t key, std::vector<std::byte> row,
                OpCounts* counts);

  const BoundQuery* bound_;
  const JoinHashTable* hash_table_;
  HybridJoin* hybrid_ = nullptr;
  KernelMode mode_ = KernelMode::kScalar;
  std::vector<std::int64_t> agg_init_;   // one init value per aggregate
  std::vector<std::int64_t> agg_state_;  // scalar aggregation
  GroupTable group_table_;               // GROUP BY state (both kernels)
  // Top-N candidates as a binary heap ordered so the *worst* kept row is
  // on top (max-heap for ascending order, min-heap for descending).
  std::vector<std::pair<std::int64_t, std::vector<std::byte>>> top_n_;
  std::vector<std::byte> row_scratch_;
  std::uint32_t output_row_width_ = 0;
  std::uint64_t rows_output_ = 0;

  // Zone-map batch skipping (vectorized kernel only).
  BatchSkipAnalysis skip_analysis_;

  // Vectorized-kernel state, reused across pages.
  std::optional<expr::CompiledExpr> pred_compiled_;
  // Parallel to spec->aggregates; nullopt for COUNT(*) (null input).
  std::vector<std::optional<expr::CompiledExpr>> agg_compiled_;
  expr::BatchScratch scratch_;
  std::vector<expr::BatchColumn> batch_columns_;  // combined-row columns
  expr::SelVec sel_;
  std::vector<const std::byte*> tuple_ptrs_;    // NSM gather
  std::vector<const std::byte*> payload_ptrs_;  // probe hits, by row id
  std::vector<std::uint32_t> group_idx_;        // per-lane group index
};

// Incremental join-table construction: the caller feeds inner-table
// pages one at a time (in page order) and takes the finished table when
// the last page is in. Splitting the build this way lets a resumable
// query task yield between inner pages, so co-running queries interleave
// on the I/O path even during the build phase; the op counts are
// byte-identical to a one-shot build over the same pages.
class JoinHashTableBuilder {
 public:
  explicit JoinHashTableBuilder(const BoundQuery* bound);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(JoinHashTableBuilder);

  // Hashes one inner page's tuples into the table.
  Status AddPage(std::span<const std::byte> page);

  std::uint64_t pages_added() const { return pages_added_; }
  const OpCounts& counts() const { return counts_; }

  // Moves the finished table out; the builder is then spent.
  JoinHashTable TakeTable();

 private:
  const BoundQuery* bound_;
  JoinHashTable table_;
  std::vector<std::byte> payload_;
  OpCounts counts_;
  std::uint64_t pages_added_ = 0;
};

// Builds the join hash table by scanning the inner table's pages through
// `read_page` (the caller decides whether pages arrive via the host path
// or the device-internal path — and charges that I/O accordingly).
// Counts the build work into `counts`. One-shot convenience over
// JoinHashTableBuilder.
Result<JoinHashTable> BuildJoinHashTable(
    const BoundQuery& bound,
    const std::function<Result<std::span<const std::byte>>(
        std::uint64_t page_index)>& read_page,
    OpCounts* counts);

}  // namespace smartssd::exec

#endif  // SMARTSSD_EXEC_PAGE_PROCESSOR_H_
