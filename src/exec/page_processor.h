#ifndef SMARTSSD_EXEC_PAGE_PROCESSOR_H_
#define SMARTSSD_EXEC_PAGE_PROCESSOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "exec/cost_model.h"
#include "exec/hash_table.h"
#include "exec/query_spec.h"

namespace smartssd::exec {

// Executes a bound query pipeline over one page at a time, producing
// real output rows and the operation counts the cost models charge.
//
// This kernel is deliberately shared between the host executor and the
// in-SSD pushdown program: both run exactly the same code over exactly
// the same bytes and therefore produce identical results and identical
// counts — only the cycles-per-operation (and the data path the pages
// took to get here) differ. That is the paper's setup: the same operator
// logic compiled for the host and for the device firmware.
class PageProcessor {
 public:
  // `hash_table` must outlive the processor and is required iff the
  // query has a join.
  PageProcessor(const BoundQuery* bound, const JoinHashTable* hash_table);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(PageProcessor);

  // Processes one outer-table page. Serialized output rows (packed
  // fixed-width, per OutputSchema) are appended to `out`.
  Status ProcessPage(std::span<const std::byte> page, OpCounts* counts,
                     std::vector<std::byte>* out);

  // Emits the final rows: the scalar aggregate row, the per-group rows
  // (GROUP BY, in key order), or the top-N rows (in sort order).
  Status Finish(OpCounts* counts, std::vector<std::byte>* out);

  const std::vector<std::int64_t>& agg_state() const { return agg_state_; }
  // Grouped aggregation state: serialized group key -> per-agg values.
  const std::map<std::string, std::vector<std::int64_t>>& groups() const {
    return groups_;
  }
  std::uint32_t output_row_width() const { return output_row_width_; }
  std::uint64_t rows_output() const { return rows_output_; }

 private:
  Status HandleTuple(
      const expr::RowView& outer_view,
      const std::function<const std::byte*(int col)>& outer_col_bytes,
      OpCounts* counts, std::vector<std::byte>* out);

  // Copies the raw bytes of combined-row columns (outer or payload) to
  // `out`, counting the outer column reads.
  void AppendColumnBytes(
      const std::vector<int>& columns,
      const std::function<const std::byte*(int col)>& outer_col_bytes,
      const std::byte* payload, OpCounts* counts,
      std::vector<std::byte>* out) const;

  Status UpdateAggregates(const expr::RowView& combined_view,
                          std::vector<std::int64_t>* states,
                          OpCounts* counts);

  void PushTopN(std::int64_t key, std::vector<std::byte> row,
                OpCounts* counts);

  const BoundQuery* bound_;
  const JoinHashTable* hash_table_;
  std::vector<std::int64_t> agg_state_;           // scalar aggregation
  std::map<std::string, std::vector<std::int64_t>> groups_;  // GROUP BY
  // Top-N candidates as a binary heap ordered so the *worst* kept row is
  // on top (max-heap for ascending order, min-heap for descending).
  std::vector<std::pair<std::int64_t, std::vector<std::byte>>> top_n_;
  std::string group_key_scratch_;
  std::vector<std::byte> row_scratch_;
  std::uint32_t output_row_width_ = 0;
  std::uint64_t rows_output_ = 0;
};

// Builds the join hash table by scanning the inner table's pages through
// `read_page` (the caller decides whether pages arrive via the host path
// or the device-internal path — and charges that I/O accordingly).
// Counts the build work into `counts`.
Result<JoinHashTable> BuildJoinHashTable(
    const BoundQuery& bound,
    const std::function<Result<std::span<const std::byte>>(
        std::uint64_t page_index)>& read_page,
    OpCounts* counts);

}  // namespace smartssd::exec

#endif  // SMARTSSD_EXEC_PAGE_PROCESSOR_H_
