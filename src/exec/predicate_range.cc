#include "exec/predicate_range.h"

#include <algorithm>

namespace smartssd::exec {

namespace {

void ApplyCompare(const expr::ColumnCompare& compare,
                  std::map<int, ColumnRange>* ranges) {
  ColumnRange& range = (*ranges)[compare.column];
  switch (compare.op) {
    case expr::CompareOp::kEq:
      range.lo = std::max(range.lo, compare.literal);
      range.hi = std::min(range.hi, compare.literal);
      break;
    case expr::CompareOp::kLt:
      if (compare.literal == std::numeric_limits<std::int64_t>::min()) {
        range.hi = std::numeric_limits<std::int64_t>::min();
        range.lo = range.hi + 1;  // impossible
      } else {
        range.hi = std::min(range.hi, compare.literal - 1);
      }
      break;
    case expr::CompareOp::kLe:
      range.hi = std::min(range.hi, compare.literal);
      break;
    case expr::CompareOp::kGt:
      if (compare.literal == std::numeric_limits<std::int64_t>::max()) {
        range.lo = std::numeric_limits<std::int64_t>::max();
        range.hi = range.lo - 1;  // impossible
      } else {
        range.lo = std::max(range.lo, compare.literal + 1);
      }
      break;
    case expr::CompareOp::kGe:
      range.lo = std::max(range.lo, compare.literal);
      break;
    case expr::CompareOp::kNe:
      // An exclusion doesn't narrow an interval; ignore.
      break;
  }
}

}  // namespace

std::map<int, ColumnRange> ExtractColumnRanges(
    const expr::Expression* predicate) {
  std::map<int, ColumnRange> ranges;
  if (predicate == nullptr) return ranges;
  if (const auto* conjuncts = predicate->AsConjunction()) {
    for (const expr::ExprPtr& conjunct : *conjuncts) {
      if (const auto compare = conjunct->AsColumnCompare()) {
        ApplyCompare(*compare, &ranges);
      }
    }
    return ranges;
  }
  if (const auto compare = predicate->AsColumnCompare()) {
    ApplyCompare(*compare, &ranges);
  }
  return ranges;
}

}  // namespace smartssd::exec
