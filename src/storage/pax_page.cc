#include "storage/pax_page.h"

#include <cstring>

namespace smartssd::storage {

namespace {

std::uint16_t LoadU16(const std::byte* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void StoreU16(std::byte* p, std::uint16_t v) {
  std::memcpy(p, &v, sizeof(v));
}

std::uint32_t HeaderBytes(const Schema& schema) {
  return 8 + 2u * static_cast<std::uint32_t>(schema.num_columns());
}

}  // namespace

std::uint32_t PaxCapacity(const Schema& schema, std::uint32_t page_size) {
  const std::uint32_t header = HeaderBytes(schema);
  if (page_size <= header) return 0;
  return (page_size - header) / schema.tuple_size();
}

PaxPageBuilder::PaxPageBuilder(const Schema* schema, std::uint32_t page_size)
    : schema_(schema), page_size_(page_size) {
  SMARTSSD_CHECK(schema != nullptr);
  SMARTSSD_CHECK_LE(page_size, 65536u);
  capacity_ = PaxCapacity(*schema, page_size);
  SMARTSSD_CHECK_GT(capacity_, 0u);
  buffer_.resize(page_size);
  std::uint32_t offset = HeaderBytes(*schema);
  minipage_offsets_.reserve(static_cast<std::size_t>(schema->num_columns()));
  for (int c = 0; c < schema->num_columns(); ++c) {
    minipage_offsets_.push_back(offset);
    offset += capacity_ * schema->column(c).width;
  }
  SMARTSSD_CHECK_LE(offset, page_size);
  Reset();
}

bool PaxPageBuilder::Append(std::span<const std::byte> tuple) {
  SMARTSSD_CHECK_EQ(tuple.size(), schema_->tuple_size());
  if (count_ >= capacity_) return false;
  for (int c = 0; c < schema_->num_columns(); ++c) {
    const std::uint32_t width = schema_->column(c).width;
    std::memcpy(buffer_.data() + minipage_offsets_[static_cast<std::size_t>(c)] +
                    static_cast<std::size_t>(count_) * width,
                tuple.data() + schema_->offset(c), width);
  }
  ++count_;
  StoreU16(buffer_.data() + 2, count_);
  return true;
}

void PaxPageBuilder::Reset() {
  std::fill(buffer_.begin(), buffer_.end(), std::byte{0});
  count_ = 0;
  StoreU16(buffer_.data() + 0, kPaxMagic);
  StoreU16(buffer_.data() + 2, 0);
  StoreU16(buffer_.data() + 4,
           static_cast<std::uint16_t>(schema_->num_columns()));
  for (int c = 0; c < schema_->num_columns(); ++c) {
    StoreU16(buffer_.data() + 8 + 2 * c,
             static_cast<std::uint16_t>(
                 minipage_offsets_[static_cast<std::size_t>(c)]));
  }
}

Result<PaxPageReader> PaxPageReader::Open(const Schema* schema,
                                          std::span<const std::byte> page) {
  SMARTSSD_CHECK(schema != nullptr);
  if (page.size() < 8) {
    return CorruptionError("PAX page smaller than its header");
  }
  const std::uint16_t magic = LoadU16(page.data());
  if (magic == 0) {
    return PaxPageReader(schema, page, 0, {});
  }
  if (magic != kPaxMagic) {
    return CorruptionError("bad PAX page magic");
  }
  const std::uint16_t count = LoadU16(page.data() + 2);
  const std::uint16_t ncols = LoadU16(page.data() + 4);
  if (ncols != schema->num_columns()) {
    return CorruptionError("PAX page column count does not match schema");
  }
  if (page.size() < HeaderBytes(*schema)) {
    return CorruptionError("PAX page truncated before minipage directory");
  }
  std::vector<std::uint32_t> offsets;
  offsets.reserve(ncols);
  for (int c = 0; c < ncols; ++c) {
    const std::uint32_t offset = LoadU16(page.data() + 8 + 2 * c);
    const std::uint64_t end =
        offset + static_cast<std::uint64_t>(count) * schema->column(c).width;
    if (offset < HeaderBytes(*schema) || end > page.size()) {
      return CorruptionError("PAX minipage outside the page");
    }
    offsets.push_back(offset);
  }
  return PaxPageReader(schema, page, count, std::move(offsets));
}

const std::byte* PaxPageReader::column_data(int col) const {
  SMARTSSD_CHECK_GE(col, 0);
  SMARTSSD_CHECK_LT(col, schema_->num_columns());
  return page_.data() + minipage_offsets_[static_cast<std::size_t>(col)];
}

}  // namespace smartssd::storage
