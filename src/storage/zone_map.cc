#include "storage/zone_map.h"

#include <cstring>
#include <limits>

#include "storage/nsm_page.h"
#include "storage/pax_page.h"

namespace smartssd::storage {

namespace {

std::int64_t ReadIntColumn(const Schema& schema, int col,
                           const std::byte* p) {
  if (schema.column(col).type == ColumnType::kInt32) {
    std::int32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  std::int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

Result<ZoneMap> ZoneMap::Build(
    const TableInfo& info,
    const std::function<Result<std::span<const std::byte>>(
        std::uint64_t page_index)>& read_page) {
  ZoneMap map;
  map.pages_ = info.page_count;
  const Schema& schema = info.schema;
  map.column_slots_.assign(static_cast<std::size_t>(schema.num_columns()),
                           -1);
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).type == ColumnType::kInt32 ||
        schema.column(c).type == ColumnType::kInt64) {
      map.column_slots_[static_cast<std::size_t>(c)] =
          map.tracked_columns_++;
    }
  }
  map.ranges_.assign(
      static_cast<std::size_t>(info.page_count) *
          static_cast<std::size_t>(map.tracked_columns_),
      Range{std::numeric_limits<std::int64_t>::max(),
            std::numeric_limits<std::int64_t>::min()});

  for (std::uint64_t p = 0; p < info.page_count; ++p) {
    SMARTSSD_ASSIGN_OR_RETURN(std::span<const std::byte> page,
                              read_page(p));
    SMARTSSD_RETURN_IF_ERROR(map.FoldPage(info, p, page));
  }
  return map;
}

Status ZoneMap::FoldPage(const TableInfo& info, std::uint64_t page_index,
                         std::span<const std::byte> page) {
  const Schema& schema = info.schema;
  Range* page_ranges =
      ranges_.data() +
      page_index * static_cast<std::uint64_t>(tracked_columns_);
  auto fold = [&](int col, const std::byte* value_bytes) {
    const int slot = column_slots_[static_cast<std::size_t>(col)];
    if (slot < 0) return;
    const std::int64_t v = ReadIntColumn(schema, col, value_bytes);
    Range& range = page_ranges[slot];
    range.min = std::min(range.min, v);
    range.max = std::max(range.max, v);
  };
  if (info.layout == PageLayout::kNsm) {
    SMARTSSD_ASSIGN_OR_RETURN(const NsmPageReader reader,
                              NsmPageReader::Open(&schema, page));
    for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
      const std::byte* tuple = reader.tuple(i);
      for (int c = 0; c < schema.num_columns(); ++c) {
        fold(c, tuple + schema.offset(c));
      }
    }
  } else {
    SMARTSSD_ASSIGN_OR_RETURN(const PaxPageReader reader,
                              PaxPageReader::Open(&schema, page));
    for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
      for (int c = 0; c < schema.num_columns(); ++c) {
        fold(c, reader.value(i, c));
      }
    }
  }
  return Status::OK();
}

Status ZoneMap::WidenFromPage(const TableInfo& info,
                              std::uint64_t page_index,
                              std::span<const std::byte> page) {
  if (page_index >= pages_) {
    pages_ = page_index + 1;
    ranges_.resize(
        static_cast<std::size_t>(pages_) *
            static_cast<std::size_t>(tracked_columns_),
        Range{std::numeric_limits<std::int64_t>::max(),
              std::numeric_limits<std::int64_t>::min()});
  }
  return FoldPage(info, page_index, page);
}

bool ZoneMap::TracksColumn(int col) const {
  return col >= 0 &&
         col < static_cast<int>(column_slots_.size()) &&
         column_slots_[static_cast<std::size_t>(col)] >= 0;
}

bool ZoneMap::PageMayMatch(std::uint64_t page_index, int col,
                           std::int64_t lo, std::int64_t hi) const {
  if (lo > hi) return false;  // empty query interval: no value lies in it
  if (!TracksColumn(col) || page_index >= pages_) return true;
  const Range& range =
      ranges_[page_index * static_cast<std::uint64_t>(tracked_columns_) +
              static_cast<std::uint64_t>(
                  column_slots_[static_cast<std::size_t>(col)])];
  if (range.min > range.max) return false;  // empty page
  return range.max >= lo && range.min <= hi;
}

Result<ZoneMap::Range> ZoneMap::PageRange(std::uint64_t page_index,
                                          int col) const {
  if (!TracksColumn(col)) {
    return InvalidArgumentError("zone map does not track this column");
  }
  if (page_index >= pages_) {
    return OutOfRangeError("zone map page index out of range");
  }
  return ranges_[page_index * static_cast<std::uint64_t>(tracked_columns_) +
                 static_cast<std::uint64_t>(
                     column_slots_[static_cast<std::size_t>(col)])];
}

}  // namespace smartssd::storage
