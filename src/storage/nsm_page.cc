#include "storage/nsm_page.h"

#include <cstring>

namespace smartssd::storage {

namespace {

std::uint16_t LoadU16(const std::byte* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void StoreU16(std::byte* p, std::uint16_t v) {
  std::memcpy(p, &v, sizeof(v));
}

}  // namespace

NsmPageBuilder::NsmPageBuilder(const Schema* schema, std::uint32_t page_size)
    : schema_(schema), page_size_(page_size) {
  SMARTSSD_CHECK(schema != nullptr);
  SMARTSSD_CHECK_GE(page_size, 64u);
  SMARTSSD_CHECK_LE(page_size, 65536u);
  buffer_.resize(page_size);
  Reset();
}

std::uint32_t NsmPageBuilder::capacity() const {
  return (page_size_ - 8) / (schema_->tuple_size() + 2);
}

bool NsmPageBuilder::Append(std::span<const std::byte> tuple) {
  SMARTSSD_CHECK_EQ(tuple.size(), schema_->tuple_size());
  const std::uint32_t needed_end = free_start_ + schema_->tuple_size();
  const std::uint32_t slot_begin =
      page_size_ - 2u * (static_cast<std::uint32_t>(count_) + 1);
  if (needed_end > slot_begin) return false;
  std::memcpy(buffer_.data() + free_start_, tuple.data(), tuple.size());
  StoreU16(buffer_.data() + page_size_ - 2 * (count_ + 1), free_start_);
  free_start_ = static_cast<std::uint16_t>(needed_end);
  ++count_;
  StoreU16(buffer_.data() + 2, count_);
  StoreU16(buffer_.data() + 4, free_start_);
  return true;
}

void NsmPageBuilder::Reset() {
  std::fill(buffer_.begin(), buffer_.end(), std::byte{0});
  count_ = 0;
  free_start_ = 8;
  StoreU16(buffer_.data() + 0, kNsmMagic);
  StoreU16(buffer_.data() + 2, 0);
  StoreU16(buffer_.data() + 4, free_start_);
}

Result<NsmPageReader> NsmPageReader::Open(const Schema* schema,
                                          std::span<const std::byte> page) {
  SMARTSSD_CHECK(schema != nullptr);
  if (page.size() < 8) {
    return CorruptionError("NSM page smaller than its header");
  }
  const std::uint16_t magic = LoadU16(page.data());
  if (magic == 0) {
    // Never-written page: empty.
    return NsmPageReader(schema, page, 0);
  }
  if (magic != kNsmMagic) {
    return CorruptionError("bad NSM page magic");
  }
  const std::uint16_t count = LoadU16(page.data() + 2);
  // Every slot and every tuple it points at must be in bounds.
  const std::size_t slots_bytes = 2u * count;
  if (8u + static_cast<std::size_t>(count) * schema->tuple_size() +
          slots_bytes >
      page.size()) {
    return CorruptionError("NSM page tuple count exceeds page capacity");
  }
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint16_t offset =
        LoadU16(page.data() + page.size() - 2 * (i + 1));
    if (offset < 8 ||
        offset + schema->tuple_size() > page.size() - slots_bytes) {
      return CorruptionError("NSM slot points outside the page");
    }
  }
  return NsmPageReader(schema, page, count);
}

const std::byte* NsmPageReader::tuple(std::uint16_t i) const {
  SMARTSSD_CHECK_LT(i, count_);
  const std::uint16_t offset =
      LoadU16(page_.data() + page_.size() - 2 * (i + 1));
  return page_.data() + offset;
}

void NsmPageReader::TuplePointers(const std::byte** out) const {
  const std::byte* base = page_.data();
  const std::byte* slot = base + page_.size() - 2;
  for (std::uint16_t i = 0; i < count_; ++i, slot -= 2) {
    out[i] = base + LoadU16(slot);
  }
}

}  // namespace smartssd::storage
