#ifndef SMARTSSD_STORAGE_SCHEMA_H_
#define SMARTSSD_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/types.h"

namespace smartssd::storage {

// A table schema: ordered, fixed-width columns with precomputed tuple
// offsets. Immutable after creation.
class Schema {
 public:
  static Result<Schema> Create(std::vector<Column> columns);

  // An empty placeholder schema (0 columns). Useful as the initial value
  // of aggregate members; Create() never produces one.
  Schema() : tuple_size_(0) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[i]; }
  std::uint32_t offset(int i) const { return offsets_[i]; }
  std::uint32_t tuple_size() const { return tuple_size_; }

  // Index of the named column, or NOT_FOUND.
  Result<int> FindColumn(std::string_view name) const;

  const std::vector<Column>& columns() const { return columns_; }

 private:
  Schema(std::vector<Column> columns, std::vector<std::uint32_t> offsets,
         std::uint32_t tuple_size)
      : columns_(std::move(columns)),
        offsets_(std::move(offsets)),
        tuple_size_(tuple_size) {}

  std::vector<Column> columns_;
  std::vector<std::uint32_t> offsets_;
  std::uint32_t tuple_size_;
};

}  // namespace smartssd::storage

#endif  // SMARTSSD_STORAGE_SCHEMA_H_
