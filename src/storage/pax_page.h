#ifndef SMARTSSD_STORAGE_PAX_PAGE_H_
#define SMARTSSD_STORAGE_PAX_PAGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "storage/schema.h"

namespace smartssd::storage {

// PAX page (Ailamaki et al., VLDB 2001 — the paper's reference [5]): all
// values of a column are grouped in a "minipage" within the page, so a
// predicate touching one column streams contiguous bytes instead of
// striding across whole tuples. Format:
//
//   [0..2)  magic 0x5041 ("PA")
//   [2..4)  tuple_count (u16)
//   [4..6)  num_columns (u16)
//   [6..8)  reserved
//   [8..8+2n) u16 minipage byte offset per column
//   minipages, each sized capacity * column_width
//
// Minipage offsets are fixed at build time from the page's capacity, so
// appending scatters each field to its column's next slot.
inline constexpr std::uint16_t kPaxMagic = 0x5041;

class PaxPageBuilder {
 public:
  PaxPageBuilder(const Schema* schema, std::uint32_t page_size);

  // Appends a tuple given in serialized row (NSM record) form; the
  // builder scatters fields into minipages. Returns false when full.
  bool Append(std::span<const std::byte> tuple);

  std::uint16_t tuple_count() const { return count_; }
  std::uint32_t capacity() const { return capacity_; }
  std::span<const std::byte> image() const { return buffer_; }
  void Reset();

 private:
  const Schema* schema_;
  std::uint32_t page_size_;
  std::uint32_t capacity_;
  std::vector<std::uint32_t> minipage_offsets_;
  std::vector<std::byte> buffer_;
  std::uint16_t count_ = 0;
};

class PaxPageReader {
 public:
  static Result<PaxPageReader> Open(const Schema* schema,
                                    std::span<const std::byte> page);

  std::uint16_t tuple_count() const { return count_; }

  // Start of column `col`'s minipage (values packed at column width).
  const std::byte* column_data(int col) const;

  // Pointer to the value of column `col` in row `row`.
  const std::byte* value(std::uint16_t row, int col) const {
    return column_data(col) +
           static_cast<std::size_t>(row) * schema_->column(col).width;
  }

 private:
  PaxPageReader(const Schema* schema, std::span<const std::byte> page,
                std::uint16_t count, std::vector<std::uint32_t> offsets)
      : schema_(schema),
        page_(page),
        count_(count),
        minipage_offsets_(std::move(offsets)) {}

  const Schema* schema_;
  std::span<const std::byte> page_;
  std::uint16_t count_;
  std::vector<std::uint32_t> minipage_offsets_;
};

// Max tuples a PAX page of `page_size` can hold for `schema`.
std::uint32_t PaxCapacity(const Schema& schema, std::uint32_t page_size);

}  // namespace smartssd::storage

#endif  // SMARTSSD_STORAGE_PAX_PAGE_H_
