#include "storage/catalog.h"

namespace smartssd::storage {

std::uint64_t TableInfo::bytes() const {
  return tuple_count * schema.tuple_size();
}

Result<const TableInfo*> Catalog::GetTable(std::string_view name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFoundError("no such table: " + std::string(name));
  }
  return &it->second;
}

Result<TableInfo*> Catalog::GetMutableTable(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFoundError("no such table: " + std::string(name));
  }
  return &it->second;
}

bool Catalog::HasTable(std::string_view name) const {
  return tables_.find(name) != tables_.end();
}

Status Catalog::AddTable(TableInfo info) {
  if (HasTable(info.name)) {
    return AlreadyExistsError("table already exists: " + info.name);
  }
  if (info.reserved_pages < info.page_count) {
    info.reserved_pages = info.page_count;
  }
  tables_.emplace(info.name, std::move(info));
  return Status::OK();
}

Result<std::uint64_t> Catalog::AllocateExtent(std::uint64_t pages) {
  if (next_lpn_ + pages > device_pages_) {
    return ResourceExhaustedError("device out of logical pages");
  }
  const std::uint64_t first = next_lpn_;
  next_lpn_ += pages;
  return first;
}

}  // namespace smartssd::storage
