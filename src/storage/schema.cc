#include "storage/schema.h"

#include <unordered_set>

namespace smartssd::storage {

Result<Schema> Schema::Create(std::vector<Column> columns) {
  if (columns.empty()) {
    return InvalidArgumentError("schema must have at least one column");
  }
  std::unordered_set<std::string_view> names;
  std::vector<std::uint32_t> offsets;
  offsets.reserve(columns.size());
  std::uint32_t offset = 0;
  for (const Column& column : columns) {
    if (column.name.empty()) {
      return InvalidArgumentError("column name must not be empty");
    }
    if (!names.insert(column.name).second) {
      return InvalidArgumentError("duplicate column name: " + column.name);
    }
    switch (column.type) {
      case ColumnType::kInt32:
        if (column.width != 4) {
          return InvalidArgumentError("INT32 column width must be 4");
        }
        break;
      case ColumnType::kInt64:
        if (column.width != 8) {
          return InvalidArgumentError("INT64 column width must be 8");
        }
        break;
      case ColumnType::kFixedChar:
        if (column.width == 0 || column.width > 4096) {
          return InvalidArgumentError("CHAR width must be in [1, 4096]");
        }
        break;
    }
    offsets.push_back(offset);
    offset += column.width;
  }
  return Schema(std::move(columns), std::move(offsets), offset);
}

Result<int> Schema::FindColumn(std::string_view name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[static_cast<std::size_t>(i)].name == name) return i;
  }
  return NotFoundError("no such column: " + std::string(name));
}

}  // namespace smartssd::storage
