#ifndef SMARTSSD_STORAGE_ZONE_MAP_H_
#define SMARTSSD_STORAGE_ZONE_MAP_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/result.h"
#include "storage/catalog.h"

namespace smartssd::storage {

// Per-page min/max statistics ("zone maps") for every integer column of
// a table — the lightweight in-storage index the paper's discussion of
// storage-layout impact points toward. Built once after bulk load; a
// scan with a range predicate on a tracked column can then skip every
// page whose [min, max] cannot match.
//
// The structure is a few bytes per page per column, so it fits easily
// in device DRAM: pushdown programs prune their input extents with it
// (in-SSD indexing), and the host executor prunes its read requests —
// the same statistics serve both sides.
class ZoneMap {
 public:
  struct Range {
    std::int64_t min = 0;
    std::int64_t max = 0;
  };

  // Builds statistics by scanning the table's pages via `read_page`
  // (page indexes are table-relative).
  static Result<ZoneMap> Build(
      const TableInfo& info,
      const std::function<Result<std::span<const std::byte>>(
          std::uint64_t page_index)>& read_page);

  // True if page `page_index` (table-relative) may hold a row whose
  // `col` value lies in [lo, hi]. Untracked columns always may match.
  bool PageMayMatch(std::uint64_t page_index, int col, std::int64_t lo,
                    std::int64_t hi) const;

  // The page's [min, max] for a tracked column.
  Result<Range> PageRange(std::uint64_t page_index, int col) const;

  // Widens page statistics from a fresh page image after a write.
  // Grows the map (with empty-page sentinels) when `page_index` is past
  // the last tracked page, so appends into reserved extent headroom are
  // covered. Widening is sound but lossy for in-place updates: ranges
  // only grow, so pruning stays correct while a full Build would be
  // tighter.
  Status WidenFromPage(const TableInfo& info, std::uint64_t page_index,
                       std::span<const std::byte> page);

  bool TracksColumn(int col) const;
  std::uint64_t pages() const { return pages_; }
  std::uint64_t memory_bytes() const {
    return ranges_.size() * sizeof(Range);
  }

 private:
  ZoneMap() = default;

  // Folds every row of `page` into the page's ranges (min/max widen).
  Status FoldPage(const TableInfo& info, std::uint64_t page_index,
                  std::span<const std::byte> page);

  std::uint64_t pages_ = 0;
  std::vector<int> column_slots_;  // schema col -> slot or -1
  int tracked_columns_ = 0;
  // ranges_[page * tracked_columns_ + slot]
  std::vector<Range> ranges_;
};

}  // namespace smartssd::storage

#endif  // SMARTSSD_STORAGE_ZONE_MAP_H_
