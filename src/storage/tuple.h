#ifndef SMARTSSD_STORAGE_TUPLE_H_
#define SMARTSSD_STORAGE_TUPLE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

#include "common/macros.h"
#include "storage/schema.h"

namespace smartssd::storage {

// Reads typed fields from a serialized fixed-length tuple. Values are
// little-endian in page images (we memcpy, so the in-memory and on-page
// representations match on every platform this builds for).
class TupleReader {
 public:
  TupleReader(const Schema* schema, const std::byte* tuple)
      : schema_(schema), tuple_(tuple) {}

  std::int32_t GetInt32(int col) const {
    std::int32_t v;
    std::memcpy(&v, tuple_ + schema_->offset(col), sizeof(v));
    return v;
  }

  std::int64_t GetInt64(int col) const {
    std::int64_t v;
    std::memcpy(&v, tuple_ + schema_->offset(col), sizeof(v));
    return v;
  }

  std::string_view GetChar(int col) const {
    return {reinterpret_cast<const char*>(tuple_ + schema_->offset(col)),
            schema_->column(col).width};
  }

  const std::byte* raw() const { return tuple_; }

 private:
  const Schema* schema_;
  const std::byte* tuple_;
};

// Writes typed fields into a serialized tuple buffer.
class TupleWriter {
 public:
  TupleWriter(const Schema* schema, std::span<std::byte> buffer)
      : schema_(schema), buffer_(buffer) {
    SMARTSSD_CHECK_GE(buffer.size(), schema->tuple_size());
  }

  void SetInt32(int col, std::int32_t v) {
    SMARTSSD_CHECK(schema_->column(col).type == ColumnType::kInt32);
    std::memcpy(buffer_.data() + schema_->offset(col), &v, sizeof(v));
  }

  void SetInt64(int col, std::int64_t v) {
    SMARTSSD_CHECK(schema_->column(col).type == ColumnType::kInt64);
    std::memcpy(buffer_.data() + schema_->offset(col), &v, sizeof(v));
  }

  // Copies an already-serialized tuple of the same schema wholesale
  // (used when replaying materialized rows, e.g. partitioned loads).
  void CopyFrom(std::span<const std::byte> tuple) {
    SMARTSSD_CHECK_EQ(tuple.size(), schema_->tuple_size());
    std::memcpy(buffer_.data(), tuple.data(), tuple.size());
  }

  // Copies `s` into the CHAR field, space-padding or truncating to width.
  void SetChar(int col, std::string_view s) {
    const Column& column = schema_->column(col);
    SMARTSSD_CHECK(column.type == ColumnType::kFixedChar);
    std::byte* dst = buffer_.data() + schema_->offset(col);
    const std::size_t n =
        s.size() < column.width ? s.size() : column.width;
    std::memcpy(dst, s.data(), n);
    std::memset(dst + n, ' ', column.width - n);
  }

 private:
  const Schema* schema_;
  std::span<std::byte> buffer_;
};

}  // namespace smartssd::storage

#endif  // SMARTSSD_STORAGE_TUPLE_H_
