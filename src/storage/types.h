#ifndef SMARTSSD_STORAGE_TYPES_H_
#define SMARTSSD_STORAGE_TYPES_H_

#include <cstdint>
#include <string>

namespace smartssd::storage {

// Column types. Following the paper's workload modifications (Section
// 4.1.1), every type is fixed-length: variable-length strings become
// fixed CHAR(n), decimals are stored as integers scaled by 100, and dates
// as days since an epoch. This makes every tuple fixed-length, which both
// page codecs exploit.
enum class ColumnType : std::uint8_t {
  kInt32,      // also dates (days) and scaled decimals that fit
  kInt64,      // keys and larger scaled decimals
  kFixedChar,  // CHAR(n), space-padded
};

inline const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt32:
      return "INT32";
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kFixedChar:
      return "CHAR";
  }
  return "?";
}

struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt32;
  // Byte width: 4 for kInt32, 8 for kInt64, n for kFixedChar(n).
  std::uint32_t width = 4;

  static Column Int32(std::string name) {
    return Column{std::move(name), ColumnType::kInt32, 4};
  }
  static Column Int64(std::string name) {
    return Column{std::move(name), ColumnType::kInt64, 8};
  }
  static Column FixedChar(std::string name, std::uint32_t n) {
    return Column{std::move(name), ColumnType::kFixedChar, n};
  }
};

// Page layouts the paper compares (Section 4.1.1): classic N-ary slotted
// pages, and PAX, which groups each column's values in a minipage.
enum class PageLayout : std::uint8_t { kNsm = 0, kPax = 1 };

inline const char* PageLayoutName(PageLayout layout) {
  return layout == PageLayout::kNsm ? "NSM" : "PAX";
}

}  // namespace smartssd::storage

#endif  // SMARTSSD_STORAGE_TYPES_H_
