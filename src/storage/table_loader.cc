#include "storage/table_loader.h"

#include <vector>

#include "storage/nsm_page.h"
#include "storage/pax_page.h"

namespace smartssd::storage {

namespace {
// Pages per write command during bulk load (matches the 256 KB I/Os the
// paper uses for sequential bandwidth).
constexpr std::uint32_t kLoadBatchPages = 32;
}  // namespace

TableLoader::TableLoader(ssd::BlockDevice* device, Catalog* catalog)
    : device_(device), catalog_(catalog) {
  SMARTSSD_CHECK(device != nullptr);
  SMARTSSD_CHECK(catalog != nullptr);
}

Result<TableInfo> TableLoader::Load(std::string name, const Schema& schema,
                                    PageLayout layout,
                                    std::uint64_t row_count,
                                    const RowGenerator& generator,
                                    std::uint64_t reserve_extra_pages) {
  if (catalog_->HasTable(name)) {
    return AlreadyExistsError("table already exists: " + name);
  }
  const std::uint32_t page_size = device_->page_size();
  const std::uint32_t capacity =
      layout == PageLayout::kNsm
          ? NsmPageBuilder(&schema, page_size).capacity()
          : PaxCapacity(schema, page_size);
  if (capacity == 0) {
    return InvalidArgumentError("tuple does not fit in a page: " + name);
  }
  const std::uint64_t page_count =
      row_count == 0 ? 1 : (row_count + capacity - 1) / capacity;
  const std::uint64_t extent_pages = page_count + reserve_extra_pages;
  SMARTSSD_ASSIGN_OR_RETURN(const std::uint64_t first_lpn,
                            catalog_->AllocateExtent(extent_pages));

  NsmPageBuilder nsm(&schema, page_size);
  PaxPageBuilder pax(&schema, page_size);
  std::vector<std::byte> tuple(schema.tuple_size());
  std::vector<std::byte> batch(
      static_cast<std::size_t>(kLoadBatchPages) * page_size);
  std::uint32_t batch_fill = 0;
  std::uint64_t next_lpn = first_lpn;
  SimTime t = 0;

  auto flush_batch = [&]() -> Status {
    if (batch_fill == 0) return Status::OK();
    auto written = device_->WritePages(
        next_lpn, batch_fill,
        std::span<const std::byte>(batch.data(),
                                   static_cast<std::size_t>(batch_fill) *
                                       page_size),
        t);
    SMARTSSD_RETURN_IF_ERROR(written.status());
    t = written.value();
    next_lpn += batch_fill;
    batch_fill = 0;
    return Status::OK();
  };

  auto seal_page = [&](std::span<const std::byte> image) -> Status {
    std::copy(image.begin(), image.end(),
              batch.begin() +
                  static_cast<std::size_t>(batch_fill) * page_size);
    ++batch_fill;
    if (batch_fill == kLoadBatchPages) return flush_batch();
    return Status::OK();
  };

  for (std::uint64_t row = 0; row < row_count; ++row) {
    TupleWriter writer(&schema, tuple);
    generator(row, writer);
    const bool appended = layout == PageLayout::kNsm
                              ? nsm.Append(tuple)
                              : pax.Append(tuple);
    if (!appended) {
      if (layout == PageLayout::kNsm) {
        SMARTSSD_RETURN_IF_ERROR(seal_page(nsm.image()));
        nsm.Reset();
        SMARTSSD_CHECK(nsm.Append(tuple));
      } else {
        SMARTSSD_RETURN_IF_ERROR(seal_page(pax.image()));
        pax.Reset();
        SMARTSSD_CHECK(pax.Append(tuple));
      }
    }
  }
  if (layout == PageLayout::kNsm && nsm.tuple_count() > 0) {
    SMARTSSD_RETURN_IF_ERROR(seal_page(nsm.image()));
  } else if (layout == PageLayout::kPax && pax.tuple_count() > 0) {
    SMARTSSD_RETURN_IF_ERROR(seal_page(pax.image()));
  }
  SMARTSSD_RETURN_IF_ERROR(flush_batch());

  TableInfo info{.name = std::move(name),
                 .schema = schema,
                 .layout = layout,
                 .first_lpn = first_lpn,
                 .page_count = next_lpn - first_lpn,
                 .tuple_count = row_count,
                 .tuples_per_page = capacity,
                 .reserved_pages = extent_pages};
  SMARTSSD_RETURN_IF_ERROR(catalog_->AddTable(info));
  return info;
}

}  // namespace smartssd::storage
