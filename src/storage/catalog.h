#ifndef SMARTSSD_STORAGE_CATALOG_H_
#define SMARTSSD_STORAGE_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/macros.h"
#include "common/result.h"
#include "storage/schema.h"
#include "storage/types.h"

namespace smartssd::storage {

// Everything the engine needs to know about a stored table. Tables are
// bulk-loaded once into a contiguous extent of logical pages (a heap
// file without a clustered index, as in Section 4.1.1).
struct TableInfo {
  std::string name;
  Schema schema;
  PageLayout layout = PageLayout::kNsm;
  std::uint64_t first_lpn = 0;
  std::uint64_t page_count = 0;
  std::uint64_t tuple_count = 0;
  std::uint32_t tuples_per_page = 0;  // page capacity for this schema
  // Total pages of the table's extent, >= page_count. Appends grow
  // page_count into the reserved headroom; tables loaded without
  // reservation have reserved_pages == page_count and reject appends
  // once full.
  std::uint64_t reserved_pages = 0;

  std::uint64_t bytes() const;
};

// Table directory plus a bump allocator over the device's logical page
// space.
class Catalog {
 public:
  explicit Catalog(std::uint64_t device_pages)
      : device_pages_(device_pages) {}
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(Catalog);

  Result<const TableInfo*> GetTable(std::string_view name) const;
  // Mutable view for the write path (appends advance page_count and
  // tuple_count in place; the extent itself never moves).
  Result<TableInfo*> GetMutableTable(std::string_view name);
  Status AddTable(TableInfo info);
  bool HasTable(std::string_view name) const;

  // Reserves `pages` consecutive logical pages; returns the first LPN.
  Result<std::uint64_t> AllocateExtent(std::uint64_t pages);

  std::uint64_t pages_allocated() const { return next_lpn_; }
  std::uint64_t device_pages() const { return device_pages_; }

  const std::map<std::string, TableInfo, std::less<>>& tables() const {
    return tables_;
  }

 private:
  std::uint64_t device_pages_;
  std::uint64_t next_lpn_ = 0;
  std::map<std::string, TableInfo, std::less<>> tables_;
};

}  // namespace smartssd::storage

#endif  // SMARTSSD_STORAGE_CATALOG_H_
