#ifndef SMARTSSD_STORAGE_NSM_PAGE_H_
#define SMARTSSD_STORAGE_NSM_PAGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "storage/schema.h"

namespace smartssd::storage {

// Classic N-ary slotted page (the paper's default SQL Server heap
// layout). Format:
//
//   [0..2)  magic 0x4E53 ("NS")
//   [2..4)  tuple_count (u16)
//   [4..6)  free_start  (u16) — next byte available for tuple data
//   [6..8)  reserved
//   [8..)   tuple records, packed forward
//   ...
//   slot directory growing backward from the page end: slot i is a u16
//   at page_size - 2*(i+1) holding the byte offset of tuple i.
//
// Tuples are fixed-length here (see types.h), but the slot directory is
// kept anyway: it is what the real system scans, and its 2 bytes/tuple
// overhead is part of the NSM-vs-PAX capacity difference.
inline constexpr std::uint16_t kNsmMagic = 0x4E53;

class NsmPageBuilder {
 public:
  NsmPageBuilder(const Schema* schema, std::uint32_t page_size);

  // Appends a serialized tuple; returns false when the page is full.
  bool Append(std::span<const std::byte> tuple);

  std::uint16_t tuple_count() const { return count_; }

  // Max tuples this page can hold.
  std::uint32_t capacity() const;

  // Finalized page image (always exactly page_size bytes).
  std::span<const std::byte> image() const { return buffer_; }

  void Reset();

 private:
  const Schema* schema_;
  std::uint32_t page_size_;
  std::vector<std::byte> buffer_;
  std::uint16_t count_ = 0;
  std::uint16_t free_start_ = 8;
};

class NsmPageReader {
 public:
  // Validates the header; a zeroed (never written) page reads as empty.
  static Result<NsmPageReader> Open(const Schema* schema,
                                    std::span<const std::byte> page);

  std::uint16_t tuple_count() const { return count_; }

  // Pointer to tuple i's record (fixed schema->tuple_size() bytes).
  const std::byte* tuple(std::uint16_t i) const;

  // Fills `out` (tuple_count() entries) with every tuple's record
  // pointer in one slot-directory walk — the gather step of the batch
  // kernel. Offsets were bounds-checked in Open().
  void TuplePointers(const std::byte** out) const;

 private:
  NsmPageReader(const Schema* schema, std::span<const std::byte> page,
                std::uint16_t count)
      : schema_(schema), page_(page), count_(count) {}

  const Schema* schema_;
  std::span<const std::byte> page_;
  std::uint16_t count_;
};

}  // namespace smartssd::storage

#endif  // SMARTSSD_STORAGE_NSM_PAGE_H_
