#ifndef SMARTSSD_STORAGE_TABLE_LOADER_H_
#define SMARTSSD_STORAGE_TABLE_LOADER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/macros.h"
#include "common/result.h"
#include "ssd/block_device.h"
#include "storage/catalog.h"
#include "storage/tuple.h"

namespace smartssd::storage {

// Fills one tuple of the table; called once per row in row order.
using RowGenerator =
    std::function<void(std::uint64_t row, TupleWriter& writer)>;

// Bulk loader: serializes rows into NSM or PAX pages and writes them to
// the device in multi-page commands. Loading happens on the virtual
// clock like everything else, but callers typically reset device timing
// afterwards so that measured queries start from an idle device (the
// paper's experiments are cold runs on preloaded tables).
class TableLoader {
 public:
  TableLoader(ssd::BlockDevice* device, Catalog* catalog);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(TableLoader);

  // `reserve_extra_pages` grows the table's extent past what `row_count`
  // needs, leaving headroom the append path can grow page_count into.
  Result<TableInfo> Load(std::string name, const Schema& schema,
                         PageLayout layout, std::uint64_t row_count,
                         const RowGenerator& generator,
                         std::uint64_t reserve_extra_pages = 0);

 private:
  ssd::BlockDevice* device_;
  Catalog* catalog_;
};

}  // namespace smartssd::storage

#endif  // SMARTSSD_STORAGE_TABLE_LOADER_H_
