#include "flash/flash_array.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace smartssd::flash {

FlashArray::FlashArray(const Geometry& geometry, const Timings& timings,
                       const Reliability& reliability)
    : geometry_(geometry),
      timings_(timings),
      reliability_(reliability),
      error_rng_(reliability.seed),
      store_(geometry) {
  SMARTSSD_CHECK(geometry.Valid());
  blocks_.resize(static_cast<std::size_t>(geometry.total_blocks()));
  for (std::uint64_t i = 0; i < geometry.total_chips(); ++i) {
    chips_.push_back(
        std::make_unique<sim::RateServer>("chip" + std::to_string(i)));
  }
  for (int i = 0; i < geometry.channels; ++i) {
    channels_.push_back(
        std::make_unique<sim::RateServer>("chan" + std::to_string(i)));
  }
  const SimDuration bus = TransferTime(geometry.page_size_bytes,
                                       timings.channel_bytes_per_second);
  // ECC decoding is pipelined with the bus transfer in the channel
  // controller; the slower of the two paces the channel.
  page_transfer_time_ = std::max(bus, timings.ecc_per_page);
}

void FlashArray::AttachTracer(obs::Tracer* tracer,
                              std::string_view process) {
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    channels_[i]->AttachTracer(tracer, process,
                               "flash chan " + std::to_string(i));
  }
}

void FlashArray::AttachMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_reads_ = nullptr;
    m_corrected_ = nullptr;
    m_retries_ = nullptr;
    m_uncorrectable_ = nullptr;
    m_read_latency_ = nullptr;
    return;
  }
  m_reads_ = metrics->counter("flash.page_reads");
  m_corrected_ = metrics->counter("flash.ecc_corrected");
  m_retries_ = metrics->counter("flash.ecc_retries");
  m_uncorrectable_ = metrics->counter("flash.uncorrectable_reads");
  m_read_latency_ = metrics->histogram("flash.page_read_ns");
}

Status FlashArray::CheckAddress(const PageAddress& addr) const {
  if (!InBounds(geometry_, addr)) {
    return OutOfRangeError("flash page address out of bounds");
  }
  return Status::OK();
}

std::uint32_t FlashArray::SampleBitErrors(std::uint32_t attempt) {
  if (reliability_.raw_bit_error_rate <= 0.0) return 0;
  // Read-retry with adjusted thresholds roughly halves the raw error
  // rate per attempt.
  const double rate =
      reliability_.raw_bit_error_rate / static_cast<double>(1u << attempt);
  const double lambda =
      rate * 8.0 * static_cast<double>(geometry_.page_size_bytes);
  // Poisson sampling: inversion for small lambda, normal approximation
  // for large (where exact shape no longer matters).
  if (lambda > 64.0) {
    // Mean +/- a couple of sigmas via averaging uniforms (CLT).
    double sum = 0;
    for (int i = 0; i < 12; ++i) sum += error_rng_.NextDouble();
    const double gaussian = sum - 6.0;  // ~N(0,1)
    const double v = lambda + gaussian * std::sqrt(lambda);
    return v < 0 ? 0 : static_cast<std::uint32_t>(v);
  }
  const double limit = std::exp(-lambda);
  std::uint32_t k = 0;
  double product = error_rng_.NextDouble();
  while (product > limit) {
    ++k;
    product *= error_rng_.NextDouble();
  }
  return k;
}

Result<SimTime> FlashArray::ReadPageTiming(const PageAddress& addr,
                                           SimTime ready) {
  SMARTSSD_RETURN_IF_ERROR(CheckAddress(addr));
  sim::RateServer& chip = *chips_[ChipIndex(geometry_, addr)];
  sim::RateServer& channel = *channels_[addr.channel];
  obs::Tracer* tracer = channel.tracer();
  SimTime sensed = chip.Serve(ready, timings_.read_page);
  SimTime at_controller =
      channel.Serve(sensed, page_transfer_time_, "page read");
  ++reads_;
  obs::BumpCounter(m_reads_);

  // Injected uncorrectable read: the controller still pays for its full
  // retry ladder (threshold-adjusted re-senses) before declaring the
  // page lost, so the failure costs the retry penalty on the clock.
  if (fault_injector_ != nullptr &&
      fault_injector_->OnPageRead(sim::FaultKind::kUncorrectableRead,
                                  at_controller)) {
    for (std::uint32_t a = 0; a < reliability_.max_read_retries; ++a) {
      ++read_retries_;
      obs::BumpCounter(m_retries_);
      sensed = chip.Serve(at_controller,
                          timings_.read_page + reliability_.retry_penalty);
      at_controller =
          channel.Serve(sensed, page_transfer_time_, "ecc retry");
    }
    ++uncorrectable_reads_;
    obs::BumpCounter(m_uncorrectable_);
    if (tracer != nullptr) {
      tracer->Instant(channel.track(), "uncorrectable page", "flash",
                      at_controller);
    }
    return CorruptionError(
        "uncorrectable flash read (injected fault, ECC exhausted retries)");
  }

  // ECC: correct raw bit errors, retrying the sense with adjusted
  // thresholds when the error count exceeds the correction strength.
  std::uint32_t errors = SampleBitErrors(0);
  if (errors > 0 && errors <= reliability_.ecc_correctable_bits) {
    ++reads_corrected_;
    obs::BumpCounter(m_corrected_);
  }
  std::uint32_t attempt = 0;
  while (errors > reliability_.ecc_correctable_bits) {
    if (attempt >= reliability_.max_read_retries) {
      ++uncorrectable_reads_;
      obs::BumpCounter(m_uncorrectable_);
      if (tracer != nullptr) {
        tracer->Instant(channel.track(), "uncorrectable page", "flash",
                        at_controller);
      }
      return CorruptionError(
          "uncorrectable flash read (ECC exhausted retries)");
    }
    ++attempt;
    ++read_retries_;
    obs::BumpCounter(m_retries_);
    sensed = chip.Serve(at_controller,
                        timings_.read_page + reliability_.retry_penalty);
    at_controller = channel.Serve(sensed, page_transfer_time_, "ecc retry");
    errors = SampleBitErrors(attempt);
  }
  obs::RecordHistogram(m_read_latency_, at_controller - ready);
  return at_controller;
}

Result<SimTime> FlashArray::ReadPage(const PageAddress& addr, SimTime ready,
                                     std::span<std::byte> out) {
  SMARTSSD_ASSIGN_OR_RETURN(SimTime done, ReadPageTiming(addr, ready));
  if (!out.empty()) {
    SMARTSSD_RETURN_IF_ERROR(store_.Read(PageIndex(geometry_, addr), out));
  }
  return done;
}

Result<SimTime> FlashArray::ProgramPage(const PageAddress& addr,
                                        std::span<const std::byte> data,
                                        SimTime ready) {
  SMARTSSD_RETURN_IF_ERROR(CheckAddress(addr));
  if (data.size() > geometry_.page_size_bytes) {
    return InvalidArgumentError("program data larger than a flash page");
  }
  BlockState& block = blocks_[BlockIndex(geometry_, addr)];
  if (block.write_pointer >= geometry_.pages_per_block) {
    return FailedPreconditionError("program to a full block");
  }
  if (addr.page != block.write_pointer) {
    return FailedPreconditionError(
        "NAND pages must be programmed sequentially within a block");
  }
  // Data crosses the channel bus first, then the chip programs it.
  sim::RateServer& chip = *chips_[ChipIndex(geometry_, addr)];
  sim::RateServer& channel = *channels_[addr.channel];
  const SimTime at_chip = channel.Serve(ready, page_transfer_time_);
  const SimTime done = chip.Serve(at_chip, timings_.program_page);
  SMARTSSD_RETURN_IF_ERROR(store_.Program(PageIndex(geometry_, addr), data));
  ++block.write_pointer;
  ++programs_;
  return done;
}

Result<SimTime> FlashArray::EraseBlock(int channel, int chip,
                                       std::uint32_t block, SimTime ready) {
  PageAddress addr{channel, chip, block, 0};
  SMARTSSD_RETURN_IF_ERROR(CheckAddress(addr));
  BlockState& state = blocks_[BlockIndex(geometry_, addr)];
  sim::RateServer& chip_server = *chips_[ChipIndex(geometry_, addr)];
  const SimTime done = chip_server.Serve(ready, timings_.erase_block);
  store_.EraseRange(PageIndex(geometry_, addr), geometry_.pages_per_block);
  state.write_pointer = 0;
  ++state.erase_count;
  ++erases_;
  return done;
}

SimDuration FlashArray::total_channel_busy() const {
  SimDuration total = 0;
  for (const auto& c : channels_) total += c->busy_time();
  return total;
}

SimDuration FlashArray::total_chip_busy() const {
  SimDuration total = 0;
  for (const auto& c : chips_) total += c->busy_time();
  return total;
}

void FlashArray::ResetTiming() {
  for (auto& c : chips_) c->Reset();
  for (auto& c : channels_) c->Reset();
}

}  // namespace smartssd::flash
