#ifndef SMARTSSD_FLASH_GEOMETRY_H_
#define SMARTSSD_FLASH_GEOMETRY_H_

#include <cstdint>

#include "common/macros.h"
#include "common/units.h"

namespace smartssd::flash {

// Physical layout of the NAND array. Mirrors the architecture in the
// paper's Figure 2: multiple channels, multiple chips per channel, blocks
// of pages per chip. Erase granularity is a block; read/program granularity
// is a page.
struct Geometry {
  int channels = 8;
  int chips_per_channel = 4;
  std::uint32_t blocks_per_chip = 256;
  std::uint32_t pages_per_block = 128;
  std::uint32_t page_size_bytes = 8 * kKiB;

  std::uint64_t pages_per_chip() const {
    return static_cast<std::uint64_t>(blocks_per_chip) * pages_per_block;
  }
  std::uint64_t total_chips() const {
    return static_cast<std::uint64_t>(channels) * chips_per_channel;
  }
  std::uint64_t total_blocks() const {
    return total_chips() * blocks_per_chip;
  }
  std::uint64_t total_pages() const {
    return total_chips() * pages_per_chip();
  }
  std::uint64_t capacity_bytes() const {
    return total_pages() * page_size_bytes;
  }

  bool Valid() const {
    return channels > 0 && chips_per_channel > 0 && blocks_per_chip > 0 &&
           pages_per_block > 0 && page_size_bytes > 0;
  }
};

// NAND operation timings and channel characteristics. Defaults are
// MLC-class numbers consistent with the paper's 2013-era device.
struct Timings {
  SimDuration read_page = 75 * kMicrosecond;     // tR
  SimDuration program_page = 800 * kMicrosecond;  // tPROG
  SimDuration erase_block = 2 * kMillisecond;     // tBERS
  // ONFI-style channel bus payload bandwidth, per channel.
  std::uint64_t channel_bytes_per_second = 330 * kMB;
  // ECC decode cost, charged per page on the channel controller and
  // pipelined with the bus transfer (we take the max of the two).
  SimDuration ecc_per_page = 6 * kMicrosecond;
};

// NAND reliability model: raw bit errors per read, corrected by the
// flash controller's ECC (Section 2 names ECC as a key controller
// function). Reads whose raw error count exceeds the correction
// strength are retried with adjusted read thresholds (each retry pays a
// latency penalty and roughly halves the error count); a page that
// still fails after the retry budget is an uncorrectable read. The
// default rate is zero, so performance experiments are unaffected;
// reliability tests and failure-injection runs turn it up.
struct Reliability {
  double raw_bit_error_rate = 0.0;  // per bit, per read
  std::uint32_t ecc_correctable_bits = 40;  // BCH-class, per page
  std::uint32_t max_read_retries = 3;
  SimDuration retry_penalty = 100 * kMicrosecond;
  std::uint64_t seed = 0x5eed;
};

// Physical page address.
struct PageAddress {
  int channel = 0;
  int chip = 0;          // within channel
  std::uint32_t block = 0;  // within chip
  std::uint32_t page = 0;   // within block

  friend bool operator==(const PageAddress&, const PageAddress&) = default;
};

// Flat index helpers ----------------------------------------------------

inline std::uint64_t ChipIndex(const Geometry& g, const PageAddress& a) {
  return static_cast<std::uint64_t>(a.channel) * g.chips_per_channel +
         a.chip;
}

inline std::uint64_t BlockIndex(const Geometry& g, const PageAddress& a) {
  return ChipIndex(g, a) * g.blocks_per_chip + a.block;
}

inline std::uint64_t PageIndex(const Geometry& g, const PageAddress& a) {
  return BlockIndex(g, a) * g.pages_per_block + a.page;
}

inline PageAddress AddressFromPageIndex(const Geometry& g,
                                        std::uint64_t page_index) {
  PageAddress a;
  a.page = static_cast<std::uint32_t>(page_index % g.pages_per_block);
  std::uint64_t rest = page_index / g.pages_per_block;
  a.block = static_cast<std::uint32_t>(rest % g.blocks_per_chip);
  rest /= g.blocks_per_chip;
  a.chip = static_cast<int>(rest % g.chips_per_channel);
  a.channel = static_cast<int>(rest / g.chips_per_channel);
  return a;
}

inline bool InBounds(const Geometry& g, const PageAddress& a) {
  return a.channel >= 0 && a.channel < g.channels && a.chip >= 0 &&
         a.chip < g.chips_per_channel && a.block < g.blocks_per_chip &&
         a.page < g.pages_per_block;
}

}  // namespace smartssd::flash

#endif  // SMARTSSD_FLASH_GEOMETRY_H_
