#ifndef SMARTSSD_FLASH_BACKING_STORE_H_
#define SMARTSSD_FLASH_BACKING_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "flash/geometry.h"

namespace smartssd::flash {

// Holds the actual bytes of every programmed physical page. Pages are
// allocated lazily: an erased (never-programmed) page has no buffer.
// The simulator is execution-driven — queries run over these real bytes —
// so the store is the ground truth for data content, while the timing
// model is the ground truth for when those bytes become visible.
class BackingStore {
 public:
  explicit BackingStore(const Geometry& geometry)
      : geometry_(geometry),
        pages_(static_cast<std::size_t>(geometry.total_pages())) {}
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(BackingStore);

  std::uint32_t page_size() const { return geometry_.page_size_bytes; }

  bool IsProgrammed(std::uint64_t page_index) const {
    return pages_[page_index] != nullptr;
  }

  // Copies `data` into the page. `data` may be shorter than a page; the
  // remainder is zero-filled (matching a partially used final page).
  // These are I/O paths reachable from injected faults and firmware bugs,
  // so violations surface as Status instead of aborting the process.
  Status Program(std::uint64_t page_index, std::span<const std::byte> data) {
    if (data.size() > page_size()) {
      return InvalidArgumentError("backing store: data larger than a page");
    }
    auto& slot = pages_[page_index];
    if (slot != nullptr) {
      // NAND rule: a programmed page must be erased before reprogramming.
      return FailedPreconditionError(
          "backing store: program over a programmed page");
    }
    slot = std::make_unique<std::byte[]>(page_size());
    std::copy(data.begin(), data.end(), slot.get());
    std::fill(slot.get() + data.size(), slot.get() + page_size(),
              std::byte{0});
    allocated_bytes_ += page_size();
    return Status::OK();
  }

  // Copies the page contents into `out` (must be >= page_size). An erased
  // page reads as zeros.
  Status Read(std::uint64_t page_index, std::span<std::byte> out) const {
    if (out.size() < page_size()) {
      return InvalidArgumentError(
          "backing store: output buffer smaller than a page");
    }
    const auto& slot = pages_[page_index];
    if (slot == nullptr) {
      std::fill(out.begin(), out.begin() + page_size(), std::byte{0});
      return Status::OK();
    }
    std::copy(slot.get(), slot.get() + page_size(), out.begin());
    return Status::OK();
  }

  // Zero-copy view of a programmed page, or empty span for an erased one.
  // Valid until the containing block is erased.
  std::span<const std::byte> View(std::uint64_t page_index) const {
    const auto& slot = pages_[page_index];
    if (slot == nullptr) return {};
    return {slot.get(), page_size()};
  }

  // Drops the contents of every page in [first_page, first_page + count).
  void EraseRange(std::uint64_t first_page, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      auto& slot = pages_[first_page + i];
      if (slot != nullptr) {
        allocated_bytes_ -= page_size();
        slot.reset();
      }
    }
  }

  std::uint64_t allocated_bytes() const { return allocated_bytes_; }

 private:
  Geometry geometry_;
  std::vector<std::unique_ptr<std::byte[]>> pages_;
  std::uint64_t allocated_bytes_ = 0;
};

}  // namespace smartssd::flash

#endif  // SMARTSSD_FLASH_BACKING_STORE_H_
