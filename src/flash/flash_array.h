#ifndef SMARTSSD_FLASH_FLASH_ARRAY_H_
#define SMARTSSD_FLASH_FLASH_ARRAY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/units.h"
#include "flash/backing_store.h"
#include "flash/geometry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fault_injector.h"
#include "sim/rate_server.h"

namespace smartssd::flash {

// Per-block NAND state tracked by the array: pages within a block must be
// programmed in order, and a block must be erased before reuse.
struct BlockState {
  std::uint32_t write_pointer = 0;  // next programmable page in the block
  std::uint32_t valid_mask_unused = 0;  // validity is the FTL's concern
  std::uint32_t erase_count = 0;
};

// The NAND flash array with its per-chip and per-channel timing model.
//
// A page read is a two-stage operation, as in a real device:
//   1. the chip senses the page into its internal register (tR); a chip
//      can run only one operation at a time (modelled as a RateServer per
//      chip), but different chips on a channel overlap (chip-level
//      interleaving);
//   2. the page is clocked over the channel bus to the controller, where
//      ECC is decoded; a channel carries one transfer at a time (a
//      RateServer per channel — channel-level interleaving happens across
//      channels).
//
// The third stage — DMA from the channel controller into the shared
// device DRAM — belongs to the SSD controller and lives in ssd::SsdDevice,
// because that shared bus is exactly the serialization bottleneck the
// paper calls out in Section 4.2.
class FlashArray {
 public:
  FlashArray(const Geometry& geometry, const Timings& timings,
             const Reliability& reliability = Reliability{});
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(FlashArray);

  const Geometry& geometry() const { return geometry_; }
  const Timings& timings() const { return timings_; }
  BackingStore& store() { return store_; }
  const BackingStore& store() const { return store_; }

  // Installs a fault injector queried on every page read (charge point
  // for kUncorrectableRead). The array does not own the injector; pass
  // nullptr to detach. Injected uncorrectable reads burn the full
  // read-retry ladder on the virtual clock before failing, like a real
  // controller exhausting its threshold-adjusted retries.
  void set_fault_injector(sim::FaultInjector* injector) {
    fault_injector_ = injector;
  }

  // Puts each channel bus on its own trace lane ("flash chan N" under
  // `process`) and records ECC retries / uncorrectable pages as instant
  // events on the affected channel's lane. The 32 per-chip servers stay
  // untraced on purpose — channel occupancy is the paper's bottleneck
  // signal and per-chip lanes would drown the trace. nullptr detaches.
  void AttachTracer(obs::Tracer* tracer, std::string_view process);

  // Registers flash counters (reads, ECC corrections/retries,
  // uncorrectables) and the page read-latency histogram. nullptr
  // detaches.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  // Reads one page: data lands in `out` (if non-empty) and the returned
  // time is when the page is available at the channel controller, ready
  // for DMA. `ready` is when the request is issued.
  Result<SimTime> ReadPage(const PageAddress& addr, SimTime ready,
                           std::span<std::byte> out);

  // Zero-copy variant: timing only; use store().View() for the bytes.
  Result<SimTime> ReadPageTiming(const PageAddress& addr, SimTime ready);

  // Programs the next constraint-checked page. The page must be the
  // block's current write pointer (sequential-program rule) and the block
  // must not be full.
  Result<SimTime> ProgramPage(const PageAddress& addr,
                              std::span<const std::byte> data,
                              SimTime ready);

  // Erases a whole block; all its pages become readable-as-zero and
  // programmable again.
  Result<SimTime> EraseBlock(int channel, int chip, std::uint32_t block,
                             SimTime ready);

  const BlockState& block_state(std::uint64_t block_index) const {
    return blocks_[block_index];
  }

  // Aggregate busy time across all channel buses (for utilization and
  // energy accounting).
  SimDuration total_channel_busy() const;
  SimDuration total_chip_busy() const;

  std::uint64_t reads() const { return reads_; }
  std::uint64_t programs() const { return programs_; }
  std::uint64_t erases() const { return erases_; }

  // Reliability counters (see Reliability in geometry.h).
  std::uint64_t reads_corrected() const { return reads_corrected_; }
  std::uint64_t read_retries() const { return read_retries_; }
  std::uint64_t uncorrectable_reads() const {
    return uncorrectable_reads_;
  }

  void ResetTiming();

 private:
  Status CheckAddress(const PageAddress& addr) const;
  // Samples the raw bit-error count for one page read attempt; `attempt`
  // scales the rate down for threshold-adjusted retries.
  std::uint32_t SampleBitErrors(std::uint32_t attempt);

  Geometry geometry_;
  Timings timings_;
  Reliability reliability_;
  sim::FaultInjector* fault_injector_ = nullptr;
  Random error_rng_;
  BackingStore store_;
  std::vector<BlockState> blocks_;
  // One server per chip (tR serialization) and per channel (bus).
  std::vector<std::unique_ptr<sim::RateServer>> chips_;
  std::vector<std::unique_ptr<sim::RateServer>> channels_;
  SimDuration page_transfer_time_ = 0;  // bus + ECC, precomputed
  std::uint64_t reads_ = 0;
  std::uint64_t programs_ = 0;
  std::uint64_t erases_ = 0;
  std::uint64_t reads_corrected_ = 0;
  std::uint64_t read_retries_ = 0;
  std::uint64_t uncorrectable_reads_ = 0;
  obs::Counter* m_reads_ = nullptr;
  obs::Counter* m_corrected_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_uncorrectable_ = nullptr;
  obs::Histogram* m_read_latency_ = nullptr;
};

}  // namespace smartssd::flash

#endif  // SMARTSSD_FLASH_FLASH_ARRAY_H_
