#ifndef SMARTSSD_COMMON_RESULT_H_
#define SMARTSSD_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace smartssd {

// Result<T> carries either a value or a non-OK Status (absl::StatusOr
// equivalent). Accessing value() on an error result aborts: that is a
// programmer error, not a runtime condition.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call
  // sites readable ("return tuple;" / "return NotFoundError(...)"): this
  // mirrors absl::StatusOr and is the one place we intentionally allow an
  // implicit one-argument constructor.
  Result(T value) : value_(std::move(value)) {}        // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SMARTSSD_CHECK(!status_.ok());  // OK status must carry a value.
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    SMARTSSD_CHECK(ok());
    return *value_;
  }
  T& value() & {
    SMARTSSD_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    SMARTSSD_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &const_cast<Result*>(this)->value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // kOk iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace smartssd

#endif  // SMARTSSD_COMMON_RESULT_H_
