#ifndef SMARTSSD_COMMON_LOGGING_H_
#define SMARTSSD_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace smartssd {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

// Global log threshold; messages below it are dropped. Default kWarning so
// tests and benches stay quiet; examples raise it to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Stream-style log line; emits on destruction. Not intended for direct
// use: go through SMARTSSD_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace smartssd

#define SMARTSSD_LOG(level)                                      \
  if (::smartssd::LogLevel::level < ::smartssd::GetLogLevel()) { \
  } else                                                         \
    ::smartssd::internal_logging::LogMessage(                    \
        ::smartssd::LogLevel::level, __FILE__, __LINE__)         \
        .stream()

#endif  // SMARTSSD_COMMON_LOGGING_H_
