#ifndef SMARTSSD_COMMON_STATUS_H_
#define SMARTSSD_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace smartssd {

// Error categories, modelled after absl::StatusCode but trimmed to what a
// storage/query stack actually raises.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIoError,
  kCorruption,
  kAborted,
};

// Returns a stable human-readable name, e.g. "NOT_FOUND".
std::string_view StatusCodeToString(StatusCode code);

// Value-type status word. The project does not use exceptions (per the
// Google C++ style the codebase follows); every fallible API returns
// Status or Result<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Factory helpers, mirroring absl's conventions.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status IoError(std::string message);
Status CorruptionError(std::string message);
Status AbortedError(std::string message);

}  // namespace smartssd

#endif  // SMARTSSD_COMMON_STATUS_H_
