#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace smartssd {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal_logging
}  // namespace smartssd
