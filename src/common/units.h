#ifndef SMARTSSD_COMMON_UNITS_H_
#define SMARTSSD_COMMON_UNITS_H_

#include <cstdint>

namespace smartssd {

// Virtual time is tracked in nanoseconds throughout the simulator.
using SimTime = std::uint64_t;  // nanoseconds since simulation start
using SimDuration = std::uint64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;
// Storage/interface vendors quote decimal megabytes; bandwidth numbers in
// the paper (550 MB/s, 1,560 MB/s) are decimal.
inline constexpr std::uint64_t kMB = 1000 * 1000;
inline constexpr std::uint64_t kGB = 1000 * kMB;

inline constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

// Time to move `bytes` at `bytes_per_second`, rounded up to a whole
// nanosecond so zero-duration transfers cannot starve the event loop.
inline constexpr SimDuration TransferTime(std::uint64_t bytes,
                                          std::uint64_t bytes_per_second) {
  if (bytes == 0) return 0;
  if (bytes_per_second == 0) return 0;
  const unsigned __int128 numerator =
      static_cast<unsigned __int128>(bytes) * kSecond;
  const std::uint64_t t = static_cast<std::uint64_t>(
      (numerator + bytes_per_second - 1) / bytes_per_second);
  return t == 0 ? 1 : t;
}

// Time for `cycles` CPU cycles at `hz`.
inline constexpr SimDuration CyclesToTime(std::uint64_t cycles,
                                          std::uint64_t hz) {
  if (cycles == 0 || hz == 0) return 0;
  const unsigned __int128 numerator =
      static_cast<unsigned __int128>(cycles) * kSecond;
  const std::uint64_t t =
      static_cast<std::uint64_t>((numerator + hz - 1) / hz);
  return t == 0 ? 1 : t;
}

}  // namespace smartssd

#endif  // SMARTSSD_COMMON_UNITS_H_
