#ifndef SMARTSSD_COMMON_MACROS_H_
#define SMARTSSD_COMMON_MACROS_H_

// Project-wide helper macros. Kept deliberately small: only things the
// language cannot express directly (statement-level control flow around
// Status propagation, and fatal invariant checks).

#include <cstdio>
#include <cstdlib>

#define SMARTSSD_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;               \
  TypeName& operator=(const TypeName&) = delete

// Fatal invariant check. Used for programmer errors (never for data or
// user errors, which flow through Status). Active in all build modes:
// a storage engine that silently corrupts state in release mode is worse
// than one that aborts.
#define SMARTSSD_CHECK(cond)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define SMARTSSD_CHECK_OP(a, op, b) SMARTSSD_CHECK((a)op(b))
#define SMARTSSD_CHECK_EQ(a, b) SMARTSSD_CHECK_OP(a, ==, b)
#define SMARTSSD_CHECK_NE(a, b) SMARTSSD_CHECK_OP(a, !=, b)
#define SMARTSSD_CHECK_LT(a, b) SMARTSSD_CHECK_OP(a, <, b)
#define SMARTSSD_CHECK_LE(a, b) SMARTSSD_CHECK_OP(a, <=, b)
#define SMARTSSD_CHECK_GT(a, b) SMARTSSD_CHECK_OP(a, >, b)
#define SMARTSSD_CHECK_GE(a, b) SMARTSSD_CHECK_OP(a, >=, b)

// Propagates a non-OK Status to the caller.
#define SMARTSSD_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::smartssd::Status _status = (expr);          \
    if (!_status.ok()) return _status;            \
  } while (0)

// Evaluates `rexpr` (a Result<T>), propagates the error, or moves the
// value into `lhs`. `lhs` may include a declaration, e.g.
//   SMARTSSD_ASSIGN_OR_RETURN(auto page, ReadPage(id));
#define SMARTSSD_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  SMARTSSD_ASSIGN_OR_RETURN_IMPL_(                                  \
      SMARTSSD_MACRO_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define SMARTSSD_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                    \
  if (!result.ok()) return std::move(result).status();      \
  lhs = std::move(result).value()

#define SMARTSSD_MACRO_CONCAT_INNER_(a, b) a##b
#define SMARTSSD_MACRO_CONCAT_(a, b) SMARTSSD_MACRO_CONCAT_INNER_(a, b)

#endif  // SMARTSSD_COMMON_MACROS_H_
