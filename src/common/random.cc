#include "common/random.h"

#include "common/macros.h"

namespace smartssd {

namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Random::Random(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& s : s_) s = SplitMix64(state);
}

std::uint64_t Random::NextUint64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Random::Uniform(std::uint64_t bound) {
  SMARTSSD_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Random::UniformInt(std::int64_t lo, std::int64_t hi) {
  SMARTSSD_CHECK_LE(lo, hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<std::int64_t>(NextUint64());
  }
  return lo + static_cast<std::int64_t>(Uniform(span));
}

double Random::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace smartssd
