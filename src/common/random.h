#ifndef SMARTSSD_COMMON_RANDOM_H_
#define SMARTSSD_COMMON_RANDOM_H_

#include <cstdint>

namespace smartssd {

// Deterministic 64-bit PRNG (xoshiro256** over a splitmix64-expanded
// seed). Data generation must be reproducible across runs and platforms,
// so we do not use std::mt19937 distributions (whose mapping functions are
// implementation-defined for some distributions).
class Random {
 public:
  explicit Random(std::uint64_t seed);

  // Uniform over the full 64-bit range.
  std::uint64_t NextUint64();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t Uniform(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace smartssd

#endif  // SMARTSSD_COMMON_RANDOM_H_
