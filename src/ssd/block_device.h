#ifndef SMARTSSD_SSD_BLOCK_DEVICE_H_
#define SMARTSSD_SSD_BLOCK_DEVICE_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "common/result.h"
#include "common/units.h"

namespace smartssd::ssd {

// Power draw of a storage device, used by the energy model (Table 3).
struct DevicePowerProfile {
  double active_watts = 8.0;
  double idle_watts = 1.0;
};

// Host-visible block device abstraction. The unit of I/O is a device page
// (the paper's DBMS uses 8 KB pages matching the flash page size); multi-
// page commands model the 32-page (256 KB) I/Os of Table 2.
//
// All methods are virtual-time aware: `ready` is when the host issues the
// command, the return value is when the last byte has arrived (reads) or
// is durable (writes).
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual std::string_view name() const = 0;
  virtual std::uint32_t page_size() const = 0;
  virtual std::uint64_t num_pages() const = 0;
  virtual DevicePowerProfile power_profile() const = 0;

  // Reads `count` consecutive pages starting at `lpn` into `out`
  // (out.size() >= count * page_size()). One command; page transfers are
  // pipelined inside the device.
  virtual Result<SimTime> ReadPages(std::uint64_t lpn, std::uint32_t count,
                                    std::span<std::byte> out,
                                    SimTime ready) = 0;

  // Writes `count` consecutive pages starting at `lpn`.
  virtual Result<SimTime> WritePages(std::uint64_t lpn, std::uint32_t count,
                                     std::span<const std::byte> data,
                                     SimTime ready) = 0;
};

}  // namespace smartssd::ssd

#endif  // SMARTSSD_SSD_BLOCK_DEVICE_H_
