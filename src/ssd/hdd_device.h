#ifndef SMARTSSD_SSD_HDD_DEVICE_H_
#define SMARTSSD_SSD_HDD_DEVICE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "sim/rate_server.h"
#include "ssd/block_device.h"

namespace smartssd::ssd {

// Mechanical disk model for the paper's 10K RPM SAS HDD baseline
// (Table 3). A single head serializes everything; sequential runs stream
// at the media rate, every discontinuity pays seek + rotational latency,
// and each command pays a fixed overhead (settle, track switches amortized
// into it). Defaults land the heap-scan effective rate in the low
// 80s MB/s, which reproduces the paper's >1,000 s Q6 elapsed time at
// SF 100.
struct HddConfig {
  std::uint32_t page_size_bytes = 8 * 1024;
  std::uint64_t num_pages = 4ull * 1024 * 1024;  // 32 GiB address space
  std::uint64_t media_bytes_per_second = 120 * kMB;
  SimDuration per_request_overhead = 1000 * kMicrosecond;
  SimDuration average_seek = 4 * kMillisecond;
  SimDuration rotational_latency = 3 * kMillisecond;  // half-turn at 10K
  DevicePowerProfile power{.active_watts = 12.5, .idle_watts = 7.0};
};

class HddDevice : public BlockDevice {
 public:
  explicit HddDevice(const HddConfig& config);

  std::string_view name() const override { return name_; }
  std::uint32_t page_size() const override {
    return config_.page_size_bytes;
  }
  std::uint64_t num_pages() const override { return config_.num_pages; }
  DevicePowerProfile power_profile() const override {
    return config_.power;
  }

  Result<SimTime> ReadPages(std::uint64_t lpn, std::uint32_t count,
                            std::span<std::byte> out,
                            SimTime ready) override;
  Result<SimTime> WritePages(std::uint64_t lpn, std::uint32_t count,
                             std::span<const std::byte> data,
                             SimTime ready) override;

  SimDuration head_busy() const { return head_->busy_time(); }
  std::uint64_t seeks() const { return seeks_; }
  void ResetTiming();

 private:
  Status CheckRange(std::uint64_t lpn, std::uint32_t count,
                    std::size_t buffer_size, bool is_read) const;

  HddConfig config_;
  std::string name_ = "hdd";
  std::unique_ptr<sim::RateServer> head_;
  // Lazily allocated per-page buffers: the address space can be large
  // while only written pages consume host memory. Unwritten pages read
  // as zeros.
  std::vector<std::unique_ptr<std::byte[]>> pages_;
  std::uint64_t next_sequential_lpn_ = ~0ULL;
  std::uint64_t seeks_ = 0;
};

}  // namespace smartssd::ssd

#endif  // SMARTSSD_SSD_HDD_DEVICE_H_
