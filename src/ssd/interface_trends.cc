#include "ssd/interface_trends.h"

namespace smartssd::ssd {

const std::vector<BandwidthTrendPoint>& BandwidthTrends() {
  // Host column: shipping interface generations (effective payload
  // rate). Internal column: the *aggregate* NAND-array bandwidth
  // (channels x per-channel bus rate) of contemporary controller
  // generations — the potential the interface throttles. Around 2012
  // the gap is ~10x (Section 4.2: "far smaller than the gap shown in
  // Figure 1 (about 10X)"); the 2012 device only realizes 2.8x of it
  // because its single DRAM bus caps the internal path at 1,560 MB/s.
  // Post-2012 values follow the vendor projections the paper cites.
  static const std::vector<BandwidthTrendPoint>& kTrends =
      *new std::vector<BandwidthTrendPoint>{
          {2007, 375 * kMB, 400 * kMB, "SATA 3Gb/s"},
          {2008, 375 * kMB, 640 * kMB, "SATA 3Gb/s"},
          {2009, 550 * kMB, 1064 * kMB, "SATA 6Gb/s"},
          {2010, 550 * kMB, 1600 * kMB, "SATA 6Gb/s / SAS 6Gb/s"},
          {2011, 550 * kMB, 3200 * kMB, "SAS 6Gb/s"},
          {2012, 550 * kMB, 5320 * kMB, "SAS 6Gb/s"},
          {2013, 1100 * kMB, 6400 * kMB, "SAS 12Gb/s"},
          {2014, 1100 * kMB, 9600 * kMB, "SAS 12Gb/s"},
          {2015, 1100 * kMB, 12800 * kMB, "SAS 12Gb/s"},
          {2016, 2200 * kMB, 19200 * kMB, "SAS 24Gb/s / PCIe3 x4"},
          {2017, 2200 * kMB, 25600 * kMB, "SAS 24Gb/s / PCIe3 x4"},
      };
  return kTrends;
}

double HostRelative(const BandwidthTrendPoint& point) {
  return static_cast<double>(point.host_interface_bytes_per_second) /
         static_cast<double>(kTrendBaseline2007);
}

double InternalRelative(const BandwidthTrendPoint& point) {
  return static_cast<double>(point.internal_bytes_per_second) /
         static_cast<double>(kTrendBaseline2007);
}

}  // namespace smartssd::ssd
