#include "ssd/ssd_device.h"

#include <algorithm>

namespace smartssd::ssd {

SsdDevice::SsdDevice(const SsdConfig& config) : config_(config) {
  array_ = std::make_unique<flash::FlashArray>(
      config.geometry, config.timings, config.reliability);
  array_->set_fault_injector(&fault_injector_);
  ftl_ = std::make_unique<ftl::Ftl>(array_.get(), config.ftl);
  dma_ = std::make_unique<sim::ParallelServer>("dram_bus",
                                               config.dram.bus_count);
  host_link_ = std::make_unique<sim::RateServer>("host_link");
  embedded_ = std::make_unique<sim::ParallelServer>(
      "embedded_cpu", config.embedded_cpu.cores);
  dma_page_time_ = TransferTime(config.geometry.page_size_bytes,
                                config.dram.bus_bytes_per_second);
}

Result<SimTime> SsdDevice::InternalReadPageTiming(std::uint64_t lpn,
                                                  SimTime ready) {
  SMARTSSD_ASSIGN_OR_RETURN(const SimTime at_controller,
                            ftl_->ReadTiming(lpn, ready));
  // DMA from the channel controller into shared DRAM.
  return dma_->Serve(at_controller, dma_page_time_, "page dma");
}

Result<SimTime> SsdDevice::InternalWritePage(
    std::uint64_t lpn, std::span<const std::byte> data, SimTime ready) {
  // The mirror of an internal read: the page crosses the shared DRAM
  // bus into the channel controller, then the FTL programs it
  // out-of-place (triggering GC like any other write). No host link.
  const SimTime at_controller =
      dma_->Serve(ready, dma_page_time_, "spill dma");
  return ftl_->Write(lpn, data, at_controller);
}

Result<std::uint64_t> SsdDevice::AllocateSpillExtent(std::uint64_t pages) {
  if (pages == 0) {
    return InvalidArgumentError("spill extent: zero pages");
  }
  if (spill_next_ == 0) spill_next_ = ftl_->logical_pages();
  // Exact-fit reuse first, so a rerun of the same query walks the same
  // LPN sequence.
  for (auto it = spill_free_.begin(); it != spill_free_.end(); ++it) {
    if (it->second == pages) {
      const std::uint64_t lpn = it->first;
      spill_free_.erase(it);
      spill_pages_held_ += pages;
      return lpn;
    }
  }
  if (spill_next_ < spill_floor_ + pages) {
    return ResourceExhaustedError(
        "spill extent: flash exhausted above the catalog floor");
  }
  spill_next_ -= pages;
  spill_pages_held_ += pages;
  return spill_next_;
}

void SsdDevice::ReleaseSpillExtent(std::uint64_t first_lpn,
                                   std::uint64_t pages) {
  SMARTSSD_CHECK_LE(pages, spill_pages_held_);
  spill_pages_held_ -= pages;
  // TRIM the pages so GC reclaims the flash they occupied.
  for (std::uint64_t i = 0; i < pages; ++i) {
    if (ftl_->IsMapped(first_lpn + i)) {
      (void)ftl_->Trim(first_lpn + i);
    }
  }
  spill_free_.emplace_back(first_lpn, pages);
}

Result<SimTime> SsdDevice::InternalReadPage(std::uint64_t lpn,
                                            std::span<std::byte> out,
                                            SimTime ready) {
  SMARTSSD_ASSIGN_OR_RETURN(const SimTime done,
                            InternalReadPageTiming(lpn, ready));
  if (!out.empty()) {
    std::span<const std::byte> view = ftl_->View(lpn);
    if (view.empty()) {
      std::fill(out.begin(),
                out.begin() +
                    std::min<std::size_t>(out.size(), page_size()),
                std::byte{0});
    } else {
      std::copy(view.begin(), view.end(), out.begin());
    }
  }
  return done;
}

Result<SimTime> SsdDevice::ReadPages(std::uint64_t lpn, std::uint32_t count,
                                     std::span<std::byte> out,
                                     SimTime ready) {
  if (count == 0) return ready;
  if (!out.empty() &&
      out.size() < static_cast<std::size_t>(count) * page_size()) {
    return InvalidArgumentError("ssd read: output buffer too small");
  }
  // One command: command latency once, then pages stream through the
  // pipeline (flash -> DRAM -> host link), each stage a FIFO server.
  SimTime t = ready + config_.host_interface.command_latency;
  const SimDuration link_page_time = TransferTime(
      page_size(), EffectiveBytesPerSecond(config_.host_interface.standard));
  SimTime last = t;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::span<std::byte> page_out =
        out.empty() ? std::span<std::byte>{}
                    : out.subspan(static_cast<std::size_t>(i) * page_size(),
                                  page_size());
    SMARTSSD_ASSIGN_OR_RETURN(const SimTime in_dram,
                              InternalReadPage(lpn + i, page_out, t));
    if (fault_injector_.OnBytes(sim::FaultKind::kTransferError, page_size(),
                                in_dram)) {
      return IoError("host interface transfer error (injected fault)");
    }
    last = host_link_->Serve(in_dram, link_page_time, "page to host");
  }
  return last;
}

Result<SimTime> SsdDevice::WritePages(std::uint64_t lpn, std::uint32_t count,
                                      std::span<const std::byte> data,
                                      SimTime ready) {
  if (count == 0) return ready;
  if (data.size() < static_cast<std::size_t>(count) * page_size()) {
    return InvalidArgumentError("ssd write: data buffer too small");
  }
  SimTime t = ready + config_.host_interface.command_latency;
  const SimDuration link_page_time = TransferTime(
      page_size(), EffectiveBytesPerSecond(config_.host_interface.standard));
  SimTime last = t;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (fault_injector_.OnBytes(sim::FaultKind::kTransferError, page_size(),
                                t)) {
      return IoError("host interface transfer error (injected fault)");
    }
    const SimTime at_device =
        host_link_->Serve(t, link_page_time, "page to device");
    const SimTime in_dram =
        dma_->Serve(at_device, dma_page_time_, "page dma");
    SMARTSSD_ASSIGN_OR_RETURN(
        last, ftl_->Write(lpn + i,
                          data.subspan(
                              static_cast<std::size_t>(i) * page_size(),
                              page_size()),
                          in_dram));
  }
  return last;
}

SimTime SsdDevice::ExecuteOnDevice(std::uint64_t cycles, SimTime ready) {
  return embedded_->Serve(
      ready, CyclesToTime(cycles, config_.embedded_cpu.clock_hz),
      "device task");
}

SimTime SsdDevice::TransferToHost(std::uint64_t bytes, SimTime ready) {
  if (bytes == 0) return ready;
  return host_link_->Serve(
      ready,
      TransferTime(bytes, EffectiveBytesPerSecond(
                              config_.host_interface.standard)),
      "result to host");
}

SimTime SsdDevice::HostCommand(SimTime ready) {
  return host_link_->Serve(ready, config_.host_interface.command_latency,
                           "command");
}

Status SsdDevice::AllocateDeviceDram(std::uint64_t bytes) {
  if (bytes > device_dram_free()) {
    return ResourceExhaustedError("device DRAM exhausted");
  }
  dram_used_ += bytes;
  return Status::OK();
}

void SsdDevice::ReleaseDeviceDram(std::uint64_t bytes) {
  SMARTSSD_CHECK_LE(bytes, dram_used_);
  dram_used_ -= bytes;
}

Status SsdDevice::AcquireSessionThread() {
  if (session_threads_free() <= 0) {
    return ResourceExhaustedError(
        "OPEN rejected: all session thread grants are held");
  }
  ++session_threads_used_;
  return Status::OK();
}

void SsdDevice::ReleaseSessionThread() {
  SMARTSSD_CHECK_GT(session_threads_used_, 0);
  --session_threads_used_;
}

void SsdDevice::AttachTracer(obs::Tracer* tracer,
                             std::string_view process) {
  array_->AttachTracer(tracer, process);
  ftl_->AttachTracer(tracer, process);
  dma_->AttachTracer(tracer, process, "dram bus");
  embedded_->AttachTracer(tracer, process, "embedded core");
  host_link_->AttachTracer(tracer, process, "host link");
  fault_injector_.AttachTracer(tracer, process);
}

void SsdDevice::AttachMetrics(obs::MetricsRegistry* metrics) {
  array_->AttachMetrics(metrics);
  ftl_->AttachMetrics(metrics);
}

void SsdDevice::ResetTiming() {
  array_->ResetTiming();
  dma_->Reset();
  host_link_->Reset();
  embedded_->Reset();
}

}  // namespace smartssd::ssd
