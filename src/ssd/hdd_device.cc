#include "ssd/hdd_device.h"

#include <algorithm>

namespace smartssd::ssd {

HddDevice::HddDevice(const HddConfig& config) : config_(config) {
  head_ = std::make_unique<sim::RateServer>("hdd_head");
  pages_.resize(static_cast<std::size_t>(config.num_pages));
}

Status HddDevice::CheckRange(std::uint64_t lpn, std::uint32_t count,
                             std::size_t buffer_size, bool is_read) const {
  if (lpn + count > config_.num_pages) {
    return OutOfRangeError("hdd: page range beyond capacity");
  }
  const std::size_t needed =
      static_cast<std::size_t>(count) * config_.page_size_bytes;
  if (buffer_size < needed && (is_read ? buffer_size != 0 : true)) {
    return InvalidArgumentError("hdd: buffer too small");
  }
  return Status::OK();
}

Result<SimTime> HddDevice::ReadPages(std::uint64_t lpn, std::uint32_t count,
                                     std::span<std::byte> out,
                                     SimTime ready) {
  if (count == 0) return ready;
  SMARTSSD_RETURN_IF_ERROR(CheckRange(lpn, count, out.size(), true));
  SimDuration service = config_.per_request_overhead;
  if (lpn != next_sequential_lpn_) {
    service += config_.average_seek + config_.rotational_latency;
    ++seeks_;
  }
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(count) * config_.page_size_bytes;
  service += TransferTime(bytes, config_.media_bytes_per_second);
  const SimTime done = head_->Serve(ready, service);
  next_sequential_lpn_ = lpn + count;
  if (!out.empty()) {
    for (std::uint32_t i = 0; i < count; ++i) {
      std::byte* dst = out.data() +
                       static_cast<std::size_t>(i) * config_.page_size_bytes;
      const auto& page = pages_[lpn + i];
      if (page == nullptr) {
        std::fill_n(dst, config_.page_size_bytes, std::byte{0});
      } else {
        std::copy_n(page.get(), config_.page_size_bytes, dst);
      }
    }
  }
  return done;
}

Result<SimTime> HddDevice::WritePages(std::uint64_t lpn,
                                      std::uint32_t count,
                                      std::span<const std::byte> data,
                                      SimTime ready) {
  if (count == 0) return ready;
  SMARTSSD_RETURN_IF_ERROR(CheckRange(lpn, count, data.size(), false));
  SimDuration service = config_.per_request_overhead;
  if (lpn != next_sequential_lpn_) {
    service += config_.average_seek + config_.rotational_latency;
    ++seeks_;
  }
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(count) * config_.page_size_bytes;
  service += TransferTime(bytes, config_.media_bytes_per_second);
  const SimTime done = head_->Serve(ready, service);
  next_sequential_lpn_ = lpn + count;
  for (std::uint32_t i = 0; i < count; ++i) {
    auto& page = pages_[lpn + i];
    if (page == nullptr) {
      page = std::make_unique<std::byte[]>(config_.page_size_bytes);
    }
    std::copy_n(data.data() +
                    static_cast<std::size_t>(i) * config_.page_size_bytes,
                config_.page_size_bytes, page.get());
  }
  return done;
}

void HddDevice::ResetTiming() {
  head_->Reset();
  next_sequential_lpn_ = ~0ULL;
  seeks_ = 0;
}

}  // namespace smartssd::ssd
