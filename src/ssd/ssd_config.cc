#include "ssd/ssd_config.h"

namespace smartssd::ssd {

std::uint64_t EffectiveBytesPerSecond(HostInterfaceStandard standard) {
  switch (standard) {
    case HostInterfaceStandard::kSata3g:
      return 275 * kMB;
    case HostInterfaceStandard::kSata6g:
      return 550 * kMB;
    case HostInterfaceStandard::kSas6g:
      return 550 * kMB;
    case HostInterfaceStandard::kSas12g:
      return 1100 * kMB;
    case HostInterfaceStandard::kPcie3x4:
      return 3200 * kMB;
  }
  return 550 * kMB;
}

SsdConfig SsdConfig::PaperSsd() {
  SsdConfig config;
  // 8 channels x 4 chips; channel buses aggregate to 2,640 MB/s, well
  // above the single DRAM bus (1,560 MB/s), so the DRAM bus is the
  // internal bottleneck — exactly the situation Section 4.2 describes.
  config.geometry.channels = 8;
  config.geometry.chips_per_channel = 4;
  config.geometry.blocks_per_chip = 512;
  config.geometry.pages_per_block = 128;
  config.geometry.page_size_bytes = 8 * kKiB;
  config.host_interface.standard = HostInterfaceStandard::kSas6g;
  config.dram.bus_count = 1;
  config.dram.bus_bytes_per_second = 1560 * kMB;
  config.power = {.active_watts = 8.0, .idle_watts = 1.2};
  return config;
}

SsdConfig SsdConfig::PaperSmartSsd() {
  SsdConfig config = PaperSsd();
  // Same drive; running user code on the embedded cores raises active
  // power a little.
  config.power = {.active_watts = 10.0, .idle_watts = 1.2};
  return config;
}

SsdConfig SsdConfig::Tiny() {
  SsdConfig config;
  config.geometry.channels = 2;
  config.geometry.chips_per_channel = 2;
  config.geometry.blocks_per_chip = 16;
  config.geometry.pages_per_block = 8;
  config.geometry.page_size_bytes = 2 * kKiB;
  config.dram.capacity_bytes = 4 * kMiB;
  config.ftl.gc_low_watermark_blocks = 2;
  return config;
}

}  // namespace smartssd::ssd
