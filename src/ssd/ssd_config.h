#ifndef SMARTSSD_SSD_SSD_CONFIG_H_
#define SMARTSSD_SSD_SSD_CONFIG_H_

#include <cstdint>

#include "common/units.h"
#include "flash/geometry.h"
#include "ftl/ftl.h"
#include "ssd/block_device.h"

namespace smartssd::ssd {

// Host interface standards with their effective (payload) bandwidths.
// Raw line rates are higher; the effective numbers below include framing
// and protocol overhead, matching the paper's measured 550 MB/s for the
// 6 Gbps SAS link (Table 2).
enum class HostInterfaceStandard {
  kSata3g,   // 3 Gbps SATA,  ~275 MB/s effective
  kSata6g,   // 6 Gbps SATA,  ~550 MB/s effective
  kSas6g,    // 6 Gbps SAS,   ~550 MB/s effective (the paper's device)
  kSas12g,   // 12 Gbps SAS,  ~1100 MB/s effective
  kPcie3x4,  // PCIe gen3 x4, ~3200 MB/s effective
};

std::uint64_t EffectiveBytesPerSecond(HostInterfaceStandard standard);

struct HostInterfaceConfig {
  HostInterfaceStandard standard = HostInterfaceStandard::kSas6g;
  // Per-command processing latency (protocol + firmware dispatch).
  SimDuration command_latency = 20 * kMicrosecond;
};

struct DramConfig {
  std::uint64_t capacity_bytes = 512 * kMiB;
  // All flash channels DMA into DRAM through this many buses. The paper's
  // device has effectively ONE ("only one channel can be active at a
  // time"), which caps internal bandwidth at 1,560 MB/s despite the
  // channels' higher aggregate rate. Raising this is the paper's own
  // suggested fix ("increasing the bandwidth to the DRAM or adding more
  // DRAM buses") and is our ablation knob.
  int bus_count = 1;
  std::uint64_t bus_bytes_per_second = 1560 * kMB;
};

struct EmbeddedCpuConfig {
  // Low-power in-order cores (ARM-class), as in Section 2.
  int cores = 3;
  std::uint64_t clock_hz = 400ull * 1000 * 1000;  // 400 MHz
  // Concurrent Smart SSD sessions the firmware will grant a thread to
  // (Section 3's OPEN grants "a thread and some amount of memory"; the
  // thread pool is what bounds in-device concurrency). 0 means one
  // session thread per core. An OPEN past the limit is rejected with
  // RESOURCE_EXHAUSTED and the host queues the query until a grant
  // frees.
  int session_threads = 0;
};

struct SsdConfig {
  flash::Geometry geometry;
  flash::Timings timings;
  flash::Reliability reliability;
  ftl::FtlConfig ftl;
  HostInterfaceConfig host_interface;
  DramConfig dram;
  EmbeddedCpuConfig embedded_cpu;
  DevicePowerProfile power{.active_watts = 8.0, .idle_watts = 1.2};

  // The paper's regular SAS SSD (its Smart twin differs only in the
  // enabled runtime and a slightly higher active power).
  static SsdConfig PaperSsd();
  static SsdConfig PaperSmartSsd();

  // Small geometry for unit tests (fast to fill and GC).
  static SsdConfig Tiny();
};

}  // namespace smartssd::ssd

#endif  // SMARTSSD_SSD_SSD_CONFIG_H_
