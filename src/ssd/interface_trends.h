#ifndef SMARTSSD_SSD_INTERFACE_TRENDS_H_
#define SMARTSSD_SSD_INTERFACE_TRENDS_H_

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace smartssd::ssd {

// One point on Figure 1: the bandwidth of the host I/O interface and of
// the SSD's internal data path, per year. The paper plots both relative
// to the 2007 interface speed (375 MB/s) and observes the internal path
// pulling away to roughly 10x by the projection horizon, because interface
// standards (SATA/SAS/PCIe revisions) move slower than NAND channel
// speeds times channel counts.
struct BandwidthTrendPoint {
  int year;
  std::uint64_t host_interface_bytes_per_second;
  std::uint64_t internal_bytes_per_second;
  const char* host_interface_name;
};

// The 2007 reference the paper normalizes against.
inline constexpr std::uint64_t kTrendBaseline2007 = 375 * kMB;

// The trend series, 2007..2017. Host interface values follow the
// SATA/SAS roadmap; internal values are channel_count x channel_rate for
// contemporary controller generations (ONFI/toggle-mode progressions).
const std::vector<BandwidthTrendPoint>& BandwidthTrends();

// Relative values (x over the 2007 baseline), as plotted in Figure 1.
double HostRelative(const BandwidthTrendPoint& point);
double InternalRelative(const BandwidthTrendPoint& point);

}  // namespace smartssd::ssd

#endif  // SMARTSSD_SSD_INTERFACE_TRENDS_H_
