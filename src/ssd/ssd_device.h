#ifndef SMARTSSD_SSD_SSD_DEVICE_H_
#define SMARTSSD_SSD_SSD_DEVICE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "flash/flash_array.h"
#include "ftl/ftl.h"
#include "sim/fault_injector.h"
#include "sim/rate_server.h"
#include "ssd/block_device.h"
#include "ssd/ssd_config.h"

namespace smartssd::ssd {

// The full SSD: NAND array + FTL + controller resources. Three controller
// resources are modelled explicitly because they are where the paper's
// performance story lives:
//
//   * the DRAM/DMA bus — every page coming off any flash channel must
//     cross it, serialized ("the access to the DRAM is shared by all the
//     flash channels ... which then becomes the bottleneck"), capping the
//     internal read bandwidth at 1,560 MB/s;
//   * the host interface link — 550 MB/s effective for 6 Gbps SAS, the
//     "narrow straw" of Figure 1;
//   * the embedded CPU complex — a few low-power cores that run the FTL
//     and, on a Smart SSD, the pushed-down query operators.
//
// A host read crosses flash -> DRAM -> host link. An *internal* read (the
// Smart SSD path) stops at DRAM, which is why it runs at 1,560 MB/s
// instead of 550 MB/s: that 2.8x is Table 2.
class SsdDevice : public BlockDevice {
 public:
  explicit SsdDevice(const SsdConfig& config);

  std::string_view name() const override { return name_; }
  // Per-device identity in a multi-device fleet ("ssd0", "ssd1", ...);
  // the name lands in QueryStats::device_name and trace track labels.
  void set_name(std::string name) { name_ = std::move(name); }
  std::uint32_t page_size() const override { return ftl_->page_size(); }
  std::uint64_t num_pages() const override {
    return ftl_->logical_pages();
  }
  DevicePowerProfile power_profile() const override {
    return config_.power;
  }

  Result<SimTime> ReadPages(std::uint64_t lpn, std::uint32_t count,
                            std::span<std::byte> out,
                            SimTime ready) override;
  Result<SimTime> WritePages(std::uint64_t lpn, std::uint32_t count,
                             std::span<const std::byte> data,
                             SimTime ready) override;

  // --- Device-internal interfaces (used by the Smart SSD runtime) ---

  // Reads a page into device DRAM: flash + DMA only, no host link.
  Result<SimTime> InternalReadPage(std::uint64_t lpn,
                                   std::span<std::byte> out, SimTime ready);

  // Timing-only internal read; pair with ViewPage().
  Result<SimTime> InternalReadPageTiming(std::uint64_t lpn, SimTime ready);

  // Writes a page from device DRAM to flash: DMA + out-of-place FTL
  // program (GC and all), no host link. The spill path of the hybrid
  // hash join writes partitions through this.
  Result<SimTime> InternalWritePage(std::uint64_t lpn,
                                    std::span<const std::byte> data,
                                    SimTime ready);

  // --- Spill extent allocator ---------------------------------------
  // Sessions spilling join partitions borrow logical pages from the top
  // of the LPN space, growing downward, while the catalog's bump
  // allocator grows upward from 0. set_spill_floor() tells the device
  // where the catalog's allocations end; an allocation that would cross
  // the floor is refused. Released extents are trimmed (invalidating
  // their flash pages for GC) and kept on an exact-fit free list so a
  // rerun of the same query reuses the same LPNs — determinism for the
  // differential harness.
  void set_spill_floor(std::uint64_t first_reserved_lpn) {
    spill_floor_ = first_reserved_lpn;
  }
  Result<std::uint64_t> AllocateSpillExtent(std::uint64_t pages);
  void ReleaseSpillExtent(std::uint64_t first_lpn, std::uint64_t pages);
  // Logical pages currently held by live spill extents; zero when the
  // device is idle (leak check, mirrors the DRAM grant invariant).
  std::uint64_t spill_pages_held() const { return spill_pages_held_; }

  // Zero-copy view of a mapped page's bytes (content as of now; the
  // timing of visibility comes from InternalReadPageTiming).
  std::span<const std::byte> ViewPage(std::uint64_t lpn) const {
    return ftl_->View(lpn);
  }

  // Runs `cycles` of work on the embedded CPU complex (one task on one
  // core). Returns completion time.
  SimTime ExecuteOnDevice(std::uint64_t cycles, SimTime ready);

  // Moves `bytes` from device DRAM to the host across the host link
  // (result tuples of a pushed-down operator).
  SimTime TransferToHost(std::uint64_t bytes, SimTime ready);

  // One host->device command round (OPEN/GET/CLOSE and friends).
  SimTime HostCommand(SimTime ready);

  // Device DRAM accounting for Smart SSD sessions (hash tables, result
  // buffers). Returns RESOURCE_EXHAUSTED when the working set would not
  // fit — the planner then refuses the pushdown.
  Status AllocateDeviceDram(std::uint64_t bytes);
  void ReleaseDeviceDram(std::uint64_t bytes);
  std::uint64_t device_dram_free() const {
    return config_.dram.capacity_bytes - dram_used_;
  }

  // Session thread grants: every open Smart SSD session holds one
  // firmware thread (Section 3's OPEN grants a thread + memory). The
  // pool size is config().embedded_cpu.session_threads (0 = one per
  // embedded core); when it is empty, further OPENs are rejected with
  // RESOURCE_EXHAUSTED and the host queues the query until a grant
  // frees.
  Status AcquireSessionThread();
  void ReleaseSessionThread();
  int session_threads_total() const {
    return config_.embedded_cpu.session_threads > 0
               ? config_.embedded_cpu.session_threads
               : config_.embedded_cpu.cores;
  }
  int session_threads_free() const {
    return session_threads_total() - session_threads_used_;
  }

  const SsdConfig& config() const { return config_; }
  flash::FlashArray& flash_array() { return *array_; }
  const flash::FlashArray& flash_array() const { return *array_; }
  ftl::Ftl& ftl() { return *ftl_; }

  // The device-wide fault injector, shared with the flash array and the
  // smart runtime. Load a schedule to make the device misbehave
  // deterministically; an empty injector never fires.
  sim::FaultInjector& fault_injector() { return fault_injector_; }
  const sim::FaultInjector& fault_injector() const {
    return fault_injector_;
  }

  SimDuration dma_busy() const { return dma_->busy_time(); }
  SimDuration host_link_busy() const { return host_link_->busy_time(); }
  SimDuration embedded_cpu_busy() const { return embedded_->busy_time(); }
  std::uint64_t embedded_cores() const {
    return static_cast<std::uint64_t>(config_.embedded_cpu.cores);
  }
  std::uint64_t embedded_clock_hz() const {
    return config_.embedded_cpu.clock_hz;
  }

  // Drops all timing state (not data). Used between benchmark phases so
  // load-time queueing does not bleed into measured queries.
  void ResetTiming();

  // Puts every controller resource on its own trace lane under
  // `process`: flash channels, DRAM bus(es), embedded cores, the host
  // link, plus the FTL GC lane and the fault-injector lane. nullptr
  // detaches the device-side lanes.
  void AttachTracer(obs::Tracer* tracer, std::string_view process);

  // Registers flash/FTL instruments on `metrics` (see the layers'
  // AttachMetrics). nullptr detaches.
  void AttachMetrics(obs::MetricsRegistry* metrics);

 private:
  SsdConfig config_;
  std::string name_ = "ssd";
  sim::FaultInjector fault_injector_;
  std::unique_ptr<flash::FlashArray> array_;
  std::unique_ptr<ftl::Ftl> ftl_;
  std::unique_ptr<sim::ParallelServer> dma_;        // DRAM bus(es)
  std::unique_ptr<sim::RateServer> host_link_;      // SATA/SAS link
  std::unique_ptr<sim::ParallelServer> embedded_;   // ARM cores
  SimDuration dma_page_time_ = 0;
  std::uint64_t dram_used_ = 0;
  int session_threads_used_ = 0;

  // Spill extent allocator state (see set_spill_floor).
  std::uint64_t spill_floor_ = 0;
  std::uint64_t spill_next_ = 0;  // lowest LPN handed out so far
  std::uint64_t spill_pages_held_ = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spill_free_;
};

}  // namespace smartssd::ssd

#endif  // SMARTSSD_SSD_SSD_DEVICE_H_
