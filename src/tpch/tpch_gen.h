#ifndef SMARTSSD_TPCH_TPCH_GEN_H_
#define SMARTSSD_TPCH_TPCH_GEN_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "engine/database.h"
#include "engine/fleet.h"
#include "storage/schema.h"

namespace smartssd::tpch {

// LINEITEM and PART with the paper's modifications (Section 4.1.1):
//   1. variable-length strings become fixed-length CHARs,
//   2. decimals are stored as integers scaled by 100,
//   3. dates are day counts since the epoch (1992-01-01).
//
// Column order follows TPC-H. At SF 100 the paper's LINEITEM has 600M
// tuples (~90 GB) and PART 20M (~3 GB); rows scale linearly with SF.

// LINEITEM column indexes.
enum LineitemCol : int {
  kLOrderKey = 0,   // INT64
  kLPartKey,        // INT32
  kLSuppKey,        // INT32
  kLLineNumber,     // INT32
  kLQuantity,       // INT32, 1..50
  kLExtendedPrice,  // INT64, cents
  kLDiscount,       // INT32, percent 0..10 (x100 of the decimal)
  kLTax,            // INT32, percent 0..8
  kLReturnFlag,     // CHAR(1)
  kLLineStatus,     // CHAR(1)
  kLShipDate,       // INT32, days since epoch
  kLCommitDate,     // INT32
  kLReceiptDate,    // INT32
  kLShipInstruct,   // CHAR(25)
  kLShipMode,       // CHAR(10)
  kLComment,        // CHAR(44)
};

// PART column indexes.
enum PartCol : int {
  kPPartKey = 0,   // INT32
  kPName,          // CHAR(55)
  kPMfgr,          // CHAR(25)
  kPBrand,         // CHAR(10)
  kPType,          // CHAR(25) — 'PROMO ...' for 1/6 of parts
  kPSize,          // INT32
  kPContainer,     // CHAR(10)
  kPRetailPrice,   // INT64, cents
  kPComment,       // CHAR(23)
};

storage::Schema LineitemSchema();
storage::Schema PartSchema();

inline std::uint64_t LineitemRows(double scale_factor) {
  return static_cast<std::uint64_t>(6'000'000.0 * scale_factor);
}
inline std::uint64_t PartRows(double scale_factor) {
  return static_cast<std::uint64_t>(200'000.0 * scale_factor);
}

// Loads LINEITEM (named `name`) at `scale_factor` into `db` with the
// given layout. Deterministic for a given (scale_factor, seed).
Result<storage::TableInfo> LoadLineitem(engine::Database& db,
                                        std::string name,
                                        double scale_factor,
                                        storage::PageLayout layout,
                                        std::uint64_t seed = 19920101);

Result<storage::TableInfo> LoadPart(engine::Database& db, std::string name,
                                    double scale_factor,
                                    storage::PageLayout layout,
                                    std::uint64_t seed = 19940101);

// Loads LINEITEM partitioned across a fleet's devices by contiguous
// global row ranges. The generator draws from a sequential PRNG, so
// per-range regeneration would diverge; the rows are materialized once
// through a scratch database and replayed verbatim — every fleet shape
// holds exactly the rows a single-device LoadLineitem produces.
Status LoadLineitemFleet(engine::Fleet& fleet, const std::string& name,
                         double scale_factor, storage::PageLayout layout,
                         std::uint64_t seed = 19920101);

}  // namespace smartssd::tpch

#endif  // SMARTSSD_TPCH_TPCH_GEN_H_
