#include "tpch/synthetic.h"

#include <algorithm>
#include <memory>

#include "common/random.h"

namespace smartssd::tpch {

storage::Schema SyntheticSchema(int num_columns) {
  SMARTSSD_CHECK_GT(num_columns, 0);
  std::vector<storage::Column> columns;
  columns.reserve(static_cast<std::size_t>(num_columns));
  for (int i = 1; i <= num_columns; ++i) {
    columns.push_back(storage::Column::Int32("Col_" + std::to_string(i)));
  }
  auto schema = storage::Schema::Create(std::move(columns));
  SMARTSSD_CHECK(schema.ok());
  return std::move(schema).value();
}

Result<storage::TableInfo> LoadSyntheticR(engine::Database& db,
                                          std::string name, int num_columns,
                                          std::uint64_t rows,
                                          storage::PageLayout layout,
                                          std::uint64_t seed) {
  auto rng = std::make_shared<Random>(seed);
  const int cols = num_columns;
  auto gen = [rng, cols](std::uint64_t row, storage::TupleWriter& w) {
    w.SetInt32(0, static_cast<std::int32_t>(row + 1));  // Col_1: PK
    for (int c = 1; c < cols; ++c) {
      w.SetInt32(c, static_cast<std::int32_t>(rng->Uniform(1 << 30)));
    }
  };
  return db.LoadTable(std::move(name), SyntheticSchema(num_columns), layout,
                      rows, gen);
}

Result<storage::TableInfo> LoadSyntheticS(engine::Database& db,
                                          std::string name, int num_columns,
                                          std::uint64_t rows,
                                          std::uint64_t r_rows,
                                          storage::PageLayout layout,
                                          std::uint64_t seed) {
  SMARTSSD_CHECK_GE(num_columns, 3);
  SMARTSSD_CHECK_GT(r_rows, 0u);
  auto rng = std::make_shared<Random>(seed);
  const int cols = num_columns;
  auto gen = [rng, cols, r_rows](std::uint64_t row,
                                 storage::TupleWriter& w) {
    w.SetInt32(0, static_cast<std::int32_t>(row + 1));
    // Col_2: FK into R.Col_1.
    w.SetInt32(1, static_cast<std::int32_t>(rng->Uniform(r_rows) + 1));
    // Col_3: selectivity column.
    w.SetInt32(2, static_cast<std::int32_t>(
                      rng->Uniform(kSelectivityDomain)));
    for (int c = 3; c < cols; ++c) {
      w.SetInt32(c, static_cast<std::int32_t>(rng->Uniform(1 << 30)));
    }
  };
  return db.LoadTable(std::move(name), SyntheticSchema(num_columns), layout,
                      rows, gen);
}

std::int64_t SelectivityThreshold(double selectivity) {
  const double clamped = std::clamp(selectivity, 0.0, 1.0);
  return static_cast<std::int64_t>(
      clamped * static_cast<double>(kSelectivityDomain));
}

}  // namespace smartssd::tpch
