#include "tpch/queries.h"

#include "common/macros.h"
#include "tpch/dates.h"
#include "tpch/synthetic.h"
#include "tpch/tpch_gen.h"

namespace smartssd::tpch {

namespace ex = ::smartssd::expr;

exec::QuerySpec Q6Spec(std::string lineitem_table) {
  exec::QuerySpec spec;
  spec.name = "tpch_q6";
  spec.table = std::move(lineitem_table);
  std::vector<ex::ExprPtr> predicates;
  predicates.push_back(
      ex::Ge(ex::Col(kLShipDate), ex::Lit(DateToDays(1994, 1, 1))));
  predicates.push_back(
      ex::Lt(ex::Col(kLShipDate), ex::Lit(DateToDays(1995, 1, 1))));
  predicates.push_back(ex::Gt(ex::Col(kLDiscount), ex::Lit(5)));
  predicates.push_back(ex::Lt(ex::Col(kLDiscount), ex::Lit(7)));
  predicates.push_back(ex::Lt(ex::Col(kLQuantity), ex::Lit(24)));
  spec.predicate = ex::And(std::move(predicates));
  spec.aggregates.push_back(exec::AggSpec{
      .fn = exec::AggSpec::Fn::kSum,
      .input = ex::Mul(ex::Col(kLExtendedPrice), ex::Col(kLDiscount)),
      .name = "revenue"});
  return spec;
}

double Q6Revenue(const std::vector<std::int64_t>& agg_values) {
  SMARTSSD_CHECK_EQ(agg_values.size(), 1u);
  return static_cast<double>(agg_values[0]) / 10000.0;
}

exec::QuerySpec Q14Spec(std::string lineitem_table,
                        std::string part_table) {
  exec::QuerySpec spec;
  spec.name = "tpch_q14";
  spec.table = std::move(lineitem_table);
  spec.join = exec::JoinSpec{.inner_table = std::move(part_table),
                             .outer_key_col = kLPartKey,
                             .inner_key_col = kPPartKey,
                             .inner_payload_cols = {kPType}};
  spec.order = exec::PipelineOrder::kProbeFirst;
  spec.predicate = ex::And([] {
    std::vector<ex::ExprPtr> predicates;
    predicates.push_back(
        ex::Ge(ex::Col(kLShipDate), ex::Lit(DateToDays(1995, 9, 1))));
    predicates.push_back(
        ex::Lt(ex::Col(kLShipDate), ex::Lit(DateToDays(1995, 10, 1))));
    return predicates;
  }());

  // Combined row: LINEITEM's 16 columns, then p_type.
  const int p_type_col = 16;
  auto discounted_price = [] {
    return ex::Mul(ex::Col(kLExtendedPrice),
                   ex::Sub(ex::Lit(100), ex::Col(kLDiscount)));
  };
  spec.aggregates.push_back(exec::AggSpec{
      .fn = exec::AggSpec::Fn::kSum,
      .input = ex::CaseWhen(
          ex::LikePrefix(ex::Col(p_type_col), "PROMO"),
          discounted_price(), ex::Lit(0)),
      .name = "promo_sum"});
  spec.aggregates.push_back(exec::AggSpec{.fn = exec::AggSpec::Fn::kSum,
                                          .input = discounted_price(),
                                          .name = "total_sum"});
  return spec;
}

double Q14PromoRevenue(const std::vector<std::int64_t>& agg_values) {
  SMARTSSD_CHECK_EQ(agg_values.size(), 2u);
  if (agg_values[1] == 0) return 0;
  return 100.0 * static_cast<double>(agg_values[0]) /
         static_cast<double>(agg_values[1]);
}

exec::QuerySpec JoinQuerySpec(std::string s_table, std::string r_table,
                              double selectivity) {
  exec::QuerySpec spec;
  spec.name = "select_join";
  spec.table = std::move(s_table);
  spec.predicate =
      ex::Lt(ex::Col(2), ex::Lit(SelectivityThreshold(selectivity)));
  spec.join = exec::JoinSpec{.inner_table = std::move(r_table),
                             .outer_key_col = 1,   // S.Col_2
                             .inner_key_col = 0,   // R.Col_1
                             .inner_payload_cols = {1}};  // R.Col_2
  spec.order = exec::PipelineOrder::kFilterFirst;
  // SELECT S.Col_1, R.Col_2: combined index 64 is the payload column
  // (appended after S's 64 columns).
  spec.projection = {0, 64};
  return spec;
}

exec::QuerySpec Q1Spec(std::string lineitem_table) {
  exec::QuerySpec spec;
  spec.name = "tpch_q1";
  spec.table = std::move(lineitem_table);
  spec.predicate =
      ex::Le(ex::Col(kLShipDate), ex::Lit(DateToDays(1998, 9, 2)));
  spec.group_by = {kLReturnFlag, kLLineStatus};
  auto disc_price = [] {
    return ex::Mul(ex::Col(kLExtendedPrice),
                   ex::Sub(ex::Lit(100), ex::Col(kLDiscount)));
  };
  spec.aggregates.push_back(exec::AggSpec{.fn = exec::AggSpec::Fn::kSum,
                                          .input = ex::Col(kLQuantity),
                                          .name = "sum_qty"});
  spec.aggregates.push_back(
      exec::AggSpec{.fn = exec::AggSpec::Fn::kSum,
                    .input = ex::Col(kLExtendedPrice),
                    .name = "sum_base_price"});
  spec.aggregates.push_back(exec::AggSpec{.fn = exec::AggSpec::Fn::kSum,
                                          .input = disc_price(),
                                          .name = "sum_disc_price"});
  spec.aggregates.push_back(exec::AggSpec{
      .fn = exec::AggSpec::Fn::kSum,
      .input = ex::Mul(disc_price(),
                       ex::Add(ex::Lit(100), ex::Col(kLTax))),
      .name = "sum_charge"});
  spec.aggregates.push_back(exec::AggSpec{
      .fn = exec::AggSpec::Fn::kCount, .input = nullptr, .name = "count"});
  return spec;
}

exec::QuerySpec TopNQuerySpec(std::string table, int num_columns,
                              double selectivity, std::uint32_t limit,
                              bool descending) {
  SMARTSSD_CHECK_GE(num_columns, 3);
  exec::QuerySpec spec;
  spec.name = "topn_scan";
  spec.table = std::move(table);
  spec.predicate =
      ex::Lt(ex::Col(2), ex::Lit(SelectivityThreshold(selectivity)));
  spec.projection = {0, 1, 2};
  spec.top_n = exec::TopNSpec{
      .order_col = 0, .descending = descending, .limit = limit};
  return spec;
}

exec::QuerySpec ScanQuerySpec(std::string table, int num_columns,
                              double selectivity, bool aggregate,
                              int projected_columns) {
  SMARTSSD_CHECK_GE(num_columns, 3);
  exec::QuerySpec spec;
  spec.name = aggregate ? "scan_agg" : "scan";
  spec.table = std::move(table);
  spec.predicate =
      ex::Lt(ex::Col(2), ex::Lit(SelectivityThreshold(selectivity)));
  if (aggregate) {
    spec.aggregates.push_back(exec::AggSpec{.fn = exec::AggSpec::Fn::kSum,
                                            .input = ex::Col(0),
                                            .name = "sum_col1"});
  } else {
    const int projected =
        projected_columns <= 0 ? num_columns
                               : std::min(projected_columns, num_columns);
    for (int c = 0; c < projected; ++c) spec.projection.push_back(c);
  }
  return spec;
}

}  // namespace smartssd::tpch
