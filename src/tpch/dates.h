#ifndef SMARTSSD_TPCH_DATES_H_
#define SMARTSSD_TPCH_DATES_H_

#include <cstdint>

namespace smartssd::tpch {

// Date handling for the paper's modification 3: "all date values are
// converted to the number of days since the last epoch". We use the
// TPC-H population start date, 1992-01-01, as day 0.

// Days from civil date (proleptic Gregorian; Howard Hinnant's algorithm).
constexpr std::int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(d) - 1u;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<std::int64_t>(doe) - 719468LL;
}

inline constexpr std::int64_t kEpochCivilDays = DaysFromCivil(1992, 1, 1);

// Days since 1992-01-01 for a civil date.
constexpr std::int32_t DateToDays(int y, int m, int d) {
  return static_cast<std::int32_t>(DaysFromCivil(y, m, d) -
                                   kEpochCivilDays);
}

// TPC-H ship dates span [1992-01-02, 1998-12-01].
inline constexpr std::int32_t kMinShipDate = DateToDays(1992, 1, 2);
inline constexpr std::int32_t kMaxShipDate = DateToDays(1998, 12, 1);

}  // namespace smartssd::tpch

#endif  // SMARTSSD_TPCH_DATES_H_
