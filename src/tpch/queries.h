#ifndef SMARTSSD_TPCH_QUERIES_H_
#define SMARTSSD_TPCH_QUERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/query_spec.h"

namespace smartssd::tpch {

// TPC-H Query 6 (Section 4.2.1):
//   SELECT SUM(l_extendedprice * l_discount) FROM LINEITEM
//   WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
//     AND l_discount > 0.05 AND l_discount < 0.07 AND l_quantity < 24
// Predicates are evaluated in SQL order with short-circuiting, matching
// the ~0.6% selectivity the paper quotes.
exec::QuerySpec Q6Spec(std::string lineitem_table);

// Revenue in dollars from Q6's single aggregate (both factors are
// scaled by 100, so the sum is scaled by 10,000).
double Q6Revenue(const std::vector<std::int64_t>& agg_values);

// TPC-H Query 14 (Section 4.2.2.2): LINEITEM joins PART on partkey; the
// paper's device plan (Figure 6) probes the PART hash table first and
// applies the one-month shipdate window afterwards. Returns two sums:
//   [0] SUM(CASE WHEN p_type LIKE 'PROMO%'
//            THEN l_extendedprice*(100-l_discount) ELSE 0 END)
//   [1] SUM(l_extendedprice*(100-l_discount))
exec::QuerySpec Q14Spec(std::string lineitem_table,
                        std::string part_table);

// promo_revenue = 100 * sum[0] / sum[1] (the scale factors cancel).
double Q14PromoRevenue(const std::vector<std::int64_t>& agg_values);

// The selection-with-join query of Figures 4/5:
//   SELECT S.Col_1, R.Col_2 FROM R, S
//   WHERE R.Col_1 = S.Col_2 AND S.Col_3 < [VALUE]
// with [VALUE] choosing `selectivity` of S's rows; selection runs before
// the probe (Figure 4's plan).
exec::QuerySpec JoinQuerySpec(std::string s_table, std::string r_table,
                              double selectivity);

// Single-table scan over a SyntheticK table with a Col_3 predicate of
// the given selectivity (the SIGMOD'13 sweep queries). With
// `aggregate` the query returns SUM(Col_1); otherwise it returns the
// qualifying rows' first `projected_columns` columns (0 = all columns),
// which makes result volume scale with selectivity.
exec::QuerySpec ScanQuerySpec(std::string table, int num_columns,
                              double selectivity, bool aggregate,
                              int projected_columns = 0);

// --- Extension queries (beyond the paper's evaluated class) ---

// TPC-H Query 1: the classic scan-heavy grouped aggregation —
//   SELECT l_returnflag, l_linestatus, SUM(l_quantity),
//          SUM(l_extendedprice), SUM(l_extendedprice*(100-l_discount)),
//          SUM(l_extendedprice*(100-l_discount)*(100+l_tax)), COUNT(*)
//   WHERE l_shipdate <= '1998-09-02' GROUP BY 1, 2
// Four groups, tiny result: an ideal pushdown shape that the paper's
// prototype could not run (no GROUP BY operator in the device).
exec::QuerySpec Q1Spec(std::string lineitem_table);

// ORDER BY Col_1 LIMIT k over a SyntheticK table with a Col_3 filter:
// top-N pushdown returns k rows no matter the selectivity.
exec::QuerySpec TopNQuerySpec(std::string table, int num_columns,
                              double selectivity, std::uint32_t limit,
                              bool descending = true);

}  // namespace smartssd::tpch

#endif  // SMARTSSD_TPCH_QUERIES_H_
