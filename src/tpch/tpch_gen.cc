#include "tpch/tpch_gen.h"

#include <cstring>
#include <memory>
#include <vector>

#include "common/random.h"
#include "storage/nsm_page.h"
#include "tpch/dates.h"

namespace smartssd::tpch {

namespace {

using storage::Column;

// p_type syllables (TPC-H 4.2.2.13). 'PROMO' leads 1/6 of the types,
// which is what Q14's promo_revenue numerator selects on.
constexpr const char* kTypes1[] = {"STANDARD", "SMALL",   "MEDIUM",
                                   "LARGE",    "ECONOMY", "PROMO"};
constexpr const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED",
                                   "POLISHED", "BRUSHED"};
constexpr const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                   "COPPER"};
constexpr const char* kShipModes[] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                      "TRUCK",   "MAIL", "FOB"};
constexpr const char* kShipInstruct[] = {"DELIVER IN PERSON",
                                         "COLLECT COD", "NONE",
                                         "TAKE BACK RETURN"};
constexpr const char* kContainers[] = {"SM CASE", "SM BOX", "MED BAG",
                                       "LG JAR",  "WRAP",   "JUMBO PKG"};

// TPC-H part retail price in cents (4.2.3): a deterministic function of
// the part key.
std::int64_t RetailPriceCents(std::int64_t partkey) {
  return 90000 + (partkey / 10) % 20001 + 100 * (partkey % 1000);
}

std::string MakeTypeString(Random& rng) {
  std::string type = kTypes1[rng.Uniform(6)];
  type += ' ';
  type += kTypes2[rng.Uniform(5)];
  type += ' ';
  type += kTypes3[rng.Uniform(5)];
  return type;
}

}  // namespace

storage::Schema LineitemSchema() {
  auto schema = storage::Schema::Create({
      Column::Int64("l_orderkey"),
      Column::Int32("l_partkey"),
      Column::Int32("l_suppkey"),
      Column::Int32("l_linenumber"),
      Column::Int32("l_quantity"),
      Column::Int64("l_extendedprice"),
      Column::Int32("l_discount"),
      Column::Int32("l_tax"),
      Column::FixedChar("l_returnflag", 1),
      Column::FixedChar("l_linestatus", 1),
      Column::Int32("l_shipdate"),
      Column::Int32("l_commitdate"),
      Column::Int32("l_receiptdate"),
      Column::FixedChar("l_shipinstruct", 25),
      Column::FixedChar("l_shipmode", 10),
      Column::FixedChar("l_comment", 44),
  });
  SMARTSSD_CHECK(schema.ok());
  return std::move(schema).value();
}

storage::Schema PartSchema() {
  auto schema = storage::Schema::Create({
      Column::Int32("p_partkey"),
      Column::FixedChar("p_name", 55),
      Column::FixedChar("p_mfgr", 25),
      Column::FixedChar("p_brand", 10),
      Column::FixedChar("p_type", 25),
      Column::Int32("p_size"),
      Column::FixedChar("p_container", 10),
      Column::Int64("p_retailprice"),
      Column::FixedChar("p_comment", 23),
  });
  SMARTSSD_CHECK(schema.ok());
  return std::move(schema).value();
}

Result<storage::TableInfo> LoadLineitem(engine::Database& db,
                                        std::string name,
                                        double scale_factor,
                                        storage::PageLayout layout,
                                        std::uint64_t seed) {
  const std::uint64_t rows = LineitemRows(scale_factor);
  const std::uint64_t parts = PartRows(scale_factor);
  auto rng = std::make_shared<Random>(seed);
  auto gen = [rng, parts](std::uint64_t row, storage::TupleWriter& w) {
    Random& r = *rng;
    // ~4 lineitems per order on average; line numbers cycle 1..7.
    w.SetInt64(kLOrderKey, static_cast<std::int64_t>(row / 4 + 1));
    const std::int64_t partkey =
        static_cast<std::int64_t>(r.Uniform(parts == 0 ? 1 : parts)) + 1;
    w.SetInt32(kLPartKey, static_cast<std::int32_t>(partkey));
    w.SetInt32(kLSuppKey, static_cast<std::int32_t>(r.Uniform(10000) + 1));
    w.SetInt32(kLLineNumber, static_cast<std::int32_t>(row % 7 + 1));
    const std::int32_t quantity =
        static_cast<std::int32_t>(r.Uniform(50) + 1);
    w.SetInt32(kLQuantity, quantity);
    w.SetInt64(kLExtendedPrice, quantity * RetailPriceCents(partkey));
    // discount 0.00..0.10 and tax 0.00..0.08, scaled by 100.
    w.SetInt32(kLDiscount, static_cast<std::int32_t>(r.Uniform(11)));
    w.SetInt32(kLTax, static_cast<std::int32_t>(r.Uniform(9)));
    const std::int32_t shipdate = static_cast<std::int32_t>(
        r.UniformInt(kMinShipDate, kMaxShipDate));
    const std::int32_t receiptdate =
        shipdate + static_cast<std::int32_t>(r.Uniform(30)) + 1;
    // TPC-H 4.2.3: returnflag is R or A for items received by the
    // "current date" (1995-06-17), N afterwards; linestatus is F/O by
    // ship date. This correlation is what gives Q1 its classic four
    // groups.
    const std::int32_t current_date = DateToDays(1995, 6, 17);
    if (receiptdate <= current_date) {
      w.SetChar(kLReturnFlag, r.Uniform(2) == 0 ? "R" : "A");
    } else {
      w.SetChar(kLReturnFlag, "N");
    }
    w.SetChar(kLLineStatus, shipdate > current_date ? "O" : "F");
    w.SetInt32(kLShipDate, shipdate);
    w.SetInt32(kLCommitDate,
               shipdate + static_cast<std::int32_t>(r.Uniform(60)) - 30);
    w.SetInt32(kLReceiptDate, receiptdate);
    w.SetChar(kLShipInstruct, kShipInstruct[r.Uniform(4)]);
    w.SetChar(kLShipMode, kShipModes[r.Uniform(7)]);
    w.SetChar(kLComment, "synthetic lineitem comment text");
  };
  return db.LoadTable(std::move(name), LineitemSchema(), layout, rows, gen);
}

Result<storage::TableInfo> LoadPart(engine::Database& db, std::string name,
                                    double scale_factor,
                                    storage::PageLayout layout,
                                    std::uint64_t seed) {
  const std::uint64_t rows = PartRows(scale_factor);
  auto rng = std::make_shared<Random>(seed);
  auto gen = [rng](std::uint64_t row, storage::TupleWriter& w) {
    Random& r = *rng;
    const std::int64_t partkey = static_cast<std::int64_t>(row) + 1;
    w.SetInt32(kPPartKey, static_cast<std::int32_t>(partkey));
    w.SetChar(kPName, "part name " + std::to_string(partkey));
    w.SetChar(kPMfgr,
              "Manufacturer#" + std::to_string(r.Uniform(5) + 1));
    w.SetChar(kPBrand, "Brand#" + std::to_string(r.Uniform(5) + 1) +
                           std::to_string(r.Uniform(5) + 1));
    w.SetChar(kPType, MakeTypeString(r));
    w.SetInt32(kPSize, static_cast<std::int32_t>(r.Uniform(50) + 1));
    w.SetChar(kPContainer, kContainers[r.Uniform(6)]);
    w.SetInt64(kPRetailPrice, RetailPriceCents(partkey));
    w.SetChar(kPComment, "synthetic part");
  };
  return db.LoadTable(std::move(name), PartSchema(), layout, rows, gen);
}

Status LoadLineitemFleet(engine::Fleet& fleet, const std::string& name,
                         double scale_factor, storage::PageLayout layout,
                         std::uint64_t seed) {
  const storage::Schema schema = LineitemSchema();
  const std::uint64_t rows = LineitemRows(scale_factor);
  const std::uint32_t tuple_size = schema.tuple_size();
  auto buffer =
      std::make_shared<std::vector<std::byte>>(rows * tuple_size);
  {
    engine::Database scratch(engine::DatabaseOptions::PaperSmartSsd());
    SMARTSSD_ASSIGN_OR_RETURN(
        storage::TableInfo info,
        LoadLineitem(scratch, name, scale_factor,
                     storage::PageLayout::kNsm, seed));
    std::vector<std::byte> page(scratch.device().page_size());
    std::uint64_t row = 0;
    for (std::uint64_t p = 0; p < info.page_count; ++p) {
      SMARTSSD_RETURN_IF_ERROR(
          scratch.device().ReadPages(info.first_lpn + p, 1, page, 0)
              .status());
      SMARTSSD_ASSIGN_OR_RETURN(
          storage::NsmPageReader reader,
          storage::NsmPageReader::Open(&schema, page));
      for (std::uint16_t i = 0; i < reader.tuple_count(); ++i, ++row) {
        std::memcpy(buffer->data() + row * tuple_size, reader.tuple(i),
                    tuple_size);
      }
    }
    if (row != rows) {
      return InternalError("lineitem materialization lost rows");
    }
  }
  storage::RowGenerator raw_gen =
      [buffer, tuple_size](std::uint64_t row,
                           storage::TupleWriter& writer) {
        writer.CopyFrom({buffer->data() + row * tuple_size, tuple_size});
      };
  return fleet.LoadPartitionedTable(name, schema, layout, rows, raw_gen);
}

}  // namespace smartssd::tpch
