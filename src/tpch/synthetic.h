#ifndef SMARTSSD_TPCH_SYNTHETIC_H_
#define SMARTSSD_TPCH_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "engine/database.h"
#include "storage/schema.h"

namespace smartssd::tpch {

// The paper's synthetic tables (Section 4.1.1): SyntheticK tables have K
// INT32 columns named Col_1..Col_K. Synthetic64_R's Col_1 is the primary
// key; Synthetic64_S's Col_2 is a foreign key into R.Col_1. S.Col_3 is
// uniform in [0, kSelectivityDomain), so a predicate
//   Col_3 < selectivity * kSelectivityDomain
// selects that fraction of rows exactly in expectation.
inline constexpr std::int64_t kSelectivityDomain = 1'000'000'000;

storage::Schema SyntheticSchema(int num_columns);

// Loads an R-style table: Col_1 = row+1 (unique key), other columns
// pseudo-random.
Result<storage::TableInfo> LoadSyntheticR(engine::Database& db,
                                          std::string name, int num_columns,
                                          std::uint64_t rows,
                                          storage::PageLayout layout,
                                          std::uint64_t seed = 64001);

// Loads an S-style table: Col_2 uniform in [1, r_rows] (FK into R),
// Col_3 uniform in [0, kSelectivityDomain), other columns pseudo-random.
Result<storage::TableInfo> LoadSyntheticS(engine::Database& db,
                                          std::string name, int num_columns,
                                          std::uint64_t rows,
                                          std::uint64_t r_rows,
                                          storage::PageLayout layout,
                                          std::uint64_t seed = 64002);

// Predicate threshold selecting ~`selectivity` of an S table's rows.
std::int64_t SelectivityThreshold(double selectivity);

}  // namespace smartssd::tpch

#endif  // SMARTSSD_TPCH_SYNTHETIC_H_
