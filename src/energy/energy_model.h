#ifndef SMARTSSD_ENERGY_ENERGY_MODEL_H_
#define SMARTSSD_ENERGY_ENERGY_MODEL_H_

#include "engine/host_machine.h"
#include "engine/metrics.h"
#include "ssd/block_device.h"

namespace smartssd::energy {

// Energy accounting for one query, reproducing Table 3's two
// granularities: the whole server at the wall socket, and just the I/O
// subsystem (the storage device behind the HBA).
//
// Model: power is integrated over the query's *virtual* elapsed time.
//   system W = idle base (235 W on the paper's server)
//            + host active overhead while a query runs (threads, buffer
//              management, GET polling)
//            + a data-rate term for moving bytes across the HBA into
//              host memory (this is what separates the SSD run's power
//              from the Smart SSD run's: 550 MB/s of ingest vs a trickle
//              of result tuples)
//            + the device's active power.
//   I/O subsystem W = the device's active power.
struct EnergyBreakdown {
  double elapsed_seconds = 0;
  double average_system_watts = 0;
  double system_kilojoules = 0;
  double io_kilojoules = 0;
  // Energy above the idle base over the same interval — the paper's
  // alternative accounting ("if we only consider the energy consumption
  // over the base idle energy (235W)").
  double over_idle_kilojoules = 0;
};

EnergyBreakdown ComputeEnergy(const engine::QueryStats& stats,
                              const engine::HostConfig& host,
                              const ssd::DevicePowerProfile& device);

}  // namespace smartssd::energy

#endif  // SMARTSSD_ENERGY_ENERGY_MODEL_H_
