#include "energy/energy_model.h"

namespace smartssd::energy {

EnergyBreakdown ComputeEnergy(const engine::QueryStats& stats,
                              const engine::HostConfig& host,
                              const ssd::DevicePowerProfile& device) {
  EnergyBreakdown breakdown;
  breakdown.elapsed_seconds = stats.elapsed_seconds();
  const double ingest_gbps = stats.host_ingest_gbps();
  const double host_over_idle =
      host.query_active_watts + host.per_gbps_watts * ingest_gbps;
  const double system_watts =
      host.idle_system_watts + host_over_idle + device.active_watts;
  breakdown.average_system_watts = system_watts;
  breakdown.system_kilojoules =
      system_watts * breakdown.elapsed_seconds / 1000.0;
  breakdown.io_kilojoules =
      device.active_watts * breakdown.elapsed_seconds / 1000.0;
  breakdown.over_idle_kilojoules =
      (system_watts - host.idle_system_watts) * breakdown.elapsed_seconds /
      1000.0;
  return breakdown;
}

}  // namespace smartssd::energy
