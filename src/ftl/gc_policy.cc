#include "ftl/gc_policy.h"

namespace smartssd::ftl {

namespace {

// Shared deterministic tie-break: fewer valid pages, then lower erase
// count (steer churn toward less-worn blocks), then lower block index.
bool TieBreakBefore(const GcBlockView& a, const GcBlockView& b) {
  if (a.valid_pages != b.valid_pages) return a.valid_pages < b.valid_pages;
  if (a.erase_count != b.erase_count) return a.erase_count < b.erase_count;
  return a.block < b.block;
}

class GreedyGcPolicy final : public GcPolicy {
 public:
  GcPolicyKind kind() const override { return GcPolicyKind::kGreedy; }

  std::uint32_t SelectVictim(std::span<const GcBlockView> candidates,
                             std::uint32_t /*pages_per_block*/)
      const override {
    const GcBlockView* best = nullptr;
    for (const GcBlockView& c : candidates) {
      if (best == nullptr || TieBreakBefore(c, *best)) best = &c;
    }
    return best == nullptr ? kNoVictim : best->block;
  }
};

class CostBenefitGcPolicy final : public GcPolicy {
 public:
  GcPolicyKind kind() const override { return GcPolicyKind::kCostBenefit; }

  std::uint32_t SelectVictim(std::span<const GcBlockView> candidates,
                             std::uint32_t pages_per_block) const override {
    // score = freed * (1 + age) / (pages_per_block + valid): the LFS
    // benefit/cost rule with utilization u = valid/pages_per_block.
    // Scores compare by cross-multiplication in 128-bit integers, so the
    // ordering is exact and platform-independent.
    const GcBlockView* best = nullptr;
    for (const GcBlockView& c : candidates) {
      if (best == nullptr || ScoreBefore(*best, c, pages_per_block) ||
          (!ScoreBefore(c, *best, pages_per_block) &&
           TieBreakBefore(c, *best))) {
        best = &c;
      }
    }
    return best == nullptr ? kNoVictim : best->block;
  }

 private:
  // True iff a's score is strictly below b's.
  static bool ScoreBefore(const GcBlockView& a, const GcBlockView& b,
                          std::uint32_t pages_per_block) {
    using U128 = unsigned __int128;
    const U128 num_a = U128(pages_per_block - a.valid_pages) * (1 + a.age);
    const U128 num_b = U128(pages_per_block - b.valid_pages) * (1 + b.age);
    const U128 den_a = pages_per_block + a.valid_pages;
    const U128 den_b = pages_per_block + b.valid_pages;
    return num_a * den_b < num_b * den_a;
  }
};

}  // namespace

std::string_view GcPolicyName(GcPolicyKind kind) {
  switch (kind) {
    case GcPolicyKind::kGreedy:
      return "greedy";
    case GcPolicyKind::kCostBenefit:
      return "cost-benefit";
  }
  return "?";
}

std::unique_ptr<GcPolicy> MakeGcPolicy(GcPolicyKind kind) {
  switch (kind) {
    case GcPolicyKind::kGreedy:
      return std::make_unique<GreedyGcPolicy>();
    case GcPolicyKind::kCostBenefit:
      return std::make_unique<CostBenefitGcPolicy>();
  }
  return std::make_unique<GreedyGcPolicy>();
}

}  // namespace smartssd::ftl
