#include "ftl/ftl.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace smartssd::ftl {

namespace {
constexpr std::uint32_t kNoBlock = ~0U;

// Clears the in-GC flag on every exit path of MaybeCollect, so a fault
// surfaced mid-relocation leaves the FTL able to collect again instead
// of wedged with GC permanently disabled.
class GcScope {
 public:
  explicit GcScope(bool* flag) : flag_(flag) { *flag_ = true; }
  ~GcScope() { *flag_ = false; }
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(GcScope);

 private:
  bool* flag_;
};
}  // namespace

Ftl::Ftl(flash::FlashArray* array, const FtlConfig& config)
    : array_(array), config_(config), policy_(MakeGcPolicy(config.gc_policy)) {
  SMARTSSD_CHECK(array != nullptr);
  SMARTSSD_CHECK(config.over_provisioning >= 0.0 &&
                 config.over_provisioning < 1.0);
  const flash::Geometry& g = array_->geometry();
  logical_pages_ = static_cast<std::uint64_t>(
      static_cast<double>(g.total_pages()) *
      (1.0 - config.over_provisioning));
  l2p_.assign(logical_pages_, kUnmapped);
  p2l_.assign(g.total_pages(), kUnmapped);
  valid_.assign(g.total_pages(), false);
  valid_per_block_.assign(g.total_blocks(), 0);
  block_invalidate_stamp_.assign(g.total_blocks(), 0);

  cursors_.resize(g.total_chips());
  for (std::uint64_t chip = 0; chip < g.total_chips(); ++chip) {
    for (std::uint32_t b = 0; b < g.blocks_per_chip; ++b) {
      cursors_[chip].free_blocks.push_back(b);
    }
  }
}

std::uint64_t Ftl::PhysicalPageCount() const {
  return array_->geometry().total_pages();
}

bool Ftl::IsMapped(std::uint64_t lpn) const {
  return lpn < logical_pages_ && l2p_[lpn] != kUnmapped;
}

std::span<const std::byte> Ftl::View(std::uint64_t lpn) const {
  if (!IsMapped(lpn)) return {};
  return array_->store().View(l2p_[lpn]);
}

Status Ftl::Invalidate(std::uint64_t ppn) {
  if (!valid_[ppn]) return Status::OK();
  valid_[ppn] = false;
  p2l_[ppn] = kUnmapped;
  const std::uint64_t block = ppn / array_->geometry().pages_per_block;
  if (valid_per_block_[block] == 0) {
    return CorruptionError(
        "ftl: valid-page accounting underflow (map corruption)");
  }
  --valid_per_block_[block];
  block_invalidate_stamp_[block] = ++invalidate_stamp_;
  return Status::OK();
}

void Ftl::AttachTracer(obs::Tracer* tracer, std::string_view process) {
  tracer_ = tracer;
  if (tracer_ != nullptr) track_ = tracer_->RegisterTrack(process, "ftl gc");
}

void Ftl::AttachMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_gc_runs_ = nullptr;
    m_gc_relocations_ = nullptr;
    m_gc_pause_ = nullptr;
    m_free_blocks_ = nullptr;
    m_write_amp_ = nullptr;
    return;
  }
  m_gc_runs_ = metrics->counter("ftl.gc_runs");
  m_gc_relocations_ = metrics->counter("ftl.gc_relocations");
  m_gc_pause_ = metrics->histogram("ftl.gc_pause_ns");
  m_free_blocks_ = metrics->gauge("ftl.free_blocks");
  // Gauges are integral, so write amplification is kept in thousandths
  // (1000 = writes cost exactly what the host asked for).
  m_write_amp_ = metrics->gauge("ftl.write_amplification");
  UpdateGauges();
}

void Ftl::UpdateGauges() {
  if (m_free_blocks_ != nullptr) {
    m_free_blocks_->Set(static_cast<std::int64_t>(free_blocks()));
  }
  if (m_write_amp_ != nullptr) {
    m_write_amp_->Set(static_cast<std::int64_t>(
        stats_.write_amplification() * 1000.0));
  }
}

Result<SimTime> Ftl::MaybeCollect(int channel, int chip, SimTime ready) {
  const flash::Geometry& g = array_->geometry();
  const std::uint64_t chip_index =
      static_cast<std::uint64_t>(channel) * g.chips_per_channel + chip;
  ChipCursor& cursor = cursors_[chip_index];
  if (in_gc_ ||
      cursor.free_blocks.size() > config_.gc_low_watermark_blocks) {
    return ready;
  }
  GcScope gc_scope(&in_gc_);
  ++stats_.gc_runs;
  obs::BumpCounter(m_gc_runs_);
  const std::uint64_t relocations_before = stats_.gc_relocations;
  SimTime now = ready;

  // Candidates: every non-active, non-free block on this chip. The
  // configured policy picks the victim.
  const std::uint64_t first_block =
      chip_index * static_cast<std::uint64_t>(g.blocks_per_chip);
  std::vector<GcBlockView> candidates;
  candidates.reserve(g.blocks_per_chip);
  for (std::uint32_t b = 0; b < g.blocks_per_chip; ++b) {
    if (b == cursor.active_block) continue;
    const bool free_listed =
        std::find(cursor.free_blocks.begin(), cursor.free_blocks.end(),
                  b) != cursor.free_blocks.end();
    if (free_listed) continue;
    const std::uint64_t block_index = first_block + b;
    candidates.push_back(GcBlockView{
        .block = b,
        .valid_pages = valid_per_block_[block_index],
        .erase_count = array_->block_state(block_index).erase_count,
        .age = invalidate_stamp_ - block_invalidate_stamp_[block_index]});
  }
  const std::uint32_t victim =
      policy_->SelectVictim(candidates, g.pages_per_block);
  if (victim == GcPolicy::kNoVictim) {
    return ResourceExhaustedError("ftl: no GC victim available");
  }
  const std::uint32_t victim_valid = valid_per_block_[first_block + victim];

  // Relocate the victim's valid pages through the normal write path (the
  // in_gc_ flag suppresses nested collection).
  const std::uint64_t victim_first_page =
      (first_block + victim) * static_cast<std::uint64_t>(g.pages_per_block);
  std::vector<std::byte> buffer(g.page_size_bytes);
  for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
    const std::uint64_t ppn = victim_first_page + p;
    if (!valid_[ppn]) continue;
    const std::uint64_t lpn = p2l_[ppn];
    if (lpn == kUnmapped) {
      return CorruptionError(
          "ftl: p2l map missing an entry for a valid page");
    }
    const flash::PageAddress src = flash::AddressFromPageIndex(g, ppn);
    SMARTSSD_ASSIGN_OR_RETURN(SimTime read_done,
                              array_->ReadPage(src, now, buffer));
    SimTime gc_delay = read_done;
    SMARTSSD_ASSIGN_OR_RETURN(const std::uint64_t dst_ppn,
                              AllocatePage(read_done, &gc_delay));
    const flash::PageAddress dst = flash::AddressFromPageIndex(g, dst_ppn);
    SMARTSSD_ASSIGN_OR_RETURN(now,
                              array_->ProgramPage(dst, buffer, gc_delay));
    SMARTSSD_RETURN_IF_ERROR(Invalidate(ppn));
    l2p_[lpn] = dst_ppn;
    p2l_[dst_ppn] = lpn;
    valid_[dst_ppn] = true;
    ++valid_per_block_[dst_ppn / g.pages_per_block];
    ++stats_.gc_relocations;
  }

  const flash::PageAddress victim_addr =
      flash::AddressFromPageIndex(g, victim_first_page);
  SMARTSSD_ASSIGN_OR_RETURN(
      now, array_->EraseBlock(victim_addr.channel, victim_addr.chip, victim,
                              now));
  ++stats_.block_erases;
  cursor.free_blocks.push_back(victim);
  const std::uint64_t relocated =
      stats_.gc_relocations - relocations_before;
  obs::BumpCounter(m_gc_relocations_, relocated);
  obs::RecordHistogram(m_gc_pause_, now - ready);
  UpdateGauges();
  if (tracer_ != nullptr) {
    tracer_->Complete(
        track_, "gc run", "ftl", ready, now,
        {obs::Arg::Uint("relocated_pages", relocated),
         obs::Arg::Uint("victim_valid", victim_valid),
         obs::Arg::Uint("victim_erases",
                        array_->block_state(first_block + victim)
                            .erase_count),
         obs::Arg::Str("policy", policy_->name())});
  }
  return now;
}

Result<std::uint64_t> Ftl::AllocatePage(SimTime ready, SimTime* gc_done) {
  const flash::Geometry& g = array_->geometry();
  const std::uint64_t chip_count = g.total_chips();
  // Round-robin over chips: consecutive logical writes land on
  // consecutive channels, which is what lets a later sequential read
  // stream from all channels at once.
  for (std::uint64_t attempt = 0; attempt < chip_count; ++attempt) {
    const std::uint64_t chip_index = stripe_cursor_ % chip_count;
    stripe_cursor_++;
    ChipCursor& cursor = cursors_[chip_index];
    const int channel = static_cast<int>(chip_index / g.chips_per_channel);
    const int chip = static_cast<int>(chip_index % g.chips_per_channel);

    if (!in_gc_) {
      SMARTSSD_ASSIGN_OR_RETURN(*gc_done,
                                MaybeCollect(channel, chip, *gc_done));
    }
    if (cursor.active_block == ChipCursor::kNoBlock ||
        array_->block_state(chip_index * g.blocks_per_chip +
                            cursor.active_block)
                .write_pointer >= g.pages_per_block) {
      if (cursor.free_blocks.empty()) continue;  // try another chip
      // Wear-aware selection: open the least-erased free block (ties to
      // the lowest block index), so erase counts stay within a bounded
      // spread instead of the FIFO free list recycling hot blocks.
      std::size_t best = 0;
      for (std::size_t i = 1; i < cursor.free_blocks.size(); ++i) {
        const std::uint32_t cand = cursor.free_blocks[i];
        const std::uint32_t held = cursor.free_blocks[best];
        const std::uint32_t cand_erases =
            array_->block_state(chip_index * g.blocks_per_chip + cand)
                .erase_count;
        const std::uint32_t held_erases =
            array_->block_state(chip_index * g.blocks_per_chip + held)
                .erase_count;
        if (cand_erases < held_erases ||
            (cand_erases == held_erases && cand < held)) {
          best = i;
        }
      }
      cursor.active_block = cursor.free_blocks[best];
      cursor.free_blocks.erase(cursor.free_blocks.begin() +
                               static_cast<std::ptrdiff_t>(best));
    }
    const std::uint64_t block_index =
        chip_index * g.blocks_per_chip + cursor.active_block;
    const std::uint32_t page = array_->block_state(block_index).write_pointer;
    return block_index * static_cast<std::uint64_t>(g.pages_per_block) +
           page;
  }
  (void)ready;
  return ResourceExhaustedError("ftl: flash array is full");
}

Result<SimTime> Ftl::Write(std::uint64_t lpn,
                           std::span<const std::byte> data, SimTime ready) {
  if (lpn >= logical_pages_) {
    return OutOfRangeError("ftl write: lpn beyond logical capacity");
  }
  if (data.size() > page_size()) {
    return InvalidArgumentError("ftl write: data larger than a page");
  }
  ready += config_.command_overhead;
  SimTime gc_done = ready;
  SMARTSSD_ASSIGN_OR_RETURN(const std::uint64_t ppn,
                            AllocatePage(ready, &gc_done));
  const flash::PageAddress addr =
      flash::AddressFromPageIndex(array_->geometry(), ppn);
  SMARTSSD_ASSIGN_OR_RETURN(const SimTime done,
                            array_->ProgramPage(addr, data, gc_done));
  if (l2p_[lpn] != kUnmapped) {
    SMARTSSD_RETURN_IF_ERROR(Invalidate(l2p_[lpn]));
  }
  l2p_[lpn] = ppn;
  p2l_[ppn] = lpn;
  valid_[ppn] = true;
  ++valid_per_block_[ppn / array_->geometry().pages_per_block];
  ++stats_.host_writes;
  UpdateGauges();
  return done;
}

Result<SimTime> Ftl::ReadTiming(std::uint64_t lpn, SimTime ready) {
  if (lpn >= logical_pages_) {
    return OutOfRangeError("ftl read: lpn beyond logical capacity");
  }
  ready += config_.command_overhead;
  ++stats_.host_reads;
  if (l2p_[lpn] == kUnmapped) {
    // Served straight from the mapping table; no flash operation.
    ++stats_.unmapped_reads;
    return ready;
  }
  const flash::PageAddress addr =
      flash::AddressFromPageIndex(array_->geometry(), l2p_[lpn]);
  return array_->ReadPageTiming(addr, ready);
}

Result<SimTime> Ftl::Read(std::uint64_t lpn, std::span<std::byte> out,
                          SimTime ready) {
  SMARTSSD_ASSIGN_OR_RETURN(const SimTime done, ReadTiming(lpn, ready));
  if (!out.empty()) {
    if (l2p_[lpn] == kUnmapped) {
      std::fill(out.begin(),
                out.begin() + std::min<std::size_t>(out.size(), page_size()),
                std::byte{0});
    } else {
      SMARTSSD_RETURN_IF_ERROR(array_->store().Read(l2p_[lpn], out));
    }
  }
  return done;
}

Status Ftl::Trim(std::uint64_t lpn) {
  if (lpn >= logical_pages_) {
    return OutOfRangeError("ftl trim: lpn beyond logical capacity");
  }
  if (l2p_[lpn] != kUnmapped) {
    SMARTSSD_RETURN_IF_ERROR(Invalidate(l2p_[lpn]));
    l2p_[lpn] = kUnmapped;
  }
  return Status::OK();
}

std::uint32_t Ftl::max_erase_count() const {
  const flash::Geometry& g = array_->geometry();
  std::uint32_t max_count = 0;
  for (std::uint64_t b = 0; b < g.total_blocks(); ++b) {
    max_count = std::max(max_count, array_->block_state(b).erase_count);
  }
  return max_count;
}

std::uint32_t Ftl::min_erase_count() const {
  const flash::Geometry& g = array_->geometry();
  std::uint32_t min_count = ~0U;
  for (std::uint64_t b = 0; b < g.total_blocks(); ++b) {
    min_count = std::min(min_count, array_->block_state(b).erase_count);
  }
  return min_count;
}

std::uint64_t Ftl::free_blocks() const {
  std::uint64_t total = 0;
  for (const ChipCursor& cursor : cursors_) {
    total += cursor.free_blocks.size();
  }
  return total;
}

}  // namespace smartssd::ftl
