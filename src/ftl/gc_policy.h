#ifndef SMARTSSD_FTL_GC_POLICY_H_
#define SMARTSSD_FTL_GC_POLICY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

namespace smartssd::ftl {

// Which victim-selection policy the FTL's garbage collector runs. The
// two classic families (see EagleTree's Garbage_Collector_* hierarchy):
//
//   kGreedy      — fewest valid pages wins. Minimizes relocation work
//                  per run, but under a hot/cold mix it keeps re-picking
//                  the hot blocks and never reclaims cold ones.
//   kCostBenefit — the LFS-style (benefit/cost) = (1-u)(1+age)/(1+u)
//                  rule: blocks that have not been invalidated recently
//                  (cold, LRU-style) win even with more valid pages,
//                  trading extra relocations now for fewer GC runs on
//                  the hot blocks later.
//
// Both policies are deterministic: scores compare in exact integer
// arithmetic and every tie breaks toward fewer valid pages, then lower
// erase count, then lower block index.
enum class GcPolicyKind {
  kGreedy = 0,
  kCostBenefit,
};

std::string_view GcPolicyName(GcPolicyKind kind);

// What the policy sees of one candidate block (chip-relative). The FTL
// only offers non-active, non-free blocks as candidates.
struct GcBlockView {
  std::uint32_t block = 0;        // chip-relative block index
  std::uint32_t valid_pages = 0;  // pages GC would have to relocate
  std::uint32_t erase_count = 0;  // wear
  // Invalidation stamps elapsed since a page of this block was last
  // invalidated — the policy's "age": large means cold. A block never
  // invalidated reports the full stamp count (maximally cold).
  std::uint64_t age = 0;
};

class GcPolicy {
 public:
  static constexpr std::uint32_t kNoVictim = ~0U;

  virtual ~GcPolicy() = default;

  virtual GcPolicyKind kind() const = 0;
  std::string_view name() const { return GcPolicyName(kind()); }

  // Picks the victim's chip-relative block index from `candidates`, or
  // kNoVictim when the list is empty.
  virtual std::uint32_t SelectVictim(
      std::span<const GcBlockView> candidates,
      std::uint32_t pages_per_block) const = 0;
};

std::unique_ptr<GcPolicy> MakeGcPolicy(GcPolicyKind kind);

}  // namespace smartssd::ftl

#endif  // SMARTSSD_FTL_GC_POLICY_H_
