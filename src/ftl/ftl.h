#ifndef SMARTSSD_FTL_FTL_H_
#define SMARTSSD_FTL_FTL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"
#include "common/units.h"
#include "flash/flash_array.h"
#include "ftl/gc_policy.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace smartssd::ftl {

struct FtlConfig {
  // Fraction of physical capacity hidden from the host (over-provisioning).
  double over_provisioning = 0.125;
  // Garbage collection starts when a chip's free-block count drops to this.
  std::uint32_t gc_low_watermark_blocks = 2;
  // Firmware lookup/dispatch overhead charged per host command.
  SimDuration command_overhead = 2 * kMicrosecond;
  // Victim-selection policy for garbage collection (see gc_policy.h).
  GcPolicyKind gc_policy = GcPolicyKind::kGreedy;
};

struct FtlStats {
  std::uint64_t host_writes = 0;       // pages written by the host
  std::uint64_t gc_relocations = 0;    // pages moved by GC
  std::uint64_t gc_runs = 0;
  std::uint64_t block_erases = 0;
  std::uint64_t host_reads = 0;
  std::uint64_t unmapped_reads = 0;

  double write_amplification() const {
    if (host_writes == 0) return 1.0;
    return static_cast<double>(host_writes + gc_relocations) /
           static_cast<double>(host_writes);
  }
};

// Page-level Flash Translation Layer. Maps logical page numbers (LPNs) to
// physical pages, stripes consecutive writes across channels (which is
// what gives sequential scans their channel-level parallelism), and runs
// greedy cost-based garbage collection per chip.
//
// The FTL is the firmware component the paper's Section 2 describes as
// running on the embedded processors; its command overhead is charged on
// the virtual clock but is negligible next to page transfer times, as in
// the real device.
class Ftl {
 public:
  Ftl(flash::FlashArray* array, const FtlConfig& config);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(Ftl);

  std::uint64_t logical_pages() const { return logical_pages_; }
  std::uint32_t page_size() const {
    return array_->geometry().page_size_bytes;
  }

  // Writes one logical page. Returns the completion time of the program
  // operation (plus any GC work it triggered).
  Result<SimTime> Write(std::uint64_t lpn, std::span<const std::byte> data,
                        SimTime ready);

  // Reads one logical page into `out`. An unmapped LPN reads as zeros and
  // costs only the command overhead (served from the mapping table, no
  // flash operation). Returns the time the data is at the channel
  // controller, ready for DMA into device DRAM.
  Result<SimTime> Read(std::uint64_t lpn, std::span<std::byte> out,
                       SimTime ready);

  // Timing-only read; pair with View() for zero-copy access to the bytes.
  Result<SimTime> ReadTiming(std::uint64_t lpn, SimTime ready);

  // Zero-copy view of a mapped logical page; empty span if unmapped.
  std::span<const std::byte> View(std::uint64_t lpn) const;

  bool IsMapped(std::uint64_t lpn) const;

  // Invalidates a logical page (TRIM).
  Status Trim(std::uint64_t lpn);

  const FtlStats& stats() const { return stats_; }
  const FtlConfig& config() const { return config_; }
  const GcPolicy& gc_policy() const { return *policy_; }

  // Records each GC run as a span on an "ftl gc" lane under `process`
  // (args: relocated pages, victim valid count, erases, policy).
  // nullptr detaches.
  void AttachTracer(obs::Tracer* tracer, std::string_view process);

  // Registers the GC counters, the per-run pause histogram
  // (ftl.gc_pause_ns), the free-block gauge, and the write-amplification
  // gauge (in thousandths: 1000 = no amplification).
  void AttachMetrics(obs::MetricsRegistry* metrics);

  // Highest block-erase count across the array (wear ceiling).
  std::uint32_t max_erase_count() const;
  // Lowest block-erase count across the array; together with
  // max_erase_count() this bounds the wear spread the wear-aware
  // allocator maintains.
  std::uint32_t min_erase_count() const;
  // Blocks currently on some chip's free list (excludes active blocks).
  std::uint64_t free_blocks() const;

 private:
  static constexpr std::uint64_t kUnmapped = ~0ULL;

  struct ChipCursor {
    // Blocks not yet allocated for writing, in allocation order.
    std::deque<std::uint32_t> free_blocks;
    // Block currently receiving programs, or kNoBlock.
    std::uint32_t active_block = kNoBlock;
    static constexpr std::uint32_t kNoBlock = ~0U;
  };

  std::uint64_t PhysicalPageCount() const;
  // Picks the next physical page to program, advancing the global stripe
  // cursor. May trigger GC on the chosen chip. Returns the physical page
  // index, with `*gc_done` >= ready reflecting any GC delay.
  Result<std::uint64_t> AllocatePage(SimTime ready, SimTime* gc_done);
  Result<SimTime> MaybeCollect(int channel, int chip, SimTime ready);
  // Marks a physical page stale. Inconsistent validity accounting is
  // surfaced as CORRUPTION (it means the map and flash disagree), not a
  // process abort — injected faults must be able to flow past it.
  Status Invalidate(std::uint64_t ppn);

  // Refreshes the free-block and write-amplification gauges (no-op when
  // no registry is attached).
  void UpdateGauges();

  flash::FlashArray* array_;
  FtlConfig config_;
  std::unique_ptr<GcPolicy> policy_;
  std::uint64_t logical_pages_;

  std::vector<std::uint64_t> l2p_;  // lpn -> ppn or kUnmapped
  std::vector<std::uint64_t> p2l_;  // ppn -> lpn or kUnmapped
  std::vector<bool> valid_;         // per physical page
  std::vector<std::uint32_t> valid_per_block_;
  // Monotone invalidation clock and, per block, the stamp of its most
  // recent invalidation — what the cost-benefit policy reads as age.
  std::uint64_t invalidate_stamp_ = 0;
  std::vector<std::uint64_t> block_invalidate_stamp_;

  std::vector<ChipCursor> cursors_;  // per chip (flat index)
  std::uint64_t stripe_cursor_ = 0;  // round-robin over chips
  bool in_gc_ = false;               // guards against recursive GC

  FtlStats stats_;
  obs::Tracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
  obs::Counter* m_gc_runs_ = nullptr;
  obs::Counter* m_gc_relocations_ = nullptr;
  obs::Histogram* m_gc_pause_ = nullptr;
  obs::Gauge* m_free_blocks_ = nullptr;
  obs::Gauge* m_write_amp_ = nullptr;
};

}  // namespace smartssd::ftl

#endif  // SMARTSSD_FTL_FTL_H_
