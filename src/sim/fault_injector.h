#ifndef SMARTSSD_SIM_FAULT_INJECTOR_H_
#define SMARTSSD_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "common/units.h"
#include "obs/trace.h"

namespace smartssd::sim {

// The device failure behaviors the stack knows how to inject and (where
// the protocol allows) survive. Each kind corresponds to one charge
// point in the simulator where the failure would physically occur.
enum class FaultKind {
  kUncorrectableRead = 0,  // flash: raw errors exceed ECC strength
  kDeviceReset,            // controller reset; all open sessions die
  kOpenRejected,           // OPEN denied with RESOURCE_EXHAUSTED
  kGetStall,               // a GET response never arrives (host times out)
  kResultQueueOverflow,    // device-side result buffer overflows
  kTransferError,          // host-interface transfer fails mid-flight
};

inline constexpr int kNumFaultKinds = 6;

std::string_view FaultKindName(FaultKind kind);

// What advances a fault towards firing. Counter units accumulate across
// the whole device (pages read off flash, bytes over the host link);
// kSimTime compares against the virtual time at the charge point.
enum class TriggerUnit {
  kPagesRead,
  kBytesTransferred,
  kSimTime,
};

struct FaultTrigger {
  TriggerUnit unit = TriggerUnit::kPagesRead;
  // Fires once the counter (or virtual time, in ns) reaches `at`.
  std::uint64_t at = 0;
};

// One deterministic fault: fires `count` times once its trigger is
// reached, then disarms.
struct FaultSpec {
  FaultKind kind = FaultKind::kUncorrectableRead;
  FaultTrigger trigger;
  std::uint32_t count = 1;
};

// Probabilistic variant for rate sweeps: every page-read charge point
// fires `kind` with probability `per_page`, drawn from the injector's
// seeded RNG — deterministic and replayable for a given schedule.
struct RandomFault {
  FaultKind kind = FaultKind::kUncorrectableRead;
  double per_page = 0.0;
};

struct FaultSchedule {
  std::vector<FaultSpec> faults;
  std::vector<RandomFault> random;
  std::uint64_t seed = 0xFA17;
};

// Seeded, virtual-time-driven fault schedule. Modules query it at their
// charge points: the flash array on every page read, the SSD controller
// on every host-link transfer, the smart runtime at each protocol step.
// An injector with nothing loaded never fires and costs one branch per
// charge point, so production paths are unaffected by default.
class FaultInjector {
 public:
  FaultInjector() : rng_(0xFA17) {}
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(FaultInjector);

  // Replaces the schedule, re-arms every fault, and resets counters and
  // the RNG — loading the same schedule twice replays the same faults.
  void Load(FaultSchedule schedule);

  // Disarms everything (equivalent to loading an empty schedule).
  void Clear();

  // True if any fault could still fire.
  bool armed() const { return !armed_.empty() || !random_.empty(); }

  // --- Charge points ---------------------------------------------------
  // Each returns true when an armed fault of `kind` fires here, consuming
  // one of its firings.

  // A page read off flash: advances the page counter, then checks
  // deterministic triggers and the per-page random faults.
  bool OnPageRead(FaultKind kind, SimTime now);

  // Bytes crossing the host interface: advances the byte counter.
  bool OnBytes(FaultKind kind, std::uint64_t bytes, SimTime now);

  // A protocol event (OPEN, GET, per-page processing step): checks
  // triggers against the current counters without advancing them.
  bool OnEvent(FaultKind kind, SimTime now);

  // Records every firing as an instant event on a "faults" lane under
  // `process` (nullptr detaches).
  void AttachTracer(obs::Tracer* tracer, std::string_view process);

  // --- Introspection ---------------------------------------------------
  std::uint64_t pages_read() const { return pages_; }
  std::uint64_t bytes_transferred() const { return bytes_; }
  std::uint64_t fired(FaultKind kind) const {
    return fired_[static_cast<int>(kind)];
  }
  std::uint64_t total_fired() const;

 private:
  struct Armed {
    FaultSpec spec;
    std::uint32_t remaining = 0;
  };

  // Checks deterministic triggers for `kind`; consumes one firing.
  bool FireDeterministic(FaultKind kind, SimTime now);

  void RecordFire(FaultKind kind, SimTime now);

  std::vector<Armed> armed_;
  std::vector<RandomFault> random_;
  Random rng_;
  std::uint64_t pages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t fired_[kNumFaultKinds] = {};
  obs::Tracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
};

}  // namespace smartssd::sim

#endif  // SMARTSSD_SIM_FAULT_INJECTOR_H_
