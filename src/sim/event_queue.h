#ifndef SMARTSSD_SIM_EVENT_QUEUE_H_
#define SMARTSSD_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/macros.h"
#include "common/units.h"
#include "sim/clock.h"

namespace smartssd::sim {

// Minimal discrete-event scheduler. The streaming data paths use the
// RateServer recurrence directly; the event queue exists for control-plane
// behaviour that is genuinely event-driven — the host's GET polling loop,
// background garbage collection, and tests that need interleaved timelines.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime now)>;

  explicit EventQueue(Clock* clock) : clock_(clock) {
    SMARTSSD_CHECK(clock != nullptr);
  }
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(EventQueue);

  // Schedules `fn` to run at absolute virtual time `when` (>= now).
  // Events at equal times run in scheduling order.
  void ScheduleAt(SimTime when, Callback fn) {
    SMARTSSD_CHECK_GE(when, clock_->now());
    heap_.push(Event{when, next_seq_++, std::move(fn)});
  }

  void ScheduleAfter(SimDuration delay, Callback fn) {
    ScheduleAt(clock_->now() + delay, std::move(fn));
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  // Virtual time of the earliest pending event; calling this on an
  // empty queue is a programmer error (check empty() first). Schedulers
  // use it to decide whether a deadline falls before the next event.
  SimTime NextEventTime() const {
    SMARTSSD_CHECK(!heap_.empty());
    return heap_.top().when;
  }

  // Runs the earliest event, advancing the clock to its time. Returns
  // false if there was nothing to run.
  bool RunOne() {
    if (heap_.empty()) return false;
    Event e = heap_.top();
    heap_.pop();
    clock_->AdvanceTo(e.when);
    e.fn(e.when);
    return true;
  }

  // Runs events until the queue drains.
  void RunUntilEmpty() {
    while (RunOne()) {
    }
  }

  // Runs all events with time <= `deadline`, then advances the clock to
  // `deadline` if it is still behind.
  void RunUntil(SimTime deadline) {
    while (!heap_.empty() && heap_.top().when <= deadline) {
      RunOne();
    }
    if (clock_->now() < deadline) clock_->AdvanceTo(deadline);
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-breaker: FIFO among same-time events
    Callback fn;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  Clock* clock_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
};

}  // namespace smartssd::sim

#endif  // SMARTSSD_SIM_EVENT_QUEUE_H_
