#ifndef SMARTSSD_SIM_RATE_SERVER_H_
#define SMARTSSD_SIM_RATE_SERVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/units.h"
#include "obs/trace.h"

namespace smartssd::sim {

// A FIFO resource with a single service queue: requests arrive with a
// ready time and a service duration, and are served in arrival order.
// This is the core modeling primitive for every shared, serialized
// resource in the stack: a flash channel bus, the device DRAM/DMA bus, the
// host interface link, a disk head.
//
// The classic tandem-queue recurrence
//     completion = max(ready, next_free) + service
// is exact for FIFO servers and lets streaming pipelines (scan queries)
// be simulated in O(1) per request without a global event loop.
//
// The server also accumulates busy time, which the energy model
// integrates (active power x busy + idle power x (elapsed - busy)).
//
// With a tracer attached, every nonzero service interval is recorded as
// an occupancy span on the server's track. The span uses the [start,
// completion] pair the recurrence already computed — tracing never reads
// or advances virtual time, so timings are bit-identical on or off.
class RateServer {
 public:
  explicit RateServer(std::string name) : name_(std::move(name)) {}
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(RateServer);

  // Serves a request that becomes ready at `ready` and needs `service`
  // time on this resource. Returns the completion time. `label`, when
  // given, names the occupancy span (defaults to the server name).
  SimTime Serve(SimTime ready, SimDuration service,
                const char* label = nullptr) {
    const SimTime start = ready > next_free_ ? ready : next_free_;
    next_free_ = start + service;
    busy_time_ += service;
    ++requests_;
    if (tracer_ != nullptr && service > 0) {
      tracer_->Complete(track_,
                        label != nullptr ? std::string_view(label)
                                         : std::string_view(name_),
                        "occupancy", start, next_free_);
    }
    return next_free_;
  }

  // Registers this server as `thread` (default: the server name) under
  // `process` and starts recording occupancy spans. Pass nullptr to
  // detach.
  void AttachTracer(obs::Tracer* tracer, std::string_view process,
                    std::string_view thread = {}) {
    tracer_ = tracer;
    if (tracer_ != nullptr) {
      track_ = tracer_->RegisterTrack(process,
                                      thread.empty() ? name_ : thread);
    }
  }
  obs::Tracer* tracer() const { return tracer_; }
  obs::TrackId track() const { return track_; }

  // Time at which the server would start a request that is ready now.
  SimTime next_free() const { return next_free_; }
  SimDuration busy_time() const { return busy_time_; }
  std::uint64_t requests() const { return requests_; }
  const std::string& name() const { return name_; }

  void Reset() {
    next_free_ = 0;
    busy_time_ = 0;
    requests_ = 0;
  }

 private:
  std::string name_;
  SimTime next_free_ = 0;
  SimDuration busy_time_ = 0;
  std::uint64_t requests_ = 0;
  obs::Tracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
};

// A pool of `k` identical FIFO servers with least-loaded dispatch. Models
// multi-core CPUs (each request is one task that runs on one core) and
// multi-chip flash channels.
//
// With a tracer attached, each of the k sub-servers gets its own track
// ("<name> 0" ... "<name> k-1"), so per-core saturation is visible.
class ParallelServer {
 public:
  ParallelServer(std::string name, int k) : name_(std::move(name)) {
    SMARTSSD_CHECK_GT(k, 0);
    next_free_.resize(static_cast<std::size_t>(k), 0);
  }
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(ParallelServer);

  // Dispatches to the server that frees up earliest.
  SimTime Serve(SimTime ready, SimDuration service,
                const char* label = nullptr) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < next_free_.size(); ++i) {
      if (next_free_[i] < next_free_[best]) best = i;
    }
    const SimTime start =
        ready > next_free_[best] ? ready : next_free_[best];
    next_free_[best] = start + service;
    busy_time_ += service;
    ++requests_;
    if (tracer_ != nullptr && service > 0) {
      tracer_->Complete(tracks_[best],
                        label != nullptr ? std::string_view(label)
                                         : std::string_view(name_),
                        "occupancy", start, next_free_[best]);
    }
    return next_free_[best];
  }

  // Registers one track per sub-server ("<thread> 0" ... "<thread> k-1",
  // default thread base: the pool name) under `process` and starts
  // recording occupancy spans. Pass nullptr to detach.
  void AttachTracer(obs::Tracer* tracer, std::string_view process,
                    std::string_view thread = {}) {
    tracer_ = tracer;
    if (tracer_ == nullptr) return;
    const std::string base(thread.empty() ? std::string_view(name_)
                                          : thread);
    tracks_.clear();
    tracks_.reserve(next_free_.size());
    for (std::size_t i = 0; i < next_free_.size(); ++i) {
      tracks_.push_back(
          tracer_->RegisterTrack(process, base + " " + std::to_string(i)));
    }
  }
  obs::Tracer* tracer() const { return tracer_; }

  int size() const { return static_cast<int>(next_free_.size()); }
  SimDuration busy_time() const { return busy_time_; }
  std::uint64_t requests() const { return requests_; }
  const std::string& name() const { return name_; }

  // Earliest time any server is free.
  SimTime next_free() const {
    SimTime best = next_free_[0];
    for (const SimTime t : next_free_) {
      if (t < best) best = t;
    }
    return best;
  }

  // Latest completion across all servers (drain time of the pool).
  SimTime drain_time() const {
    SimTime worst = next_free_[0];
    for (const SimTime t : next_free_) {
      if (t > worst) worst = t;
    }
    return worst;
  }

  void Reset() {
    for (auto& t : next_free_) t = 0;
    busy_time_ = 0;
    requests_ = 0;
  }

 private:
  std::string name_;
  std::vector<SimTime> next_free_;
  SimDuration busy_time_ = 0;
  std::uint64_t requests_ = 0;
  obs::Tracer* tracer_ = nullptr;
  std::vector<obs::TrackId> tracks_;
};

}  // namespace smartssd::sim

#endif  // SMARTSSD_SIM_RATE_SERVER_H_
