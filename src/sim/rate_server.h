#ifndef SMARTSSD_SIM_RATE_SERVER_H_
#define SMARTSSD_SIM_RATE_SERVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/units.h"

namespace smartssd::sim {

// A FIFO resource with a single service queue: requests arrive with a
// ready time and a service duration, and are served in arrival order.
// This is the core modeling primitive for every shared, serialized
// resource in the stack: a flash channel bus, the device DRAM/DMA bus, the
// host interface link, a disk head.
//
// The classic tandem-queue recurrence
//     completion = max(ready, next_free) + service
// is exact for FIFO servers and lets streaming pipelines (scan queries)
// be simulated in O(1) per request without a global event loop.
//
// The server also accumulates busy time, which the energy model
// integrates (active power x busy + idle power x (elapsed - busy)).
class RateServer {
 public:
  explicit RateServer(std::string name) : name_(std::move(name)) {}
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(RateServer);

  // Serves a request that becomes ready at `ready` and needs `service`
  // time on this resource. Returns the completion time.
  SimTime Serve(SimTime ready, SimDuration service) {
    const SimTime start = ready > next_free_ ? ready : next_free_;
    next_free_ = start + service;
    busy_time_ += service;
    ++requests_;
    return next_free_;
  }

  // Time at which the server would start a request that is ready now.
  SimTime next_free() const { return next_free_; }
  SimDuration busy_time() const { return busy_time_; }
  std::uint64_t requests() const { return requests_; }
  const std::string& name() const { return name_; }

  void Reset() {
    next_free_ = 0;
    busy_time_ = 0;
    requests_ = 0;
  }

 private:
  std::string name_;
  SimTime next_free_ = 0;
  SimDuration busy_time_ = 0;
  std::uint64_t requests_ = 0;
};

// A pool of `k` identical FIFO servers with least-loaded dispatch. Models
// multi-core CPUs (each request is one task that runs on one core) and
// multi-chip flash channels.
class ParallelServer {
 public:
  ParallelServer(std::string name, int k) : name_(std::move(name)) {
    SMARTSSD_CHECK_GT(k, 0);
    next_free_.resize(static_cast<std::size_t>(k), 0);
  }
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(ParallelServer);

  // Dispatches to the server that frees up earliest.
  SimTime Serve(SimTime ready, SimDuration service) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < next_free_.size(); ++i) {
      if (next_free_[i] < next_free_[best]) best = i;
    }
    const SimTime start =
        ready > next_free_[best] ? ready : next_free_[best];
    next_free_[best] = start + service;
    busy_time_ += service;
    ++requests_;
    return next_free_[best];
  }

  int size() const { return static_cast<int>(next_free_.size()); }
  SimDuration busy_time() const { return busy_time_; }
  std::uint64_t requests() const { return requests_; }
  const std::string& name() const { return name_; }

  // Earliest time any server is free.
  SimTime next_free() const {
    SimTime best = next_free_[0];
    for (const SimTime t : next_free_) {
      if (t < best) best = t;
    }
    return best;
  }

  // Latest completion across all servers (drain time of the pool).
  SimTime drain_time() const {
    SimTime worst = next_free_[0];
    for (const SimTime t : next_free_) {
      if (t > worst) worst = t;
    }
    return worst;
  }

  void Reset() {
    for (auto& t : next_free_) t = 0;
    busy_time_ = 0;
    requests_ = 0;
  }

 private:
  std::string name_;
  std::vector<SimTime> next_free_;
  SimDuration busy_time_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace smartssd::sim

#endif  // SMARTSSD_SIM_RATE_SERVER_H_
