#ifndef SMARTSSD_SIM_CLOCK_H_
#define SMARTSSD_SIM_CLOCK_H_

#include "common/macros.h"
#include "common/units.h"

namespace smartssd::sim {

// Monotonic virtual clock. All timing in the simulator is virtual: devices
// advance this clock according to their bandwidth/latency models, and real
// bytes move through real buffers while the clock advances. Wall-clock time
// plays no role in any reported measurement.
class Clock {
 public:
  Clock() = default;
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(Clock);

  SimTime now() const { return now_; }

  // Moves the clock forward to `t`. Moving backwards is a programmer error.
  void AdvanceTo(SimTime t) {
    SMARTSSD_CHECK_GE(t, now_);
    now_ = t;
  }

  void Advance(SimDuration d) { now_ += d; }

  void Reset() { now_ = 0; }

 private:
  SimTime now_ = 0;
};

}  // namespace smartssd::sim

#endif  // SMARTSSD_SIM_CLOCK_H_
