#include "sim/fault_injector.h"

namespace smartssd::sim {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kUncorrectableRead:
      return "UNCORRECTABLE_READ";
    case FaultKind::kDeviceReset:
      return "DEVICE_RESET";
    case FaultKind::kOpenRejected:
      return "OPEN_REJECTED";
    case FaultKind::kGetStall:
      return "GET_STALL";
    case FaultKind::kResultQueueOverflow:
      return "RESULT_QUEUE_OVERFLOW";
    case FaultKind::kTransferError:
      return "TRANSFER_ERROR";
  }
  return "?";
}

void FaultInjector::Load(FaultSchedule schedule) {
  armed_.clear();
  for (const FaultSpec& spec : schedule.faults) {
    if (spec.count == 0) continue;
    armed_.push_back(Armed{spec, spec.count});
  }
  random_.clear();
  for (const RandomFault& fault : schedule.random) {
    if (fault.per_page > 0.0) random_.push_back(fault);
  }
  rng_ = Random(schedule.seed);
  pages_ = 0;
  bytes_ = 0;
  for (auto& f : fired_) f = 0;
}

void FaultInjector::Clear() {
  armed_.clear();
  random_.clear();
}

void FaultInjector::AttachTracer(obs::Tracer* tracer,
                                 std::string_view process) {
  tracer_ = tracer;
  if (tracer_ != nullptr) track_ = tracer_->RegisterTrack(process, "faults");
}

void FaultInjector::RecordFire(FaultKind kind, SimTime now) {
  ++fired_[static_cast<int>(kind)];
  if (tracer_ != nullptr) {
    tracer_->Instant(track_, FaultKindName(kind), "fault", now);
  }
}

std::uint64_t FaultInjector::total_fired() const {
  std::uint64_t total = 0;
  for (const auto f : fired_) total += f;
  return total;
}

bool FaultInjector::FireDeterministic(FaultKind kind, SimTime now) {
  for (auto it = armed_.begin(); it != armed_.end(); ++it) {
    if (it->spec.kind != kind) continue;
    const FaultTrigger& trigger = it->spec.trigger;
    bool reached = false;
    switch (trigger.unit) {
      case TriggerUnit::kPagesRead:
        reached = pages_ >= trigger.at;
        break;
      case TriggerUnit::kBytesTransferred:
        reached = bytes_ >= trigger.at;
        break;
      case TriggerUnit::kSimTime:
        reached = now >= trigger.at;
        break;
    }
    if (!reached) continue;
    if (--it->remaining == 0) armed_.erase(it);
    RecordFire(kind, now);
    return true;
  }
  return false;
}

bool FaultInjector::OnPageRead(FaultKind kind, SimTime now) {
  if (!armed()) return false;
  ++pages_;
  if (FireDeterministic(kind, now)) return true;
  for (const RandomFault& fault : random_) {
    if (fault.kind != kind) continue;
    if (rng_.Bernoulli(fault.per_page)) {
      RecordFire(kind, now);
      return true;
    }
  }
  return false;
}

bool FaultInjector::OnBytes(FaultKind kind, std::uint64_t bytes,
                            SimTime now) {
  if (!armed()) return false;
  bytes_ += bytes;
  return FireDeterministic(kind, now);
}

bool FaultInjector::OnEvent(FaultKind kind, SimTime now) {
  if (!armed()) return false;
  return FireDeterministic(kind, now);
}

}  // namespace smartssd::sim
