#include "engine/fallback_reason.h"

namespace smartssd::engine {

bool RetryableDeviceFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kCorruption:
    case StatusCode::kIoError:
    case StatusCode::kAborted:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

std::string FallbackReasonString(const Status& status) {
  return status.ToString();
}

std::string_view FallbackReasonToken(const Status& status) {
  return StatusCodeToString(status.code());
}

}  // namespace smartssd::engine
