#include "engine/fleet.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "engine/partial_merge.h"

namespace smartssd::engine {

std::uint64_t DeviceFaultSeed(std::uint64_t fleet_seed, int device_id) {
  // Same splitmix64-style stateless mix as check::table_gen: the seed is
  // a pure function of its inputs, never of load or dispatch order.
  std::uint64_t x = fleet_seed * 0x9E3779B97F4A7C15ULL +
                    (static_cast<std::uint64_t>(device_id) + 1) *
                        0xBF58476D1CE4E5B9ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

// --- Fleet -----------------------------------------------------------------

Fleet::Fleet(int devices, const DatabaseOptions& options,
             std::uint64_t fleet_seed) {
  SMARTSSD_CHECK_GT(devices, 0);
  for (int i = 0; i < devices; ++i) {
    devices_.push_back(std::make_unique<Database>(options));
  }
  Init(fleet_seed);
}

Fleet::Fleet(const std::vector<DatabaseOptions>& options,
             std::uint64_t fleet_seed) {
  SMARTSSD_CHECK(!options.empty());
  for (const DatabaseOptions& opts : options) {
    devices_.push_back(std::make_unique<Database>(opts));
  }
  Init(fleet_seed);
}

void Fleet::Init(std::uint64_t fleet_seed) {
  fleet_seed_ = fleet_seed;
  for (int i = 0; i < devices(); ++i) {
    if (ssd::SsdDevice* ssd = devices_[static_cast<std::size_t>(i)]->ssd()) {
      ssd->set_name("ssd" + std::to_string(i));
    }
  }
  UpdateBreakerGauges();
}

Status Fleet::LoadPartitionedTable(const std::string& name,
                                   const storage::Schema& schema,
                                   storage::PageLayout layout,
                                   std::uint64_t row_count,
                                   const storage::RowGenerator& gen) {
  const std::uint64_t n = static_cast<std::uint64_t>(devices());
  for (std::uint64_t d = 0; d < n; ++d) {
    const std::uint64_t first = row_count * d / n;
    const std::uint64_t last = row_count * (d + 1) / n;
    // The generator sees global row indexes, so each cell is identical
    // to the one a single-device load would produce.
    auto wrapped = [&gen, first](std::uint64_t row,
                                 storage::TupleWriter& writer) {
      gen(first + row, writer);
    };
    SMARTSSD_RETURN_IF_ERROR(
        devices_[d]
            ->LoadTable(name, schema, layout, last - first, wrapped)
            .status());
  }
  if (std::find(partitioned_.begin(), partitioned_.end(), name) ==
      partitioned_.end()) {
    partitioned_.push_back(name);
  }
  return Status::OK();
}

Status Fleet::LoadReplicatedTable(const std::string& name,
                                  const storage::Schema& schema,
                                  storage::PageLayout layout,
                                  std::uint64_t row_count,
                                  const storage::RowGenerator& gen) {
  for (auto& db : devices_) {
    SMARTSSD_RETURN_IF_ERROR(
        db->LoadTable(name, schema, layout, row_count, gen).status());
  }
  return Status::OK();
}

bool Fleet::IsPartitioned(const std::string& name) const {
  return std::find(partitioned_.begin(), partitioned_.end(), name) !=
         partitioned_.end();
}

Status Fleet::BuildZoneMaps(const std::string& table) {
  for (auto& db : devices_) {
    SMARTSSD_RETURN_IF_ERROR(db->BuildZoneMap(table));
  }
  return Status::OK();
}

void Fleet::ResetForColdRun() {
  for (auto& db : devices_) db->ResetForColdRun();
}

void Fleet::LoadFaultSchedule(int device, sim::FaultSchedule schedule) {
  ssd::SsdDevice* ssd = devices_[static_cast<std::size_t>(device)]->ssd();
  SMARTSSD_CHECK(ssd != nullptr);
  schedule.seed = device_fault_seed(device);
  ssd->fault_injector().Load(std::move(schedule));
}

void Fleet::ClearFaults() {
  for (auto& db : devices_) {
    if (ssd::SsdDevice* ssd = db->ssd()) ssd->fault_injector().Clear();
  }
}

void Fleet::AttachTracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  for (int i = 0; i < devices(); ++i) {
    const std::string tag = std::to_string(i);
    devices_[static_cast<std::size_t>(i)]->AttachTracer(
        tracer, "fleet-dev" + tag, "fleet-host" + tag);
  }
}

void Fleet::UpdateBreakerGauges() {
  for (int i = 0; i < devices(); ++i) {
    const DeviceCircuitBreaker& breaker =
        devices_[static_cast<std::size_t>(i)]->circuit_breaker();
    const std::string prefix = "fleet.dev" + std::to_string(i);
    metrics_.gauge(prefix + ".breaker_state")
        ->Set(static_cast<std::int64_t>(breaker.state()));
    metrics_.gauge(prefix + ".breaker_trips")
        ->Set(static_cast<std::int64_t>(breaker.trips()));
  }
}

std::uint64_t Fleet::TotalBreakerTrips() const {
  std::uint64_t total = 0;
  for (const auto& db : devices_) total += db->circuit_breaker().trips();
  return total;
}

// --- FleetCoordinator ------------------------------------------------------

FleetCoordinator::FleetCoordinator(Fleet* fleet,
                                   const FleetOptions& options)
    : fleet_(fleet),
      options_(options),
      events_(&clock_),
      tracer_(fleet->tracer()) {
  SMARTSSD_CHECK(fleet != nullptr);
  SMARTSSD_CHECK_GT(options.max_in_flight, 0);
  SMARTSSD_CHECK_GT(options.hedge_latency_factor, 0.0);
  SMARTSSD_CHECK_GT(options.hedge_min_samples, 0);
  if (tracer_ != nullptr) {
    for (int i = 0; i < fleet_->devices(); ++i) {
      device_tracks_.push_back(
          tracer_->RegisterTrack("fleet", "dev" + std::to_string(i)));
    }
  }
}

std::size_t FleetCoordinator::AddSource(FleetQueryConfig config) {
  SMARTSSD_CHECK(config.spec != nullptr);
  sources_.push_back(Source{.config = std::move(config)});
  if (tracer_ != nullptr) {
    sources_.back().track =
        tracer_->RegisterTrack("fleet", sources_.back().config.client);
  }
  return sources_.size() - 1;
}

std::uint64_t FleetCoordinator::Submit(FleetQueryConfig config,
                                       SimTime at) {
  SMARTSSD_CHECK(!ran_);
  const std::size_t source = AddSource(std::move(config));
  const std::uint64_t id = next_id_++;
  ++expected_;
  ScheduleArrival(source, at, id);
  return id;
}

void FleetCoordinator::AddClosedLoopClient(FleetQueryConfig config,
                                           int count,
                                           SimDuration think_time,
                                           SimTime first_arrival) {
  SMARTSSD_CHECK(!ran_);
  if (count <= 0) return;
  const std::size_t source = AddSource(std::move(config));
  Source& src = sources_[source];
  src.closed_loop = true;
  src.remaining = count - 1;
  src.think_time = think_time;
  expected_ += static_cast<std::uint64_t>(count);
  ScheduleArrival(source, first_arrival, next_id_++);
}

void FleetCoordinator::AddOpenLoopClient(FleetQueryConfig config,
                                         int count,
                                         SimDuration inter_arrival,
                                         SimTime first_arrival) {
  SMARTSSD_CHECK(!ran_);
  if (count <= 0) return;
  const std::size_t source = AddSource(std::move(config));
  expected_ += static_cast<std::uint64_t>(count);
  for (int i = 0; i < count; ++i) {
    ScheduleArrival(
        source,
        first_arrival + static_cast<SimDuration>(i) * inter_arrival,
        next_id_++);
  }
}

void FleetCoordinator::ScheduleArrival(std::size_t source, SimTime at,
                                       std::uint64_t id) {
  events_.ScheduleAt(std::max(clock_.now(), at),
                     [this, source, id](SimTime now) {
                       OnArrival(source, now, id);
                     });
}

void FleetCoordinator::OnArrival(std::size_t source, SimTime arrival,
                                 std::uint64_t id) {
  if (in_flight_ < options_.max_in_flight) {
    StartQuery(source, arrival, /*admitted=*/arrival, id);
    return;
  }
  admission_queue_.push_back(
      PendingArrival{.source = source, .arrival = arrival, .id = id});
}

void FleetCoordinator::StartQuery(std::size_t source, SimTime arrival,
                                  SimTime admitted, std::uint64_t id) {
  const Source& src = sources_[source];
  const exec::QuerySpec& spec = *src.config.spec;
  auto q = std::make_shared<FleetQuery>();
  q->id = id;
  q->source = source;
  q->arrival = arrival;
  q->admitted = admitted;
  q->last_done = admitted;
  ++in_flight_;
  peak_in_flight_ = std::max(peak_in_flight_, in_flight_);

  Status valid = ValidateMergeable(spec);
  if (valid.ok() && !fleet_->IsPartitioned(spec.table)) {
    valid = InvalidArgumentError("fleet query over table '" + spec.table +
                                 "' which was not partition-loaded");
  }
  if (!valid.ok()) {
    CompleteRecord(q, admitted, std::move(valid));
    return;
  }

  const int n = fleet_->devices();
  q->subs.resize(static_cast<std::size_t>(n));
  q->outstanding = n;
  for (int d = 0; d < n; ++d) {
    Subquery& sub = q->subs[static_cast<std::size_t>(d)];
    sub.device = d;
    sub.start = admitted;
    sub.record.device = d;
    sub.record.start = admitted;
    Database& db = fleet_->device(d);
    if (src.config.target.has_value()) {
      ExecutionTarget target = *src.config.target;
      if (target == ExecutionTarget::kSmartSsd && db.smart_capable()) {
        // Breaker-aware re-dispatch: a tripped device's partition goes
        // straight to its host path instead of burning a doomed session;
        // once the cooldown elapses, exactly one subquery is admitted as
        // the half-open probe while co-arrivals keep bypassing.
        DeviceCircuitBreaker& breaker = db.circuit_breaker();
        const DeviceCircuitBreaker::State before = breaker.state();
        if (breaker.ShouldBypass(admitted)) {
          target = ExecutionTarget::kHost;
          sub.record.redispatched = true;
          ++redispatches_;
          fleet_->metrics().counter("fleet.redispatches")->Add();
          if (tracer_ != nullptr) {
            tracer_->Instant(device_tracks_[static_cast<std::size_t>(d)],
                             "redispatch to host", "fleet", admitted,
                             {obs::Arg::Uint("query", id)});
          }
        } else if (before != DeviceCircuitBreaker::State::kClosed) {
          ++breaker_probes_;
          fleet_->metrics().counter("fleet.breaker_probes")->Add();
        }
      }
      sub.hedge_eligible = target == ExecutionTarget::kSmartSsd;
      sub.primary = std::make_unique<QueryTask>(&db, src.config.spec,
                                                target, admitted,
                                                options_.wait_for_grant);
    } else {
      sub.primary = std::make_unique<QueryTask>(&db, src.config.spec,
                                                src.config.hints, admitted,
                                                options_.wait_for_grant);
    }
  }
  for (int d = 0; d < n; ++d) {
    ScheduleStep(q, static_cast<std::size_t>(d), Branch::kPrimary,
                 admitted);
    MaybeArmHedge(q, static_cast<std::size_t>(d));
  }
}

void FleetCoordinator::ScheduleStep(std::shared_ptr<FleetQuery> q,
                                    std::size_t sub, Branch branch,
                                    SimTime at) {
  // Some steps retire in the virtual past (cached pages, pruned pages):
  // clamp to the coordinator's now.
  events_.ScheduleAt(std::max(clock_.now(), at),
                     [this, q = std::move(q), sub, branch](SimTime) {
                       OnStep(q, sub, branch);
                     });
}

void FleetCoordinator::OnStep(const std::shared_ptr<FleetQuery>& q,
                              std::size_t sub_idx, Branch branch) {
  Subquery& sub = q->subs[sub_idx];
  QueryTask* task =
      branch == Branch::kPrimary ? sub.primary.get() : sub.hedge.get();
  // A null task is a stale event: the branch lost a hedge race, its
  // partition resolved, or the whole query was cancelled.
  if (task == nullptr || sub.completed) return;
  const StepOutcome outcome = task->Step();
  if (outcome.waiting_for_grant) {
    parked_.push_back(
        Parked{.query = q, .sub = sub_idx, .branch = branch});
    return;
  }
  if (outcome.finished) {
    OnBranchComplete(q, sub_idx, branch, outcome.at);
  } else {
    ScheduleStep(q, sub_idx, branch, outcome.at);
  }
  // This step may have released a session grant (CLOSE, failure, hedge
  // cancellation); wake parked tasks while grants are free.
  TryUnpark();
}

void FleetCoordinator::OnBranchComplete(
    const std::shared_ptr<FleetQuery>& q, std::size_t sub_idx,
    Branch branch, SimTime at) {
  Subquery& sub = q->subs[sub_idx];
  QueryTask* task =
      branch == Branch::kPrimary ? sub.primary.get() : sub.hedge.get();
  Result<QueryResult> result = task->TakeResult();

  if (result.ok()) {
    // First result wins; destroying the losing task releases any session
    // grants it held (SessionTask's destructor) and turns its pending
    // events into no-ops.
    sub.completed = true;
    sub.winner = std::move(result).value();
    sub.record.end = at;
    if (branch == Branch::kHedge) {
      sub.record.hedge_won = true;
      ++hedge_wins_;
      fleet_->metrics().counter("fleet.hedge_wins")->Add();
    } else if (sub.winner->stats.fell_back) {
      sub.record.fell_back = true;
      ++subquery_fallbacks_;
      fleet_->metrics().counter("fleet.subquery_fallbacks")->Add();
    }
    sub.primary.reset();
    sub.hedge.reset();
    q->last_done = std::max(q->last_done, at);
    NoteSubqueryLatency(at - sub.start);
    if (tracer_ != nullptr) {
      std::vector<obs::Arg> args{
          obs::Arg::Uint("query", q->id),
          obs::Arg::Str("target",
                        ExecutionTargetName(sub.winner->stats.target))};
      if (sub.record.redispatched) {
        args.push_back(obs::Arg::Uint("redispatched", 1));
      }
      if (sub.record.fell_back) {
        args.push_back(obs::Arg::Uint("fell_back", 1));
      }
      if (sub.record.hedge_won) {
        args.push_back(obs::Arg::Uint("hedge_won", 1));
      }
      tracer_->Complete(device_tracks_[static_cast<std::size_t>(sub.device)],
                        "subquery", "fleet", sub.start, at,
                        std::move(args));
    }
    if (--q->outstanding == 0) FinishQuery(q, at);
    return;
  }

  // The branch failed. A primary carries its own internal host fallback,
  // so a failed primary means both the device and host paths died; the
  // hedge (if any) is the partition's last chance, and vice versa.
  if (branch == Branch::kPrimary) {
    sub.primary.reset();
    sub.primary_failed = true;
    sub.primary_error = result.status();
    if (sub.hedge != nullptr) return;
    OnPartitionUnavailable(q, sub_idx, sub.primary_error, at);
  } else {
    sub.hedge.reset();
    if (sub.primary != nullptr) return;
    OnPartitionUnavailable(
        q, sub_idx,
        sub.primary_failed ? sub.primary_error : result.status(), at);
  }
}

void FleetCoordinator::OnPartitionUnavailable(
    const std::shared_ptr<FleetQuery>& q, std::size_t sub_idx,
    const Status& error, SimTime at) {
  Subquery& sub = q->subs[sub_idx];
  sub.completed = true;
  sub.record.unavailable = true;
  sub.record.end = at;
  q->last_done = std::max(q->last_done, at);
  ++unavailable_partitions_;
  fleet_->metrics().counter("fleet.unavailable_partitions")->Add();
  if (tracer_ != nullptr) {
    tracer_->Instant(device_tracks_[static_cast<std::size_t>(sub.device)],
                     "partition unavailable", "fleet",
                     std::max(clock_.now(), at),
                     {obs::Arg::Uint("query", q->id),
                      obs::Arg::Str("error", error.message())});
  }
  if (options_.policy == FleetResultPolicy::kStrict) {
    q->failed = true;
    q->failure = AbortedError(
        "partition " + std::to_string(sub.device) +
        " unavailable on every path: " + std::string(error.message()));
    // Cancel the surviving subqueries: their results can no longer
    // matter, and destroying the tasks hands session grants back.
    for (Subquery& other : q->subs) {
      other.primary.reset();
      other.hedge.reset();
    }
    q->outstanding = 0;
    FinishQuery(q, at);
    return;
  }
  if (--q->outstanding == 0) FinishQuery(q, at);
}

void FleetCoordinator::MaybeArmHedge(const std::shared_ptr<FleetQuery>& q,
                                     std::size_t sub_idx) {
  if (!options_.hedging) return;
  Subquery& sub = q->subs[sub_idx];
  if (!sub.hedge_eligible) return;
  const SimDuration deadline = HedgeDeadline();
  if (deadline == 0) return;  // not enough samples fleet-wide yet
  events_.ScheduleAt(sub.start + deadline,
                     [this, q, sub_idx](SimTime) {
                       OnHedgeDeadline(q, sub_idx);
                     });
}

void FleetCoordinator::OnHedgeDeadline(
    const std::shared_ptr<FleetQuery>& q, std::size_t sub_idx) {
  Subquery& sub = q->subs[sub_idx];
  // Stale unless the primary is still the partition's only live hope.
  if (sub.completed || sub.hedge != nullptr || sub.primary == nullptr) {
    return;
  }
  const SimTime now = clock_.now();
  // The duplicate runs the host path over the same device's partition —
  // a different data path (host link + buffer pool) than the stuck
  // session, so a stalled device GET does not stall the hedge.
  sub.hedge = std::make_unique<QueryTask>(
      &fleet_->device(sub.device), sources_[q->source].config.spec,
      ExecutionTarget::kHost, now, /*wait_for_grant=*/false);
  sub.record.hedged = true;
  ++hedges_launched_;
  fleet_->metrics().counter("fleet.hedges")->Add();
  if (tracer_ != nullptr) {
    tracer_->Instant(device_tracks_[static_cast<std::size_t>(sub.device)],
                     "hedge launched", "fleet", now,
                     {obs::Arg::Uint("query", q->id)});
  }
  ScheduleStep(q, sub_idx, Branch::kHedge, now);
}

void FleetCoordinator::FinishQuery(const std::shared_ptr<FleetQuery>& q,
                                   SimTime at) {
  if (q->failed) {
    CompleteRecord(q, at, q->failure);
    return;
  }
  const exec::QuerySpec& spec = *sources_[q->source].config.spec;
  // Merge order is fixed by partition id — never completion order — so
  // hedges, fallbacks, and interleavings cannot perturb the bytes.
  std::vector<const QueryResult*> ordered;
  std::vector<int> missing;
  for (const Subquery& sub : q->subs) {
    if (sub.winner.has_value()) {
      ordered.push_back(&*sub.winner);
    } else {
      missing.push_back(sub.device);
    }
  }
  if (ordered.empty()) {
    CompleteRecord(q, at,
                   AbortedError("every partition unavailable"));
    return;
  }
  MergedPartials merged =
      MergePartialResults(spec, ordered.front()->output_schema, ordered);

  FleetQueryResult result;
  result.output_schema = ordered.front()->output_schema;
  result.rows = std::move(merged.rows);
  result.agg_values = std::move(merged.agg_values);
  result.start = q->admitted;
  // Merge cost on the coordinator's CPU (device 0's host machine stands
  // in for the single physical host).
  result.end = fleet_->device(0).host().Execute(
      MergeCostCycles(merged.input_rows, merged.input_bytes),
      q->last_done, "fleet merge");
  result.partition_stats.resize(q->subs.size());
  for (std::size_t d = 0; d < q->subs.size(); ++d) {
    if (q->subs[d].winner.has_value()) {
      result.partition_stats[d] = q->subs[d].winner->stats;
    }
  }
  result.degraded = !missing.empty();
  result.missing_partitions = std::move(missing);
  if (result.degraded) {
    ++degraded_queries_;
    fleet_->metrics().counter("fleet.degraded")->Add();
  }
  const SimTime end = result.end;
  CompleteRecord(q, end, std::move(result));
}

void FleetCoordinator::CompleteRecord(const std::shared_ptr<FleetQuery>& q,
                                      SimTime end,
                                      Result<FleetQueryResult> result) {
  const Source& src = sources_[q->source];
  CompletedFleetQuery record;
  record.id = q->id;
  record.client = src.config.client;
  record.query_name = src.config.spec->name;
  record.arrival = q->arrival;
  record.admitted = q->admitted;
  record.end = end;
  record.result = std::move(result);
  record.subqueries.reserve(q->subs.size());
  for (const Subquery& sub : q->subs) {
    record.subqueries.push_back(sub.record);
  }

  obs::MetricsRegistry& metrics = fleet_->metrics();
  metrics.histogram("fleet.latency_ns")->Record(record.latency());
  metrics.histogram("fleet.queue_wait_ns")->Record(record.queue_wait());
  std::vector<obs::Arg> span_args{obs::Arg::Uint("id", record.id)};
  if (record.result.ok()) {
    metrics.counter("fleet.completed")->Add();
    if (record.result.value().degraded) {
      span_args.push_back(obs::Arg::Uint("degraded", 1));
    }
  } else {
    metrics.counter("fleet.failed")->Add();
    span_args.push_back(
        obs::Arg::Str("error", record.result.status().message()));
  }
  if (tracer_ != nullptr) {
    tracer_->Complete(src.track, record.query_name, "fleet",
                      record.arrival, record.end, std::move(span_args));
  }
  completed_.push_back(std::move(record));
  --in_flight_;
  fleet_->UpdateBreakerGauges();

  Source& mutable_src = sources_[q->source];
  if (mutable_src.closed_loop && mutable_src.remaining > 0) {
    --mutable_src.remaining;
    ScheduleArrival(q->source, end + mutable_src.think_time, next_id_++);
  }
  if (!admission_queue_.empty() && in_flight_ < options_.max_in_flight) {
    const PendingArrival next = admission_queue_.front();
    admission_queue_.pop_front();
    StartQuery(next.source, next.arrival, /*admitted=*/end, next.id);
  }
}

void FleetCoordinator::NoteSubqueryLatency(SimDuration latency) {
  latency_samples_.push_back(latency);
  fleet_->metrics().histogram("fleet.subquery_latency_ns")->Record(latency);
}

SimDuration FleetCoordinator::HedgeDeadline() const {
  if (latency_samples_.size() <
      static_cast<std::size_t>(options_.hedge_min_samples)) {
    return 0;
  }
  std::vector<SimDuration> sorted = latency_samples_;
  std::sort(sorted.begin(), sorted.end());
  const double quantile =
      std::clamp(options_.hedge_quantile, 0.0, 1.0);
  // Nearest-rank, matching the bench harness's percentile convention.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(quantile * static_cast<double>(sorted.size())));
  if (rank > 0) --rank;
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  const double scaled = static_cast<double>(sorted[rank]) *
                        options_.hedge_latency_factor;
  return std::max<SimDuration>(1, static_cast<SimDuration>(scaled));
}

void FleetCoordinator::TryUnpark() {
  if (parked_.empty()) return;
  // Each parked entry waits on its own device's session pool; re-step
  // those whose device has a free grant (the task re-checks on its next
  // step and simply parks again if another task races it to the slot).
  // Entries whose task was cancelled while parked are dropped here.
  const std::size_t n = parked_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Parked p = std::move(parked_.front());
    parked_.pop_front();
    Subquery& sub = p.query->subs[p.sub];
    QueryTask* task = p.branch == Branch::kPrimary ? sub.primary.get()
                                                   : sub.hedge.get();
    if (task == nullptr || sub.completed) continue;
    smart::SmartSsdRuntime* runtime =
        fleet_->device(sub.device).runtime();
    if (runtime != nullptr && runtime->session_slots_free() > 0) {
      ScheduleStep(p.query, p.sub, p.branch, clock_.now());
    } else {
      parked_.push_back(std::move(p));
    }
  }
}

Result<std::vector<CompletedFleetQuery>> FleetCoordinator::Run() {
  SMARTSSD_CHECK(!ran_);
  ran_ = true;
  events_.RunUntilEmpty();
  fleet_->UpdateBreakerGauges();
  bool stuck_parked = false;
  for (const Parked& p : parked_) {
    const Subquery& sub = p.query->subs[p.sub];
    const QueryTask* task = p.branch == Branch::kPrimary
                                ? sub.primary.get()
                                : sub.hedge.get();
    if (task != nullptr && !sub.completed) stuck_parked = true;
  }
  if (completed_.size() != expected_ || in_flight_ != 0 || stuck_parked ||
      !admission_queue_.empty()) {
    return InternalError(
        "fleet coordinator deadlocked: queries stuck parked or queued "
        "with no runnable events");
  }
  return std::move(completed_);
}

Result<FleetQueryResult> ExecuteOnFleet(Fleet& fleet,
                                        const exec::QuerySpec& spec,
                                        ExecutionTarget target,
                                        SimTime start,
                                        const FleetOptions& options) {
  FleetCoordinator coordinator(&fleet, options);
  FleetQueryConfig config;
  config.client = "fleet-exec";
  config.spec = &spec;
  config.target = target;
  coordinator.Submit(std::move(config), start);
  SMARTSSD_ASSIGN_OR_RETURN(std::vector<CompletedFleetQuery> completed,
                            coordinator.Run());
  SMARTSSD_CHECK_EQ(completed.size(), 1u);
  return std::move(completed.front().result);
}

}  // namespace smartssd::engine
