#ifndef SMARTSSD_ENGINE_INGEST_H_
#define SMARTSSD_ENGINE_INGEST_H_

#include <optional>
#include <string>

#include "common/macros.h"
#include "common/result.h"
#include "engine/database.h"
#include "engine/query_task.h"
#include "engine/update.h"
#include "expr/expression.h"
#include "storage/table_loader.h"

namespace smartssd::engine {

// One ingest batch: an optional in-place update pass followed by an
// optional append run, then (by default) a flush of the dirtied pages
// and zone-map recovery. All phases are host-only (Section 4.3 rules
// writes out of the device), so while a batch is in flight its dirty
// pages gate pushdown on the table; the flush phase is what hands
// eligibility back.
struct IngestBatchSpec {
  std::string table;

  // Update phase, run when `with_update` is set. `update_predicate` may
  // be null (= all rows); it is borrowed and must outlive the batch.
  bool with_update = false;
  const expr::Expression* update_predicate = nullptr;
  TableUpdater::MutateFn mutate;

  // Append phase, run when `append_rows` > 0. The generator sees global
  // row indexes (see TableAppender::Append).
  std::uint64_t append_rows = 0;
  storage::RowGenerator append_gen;

  // Flush dirty pages page-by-page after the writes and then restore
  // any stale zone maps. Leaving this false keeps the table dirty (and
  // pushdown-ineligible) for the caller to flush later.
  bool flush = true;
  // Appends widen the live zone map in place; false marks it stale so
  // the flush phase rebuilds it instead (drop-and-rebuild maintenance).
  bool widen_zone_map = true;
};

struct IngestStats {
  std::uint64_t rows_updated = 0;
  std::uint64_t rows_appended = 0;
  std::uint64_t pages_dirtied = 0;
  std::uint64_t pages_flushed = 0;
  SimTime end = 0;
};

// Resumable ingest batch: one page of write work per Step() (one page
// updated, one page of appends, or one page flushed), so the workload
// scheduler can interleave ingest with scan and pushdown queries at the
// same granularity QueryTask gives it. `spec` must outlive the task.
class IngestTask {
 public:
  IngestTask(Database* db, const IngestBatchSpec* spec, SimTime start);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(IngestTask);

  StepOutcome Step();
  bool finished() const { return state_ == State::kDone; }

  // Valid once finished(); moves the result out.
  Result<IngestStats> TakeResult();

 private:
  enum class State { kStart, kUpdate, kAppend, kFlush, kRestore, kDone };

  StepOutcome FailWith(const Status& error);
  // The state after the write phases: flush, restore, or done.
  State AfterWrites() const;

  Database* db_;
  const IngestBatchSpec* spec_;
  SimTime t_;

  State state_ = State::kStart;
  std::optional<UpdateCursor> update_;
  std::optional<AppendCursor> append_;
  IngestStats stats_;
  std::optional<Result<IngestStats>> final_result_;
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_INGEST_H_
