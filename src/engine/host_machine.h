#ifndef SMARTSSD_ENGINE_HOST_MACHINE_H_
#define SMARTSSD_ENGINE_HOST_MACHINE_H_

#include <cstdint>
#include <memory>

#include "common/macros.h"
#include "common/units.h"
#include "sim/rate_server.h"

namespace smartssd::engine {

// The host server of Section 4.1.2: two quad-core Xeons (8 cores at
// 2.13 GHz) and its measured power envelope. The power figures are what
// Table 3 integrates: a 235 W idle base, a near-constant active overhead
// whenever a query is running (buffer management, polling, background
// threads), and a data-rate-dependent term for moving bytes across the
// HBA into host memory.
struct HostConfig {
  int cores = 8;
  std::uint64_t clock_hz = 2'130'000'000;  // 2.13 GHz Xeon E5606
  double idle_system_watts = 235.0;        // stated in Section 4.2.3
  double query_active_watts = 105.0;
  double per_gbps_watts = 76.4;  // per GB/s of host-link ingest
};

class HostMachine {
 public:
  explicit HostMachine(const HostConfig& config)
      : config_(config),
        cpu_(std::make_unique<sim::ParallelServer>("host_cpu",
                                                   config.cores)) {}
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(HostMachine);

  // Runs one task of `cycles` on the least-loaded core.
  SimTime Execute(std::uint64_t cycles, SimTime ready,
                  const char* label = nullptr) {
    return cpu_->Serve(ready, CyclesToTime(cycles, config_.clock_hz),
                       label);
  }

  // Puts each host core on its own trace lane under `process`.
  void AttachTracer(obs::Tracer* tracer, std::string_view process) {
    cpu_->AttachTracer(tracer, process, "host core");
  }

  const HostConfig& config() const { return config_; }
  SimDuration cpu_busy() const { return cpu_->busy_time(); }
  std::uint64_t total_cycles_per_second() const {
    return static_cast<std::uint64_t>(config_.cores) * config_.clock_hz;
  }
  void ResetTiming() { cpu_->Reset(); }

 private:
  HostConfig config_;
  std::unique_ptr<sim::ParallelServer> cpu_;
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_HOST_MACHINE_H_
