#ifndef SMARTSSD_ENGINE_BUFFER_POOL_H_
#define SMARTSSD_ENGINE_BUFFER_POOL_H_

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "ssd/block_device.h"

namespace smartssd::engine {

// DBMS buffer pool over one block device: fixed frame count, clock
// eviction, sequential-scan readahead in 32-page commands (the paper's
// 256 KB I/Os). All timing flows through the device's virtual clock.
//
// The pool matters to the paper beyond performance: Section 4.3's
// pushdown rules hinge on it. A page that is *dirty* in the pool makes
// pushdown incorrect (the device would see stale bytes); a range that is
// mostly *cached* makes pushdown pointless. The planner asks this class
// both questions.
class BufferPool {
 public:
  static constexpr std::uint32_t kReadAheadPages = 32;

  BufferPool(ssd::BlockDevice* device, std::uint64_t capacity_pages);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(BufferPool);

  // Returns the page contents and the virtual time they are available.
  // On a miss, reads up to kReadAheadPages pages (bounded by `limit_lpn`,
  // exclusive) in one command and caches them all. The returned span is
  // valid until the next pool operation.
  Result<std::pair<std::span<const std::byte>, SimTime>> GetPage(
      std::uint64_t lpn, SimTime ready, std::uint64_t limit_lpn);

  // Overwrites a cached page's contents in memory, marking it dirty.
  // Caches the page first (reading it at `ready`) if absent.
  Result<SimTime> WritePage(std::uint64_t lpn,
                            std::span<const std::byte> data, SimTime ready);

  // Writes every dirty page back to the device; returns completion time.
  Result<SimTime> FlushAll(SimTime ready);

  // Writes one dirty page back (no-op if the page is clean or absent);
  // returns completion time. This is the unit of work a resumable ingest
  // task's flush phase charges per step.
  Result<SimTime> FlushPage(std::uint64_t lpn, SimTime ready);

  // Lowest dirty LPN in [first_lpn, first_lpn + count), if any. Min-LPN
  // order makes incremental flushing deterministic regardless of frame
  // placement.
  std::optional<std::uint64_t> NextDirtyInRange(std::uint64_t first_lpn,
                                                std::uint64_t count) const;

  bool IsCached(std::uint64_t lpn) const;
  bool IsDirty(std::uint64_t lpn) const;
  bool HasDirtyInRange(std::uint64_t first_lpn, std::uint64_t count) const;
  std::uint64_t CachedInRange(std::uint64_t first_lpn,
                              std::uint64_t count) const;

  // Drops everything (cold-run reset). Dirty pages must be flushed
  // first; dropping them is a programmer error.
  void Clear();

  std::uint64_t capacity_pages() const { return frames_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  // Registers hit/miss/eviction counters. nullptr detaches.
  void AttachMetrics(obs::MetricsRegistry* metrics);

 private:
  struct Frame {
    std::uint64_t lpn = 0;
    bool valid = false;
    bool dirty = false;
    bool referenced = false;
    // When the frame's contents became available (its install I/O's
    // completion): a hit on a readahead-installed page cannot be consumed
    // before the batch that brought it in has finished.
    SimTime available_at = 0;
    std::vector<std::byte> data;
  };

  // Picks a victim frame with the clock algorithm, flushing it if dirty.
  Result<std::size_t> Evict(SimTime ready, SimTime* io_done);
  Result<SimTime> InstallRange(std::uint64_t lpn, std::uint32_t count,
                               SimTime ready);

  ssd::BlockDevice* device_;
  std::vector<Frame> frames_;
  std::unordered_map<std::uint64_t, std::size_t> map_;  // lpn -> frame
  std::size_t clock_hand_ = 0;
  std::vector<std::byte> io_buffer_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_BUFFER_POOL_H_
