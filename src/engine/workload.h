#ifndef SMARTSSD_ENGINE_WORKLOAD_H_
#define SMARTSSD_ENGINE_WORKLOAD_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "engine/database.h"
#include "engine/ingest.h"
#include "engine/query_task.h"
#include "exec/query_spec.h"
#include "sim/clock.h"
#include "sim/event_queue.h"

namespace smartssd::engine {

// One query template a workload client submits. QuerySpec owns its
// predicate expression and is move-only, so configs move into the
// scheduler, which keeps each spec at a stable address for the bound
// query's lifetime. A closed/open-loop client runs every repetition off
// the one spec it was added with.
struct WorkloadQueryConfig {
  std::string client = "client";  // tracer lane + completion records
  exec::QuerySpec spec;
  // Fixed execution target; nullopt lets the pushdown planner decide
  // per query (with `hints`) at its admission time.
  std::optional<ExecutionTarget> target;
  PlanHints hints;
};

// The completion record of one workload query, on the virtual clock.
struct CompletedQuery {
  std::uint64_t id = 0;  // submission order, unique within the scheduler
  std::string client;
  std::string query_name;
  SimTime arrival = 0;   // submitted / generated
  SimTime admitted = 0;  // left the admission queue, task started
  SimTime end = 0;       // result delivered
  // Per-query failures land here (Result has no default state, so an
  // unfilled record reports InternalError).
  Result<QueryResult> result = InternalError("query not completed");

  SimDuration latency() const { return end - arrival; }
  SimDuration queue_wait() const { return admitted - arrival; }
};

// One ingest batch template a workload client submits repeatedly.
struct IngestClientConfig {
  std::string client = "ingest";
  IngestBatchSpec spec;
};

// The completion record of one ingest batch, on the virtual clock.
struct CompletedIngest {
  std::uint64_t id = 0;  // shares the query id space (submission order)
  std::string client;
  SimTime arrival = 0;
  SimTime end = 0;
  Result<IngestStats> result = InternalError("ingest not completed");

  SimDuration latency() const { return end - arrival; }
};

struct WorkloadOptions {
  // Admission control: queries running concurrently (started, not yet
  // complete). Arrivals beyond this wait in a FIFO queue — that wait is
  // the backpressure signal (workload.queue_wait_ns).
  int max_in_flight = 8;
  // Park pushdown queries at the host while the device's session thread
  // pool is empty instead of eating an OPEN rejection.
  bool wait_for_grant = true;
};

// Drives N concurrent queries over one Database on a shared virtual
// clock. Each query is a resumable QueryTask; the scheduler owns a
// sim::EventQueue and advances whichever task has the earliest ready
// time, so in-flight queries interleave page-by-page (host path) and
// protocol-unit-by-protocol-unit (pushdown path) on the simulated
// resources — the concurrent-workload story the run-to-completion
// executor could not tell (its "co-running" queries serialized behind
// each other in every FIFO server).
//
// Determinism: same submissions -> same event order (the event queue
// breaks time ties FIFO) -> byte-identical completion records.
//
// Per-query latency lands in workload.latency_ns (plus a per-target
// breakdown) and queue wait in workload.queue_wait_ns; each client gets
// a tracer lane under the "workload" process with one span per query.
//
// The scheduler is the SignalSource for adaptive placement: policies
// read the in-flight count, admission-queue depth, and the
// workload.queue_wait_ns histogram snapshot at each query's admission
// time — all virtual-clock-deterministic, so a fixed arrival trace
// yields byte-identical routing run-to-run.
class WorkloadScheduler : public SignalSource {
 public:
  explicit WorkloadScheduler(Database* db,
                             const WorkloadOptions& options = {});
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(WorkloadScheduler);

  // One query arriving at virtual time `at`. Returns its id.
  std::uint64_t Submit(WorkloadQueryConfig config, SimTime at);

  // Closed-loop client: `count` queries back to back — the next arrives
  // `think_time` after the previous completes.
  void AddClosedLoopClient(WorkloadQueryConfig config, int count,
                           SimDuration think_time = 0,
                           SimTime first_arrival = 0);

  // Open-loop client: `count` queries at a fixed inter-arrival gap,
  // regardless of completions (arrival-rate driving; queue growth under
  // overload shows up as queue_wait).
  void AddOpenLoopClient(WorkloadQueryConfig config, int count,
                         SimDuration inter_arrival,
                         SimTime first_arrival = 0);

  // Closed-loop ingest client: `count` batches back to back, the next
  // arriving `think_time` after the previous completes. Ingest batches
  // are background writers: they bypass query admission control (they
  // never hold a query slot) but contend for the same simulated host
  // and device resources, which is exactly the interference the write
  // path is supposed to exert on query latency.
  void AddIngestClient(IngestClientConfig config, int count,
                       SimDuration think_time = 0, SimTime first_arrival = 0);

  // Runs to drain and returns completion records in completion order.
  // Call once. Errors only on scheduler-level deadlock (a bug); per-
  // query failures are inside their records.
  Result<std::vector<CompletedQuery>> Run();

  // Ingest completion records in completion order; valid after Run().
  const std::vector<CompletedIngest>& completed_ingests() const {
    return completed_ingests_;
  }

  SimTime now() const { return clock_.now(); }
  int peak_in_flight() const { return peak_in_flight_; }
  std::uint64_t peak_queue_depth() const { return peak_queue_depth_; }

  // Live load signals for placement policies (engine/placement.h).
  LiveSignals Signals() const override;

 private:
  struct Source {
    WorkloadQueryConfig config;
    obs::TrackId track = 0;
    bool closed_loop = false;
    int remaining = 0;        // closed-loop arrivals still to generate
    SimDuration think_time = 0;
  };

  struct Running {
    std::uint64_t id = 0;
    std::size_t source = 0;
    SimTime arrival = 0;
    SimTime admitted = 0;
    std::unique_ptr<QueryTask> task;
  };

  struct PendingArrival {
    std::size_t source = 0;
    SimTime arrival = 0;
    std::uint64_t id = 0;
  };

  struct IngestSource {
    IngestClientConfig config;
    obs::TrackId track = 0;
    int remaining = 0;  // arrivals still to generate
    SimDuration think_time = 0;
  };

  struct RunningIngest {
    std::uint64_t id = 0;
    std::size_t source = 0;
    SimTime arrival = 0;
    std::unique_ptr<IngestTask> task;
  };

  std::size_t AddSource(WorkloadQueryConfig config);
  void ScheduleArrival(std::size_t source, SimTime at, std::uint64_t id);
  void OnArrival(std::size_t source, SimTime arrival, std::uint64_t id);
  void StartQuery(std::size_t source, SimTime arrival, SimTime admitted,
                  std::uint64_t id);
  void ScheduleStep(std::shared_ptr<Running> q, SimTime at);
  void OnStep(const std::shared_ptr<Running>& q);
  void OnComplete(const std::shared_ptr<Running>& q, SimTime end);
  void TryUnpark();

  void ScheduleIngestArrival(std::size_t source, SimTime at,
                             std::uint64_t id);
  void ScheduleIngestStep(std::shared_ptr<RunningIngest> b, SimTime at);
  void OnIngestStep(const std::shared_ptr<RunningIngest>& b);
  void OnIngestComplete(const std::shared_ptr<RunningIngest>& b,
                        SimTime end);

  Database* db_;
  WorkloadOptions options_;
  sim::Clock clock_;
  sim::EventQueue events_;
  obs::Tracer* tracer_ = nullptr;

  std::deque<Source> sources_;  // stable addresses for bound specs
  std::deque<IngestSource> ingest_sources_;  // stable batch-spec addresses
  std::deque<PendingArrival> admission_queue_;
  std::deque<std::shared_ptr<Running>> parked_;  // waiting for a grant
  std::vector<CompletedQuery> completed_;
  std::vector<CompletedIngest> completed_ingests_;
  std::uint64_t next_id_ = 1;
  std::uint64_t expected_ = 0;  // total queries this workload will run
  std::uint64_t expected_ingests_ = 0;
  int ingest_in_flight_ = 0;
  int in_flight_ = 0;
  int peak_in_flight_ = 0;
  std::uint64_t peak_queue_depth_ = 0;
  bool ran_ = false;
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_WORKLOAD_H_
