#include "engine/partial_merge.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <string>

namespace smartssd::engine {

namespace {

std::int64_t CombineAgg(exec::AggSpec::Fn fn, std::int64_t a,
                        std::int64_t b) {
  switch (fn) {
    case exec::AggSpec::Fn::kSum:
    case exec::AggSpec::Fn::kCount:
      return a + b;
    case exec::AggSpec::Fn::kMin:
      return std::min(a, b);
    case exec::AggSpec::Fn::kMax:
      return std::max(a, b);
  }
  return a;
}

std::int64_t AggMergeInit(exec::AggSpec::Fn fn) {
  switch (fn) {
    case exec::AggSpec::Fn::kSum:
    case exec::AggSpec::Fn::kCount:
      return 0;
    case exec::AggSpec::Fn::kMin:
      return std::numeric_limits<std::int64_t>::max();
    case exec::AggSpec::Fn::kMax:
      return std::numeric_limits<std::int64_t>::min();
  }
  return 0;
}

}  // namespace

Status ValidateMergeable(const exec::QuerySpec& spec) {
  if (!spec.top_n.has_value()) return Status::OK();
  for (const int col : spec.projection) {
    if (col == spec.top_n->order_col) return Status::OK();
  }
  return InvalidArgumentError(
      "scatter-gather top-N requires the ORDER BY column in the "
      "projection");
}

MergedPartials MergePartialResults(
    const exec::QuerySpec& spec, const storage::Schema& output_schema,
    const std::vector<const QueryResult*>& partials) {
  SMARTSSD_CHECK(!partials.empty());
  MergedPartials merged;
  for (const QueryResult* partial : partials) {
    merged.input_rows += partial->row_count();
    merged.input_bytes += partial->rows.size();
  }
  const std::uint32_t width = output_schema.tuple_size();

  if (!spec.aggregates.empty() && spec.group_by.empty()) {
    // Scalar aggregates: fold partial values.
    merged.agg_values.resize(spec.aggregates.size());
    for (std::size_t i = 0; i < spec.aggregates.size(); ++i) {
      merged.agg_values[i] = AggMergeInit(spec.aggregates[i].fn);
      for (const QueryResult* partial : partials) {
        merged.agg_values[i] = CombineAgg(spec.aggregates[i].fn,
                                          merged.agg_values[i],
                                          partial->agg_values[i]);
      }
      const std::byte* p =
          reinterpret_cast<const std::byte*>(&merged.agg_values[i]);
      merged.rows.insert(merged.rows.end(), p, p + 8);
    }
  } else if (!spec.aggregates.empty()) {
    // GROUP BY: merge rows key-wise. The key is the row prefix before
    // the aggregate values.
    const std::uint32_t key_width =
        width - 8u * static_cast<std::uint32_t>(spec.aggregates.size());
    std::map<std::string, std::vector<std::int64_t>> groups;
    for (const QueryResult* partial : partials) {
      for (std::uint64_t r = 0; r < partial->row_count(); ++r) {
        const std::byte* row = partial->rows.data() + r * width;
        std::string key(reinterpret_cast<const char*>(row), key_width);
        auto it = groups.find(key);
        if (it == groups.end()) {
          std::vector<std::int64_t> init;
          for (const exec::AggSpec& agg : spec.aggregates) {
            init.push_back(AggMergeInit(agg.fn));
          }
          it = groups.emplace(std::move(key), std::move(init)).first;
        }
        for (std::size_t i = 0; i < spec.aggregates.size(); ++i) {
          std::int64_t v;
          std::memcpy(&v, row + key_width + 8 * i, 8);
          it->second[i] =
              CombineAgg(spec.aggregates[i].fn, it->second[i], v);
        }
      }
    }
    for (const auto& [key, values] : groups) {
      merged.rows.insert(merged.rows.end(),
                         reinterpret_cast<const std::byte*>(key.data()),
                         reinterpret_cast<const std::byte*>(key.data()) +
                             key.size());
      for (const std::int64_t v : values) {
        const std::byte* p = reinterpret_cast<const std::byte*>(&v);
        merged.rows.insert(merged.rows.end(), p, p + 8);
      }
    }
  } else {
    // Projection: concatenate, then optionally re-select the top N.
    for (const QueryResult* partial : partials) {
      merged.rows.insert(merged.rows.end(), partial->rows.begin(),
                         partial->rows.end());
    }
    if (spec.top_n.has_value()) {
      // Locate the order column's byte offset within the output row.
      std::uint32_t key_offset = 0;
      std::uint32_t key_size = 0;
      for (std::size_t i = 0; i < spec.projection.size(); ++i) {
        const storage::Column& column =
            output_schema.column(static_cast<int>(i));
        if (spec.projection[i] == spec.top_n->order_col) {
          key_size = column.width;
          break;
        }
        key_offset += column.width;
      }
      SMARTSSD_CHECK_GT(key_size, 0u);
      const std::uint64_t total = merged.rows.size() / width;
      std::vector<std::uint64_t> order(total);
      for (std::uint64_t i = 0; i < total; ++i) order[i] = i;
      auto key_of = [&](std::uint64_t row) -> std::int64_t {
        const std::byte* p =
            merged.rows.data() + row * width + key_offset;
        if (key_size == 8) {
          std::int64_t v;
          std::memcpy(&v, p, 8);
          return v;
        }
        std::int32_t v;
        std::memcpy(&v, p, 4);
        return v;
      };
      std::stable_sort(order.begin(), order.end(),
                       [&](std::uint64_t a, std::uint64_t b) {
                         return spec.top_n->descending
                                    ? key_of(a) > key_of(b)
                                    : key_of(a) < key_of(b);
                       });
      const std::uint64_t keep =
          std::min<std::uint64_t>(spec.top_n->limit, total);
      std::vector<std::byte> selected;
      selected.reserve(keep * width);
      for (std::uint64_t i = 0; i < keep; ++i) {
        const std::byte* row = merged.rows.data() + order[i] * width;
        selected.insert(selected.end(), row, row + width);
      }
      merged.rows = std::move(selected);
    }
  }
  return merged;
}

}  // namespace smartssd::engine
