#ifndef SMARTSSD_ENGINE_UPDATE_H_
#define SMARTSSD_ENGINE_UPDATE_H_

#include <functional>
#include <string>

#include "common/macros.h"
#include "common/result.h"
#include "engine/database.h"
#include "expr/expression.h"
#include "storage/tuple.h"

namespace smartssd::engine {

// Host-side updates through the buffer pool. Section 4.3: "queries with
// any updates cannot be processed in the SSD without appropriate
// coordination with the DBMS transaction manager" — so updates here are
// host-only by design. Their side effects are exactly the coherence
// hazards the pushdown rules guard against:
//
//   * updated pages sit dirty in the buffer pool, which makes the
//     planner and executor refuse pushdown on the table until
//     BufferPool::FlushAll() writes them back;
//   * the table's zone map (if any) is dropped, since its statistics
//     may no longer bound the stored values.
class TableUpdater {
 public:
  explicit TableUpdater(Database* db);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(TableUpdater);

  struct UpdateStats {
    std::uint64_t rows_matched = 0;
    std::uint64_t pages_dirtied = 0;
    SimTime end = 0;
  };

  // Applies `mutate` to every row satisfying `predicate` (nullptr = all
  // rows). The callback sees the current row and writes replacement
  // fields through the TupleWriter (unwritten fields keep their value).
  Result<UpdateStats> Update(
      const std::string& table, const expr::Expression* predicate,
      const std::function<void(const expr::RowView& row,
                               storage::TupleWriter& writer)>& mutate,
      SimTime start = 0);

 private:
  Database* db_;
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_UPDATE_H_
