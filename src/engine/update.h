#ifndef SMARTSSD_ENGINE_UPDATE_H_
#define SMARTSSD_ENGINE_UPDATE_H_

#include <functional>
#include <string>

#include "common/macros.h"
#include "common/result.h"
#include "engine/database.h"
#include "expr/expression.h"
#include "storage/table_loader.h"
#include "storage/tuple.h"

namespace smartssd::engine {

// Host-side updates through the buffer pool. Section 4.3: "queries with
// any updates cannot be processed in the SSD without appropriate
// coordination with the DBMS transaction manager" — so updates here are
// host-only by design. Their side effects are exactly the coherence
// hazards the pushdown rules guard against:
//
//   * updated pages sit dirty in the buffer pool, which makes the
//     planner and executor refuse pushdown on the table until a flush
//     writes them back;
//   * the table's zone map (if any) goes stale, since its statistics
//     may no longer bound the stored values; Database::FlushAll
//     rebuilds it so pushdown eligibility recovers.
class TableUpdater {
 public:
  explicit TableUpdater(Database* db);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(TableUpdater);

  struct UpdateStats {
    std::uint64_t rows_matched = 0;
    std::uint64_t pages_dirtied = 0;
    SimTime end = 0;
  };

  using MutateFn = std::function<void(const expr::RowView& row,
                                      storage::TupleWriter& writer)>;

  // Applies `mutate` to every row satisfying `predicate` (nullptr = all
  // rows). The callback sees the current row and writes replacement
  // fields through the TupleWriter (unwritten fields keep their value).
  // Runs a whole update pass in one call; UpdateCursor below is the
  // resumable page-at-a-time form this delegates to.
  Result<UpdateStats> Update(const std::string& table,
                             const expr::Expression* predicate,
                             const MutateFn& mutate, SimTime start = 0);

 private:
  Database* db_;
};

// Page-granular resumable update pass: one StepPage call decodes,
// mutates, and re-encodes one page, so a workload scheduler can
// interleave update work with queries at page granularity. When the
// last page has been processed and any row matched, the table's zone
// map is marked stale.
class UpdateCursor {
 public:
  static Result<UpdateCursor> Open(Database* db, std::string table,
                                   const expr::Expression* predicate,
                                   TableUpdater::MutateFn mutate);

  UpdateCursor(UpdateCursor&&) = default;
  UpdateCursor& operator=(UpdateCursor&&) = default;
  UpdateCursor(const UpdateCursor&) = delete;
  UpdateCursor& operator=(const UpdateCursor&) = delete;

  bool done() const { return next_page_ >= page_count_; }
  // Processes the next page; returns the virtual time the page's work
  // (CPU + any pool I/O) completes. No-op past the end.
  Result<SimTime> StepPage(SimTime ready);

  const TableUpdater::UpdateStats& stats() const { return stats_; }

 private:
  UpdateCursor() = default;

  Database* db_ = nullptr;
  std::string table_;
  const expr::Expression* predicate_ = nullptr;
  TableUpdater::MutateFn mutate_;
  std::uint64_t next_page_ = 0;
  std::uint64_t page_count_ = 0;
  TableUpdater::UpdateStats stats_;
};

// Appends through the buffer pool into the table's reserved extent
// headroom (TableInfo::reserved_pages). Appends are host-only for the
// same transactional reason updates are. The partial last page is
// rebuilt in place; fresh pages come from the reserved extent, and the
// append fails with FAILED_PRECONDITION once the reservation is
// exhausted.
//
// Zone-map maintenance is widen-on-append: every page image written is
// folded into the live zone map (ranges only grow, so pruning stays
// sound without a rebuild). Pass widen_zone_map = false to mark the
// map stale instead and let Database::FlushAll rebuild it.
class TableAppender {
 public:
  explicit TableAppender(Database* db);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(TableAppender);

  struct AppendStats {
    std::uint64_t rows_appended = 0;
    std::uint64_t pages_dirtied = 0;
    SimTime end = 0;
  };

  // Appends `row_count` rows; `gen` is called with GLOBAL row indexes
  // (tuple_count, tuple_count + 1, ...), so generators defined over the
  // whole table stay pure across appends.
  Result<AppendStats> Append(const std::string& table,
                             std::uint64_t row_count,
                             const storage::RowGenerator& gen,
                             SimTime start = 0, bool widen_zone_map = true);

 private:
  Database* db_;
};

// Resumable page-at-a-time append (see TableAppender).
class AppendCursor {
 public:
  static Result<AppendCursor> Open(Database* db, std::string table,
                                   std::uint64_t row_count,
                                   storage::RowGenerator gen,
                                   bool widen_zone_map = true);

  AppendCursor(AppendCursor&&) = default;
  AppendCursor& operator=(AppendCursor&&) = default;
  AppendCursor(const AppendCursor&) = delete;
  AppendCursor& operator=(const AppendCursor&) = delete;

  bool done() const { return stats_.rows_appended >= target_rows_; }
  // Fills (or finishes) one page with appended rows.
  Result<SimTime> StepPage(SimTime ready);

  const TableAppender::AppendStats& stats() const { return stats_; }

 private:
  AppendCursor() = default;

  Database* db_ = nullptr;
  std::string table_;
  storage::RowGenerator gen_;
  std::uint64_t target_rows_ = 0;
  bool widen_zone_map_ = true;
  TableAppender::AppendStats stats_;
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_UPDATE_H_
