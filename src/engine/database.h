#ifndef SMARTSSD_ENGINE_DATABASE_H_
#define SMARTSSD_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/macros.h"
#include "common/result.h"
#include "engine/buffer_pool.h"
#include "exec/hybrid_join.h"
#include "exec/kernel_mode.h"
#include "engine/circuit_breaker.h"
#include "engine/host_machine.h"
#include "engine/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "smart/protocol.h"
#include "smart/runtime.h"
#include "ssd/hdd_device.h"
#include "ssd/ssd_device.h"
#include "storage/catalog.h"
#include "storage/table_loader.h"
#include "storage/zone_map.h"

namespace smartssd::engine {

enum class DeviceKind { kHdd, kSsd, kSmartSsd };

inline const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kHdd:
      return "SAS HDD";
    case DeviceKind::kSsd:
      return "SAS SSD";
    case DeviceKind::kSmartSsd:
      return "Smart SSD";
  }
  return "?";
}

struct DatabaseOptions {
  DeviceKind device = DeviceKind::kSmartSsd;
  ssd::SsdConfig ssd = ssd::SsdConfig::PaperSmartSsd();
  ssd::HddConfig hdd;
  HostConfig host;
  std::uint64_t buffer_pool_pages = 4096;
  smart::PollingPolicy polling;
  CircuitBreakerConfig breaker;
  // Page kernel for both the host path and the pushdown program. The
  // two kernels are byte-identical in results and OpCounts (so virtual
  // time never depends on this); kScalar exists as the semantic
  // reference for differential testing.
  exec::KernelMode kernel = exec::KernelMode::kVectorized;
  // Wall-clock-only morsel parallelism for host scans: > 1 runs the
  // page-processing loop on that many worker threads (exec/morsel.h).
  // Virtual-time accounting replays the identical per-page OpCounts in
  // page order, so results and every simulated number are byte-
  // identical at any setting; simulation and differential paths keep
  // the default of 1 (no threads are ever spawned then). Top-N queries
  // are not morsel-eligible and fall back to the serial loop.
  int host_threads = 1;
  // Memory-constrained pushdown joins. budget_bytes caps the resident
  // build side of an in-device join; when the estimated hash table
  // exceeds it, the build switches to the hybrid hash join and the
  // overflow partitions spill to flash through the internal write path.
  // budget_bytes == 0 keeps the unconstrained build, but a join whose
  // table cannot fit free device DRAM derives a budget instead of
  // falling off the old routing cliff (see ResolveJoinBudget).
  exec::HybridJoinConfig join_spill;
  // Routing policy applied when a query is submitted without an
  // explicit execution target (ExecuteAuto, scheduler clients without a
  // pinned target). kCostModel is the planner's historical
  // estimate-based host/device choice; see engine/placement.h for the
  // static, adaptive, and split policies.
  PlacementPolicyKind placement = PlacementPolicyKind::kCostModel;

  // The paper's three storage configurations (Section 4.1.2), identical
  // host, differing only in the device behind the HBA.
  static DatabaseOptions PaperHdd();
  static DatabaseOptions PaperSsd();
  static DatabaseOptions PaperSmartSsd();
};

// One host + one storage device + the DBMS state gluing them together.
// This is the stand-in for the paper's modified SQL Server instance: a
// catalog of heap tables, a buffer pool, and — when the device is a
// Smart SSD — a session runtime the executor's "special path" talks to.
class Database {
 public:
  explicit Database(const DatabaseOptions& options);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(Database);

  DeviceKind device_kind() const { return options_.device; }
  ssd::BlockDevice& device() { return *device_; }
  const ssd::BlockDevice& device() const { return *device_; }

  // Non-null only when the device is a Smart SSD.
  ssd::SsdDevice* ssd() { return ssd_; }
  const ssd::SsdDevice* ssd() const { return ssd_; }
  smart::SmartSsdRuntime* runtime() { return runtime_.get(); }
  const smart::SmartSsdRuntime* runtime() const { return runtime_.get(); }
  bool smart_capable() const { return runtime_ != nullptr; }

  // Shared across executors and planners: pushdown failures recorded by
  // any executor steer every later routing decision.
  DeviceCircuitBreaker& circuit_breaker() { return breaker_; }
  const DeviceCircuitBreaker& circuit_breaker() const { return breaker_; }

  storage::Catalog& catalog() { return *catalog_; }
  const storage::Catalog& catalog() const { return *catalog_; }
  BufferPool& buffer_pool() { return *pool_; }
  const BufferPool& buffer_pool() const { return *pool_; }
  HostMachine& host() { return *host_; }
  const HostMachine& host() const { return *host_; }
  const DatabaseOptions& options() const { return options_; }
  // Swaps the routing policy on a live database. The policy only feeds
  // plan-time decisions, so benches sweep it across measurement points
  // on one loaded database instead of re-loading per policy.
  void set_placement(PlacementPolicyKind placement) {
    options_.placement = placement;
  }

  // Bulk-loads a table (see TableLoader). `reserve_extra_pages` leaves
  // extent headroom for appends.
  Result<storage::TableInfo> LoadTable(std::string name,
                                       const storage::Schema& schema,
                                       storage::PageLayout layout,
                                       std::uint64_t row_count,
                                       const storage::RowGenerator& gen,
                                       std::uint64_t reserve_extra_pages = 0);

  // Builds per-page min/max statistics for a loaded table. Do this
  // right after LoadTable (it reads every page, so timing should be
  // reset afterwards — ResetForColdRun does that anyway). Scans on the
  // table will then skip pages whose zone excludes the predicate range,
  // on both the host and the pushdown path.
  Status BuildZoneMap(const std::string& table);
  // The table's zone map, or nullptr if none was built (or it is
  // currently stale after a write).
  const storage::ZoneMap* zone_map(const std::string& table) const;
  // Drops a table's zone map permanently.
  void DropZoneMap(const std::string& table);
  // Marks a table's zone map stale after an in-place update: zone_map()
  // returns nullptr (pushdown loses pruning, never correctness) until
  // RestoreZoneMaps rebuilds it. Tables with no map are a no-op.
  void MarkZoneMapStale(const std::string& table);
  // Widens a table's live zone map from a freshly written page image
  // (the append path's maintenance hook). No-op when the table has no
  // live map; widening only grows ranges, so pruning stays sound.
  Status WidenZoneMap(const std::string& table, std::uint64_t page_index,
                      std::span<const std::byte> page);
  // Rebuilds every stale zone map by reading the tables through the
  // buffer pool (dirty pages must have been flushed first); returns the
  // virtual time the rebuild scans finish.
  Result<SimTime> RestoreZoneMaps(SimTime ready);
  // Flushes all dirty buffer-pool pages to the device and then restores
  // any stale zone maps, so pushdown eligibility recovers. The write
  // path's durability point.
  Result<SimTime> FlushAll(SimTime ready);

  // Cold-run reset: empties the (clean) buffer pool and zeroes all
  // device/host timing, as the paper does before each measured query.
  void ResetForColdRun();

  // Rough sequential read bandwidth of the host path, for the planner.
  std::uint64_t EstimatedHostReadBytesPerSecond() const;
  // Internal bandwidth (smart path); 0 for non-smart devices.
  std::uint64_t EstimatedInternalReadBytesPerSecond() const;

  // --- Observability ---------------------------------------------------

  // Wires `tracer` through every layer: device resources and FTL/faults
  // under `device_process`, host cores / executor / session protocol /
  // breaker under `host_process`. Distinct process names let two
  // databases (e.g. the SSD and Smart SSD configurations) share one
  // tracer and appear as separate process groups in the exported trace.
  // Attach after loading tables so bulk-load I/O does not flood the
  // trace; nullptr detaches everything.
  void AttachTracer(obs::Tracer* tracer,
                    std::string_view device_process = "device",
                    std::string_view host_process = "host");
  obs::Tracer* tracer() const { return tracer_; }
  // The host-side "executor" lane query/phase spans land on.
  obs::TrackId executor_track() const { return executor_track_; }

  // Always-on instrument registry for this database (flash, FTL, buffer
  // pool, executor instruments register here at construction).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Current accumulated busy time of every pipeline stage. The executor
  // diffs two snapshots to fill QueryStats::stage.
  StageBreakdown StageSnapshot() const;

 private:
  DatabaseOptions options_;
  // Declared before the layers that hold instrument pointers into it,
  // so it is destroyed after them.
  obs::MetricsRegistry metrics_;
  std::unique_ptr<ssd::BlockDevice> device_;
  ssd::SsdDevice* ssd_ = nullptr;  // borrowed view of device_
  std::unique_ptr<smart::SmartSsdRuntime> runtime_;
  std::unique_ptr<storage::Catalog> catalog_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HostMachine> host_;
  DeviceCircuitBreaker breaker_;
  std::map<std::string, storage::ZoneMap> zone_maps_;
  // Tables whose zone map was invalidated by a write and awaits rebuild.
  std::set<std::string> stale_zone_maps_;
  obs::Tracer* tracer_ = nullptr;
  obs::TrackId executor_track_ = 0;
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_DATABASE_H_
