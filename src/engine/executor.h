#ifndef SMARTSSD_ENGINE_EXECUTOR_H_
#define SMARTSSD_ENGINE_EXECUTOR_H_

#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "engine/database.h"
#include "engine/metrics.h"
#include "engine/planner.h"
#include "exec/page_processor.h"
#include "exec/query_spec.h"

namespace smartssd::engine {

// A completed query: real output rows (packed fixed-width, per
// OutputSchema), decoded aggregate values for aggregate queries, and the
// measured timeline/counters.
struct QueryResult {
  storage::Schema output_schema;
  std::vector<std::byte> rows;
  std::vector<std::int64_t> agg_values;
  QueryStats stats;

  std::uint64_t row_count() const {
    const std::uint32_t width = output_schema.tuple_size();
    return width == 0 ? 0 : rows.size() / width;
  }
};

// Runs bound queries either the conventional way (pages to the host,
// operators on the Xeons) or through the Smart SSD's session protocol
// (the paper's "special path in SQL Server", Section 4.1.2). Both paths
// execute the identical PageProcessor kernel over identical bytes, so
// they must produce identical results — a property the test suite
// checks — while their timelines differ according to the data path and
// processor the work actually used.
//
// Degraded execution: when a pushdown session dies of a *device* fault
// (uncorrectable read, reset, rejected OPEN, stalled GETs, transfer
// error), Execute/ExecuteAuto transparently re-run the query on the
// host path from the failure's virtual time, producing byte-identical
// results; stats.fell_back records it, and the database's circuit
// breaker learns so the planner routes around a persistently failing
// device. Semantic refusals (e.g. dirty pages — kFailedPrecondition)
// still propagate: re-running those on the host silently would mask an
// engine bug the caller asked to see.
class QueryExecutor {
 public:
  explicit QueryExecutor(Database* db);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(QueryExecutor);

  Result<QueryResult> Execute(const exec::QuerySpec& spec,
                              ExecutionTarget target, SimTime start = 0);

  // Lets the pushdown planner pick the target (Section 4.3's rules),
  // then executes. The decision taken is in the result's stats.target.
  Result<QueryResult> ExecuteAuto(const exec::QuerySpec& spec,
                                  const PlanHints& hints = {},
                                  SimTime start = 0);

  Result<QueryResult> ExecuteOnHost(const exec::BoundQuery& bound,
                                    SimTime start);
  // Raw pushdown, no fallback. On failure `failed_at` (if non-null)
  // receives the virtual time the session was torn down at.
  Result<QueryResult> ExecuteOnDevice(const exec::BoundQuery& bound,
                                      SimTime start,
                                      SimTime* failed_at = nullptr);

 private:
  // Pushdown with host fallback on retryable device failures; updates
  // the shared circuit breaker either way.
  Result<QueryResult> ExecuteDeviceWithFallback(
      const exec::BoundQuery& bound, SimTime start);

  Database* db_;
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_EXECUTOR_H_
