#ifndef SMARTSSD_ENGINE_EXECUTOR_H_
#define SMARTSSD_ENGINE_EXECUTOR_H_

#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "engine/database.h"
#include "engine/metrics.h"
#include "engine/planner.h"
#include "exec/page_processor.h"
#include "exec/query_spec.h"

namespace smartssd::engine {

// A completed query: real output rows (packed fixed-width, per
// OutputSchema), decoded aggregate values for aggregate queries, and the
// measured timeline/counters.
struct QueryResult {
  storage::Schema output_schema;
  std::vector<std::byte> rows;
  std::vector<std::int64_t> agg_values;
  QueryStats stats;

  std::uint64_t row_count() const {
    const std::uint32_t width = output_schema.tuple_size();
    return width == 0 ? 0 : rows.size() / width;
  }
};

// Runs bound queries either the conventional way (pages to the host,
// operators on the Xeons) or through the Smart SSD's session protocol
// (the paper's "special path in SQL Server", Section 4.1.2). Both paths
// execute the identical PageProcessor kernel over identical bytes, so
// they must produce identical results — a property the test suite
// checks — while their timelines differ according to the data path and
// processor the work actually used.
class QueryExecutor {
 public:
  explicit QueryExecutor(Database* db);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(QueryExecutor);

  Result<QueryResult> Execute(const exec::QuerySpec& spec,
                              ExecutionTarget target, SimTime start = 0);

  // Lets the pushdown planner pick the target (Section 4.3's rules),
  // then executes. The decision taken is in the result's stats.target.
  Result<QueryResult> ExecuteAuto(const exec::QuerySpec& spec,
                                  const PlanHints& hints = {},
                                  SimTime start = 0);

  Result<QueryResult> ExecuteOnHost(const exec::BoundQuery& bound,
                                    SimTime start);
  Result<QueryResult> ExecuteOnDevice(const exec::BoundQuery& bound,
                                      SimTime start);

 private:
  Database* db_;
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_EXECUTOR_H_
