#include "engine/parallel.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>

namespace smartssd::engine {

namespace {

// Coordinator-side merge cost, charged to the host CPU after the last
// worker completes: touch every partial row once.
constexpr std::uint64_t kMergeCyclesPerRow = 40;
constexpr std::uint64_t kMergeCyclesPerByte = 1;

std::int64_t CombineAgg(exec::AggSpec::Fn fn, std::int64_t a,
                        std::int64_t b) {
  switch (fn) {
    case exec::AggSpec::Fn::kSum:
    case exec::AggSpec::Fn::kCount:
      return a + b;
    case exec::AggSpec::Fn::kMin:
      return std::min(a, b);
    case exec::AggSpec::Fn::kMax:
      return std::max(a, b);
  }
  return a;
}

std::int64_t AggMergeInit(exec::AggSpec::Fn fn) {
  switch (fn) {
    case exec::AggSpec::Fn::kSum:
    case exec::AggSpec::Fn::kCount:
      return 0;
    case exec::AggSpec::Fn::kMin:
      return std::numeric_limits<std::int64_t>::max();
    case exec::AggSpec::Fn::kMax:
      return std::numeric_limits<std::int64_t>::min();
  }
  return 0;
}

}  // namespace

ParallelDatabase::ParallelDatabase(int workers,
                                   const DatabaseOptions& options) {
  SMARTSSD_CHECK_GT(workers, 0);
  for (int i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Database>(options));
  }
}

Status ParallelDatabase::LoadPartitionedTable(
    const std::string& name, const storage::Schema& schema,
    storage::PageLayout layout, std::uint64_t row_count,
    const storage::RowGenerator& gen) {
  const std::uint64_t n = static_cast<std::uint64_t>(workers());
  for (std::uint64_t w = 0; w < n; ++w) {
    const std::uint64_t first = row_count * w / n;
    const std::uint64_t last = row_count * (w + 1) / n;
    auto wrapped = [&gen, first](std::uint64_t row,
                                 storage::TupleWriter& writer) {
      gen(first + row, writer);
    };
    SMARTSSD_RETURN_IF_ERROR(
        workers_[w]
            ->LoadTable(name, schema, layout, last - first, wrapped)
            .status());
  }
  return Status::OK();
}

Status ParallelDatabase::LoadReplicatedTable(
    const std::string& name, const storage::Schema& schema,
    storage::PageLayout layout, std::uint64_t row_count,
    const storage::RowGenerator& gen) {
  for (auto& worker : workers_) {
    SMARTSSD_RETURN_IF_ERROR(
        worker->LoadTable(name, schema, layout, row_count, gen).status());
  }
  return Status::OK();
}

void ParallelDatabase::ResetForColdRun() {
  for (auto& worker : workers_) worker->ResetForColdRun();
}

Result<ParallelQueryResult> ParallelDatabase::Execute(
    const exec::QuerySpec& spec, ExecutionTarget target, SimTime start) {
  if (spec.top_n.has_value()) {
    // The coordinator re-sorts merged rows by the order column, so it
    // must appear in the projection.
    bool projected = false;
    for (const int col : spec.projection) {
      if (col == spec.top_n->order_col) projected = true;
    }
    if (!projected) {
      return InvalidArgumentError(
          "parallel top-N requires the ORDER BY column in the projection");
    }
  }
  std::vector<QueryResult> partials;
  partials.reserve(workers_.size());
  for (auto& worker : workers_) {
    QueryExecutor executor(worker.get());
    SMARTSSD_ASSIGN_OR_RETURN(QueryResult partial,
                              executor.Execute(spec, target, start));
    partials.push_back(std::move(partial));
  }
  return Merge(spec, std::move(partials), start);
}

Result<ParallelQueryResult> ParallelDatabase::Merge(
    const exec::QuerySpec& spec, std::vector<QueryResult> partials,
    SimTime start) {
  ParallelQueryResult result{.output_schema = partials[0].output_schema,
                             .rows = {},
                             .agg_values = {},
                             .start = start,
                             .end = start,
                             .worker_stats = {}};
  SimTime last_worker_done = start;
  std::uint64_t merged_rows = 0;
  std::uint64_t merged_bytes = 0;
  for (QueryResult& partial : partials) {
    last_worker_done = std::max(last_worker_done, partial.stats.end);
    merged_rows += partial.row_count();
    merged_bytes += partial.rows.size();
    result.worker_stats.push_back(partial.stats);
  }
  const std::uint32_t width = result.output_schema.tuple_size();

  if (!spec.aggregates.empty() && spec.group_by.empty()) {
    // Scalar aggregates: fold worker values.
    result.agg_values.resize(spec.aggregates.size());
    for (std::size_t i = 0; i < spec.aggregates.size(); ++i) {
      result.agg_values[i] = AggMergeInit(spec.aggregates[i].fn);
      for (const QueryResult& partial : partials) {
        result.agg_values[i] = CombineAgg(spec.aggregates[i].fn,
                                          result.agg_values[i],
                                          partial.agg_values[i]);
      }
      const std::byte* p =
          reinterpret_cast<const std::byte*>(&result.agg_values[i]);
      result.rows.insert(result.rows.end(), p, p + 8);
    }
  } else if (!spec.aggregates.empty()) {
    // GROUP BY: merge rows key-wise. The key is the row prefix before
    // the aggregate values.
    const std::uint32_t key_width =
        width - 8u * static_cast<std::uint32_t>(spec.aggregates.size());
    std::map<std::string, std::vector<std::int64_t>> groups;
    for (const QueryResult& partial : partials) {
      for (std::uint64_t r = 0; r < partial.row_count(); ++r) {
        const std::byte* row = partial.rows.data() + r * width;
        std::string key(reinterpret_cast<const char*>(row), key_width);
        auto it = groups.find(key);
        if (it == groups.end()) {
          std::vector<std::int64_t> init;
          for (const exec::AggSpec& agg : spec.aggregates) {
            init.push_back(AggMergeInit(agg.fn));
          }
          it = groups.emplace(std::move(key), std::move(init)).first;
        }
        for (std::size_t i = 0; i < spec.aggregates.size(); ++i) {
          std::int64_t v;
          std::memcpy(&v, row + key_width + 8 * i, 8);
          it->second[i] =
              CombineAgg(spec.aggregates[i].fn, it->second[i], v);
        }
      }
    }
    for (const auto& [key, values] : groups) {
      result.rows.insert(result.rows.end(),
                         reinterpret_cast<const std::byte*>(key.data()),
                         reinterpret_cast<const std::byte*>(key.data()) +
                             key.size());
      for (const std::int64_t v : values) {
        const std::byte* p = reinterpret_cast<const std::byte*>(&v);
        result.rows.insert(result.rows.end(), p, p + 8);
      }
    }
  } else {
    // Projection: concatenate, then optionally re-select the top N.
    for (const QueryResult& partial : partials) {
      result.rows.insert(result.rows.end(), partial.rows.begin(),
                         partial.rows.end());
    }
    if (spec.top_n.has_value()) {
      // Locate the order column's byte offset within the output row.
      std::uint32_t key_offset = 0;
      std::uint32_t key_size = 0;
      for (std::size_t i = 0; i < spec.projection.size(); ++i) {
        const storage::Column& column =
            partials[0].output_schema.column(static_cast<int>(i));
        if (spec.projection[i] == spec.top_n->order_col) {
          key_size = column.width;
          break;
        }
        key_offset += column.width;
      }
      SMARTSSD_CHECK_GT(key_size, 0u);
      const std::uint64_t total = result.rows.size() / width;
      std::vector<std::uint64_t> order(total);
      for (std::uint64_t i = 0; i < total; ++i) order[i] = i;
      auto key_of = [&](std::uint64_t row) -> std::int64_t {
        const std::byte* p =
            result.rows.data() + row * width + key_offset;
        if (key_size == 8) {
          std::int64_t v;
          std::memcpy(&v, p, 8);
          return v;
        }
        std::int32_t v;
        std::memcpy(&v, p, 4);
        return v;
      };
      std::stable_sort(order.begin(), order.end(),
                       [&](std::uint64_t a, std::uint64_t b) {
                         return spec.top_n->descending
                                    ? key_of(a) > key_of(b)
                                    : key_of(a) < key_of(b);
                       });
      const std::uint64_t keep =
          std::min<std::uint64_t>(spec.top_n->limit, total);
      std::vector<std::byte> selected;
      selected.reserve(keep * width);
      for (std::uint64_t i = 0; i < keep; ++i) {
        const std::byte* row = result.rows.data() + order[i] * width;
        selected.insert(selected.end(), row, row + width);
      }
      result.rows = std::move(selected);
    }
  }

  // Merge cost on the coordinator's CPU (worker 0's host machine stands
  // in for the single physical host).
  const std::uint64_t merge_cycles = merged_rows * kMergeCyclesPerRow +
                                     merged_bytes * kMergeCyclesPerByte;
  result.end =
      workers_[0]->host().Execute(merge_cycles, last_worker_done);
  return result;
}

}  // namespace smartssd::engine
