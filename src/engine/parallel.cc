#include "engine/parallel.h"

#include <algorithm>
#include <utility>

#include "engine/partial_merge.h"

namespace smartssd::engine {

ParallelDatabase::ParallelDatabase(int workers,
                                   const DatabaseOptions& options) {
  SMARTSSD_CHECK_GT(workers, 0);
  for (int i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Database>(options));
  }
}

Status ParallelDatabase::LoadPartitionedTable(
    const std::string& name, const storage::Schema& schema,
    storage::PageLayout layout, std::uint64_t row_count,
    const storage::RowGenerator& gen) {
  const std::uint64_t n = static_cast<std::uint64_t>(workers());
  for (std::uint64_t w = 0; w < n; ++w) {
    const std::uint64_t first = row_count * w / n;
    const std::uint64_t last = row_count * (w + 1) / n;
    auto wrapped = [&gen, first](std::uint64_t row,
                                 storage::TupleWriter& writer) {
      gen(first + row, writer);
    };
    SMARTSSD_RETURN_IF_ERROR(
        workers_[w]
            ->LoadTable(name, schema, layout, last - first, wrapped)
            .status());
  }
  return Status::OK();
}

Status ParallelDatabase::LoadReplicatedTable(
    const std::string& name, const storage::Schema& schema,
    storage::PageLayout layout, std::uint64_t row_count,
    const storage::RowGenerator& gen) {
  for (auto& worker : workers_) {
    SMARTSSD_RETURN_IF_ERROR(
        worker->LoadTable(name, schema, layout, row_count, gen).status());
  }
  return Status::OK();
}

void ParallelDatabase::ResetForColdRun() {
  for (auto& worker : workers_) worker->ResetForColdRun();
}

Result<ParallelQueryResult> ParallelDatabase::Execute(
    const exec::QuerySpec& spec, ExecutionTarget target, SimTime start) {
  SMARTSSD_RETURN_IF_ERROR(ValidateMergeable(spec));
  std::vector<QueryResult> partials;
  partials.reserve(workers_.size());
  for (auto& worker : workers_) {
    QueryExecutor executor(worker.get());
    SMARTSSD_ASSIGN_OR_RETURN(QueryResult partial,
                              executor.Execute(spec, target, start));
    partials.push_back(std::move(partial));
  }
  return Merge(spec, std::move(partials), start);
}

Result<ParallelQueryResult> ParallelDatabase::Merge(
    const exec::QuerySpec& spec, std::vector<QueryResult> partials,
    SimTime start) {
  ParallelQueryResult result{.output_schema = partials[0].output_schema,
                             .rows = {},
                             .agg_values = {},
                             .start = start,
                             .end = start,
                             .worker_stats = {}};
  SimTime last_worker_done = start;
  std::vector<const QueryResult*> ordered;
  ordered.reserve(partials.size());
  for (QueryResult& partial : partials) {
    last_worker_done = std::max(last_worker_done, partial.stats.end);
    result.worker_stats.push_back(partial.stats);
    ordered.push_back(&partial);
  }
  MergedPartials merged =
      MergePartialResults(spec, result.output_schema, ordered);
  result.rows = std::move(merged.rows);
  result.agg_values = std::move(merged.agg_values);

  // Merge cost on the coordinator's CPU (worker 0's host machine stands
  // in for the single physical host).
  result.end = workers_[0]->host().Execute(
      MergeCostCycles(merged.input_rows, merged.input_bytes),
      last_worker_done);
  return result;
}

}  // namespace smartssd::engine
