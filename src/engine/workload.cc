#include "engine/workload.h"

#include <algorithm>
#include <utility>

namespace smartssd::engine {

WorkloadScheduler::WorkloadScheduler(Database* db,
                                     const WorkloadOptions& options)
    : db_(db), options_(options), events_(&clock_), tracer_(db->tracer()) {
  SMARTSSD_CHECK(db != nullptr);
  SMARTSSD_CHECK_GT(options.max_in_flight, 0);
}

std::size_t WorkloadScheduler::AddSource(WorkloadQueryConfig config) {
  sources_.push_back(Source{.config = std::move(config)});
  if (tracer_ != nullptr) {
    // Idempotent per (process, thread): clients sharing a name share a
    // lane.
    sources_.back().track =
        tracer_->RegisterTrack("workload", sources_.back().config.client);
  }
  return sources_.size() - 1;
}

std::uint64_t WorkloadScheduler::Submit(WorkloadQueryConfig config,
                                        SimTime at) {
  SMARTSSD_CHECK(!ran_);
  const std::size_t source = AddSource(std::move(config));
  const std::uint64_t id = next_id_++;
  ++expected_;
  ScheduleArrival(source, at, id);
  return id;
}

void WorkloadScheduler::AddClosedLoopClient(WorkloadQueryConfig config,
                                            int count,
                                            SimDuration think_time,
                                            SimTime first_arrival) {
  SMARTSSD_CHECK(!ran_);
  if (count <= 0) return;
  const std::size_t source = AddSource(std::move(config));
  Source& src = sources_[source];
  src.closed_loop = true;
  src.remaining = count - 1;
  src.think_time = think_time;
  expected_ += static_cast<std::uint64_t>(count);
  ScheduleArrival(source, first_arrival, next_id_++);
}

void WorkloadScheduler::AddOpenLoopClient(WorkloadQueryConfig config,
                                          int count,
                                          SimDuration inter_arrival,
                                          SimTime first_arrival) {
  SMARTSSD_CHECK(!ran_);
  if (count <= 0) return;
  const std::size_t source = AddSource(std::move(config));
  expected_ += static_cast<std::uint64_t>(count);
  for (int i = 0; i < count; ++i) {
    ScheduleArrival(source,
                    first_arrival + static_cast<SimDuration>(i) *
                                        inter_arrival,
                    next_id_++);
  }
}

void WorkloadScheduler::AddIngestClient(IngestClientConfig config,
                                        int count, SimDuration think_time,
                                        SimTime first_arrival) {
  SMARTSSD_CHECK(!ran_);
  if (count <= 0) return;
  ingest_sources_.push_back(IngestSource{.config = std::move(config)});
  IngestSource& src = ingest_sources_.back();
  if (tracer_ != nullptr) {
    src.track = tracer_->RegisterTrack("workload", src.config.client);
  }
  src.remaining = count - 1;
  src.think_time = think_time;
  expected_ingests_ += static_cast<std::uint64_t>(count);
  ScheduleIngestArrival(ingest_sources_.size() - 1, first_arrival,
                        next_id_++);
}

void WorkloadScheduler::ScheduleIngestArrival(std::size_t source,
                                              SimTime at, std::uint64_t id) {
  events_.ScheduleAt(std::max(clock_.now(), at),
                     [this, source, id](SimTime now) {
                       const IngestSource& src = ingest_sources_[source];
                       auto b = std::make_shared<RunningIngest>();
                       b->id = id;
                       b->source = source;
                       b->arrival = now;
                       b->task = std::make_unique<IngestTask>(
                           db_, &src.config.spec, now);
                       ++ingest_in_flight_;
                       ScheduleIngestStep(std::move(b), now);
                     });
}

void WorkloadScheduler::ScheduleIngestStep(std::shared_ptr<RunningIngest> b,
                                           SimTime at) {
  events_.ScheduleAt(std::max(clock_.now(), at),
                     [this, b = std::move(b)](SimTime) { OnIngestStep(b); });
}

void WorkloadScheduler::OnIngestStep(
    const std::shared_ptr<RunningIngest>& b) {
  const StepOutcome outcome = b->task->Step();
  if (outcome.finished) {
    OnIngestComplete(b, outcome.at);
  } else {
    ScheduleIngestStep(b, outcome.at);
  }
}

void WorkloadScheduler::OnIngestComplete(
    const std::shared_ptr<RunningIngest>& b, SimTime end) {
  IngestSource& src = ingest_sources_[b->source];
  CompletedIngest record;
  record.id = b->id;
  record.client = src.config.client;
  record.arrival = b->arrival;
  record.end = end;
  record.result = b->task->TakeResult();

  obs::MetricsRegistry& metrics = db_->metrics();
  metrics.histogram("workload.ingest_latency_ns")->Record(record.latency());
  std::vector<obs::Arg> span_args{obs::Arg::Uint("id", record.id)};
  if (record.result.ok()) {
    const IngestStats& stats = record.result.value();
    metrics.counter("workload.ingest_completed")->Add();
    metrics.counter("workload.rows_updated")->Add(stats.rows_updated);
    metrics.counter("workload.rows_appended")->Add(stats.rows_appended);
    span_args.push_back(obs::Arg::Uint("rows_updated", stats.rows_updated));
    span_args.push_back(
        obs::Arg::Uint("rows_appended", stats.rows_appended));
    span_args.push_back(
        obs::Arg::Uint("pages_flushed", stats.pages_flushed));
  } else {
    metrics.counter("workload.ingest_failed")->Add();
    span_args.push_back(
        obs::Arg::Str("error", record.result.status().message()));
  }
  if (tracer_ != nullptr) {
    tracer_->Complete(src.track, "ingest:" + src.config.spec.table,
                      "workload", record.arrival, record.end,
                      std::move(span_args));
  }
  completed_ingests_.push_back(std::move(record));
  --ingest_in_flight_;

  if (src.remaining > 0) {
    --src.remaining;
    ScheduleIngestArrival(b->source, end + src.think_time, next_id_++);
  }
}

void WorkloadScheduler::ScheduleArrival(std::size_t source, SimTime at,
                                        std::uint64_t id) {
  events_.ScheduleAt(std::max(clock_.now(), at),
                     [this, source, id](SimTime now) {
                       OnArrival(source, now, id);
                     });
}

void WorkloadScheduler::OnArrival(std::size_t source, SimTime arrival,
                                  std::uint64_t id) {
  if (in_flight_ < options_.max_in_flight) {
    StartQuery(source, arrival, /*admitted=*/arrival, id);
    return;
  }
  admission_queue_.push_back(
      PendingArrival{.source = source, .arrival = arrival, .id = id});
  peak_queue_depth_ =
      std::max(peak_queue_depth_,
               static_cast<std::uint64_t>(admission_queue_.size()));
}

void WorkloadScheduler::StartQuery(std::size_t source, SimTime arrival,
                                   SimTime admitted, std::uint64_t id) {
  const Source& src = sources_[source];
  auto q = std::make_shared<Running>();
  q->id = id;
  q->source = source;
  q->arrival = arrival;
  q->admitted = admitted;
  if (src.config.target.has_value()) {
    q->task = std::make_unique<QueryTask>(db_, &src.config.spec,
                                          *src.config.target, admitted,
                                          options_.wait_for_grant);
  } else {
    // The scheduler itself is the SignalSource: an adaptive policy sees
    // this query's admission-time load (in-flight count, queue depth,
    // queue-wait histogram) when the task plans.
    q->task = std::make_unique<QueryTask>(db_, &src.config.spec,
                                          src.config.hints, admitted,
                                          options_.wait_for_grant, this);
  }
  ++in_flight_;
  peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
  ScheduleStep(std::move(q), admitted);
}

void WorkloadScheduler::ScheduleStep(std::shared_ptr<Running> q,
                                     SimTime at) {
  // Some steps retire in the virtual past (cached pages, pruned pages,
  // polls overlapped with processing): clamp to the scheduler's now.
  events_.ScheduleAt(std::max(clock_.now(), at),
                     [this, q = std::move(q)](SimTime) { OnStep(q); });
}

void WorkloadScheduler::OnStep(const std::shared_ptr<Running>& q) {
  const StepOutcome outcome = q->task->Step();
  if (outcome.waiting_for_grant) {
    // No device traffic was issued; the task sleeps until a session
    // grant frees (TryUnpark after some other query's step releases
    // one).
    parked_.push_back(q);
    return;
  }
  if (outcome.finished) {
    OnComplete(q, outcome.at);
  } else {
    ScheduleStep(q, outcome.at);
  }
  // This step may have released a session grant (CLOSE, session failure,
  // completion); wake parked tasks while grants are free.
  TryUnpark();
}

void WorkloadScheduler::OnComplete(const std::shared_ptr<Running>& q,
                                   SimTime end) {
  const Source& src = sources_[q->source];
  CompletedQuery record;
  record.id = q->id;
  record.client = src.config.client;
  record.query_name = src.config.spec.name;
  record.arrival = q->arrival;
  record.admitted = q->admitted;
  record.end = end;
  record.result = q->task->TakeResult();

  obs::MetricsRegistry& metrics = db_->metrics();
  metrics.histogram("workload.latency_ns")->Record(record.latency());
  metrics.histogram("workload.queue_wait_ns")->Record(record.queue_wait());
  std::vector<obs::Arg> span_args{
      obs::Arg::Uint("id", record.id),
      obs::Arg::Uint("queue_wait_ns", record.queue_wait())};
  if (record.result.ok()) {
    const QueryStats& stats = record.result.value().stats;
    metrics.counter("workload.completed")->Add();
    metrics
        .histogram(std::string("workload.latency_ns.") +
                   ExecutionTargetName(stats.target))
        ->Record(record.latency());
    if (stats.fell_back) metrics.counter("workload.fallbacks")->Add();
    span_args.push_back(
        obs::Arg::Str("target", ExecutionTargetName(stats.target)));
    if (stats.fell_back) span_args.push_back(obs::Arg::Uint("fell_back", 1));
  } else {
    metrics.counter("workload.failed")->Add();
    span_args.push_back(
        obs::Arg::Str("error", record.result.status().message()));
  }
  if (tracer_ != nullptr) {
    tracer_->Complete(src.track, record.query_name, "workload",
                      record.arrival, record.end, std::move(span_args));
  }
  completed_.push_back(std::move(record));
  --in_flight_;

  // Closed-loop clients think, then send the next query.
  Source& mutable_src = sources_[q->source];
  if (mutable_src.closed_loop && mutable_src.remaining > 0) {
    --mutable_src.remaining;
    ScheduleArrival(q->source, end + mutable_src.think_time, next_id_++);
  }
  // The freed admission slot goes to the longest-waiting arrival; its
  // query starts when the finishing query's result was delivered.
  if (!admission_queue_.empty() &&
      in_flight_ < options_.max_in_flight) {
    const PendingArrival next = admission_queue_.front();
    admission_queue_.pop_front();
    StartQuery(next.source, next.arrival, /*admitted=*/end, next.id);
  }
}

LiveSignals WorkloadScheduler::Signals() const {
  LiveSignals live;
  live.in_flight = static_cast<std::uint64_t>(in_flight_);
  live.queue_depth = static_cast<std::uint64_t>(admission_queue_.size());
  const obs::HistogramSnapshot wait =
      db_->metrics().SnapshotHistogram("workload.queue_wait_ns");
  live.queue_wait_count = wait.count;
  live.queue_wait_p95_ns = wait.p95;
  return live;
}

void WorkloadScheduler::TryUnpark() {
  if (parked_.empty() || db_->runtime() == nullptr) return;
  if (db_->circuit_breaker().open()) {
    // The device is failing: no healthy session is coming to free a
    // grant, so waiting on slot counts can strand every parked task
    // until the scheduler drains and reports a deadlock. Wake them all;
    // each task sees the open breaker on its next step and redispatches
    // itself to the host (DeviceQueryTask::StepSession).
    while (!parked_.empty()) {
      std::shared_ptr<Running> q = parked_.front();
      parked_.pop_front();
      ScheduleStep(std::move(q), clock_.now());
    }
    return;
  }
  int free = db_->runtime()->session_slots_free();
  while (free-- > 0 && !parked_.empty()) {
    std::shared_ptr<Running> q = parked_.front();
    parked_.pop_front();
    // The task re-checks grant availability on its next step; if another
    // task takes the slot first it simply parks again.
    ScheduleStep(std::move(q), clock_.now());
  }
}

Result<std::vector<CompletedQuery>> WorkloadScheduler::Run() {
  SMARTSSD_CHECK(!ran_);
  ran_ = true;
  events_.RunUntilEmpty();
  if (completed_.size() != expected_ || in_flight_ != 0 ||
      completed_ingests_.size() != expected_ingests_ ||
      ingest_in_flight_ != 0 || !parked_.empty() ||
      !admission_queue_.empty()) {
    return InternalError(
        "workload scheduler deadlocked: queries stuck parked or queued "
        "with no runnable events");
  }
  return std::move(completed_);
}

}  // namespace smartssd::engine
