#ifndef SMARTSSD_ENGINE_FLEET_H_
#define SMARTSSD_ENGINE_FLEET_H_

// A fault-tolerant multi-device Smart SSD fleet with scatter-gather
// query execution — Section 4.3's end-of-spectrum vision ("the host
// machine could simply be the coordinator that stages computation
// across an array of Smart SSDs") grown into the robustness story:
//
//   * Fleet: N SsdDevice-backed databases (heterogeneous configs
//     allowed), hash/range-partitioned fact tables loaded with *global*
//     row indexes so any partitioning is cell-identical to a
//     single-device load (the table_gen purity rule), each device with
//     its own seeded fault-injector stream and its own circuit breaker;
//   * FleetCoordinator: fans each query out as per-device resumable
//     QueryTasks interleaved on one sim::EventQueue (the
//     WorkloadScheduler machinery), merges partials deterministically
//     in partition-id order, and layers on the robustness ladder —
//       1. per-partition host fallback on device faults (byte-identical
//          results, the DeviceQueryTask contract),
//       2. breaker-open re-dispatch: a tripped device's partitions go
//          straight to its host path, skipping the doomed session,
//       3. hedged subqueries: a straggling device-path subquery gets a
//          host-path duplicate once it outlives a fleet-wide latency
//          quantile; first result wins, the loser is cancelled,
//       4. degraded mode: a partition no path can compute is an
//          explicit error (strict) or an explicitly-flagged partial
//          result (best effort) — never a silent truncation.
//
// Determinism: everything is virtual-time-driven off one event queue
// with FIFO tie-breaks, per-device fault seeds are a pure hash of
// (fleet_seed, device_id), and the merge order is fixed by partition
// id — so replays pick the same hedge winners and produce byte-
// identical results, which is what lets fleet shapes sit in the
// differential matrix next to the single-device ground truth.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "engine/database.h"
#include "engine/query_task.h"
#include "engine/workload.h"
#include "exec/query_spec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/fault_injector.h"

namespace smartssd::engine {

inline constexpr std::uint64_t kDefaultFleetSeed = 0xF1EE7;

// Per-device fault-injector seed: a pure stateless hash of
// (fleet_seed, device_id), mirroring table_gen's purity rule, so one
// fleet seed on a replay line reproduces every device's fault stream.
std::uint64_t DeviceFaultSeed(std::uint64_t fleet_seed, int device_id);

// How a fleet query ends when a partition is unavailable on every path.
enum class FleetResultPolicy {
  // The query fails with an Unavailable error naming the partition.
  kStrict,
  // Available partitions merge; the result carries degraded = true and
  // the missing partition list. Explicit, never silent.
  kBestEffort,
};

struct FleetOptions {
  std::uint64_t fleet_seed = kDefaultFleetSeed;

  // Hedging: once `hedge_min_samples` subqueries have completed
  // fleet-wide, a device-path subquery still outstanding past
  // `hedge_latency_factor` x the `hedge_quantile` of completed subquery
  // latencies gets a host-path duplicate on the same device's data;
  // whichever finishes first wins and the loser is cancelled (its
  // session grants are released on destruction).
  bool hedging = true;
  double hedge_quantile = 0.9;
  double hedge_latency_factor = 2.0;
  int hedge_min_samples = 4;

  FleetResultPolicy policy = FleetResultPolicy::kStrict;

  // Admission control over whole fleet queries (each fans out one
  // subquery per device); arrivals beyond this wait in a FIFO queue.
  int max_in_flight = 8;
  // Park a device-path subquery at the host while its device's session
  // thread pool is empty instead of eating an OPEN rejection.
  bool wait_for_grant = true;
};

// N single-device databases acting as one partitioned store. Device i's
// fault injector is seeded with DeviceFaultSeed(fleet_seed, i) whenever
// a schedule is loaded through LoadFaultSchedule.
class Fleet {
 public:
  // Uniform fleet: `devices` copies of one configuration.
  Fleet(int devices, const DatabaseOptions& options,
        std::uint64_t fleet_seed = kDefaultFleetSeed);
  // Heterogeneous fleet: one configuration per device.
  explicit Fleet(const std::vector<DatabaseOptions>& options,
                 std::uint64_t fleet_seed = kDefaultFleetSeed);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(Fleet);

  int devices() const { return static_cast<int>(devices_.size()); }
  Database& device(int i) { return *devices_[static_cast<std::size_t>(i)]; }
  const Database& device(int i) const {
    return *devices_[static_cast<std::size_t>(i)];
  }
  std::uint64_t fleet_seed() const { return fleet_seed_; }
  std::uint64_t device_fault_seed(int device) const {
    return DeviceFaultSeed(fleet_seed_, device);
  }

  // Loads `row_count` rows split into contiguous global row ranges, one
  // per device. The generator sees global row indexes, so the
  // partitioned relation is cell-identical to a single-device load.
  Status LoadPartitionedTable(const std::string& name,
                              const storage::Schema& schema,
                              storage::PageLayout layout,
                              std::uint64_t row_count,
                              const storage::RowGenerator& gen);

  // Loads the full table on every device (broadcast, for join inners).
  Status LoadReplicatedTable(const std::string& name,
                             const storage::Schema& schema,
                             storage::PageLayout layout,
                             std::uint64_t row_count,
                             const storage::RowGenerator& gen);

  // True if `name` was loaded through LoadPartitionedTable — the only
  // tables a scatter-gather query may scan (merging replicated scans
  // would multiply-count rows).
  bool IsPartitioned(const std::string& name) const;

  // Builds per-page zone maps for `table` on every device.
  Status BuildZoneMaps(const std::string& table);

  void ResetForColdRun();

  // Loads `schedule` into device `device`'s injector with schedule.seed
  // overridden by the derived per-device seed.
  void LoadFaultSchedule(int device, sim::FaultSchedule schedule);
  void ClearFaults();

  // Wires one tracer through every device (processes "fleet<i>-dev" /
  // "fleet<i>-host") so all device tracks land in one trace. Attach
  // after loading tables; nullptr detaches.
  void AttachTracer(obs::Tracer* tracer);
  obs::Tracer* tracer() const { return tracer_; }

  // Fleet-level instruments (hedge/re-dispatch counters, per-device
  // breaker-state gauges, latency histograms) live here, separate from
  // the per-device registries.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Refreshes the per-device "fleet.dev<i>.breaker_state" gauges
  // (0 = closed, 1 = open, 2 = half-open, matching
  // DeviceCircuitBreaker::State order).
  void UpdateBreakerGauges();
  // Sum of breaker trips (closed -> open transitions) across devices.
  std::uint64_t TotalBreakerTrips() const;

 private:
  void Init(std::uint64_t fleet_seed);

  std::vector<std::unique_ptr<Database>> devices_;
  std::uint64_t fleet_seed_ = kDefaultFleetSeed;
  std::vector<std::string> partitioned_;
  obs::MetricsRegistry metrics_;
  obs::Tracer* tracer_ = nullptr;
};

// What one partition's subquery went through, in partition-id order.
struct FleetSubqueryRecord {
  int device = -1;
  SimTime start = 0;
  SimTime end = 0;
  bool redispatched = false;  // breaker-open: sent straight to host
  bool fell_back = false;     // device session died, host rerun won
  bool hedged = false;        // a host-path duplicate was launched
  bool hedge_won = false;     // ... and delivered the winning result
  bool unavailable = false;   // no path produced this partition
};

// A merged fleet query result. `partition_stats` is indexed by device
// id (default-constructed for unavailable partitions under best-effort).
struct FleetQueryResult {
  storage::Schema output_schema;
  std::vector<std::byte> rows;
  std::vector<std::int64_t> agg_values;
  SimTime start = 0;
  SimTime end = 0;  // last partial done + coordinator merge
  std::vector<QueryStats> partition_stats;
  bool degraded = false;
  std::vector<int> missing_partitions;

  SimDuration elapsed() const { return end - start; }
  double elapsed_seconds() const { return ToSeconds(elapsed()); }
  std::uint64_t row_count() const {
    const std::uint32_t width = output_schema.tuple_size();
    return width == 0 ? 0 : rows.size() / width;
  }
};

// One query template a fleet client submits. The spec is borrowed and
// must outlive the coordinator (specs are move-only; callers keep them
// at stable addresses, as the differential harness and benches do).
struct FleetQueryConfig {
  std::string client = "client";
  const exec::QuerySpec* spec = nullptr;
  // Fixed execution target for every subquery; nullopt lets each
  // device's pushdown planner decide (hedging only arms for explicit
  // kSmartSsd subqueries — the planner already routes around slowness).
  std::optional<ExecutionTarget> target = ExecutionTarget::kSmartSsd;
  PlanHints hints;
};

// The completion record of one fleet query, on the virtual clock.
struct CompletedFleetQuery {
  std::uint64_t id = 0;
  std::string client;
  std::string query_name;
  SimTime arrival = 0;
  SimTime admitted = 0;
  SimTime end = 0;
  Result<FleetQueryResult> result = InternalError("query not completed");
  std::vector<FleetSubqueryRecord> subqueries;  // partition-id order

  SimDuration latency() const { return end - arrival; }
  SimDuration queue_wait() const { return admitted - arrival; }
};

// Drives N concurrent fleet queries, each scattered across every device
// as resumable QueryTasks on one shared event queue, with hedging,
// breaker-aware re-dispatch, and the degraded-mode ladder described in
// the header comment. One-shot, like WorkloadScheduler: add clients,
// Run() once.
class FleetCoordinator {
 public:
  explicit FleetCoordinator(Fleet* fleet, const FleetOptions& options = {});
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(FleetCoordinator);

  // One fleet query arriving at virtual time `at`. Returns its id.
  std::uint64_t Submit(FleetQueryConfig config, SimTime at);

  // Closed-loop client: the next query arrives `think_time` after the
  // previous completes.
  void AddClosedLoopClient(FleetQueryConfig config, int count,
                           SimDuration think_time = 0,
                           SimTime first_arrival = 0);

  // Open-loop client: `count` queries at a fixed inter-arrival gap.
  void AddOpenLoopClient(FleetQueryConfig config, int count,
                         SimDuration inter_arrival,
                         SimTime first_arrival = 0);

  // Runs to drain; completion records in completion order. Call once.
  Result<std::vector<CompletedFleetQuery>> Run();

  SimTime now() const { return clock_.now(); }
  int peak_in_flight() const { return peak_in_flight_; }

  // Robustness counters for this run (also mirrored as fleet.* metrics
  // on the fleet's registry).
  std::uint64_t hedges_launched() const { return hedges_launched_; }
  std::uint64_t hedge_wins() const { return hedge_wins_; }
  std::uint64_t redispatches() const { return redispatches_; }
  std::uint64_t breaker_probes() const { return breaker_probes_; }
  std::uint64_t subquery_fallbacks() const { return subquery_fallbacks_; }
  std::uint64_t unavailable_partitions() const {
    return unavailable_partitions_;
  }
  std::uint64_t degraded_queries() const { return degraded_queries_; }

 private:
  enum class Branch { kPrimary, kHedge };

  struct Subquery {
    int device = -1;
    SimTime start = 0;
    std::unique_ptr<QueryTask> primary;
    std::unique_ptr<QueryTask> hedge;
    bool hedge_eligible = false;  // explicit device-path primary
    bool primary_failed = false;
    Status primary_error = Status::OK();
    bool completed = false;
    std::optional<QueryResult> winner;
    FleetSubqueryRecord record;
  };

  struct FleetQuery {
    std::uint64_t id = 0;
    std::size_t source = 0;
    SimTime arrival = 0;
    SimTime admitted = 0;
    std::vector<Subquery> subs;  // indexed by device id
    int outstanding = 0;
    bool failed = false;
    Status failure = Status::OK();
    SimTime last_done = 0;
  };

  struct Source {
    FleetQueryConfig config;
    obs::TrackId track = 0;
    bool closed_loop = false;
    int remaining = 0;
    SimDuration think_time = 0;
  };

  struct PendingArrival {
    std::size_t source = 0;
    SimTime arrival = 0;
    std::uint64_t id = 0;
  };

  struct Parked {
    std::shared_ptr<FleetQuery> query;
    std::size_t sub = 0;
    Branch branch = Branch::kPrimary;
  };

  std::size_t AddSource(FleetQueryConfig config);
  void ScheduleArrival(std::size_t source, SimTime at, std::uint64_t id);
  void OnArrival(std::size_t source, SimTime arrival, std::uint64_t id);
  void StartQuery(std::size_t source, SimTime arrival, SimTime admitted,
                  std::uint64_t id);
  void ScheduleStep(std::shared_ptr<FleetQuery> q, std::size_t sub,
                    Branch branch, SimTime at);
  void OnStep(const std::shared_ptr<FleetQuery>& q, std::size_t sub,
              Branch branch);
  void OnBranchComplete(const std::shared_ptr<FleetQuery>& q,
                        std::size_t sub, Branch branch, SimTime at);
  void OnPartitionUnavailable(const std::shared_ptr<FleetQuery>& q,
                              std::size_t sub, const Status& error,
                              SimTime at);
  void MaybeArmHedge(const std::shared_ptr<FleetQuery>& q, std::size_t sub);
  void OnHedgeDeadline(const std::shared_ptr<FleetQuery>& q,
                       std::size_t sub);
  void FinishQuery(const std::shared_ptr<FleetQuery>& q, SimTime at);
  void CompleteRecord(const std::shared_ptr<FleetQuery>& q, SimTime end,
                      Result<FleetQueryResult> result);
  void NoteSubqueryLatency(SimDuration latency);
  SimDuration HedgeDeadline() const;  // factor x quantile, 0 if unarmed
  void TryUnpark();

  Fleet* fleet_;
  FleetOptions options_;
  sim::Clock clock_;
  sim::EventQueue events_;
  obs::Tracer* tracer_ = nullptr;
  std::vector<obs::TrackId> device_tracks_;

  std::deque<Source> sources_;
  std::deque<PendingArrival> admission_queue_;
  std::deque<Parked> parked_;
  std::vector<CompletedFleetQuery> completed_;
  std::vector<SimDuration> latency_samples_;  // completed subqueries
  std::uint64_t next_id_ = 1;
  std::uint64_t expected_ = 0;
  int in_flight_ = 0;
  int peak_in_flight_ = 0;
  bool ran_ = false;

  std::uint64_t hedges_launched_ = 0;
  std::uint64_t hedge_wins_ = 0;
  std::uint64_t redispatches_ = 0;
  std::uint64_t breaker_probes_ = 0;
  std::uint64_t subquery_fallbacks_ = 0;
  std::uint64_t unavailable_partitions_ = 0;
  std::uint64_t degraded_queries_ = 0;
};

// Blocking convenience: one query scattered across the fleet and merged
// (a throwaway FleetCoordinator driven to drain). `spec` is borrowed
// for the call.
Result<FleetQueryResult> ExecuteOnFleet(Fleet& fleet,
                                        const exec::QuerySpec& spec,
                                        ExecutionTarget target,
                                        SimTime start = 0,
                                        const FleetOptions& options = {});

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_FLEET_H_
