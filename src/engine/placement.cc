#include "engine/placement.h"

#include <algorithm>
#include <cmath>

#include "engine/partial_merge.h"

namespace smartssd::engine {

namespace {

// Device share of a split scan, proportional to the estimated host
// cost: the side the cost model says is faster takes more pages, so
// both sides finish at roughly the same virtual time. Clamped so each
// side keeps at least one page (a degenerate fraction would just be a
// pure placement with extra merge overhead).
std::uint64_t SplitDevicePages(const PushdownPlanner& planner,
                               const exec::BoundQuery& bound,
                               const PlanHints& hints) {
  const std::uint64_t pages = bound.outer->page_count;
  const double host_s = planner.EstimateHostSeconds(bound, hints);
  const double smart_s = planner.EstimateSmartSeconds(bound, hints);
  double fraction = 0.5;
  if (std::isfinite(host_s) && std::isfinite(smart_s) &&
      host_s + smart_s > 0) {
    fraction = host_s / (host_s + smart_s);
  }
  const std::uint64_t device_pages = static_cast<std::uint64_t>(
      std::llround(fraction * static_cast<double>(pages)));
  return std::clamp<std::uint64_t>(device_pages, 1, pages - 1);
}

PlacementDecision SplitDecision(const PushdownPlanner& planner,
                                const exec::BoundQuery& bound,
                                const PlanHints& hints, std::string reason) {
  const std::uint64_t pages = bound.outer->page_count;
  const std::uint64_t device_pages = SplitDevicePages(planner, bound, hints);
  PlacementDecision decision;
  decision.target = ExecutionTarget::kSmartSsd;
  decision.split = true;
  // Host takes the page-order prefix, device the suffix: the device
  // streams its extent through the internal path while the host works
  // the front of the table through the buffer pool.
  decision.fragments = {
      {0, pages - device_pages, ExecutionTarget::kHost},
      {pages - device_pages, device_pages, ExecutionTarget::kSmartSsd},
  };
  decision.reason = std::move(reason);
  return decision;
}

PlacementDecision FromPlan(const PlanDecision& plan) {
  PlacementDecision decision;
  decision.target = plan.target;
  decision.reason = plan.reason;
  return decision;
}

PlacementDecision HostDecision(std::string reason) {
  PlacementDecision decision;
  decision.target = ExecutionTarget::kHost;
  decision.reason = std::move(reason);
  return decision;
}

}  // namespace

bool SplittableScan(const exec::BoundQuery& bound) {
  const exec::QuerySpec& spec = *bound.spec;
  if (spec.join.has_value()) return false;
  if (spec.top_n.has_value()) return false;
  if (bound.outer->page_count < 2) return false;
  return ValidateMergeable(spec).ok();
}

Result<PlacementDecision> DecidePlacement(Database* db,
                                          const exec::BoundQuery& bound,
                                          const PlanHints& hints,
                                          PlacementPolicyKind policy,
                                          SimTime now,
                                          const SignalSource* signals) {
  SMARTSSD_CHECK(db != nullptr);
  const PushdownPlanner planner(db);
  switch (policy) {
    case PlacementPolicyKind::kStaticHost:
      return HostDecision("static policy pins the host path");

    case PlacementPolicyKind::kStaticDevice: {
      if (!db->smart_capable()) {
        return HostDecision("static device policy, but no Smart SSD runtime");
      }
      PlacementDecision decision;
      decision.target = ExecutionTarget::kSmartSsd;
      decision.reason = "static policy pins the device path";
      return decision;
    }

    case PlacementPolicyKind::kCostModel: {
      // The historical planner behavior, verbatim: same estimates, same
      // rule order, same single (mutating) breaker-bypass check.
      SMARTSSD_ASSIGN_OR_RETURN(const PlanDecision plan,
                                planner.Decide(bound, hints, now));
      return FromPlan(plan);
    }

    case PlacementPolicyKind::kSplit: {
      if (!SplittableScan(bound)) {
        // Unsplittable shapes (joins, top-N, single-page tables) keep
        // the whole-query cost-model route, breaker check included.
        SMARTSSD_ASSIGN_OR_RETURN(const PlanDecision plan,
                                  planner.Decide(bound, hints, now));
        PlacementDecision decision = FromPlan(plan);
        decision.reason = "unsplittable scan: " + decision.reason;
        return decision;
      }
      if (auto constraint = planner.DeviceConstraint(bound)) {
        return HostDecision(*constraint);
      }
      if (db->circuit_breaker().ShouldBypass(now)) {
        return HostDecision(
            "breaker open: device excluded from split placement");
      }
      return SplitDecision(planner, bound, hints,
                           "split: cost-weighted host/device fragments");
    }

    case PlacementPolicyKind::kAdaptive: {
      if (auto constraint = planner.DeviceConstraint(bound)) {
        return HostDecision(*constraint);
      }
      if (db->circuit_breaker().ShouldBypass(now)) {
        return HostDecision(
            "breaker open: device excluded from adaptive placement");
      }
      // Live signals: the device takes work while its session-grant
      // pool has a free firmware thread; once the pool is saturated new
      // arrivals overflow to the host instead of parking behind the
      // grant queue — that is what lets the mixed workload use both
      // sides' capacity at once. Under an admission backlog a splittable
      // scan is additionally spread across both sides.
      const LiveSignals live =
          signals != nullptr ? signals->Signals() : LiveSignals{};
      if (db->runtime()->session_slots_free() <= 0) {
        return HostDecision(
            "session-grant pool exhausted: overflow to the host path");
      }
      if (live.queue_depth > 0 && SplittableScan(bound)) {
        return SplitDecision(
            planner, bound, hints,
            "admission backlog: splitting across host and device");
      }
      PlacementDecision decision;
      decision.target = ExecutionTarget::kSmartSsd;
      decision.reason = "session grant free: device path";
      return decision;
    }
  }
  SMARTSSD_CHECK(false);  // unknown placement policy
  return HostDecision("unknown policy");
}

}  // namespace smartssd::engine
