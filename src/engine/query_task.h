#ifndef SMARTSSD_ENGINE_QUERY_TASK_H_
#define SMARTSSD_ENGINE_QUERY_TASK_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "engine/placement.h"
#include "engine/planner.h"
#include "exec/morsel.h"
#include "exec/page_processor.h"
#include "exec/predicate_range.h"
#include "exec/pushdown_program.h"
#include "exec/query_spec.h"
#include "smart/session_task.h"

namespace smartssd::engine {

// Resumable query execution. The blocking QueryExecutor entry points are
// thin loops over the task classes below, which advance a query one page
// (host path) or one session protocol unit (pushdown path) per Step().
// That granularity is what lets a workload scheduler interleave many
// in-flight queries on the shared simulated resources; driven solo in a
// tight loop, each task issues the identical resource-call sequence the
// old monolithic executor bodies did, so single-query timelines are
// byte-identical by construction.

// What one Step() of a task reports back to its driver.
struct StepOutcome {
  // Virtual time the step's work retired at — when the task next has
  // work ready. A scheduler clamps this to its own now (some steps
  // complete in the past: cached pages, pruned pages).
  SimTime at = 0;
  bool finished = false;
  // The task wants to OPEN a device session but no firmware thread
  // grant is free; nothing was issued. Re-Step() once a grant frees.
  bool waiting_for_grant = false;
};

// The conventional path (QueryExecutor::ExecuteOnHost) as a state
// machine: join build one inner page per step, then scan one outer page
// per step, then finalize. `bound` must outlive the task.
//
// Fragment mode (the scan-fragment refactor): the three-argument
// constructor covers the whole outer table — the monolithic behavior,
// byte-identical to the pre-fragment task. The six-argument form
// restricts the scan to pages [first_page, first_page + page_count)
// and, with `partial` set, reports a *partial* result for the split
// coordinator: per-page OpCounts are charged exactly as the monolithic
// path charges those pages, while the Finish() emission counts and the
// per-query metrics bumps are left to the coordinator (which
// re-synthesizes the canonical finish charge over the merged result).
class HostQueryTask {
 public:
  HostQueryTask(Database* db, const exec::BoundQuery* bound, SimTime start);
  HostQueryTask(Database* db, const exec::BoundQuery* bound, SimTime start,
                std::uint64_t first_page, std::uint64_t page_count,
                bool partial);
  ~HostQueryTask();
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(HostQueryTask);

  StepOutcome Step();
  bool finished() const { return state_ == State::kDone; }

  // Valid once finished(); moves the result out.
  Result<QueryResult> TakeResult();

 private:
  enum class State {
    kStart,
    kBuildRead,
    kBuildFinish,
    kPrepareScan,
    kScan,
    kFinish,
    kDone,
  };

  StepOutcome StepStart();
  StepOutcome StepBuildRead();
  StepOutcome StepBuildFinish();
  StepOutcome StepPrepareScan();
  StepOutcome StepScan();
  // Morsel-parallel variant: dispatches the whole scan to worker
  // threads in one step, then replays virtual time from the per-page
  // counts in page order (wall-clock-only parallelism; see
  // exec/morsel.h). Taken when host_threads > 1 and the query is
  // morsel-eligible.
  StepOutcome StepScanMorsel();
  StepOutcome StepFinish();
  StepOutcome FailWith(const Status& error);
  void CloseSpanForError();
  // True when this task runs a proper fragment (or partial) rather than
  // the whole table; fragments always take the serial scan loop.
  bool Fragmented() const;

  Database* db_;
  const exec::BoundQuery* bound_;
  SimTime start_;
  obs::Tracer* tracer_ = nullptr;

  // Scan bounds over the outer table's page indices, clamped to the
  // table in the constructor; [0, page_count) for monolithic tasks.
  std::uint64_t scan_begin_ = 0;
  std::uint64_t scan_end_ = 0;
  bool partial_ = false;

  State state_ = State::kStart;
  QueryResult result_;
  std::optional<Result<QueryResult>> final_result_;
  StageBreakdown stage_before_;
  obs::SpanId span_id_ = obs::kNoSpan;
  bool span_ended_ = false;

  // Join build state.
  std::optional<exec::JoinHashTableBuilder> builder_;
  SimTime io_done_ = 0;
  std::uint64_t build_page_ = 0;
  std::optional<exec::JoinHashTable> hash_table_;

  // Scan state. Exactly one of processor_ / morsel_ is engaged:
  // morsel_ when host_threads > 1 and the query is morsel-eligible
  // (StepFinish then drives the merged processor), processor_
  // otherwise.
  std::optional<exec::PageProcessor> processor_;
  std::optional<exec::MorselScanner> morsel_;
  exec::CpuCostParams host_params_{};
  std::uint64_t hash_entries_ = 0;
  const storage::ZoneMap* zone_map_ = nullptr;
  // The zone map the processor's batch-skip analysis was last armed
  // with; re-armed whenever a step observes the map changing (e.g. a
  // co-scheduled writer marking it stale destroys the old object).
  const storage::ZoneMap* armed_zone_map_ = nullptr;
  std::map<int, exec::ColumnRange> prune_ranges_;
  SimTime end_ = 0;
  SimTime scan_started_ = 0;
  std::uint64_t page_ = 0;
  std::uint64_t pages_scanned_ = 0;
};

// The pushdown path as a state machine: one session protocol unit per
// step. With `fallback` set it reproduces ExecuteDeviceWithFallback —
// a retryable device failure records on the circuit breaker and re-runs
// the query on the host path from the failure time. With
// `wait_for_grant` set the task parks (waiting_for_grant outcome, no
// device traffic) instead of issuing an OPEN while the device's session
// thread pool is empty; the blocking executor passes false and eats the
// rejection, matching the old behavior.
// Fragment mode mirrors HostQueryTask: the six-extra-argument form
// restricts the pushdown program to the fragment's page range (extent
// announcement, pruning, and zone-check charge all fragment-scoped),
// reports body-only OpCounts with `partial` set, and re-runs only its
// own fragment on host fallback.
class DeviceQueryTask {
 public:
  DeviceQueryTask(Database* db, const exec::BoundQuery* bound,
                  SimTime start, bool fallback, bool wait_for_grant);
  DeviceQueryTask(Database* db, const exec::BoundQuery* bound,
                  SimTime start, bool fallback, bool wait_for_grant,
                  std::uint64_t first_page, std::uint64_t page_count,
                  bool partial);
  ~DeviceQueryTask();
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(DeviceQueryTask);

  StepOutcome Step();
  bool finished() const { return state_ == State::kDone; }

  // Virtual time the device session was torn down at; equals the start
  // time unless a session actually failed.
  SimTime failed_at() const { return failed_at_; }
  bool fell_back() const { return fell_back_; }

  Result<QueryResult> TakeResult();

 private:
  enum class State { kStart, kSession, kHostRerun, kDone };

  StepOutcome StepStart();
  StepOutcome StepSession();
  StepOutcome StepHostRerun();
  StepOutcome HandleDeviceError(const Status& error);
  StepOutcome FinishWithError(const Status& error);
  void CloseSpanForError();

  Database* db_;
  const exec::BoundQuery* bound_;
  SimTime start_;
  bool fallback_;
  bool wait_for_grant_;
  // Fragment range over the outer table (defaults cover it whole) and
  // the partial-result flag; see the class comment.
  std::uint64_t frag_first_ = 0;
  std::uint64_t frag_pages_ = ~0ull;
  bool partial_ = false;
  obs::Tracer* tracer_ = nullptr;

  State state_ = State::kStart;
  QueryResult result_;
  std::optional<Result<QueryResult>> final_result_;
  StageBreakdown stage_before_;       // device attempt (ExecuteOnDevice)
  StageBreakdown outer_stage_before_;  // whole query incl. fallback
  obs::SpanId span_id_ = obs::kNoSpan;
  bool span_ended_ = false;

  // Device-resident copy of the table's zone map, taken when the
  // session opens. The host-side map object can be destroyed mid-flight
  // by a co-scheduled writer marking it stale; the device prunes with
  // the snapshot it was shipped, which stays consistent with the pages
  // the session reads (writers only reach flash after a flush, and the
  // dirty-page gate refused the session if a flush was pending).
  std::optional<storage::ZoneMap> device_zone_map_;
  std::optional<exec::PushdownProgram> program_;
  std::unique_ptr<smart::SessionTask> session_;
  bool session_started_ = false;
  SimTime failed_at_ = 0;
  bool fell_back_ = false;
  // Set when the task abandoned its park for a session grant because the
  // breaker opened: the query fell back without ever reaching the
  // device, so the stats must not count a device attempt.
  bool redispatched_without_attempt_ = false;
  Status device_error_ = Status::OK();
  std::optional<HostQueryTask> host_rerun_;
};

// A split scan: the query's page range partitioned into ScanFragments,
// each run by its own host/device task in partial mode, concurrently on
// the virtual timeline. One Step() advances the earliest-ready
// unfinished fragment by one step (lowest fragment index breaks ties),
// so fragments interleave on the shared resources exactly as two
// independently scheduled queries would. When all fragments finish,
// partials merge in fixed fragment order through engine/partial_merge,
// and the coordinator charges the canonical finish emission (what the
// monolithic path's Finish() charges for the merged output) exactly
// once — total OpCounts equal the monolithic run's byte-for-byte.
class SplitScanTask {
 public:
  SplitScanTask(Database* db, const exec::BoundQuery* bound,
                const std::vector<ScanFragment>& fragments, SimTime start,
                bool wait_for_grant);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(SplitScanTask);

  StepOutcome Step();
  bool finished() const { return done_; }

  Result<QueryResult> TakeResult();

 private:
  struct Fragment {
    ScanFragment placement;
    // Exactly one engaged, by placement.target.
    std::optional<HostQueryTask> host;
    std::optional<DeviceQueryTask> device;
    SimTime ready = 0;
    bool parked = false;  // waiting for a device session grant
    bool done = false;
    std::optional<Result<QueryResult>> result;
  };

  StepOutcome StepFragment(Fragment& fragment);
  StepOutcome Merge();

  Database* db_;
  const exec::BoundQuery* bound_;
  SimTime start_;
  StageBreakdown stage_before_;
  std::deque<Fragment> fragments_;  // deque: tasks are immovable
  bool done_ = false;
  SimTime end_ = 0;
  std::optional<Result<QueryResult>> final_result_;
};

// A whole submitted query: binds the spec, picks the placement (an
// explicit target, or the database's placement policy — possibly a
// split across both sides), and delegates to the host, device, or
// split-scan task. This is the unit the workload scheduler drives.
// `spec` must outlive the task (keep specs at stable addresses);
// `signals` (optional) gives the adaptive policy its live scheduler
// view and must outlive the task too.
class QueryTask {
 public:
  // Explicit target, as QueryExecutor::Execute.
  QueryTask(Database* db, const exec::QuerySpec* spec,
            ExecutionTarget target, SimTime start, bool wait_for_grant);
  // Policy-chosen placement, as QueryExecutor::ExecuteAuto.
  QueryTask(Database* db, const exec::QuerySpec* spec,
            const PlanHints& hints, SimTime start, bool wait_for_grant,
            const SignalSource* signals = nullptr);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(QueryTask);

  StepOutcome Step();
  bool finished() const { return state_ == State::kDone; }
  SimTime start() const { return start_; }
  const exec::QuerySpec& spec() const { return *spec_; }

  Result<QueryResult> TakeResult();

 private:
  enum class State { kPlan, kRun, kDone };

  Database* db_;
  const exec::QuerySpec* spec_;
  SimTime start_;
  bool wait_for_grant_;
  std::optional<ExecutionTarget> explicit_target_;
  PlanHints hints_;
  const SignalSource* signals_ = nullptr;

  State state_ = State::kPlan;
  std::optional<exec::BoundQuery> bound_;
  std::optional<HostQueryTask> host_task_;
  std::optional<DeviceQueryTask> device_task_;
  std::optional<SplitScanTask> split_task_;
  std::optional<Result<QueryResult>> final_result_;
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_QUERY_TASK_H_
